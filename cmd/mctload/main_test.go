package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/perf"
	"repro/internal/service"
)

func TestMctloadEndToEnd(t *testing.T) {
	svc := service.New(service.Config{CacheDir: t.TempDir() + "/cache", CheckpointDir: t.TempDir() + "/ckpt"})
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		svc.Drain(ctx)
	})

	out := filepath.Join(t.TempDir(), "BENCH_pr5.json")
	var stdout, stderr bytes.Buffer
	code := mctloadMain([]string{
		"-url", srv.URL,
		"-duration", "250ms",
		"-concurrency", "2",
		"-out", out,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "Load test:") {
		t.Errorf("missing result table:\n%s", stdout.String())
	}

	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	var report perf.LoadReport
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if report.Schema != perf.LoadReportSchema || report.CodeVersion == "" {
		t.Errorf("report stamp incomplete: schema %d, code %q", report.Schema, report.CodeVersion)
	}
	total := report.Results[len(report.Results)-1]
	if total.Name != "total" || total.Requests == 0 || total.Latency.P99Ms <= 0 {
		t.Errorf("report totals implausible: %+v", total)
	}

	// Schema 2: the server's own histograms ride along in the report.
	if report.Server == nil {
		t.Fatalf("report.Server missing — Prometheus scrape failed?\nstderr:\n%s", stderr.String())
	}
	hists := map[string]perf.ServerHistogram{}
	for _, h := range report.Server.Histograms {
		hists[h.Name] = h
	}
	classify, ok := hists["mct_classify_duration_seconds"]
	if !ok {
		t.Fatalf("server histograms missing classify latency: %+v", report.Server.Histograms)
	}
	if classify.Count == 0 || len(classify.Buckets) == 0 {
		t.Errorf("classify histogram empty: %+v", classify)
	}
	if last := classify.Buckets[len(classify.Buckets)-1]; last.LE != "+Inf" || last.Count != classify.Count {
		t.Errorf("classify +Inf bucket %+v inconsistent with count %d", last, classify.Count)
	}
	if report.Server.Counters["mct_jobs_accepted_total"] <= 0 {
		t.Errorf("server counters implausible: %+v", report.Server.Counters)
	}
}

func TestMctloadUnreachableTarget(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := mctloadMain([]string{
		"-url", "http://127.0.0.1:1", // nothing listens on port 1
		"-duration", "100ms",
		"-concurrency", "1",
		"-out", "",
	}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (all requests failed)\nstderr:\n%s", code, stderr.String())
	}
}

func TestMctloadBadFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := mctloadMain([]string{"-nope"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}
