// Command mctload is the load-generator client for mctd: it drives
// concurrent mixed classify/sweep traffic at a target (or closed-loop)
// rate, reports latency percentiles and error rates, scrapes the
// server's Prometheus exposition for the service-side view, and writes
// the machine-readable BENCH_pr5.json snapshot.
//
// Usage:
//
//	mctd -listen :8047 &
//	mctload -url http://127.0.0.1:8047 -duration 10s -concurrency 16
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/loadgen"
)

func main() {
	os.Exit(mctloadMain(os.Args[1:], os.Stdout, os.Stderr))
}

func mctloadMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mctload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		url         = fs.String("url", "http://127.0.0.1:8047", "mctd base URL")
		duration    = fs.Duration("duration", 10*time.Second, "how long to generate load")
		concurrency = fs.Int("concurrency", 8, "worker-fleet size (closed-loop)")
		qps         = fs.Float64("qps", 0, "aggregate target QPS (0 = unpaced closed loop)")
		mix         = fs.Float64("mix", 0.9, "fraction of requests that are classifies (rest are sweeps)")
		seed        = fs.Uint64("seed", 1, "traffic-pattern seed")
		requests    = fs.Uint64("requests", 0, "stop after exactly this many requests (0 = run for -duration)")
		out         = fs.String("out", "BENCH_pr5.json", "machine-readable report path (empty = skip)")
		quiet       = fs.Bool("quiet", false, "suppress the result table")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	report, err := loadgen.Run(context.Background(), loadgen.Config{
		BaseURL:          *url,
		Concurrency:      *concurrency,
		Duration:         *duration,
		QPS:              *qps,
		ClassifyFraction: *mix,
		Seed:             *seed,
		MaxRequests:      *requests,
	})
	if err != nil {
		fmt.Fprintln(stderr, "mctload:", err)
		return 1
	}
	if len(report.Results) == 0 {
		fmt.Fprintln(stderr, "mctload: no requests completed — is mctd running at", *url, "?")
		return 1
	}

	// Fold in the server's own histograms. Best-effort: a target without
	// the Prometheus endpoint still yields a valid client-side report.
	scrapeCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if sm, err := loadgen.ScrapeServer(scrapeCtx, nil, *url); err != nil {
		fmt.Fprintln(stderr, "mctload: server metrics unavailable:", err)
	} else {
		report.Server = sm
	}

	if !*quiet {
		fmt.Fprintln(stdout, report.Table().String())
	}
	if *out != "" {
		if err := report.WriteJSON(*out); err != nil {
			fmt.Fprintln(stderr, "mctload:", err)
			return 1
		}
		fmt.Fprintf(stderr, "(report written to %s)\n", *out)
	}

	// A run whose every request failed is a failed run, even though
	// individual failures are data.
	for _, r := range report.Results {
		if r.Name == "total" && r.Errors == r.Requests {
			fmt.Fprintln(stderr, "mctload: every request failed")
			return 1
		}
	}
	return 0
}
