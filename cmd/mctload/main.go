// Command mctload is the load-generator client for mctd: it drives
// concurrent mixed classify/sweep traffic — plus an optional -mrc share
// of miss-ratio-curve profiles — at a target (or closed-loop)
// rate through the shared resilient client (idempotency keys, jittered
// retries honoring Retry-After, opt-in hedging), reports latency
// percentiles, error rates and the retry taxonomy, scrapes the server's
// Prometheus exposition for the service-side view, and writes the
// machine-readable BENCH_pr8.json snapshot.
//
// Usage:
//
//	mctd -listen :8047 &
//	mctload -url http://127.0.0.1:8047 -duration 10s -concurrency 16
//
// Chaos drills inject faults on the client side of the wire:
//
//	mctload -chaos 'reset=0.05,latency=20ms,jitter=10ms' -retries 5
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/faultinject"
	"repro/internal/loadgen"
	"repro/internal/perf"
)

func main() {
	os.Exit(mctloadMain(os.Args[1:], os.Stdout, os.Stderr))
}

func mctloadMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mctload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		url         = fs.String("url", "http://127.0.0.1:8047", "mctd base URL")
		targetsFlag = fs.String("targets", "", "comma-separated mctd base URLs for fleet runs (overrides -url; workers spread round-robin)")
		duration    = fs.Duration("duration", 10*time.Second, "how long to generate load")
		concurrency = fs.Int("concurrency", 8, "worker-fleet size (closed-loop)")
		qps         = fs.Float64("qps", 0, "aggregate target QPS (0 = unpaced closed loop)")
		mix         = fs.Float64("mix", 0.9, "fraction of requests that are classifies (rest are sweeps)")
		mrcFrac     = fs.Float64("mrc", 0, "fraction of requests that are MRC profiles (carved out of the classify share)")
		seed        = fs.Uint64("seed", 1, "traffic-pattern seed")
		requests    = fs.Uint64("requests", 0, "stop after exactly this many requests (0 = run for -duration)")
		retries     = fs.Int("retries", 1, "max attempts per logical request (1 = no retries; raise for chaos runs)")
		hedgeAfter  = fs.Duration("hedge-after", 0, "hedge classify requests still unanswered after this delay (0 = off)")
		chaosSpec   = fs.String("chaos", "", "client-side network fault injection, e.g. 'reset=0.05,latency=20ms' (see internal/faultinject)")
		out         = fs.String("out", "BENCH_pr8.json", "machine-readable report path (empty = skip)")
		quiet       = fs.Bool("quiet", false, "suppress the result table")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// The chaos transport wraps the load traffic only — the post-run
	// metrics scrape below goes over a clean client, so a black-holed
	// report scrape can't masquerade as a server problem.
	var httpClient *http.Client
	if *chaosSpec != "" {
		chaos, err := faultinject.ParseNetSpec(*chaosSpec)
		if err != nil {
			fmt.Fprintln(stderr, "mctload:", err)
			return 2
		}
		httpClient = &http.Client{Timeout: 2 * time.Minute, Transport: chaos.Transport(nil)}
		fmt.Fprintf(stderr, "mctload: network chaos active: %s\n", chaos)
	}

	var targetList []string
	if *targetsFlag != "" {
		for _, t := range strings.Split(*targetsFlag, ",") {
			if t = strings.TrimSpace(t); t != "" {
				targetList = append(targetList, t)
			}
		}
	}

	report, err := loadgen.Run(context.Background(), loadgen.Config{
		BaseURL:          *url,
		Targets:          targetList,
		Concurrency:      *concurrency,
		Duration:         *duration,
		QPS:              *qps,
		ClassifyFraction: *mix,
		MRCFraction:      *mrcFrac,
		Seed:             *seed,
		Client:           httpClient,
		MaxRequests:      *requests,
		MaxAttempts:      *retries,
		HedgeAfter:       *hedgeAfter,
	})
	if err != nil {
		fmt.Fprintln(stderr, "mctload:", err)
		return 1
	}
	if len(report.Results) == 0 {
		fmt.Fprintln(stderr, "mctload: no requests completed — is mctd running at", *url, "?")
		return 1
	}

	// Fold in the servers' own histograms. Best-effort: a target without
	// the Prometheus endpoint still yields a valid client-side report.
	scrapeCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	scrapeList := targetList
	if len(scrapeList) == 0 {
		scrapeList = []string{*url}
	}
	scraped := make([]*perf.ServerMetrics, 0, len(scrapeList))
	for _, tgt := range scrapeList {
		sm, err := loadgen.ScrapeServer(scrapeCtx, nil, tgt)
		if err != nil {
			fmt.Fprintf(stderr, "mctload: server metrics unavailable from %s: %v\n", tgt, err)
			continue
		}
		scraped = append(scraped, sm)
		if len(scrapeList) > 1 {
			if report.Servers == nil {
				report.Servers = map[string]*perf.ServerMetrics{}
			}
			report.Servers[tgt] = sm
		}
	}
	// The Server section is the whole fleet, not whichever target
	// happened to be scraped first: counters sum and histogram buckets
	// merge across instances (per-instance detail stays in Servers).
	report.Server = perf.MergeServerMetrics(scraped...)

	if !*quiet {
		fmt.Fprintln(stdout, report.Table().String())
	}
	if *out != "" {
		if err := report.WriteJSON(*out); err != nil {
			fmt.Fprintln(stderr, "mctload:", err)
			return 1
		}
		fmt.Fprintf(stderr, "(report written to %s)\n", *out)
	}

	// A run whose every request failed is a failed run, even though
	// individual failures are data.
	for _, r := range report.Results {
		if r.Name == "total" && r.Errors == r.Requests {
			fmt.Fprintln(stderr, "mctload: every request failed")
			return 1
		}
	}
	return 0
}
