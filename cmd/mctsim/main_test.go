package main

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
)

func TestBuildSystemCoversAllNames(t *testing.T) {
	cfg := cache.Config{Name: "L1D", Size: 16 * 1024, LineSize: 64, Assoc: 1}
	names := []string{
		"base",
		"vc", "vc-noswap", "vc-nofill", "vc-both",
		"pf", "pf-filter", "rpt",
		"excl-mat", "excl-conflict", "excl-capacity", "excl-conflict-hist", "excl-capacity-hist",
		"pseudo", "pseudo-mct",
		"amb-vict", "amb-pref", "amb-excl",
		"amb-victpref", "amb-prefexcl", "amb-victexcl", "amb-all",
	}
	seen := map[string]bool{}
	for _, n := range names {
		sys, err := buildSystem(n, cfg, 0, 8, core.OrConflict)
		if err != nil {
			t.Errorf("%s: %v", n, err)
			continue
		}
		if sys == nil {
			t.Errorf("%s: nil system", n)
			continue
		}
		if seen[sys.Name()] {
			t.Errorf("%s: duplicate system name %q", n, sys.Name())
		}
		seen[sys.Name()] = true
	}
	if _, err := buildSystem("bogus", cfg, 0, 8, core.OrConflict); err == nil {
		t.Error("unknown system accepted")
	}
}

func TestBuildSystemPropagatesErrors(t *testing.T) {
	bad := cache.Config{Name: "L1D", Size: 7, LineSize: 64, Assoc: 1}
	if _, err := buildSystem("vc", bad, 0, 8, core.OrConflict); err == nil {
		t.Error("bad cache config accepted")
	}
	good := cache.Config{Name: "L1D", Size: 16 * 1024, LineSize: 64, Assoc: 1}
	if _, err := buildSystem("vc", good, 0, 0, core.OrConflict); err == nil {
		t.Error("zero buffer entries accepted")
	}
}

func TestNonzero(t *testing.T) {
	if nonzero(0) != 1 || nonzero(5) != 5 {
		t.Error("nonzero helper wrong")
	}
}
