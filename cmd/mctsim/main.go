// Command mctsim runs one benchmark on one cache-assist configuration and
// prints the full metric set: IPC, hit-rate components, classified miss
// mix, traffic rates, and MCT-vs-oracle classification accuracy.
//
// Usage:
//
//	mctsim -bench tomcatv -system vc-both [-instructions 1000000]
//	       [-entries 8] [-tagbits 0] [-filter or-conflict] [-seed N]
//	       [-l1 16384] [-assoc 1] [-slowbus]
//
// Systems: base, vc, vc-noswap, vc-nofill, vc-both, pf, pf-filter, rpt,
// excl-mat, excl-conflict, excl-capacity, excl-conflict-hist,
// excl-capacity-hist, pseudo, pseudo-mct, amb-vict, amb-pref, amb-excl,
// amb-victpref, amb-prefexcl, amb-victexcl, amb-all.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/amb"
	"repro/internal/assist"
	"repro/internal/cache"
	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/exclude"
	"repro/internal/hier"
	"repro/internal/prefetch"
	"repro/internal/pseudo"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/victim"
	"repro/internal/workload"
)

func main() {
	var (
		benchName = flag.String("bench", "tomcatv", "benchmark name (see -list)")
		sysName   = flag.String("system", "base", "cache-assist system")
		instrs    = flag.Uint64("instructions", 1_000_000, "instructions to simulate")
		entries   = flag.Int("entries", assist.DefaultEntries, "assist buffer entries")
		tagBits   = flag.Int("tagbits", 0, "MCT tag bits per entry (0 = full)")
		filterStr = flag.String("filter", "or-conflict", "conflict filter for filtered policies")
		seed      = flag.Uint64("seed", workload.DefaultSeed, "workload seed")
		l1Size    = flag.Int("l1", 16*1024, "L1 size in bytes")
		l1Assoc   = flag.Int("assoc", 1, "L1 associativity")
		slowBus   = flag.Bool("slowbus", false, "use the slow L1-L2 bus (Figure 4 setting)")
		list      = flag.Bool("list", false, "list benchmarks and exit")
		accuracy  = flag.Bool("accuracy", false, "also measure MCT accuracy against the classic oracle")
		traceFile = flag.String("trace", "", "binary trace file to classify (batch kernel) instead of simulating a benchmark")
	)
	flag.Parse()

	if *list {
		for _, b := range workload.Suite() {
			fmt.Printf("%-10s %s\n", b.Name, b.Description)
		}
		return
	}

	if *traceFile != "" {
		if err := classifyTrace(*traceFile, *l1Size, *l1Assoc, *tagBits); err != nil {
			fmt.Fprintln(os.Stderr, "mctsim:", err)
			os.Exit(1)
		}
		return
	}

	b, ok := workload.ByName(*benchName)
	if !ok {
		fmt.Fprintf(os.Stderr, "mctsim: unknown benchmark %q (try -list)\n", *benchName)
		os.Exit(2)
	}
	filter, err := core.ParseFilter(*filterStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mctsim:", err)
		os.Exit(2)
	}
	cfg := cache.Config{Name: "L1D", Size: *l1Size, LineSize: 64, Assoc: *l1Assoc}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "mctsim:", err)
		os.Exit(2)
	}

	sys, err := buildSystem(*sysName, cfg, *tagBits, *entries, filter)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mctsim:", err)
		os.Exit(2)
	}

	opt := sim.Options{Instructions: *instrs, Seed: *seed}
	if *slowBus {
		opt.Hier = hier.SlowBusConfig()
	}
	r := sim.Run(b, sys, opt)

	fmt.Printf("benchmark    %s\n", r.Bench)
	fmt.Printf("system       %s (buffer %d entries, MCT tagbits %d, filter %s)\n", r.System, *entries, *tagBits, filter)
	fmt.Printf("instructions %d  cycles %d  IPC %.3f\n", r.CPU.Instructions, r.CPU.Cycles, r.IPC())
	fmt.Printf("branches     %d  mispredict %.2f%%\n", r.CPU.Branches, 100*r.CPU.MispredictRate())
	s := r.Sys
	fmt.Printf("accesses     %d\n", s.Accesses)
	fmt.Printf("hit rates    L1 %.2f%%  buffer %.2f%%  total %.2f%%  (miss %.2f%%)\n",
		100*s.L1HitRate(), 100*s.BufferHitRate(), 100*s.TotalHitRate(), 100*s.MissRate())
	fmt.Printf("miss mix     conflict %d (%.1f%%)  capacity %d\n",
		s.ConflictMisses, 100*float64(s.ConflictMisses)/nonzero(float64(s.Misses)), s.CapacityMisses)
	fmt.Printf("traffic      swaps %.2f%%  fills %.2f%%  bypasses %d\n",
		100*s.SwapRate(), 100*s.FillRate(), s.Bypasses)
	if s.PrefetchesIssued > 0 {
		fmt.Printf("prefetch     issued %d  useful %d  wasted %d  accuracy %.1f%%\n",
			s.PrefetchesIssued, s.PrefetchesUseful, s.PrefetchesWasted, 100*s.PrefetchAccuracy())
	}
	h := r.Hier
	fmt.Printf("hierarchy    L2 acc %d (hit %.1f%%)  writebacks %d  MSHR stalls %d\n",
		h.L2Accesses, 100*float64(h.L2Hits)/nonzero(float64(h.L2Accesses)), h.Writebacks, h.MSHRStalls)
	fmt.Printf("contention   bank-conflict cycles %d  bus-wait cycles %d  prefetches dropped %d\n",
		h.BankConflictCycles, h.BusWaitCycles, h.PrefetchesDropped)

	if *accuracy {
		run, err := classify.NewRun(cfg, *tagBits)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mctsim:", err)
			os.Exit(1)
		}
		src := trace.NewLimit(trace.NewMemOnly(b.Stream(*seed)), *instrs)
		sim.ClassifyBatched(run, trace.NewStreamBatcher(src), 0)
		a := run.Acc
		fmt.Printf("mct accuracy conflict %.1f%%  capacity %.1f%%  overall %.1f%%  (oracle conflict share %.1f%%)\n",
			100*a.ConflictAccuracy(), 100*a.CapacityAccuracy(), 100*a.OverallAccuracy(), 100*a.ConflictShare())
	}
}

// classifyTrace replays a binary trace file (either wire version) through
// the classifying cache and the oracle via the mmap-backed batch kernel
// and prints the classification summary.
func classifyTrace(path string, l1Size, l1Assoc, tagBits int) error {
	cfg := cache.Config{Name: "L1D", Size: l1Size, LineSize: 64, Assoc: l1Assoc}
	if err := cfg.Validate(); err != nil {
		return err
	}
	m, err := trace.MapFile(path, trace.Limits{})
	if err != nil {
		return err
	}
	defer m.Close()
	run, err := classify.NewRun(cfg, tagBits)
	if err != nil {
		return err
	}
	accesses := sim.ClassifyBatched(run, m, 0)
	a := run.Acc
	compulsory, capacity, conflict := run.Oracle.Counts()
	fmt.Printf("trace        %s (%d records)\n", path, m.Len())
	fmt.Printf("cache        %d KB %d-way, MCT tagbits %d\n", cfg.Size/1024, cfg.Assoc, tagBits)
	fmt.Printf("accesses     %d  misses %d\n", accesses, a.Misses())
	fmt.Printf("oracle mix   compulsory %d  capacity %d  conflict %d\n", compulsory, capacity, conflict)
	fmt.Printf("mct accuracy conflict %.1f%%  capacity %.1f%%  overall %.1f%%\n",
		100*a.ConflictAccuracy(), 100*a.CapacityAccuracy(), 100*a.OverallAccuracy())
	return nil
}

func nonzero(f float64) float64 {
	if f == 0 {
		return 1
	}
	return f
}

func buildSystem(name string, cfg cache.Config, tagBits, entries int, filter core.Filter) (assist.System, error) {
	switch name {
	case "base":
		return assist.NewBaseline(cfg, tagBits)
	case "vc":
		return victim.New(cfg, tagBits, entries, victim.Policy{Filter: filter})
	case "vc-noswap":
		return victim.New(cfg, tagBits, entries, victim.Policy{FilterSwaps: true, Filter: filter})
	case "vc-nofill":
		return victim.New(cfg, tagBits, entries, victim.Policy{FilterFills: true, Filter: filter})
	case "vc-both":
		return victim.New(cfg, tagBits, entries, victim.Policy{FilterSwaps: true, FilterFills: true, Filter: filter})
	case "pf":
		return prefetch.New(cfg, tagBits, entries, prefetch.Policy{PrefetchOnBufferHit: true})
	case "pf-filter":
		return prefetch.New(cfg, tagBits, entries, prefetch.Policy{Filter: filter, PrefetchOnBufferHit: true})
	case "rpt":
		return prefetch.NewRPT(cfg, tagBits, entries, 512)
	case "excl-mat":
		return exclude.New(cfg, tagBits, entries, exclude.ModeMAT)
	case "excl-conflict":
		return exclude.New(cfg, tagBits, entries, exclude.ModeConflict)
	case "excl-capacity":
		return exclude.New(cfg, tagBits, entries, exclude.ModeCapacity)
	case "excl-conflict-hist":
		return exclude.New(cfg, tagBits, entries, exclude.ModeConflictHistory)
	case "excl-capacity-hist":
		return exclude.New(cfg, tagBits, entries, exclude.ModeCapacityHistory)
	case "pseudo":
		return pseudo.New(cfg, tagBits, false)
	case "pseudo-mct":
		return pseudo.New(cfg, tagBits, true)
	case "amb-vict":
		return amb.New(cfg, tagBits, entries, amb.Vict)
	case "amb-pref":
		return amb.New(cfg, tagBits, entries, amb.Pref)
	case "amb-excl":
		return amb.New(cfg, tagBits, entries, amb.Excl)
	case "amb-victpref":
		return amb.New(cfg, tagBits, entries, amb.VictPref)
	case "amb-prefexcl":
		return amb.New(cfg, tagBits, entries, amb.PrefExcl)
	case "amb-victexcl":
		return amb.New(cfg, tagBits, entries, amb.VictExcl)
	case "amb-all":
		return amb.New(cfg, tagBits, entries, amb.VicPreExc)
	default:
		return nil, fmt.Errorf("unknown system %q", name)
	}
}
