// Command paperbench regenerates every table and figure of Collins &
// Tullsen, "Hardware Identification of Cache Conflict Misses" (MICRO-32,
// 1999), printing each as a plain-text table.
//
// Usage:
//
//	paperbench [-experiment all|fig1|fig2|fig3|table1|fig4|fig5|pseudo|fig6|fig7]
//	           [-instructions N] [-accesses N] [-seed N] [-quick]
//
// The default scale (see internal/experiments.Default) is sized to finish
// in minutes on a laptop while giving stable statistics; -quick shrinks it
// for a fast sanity pass. EXPERIMENTS.md records a full run's output next
// to the paper's numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/stats"
)

func main() {
	var (
		which  = flag.String("experiment", "all", "which artifact to regenerate: all, fig1, fig2, fig3, table1, fig4, fig5, pseudo, fig6, fig7, replacement, remap, cosched, depth, smt, icache, sweep")
		instrs = flag.Uint64("instructions", 0, "instructions per timing run (0 = default scale)")
		memAcc = flag.Uint64("accesses", 0, "memory accesses per functional run (0 = default scale)")
		seed   = flag.Uint64("seed", 0, "workload seed (0 = repo default)")
		quick  = flag.Bool("quick", false, "use the reduced test-scale parameters")
		csvDir = flag.String("csvdir", "", "also write each table as CSV into this directory")
	)
	flag.Parse()

	p := experiments.Default()
	if *quick {
		p = experiments.Quick()
	}
	if *instrs != 0 {
		p.Instructions = *instrs
	}
	if *memAcc != 0 {
		p.MemAccesses = *memAcc
	}
	if *seed != 0 {
		p.Seed = *seed
	}

	emit := func(slug string, t *stats.Table) {
		fmt.Println(t)
		if *csvDir == "" {
			return
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(1)
		}
		path := filepath.Join(*csvDir, slug+".csv")
		if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(1)
		}
	}

	wanted := map[string]bool{}
	for _, w := range strings.Split(*which, ",") {
		wanted[strings.TrimSpace(w)] = true
	}
	all := wanted["all"]
	ran := 0
	run := func(names []string, f func()) {
		hit := all
		for _, n := range names {
			hit = hit || wanted[n]
		}
		if !hit {
			return
		}
		ran++
		start := time.Now()
		f()
		fmt.Printf("(%s in %.1fs)\n\n", names[0], time.Since(start).Seconds())
	}

	run([]string{"fig1"}, func() {
		r := experiments.Figure1(p)
		emit("fig1", r.Table())
		fmt.Printf("paper: 88%%/86%% conflict/capacity on 16KB DM, 91%%/92%% on 64KB DM; ≥87%% of misses overall\n")
		fmt.Printf("here : %.0f%%/%.0f%% on 16KB DM, %.0f%%/%.0f%% on 64KB DM\n",
			100*r.MeanConflictAcc["16KB-DM"], 100*r.MeanCapacityAcc["16KB-DM"],
			100*r.MeanConflictAcc["64KB-DM"], 100*r.MeanCapacityAcc["64KB-DM"])
	})

	run([]string{"fig2"}, func() {
		r := experiments.Figure2(p)
		emit("fig2", r.Table())
		fmt.Println("paper: 8-12 bits ≈ full-tag accuracy; 1 bit excludes ~half of capacity misses cheaply")
	})

	var fig3 *experiments.Fig3Result
	run([]string{"fig3", "table1"}, func() {
		r := experiments.Figure3(p)
		fig3 = &r
		if all || wanted["fig3"] {
			emit("fig3", r.Table())
			fmt.Println(r.Chart("geomean speedup over no victim cache (| marks 1.0)", 0))
			fmt.Printf("paper: combined filtering ≈ +3%% over the traditional victim cache; here %+.1f%%\n",
				100*(r.CombinedOverTraditional()-1))
		}
		if all || wanted["table1"] {
			emit("table1", r.Table1Text())
			fmt.Println("paper Table 1: fills 6.6 -> 2.6 (more than halved), swaps 1.7 -> 0.1, total HR -0.3pp")
		}
	})
	_ = fig3

	run([]string{"fig4"}, func() {
		r := experiments.Figure4(p)
		emit("fig4", r.Table())
		fmt.Printf("paper: ~+25%% prefetch accuracy from filtering, little speedup by itself; here %+.0f%% accuracy\n",
			100*r.AccuracyGain())
	})

	run([]string{"fig5"}, func() {
		r := experiments.Figure5(p)
		emit("fig5", r.Table())
		hr, sp := r.CapacityBeatsMAT()
		fmt.Printf("paper: the simple capacity filter beats the MAT on hit rate and speedup; here hitrate=%v speedup=%v\n", hr, sp)
	})

	run([]string{"pseudo"}, func() {
		r := experiments.PseudoAssoc(p)
		emit("pseudo", r.Table())
		base, mct := r.MissRates()
		fmt.Printf("paper: MCT policy +1.5%% over base PA, within 0.9%% of true 2-way, miss rate 10.22%%->9.83%%\n")
		fmt.Printf("here : %+.1f%% over base PA, %.1f%% vs 2-way, miss rate %.2f%%->%.2f%%\n",
			100*(r.MCTOverBase()-1), 100*(r.MCTVsTwoWay()-1), 100*base, 100*mct)
	})

	run([]string{"fig6", "fig7"}, func() {
		r := experiments.Figure6(p)
		if all || wanted["fig6"] {
			emit("fig6", r.Table())
			fmt.Println(r.Chart("geomean speedup over no buffer (| marks 1.0)", 0))
			sn, s := r.BestSingleGain()
			cn, c := r.BestComboGain()
			fmt.Printf("paper: best combo ≈ 2x the best single policy's gain (~16%% better), ~30%% miss-rate cut\n")
			fmt.Printf("here : best single %s %+.1f%%, best combo %s %+.1f%%, miss-rate cut %.0f%%\n",
				sn, 100*(s-1), cn, 100*(c-1), 100*r.MissRateReduction())
		}
		if all || wanted["fig7"] {
			emit("fig7", r.Figure7Table())
		}
	})

	run([]string{"replacement"}, func() {
		r := experiments.Replacement(p)
		emit("replacement", r.Table())
		fmt.Println("paper Sec 5.6: modest on this suite by the paper's own admission; the bias must not hurt")
	})

	run([]string{"remap"}, func() {
		r := experiments.Remap(p)
		emit("remap", r.Table())
		ra, rc, ma, mc := r.RemapEfficiency()
		fmt.Printf("paper Sec 5.6: count only conflict misses to avoid pointless remaps\n")
		fmt.Printf("here : all-miss counting %d remaps (mean miss %.2f%%); conflict-only %d remaps (mean miss %.2f%%)\n",
			ra, 100*ma, rc, 100*mc)
	})

	run([]string{"depth"}, func() {
		r := experiments.MCTDepth(p)
		emit("depth", r.Table())
		fmt.Println("extension the paper set aside: deeper eviction history buys conflict accuracy")
		fmt.Println("but loses capacity accuracy to false matches — the one-deep table is the sweet spot")
	})

	run([]string{"smt"}, func() {
		r := experiments.SMTStudy(p)
		emit("smt", r.Table())
		fmt.Printf("paper Sec 5.6: the techniques \"apply to an even greater extent with multithreaded caches\"\n")
		fmt.Printf("here : AMB gains %+.1f%% on 2-thread shared caches vs %+.1f%% on solo runs\n",
			100*(r.PairGain()-1), 100*(r.SingleGain-1))
	})

	run([]string{"icache"}, func() {
		r := experiments.ICacheStudy(p)
		emit("icache", r.Table())
		fmt.Printf("paper: techniques \"should, in general, also apply to the instruction cache\"\n")
		fmt.Printf("here : bare 8KB L1I costs %.1f%%; a 32-entry filtered victim buffer recovers %+.1f%%\n",
			100*(1-r.ICacheCost()), 100*(r.VictimGain()-1))
	})

	run([]string{"sweep"}, func() {
		r := experiments.ConfigSweep(p)
		emit("sweep", r.Table())
		fmt.Printf("generalization: worst-case overall accuracy %.1f%% across the grid;\n", 100*r.MinOverallAcc())
		fmt.Println("conflict share collapses with associativity, which is why the paper")
		fmt.Println("points at multithreaded and OLTP workloads rather than bigger caches")
	})

	run([]string{"cosched"}, func() {
		r := experiments.CoSchedule(p)
		emit("cosched", r.Table())
		fmt.Println("paper Sec 5.6: jobs producing inordinate conflict misses together are bad co-schedule candidates")
	})

	if ran == 0 {
		fmt.Fprintf(os.Stderr, "paperbench: unknown experiment %q\n", *which)
		flag.Usage()
		os.Exit(2)
	}
}
