// Command paperbench regenerates every table and figure of Collins &
// Tullsen, "Hardware Identification of Cache Conflict Misses" (MICRO-32,
// 1999), printing each as a plain-text table.
//
// Usage:
//
//	paperbench [-experiment all|fig1|fig2|fig3|table1|fig4|fig5|pseudo|fig6|fig7]
//	           [-instructions N] [-accesses N] [-seed N] [-quick]
//	           [-progress] [-nocache] [-cachedir DIR]
//	           [-bench] [-benchout FILE]
//	           [-cpuprofile FILE] [-memprofile FILE]
//
// The default scale (see internal/experiments.Default) is sized to finish
// in minutes on a laptop while giving stable statistics; -quick shrinks it
// for a fast sanity pass. EXPERIMENTS.md records a full run's output next
// to the paper's numbers.
//
// Results are memoized on disk (default results/cache/) keyed by
// experiment, parameters, seed, and code version, so re-running the same
// configuration replays the tables from cache in milliseconds. -nocache
// bypasses the cache entirely; deleting the directory invalidates it.
// All diagnostics (timings, progress, cache hits) go to stderr; stdout
// carries only the tables, byte-identical between cold and cached runs.
//
// -bench switches to the performance harness: instead of regenerating the
// paper's artifacts it benchmarks the simulation hot paths (cache access,
// oracle observe, fully-associative reference, workload generation,
// end-to-end instructions/second) and writes the machine-readable report
// to -benchout (default BENCH_pr2.json; see DESIGN.md for the schema) so
// the repo accumulates a performance trajectory PR over PR.
//
// -cpuprofile/-memprofile write pprof profiles covering the whole run —
// started through internal/runner before any worker-pool fan-out, so the
// profile captures the experiment workers, not just main.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/perf"
	"repro/internal/runner"
	"repro/internal/stats"
)

func main() {
	os.Exit(paperbenchMain(os.Args[1:], os.Stdout, os.Stderr))
}

// paperbenchMain is the testable body of the command: it parses args,
// runs the selected experiments, writes tables to stdout and diagnostics
// to stderr, and returns the process exit code.
func paperbenchMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("paperbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		which    = fs.String("experiment", "all", "which artifact to regenerate: all, fig1, fig2, fig3, table1, fig4, fig5, pseudo, fig6, fig7, replacement, remap, cosched, depth, smt, icache, sweep")
		instrs   = fs.Uint64("instructions", 0, "instructions per timing run (0 = default scale)")
		memAcc   = fs.Uint64("accesses", 0, "memory accesses per functional run (0 = default scale)")
		seed     = fs.Uint64("seed", 0, "workload seed (0 = repo default)")
		quick    = fs.Bool("quick", false, "use the reduced test-scale parameters")
		csvDir   = fs.String("csvdir", "", "also write each table as CSV into this directory")
		progress = fs.Bool("progress", false, "stream per-job progress and timing to stderr")
		nocache  = fs.Bool("nocache", false, "recompute everything, ignoring the on-disk result cache")
		cacheDir = fs.String("cachedir", runner.DefaultCacheDir, "on-disk result cache directory")
		bench    = fs.Bool("bench", false, "benchmark the simulation hot paths and write -benchout instead of running experiments")
		benchOut = fs.String("benchout", "BENCH_pr2.json", "machine-readable benchmark report path (with -bench)")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile covering the whole run (worker pool included)")
		memProf  = fs.String("memprofile", "", "write a heap profile at the end of the run")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// Profiles bracket everything below — experiment fan-outs and the
	// bench harness both run inside them.
	if *cpuProf != "" {
		stop, err := runner.StartCPUProfile(*cpuProf)
		if err != nil {
			fmt.Fprintln(stderr, "paperbench:", err)
			return 1
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(stderr, "paperbench:", err)
			}
		}()
	}
	if *memProf != "" {
		defer func() {
			if err := runner.WriteHeapProfile(*memProf); err != nil {
				fmt.Fprintln(stderr, "paperbench:", err)
			}
		}()
	}

	if *bench {
		start := time.Now()
		report := perf.NewReport(perf.Components())
		if err := report.WriteJSON(*benchOut); err != nil {
			fmt.Fprintln(stderr, "paperbench:", err)
			return 1
		}
		fmt.Fprintln(stdout, report.Table())
		for _, c := range report.Components {
			if c.Name == "sim.endtoend" {
				fmt.Fprintf(stdout, "end-to-end: %.0f instrs/sec (%.1f ns/instr)\n",
					c.Metrics["instrs_per_sec"], c.Metrics["ns_per_instr"])
			}
		}
		fmt.Fprintf(stderr, "(bench: report written to %s in %.1fs)\n", *benchOut, time.Since(start).Seconds())
		return 0
	}

	p := experiments.Default()
	if *quick {
		p = experiments.Quick()
	}
	if *instrs != 0 {
		p.Instructions = *instrs
	}
	if *memAcc != 0 {
		p.MemAccesses = *memAcc
	}
	if *seed != 0 {
		p.Seed = *seed
	}

	var cache *runner.Cache // nil = disabled (-nocache)
	if !*nocache {
		cache = runner.Open(*cacheDir)
	}
	if *progress {
		runner.SetReporter(runner.NewWriterReporter(stderr))
		defer runner.SetReporter(nil)
	}

	emit := func(slug string, t *stats.Table) {
		fmt.Fprintln(stdout, t)
		if *csvDir == "" {
			return
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(stderr, "paperbench:", err)
			os.Exit(1)
		}
		path := filepath.Join(*csvDir, slug+".csv")
		if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
			fmt.Fprintln(stderr, "paperbench:", err)
			os.Exit(1)
		}
	}

	wanted := map[string]bool{}
	for _, w := range strings.Split(*which, ",") {
		wanted[strings.TrimSpace(w)] = true
	}
	all := wanted["all"]
	ran, failed := 0, 0
	run := func(names []string, f func()) {
		hit := all
		for _, n := range names {
			hit = hit || wanted[n]
		}
		if !hit {
			return
		}
		ran++
		start := time.Now()
		// One panicking experiment (runner.MustMap re-raising a job
		// failure, say) must not take down the rest of the sweep.
		func() {
			defer func() {
				if r := recover(); r != nil {
					failed++
					fmt.Fprintf(stderr, "paperbench: experiment %s FAILED: %v\n", names[0], r)
				}
			}()
			f()
		}()
		// Blank separator between experiment blocks (deterministic, so it
		// belongs on stdout); the timing is diagnostic and goes to stderr.
		fmt.Fprintln(stdout)
		fmt.Fprintf(stderr, "(%s in %.1fs)\n", names[0], time.Since(start).Seconds())
	}

	run([]string{"fig1"}, func() {
		r := memoize(cache, "fig1", p, stderr, func() experiments.Fig1Result { return experiments.Figure1(p) })
		emit("fig1", r.Table())
		fmt.Fprintf(stdout, "paper: 88%%/86%% conflict/capacity on 16KB DM, 91%%/92%% on 64KB DM; ≥87%% of misses overall\n")
		fmt.Fprintf(stdout, "here : %.0f%%/%.0f%% on 16KB DM, %.0f%%/%.0f%% on 64KB DM\n",
			100*r.MeanConflictAcc["16KB-DM"], 100*r.MeanCapacityAcc["16KB-DM"],
			100*r.MeanConflictAcc["64KB-DM"], 100*r.MeanCapacityAcc["64KB-DM"])
	})

	run([]string{"fig2"}, func() {
		r := memoize(cache, "fig2", p, stderr, func() experiments.Fig2Result { return experiments.Figure2(p) })
		emit("fig2", r.Table())
		fmt.Fprintln(stdout, "paper: 8-12 bits ≈ full-tag accuracy; 1 bit excludes ~half of capacity misses cheaply")
	})

	run([]string{"fig3", "table1"}, func() {
		r := memoize(cache, "fig3", p, stderr, func() experiments.Fig3Result { return experiments.Figure3(p) })
		if all || wanted["fig3"] {
			emit("fig3", r.Table())
			fmt.Fprintln(stdout, r.Chart("geomean speedup over no victim cache (| marks 1.0)", 0))
			fmt.Fprintf(stdout, "paper: combined filtering ≈ +3%% over the traditional victim cache; here %+.1f%%\n",
				100*(r.CombinedOverTraditional()-1))
		}
		if all || wanted["table1"] {
			emit("table1", r.Table1Text())
			fmt.Fprintln(stdout, "paper Table 1: fills 6.6 -> 2.6 (more than halved), swaps 1.7 -> 0.1, total HR -0.3pp")
		}
	})

	run([]string{"fig4"}, func() {
		r := memoize(cache, "fig4", p, stderr, func() experiments.Fig4Result { return experiments.Figure4(p) })
		emit("fig4", r.Table())
		fmt.Fprintf(stdout, "paper: ~+25%% prefetch accuracy from filtering, little speedup by itself; here %+.0f%% accuracy\n",
			100*r.AccuracyGain())
	})

	run([]string{"fig5"}, func() {
		r := memoize(cache, "fig5", p, stderr, func() experiments.Fig5Result { return experiments.Figure5(p) })
		emit("fig5", r.Table())
		hr, sp := r.CapacityBeatsMAT()
		fmt.Fprintf(stdout, "paper: the simple capacity filter beats the MAT on hit rate and speedup; here hitrate=%v speedup=%v\n", hr, sp)
	})

	run([]string{"pseudo"}, func() {
		r := memoize(cache, "pseudo", p, stderr, func() experiments.PseudoResult { return experiments.PseudoAssoc(p) })
		emit("pseudo", r.Table())
		base, mct := r.MissRates()
		fmt.Fprintf(stdout, "paper: MCT policy +1.5%% over base PA, within 0.9%% of true 2-way, miss rate 10.22%%->9.83%%\n")
		fmt.Fprintf(stdout, "here : %+.1f%% over base PA, %.1f%% vs 2-way, miss rate %.2f%%->%.2f%%\n",
			100*(r.MCTOverBase()-1), 100*(r.MCTVsTwoWay()-1), 100*base, 100*mct)
	})

	run([]string{"fig6", "fig7"}, func() {
		r := memoize(cache, "fig6", p, stderr, func() experiments.Fig6Result { return experiments.Figure6(p) })
		if all || wanted["fig6"] {
			emit("fig6", r.Table())
			fmt.Fprintln(stdout, r.Chart("geomean speedup over no buffer (| marks 1.0)", 0))
			sn, s := r.BestSingleGain()
			cn, c := r.BestComboGain()
			fmt.Fprintf(stdout, "paper: best combo ≈ 2x the best single policy's gain (~16%% better), ~30%% miss-rate cut\n")
			fmt.Fprintf(stdout, "here : best single %s %+.1f%%, best combo %s %+.1f%%, miss-rate cut %.0f%%\n",
				sn, 100*(s-1), cn, 100*(c-1), 100*r.MissRateReduction())
		}
		if all || wanted["fig7"] {
			emit("fig7", r.Figure7Table())
		}
	})

	run([]string{"replacement"}, func() {
		r := memoize(cache, "replacement", p, stderr, func() experiments.ReplacementResult { return experiments.Replacement(p) })
		emit("replacement", r.Table())
		fmt.Fprintln(stdout, "paper Sec 5.6: modest on this suite by the paper's own admission; the bias must not hurt")
	})

	run([]string{"remap"}, func() {
		r := memoize(cache, "remap", p, stderr, func() experiments.RemapResult { return experiments.Remap(p) })
		emit("remap", r.Table())
		ra, rc, ma, mc := r.RemapEfficiency()
		fmt.Fprintf(stdout, "paper Sec 5.6: count only conflict misses to avoid pointless remaps\n")
		fmt.Fprintf(stdout, "here : all-miss counting %d remaps (mean miss %.2f%%); conflict-only %d remaps (mean miss %.2f%%)\n",
			ra, 100*ma, rc, 100*mc)
	})

	run([]string{"depth"}, func() {
		r := memoize(cache, "depth", p, stderr, func() experiments.DepthResult { return experiments.MCTDepth(p) })
		emit("depth", r.Table())
		fmt.Fprintln(stdout, "extension the paper set aside: deeper eviction history buys conflict accuracy")
		fmt.Fprintln(stdout, "but loses capacity accuracy to false matches — the one-deep table is the sweet spot")
	})

	run([]string{"smt"}, func() {
		r := memoize(cache, "smt", p, stderr, func() experiments.SMTResult { return experiments.SMTStudy(p) })
		emit("smt", r.Table())
		fmt.Fprintf(stdout, "paper Sec 5.6: the techniques \"apply to an even greater extent with multithreaded caches\"\n")
		fmt.Fprintf(stdout, "here : AMB gains %+.1f%% on 2-thread shared caches vs %+.1f%% on solo runs\n",
			100*(r.PairGain()-1), 100*(r.SingleGain-1))
	})

	run([]string{"icache"}, func() {
		r := memoize(cache, "icache", p, stderr, func() experiments.ICacheResult { return experiments.ICacheStudy(p) })
		emit("icache", r.Table())
		fmt.Fprintf(stdout, "paper: techniques \"should, in general, also apply to the instruction cache\"\n")
		fmt.Fprintf(stdout, "here : bare 8KB L1I costs %.1f%%; a 32-entry filtered victim buffer recovers %+.1f%%\n",
			100*(1-r.ICacheCost()), 100*(r.VictimGain()-1))
	})

	run([]string{"sweep"}, func() {
		r := memoize(cache, "sweep", p, stderr, func() experiments.SweepResult { return experiments.ConfigSweep(p) })
		emit("sweep", r.Table())
		fmt.Fprintf(stdout, "generalization: worst-case overall accuracy %.1f%% across the grid;\n", 100*r.MinOverallAcc())
		fmt.Fprintln(stdout, "conflict share collapses with associativity, which is why the paper")
		fmt.Fprintln(stdout, "points at multithreaded and OLTP workloads rather than bigger caches")
	})

	run([]string{"cosched"}, func() {
		r := memoize(cache, "cosched", p, stderr, func() experiments.CoScheduleResult { return experiments.CoSchedule(p) })
		emit("cosched", r.Table())
		fmt.Fprintln(stdout, "paper Sec 5.6: jobs producing inordinate conflict misses together are bad co-schedule candidates")
	})

	if ran == 0 {
		fmt.Fprintf(stderr, "paperbench: unknown experiment %q\n", *which)
		fs.Usage()
		return 2
	}
	if cache != nil {
		hits, misses := cache.Stats()
		fmt.Fprintf(stderr, "(cache: %d hit(s), %d miss(es) under %s)\n", hits, misses, *cacheDir)
	}
	if failed > 0 {
		fmt.Fprintf(stderr, "paperbench: %d of %d experiment group(s) failed\n", failed, ran)
		return 1
	}
	return 0
}

// memoize wraps one experiment in the on-disk cache. On a hit the
// experiment is skipped entirely; the returned value is always the JSON
// round-trip of the computed one, so stdout is byte-identical whether the
// result was computed or replayed (cache diagnostics go to stderr).
func memoize[T any](c *runner.Cache, slug string, p experiments.Params, stderr io.Writer, f func() T) T {
	v, hit, err := runner.Memo(c, slug, p, func() (T, error) { return f(), nil })
	if err != nil {
		panic(err)
	}
	if hit {
		fmt.Fprintf(stderr, "(%s: cached)\n", slug)
	}
	return v
}
