// Command paperbench regenerates every table and figure of Collins &
// Tullsen, "Hardware Identification of Cache Conflict Misses" (MICRO-32,
// 1999), printing each as a plain-text table.
//
// Usage:
//
//	paperbench [-experiment all|fig1|fig2|fig3|table1|fig4|fig5|pseudo|fig6|fig7]
//	           [-instructions N] [-accesses N] [-seed N] [-quick]
//	           [-progress] [-nocache] [-cachedir DIR]
//	           [-task-timeout D] [-retries N] [-retry-backoff D] [-strict]
//	           [-resume] [-checkpointdir DIR] [-inject SPEC] [-fsync MODE]
//	           [-bench] [-benchout FILE]
//	           [-cpuprofile FILE] [-memprofile FILE]
//	           [-trace-out FILE] [-slow-factor N]
//
// The default scale (see internal/experiments.Default) is sized to finish
// in minutes on a laptop while giving stable statistics; -quick shrinks it
// for a fast sanity pass. EXPERIMENTS.md records a full run's output next
// to the paper's numbers.
//
// Results are memoized on disk (default results/cache/) keyed by
// experiment, parameters, seed, and code version, so re-running the same
// configuration replays the tables from cache in milliseconds. -nocache
// bypasses the cache entirely; deleting the directory invalidates it.
// All diagnostics (timings, progress, cache hits) go to stderr; stdout
// carries only the tables, byte-identical between cold and cached runs.
//
// Execution is fault tolerant (DESIGN.md §7). Every experiment fan-out
// runs under the runner's supervision layer: -task-timeout bounds each
// task attempt, -retries re-runs attempts that failed with an error
// marked transient (exponential backoff starting at -retry-backoff,
// deterministic jitter — reruns are byte-identical), and partial-results
// mode completes every sweep, printing tables for the experiments that
// succeeded and a failure summary (task labels, indices, attempt counts)
// to stderr for those that did not. The exit code is non-zero only when
// every selected experiment failed, or when any failed under -strict.
// Completed experiments are checkpointed to results/checkpoint/ (atomic
// write-temp-then-rename, keyed by a run ID over parameters, selection,
// and code version); a run killed mid-sweep and restarted with -resume
// replays the checkpointed cells from the memo cache and recomputes only
// the remainder. -inject installs a fault-injection schedule (see
// internal/faultinject.Parse: "error:2", "hang@fig5", "panic", ...) for
// chaos-testing that machinery against the real binary.
//
// -bench switches to the performance harness: instead of regenerating the
// paper's artifacts it benchmarks the simulation hot paths (cache access,
// oracle observe, fully-associative reference, workload generation,
// end-to-end instructions/second) and writes the machine-readable report
// to -benchout (default BENCH_pr6.json; see DESIGN.md for the schema) so
// the repo accumulates a performance trajectory PR over PR.
//
// -cpuprofile/-memprofile write pprof profiles covering the whole run —
// started through internal/runner before any worker-pool fan-out, so the
// profile captures the experiment workers, not just main.
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/durable"
	"repro/internal/experiments"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/perf"
	"repro/internal/runner"
	"repro/internal/stats"
)

func main() {
	os.Exit(paperbenchMain(os.Args[1:], os.Stdout, os.Stderr))
}

// paperbenchMain is the testable body of the command: it parses args,
// runs the selected experiments, writes tables to stdout and diagnostics
// to stderr, and returns the process exit code.
func paperbenchMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("paperbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		which    = fs.String("experiment", "all", "which artifact to regenerate: all, fig1, fig2, fig3, table1, fig4, fig5, pseudo, fig6, fig7, replacement, remap, cosched, depth, geometry, smt, icache, sweep")
		instrs   = fs.Uint64("instructions", 0, "instructions per timing run (0 = default scale)")
		memAcc   = fs.Uint64("accesses", 0, "memory accesses per functional run (0 = default scale)")
		seed     = fs.Uint64("seed", 0, "workload seed (0 = repo default)")
		quick    = fs.Bool("quick", false, "use the reduced test-scale parameters")
		csvDir   = fs.String("csvdir", "", "also write each table as CSV into this directory")
		progress = fs.Bool("progress", false, "stream per-job progress and timing to stderr")
		nocache  = fs.Bool("nocache", false, "recompute everything, ignoring the on-disk result cache")
		cacheDir = fs.String("cachedir", runner.DefaultCacheDir, "on-disk result cache directory")

		taskTimeout  = fs.Duration("task-timeout", 0, "per-task attempt deadline (0 = unbounded); wedged tasks are abandoned so the sweep completes")
		retries      = fs.Int("retries", 2, "extra attempts per task for failures marked transient")
		retryBackoff = fs.Duration("retry-backoff", runner.DefaultBackoff, "base retry backoff (exponential, deterministic jitter)")
		strict       = fs.Bool("strict", false, "exit non-zero if ANY experiment failed (default: only if all failed)")
		resume       = fs.Bool("resume", false, "resume an interrupted run: replay checkpointed experiments from the cache, recompute the rest")
		ckptDir      = fs.String("checkpointdir", runner.DefaultCheckpointDir, "sweep checkpoint directory")
		inject       = fs.String("inject", "", "fault-injection schedule for chaos testing, e.g. 'error:2' or 'hang@fig5,panic@sim' (see internal/faultinject)")
		fsyncMode    = fs.String("fsync", "off", "fsync policy for checkpoint/cache writes: off (process-crash safe only), data, always")

		bench    = fs.Bool("bench", false, "benchmark the simulation hot paths and write -benchout instead of running experiments")
		benchOut = fs.String("benchout", "BENCH_pr7.json", "machine-readable benchmark report path (with -bench)")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile covering the whole run (worker pool included)")
		memProf  = fs.String("memprofile", "", "write a heap profile at the end of the run")

		traceOut   = fs.String("trace-out", "", "write finished trace spans (one per task attempt, batch, cache lookup) as NDJSON to this file")
		slowFactor = fs.Float64("slow-factor", 8, "log task attempts slower than this multiple of their label's running median (0 = off)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// Checkpoint and cache writes follow one durability policy. Off by
	// default for the CLI: temp+rename already survives process crashes
	// (including SIGKILL); fsync only buys power-loss safety, at real
	// latency cost per experiment.
	fsync, err := durable.ParsePolicy(*fsyncMode)
	if err != nil {
		fmt.Fprintln(stderr, "paperbench:", err)
		return 2
	}
	runner.SetSyncPolicy(fsync)
	defer runner.SetSyncPolicy(durable.PolicyOff)

	// Tracing is opt-in and process-global: the runner's per-attempt spans
	// reach the exporter from every fan-out below. Disabled (the default),
	// span creation is a single atomic load — see internal/obs.
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(stderr, "paperbench:", err)
			return 1
		}
		exp := obs.NewNDJSONExporter(f)
		obs.SetExporter(exp)
		defer func() {
			obs.SetExporter(nil)
			if err := exp.Close(); err != nil {
				fmt.Fprintln(stderr, "paperbench: trace-out:", err)
			}
		}()
	}
	if *slowFactor > 0 {
		obs.SetSlowLog(*slowFactor, 8, func(e obs.SlowEvent) {
			enc, _ := json.Marshal(e)
			fmt.Fprintf(stderr, "paperbench: slow task %s\n", enc)
		})
		defer obs.SetSlowLog(0, 0, nil)
	}

	// Profiles bracket everything below — experiment fan-outs and the
	// bench harness both run inside them.
	if *cpuProf != "" {
		stop, err := runner.StartCPUProfile(*cpuProf)
		if err != nil {
			fmt.Fprintln(stderr, "paperbench:", err)
			return 1
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(stderr, "paperbench:", err)
			}
		}()
	}
	if *memProf != "" {
		defer func() {
			if err := runner.WriteHeapProfile(*memProf); err != nil {
				fmt.Fprintln(stderr, "paperbench:", err)
			}
		}()
	}

	if *bench {
		start := time.Now()
		report := perf.NewReport(perf.Components())
		if err := report.WriteJSON(*benchOut); err != nil {
			fmt.Fprintln(stderr, "paperbench:", err)
			return 1
		}
		fmt.Fprintln(stdout, report.Table())
		for _, c := range report.Components {
			if c.Name == "sim.endtoend" {
				fmt.Fprintf(stdout, "end-to-end: %.0f instrs/sec (%.1f ns/instr)\n",
					c.Metrics["instrs_per_sec"], c.Metrics["ns_per_instr"])
			}
		}
		fmt.Fprintf(stderr, "(bench: report written to %s in %.1fs)\n", *benchOut, time.Since(start).Seconds())
		return 0
	}

	p := experiments.Default()
	if *quick {
		p = experiments.Quick()
	}
	if *instrs != 0 {
		p.Instructions = *instrs
	}
	if *memAcc != 0 {
		p.MemAccesses = *memAcc
	}
	if *seed != 0 {
		p.Seed = *seed
	}

	// Fault injection (chaos testing) threads through the runner's task
	// hook, so injected faults hit the exact code paths real failures do.
	if *inject != "" {
		fault, err := faultinject.Parse(*inject)
		if err != nil {
			fmt.Fprintln(stderr, "paperbench:", err)
			return 2
		}
		restore := faultinject.Install(fault)
		defer restore()
		fmt.Fprintf(stderr, "(faultinject: %s)\n", *inject)
	}

	// Supervision policy for every experiment fan-out in the process:
	// partial results (a failed cell names itself in a MultiError instead
	// of aborting the sweep), bounded retry for transient failures, and
	// the per-task deadline when one was requested.
	defaults := []runner.Option{
		runner.PartialResults(),
		runner.Retry(*retries, *retryBackoff),
	}
	if *taskTimeout > 0 {
		defaults = append(defaults, runner.Deadline(*taskTimeout))
	}
	runner.SetDefaultOptions(defaults...)
	defer runner.SetDefaultOptions()

	var cache *runner.Cache // nil = disabled (-nocache)
	if !*nocache {
		cache = runner.Open(*cacheDir)
		cache.SetLogf(func(format string, args ...any) {
			fmt.Fprintf(stderr, format+"\n", args...)
		})
	}
	if *progress {
		runner.SetReporter(runner.NewWriterReporter(stderr))
		defer runner.SetReporter(nil)
	}

	// Validate the selection against the experiment registry before running
	// anything: a typo'd -experiment must fail loudly with the valid names,
	// not silently run nothing. The same validation guards the service's
	// sweep endpoint (internal/service), so the two front ends agree on
	// what exists.
	var selection []string
	wanted := map[string]bool{}
	for _, w := range strings.Split(*which, ",") {
		w = strings.TrimSpace(w)
		selection = append(selection, w)
		wanted[w] = true
	}
	if err := experiments.ValidateSelection(selection); err != nil {
		fmt.Fprintln(stderr, "paperbench:", err)
		return 2
	}
	all := wanted["all"]

	// Spans from this run carry the checkpoint run ID as their default
	// trace, so an NDJSON trace file joins back to the exact configuration
	// (parameters, selection, code version) that produced it.
	obs.SetDefaultTrace("paperbench-" + runID(p, wanted))
	defer obs.SetDefaultTrace("")

	// Sweep checkpoint: keyed by (parameters, selection, code version) so
	// a rerun of the same configuration finds its own progress and nothing
	// else's. Checkpointing needs the cache (it records cache keys), so
	// -nocache disables it.
	var ckpt *runner.Checkpoint
	if cache != nil {
		ckpt = runner.OpenCheckpoint(*ckptDir, runID(p, wanted))
		if *resume {
			if n := ckpt.Len(); n > 0 {
				fmt.Fprintf(stderr, "(resume: checkpoint lists %d completed experiment(s): %s)\n",
					n, strings.Join(ckpt.DoneSlugs(), ", "))
			} else {
				fmt.Fprintln(stderr, "(resume: no checkpoint for this configuration; running everything)")
			}
		} else if ckpt.Len() > 0 {
			// A stale checkpoint from an interrupted identical run: without
			// -resume the run starts over, so drop the old progress record.
			ckpt.Reset()
		}
	} else if *resume {
		fmt.Fprintln(stderr, "paperbench: -resume needs the result cache; ignoring it under -nocache")
	}

	emit := func(slug string, t *stats.Table) {
		fmt.Fprintln(stdout, t)
		if *csvDir == "" {
			return
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(stderr, "paperbench:", err)
			os.Exit(1)
		}
		path := filepath.Join(*csvDir, slug+".csv")
		if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
			fmt.Fprintln(stderr, "paperbench:", err)
			os.Exit(1)
		}
	}

	ran, failed := 0, 0
	run := func(names []string, f func() error) {
		hit := all
		for _, n := range names {
			hit = hit || wanted[n]
		}
		if !hit {
			return
		}
		ran++
		start := time.Now()
		// One failing experiment must not take down the rest of the sweep:
		// errors (and any stray panic) are rendered as a failure summary on
		// stderr and the run continues with the next experiment.
		err := func() (err error) {
			defer func() {
				if r := recover(); r != nil {
					err = fmt.Errorf("panic: %v", r)
				}
			}()
			return f()
		}()
		if err != nil {
			failed++
			renderFailure(stderr, names[0], err)
		}
		// Blank separator between experiment blocks (deterministic, so it
		// belongs on stdout); the timing is diagnostic and goes to stderr.
		fmt.Fprintln(stdout)
		fmt.Fprintf(stderr, "(%s in %.1fs)\n", names[0], time.Since(start).Seconds())
	}

	run([]string{"fig1"}, func() error {
		r, err := memoize(cache, ckpt, "fig1", p, stderr, *resume, func() (experiments.Fig1Result, error) { return experiments.Figure1(p) })
		if err != nil {
			return err
		}
		emit("fig1", r.Table())
		fmt.Fprintf(stdout, "paper: 88%%/86%% conflict/capacity on 16KB DM, 91%%/92%% on 64KB DM; ≥87%% of misses overall\n")
		fmt.Fprintf(stdout, "here : %.0f%%/%.0f%% on 16KB DM, %.0f%%/%.0f%% on 64KB DM\n",
			100*r.MeanConflictAcc["16KB-DM"], 100*r.MeanCapacityAcc["16KB-DM"],
			100*r.MeanConflictAcc["64KB-DM"], 100*r.MeanCapacityAcc["64KB-DM"])
		return nil
	})

	run([]string{"fig2"}, func() error {
		r, err := memoize(cache, ckpt, "fig2", p, stderr, *resume, func() (experiments.Fig2Result, error) { return experiments.Figure2(p) })
		if err != nil {
			return err
		}
		emit("fig2", r.Table())
		fmt.Fprintln(stdout, "paper: 8-12 bits ≈ full-tag accuracy; 1 bit excludes ~half of capacity misses cheaply")
		return nil
	})

	run([]string{"fig3", "table1"}, func() error {
		r, err := memoize(cache, ckpt, "fig3", p, stderr, *resume, func() (experiments.Fig3Result, error) { return experiments.Figure3(p) })
		if err != nil {
			return err
		}
		if all || wanted["fig3"] {
			emit("fig3", r.Table())
			fmt.Fprintln(stdout, r.Chart("geomean speedup over no victim cache (| marks 1.0)", 0))
			fmt.Fprintf(stdout, "paper: combined filtering ≈ +3%% over the traditional victim cache; here %+.1f%%\n",
				100*(r.CombinedOverTraditional()-1))
		}
		if all || wanted["table1"] {
			emit("table1", r.Table1Text())
			fmt.Fprintln(stdout, "paper Table 1: fills 6.6 -> 2.6 (more than halved), swaps 1.7 -> 0.1, total HR -0.3pp")
		}
		return nil
	})

	run([]string{"fig4"}, func() error {
		r, err := memoize(cache, ckpt, "fig4", p, stderr, *resume, func() (experiments.Fig4Result, error) { return experiments.Figure4(p) })
		if err != nil {
			return err
		}
		emit("fig4", r.Table())
		fmt.Fprintf(stdout, "paper: ~+25%% prefetch accuracy from filtering, little speedup by itself; here %+.0f%% accuracy\n",
			100*r.AccuracyGain())
		return nil
	})

	run([]string{"fig5"}, func() error {
		r, err := memoize(cache, ckpt, "fig5", p, stderr, *resume, func() (experiments.Fig5Result, error) { return experiments.Figure5(p) })
		if err != nil {
			return err
		}
		emit("fig5", r.Table())
		hr, sp := r.CapacityBeatsMAT()
		fmt.Fprintf(stdout, "paper: the simple capacity filter beats the MAT on hit rate and speedup; here hitrate=%v speedup=%v\n", hr, sp)
		return nil
	})

	run([]string{"pseudo"}, func() error {
		r, err := memoize(cache, ckpt, "pseudo", p, stderr, *resume, func() (experiments.PseudoResult, error) { return experiments.PseudoAssoc(p) })
		if err != nil {
			return err
		}
		emit("pseudo", r.Table())
		base, mct := r.MissRates()
		fmt.Fprintf(stdout, "paper: MCT policy +1.5%% over base PA, within 0.9%% of true 2-way, miss rate 10.22%%->9.83%%\n")
		fmt.Fprintf(stdout, "here : %+.1f%% over base PA, %.1f%% vs 2-way, miss rate %.2f%%->%.2f%%\n",
			100*(r.MCTOverBase()-1), 100*(r.MCTVsTwoWay()-1), 100*base, 100*mct)
		return nil
	})

	run([]string{"fig6", "fig7"}, func() error {
		r, err := memoize(cache, ckpt, "fig6", p, stderr, *resume, func() (experiments.Fig6Result, error) { return experiments.Figure6(p) })
		if err != nil {
			return err
		}
		if all || wanted["fig6"] {
			emit("fig6", r.Table())
			fmt.Fprintln(stdout, r.Chart("geomean speedup over no buffer (| marks 1.0)", 0))
			sn, s := r.BestSingleGain()
			cn, c := r.BestComboGain()
			fmt.Fprintf(stdout, "paper: best combo ≈ 2x the best single policy's gain (~16%% better), ~30%% miss-rate cut\n")
			fmt.Fprintf(stdout, "here : best single %s %+.1f%%, best combo %s %+.1f%%, miss-rate cut %.0f%%\n",
				sn, 100*(s-1), cn, 100*(c-1), 100*r.MissRateReduction())
		}
		if all || wanted["fig7"] {
			emit("fig7", r.Figure7Table())
		}
		return nil
	})

	run([]string{"replacement"}, func() error {
		r, err := memoize(cache, ckpt, "replacement", p, stderr, *resume, func() (experiments.ReplacementResult, error) { return experiments.Replacement(p) })
		if err != nil {
			return err
		}
		emit("replacement", r.Table())
		fmt.Fprintln(stdout, "paper Sec 5.6: modest on this suite by the paper's own admission; the bias must not hurt")
		return nil
	})

	run([]string{"remap"}, func() error {
		r, err := memoize(cache, ckpt, "remap", p, stderr, *resume, func() (experiments.RemapResult, error) { return experiments.Remap(p) })
		if err != nil {
			return err
		}
		emit("remap", r.Table())
		ra, rc, ma, mc := r.RemapEfficiency()
		fmt.Fprintf(stdout, "paper Sec 5.6: count only conflict misses to avoid pointless remaps\n")
		fmt.Fprintf(stdout, "here : all-miss counting %d remaps (mean miss %.2f%%); conflict-only %d remaps (mean miss %.2f%%)\n",
			ra, 100*ma, rc, 100*mc)
		return nil
	})

	run([]string{"depth"}, func() error {
		r, err := memoize(cache, ckpt, "depth", p, stderr, *resume, func() (experiments.DepthResult, error) { return experiments.MCTDepth(p) })
		if err != nil {
			return err
		}
		emit("depth", r.Table())
		fmt.Fprintln(stdout, "extension the paper set aside: deeper eviction history buys conflict accuracy")
		fmt.Fprintln(stdout, "but loses capacity accuracy to false matches — the one-deep table is the sweet spot")
		return nil
	})

	run([]string{"geometry"}, func() error {
		r, err := memoize(cache, ckpt, "geometry", p, stderr, *resume, func() (experiments.GeometryResult, error) { return experiments.GeometryStudy(p) })
		if err != nil {
			return err
		}
		emit("geometry", r.Table())
		fmt.Fprintf(stdout, "beyond the paper: the MCT assumes modulo indexing; under conflict-destroying defenses\n")
		fmt.Fprintf(stdout, "here : suite conflict accuracy %.1f%% (modulo) -> %.1f%% (skewed) -> %.1f%% (random)\n",
			100*r.MeanConflictAcc["modulo"], 100*r.MeanConflictAcc["skewed"], 100*r.MeanConflictAcc["random"])
		return nil
	})

	run([]string{"smt"}, func() error {
		r, err := memoize(cache, ckpt, "smt", p, stderr, *resume, func() (experiments.SMTResult, error) { return experiments.SMTStudy(p) })
		if err != nil {
			return err
		}
		emit("smt", r.Table())
		fmt.Fprintf(stdout, "paper Sec 5.6: the techniques \"apply to an even greater extent with multithreaded caches\"\n")
		fmt.Fprintf(stdout, "here : AMB gains %+.1f%% on 2-thread shared caches vs %+.1f%% on solo runs\n",
			100*(r.PairGain()-1), 100*(r.SingleGain-1))
		return nil
	})

	run([]string{"icache"}, func() error {
		r, err := memoize(cache, ckpt, "icache", p, stderr, *resume, func() (experiments.ICacheResult, error) { return experiments.ICacheStudy(p) })
		if err != nil {
			return err
		}
		emit("icache", r.Table())
		fmt.Fprintf(stdout, "paper: techniques \"should, in general, also apply to the instruction cache\"\n")
		fmt.Fprintf(stdout, "here : bare 8KB L1I costs %.1f%%; a 32-entry filtered victim buffer recovers %+.1f%%\n",
			100*(1-r.ICacheCost()), 100*(r.VictimGain()-1))
		return nil
	})

	run([]string{"sweep"}, func() error {
		r, err := memoize(cache, ckpt, "sweep", p, stderr, *resume, func() (experiments.SweepResult, error) { return experiments.ConfigSweep(p) })
		if err != nil {
			return err
		}
		emit("sweep", r.Table())
		fmt.Fprintf(stdout, "generalization: worst-case overall accuracy %.1f%% across the grid;\n", 100*r.MinOverallAcc())
		fmt.Fprintln(stdout, "conflict share collapses with associativity, which is why the paper")
		fmt.Fprintln(stdout, "points at multithreaded and OLTP workloads rather than bigger caches")
		return nil
	})

	run([]string{"cosched"}, func() error {
		r, err := memoize(cache, ckpt, "cosched", p, stderr, *resume, func() (experiments.CoScheduleResult, error) { return experiments.CoSchedule(p) })
		if err != nil {
			return err
		}
		emit("cosched", r.Table())
		fmt.Fprintln(stdout, "paper Sec 5.6: jobs producing inordinate conflict misses together are bad co-schedule candidates")
		return nil
	})

	run([]string{"mrc"}, func() error {
		r, err := memoize(cache, ckpt, "mrc", p, stderr, *resume, func() (experiments.MRCResult, error) { return experiments.MRCStudy(p) })
		if err != nil {
			return err
		}
		emit("mrc", r.Table())
		fmt.Fprintf(stdout, "extension: SHARDS-style sampling at rate 0.01 stays within %.3f mean / %.3f worst\n",
			r.MeanMAE["0.01"], r.WorstErr["0.01"])
		fmt.Fprintln(stdout, "absolute miss-ratio error of exact stack distances (what /v1/mrc serves)")
		return nil
	})

	if ran == 0 {
		// Unreachable for registry-validated selections, but kept as a
		// defensive gate: the run must never "succeed" having run nothing.
		fmt.Fprintf(stderr, "paperbench: selection %q ran no experiments\n", *which)
		fs.Usage()
		return 2
	}
	if cache != nil {
		hits, misses := cache.Stats()
		fmt.Fprintf(stderr, "(cache: %d hit(s), %d miss(es) under %s)\n", hits, misses, *cacheDir)
		if q := cache.Quarantined(); q > 0 {
			fmt.Fprintf(stderr, "(cache: %d corrupt entr(ies) quarantined under %s)\n", q, filepath.Join(*cacheDir, runner.QuarantineDirName))
		}
	}
	if failed > 0 {
		fmt.Fprintf(stderr, "paperbench: %d of %d experiment group(s) failed\n", failed, ran)
		if *strict || failed == ran {
			return 1
		}
		fmt.Fprintln(stderr, "paperbench: partial results above; rerun with -resume to retry the failures (-strict makes this exit non-zero)")
		return 0
	}
	// Full success: the run is complete, so there is nothing to resume.
	if err := ckpt.Remove(); err != nil {
		fmt.Fprintln(stderr, "paperbench: removing checkpoint:", err)
	}
	return 0
}

// runID derives the checkpoint identity of this invocation: a digest of
// the parameters, the normalized experiment selection, and the code
// version — everything that decides which cells the run computes and
// what their cache keys are. Deterministic, so a rerun of the same
// configuration (with or without -resume) maps to the same checkpoint
// file.
func runID(p experiments.Params, wanted map[string]bool) string {
	sel := make([]string, 0, len(wanted))
	for w := range wanted {
		sel = append(sel, w)
	}
	sort.Strings(sel)
	enc, _ := json.Marshal(p)
	h := sha256.New()
	fmt.Fprintf(h, "code=%s\x00params=%s\x00sel=%s", runner.CodeVersion(), enc, strings.Join(sel, ","))
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// renderFailure writes the failure summary of one experiment group to
// stderr: every failed task with its label, index, and attempt count
// when the error carries that structure (runner.MultiError/TaskError),
// else the plain error.
func renderFailure(w io.Writer, name string, err error) {
	fmt.Fprintf(w, "paperbench: experiment %s FAILED:\n", name)
	var me *runner.MultiError
	var te *runner.TaskError
	switch {
	case errors.As(err, &me):
		fmt.Fprintf(w, "  %d of %d task(s) failed:\n", len(me.Failures), me.Total)
		for _, f := range me.Failures {
			fmt.Fprintf(w, "  - task %d (%s), %d attempt(s): %v\n", f.Index, label(f.Label), f.Attempts, f.Err)
		}
	case errors.As(err, &te):
		fmt.Fprintf(w, "  - task %d (%s), %d attempt(s): %v\n", te.Index, label(te.Label), te.Attempts, te.Err)
	default:
		fmt.Fprintf(w, "  %v\n", err)
	}
}

// label never renders empty.
func label(s string) string {
	if s == "" {
		return "unnamed"
	}
	return s
}

// memoize wraps one experiment in the on-disk cache and records its
// completion in the sweep checkpoint. On a hit the experiment is skipped
// entirely; the returned value is always the JSON round-trip of the
// computed one, so stdout is byte-identical whether the result was
// computed or replayed (cache diagnostics go to stderr). Failed
// experiments are neither cached nor checkpointed — a later -resume run
// recomputes exactly those.
func memoize[T any](c *runner.Cache, ckpt *runner.Checkpoint, slug string, p experiments.Params, stderr io.Writer, resume bool, f func() (T, error)) (T, error) {
	v, hit, err := runner.Memo(c, slug, p, f)
	if err != nil {
		return v, err
	}
	if hit {
		fmt.Fprintf(stderr, "(%s: cached)\n", slug)
	}
	if resume {
		if _, done := ckpt.DoneKey(slug); done && !hit {
			// The checkpoint promised this cell but the cache could not
			// deliver it (entry quarantined, cache cleared): recomputed.
			fmt.Fprintf(stderr, "(resume: %s was checkpointed but missed the cache; recomputed)\n", slug)
		}
	}
	if key, kerr := runner.Key(slug, p); kerr == nil {
		if cerr := ckpt.MarkDone(slug, key); cerr != nil {
			fmt.Fprintf(stderr, "paperbench: checkpointing %s: %v\n", slug, cerr)
		}
	}
	return v, nil
}
