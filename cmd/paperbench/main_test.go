package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestFig2QuickGolden pins the exact stdout of
// `paperbench -quick -experiment fig2` against a committed golden file —
// a whole-pipeline regression net over the workload generators, the
// cache model, the MCT, the runner's ordered merge, and the table
// renderer at once. Regenerate with: go test ./cmd/paperbench -update
func TestFig2QuickGolden(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := paperbenchMain(
		[]string{"-quick", "-experiment", "fig2", "-cachedir", filepath.Join(t.TempDir(), "cache")},
		&stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code %d, stderr:\n%s", code, stderr.String())
	}

	golden := filepath.Join("testdata", "fig2_quick.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, stdout.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(stdout.Bytes(), want) {
		t.Errorf("fig2 -quick output drifted from %s.\n--- got ---\n%s\n--- want ---\n%s",
			golden, stdout.String(), want)
	}
}

// TestFig2CacheReplayIdentical runs the same invocation twice against one
// cache directory: the second run must hit the cache and produce
// byte-identical stdout — the memoized replay is indistinguishable from
// the computation.
func TestFig2CacheReplayIdentical(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	args := []string{"-quick", "-experiment", "fig2", "-cachedir", dir}

	var out1, err1 bytes.Buffer
	if code := paperbenchMain(args, &out1, &err1); code != 0 {
		t.Fatalf("first run exit %d:\n%s", code, err1.String())
	}
	if strings.Contains(err1.String(), "cached") {
		t.Fatal("first run must not hit the cache")
	}

	var out2, err2 bytes.Buffer
	if code := paperbenchMain(args, &out2, &err2); code != 0 {
		t.Fatalf("second run exit %d:\n%s", code, err2.String())
	}
	if !strings.Contains(err2.String(), "(fig2: cached)") {
		t.Fatalf("second run must hit the cache, stderr:\n%s", err2.String())
	}
	if !bytes.Equal(out1.Bytes(), out2.Bytes()) {
		t.Error("cached replay stdout differs from computed stdout")
	}
}

// TestNoCacheBypassesDisk verifies -nocache never reads or writes the
// cache directory.
func TestNoCacheBypassesDisk(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	var out, errB bytes.Buffer
	if code := paperbenchMain(
		[]string{"-quick", "-experiment", "fig2", "-nocache", "-cachedir", dir},
		&out, &errB); code != 0 {
		t.Fatalf("exit %d:\n%s", code, errB.String())
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Error("-nocache must not create the cache directory")
	}
	if strings.Contains(errB.String(), "cache:") {
		t.Error("-nocache must not report cache stats")
	}
}

// TestTraceOutWritesSpans runs a quick experiment with -trace-out and
// checks the NDJSON: every line is a span record, runner.task spans are
// present (one per sweep cell attempt), and they all share the
// configuration-derived default trace ID — and that stdout stays
// byte-identical to a run without tracing (observability must not leak
// into the artifacts).
func TestTraceOutWritesSpans(t *testing.T) {
	out := filepath.Join(t.TempDir(), "spans.ndjson")
	var traced, plain, errB bytes.Buffer
	args := []string{"-quick", "-experiment", "fig2", "-nocache"}
	if code := paperbenchMain(append(args, "-trace-out", out), &traced, &errB); code != 0 {
		t.Fatalf("exit %d:\n%s", code, errB.String())
	}
	if code := paperbenchMain(args, &plain, &errB); code != 0 {
		t.Fatalf("untraced run exit %d:\n%s", code, errB.String())
	}
	if !bytes.Equal(traced.Bytes(), plain.Bytes()) {
		t.Error("-trace-out changed stdout; tables must be byte-identical")
	}

	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var tasks int
	traces := map[string]bool{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var rec obs.SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("trace line is not a span record: %v\n%s", err, sc.Text())
		}
		if rec.Name == "runner.task" {
			tasks++
		}
		traces[rec.Trace] = true
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if tasks == 0 {
		t.Error("no runner.task spans in trace output")
	}
	// All spans share the one configuration-derived trace ID.
	if len(traces) != 1 {
		t.Errorf("expected a single shared trace ID, got %v", traces)
	}
	for tr := range traces {
		if !strings.HasPrefix(tr, "paperbench-") {
			t.Errorf("span trace %q does not carry the run ID", tr)
		}
	}
}

// TestUnknownExperimentExitCode keeps the CLI contract: an unknown
// -experiment value is a usage error naming the valid selections, and a
// selection mixing valid and invalid names runs nothing rather than
// silently dropping the typo.
func TestUnknownExperimentExitCode(t *testing.T) {
	var out, errB bytes.Buffer
	if code := paperbenchMain([]string{"-experiment", "nonsense"}, &out, &errB); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if !strings.Contains(errB.String(), `unknown experiment "nonsense"`) {
		t.Errorf("missing diagnostic, stderr:\n%s", errB.String())
	}
	if !strings.Contains(errB.String(), "valid:") || !strings.Contains(errB.String(), "fig1") {
		t.Errorf("diagnostic must list the valid experiment names, stderr:\n%s", errB.String())
	}

	out.Reset()
	errB.Reset()
	if code := paperbenchMain([]string{"-quick", "-experiment", "fig2,nope"}, &out, &errB); code != 2 {
		t.Fatalf("mixed valid+invalid selection: exit code %d, want 2", code)
	}
	if out.Len() != 0 {
		t.Errorf("mixed selection must run nothing, but stdout has:\n%s", out.String())
	}
	if !strings.Contains(errB.String(), `unknown experiment "nope"`) {
		t.Errorf("missing diagnostic for the typo, stderr:\n%s", errB.String())
	}
}
