package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// These tests chaos-test the real binary's supervision machinery: fault
// schedules injected via -inject must leave stdout byte-identical
// (acceptance criterion of the fault-tolerance work), hangs must be cut
// by -task-timeout, and an interrupted run must resume from its
// checkpoint recomputing only the unfinished cells.
//
// The default tests use a fast experiment subset; set
// PAPERBENCH_CHAOS_FULL=1 to run the full -experiment all convergence
// check (adds a few minutes).

// chaosRun invokes paperbench with a private cache/checkpoint dir layout
// under root.
func chaosRun(t *testing.T, root string, extra ...string) (code int, stdout, stderr string) {
	t.Helper()
	args := append([]string{
		"-cachedir", filepath.Join(root, "cache"),
		"-checkpointdir", filepath.Join(root, "checkpoint"),
	}, extra...)
	var out, errB bytes.Buffer
	code = paperbenchMain(args, &out, &errB)
	return code, out.String(), errB.String()
}

// TestChaosInjectedErrorsConvergeByteIdentical: a transient-fault
// schedule covered by the retry budget produces byte-identical stdout to
// the fault-free run, cold cache on both sides.
func TestChaosInjectedErrorsConvergeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos convergence runs real experiments")
	}
	sel := "fig1,remap,cosched"
	if os.Getenv("PAPERBENCH_CHAOS_FULL") != "" {
		sel = "all"
	}

	code, clean, errClean := chaosRun(t, t.TempDir(), "-quick", "-experiment", sel)
	if code != 0 {
		t.Fatalf("clean run exit %d:\n%s", code, errClean)
	}

	code, faulted, errFaulted := chaosRun(t, t.TempDir(), "-quick", "-experiment", sel,
		"-inject", "error:2", "-retries", "2", "-retry-backoff", "1ms", "-task-timeout", "2m")
	if code != 0 {
		t.Fatalf("faulted run exit %d:\n%s", code, errFaulted)
	}
	if faulted != clean {
		t.Errorf("faulted stdout diverged from clean run.\n--- clean ---\n%s\n--- faulted ---\n%s", clean, faulted)
	}
	if !strings.Contains(errFaulted, "faultinject: error:2") {
		t.Errorf("stderr should announce the injected schedule:\n%s", errFaulted)
	}
}

// TestChaosRetryBudgetTooSmallFailsGracefully: three injected failures
// against two retries exhausts the budget; the run reports structured
// failures on stderr and exits non-zero only because everything failed.
func TestChaosRetryBudgetTooSmallFailsGracefully(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test runs real experiments")
	}
	code, stdout, stderr := chaosRun(t, t.TempDir(), "-quick", "-experiment", "cosched",
		"-inject", "error:3@cosched", "-retries", "2", "-retry-backoff", "1ms")
	if code != 1 {
		t.Fatalf("exit %d, want 1 (every selected experiment failed):\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "experiment cosched FAILED") {
		t.Errorf("missing failure summary:\n%s", stderr)
	}
	if !strings.Contains(stderr, "3 attempt(s)") {
		t.Errorf("failure summary should carry attempt counts:\n%s", stderr)
	}
	if !strings.Contains(stderr, "injected") {
		t.Errorf("failure summary should surface the underlying error:\n%s", stderr)
	}
	if strings.Contains(stdout, "co-schedule ranking") {
		t.Error("failed experiment must not print its table")
	}
}

// TestChaosHangCutByTaskTimeout: a wedged task (ignoring its context
// would be runner-level; here the injected hang is cooperative) must be
// cut by -task-timeout so the run terminates promptly.
func TestChaosHangCutByTaskTimeout(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test runs real experiments")
	}
	code, _, stderr := chaosRun(t, t.TempDir(), "-quick", "-experiment", "cosched",
		"-inject", "hang@cosched", "-task-timeout", "100ms")
	if code != 1 {
		t.Fatalf("exit %d, want 1:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "deadline") {
		t.Errorf("failure summary should name the deadline:\n%s", stderr)
	}
}

// TestPartialFailureExitPolicy: with one of two experiments failing, the
// default run still exits 0 (partial results), -strict exits 1, and the
// surviving experiment's table prints either way.
func TestPartialFailureExitPolicy(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test runs real experiments")
	}
	args := []string{"-quick", "-experiment", "fig1,cosched", "-inject", "fatal@cosched",
		"-retries", "0"}

	code, stdout, stderr := chaosRun(t, t.TempDir(), args...)
	if code != 0 {
		t.Fatalf("partial failure should exit 0 without -strict, got %d:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "MCT classification accuracy") {
		t.Errorf("surviving fig1 table missing:\n%s", stdout)
	}
	if !strings.Contains(stderr, "1 of 2 experiment group(s) failed") {
		t.Errorf("missing failure tally:\n%s", stderr)
	}

	code, _, stderr = chaosRun(t, t.TempDir(), append(args, "-strict")...)
	if code != 1 {
		t.Fatalf("-strict must exit 1 on any failure, got %d:\n%s", code, stderr)
	}
}

// TestKillAndResumeRecomputesOnlyUnfinishedCells is the acceptance test
// for checkpoint/resume: run 1 is "killed" mid-sweep (simulated by a
// panic fault that takes down its second experiment), run 2 resumes and
// must replay the finished experiment from cache — verified by the cache
// hit counter — while recomputing only the failed one.
func TestKillAndResumeRecomputesOnlyUnfinishedCells(t *testing.T) {
	if testing.Short() {
		t.Skip("resume test runs real experiments")
	}
	root := t.TempDir()
	sel := []string{"-quick", "-experiment", "fig1,cosched"}

	// Run 1: fig1 completes and checkpoints; cosched dies to an injected
	// panic. -strict makes the partial failure visible in the exit code.
	code, out1, err1 := chaosRun(t, root, append(sel, "-strict", "-inject", "panic@cosched", "-retries", "0")...)
	if code != 1 {
		t.Fatalf("run 1 exit %d, want 1:\n%s", code, err1)
	}
	if !strings.Contains(err1, "panicked") {
		t.Errorf("run 1 should report the panic:\n%s", err1)
	}

	// The checkpoint must have recorded fig1 (and only fig1).
	ckpts, _ := os.ReadDir(filepath.Join(root, "checkpoint"))
	if len(ckpts) != 1 {
		t.Fatalf("checkpoint dir has %d files, want 1", len(ckpts))
	}
	raw, _ := os.ReadFile(filepath.Join(root, "checkpoint", ckpts[0].Name()))
	if !strings.Contains(string(raw), `"fig1"`) || strings.Contains(string(raw), `"cosched"`) {
		t.Fatalf("checkpoint should record exactly fig1:\n%s", raw)
	}

	// Run 2: resume without the fault. fig1 must come from cache (hit
	// counter ≥ 1 and the cached marker on stderr), cosched recomputes.
	code, out2, err2 := chaosRun(t, root, append(sel, "-resume")...)
	if code != 0 {
		t.Fatalf("run 2 exit %d:\n%s", code, err2)
	}
	if !strings.Contains(err2, "resume: checkpoint lists 1 completed experiment(s): fig1") {
		t.Errorf("run 2 should announce the resumed progress:\n%s", err2)
	}
	if !strings.Contains(err2, "(fig1: cached)") {
		t.Errorf("fig1 must replay from cache on resume:\n%s", err2)
	}
	if strings.Contains(err2, "(cosched: cached)") {
		t.Errorf("cosched must be recomputed, not replayed:\n%s", err2)
	}
	if !strings.Contains(err2, "(cache: 1 hit(s), 1 miss(es)") {
		t.Errorf("cache counters should show exactly 1 hit + 1 miss:\n%s", err2)
	}

	// The resumed run's stdout must equal a clean uninterrupted run's.
	codeClean, clean, errClean := chaosRun(t, t.TempDir(), sel...)
	if codeClean != 0 {
		t.Fatalf("clean run exit %d:\n%s", codeClean, errClean)
	}
	if out2 != clean {
		t.Errorf("resumed stdout diverged from a clean run.\n--- clean ---\n%s\n--- resumed ---\n%s", clean, out2)
	}
	// Run 1's partial stdout is a strict prefix-by-experiment of the
	// clean output: fig1's block printed, cosched's did not.
	if !strings.Contains(out1, "MCT classification accuracy") || strings.Contains(out1, "co-schedule ranking") {
		t.Errorf("run 1 stdout should contain fig1's table only:\n%s", out1)
	}

	// Full success removed the checkpoint: nothing left to resume.
	ckpts, _ = os.ReadDir(filepath.Join(root, "checkpoint"))
	if len(ckpts) != 0 {
		t.Errorf("completed run left %d checkpoint file(s) behind", len(ckpts))
	}
}

// TestResumeWithoutCheckpointIsHarmless: -resume on a fresh configuration
// just runs everything.
func TestResumeWithoutCheckpointIsHarmless(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real experiment")
	}
	code, _, stderr := chaosRun(t, t.TempDir(), "-quick", "-experiment", "fig2", "-resume")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "resume: no checkpoint") {
		t.Errorf("missing fresh-resume notice:\n%s", stderr)
	}
}

// TestResumeUnderNoCacheWarns: -resume needs the cache; under -nocache it
// must degrade to a warning, not fail.
func TestResumeUnderNoCacheWarns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real experiment")
	}
	code, _, stderr := chaosRun(t, t.TempDir(), "-quick", "-experiment", "fig2", "-resume", "-nocache")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "-resume needs the result cache") {
		t.Errorf("missing -nocache warning:\n%s", stderr)
	}
}

// TestBadInjectSpecIsUsageError keeps the CLI contract for -inject.
func TestBadInjectSpecIsUsageError(t *testing.T) {
	code, _, stderr := chaosRun(t, t.TempDir(), "-quick", "-experiment", "fig2", "-inject", "explode")
	if code != 2 {
		t.Fatalf("exit %d, want 2:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "unknown fault kind") {
		t.Errorf("missing diagnostic:\n%s", stderr)
	}
}
