package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/journal"
	"repro/internal/loadgen"
	"repro/internal/workload"
)

// TestMctdHelperProcess is not a test: it is the subprocess body for
// TestCrashRecoverySIGKILL, which re-execs the test binary so there is a
// real PID to kill -9. The daemon's args arrive newline-joined in
// MCTD_HELPER_ARGS; the chosen listen address is announced on stdout.
func TestMctdHelperProcess(t *testing.T) {
	argsEnv := os.Getenv("MCTD_HELPER_ARGS")
	if argsEnv == "" {
		t.Skip("subprocess helper for the crash-recovery test")
	}
	ready := make(chan string, 1)
	go func() { fmt.Printf("MCTD_LISTENING %s\n", <-ready) }()
	os.Exit(mctdMain(strings.Split(argsEnv, "\n"), os.Stdout, os.Stderr, ready))
}

// TestCrashRecoverySIGKILL is the crash-smoke acceptance test: SIGKILL
// mctd in the middle of a multi-cell sweep, reboot it on the same
// journal/cache/checkpoint directories, and require that (a) the job is
// still listed and re-driven to completion, (b) the cells that finished
// before the kill resume from the memo cache instead of recomputing, and
// (c) the recovered sweep's NDJSON output is byte-identical to an
// uninterrupted run on clean state.
//
// The kill point is deterministic: the first life runs with
// -inject hang@sweep/fig4, so fig1 and fig2 complete (and checkpoint)
// while fig4 hangs pre-compute; the parent watches the checkpoint file
// until both finished cells are recorded, then kills -9.
func TestCrashRecoverySIGKILL(t *testing.T) {
	dir := t.TempDir()
	cacheDir, ckptDir, jobsDir := dir+"/cache", dir+"/ckpt", dir+"/jobs"
	const spec = `{"experiments":["fig1","fig2","fig4"],"quick":true,"accesses":3000,"instructions":3000}`

	// Life 1: a real subprocess, because a goroutine cannot be SIGKILLed.
	args := []string{
		"-listen", "127.0.0.1:0",
		"-cachedir", cacheDir,
		"-checkpointdir", ckptDir,
		"-journaldir", jobsDir,
		"-inject", "hang@sweep/fig4",
	}
	cmd := exec.Command(os.Args[0], "-test.run=^TestMctdHelperProcess$")
	cmd.Env = append(os.Environ(), "MCTD_HELPER_ARGS="+strings.Join(args, "\n"))
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var helperLog syncBuffer
	cmd.Stderr = &helperLog
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { cmd.Process.Kill(); cmd.Wait() }()

	base := ""
	lines := make(chan string, 1)
	go func() {
		buf := make([]byte, 4096)
		var acc string
		for {
			n, rerr := stdout.Read(buf)
			acc += string(buf[:n])
			if i := strings.Index(acc, "MCTD_LISTENING "); i >= 0 {
				if j := strings.IndexByte(acc[i:], '\n'); j > 0 {
					lines <- strings.TrimSpace(strings.TrimPrefix(acc[i:i+j], "MCTD_LISTENING"))
					break
				}
			}
			if rerr != nil {
				close(lines)
				return
			}
		}
		io.Copy(io.Discard, stdout) // keep the pipe drained
	}()
	select {
	case addr, ok := <-lines:
		if !ok {
			t.Fatalf("helper exited before listening:\n%s", helperLog.String())
		}
		base = "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatalf("helper never announced its address:\n%s", helperLog.String())
	}

	// Kick off the sweep; the request hangs on the fig4 cell, so fire and
	// forget — the journal and checkpoint are the observable progress.
	go func() {
		resp, err := http.Post(base+"/v1/sweep", "application/json", strings.NewReader(spec))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()

	// Wait until both non-hanging cells are checkpointed: MarkDone runs
	// strictly after the cell's result landed in the memo cache, so once
	// the checkpoint lists two cells the kill cannot lose their work.
	waitCheckpointCells(t, ckptDir, 2)

	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no drain, no defers
		t.Fatal(err)
	}
	cmd.Wait()

	// The job ID outlives the process only because the journal has it.
	jobID := sweepJobIDFromJournal(t, jobsDir)

	// Life 2: reboot on the same state (in-process is fine — recovery,
	// not death, is under test now). No fault injection this time.
	base2, shutdown2 := bootMctd(t,
		"-cachedir", cacheDir, "-checkpointdir", ckptDir, "-journaldir", jobsDir)
	waitJobState(t, base2, jobID, "done")

	m := scrape(t, http.DefaultClient, base2)
	if m["jobs_recovered"] < 1 {
		t.Errorf("jobs_recovered = %v, want >= 1", m["jobs_recovered"])
	}
	if m["cache_hits"] < 2 {
		t.Errorf("cache_hits = %v, want >= 2 (finished cells must resume from cache)", m["cache_hits"])
	}
	if m["cache_misses"] != 1 {
		t.Errorf("cache_misses = %v, want exactly 1 (only the hung fig4 cell recomputes)", m["cache_misses"])
	}

	recovered := postSweep(t, base2, spec)
	shutdown2()

	// Life 3: the uninterrupted control run, on clean directories.
	base3, shutdown3 := bootMctd(t)
	clean := postSweep(t, base3, spec)
	shutdown3()

	if !bytes.Equal(recovered, clean) {
		t.Errorf("recovered sweep output differs from an uninterrupted run\nrecovered:\n%s\nclean:\n%s",
			recovered, clean)
	}
}

// TestChaosnetConvergence is the chaosnet-smoke acceptance test: mctd
// behind the chaos listener (5% connection resets plus injected jittered
// latency), mctload's engine driving a fixed request count with retries.
// Every logical request must complete, and — because retries carry
// idempotency keys and results are memoized — the chaotic run must cause
// zero computation beyond what a serial warmup already did.
func TestChaosnetConvergence(t *testing.T) {
	const requests = 200
	base, shutdown := bootMctd(t,
		"-capacity", "128",
		"-chaos", "reset=0.05,latency=20ms,jitter=15ms")
	defer shutdown()

	// Serial warmup over every distinct spec the generator can emit, via
	// the resilient client (the warmup runs through the chaos listener
	// too). Afterwards the memo cache holds every answer, so any
	// computation during the storm below is by definition a duplicate.
	cl, err := client.New(client.Options{BaseURL: base, MaxAttempts: 8, BaseBackoff: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	warm := func(path, body string) {
		t.Helper()
		resp, err := cl.Do(t.Context(), client.Request{Path: path, Body: []byte(body), ContentType: "application/json"})
		if err != nil {
			t.Fatalf("warmup %s %s: %v", path, body, err)
		}
		if resp.Status != http.StatusOK {
			t.Fatalf("warmup %s %s: status %d", path, body, resp.Status)
		}
	}
	for _, name := range workload.Names() {
		for v := uint64(0); v < 4; v++ {
			warm("/v1/classify", fmt.Sprintf(`{"workload":%q,"accesses":%d,"size_kb":8,"emit":"summary"}`,
				name, 4000+v*1000))
		}
	}
	for v := uint64(0); v < 4; v++ {
		warm("/v1/sweep", fmt.Sprintf(`{"experiments":["fig2"],"accesses":%d,"instructions":%d}`,
			4000+v*1000, 4000+v*1000))
	}
	before := scrapeRetry(t, base)

	// Resets are decided per accepted connection, so keep-alive reuse
	// would let a lucky handful of connections carry the whole run; a
	// fresh dial per request makes the 5% rate actually apply per
	// request, like a fleet of short-lived clients would.
	report, err := loadgen.Run(t.Context(), loadgen.Config{
		BaseURL:     base,
		Concurrency: 4,
		Duration:    2 * time.Minute, // MaxRequests ends the run first
		Client: &http.Client{Timeout: 2 * time.Minute,
			Transport: &http.Transport{DisableKeepAlives: true}},
		MaxRequests: requests,
		MaxAttempts: 6,
		Seed:        42,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := report.Results[len(report.Results)-1]
	if res.Name != "total" {
		t.Fatalf("last result is %q, want total", res.Name)
	}
	if res.Requests != requests {
		t.Errorf("completed %d of %d requests", res.Requests, requests)
	}
	if res.Errors != 0 || len(res.ByFailure) != 0 {
		t.Errorf("chaos run did not converge: %d errors, by_failure=%v, by_status=%v",
			res.Errors, res.ByFailure, res.ByStatus)
	}
	if res.Retries == 0 {
		t.Error("zero retries under 5% resets — the chaos listener is not biting")
	}

	after := scrapeRetry(t, base)
	if after["cache_misses"] != before["cache_misses"] {
		t.Errorf("cache_misses rose %v -> %v during the chaos run: retries caused duplicate computation",
			before["cache_misses"], after["cache_misses"])
	}
	if after["idem_stored"] <= 0 {
		t.Errorf("idem_stored = %v; idempotency store never engaged", after["idem_stored"])
	}
}

// waitCheckpointCells polls dir until some sweep checkpoint lists at
// least n finished cells.
func waitCheckpointCells(t *testing.T, dir string, n int) {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		matches, _ := filepath.Glob(filepath.Join(dir, "*.json"))
		for _, path := range matches {
			raw, err := os.ReadFile(path)
			if err != nil {
				continue
			}
			var f struct {
				Done map[string]string `json:"done"`
			}
			if json.Unmarshal(raw, &f) == nil && len(f.Done) >= n {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("no checkpoint in %s reached %d finished cells", dir, n)
}

// sweepJobIDFromJournal replays the job journal and returns the sweep
// job's ID — the only record of it once the process is dead.
func sweepJobIDFromJournal(t *testing.T, dir string) string {
	t.Helper()
	j, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	id := ""
	if _, err := j.Replay(func(p []byte) error {
		var rec struct {
			Op   string `json:"op"`
			ID   string `json:"id"`
			Kind string `json:"kind"`
		}
		if json.Unmarshal(p, &rec) == nil && rec.Op == "create" && rec.Kind == "sweep" {
			id = rec.ID
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if id == "" {
		t.Fatal("journal has no sweep create record")
	}
	return id
}

// waitJobState polls GET /v1/jobs/{id} until the job reaches state.
func waitJobState(t *testing.T, base, id, state string) {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	last := ""
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err == nil {
			var job struct {
				State string `json:"state"`
				Error string `json:"error"`
			}
			err = json.NewDecoder(resp.Body).Decode(&job)
			resp.Body.Close()
			if err == nil {
				last = job.State
				if job.State == state {
					return
				}
				if job.State == "failed" {
					t.Fatalf("job %s failed instead of reaching %q: %s", id, state, job.Error)
				}
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s never reached state %q (last seen %q)", id, state, last)
}

// postSweep posts the spec and returns the full NDJSON response body.
func postSweep(t *testing.T, base, spec string) []byte {
	t.Helper()
	resp, err := http.Post(base+"/v1/sweep", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d:\n%s", resp.StatusCode, body)
	}
	return body
}

// scrapeRetry is scrape with tolerance for the chaos listener resetting
// the scrape connection itself.
func scrapeRetry(t *testing.T, base string) map[string]float64 {
	t.Helper()
	var lastErr error
	for i := 0; i < 20; i++ {
		resp, err := http.Get(base + "/metrics")
		if err == nil {
			var m map[string]float64
			err = json.NewDecoder(resp.Body).Decode(&m)
			resp.Body.Close()
			if err == nil {
				return m
			}
		}
		lastErr = err
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("metrics scrape kept failing through chaos: %v", lastErr)
	return nil
}
