// Command mctd is the networked simulation service: it serves the MCT
// classifier and the experiment sweeps over HTTP with bounded admission,
// request batching, NDJSON result streaming, on-disk memoization shared
// with cmd/paperbench, and graceful drain on SIGTERM/SIGINT.
//
//	mctd -listen :8047
//	curl -s localhost:8047/v1/classify -H 'Content-Type: application/json' \
//	     -d '{"workload":"gcc","accesses":100000}'
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/durable"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/service"
	"repro/internal/trace"
)

func main() {
	os.Exit(mctdMain(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// liveVars points at the CURRENT service instance's expvar map. The
// process-global "mct" entry is published exactly once, as a forwarding
// expvar.Func that resolves through this pointer at read time — so a
// second mctdMain boot in the same process (tests do this; embedders
// could too) atomically repoints the global registry at the live
// instance instead of silently leaving it on the dead one. The old code
// guarded expvar.Publish with expvar.Get("mct") == nil, which never
// republished: every boot after the first served the first boot's
// frozen counters forever.
var (
	liveVars    atomic.Pointer[expvar.Map]
	publishVars sync.Once
)

func publishLiveVars(m *expvar.Map) {
	liveVars.Store(m)
	publishVars.Do(func() {
		expvar.Publish("mct", expvar.Func(func() any {
			if cur := liveVars.Load(); cur != nil {
				return obs.ExpvarValues(cur)
			}
			return map[string]any{}
		}))
	})
}

// mctdMain runs the daemon until a shutdown signal lands and the drain
// completes. ready, when non-nil, receives the bound listen address once
// the server is accepting — tests listen on an ephemeral port and need
// to learn which.
func mctdMain(args []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("mctd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		listen    = fs.String("listen", ":8047", "listen address")
		capacity  = fs.Int("capacity", 64, "max in-flight requests (admission bound)")
		waiters   = fs.Int("waiters", -1, "max requests briefly queued for a slot (-1 = same as capacity, 0 = none)")
		perClient = fs.Int("per-client", 0, "max in-flight requests per client (0 = no per-client cap)")
		admitWait = fs.Duration("admit-wait", 100*time.Millisecond, "how long a queued request may wait for a slot")

		batchSize = fs.Int("batch", 8, "classify batch size")
		batchWait = fs.Duration("batch-wait", 2*time.Millisecond, "how long a batch waits for company")

		cacheDir = fs.String("cachedir", runner.DefaultCacheDir, "on-disk result cache directory (shared with paperbench)")
		noCache  = fs.Bool("nocache", false, "disable the result cache")
		ckptDir  = fs.String("checkpointdir", runner.DefaultCheckpointDir, "sweep checkpoint directory")

		journalDir = fs.String("journaldir", "results/jobs", "durable job journal directory; jobs interrupted by a crash are re-driven at boot (empty = journaling off)")
		fsyncMode  = fs.String("fsync", "data", "fsync policy for journal/checkpoint/cache writes: off (process-crash safe only), data (batch boundaries), always")

		chaosSpec  = fs.String("chaos", "", "network fault injection on the listener, e.g. 'reset=0.05,latency=20ms,jitter=10ms' (see internal/faultinject)")
		injectSpec = fs.String("inject", "", "task fault-injection schedule, e.g. 'error:2' or 'hang@sweep' (see internal/faultinject)")
		brownoutOn = fs.Bool("brownout", true, "shed load progressively when overloaded (streaming first, then low-priority, then everything but health and metrics)")

		maxRecords  = fs.Uint64("max-records", 10_000_000, "max records in an uploaded trace (0 = unlimited)")
		maxBytes    = fs.Uint64("max-bytes", 1<<28, "max bytes in an uploaded trace (0 = unlimited)")
		maxAccesses = fs.Uint64("max-accesses", 5_000_000, "max accesses in a classify spec")

		tenantSamples = fs.Uint64("tenant-samples", 0, "per-tenant MRC sampled-reference budget per window (0 = unlimited)")
		tenantBytes   = fs.Uint64("tenant-bytes", 0, "per-tenant MRC upload-byte budget per window (0 = unlimited)")
		tenantSet     = fs.Int("tenant-set", 0, "max sampled-set size an MRC request may ask for (0 = the profiler default)")
		tenantWindow  = fs.Duration("tenant-window", time.Hour, "tenant quota accounting window")

		taskTimeout  = fs.Duration("task-timeout", 0, "per-task attempt deadline (0 = unbounded)")
		retries      = fs.Int("retries", 2, "extra attempts per task for failures marked transient")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight work")

		peersFlag     = fs.String("peers", "", "comma-separated fleet membership (host:port,...); empty = single node")
		selfAddr      = fs.String("self", "", "this node's advertised host:port (required with -peers)")
		vnodes        = fs.Int("vnodes", 0, "virtual nodes per peer on the hash ring (0 = default 128)")
		ringSeed      = fs.Uint64("ring-seed", 0, "hash-ring seed; must match across the fleet")
		probeInterval = fs.Duration("probe-interval", 500*time.Millisecond, "peer health-probe cadence")
		probeTimeout  = fs.Duration("probe-timeout", time.Second, "per-probe timeout")
		stealAfter    = fs.Duration("steal-after", 0, "steal a forwarded cell still unanswered after this delay (0 = off)")
		forwardTries  = fs.Int("forward-attempts", 4, "max attempts per forwarded cell (resilient client retries)")
		workers       = fs.Int("workers", 0, "max concurrent local cell computations (0 = GOMAXPROCS)")

		traceOut   = fs.String("trace-out", "", "write finished trace spans as NDJSON to this file")
		traceSpans = fs.Int("trace-spans", 0, "in-memory span ring size behind /v1/trace (0 = default)")
		pprofOn    = fs.Bool("pprof", false, "mount /debug/pprof and /debug/vars (opt-in: profiling endpoints are not for the open internet)")
		slowFactor = fs.Float64("slow-factor", 8, "log task attempts slower than this multiple of their label's running median (0 = off)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// One serialized writer for every diagnostic stream — the server's
	// own log lines, the cache's log callback, slow-task events. Without
	// it the cache logger wrote to stderr from concurrent sweep workers
	// with no synchronization, shearing interleaved lines.
	log := obs.NewSyncWriter(stderr)
	stderr = log

	// Flag semantics (-1 = match capacity, 0 = no waiting room) differ
	// from Config's (0 = default to capacity, negative = none).
	maxWaiters := *waiters
	switch {
	case maxWaiters < 0:
		maxWaiters = 0
	case maxWaiters == 0:
		maxWaiters = -1
	}

	fsync, err := durable.ParsePolicy(*fsyncMode)
	if err != nil {
		fmt.Fprintln(stderr, "mctd:", err)
		return 2
	}
	// The runner's checkpoint and cache writers share the process-wide
	// policy: one -fsync flag governs every durable write in the daemon.
	runner.SetSyncPolicy(fsync)
	defer runner.SetSyncPolicy(durable.PolicyOff)

	var chaos faultinject.NetConfig
	if *chaosSpec != "" {
		if chaos, err = faultinject.ParseNetSpec(*chaosSpec); err != nil {
			fmt.Fprintln(stderr, "mctd:", err)
			return 2
		}
	}
	if *injectSpec != "" {
		fault, err := faultinject.Parse(*injectSpec)
		if err != nil {
			fmt.Fprintln(stderr, "mctd:", err)
			return 2
		}
		restore := faultinject.Install(fault)
		defer restore()
		fmt.Fprintf(stderr, "mctd: fault injection active: %s\n", *injectSpec)
	}

	// Experiments fan out internally through runner.Map with the
	// process-wide defaults; give those inner pools the same supervision
	// policy the service applies to its own job-level fan-outs.
	runner.SetDefaultOptions(runner.PartialResults(), runner.Retry(*retries, runner.DefaultBackoff))
	defer runner.SetDefaultOptions()

	// Fleet membership, if any. cl stays nil for an empty -peers list (or
	// one naming only this node): the single-node path is untouched.
	var peerList []string
	if *peersFlag != "" {
		for _, p := range strings.Split(*peersFlag, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
	}
	cl, err := cluster.New(cluster.Config{
		Self:            *selfAddr,
		Peers:           peerList,
		VNodes:          *vnodes,
		Seed:            *ringSeed,
		ProbeInterval:   *probeInterval,
		ProbeTimeout:    *probeTimeout,
		StealAfter:      *stealAfter,
		ForwardAttempts: *forwardTries,
		Logf:            func(format string, a ...any) { fmt.Fprintf(log, format+"\n", a...) },
	})
	if err != nil {
		fmt.Fprintln(stderr, "mctd:", err)
		return 2
	}

	svc := service.New(service.Config{
		Cluster:         cl,
		Workers:         *workers,
		Capacity:        *capacity,
		MaxWaiters:      maxWaiters,
		PerClient:       *perClient,
		AdmitWait:       *admitWait,
		BatchSize:       *batchSize,
		BatchWait:       *batchWait,
		CacheDir:        *cacheDir,
		NoCache:         *noCache,
		CheckpointDir:   *ckptDir,
		Limits:          trace.Limits{MaxRecords: *maxRecords, MaxBytes: *maxBytes},
		MaxSpecAccesses: *maxAccesses,
		Tenant: service.TenantQuota{
			MaxSamples:    *tenantSamples,
			MaxBytes:      *tenantBytes,
			MaxSampledSet: *tenantSet,
			Window:        *tenantWindow,
		},
		TaskTimeout:     *taskTimeout,
		Retries:         *retries,
		TraceSpans:      *traceSpans,
		JournalDir:      *journalDir,
		Fsync:           fsync,
		Brownout:        service.BrownoutConfig{Enabled: *brownoutOn},
		Logf:            func(format string, a ...any) { fmt.Fprintf(log, format+"\n", a...) },
	})
	if c := svc.Cache(); c != nil {
		// The callback writes through the serialized writer; each log
		// statement is one Write, so concurrent workers cannot shear lines.
		c.SetLogf(func(format string, a ...any) { fmt.Fprintf(log, format+"\n", a...) })
	}
	publishLiveVars(svc.Vars())

	if cl.Enabled() {
		// The service's Drain closes the cluster; mctd only starts the
		// prober once the instance is otherwise wired.
		cl.Start()
		fmt.Fprintf(stderr, "mctd: cluster: self=%s ring=%v (vnodes %d, steal-after %s)\n",
			cl.Self(), cl.Ring().Peers(), *vnodes, *stealAfter)
	}

	// Replay the job journal before accepting traffic: finished jobs are
	// restored to the registry, interrupted ones re-drive in the
	// background (their results land in the memo cache, so a client's
	// retry replays instead of recomputing), and upload jobs whose bodies
	// were never retained are marked failed. A journal that cannot open
	// or replay fails the boot — an operator who asked for durability
	// should not get a silently non-durable daemon.
	if st, err := svc.Recover(context.Background()); err != nil {
		fmt.Fprintln(stderr, "mctd:", err)
		return 1
	} else if st.Jobs > 0 || st.Replay.TornTail || st.Replay.Quarantined > 0 {
		fmt.Fprintf(stderr, "mctd: journal recovery: %d jobs (%d finished, %d re-driven, %d orphaned), %d records in %d segments (torn tail: %v, quarantined: %d)\n",
			st.Jobs, st.Finished, st.Redriven, st.Orphaned,
			st.Replay.Records, st.Replay.Segments, st.Replay.TornTail, st.Replay.Quarantined)
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(stderr, "mctd:", err)
			return 1
		}
		exp := obs.NewNDJSONExporter(f)
		obs.SetExporter(exp)
		defer func() {
			obs.SetExporter(nil)
			if err := exp.Close(); err != nil {
				fmt.Fprintln(stderr, "mctd: trace-out:", err)
			}
		}()
	}

	if *slowFactor > 0 {
		obs.SetSlowLog(*slowFactor, 8, func(e obs.SlowEvent) {
			svc.NoteSlowTask()
			enc, _ := json.Marshal(e)
			fmt.Fprintf(log, "mctd: slow task %s\n", enc)
		})
		defer obs.SetSlowLog(0, 0, nil)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(stderr, "mctd:", err)
		return 1
	}
	if *chaosSpec != "" {
		// Chaos wraps the listener itself so injected resets, latency and
		// partial writes hit real accepted connections — the same failure
		// surface a flaky network presents.
		ln = chaos.Listener(ln)
		fmt.Fprintf(stderr, "mctd: network chaos active: %s\n", chaos)
	}
	srv := &http.Server{Handler: rootHandler(svc, *pprofOn)}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	defer signal.Stop(sigc)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Fprintf(stderr, "mctd: listening on %s (capacity %d, cache %s)\n", ln.Addr(), *capacity, cacheDisplay(*noCache, *cacheDir))
	if ready != nil {
		ready <- ln.Addr().String()
	}

	select {
	case sig := <-sigc:
		fmt.Fprintf(stderr, "mctd: %v: draining (timeout %s)\n", sig, *drainTimeout)
	case err := <-serveErr:
		fmt.Fprintln(stderr, "mctd:", err)
		return 1
	}

	// Graceful drain: shut the admission gate first (healthz flips to 503
	// and new work bounces), then let in-flight HTTP requests finish, then
	// wait for the service to report idle and stop the batcher.
	svc.StartDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	code := 0
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(stderr, "mctd: shutdown:", err)
		code = 1
	}
	if err := svc.Drain(ctx); err != nil {
		fmt.Fprintln(stderr, "mctd:", err)
		code = 1
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(stderr, "mctd:", err)
		code = 1
	}
	if code == 0 {
		fmt.Fprintln(stderr, "mctd: drained cleanly")
	}
	_ = stdout
	return code
}

func cacheDisplay(noCache bool, dir string) string {
	if noCache {
		return "disabled"
	}
	return dir
}

// rootHandler wraps the service API, optionally mounting the pprof
// endpoints and the process-global expvar registry. Opt-in only: the
// profiling surface reveals internals (and profile collection costs CPU)
// that a production instance should not expose by default.
func rootHandler(svc *service.Service, withPprof bool) http.Handler {
	if !withPprof {
		return svc.Handler()
	}
	mux := http.NewServeMux()
	mux.Handle("/", svc.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}
