package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/loadgen"
	"repro/internal/trace"
)

// TestServeSmoke is the end-to-end daemon exercise behind `make
// serve-smoke` (run under -race): boot mctd on an ephemeral port, hold
// hundreds of classify requests in flight simultaneously, show the
// admission controller bouncing the overflow with 429 while memory stays
// bounded, run a short load-generator burst, then SIGTERM the process
// and verify it drains cleanly without leaking goroutines.
//
// The in-flight population is deterministic, not timing-based: each held
// request is a trace upload whose body is an io.Pipe the client hasn't
// written yet, so the handler sits blocked reading the 16-byte trace
// header while holding its admission slot until the test releases the
// pipe.
func TestServeSmoke(t *testing.T) {
	const (
		capacity = 512
		held     = 500
		burst    = 64
	)
	baseline := runtime.NumGoroutine()

	ready := make(chan string, 1)
	exit := make(chan int, 1)
	var logBuf syncBuffer
	go func() {
		exit <- mctdMain([]string{
			"-listen", "127.0.0.1:0",
			"-capacity", fmt.Sprint(capacity),
			"-waiters", "0",
			"-batch-wait", "1ms",
			"-cachedir", t.TempDir() + "/cache",
			"-checkpointdir", t.TempDir() + "/ckpt",
		}, io.Discard, &logBuf, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case code := <-exit:
		t.Fatalf("mctd exited %d before serving:\n%s", code, logBuf.String())
	case <-time.After(10 * time.Second):
		t.Fatal("mctd never became ready")
	}

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 4}}
	defer client.CloseIdleConnections()

	// Hold `held` classify uploads in flight: bodies withheld, handlers
	// blocked on the trace header, admission slots occupied.
	type holdReq struct {
		pw   *io.PipeWriter
		resp chan int // status code (0 = transport error)
	}
	launch := func() holdReq {
		pr, pw := io.Pipe()
		h := holdReq{pw: pw, resp: make(chan int, 1)}
		go func() {
			resp, err := client.Post(base+"/v1/classify", "application/octet-stream", pr)
			if err != nil {
				h.resp <- 0
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			h.resp <- resp.StatusCode
		}()
		return h
	}
	holds := make([]holdReq, 0, held+burst)
	for i := 0; i < held; i++ {
		holds = append(holds, launch())
	}
	waitMetric(t, client, base, "queue_inflight", held)

	// ≥500 concurrent in-flight requests with bounded memory: no request
	// body is buffered, so the heap stays far below anything resembling
	// "buffer the offered load".
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > 1<<29 {
		t.Errorf("HeapAlloc = %d MiB with %d requests in flight; admission is buffering unboundedly",
			ms.HeapAlloc>>20, held)
	}

	// Overflow burst: capacity-held more uploads are admitted (and then
	// also held), everything beyond that must bounce immediately with
	// 429 — the waiting room is disabled.
	for i := 0; i < burst; i++ {
		holds = append(holds, launch())
	}
	wantRejected := burst - (capacity - held)
	rejected := 0
	resolved := make([]bool, len(holds)) // burst requests whose resp was already consumed here
	deadline := time.After(30 * time.Second)
	for rejected < wantRejected {
		progressed := false
		for i := held; i < len(holds); i++ {
			if resolved[i] {
				continue
			}
			select {
			case code := <-holds[i].resp:
				if code != http.StatusTooManyRequests {
					t.Fatalf("overflow request finished with %d, want 429", code)
				}
				resolved[i] = true
				rejected++
				progressed = true
			default:
			}
		}
		if rejected >= wantRejected {
			break
		}
		if !progressed {
			select {
			case <-deadline:
				t.Fatalf("only %d of %d overflow requests were rejected", rejected, wantRejected)
			case <-time.After(5 * time.Millisecond):
			}
		}
	}
	waitMetric(t, client, base, "queue_inflight", capacity)

	// Release every held request with a tiny valid trace; they must all
	// complete successfully.
	tiny := tinyTrace(t)
	var wg sync.WaitGroup
	for _, h := range holds {
		wg.Add(1)
		go func(h holdReq) {
			defer wg.Done()
			h.pw.Write(tiny) // fails harmlessly on already-rejected requests
			h.pw.Close()
		}(h)
	}
	wg.Wait()
	completed := 0
	for i, h := range holds {
		if resolved[i] {
			continue // already consumed as a 429 above
		}
		select {
		case code := <-h.resp:
			if code == http.StatusOK {
				completed++
			} else if code != http.StatusTooManyRequests {
				t.Errorf("held request finished with %d", code)
			}
		case <-time.After(60 * time.Second):
			t.Fatal("held request never completed after release")
		}
	}
	if completed != capacity {
		t.Errorf("%d requests completed OK, want %d (capacity)", completed, capacity)
	}
	waitMetric(t, client, base, "queue_inflight", 0)

	// A short closed-loop load-generator run against the live daemon.
	report, err := loadgen.Run(context.Background(), loadgen.Config{
		BaseURL:     base,
		Concurrency: 4,
		Duration:    400 * time.Millisecond,
		Client:      client,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := report.Results[len(report.Results)-1]
	if total.Name != "total" || total.Requests == 0 {
		t.Fatalf("loadgen made no requests: %+v", report.Results)
	}
	if total.Errors != 0 {
		t.Errorf("loadgen saw %d errors of %d requests", total.Errors, total.Requests)
	}
	m := scrape(t, client, base)
	if m["records_total"] <= 0 {
		t.Error("records_total metric never moved; the simulation counter is dead")
	}
	if m["queue_peak"] < capacity {
		t.Errorf("queue_peak = %v, want >= %d", m["queue_peak"], capacity)
	}

	// SIGTERM: the daemon must drain and exit 0.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("mctd exited %d after SIGTERM:\n%s", code, logBuf.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("mctd never exited after SIGTERM:\n%s", logBuf.String())
	}
	if !strings.Contains(logBuf.String(), "drained cleanly") {
		t.Errorf("missing clean-drain log:\n%s", logBuf.String())
	}

	// No goroutine leaks: the fleet, the server, the batcher, and the
	// signal handler must all be gone once mctdMain returns.
	client.CloseIdleConnections()
	settle := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+8 {
			break
		}
		if time.Now().After(settle) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines: baseline %d, now %d; dump:\n%s",
				baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// tinyTrace returns a minimal valid MCTR trace.
func tinyTrace(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	tw, err := trace.NewWriter(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	tw.Write(trace.Instr{Op: trace.Load, Addr: 0x40})
	tw.Write(trace.Instr{Op: trace.Store, Addr: 0x80})
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func scrape(t *testing.T, client *http.Client, base string) map[string]float64 {
	t.Helper()
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]float64
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

func waitMetric(t *testing.T, client *http.Client, base, name string, want float64) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	var last float64
	for time.Now().Before(deadline) {
		last = scrape(t, client, base)[name]
		if last == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("%s = %v, never reached %v", name, last, want)
}

// syncBuffer is a mutex-guarded bytes.Buffer: mctd logs from its own
// goroutine while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestMctdBadFlag(t *testing.T) {
	var out, errB bytes.Buffer
	if code := mctdMain([]string{"-no-such-flag"}, &out, &errB, nil); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}
