package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/loadgen"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestServeSmoke is the end-to-end daemon exercise behind `make
// serve-smoke` (run under -race): boot mctd on an ephemeral port, hold
// hundreds of classify requests in flight simultaneously, show the
// admission controller bouncing the overflow with 429 while memory stays
// bounded, run a short load-generator burst, then SIGTERM the process
// and verify it drains cleanly without leaking goroutines.
//
// The in-flight population is deterministic, not timing-based: each held
// request is a trace upload whose body is an io.Pipe the client hasn't
// written yet, so the handler sits blocked reading the 16-byte trace
// header while holding its admission slot until the test releases the
// pipe.
func TestServeSmoke(t *testing.T) {
	const (
		capacity = 512
		held     = 500
		burst    = 64
	)
	baseline := runtime.NumGoroutine()

	ready := make(chan string, 1)
	exit := make(chan int, 1)
	var logBuf syncBuffer
	go func() {
		exit <- mctdMain([]string{
			"-listen", "127.0.0.1:0",
			"-capacity", fmt.Sprint(capacity),
			"-waiters", "0",
			"-batch-wait", "1ms",
			"-cachedir", t.TempDir() + "/cache",
			"-checkpointdir", t.TempDir() + "/ckpt",
			"-journaldir", t.TempDir() + "/jobs",
		}, io.Discard, &logBuf, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case code := <-exit:
		t.Fatalf("mctd exited %d before serving:\n%s", code, logBuf.String())
	case <-time.After(10 * time.Second):
		t.Fatal("mctd never became ready")
	}

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 4}}
	defer client.CloseIdleConnections()

	// Hold `held` classify uploads in flight: bodies withheld, handlers
	// blocked on the trace header, admission slots occupied.
	type holdReq struct {
		pw   *io.PipeWriter
		resp chan int // status code (0 = transport error)
	}
	launch := func() holdReq {
		pr, pw := io.Pipe()
		h := holdReq{pw: pw, resp: make(chan int, 1)}
		go func() {
			resp, err := client.Post(base+"/v1/classify", "application/octet-stream", pr)
			if err != nil {
				h.resp <- 0
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			h.resp <- resp.StatusCode
		}()
		return h
	}
	holds := make([]holdReq, 0, held+burst)
	for i := 0; i < held; i++ {
		holds = append(holds, launch())
	}
	waitMetric(t, client, base, "queue_inflight", held)

	// ≥500 concurrent in-flight requests with bounded memory: no request
	// body is buffered, so the heap stays far below anything resembling
	// "buffer the offered load".
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > 1<<29 {
		t.Errorf("HeapAlloc = %d MiB with %d requests in flight; admission is buffering unboundedly",
			ms.HeapAlloc>>20, held)
	}

	// Overflow burst: capacity-held more uploads are admitted (and then
	// also held), everything beyond that must bounce immediately with
	// 429 — the waiting room is disabled.
	for i := 0; i < burst; i++ {
		holds = append(holds, launch())
	}
	wantRejected := burst - (capacity - held)
	rejected := 0
	resolved := make([]bool, len(holds)) // burst requests whose resp was already consumed here
	deadline := time.After(30 * time.Second)
	for rejected < wantRejected {
		progressed := false
		for i := held; i < len(holds); i++ {
			if resolved[i] {
				continue
			}
			select {
			case code := <-holds[i].resp:
				if code != http.StatusTooManyRequests {
					t.Fatalf("overflow request finished with %d, want 429", code)
				}
				resolved[i] = true
				rejected++
				progressed = true
			default:
			}
		}
		if rejected >= wantRejected {
			break
		}
		if !progressed {
			select {
			case <-deadline:
				t.Fatalf("only %d of %d overflow requests were rejected", rejected, wantRejected)
			case <-time.After(5 * time.Millisecond):
			}
		}
	}
	waitMetric(t, client, base, "queue_inflight", capacity)

	// Release every held request with a tiny valid trace; they must all
	// complete successfully.
	tiny := tinyTrace(t)
	var wg sync.WaitGroup
	for _, h := range holds {
		wg.Add(1)
		go func(h holdReq) {
			defer wg.Done()
			h.pw.Write(tiny) // fails harmlessly on already-rejected requests
			h.pw.Close()
		}(h)
	}
	wg.Wait()
	completed := 0
	for i, h := range holds {
		if resolved[i] {
			continue // already consumed as a 429 above
		}
		select {
		case code := <-h.resp:
			if code == http.StatusOK {
				completed++
			} else if code != http.StatusTooManyRequests {
				t.Errorf("held request finished with %d", code)
			}
		case <-time.After(60 * time.Second):
			t.Fatal("held request never completed after release")
		}
	}
	if completed != capacity {
		t.Errorf("%d requests completed OK, want %d (capacity)", completed, capacity)
	}
	waitMetric(t, client, base, "queue_inflight", 0)

	// A short closed-loop load-generator run against the live daemon.
	report, err := loadgen.Run(context.Background(), loadgen.Config{
		BaseURL:     base,
		Concurrency: 4,
		Duration:    400 * time.Millisecond,
		Client:      client,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := report.Results[len(report.Results)-1]
	if total.Name != "total" || total.Requests == 0 {
		t.Fatalf("loadgen made no requests: %+v", report.Results)
	}
	if total.Errors != 0 {
		t.Errorf("loadgen saw %d errors of %d requests", total.Errors, total.Requests)
	}
	m := scrape(t, client, base)
	if m["records_total"] <= 0 {
		t.Error("records_total metric never moved; the simulation counter is dead")
	}
	if m["queue_peak"] < capacity {
		t.Errorf("queue_peak = %v, want >= %d", m["queue_peak"], capacity)
	}

	// SIGTERM: the daemon must drain and exit 0.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("mctd exited %d after SIGTERM:\n%s", code, logBuf.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("mctd never exited after SIGTERM:\n%s", logBuf.String())
	}
	if !strings.Contains(logBuf.String(), "drained cleanly") {
		t.Errorf("missing clean-drain log:\n%s", logBuf.String())
	}

	// No goroutine leaks: the fleet, the server, the batcher, and the
	// signal handler must all be gone once mctdMain returns.
	client.CloseIdleConnections()
	settle := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+8 {
			break
		}
		if time.Now().After(settle) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines: baseline %d, now %d; dump:\n%s",
				baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// tinyTrace returns a minimal valid MCTR trace.
func tinyTrace(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	tw, err := trace.NewWriter(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	tw.Write(trace.Instr{Op: trace.Load, Addr: 0x40})
	tw.Write(trace.Instr{Op: trace.Store, Addr: 0x80})
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func scrape(t *testing.T, client *http.Client, base string) map[string]float64 {
	t.Helper()
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]float64
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

func waitMetric(t *testing.T, client *http.Client, base, name string, want float64) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	var last float64
	for time.Now().Before(deadline) {
		last = scrape(t, client, base)[name]
		if last == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("%s = %v, never reached %v", name, last, want)
}

// syncBuffer is a mutex-guarded bytes.Buffer: mctd logs from its own
// goroutine while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestMctdBadFlag(t *testing.T) {
	var out, errB bytes.Buffer
	if code := mctdMain([]string{"-no-such-flag"}, &out, &errB, nil); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

// bootMctd starts mctdMain on an ephemeral port and returns its base URL
// plus a shutdown func that SIGTERMs and waits for a clean exit.
func bootMctd(t *testing.T, extraArgs ...string) (string, func()) {
	t.Helper()
	args := append([]string{
		"-listen", "127.0.0.1:0",
		"-cachedir", t.TempDir() + "/cache",
		"-checkpointdir", t.TempDir() + "/ckpt",
		"-journaldir", t.TempDir() + "/jobs",
	}, extraArgs...)
	ready := make(chan string, 1)
	exit := make(chan int, 1)
	var logBuf syncBuffer
	go func() { exit <- mctdMain(args, io.Discard, &logBuf, ready) }()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case code := <-exit:
		t.Fatalf("mctd exited %d before serving:\n%s", code, logBuf.String())
	case <-time.After(10 * time.Second):
		t.Fatal("mctd never became ready")
	}
	return base, func() {
		if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		select {
		case code := <-exit:
			if code != 0 {
				t.Fatalf("mctd exited %d after SIGTERM:\n%s", code, logBuf.String())
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("mctd never exited after SIGTERM:\n%s", logBuf.String())
		}
	}
}

// classifyN posts n spec classifies and requires them all to succeed.
func classifyN(t *testing.T, base string, n int) {
	t.Helper()
	names := workload.Names()
	if len(names) == 0 {
		t.Fatal("no workloads registered")
	}
	for i := 0; i < n; i++ {
		body := fmt.Sprintf(`{"workload":%q,"accesses":2000,"size_kb":8,"emit":"summary"}`, names[0])
		resp, err := http.Post(base+"/v1/classify", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("classify %d/%d: status %d", i+1, n, resp.StatusCode)
		}
	}
}

// globalMctVars reads the process-global expvar registry's "mct" entry —
// what /debug/vars serves — as a flat map.
func globalMctVars(t *testing.T) map[string]float64 {
	t.Helper()
	v := expvar.Get("mct")
	if v == nil {
		t.Fatal(`expvar.Get("mct") is nil; publishLiveVars never ran`)
	}
	var m map[string]float64
	if err := json.Unmarshal([]byte(v.String()), &m); err != nil {
		t.Fatalf("global mct var is not flat JSON numbers: %v\n%s", err, v.String())
	}
	return m
}

// TestMctdRepublishesMetricsOnReboot is the regression test for the
// stale-metrics bug: mctdMain used to publish the first instance's
// expvar map into the process-global registry behind an
// expvar.Get("mct") == nil guard, so every later boot in the same
// process left the global "mct" entry pointing at the dead first
// instance — frozen counters forever. The forwarding expvar.Func must
// resolve to whichever instance is live NOW.
func TestMctdRepublishesMetricsOnReboot(t *testing.T) {
	// First life: one accepted classify.
	base1, shutdown1 := bootMctd(t)
	classifyN(t, base1, 1)
	if got := globalMctVars(t)["jobs_accepted"]; got != 1 {
		t.Fatalf("first boot: global jobs_accepted = %v, want 1", got)
	}
	shutdown1()

	// Second life: three accepted classifies. The global registry must
	// track the live instance, not replay the first one's count.
	base2, shutdown2 := bootMctd(t)
	defer shutdown2()
	classifyN(t, base2, 3)

	m := globalMctVars(t)
	if m["jobs_accepted"] != 3 {
		t.Fatalf("second boot: global jobs_accepted = %v, want 3 (stale first-instance map?)", m["jobs_accepted"])
	}
	// And the global view must agree with the live instance's /metrics.
	live := scrape(t, http.DefaultClient, base2)
	if m["jobs_accepted"] != live["jobs_accepted"] {
		t.Errorf("global registry %v != live /metrics %v", m["jobs_accepted"], live["jobs_accepted"])
	}
}

// TestObsSmoke is the gate behind `make obs-smoke`: boot mctd, drive an
// exact number of classify requests through the load generator, scrape
// the Prometheus exposition, and require (a) zero unparseable lines
// under the strict parser, (b) the server-side classify-latency
// histogram's _count to equal the client-side request count, (c) every
// metric name to satisfy the naming convention.
func TestObsSmoke(t *testing.T) {
	const requests = 200
	base, shutdown := bootMctd(t, "-capacity", "256")
	defer shutdown()

	report, err := loadgen.Run(context.Background(), loadgen.Config{
		BaseURL:          base,
		Concurrency:      4,
		Duration:         2 * time.Minute, // MaxRequests ends the run long before this
		ClassifyFraction: 1.0,             // classifies only: counts must match exactly
		MaxRequests:      requests,
	})
	if err != nil {
		t.Fatal(err)
	}
	var clientReqs uint64
	for _, res := range report.Results {
		if res.Name == "classify" {
			clientReqs = res.Requests
		}
		if res.Name == "sweep" {
			t.Fatalf("sweep traffic in a classify-only run: %+v", res)
		}
	}
	if clientReqs != requests {
		t.Fatalf("client issued %d classifies, want exactly %d", clientReqs, requests)
	}

	resp, err := http.Get(base + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prometheus endpoint status %d", resp.StatusCode)
	}
	samples, err := obs.ParseProm(resp.Body) // strict: any malformed line fails
	if err != nil {
		t.Fatalf("exposition has unparseable lines: %v", err)
	}
	if len(samples) == 0 {
		t.Fatal("empty exposition")
	}
	for _, s := range samples {
		name := s.Name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			name = strings.TrimSuffix(name, suffix)
		}
		if !strings.HasPrefix(name, "mct_") {
			t.Errorf("sample %q outside the mct_ namespace", s.Name)
		}
	}

	var classify *obs.ParsedHistogram
	for _, h := range obs.HistogramsFromSamples(samples) {
		if h.Name == "mct_classify_duration_seconds" {
			hh := h
			classify = &hh
		}
	}
	if classify == nil {
		t.Fatal("no mct_classify_duration_seconds histogram in exposition")
	}
	if classify.Count != clientReqs {
		t.Fatalf("server-side classify histogram count = %d, client issued %d — lost or double-counted requests",
			classify.Count, clientReqs)
	}
	if last := classify.Buckets[len(classify.Buckets)-1]; last.LE != "+Inf" || last.CumulativeCount != classify.Count {
		t.Errorf("+Inf bucket %+v does not match count %d", last, classify.Count)
	}
}

// TestMctdPprofOptIn pins that the profiling surface is opt-in: absent
// -pprof the debug endpoints 404, with it they serve.
func TestMctdPprofOptIn(t *testing.T) {
	base, shutdown := bootMctd(t)
	resp, err := http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("/debug/pprof served without -pprof")
	}
	shutdown()

	base2, shutdown2 := bootMctd(t, "-pprof")
	defer shutdown2()
	for _, path := range []string{"/debug/pprof/", "/debug/vars"} {
		resp, err := http.Get(base2 + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s with -pprof = %d, want 200", path, resp.StatusCode)
		}
	}
	// The service API must still work through the wrapper mux.
	classifyN(t, base2, 1)
}

// TestMctdTraceOut checks the span NDJSON file: every line parses as a
// span record and the classify request's spans are present.
func TestMctdTraceOut(t *testing.T) {
	out := t.TempDir() + "/spans.ndjson"
	base, shutdown := bootMctd(t, "-trace-out", out)
	classifyN(t, base, 2)
	shutdown() // flushes and closes the exporter

	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	names := map[string]int{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var rec obs.SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("trace-out line is not a span record: %v\n%s", err, sc.Text())
		}
		names[rec.Name]++
	}
	if names["http.classify"] != 2 {
		t.Errorf("http.classify spans = %d, want 2 (got %v)", names["http.classify"], names)
	}
	for _, want := range []string{"service.admit", "runner.task", "cache.lookup"} {
		if names[want] == 0 {
			t.Errorf("trace-out missing %q spans; got %v", want, names)
		}
	}
}
