package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/mem"
	"repro/internal/trace"
)

// TestMRCSmoke is the end-to-end MRC exercise behind `make mrc-smoke`
// (run under -race): boot mctd, upload a generated v2 trace to /v1/mrc,
// and check the stream's invariants — ascending sizes, a monotone
// non-increasing miss-ratio curve, an MCT split that accounts for every
// miss — then confirm cold and warm responses are byte-identical on
// both the upload and spec paths.
func TestMRCSmoke(t *testing.T) {
	base, shutdown := bootMctd(t, "-batch-wait", "1ms")
	defer shutdown()

	client := &http.Client{}
	defer client.CloseIdleConnections()

	// A trace with reuse at several scales, so the curve actually bends:
	// a hot 2KB stride loop interleaved with a 256KB working-set sweep.
	var buf bytes.Buffer
	const n = 30_000
	tw, err := trace.NewWriterV2(&buf, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		var a mem.Addr
		if i%2 == 0 {
			a = mem.Addr(i%32) * 64 // hot set: 32 lines
		} else {
			a = 1<<20 + mem.Addr(i%4096)*64 // 256KB sweep above 1MiB
		}
		op := trace.Load
		if i%7 == 0 {
			op = trace.Store
		}
		if err := tw.Write(trace.Instr{Op: op, Addr: a}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	upload := func() []byte {
		t.Helper()
		resp, err := client.Post(base+"/v1/mrc?sizes_kb=4,16,64&rate=0.5&assoc=2",
			"application/octet-stream", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("upload status %d: %s", resp.StatusCode, body)
		}
		return body
	}
	cold := upload()
	checkMRCStream(t, cold, 3, n)
	if warm := upload(); !bytes.Equal(cold, warm) {
		t.Error("warm upload response differs from cold (memoized replay must be byte-identical)")
	}

	// Spec path: same contract without a trace body.
	spec := func() []byte {
		t.Helper()
		body := `{"workload":"gcc","accesses":20000,"sizes_kb":[4,8,32,128],"rate":1}`
		resp, err := client.Post(base+"/v1/mrc", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		out, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("spec status %d: %s", resp.StatusCode, out)
		}
		return out
	}
	coldSpec := spec()
	checkMRCStream(t, coldSpec, 4, 20000)
	if warm := spec(); !bytes.Equal(coldSpec, warm) {
		t.Error("warm spec response differs from cold")
	}

	m := scrape(t, client, base)
	if m["mrc_requests"] < 4 {
		t.Errorf("mrc_requests = %v, want >= 4", m["mrc_requests"])
	}
	if m["mrc_samples"] <= 0 {
		t.Errorf("mrc_samples = %v, want > 0", m["mrc_samples"])
	}
}

// checkMRCStream parses an NDJSON MRC response and asserts the stream
// invariants: wantPoints points in ascending size order, miss ratios in
// [0,1] and non-increasing with size, and at every size an MCT split
// whose conflict+capacity+compulsory equals its misses and whose misses
// do not exceed the access count.
func checkMRCStream(t *testing.T, body []byte, wantPoints int, accesses uint64) {
	t.Helper()
	type rec struct {
		Point *struct {
			SizeKB    int     `json:"size_kb"`
			Lines     uint64  `json:"lines"`
			MissRatio float64 `json:"miss_ratio"`
			MCT       struct {
				Accesses   uint64 `json:"accesses"`
				Misses     uint64 `json:"misses"`
				Conflict   uint64 `json:"conflict"`
				Capacity   uint64 `json:"capacity"`
				Compulsory uint64 `json:"compulsory"`
			} `json:"mct"`
		} `json:"point"`
		Summary *struct {
			Points int `json:"points"`
		} `json:"summary"`
	}
	var points []rec
	var summaries int
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(nil, 1<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var r rec
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch {
		case r.Point != nil:
			points = append(points, r)
		case r.Summary != nil:
			summaries++
			if r.Summary.Points != wantPoints {
				t.Errorf("summary.points = %d, want %d", r.Summary.Points, wantPoints)
			}
		default:
			t.Errorf("record is neither point nor summary: %s", sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(points) != wantPoints || summaries != 1 {
		t.Fatalf("stream has %d points and %d summaries, want %d and 1", len(points), summaries, wantPoints)
	}
	for i, r := range points {
		p := r.Point
		ctx := fmt.Sprintf("point %d (%dKB)", i, p.SizeKB)
		if p.MissRatio < 0 || p.MissRatio > 1 {
			t.Errorf("%s: miss ratio %v out of [0,1]", ctx, p.MissRatio)
		}
		if i > 0 {
			prev := points[i-1].Point
			if p.SizeKB <= prev.SizeKB {
				t.Errorf("%s: sizes not ascending (prev %dKB)", ctx, prev.SizeKB)
			}
			if p.MissRatio > prev.MissRatio+1e-12 {
				t.Errorf("%s: sampled MRC not monotone: %v after %v", ctx, p.MissRatio, prev.MissRatio)
			}
		}
		m := p.MCT
		if m.Conflict+m.Capacity+m.Compulsory != m.Misses {
			t.Errorf("%s: split %d+%d+%d != misses %d", ctx, m.Conflict, m.Capacity, m.Compulsory, m.Misses)
		}
		if m.Misses > m.Accesses {
			t.Errorf("%s: misses %d exceed accesses %d", ctx, m.Misses, m.Accesses)
		}
		if m.Accesses != accesses {
			t.Errorf("%s: accesses %d, want %d", ctx, m.Accesses, accesses)
		}
	}
}
