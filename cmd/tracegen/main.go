// Command tracegen emits a synthetic benchmark's instruction stream in the
// repository's binary trace format, converts legacy traces to the current
// format, or inspects an existing trace file.
//
// Generate (fixed-stride v2 format by default):
//
//	tracegen -bench swim -n 1000000 -o swim.mctr [-seed N] [-format v1|v2]
//
// Convert a legacy (v1) trace to the fixed-stride v2 format:
//
//	tracegen -convert old.mctr -o new.mctr
//
// Inspect:
//
//	tracegen -dump swim.mctr [-head 20]
//
// Traces replayed through mctsim or the library reproduce the exact
// simulation results of the live generator with the same seed, which makes
// the format useful for pinning a workload while varying the architecture.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		benchName = flag.String("bench", "", "benchmark to generate (see mctsim -list)")
		n         = flag.Uint64("n", 1_000_000, "instructions to emit")
		out       = flag.String("o", "", "output file (default <bench>.mctr)")
		seed      = flag.Uint64("seed", workload.DefaultSeed, "workload seed")
		format    = flag.String("format", "v2", "wire format to emit: v2 (fixed-stride) or v1 (legacy packed)")
		convert   = flag.String("convert", "", "trace file to rewrite in the v2 format instead of generating")
		dump      = flag.String("dump", "", "trace file to inspect instead of generating")
		head      = flag.Int("head", 10, "records to print when dumping")
	)
	flag.Parse()

	var err error
	switch {
	case *dump != "":
		err = dumpTrace(*dump, *head)
	case *convert != "":
		err = convertTrace(*convert, *out)
	case *benchName != "":
		err = generate(*benchName, *out, *n, *seed, *format)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func generate(bench, out string, n, seed uint64, format string) error {
	b, ok := workload.ByName(bench)
	if !ok {
		return fmt.Errorf("unknown benchmark %q", bench)
	}
	if out == "" {
		out = bench + ".mctr"
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	src := trace.NewLimit(b.Stream(seed), n)
	var written uint64
	switch format {
	case "v1":
		written, err = trace.WriteAll(f, src)
	case "v2":
		written, err = writeAllV2(f, src)
	default:
		return fmt.Errorf("unknown format %q (valid: v1, v2)", format)
	}
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d instructions of %s (seed %d) to %s (%s)\n", written, bench, seed, out, format)
	return nil
}

// writeAllV2 streams src into a fixed-stride v2 trace one SoA batch at a
// time.
func writeAllV2(f *os.File, src trace.Stream) (uint64, error) {
	w, err := trace.NewWriterV2(f, 0)
	if err != nil {
		return 0, err
	}
	sb := trace.NewStreamBatcher(src)
	b := trace.NewBatch(trace.DefaultBatchSize)
	for sb.ReadBatch(b, trace.DefaultBatchSize) > 0 {
		if err := w.WriteBatch(b); err != nil {
			return w.Count(), err
		}
	}
	return w.Count(), w.Flush()
}

// convertTrace rewrites a trace of any supported version (in practice: a
// legacy v1 capture) in the fixed-stride v2 format.
func convertTrace(in, out string) error {
	if out == "" {
		out = in + ".v2"
	}
	src, err := os.Open(in)
	if err != nil {
		return err
	}
	defer src.Close()
	dst, err := os.Create(out)
	if err != nil {
		return err
	}
	defer dst.Close()
	n, err := trace.Transcode(dst, src, trace.Limits{})
	if err != nil {
		return err
	}
	if err := dst.Close(); err != nil {
		return err
	}
	fmt.Printf("converted %d records from %s to %s (v2)\n", n, in, out)
	return nil
}

func dumpTrace(path string, head int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	var in trace.Instr
	shown := 0
	var counts [trace.NumOpClasses]uint64
	var total uint64
	for r.Next(&in) {
		if shown < head {
			if in.Op.IsMem() {
				fmt.Printf("%8d  pc=%#010x %-6s addr=%#010x\n", total, uint64(in.PC), in.Op, uint64(in.Addr))
			} else if in.Op == trace.Branch {
				fmt.Printf("%8d  pc=%#010x %-6s taken=%v\n", total, uint64(in.PC), in.Op, in.Taken)
			} else {
				fmt.Printf("%8d  pc=%#010x %-6s r%d <- r%d, r%d\n", total, uint64(in.PC), in.Op, in.Dest, in.Src1, in.Src2)
			}
			shown++
		}
		counts[in.Op]++
		total++
	}
	if err := r.Err(); err != nil {
		return err
	}
	fmt.Printf("total %d instructions:", total)
	for op := 0; op < trace.NumOpClasses; op++ {
		if counts[op] > 0 {
			fmt.Printf("  %s %.1f%%", trace.OpClass(op), 100*float64(counts[op])/float64(total))
		}
	}
	fmt.Println()
	return nil
}
