// Command tracegen emits a synthetic benchmark's instruction stream in the
// repository's binary trace format, or inspects an existing trace file.
//
// Generate:
//
//	tracegen -bench swim -n 1000000 -o swim.mctr [-seed N]
//
// Inspect:
//
//	tracegen -dump swim.mctr [-head 20]
//
// Traces replayed through mctsim or the library reproduce the exact
// simulation results of the live generator with the same seed, which makes
// the format useful for pinning a workload while varying the architecture.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		benchName = flag.String("bench", "", "benchmark to generate (see mctsim -list)")
		n         = flag.Uint64("n", 1_000_000, "instructions to emit")
		out       = flag.String("o", "", "output file (default <bench>.mctr)")
		seed      = flag.Uint64("seed", workload.DefaultSeed, "workload seed")
		dump      = flag.String("dump", "", "trace file to inspect instead of generating")
		head      = flag.Int("head", 10, "records to print when dumping")
	)
	flag.Parse()

	switch {
	case *dump != "":
		if err := dumpTrace(*dump, *head); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
	case *benchName != "":
		if err := generate(*benchName, *out, *n, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func generate(bench, out string, n, seed uint64) error {
	b, ok := workload.ByName(bench)
	if !ok {
		return fmt.Errorf("unknown benchmark %q", bench)
	}
	if out == "" {
		out = bench + ".mctr"
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	written, err := trace.WriteAll(f, trace.NewLimit(b.Stream(seed), n))
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d instructions of %s (seed %d) to %s\n", written, bench, seed, out)
	return nil
}

func dumpTrace(path string, head int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	var in trace.Instr
	shown := 0
	var counts [trace.NumOpClasses]uint64
	var total uint64
	for r.Next(&in) {
		if shown < head {
			if in.Op.IsMem() {
				fmt.Printf("%8d  pc=%#010x %-6s addr=%#010x\n", total, uint64(in.PC), in.Op, uint64(in.Addr))
			} else if in.Op == trace.Branch {
				fmt.Printf("%8d  pc=%#010x %-6s taken=%v\n", total, uint64(in.PC), in.Op, in.Taken)
			} else {
				fmt.Printf("%8d  pc=%#010x %-6s r%d <- r%d, r%d\n", total, uint64(in.PC), in.Op, in.Dest, in.Src1, in.Src2)
			}
			shown++
		}
		counts[in.Op]++
		total++
	}
	if err := r.Err(); err != nil {
		return err
	}
	fmt.Printf("total %d instructions:", total)
	for op := 0; op < trace.NumOpClasses; op++ {
		if counts[op] > 0 {
			fmt.Printf("  %s %.1f%%", trace.OpClass(op), 100*float64(counts[op])/float64(total))
		}
	}
	fmt.Println()
	return nil
}
