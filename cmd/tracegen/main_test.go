package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

func TestGenerateWritesReplayableTrace(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "t.mctr")
	if err := generate("li", out, 5000, 42, "v2"); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	got := trace.Drain(r)
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if len(got) != 5000 {
		t.Fatalf("trace has %d records", len(got))
	}
	// The file replays identically to the live generator.
	b, _ := workload.ByName("li")
	want := trace.Drain(trace.NewLimit(b.Stream(42), 5000))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestGenerateRejectsUnknownBenchmark(t *testing.T) {
	if err := generate("doom", filepath.Join(t.TempDir(), "x"), 10, 1, "v2"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestDumpTrace(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "t.mctr")
	if err := generate("go", out, 200, 7, "v1"); err != nil {
		t.Fatal(err)
	}
	if err := dumpTrace(out, 5); err != nil {
		t.Fatal(err)
	}
	if err := dumpTrace(filepath.Join(dir, "missing"), 5); err == nil {
		t.Error("missing file accepted")
	}
	// A corrupt file surfaces an error.
	bad := filepath.Join(dir, "bad.mctr")
	if err := os.WriteFile(bad, []byte("NOPE etc"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := dumpTrace(bad, 5); err == nil {
		t.Error("corrupt file accepted")
	}
}
