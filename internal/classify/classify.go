// Package classify implements the classic ("oracle") miss taxonomy of
// Hill's thesis — compulsory, capacity, conflict — and measures the Miss
// Classification Table's accuracy against it. This is the ground truth
// behind the paper's Figures 1 and 2.
//
// Classic classification is defined by simulation: a reference is
//
//   - compulsory if the line has never been referenced before;
//   - a conflict miss if it misses the real (set-associative) cache but
//     hits a fully-associative LRU cache of the same total capacity; and
//   - a capacity miss if it misses both.
//
// Following the paper, compulsory misses are grouped with capacity misses
// ("we'll group compulsory and capacity misses together and call them
// capacity misses for simplicity").
package classify

import (
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/mem"
)

// Kind is the oracle's verdict for an access.
type Kind uint8

const (
	// Compulsory is a first-ever reference to the line.
	Compulsory Kind = iota
	// Capacity misses both the real cache and the equal-capacity
	// fully-associative LRU cache.
	Capacity
	// Conflict misses the real cache but hits the fully-associative cache.
	Conflict
	// Hit marks an access that hit the real cache: no miss happened, so no
	// miss taxonomy applies. Observe returns it so a caller that tallies
	// verdicts unconditionally cannot silently inflate the Compulsory
	// count (the sentinel Observe used to return for hits).
	Hit

	// numMissKinds counts the miss verdicts (Hit excluded).
	numMissKinds = int(Hit)
)

// IsMiss reports whether the kind classifies a miss (i.e. is not Hit).
func (k Kind) IsMiss() bool { return k != Hit }

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Compulsory:
		return "compulsory"
	case Capacity:
		return "capacity"
	case Conflict:
		return "conflict"
	case Hit:
		return "hit"
	default:
		return "unknown"
	}
}

// Grouped folds a miss verdict into the paper's two-way taxonomy. It is
// only meaningful for miss kinds (IsMiss); Hit has no grouping.
func (k Kind) Grouped() core.Class {
	if k == Conflict {
		return core.Conflict
	}
	return core.Capacity
}

// Oracle tracks the state needed for classic classification alongside a
// real cache: the set of lines ever touched and a fully-associative LRU
// cache of equal capacity. The oracle must observe every access (hits
// included) to keep the fully-associative recency exact.
//
// The touched set is a paged bitmap (mem.LineSet) rather than a hash set:
// Observe runs once per memory access for every accuracy experiment, and
// the bitmap answers "first touch?" with bit arithmetic instead of a map
// insert, allocation-free at steady state.
type Oracle struct {
	geom    mem.Geometry
	fa      *cache.FullyAssociative
	touched mem.LineSet

	counts [numMissKinds]uint64

	// ObserveBatch staging scratch, sized to the largest batch seen.
	lines []mem.LineAddr
	seen  []bool
	faHit []bool
}

// NewOracle builds an oracle for a cache with the given configuration.
func NewOracle(cfg cache.Config) (*Oracle, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	geom, err := mem.NewGeometry(cfg.LineSize, cfg.Sets())
	if err != nil {
		return nil, err
	}
	return &Oracle{
		geom: geom,
		fa:   cache.NewFullyAssociative(cfg.Size / cfg.LineSize),
	}, nil
}

// MustNewOracle is NewOracle that panics on error.
func MustNewOracle(cfg cache.Config) *Oracle {
	o, err := NewOracle(cfg)
	if err != nil {
		panic(err)
	}
	return o
}

// Observe records one access and returns the oracle's verdict: Hit when
// the real cache hit, else the miss kind the access has under classic
// classification. The caller decides whether the real cache actually
// missed; the oracle itself is cache-independent given the configuration.
// realHit must report whether the access hit the real cache (the miss
// taxonomy is only meaningful for misses, but the touched set and the
// fully-associative state must advance on every access either way).
func (o *Oracle) Observe(addr mem.Addr, realHit bool) Kind {
	line := o.geom.Line(addr)
	seen := o.touched.TestAndSet(line)
	faHit := o.fa.Reference(line)
	if realHit {
		return Hit
	}
	var k Kind
	switch {
	case !seen:
		k = Compulsory
	case faHit:
		k = Conflict
	default:
		k = Capacity
	}
	o.counts[k]++
	return k
}

// ObserveBatch records a block of accesses, writing each verdict to kinds
// (same length as addrs; realHit[i] reports whether access i hit the real
// cache). It is Observe staged per structure over the batch: line
// extraction, then the touched bitmap, then the fully-associative LRU,
// then the verdicts — each structure's state walked in one tight loop
// rather than interleaved per record. Ordering within each structure is
// preserved (record i's LRU reference precedes record i+1's), so the
// verdicts and counters are identical to calling Observe in a loop.
func (o *Oracle) ObserveBatch(addrs []mem.Addr, realHit []bool, kinds []Kind) {
	n := len(addrs)
	if n == 0 {
		return
	}
	realHit = realHit[:n]
	kinds = kinds[:n]
	if cap(o.lines) < n {
		o.lines = make([]mem.LineAddr, n)
		o.seen = make([]bool, n)
		o.faHit = make([]bool, n)
	}
	lines, seen, faHit := o.lines[:n], o.seen[:n], o.faHit[:n]
	for i, addr := range addrs {
		lines[i] = o.geom.Line(addr)
	}
	for i, line := range lines {
		seen[i] = o.touched.TestAndSet(line)
	}
	o.fa.ReferenceBatch(lines, faHit)
	for i := range lines {
		if realHit[i] {
			kinds[i] = Hit
			continue
		}
		var k Kind
		switch {
		case !seen[i]:
			k = Compulsory
		case faHit[i]:
			k = Conflict
		default:
			k = Capacity
		}
		o.counts[k]++
		kinds[i] = k
	}
}

// Counts returns how many misses the oracle has labeled compulsory,
// capacity, and conflict.
func (o *Oracle) Counts() (compulsory, capacity, conflict uint64) {
	return o.counts[Compulsory], o.counts[Capacity], o.counts[Conflict]
}

// Accuracy accumulates the agreement between the MCT's on-the-fly verdicts
// and the oracle's classic verdicts, per the paper's definition: conflict
// accuracy is the fraction of oracle-conflict misses the MCT also labeled
// conflict, and capacity accuracy is the fraction of oracle-capacity
// (including compulsory) misses the MCT labeled capacity.
type Accuracy struct {
	ConflictTotal   uint64 // oracle said conflict
	ConflictAgreed  uint64 // ... and MCT agreed
	CapacityTotal   uint64 // oracle said capacity/compulsory
	CapacityAgreed  uint64 // ... and MCT agreed
	CompulsoryTotal uint64 // subset of CapacityTotal that was compulsory
}

// Record adds one classified miss. A Hit verdict is ignored: hits carry no
// miss classification, and counting them anywhere would corrupt the
// accuracy denominators.
func (a *Accuracy) Record(oracle Kind, mct core.Class) {
	if oracle == Hit {
		return
	}
	if oracle == Conflict {
		a.ConflictTotal++
		if mct == core.Conflict {
			a.ConflictAgreed++
		}
		return
	}
	a.CapacityTotal++
	if oracle == Compulsory {
		a.CompulsoryTotal++
	}
	if mct == core.Capacity {
		a.CapacityAgreed++
	}
}

// Merge adds another accumulator's counts into a.
func (a *Accuracy) Merge(b Accuracy) {
	a.ConflictTotal += b.ConflictTotal
	a.ConflictAgreed += b.ConflictAgreed
	a.CapacityTotal += b.CapacityTotal
	a.CapacityAgreed += b.CapacityAgreed
	a.CompulsoryTotal += b.CompulsoryTotal
}

// Misses returns the total number of recorded misses.
func (a Accuracy) Misses() uint64 { return a.ConflictTotal + a.CapacityTotal }

// ConflictAccuracy returns the fraction of true conflict misses identified.
func (a Accuracy) ConflictAccuracy() float64 {
	if a.ConflictTotal == 0 {
		return 0
	}
	return float64(a.ConflictAgreed) / float64(a.ConflictTotal)
}

// CapacityAccuracy returns the fraction of true capacity misses identified.
func (a Accuracy) CapacityAccuracy() float64 {
	if a.CapacityTotal == 0 {
		return 0
	}
	return float64(a.CapacityAgreed) / float64(a.CapacityTotal)
}

// OverallAccuracy returns the fraction of all misses classified in
// agreement with the oracle — the paper's "correctly identifies 87% of
// misses in the worst case" metric.
func (a Accuracy) OverallAccuracy() float64 {
	if a.Misses() == 0 {
		return 0
	}
	return float64(a.ConflictAgreed+a.CapacityAgreed) / float64(a.Misses())
}

// ConflictShare returns the fraction of misses the oracle labels conflict,
// used to check that workloads exhibit an "interesting mix".
func (a Accuracy) ConflictShare() float64 {
	if a.Misses() == 0 {
		return 0
	}
	return float64(a.ConflictTotal) / float64(a.Misses())
}

// Run drives a full accuracy measurement: it plays every access through a
// classifying cache and the oracle in lockstep and accumulates agreement.
// It is the engine behind Figures 1 and 2.
type Run struct {
	CC     *core.ClassifyingCache
	Oracle *Oracle
	Acc    Accuracy

	// Per-record results of the most recent AccessBatch, all sharing that
	// batch's length: Hits[i] reports whether access i hit the real cache;
	// for misses, Kinds[i] is the oracle verdict and Classes[i] the MCT
	// verdict (both meaningless for hits). Valid until the next AccessBatch.
	Hits    []bool
	Kinds   []Kind
	Classes []core.Class
}

// NewRun builds the lockstep measurement over a cache configuration with an
// MCT storing tagBits bits per entry (0 = full tags).
func NewRun(cfg cache.Config, tagBits int) (*Run, error) {
	c, err := cache.New(cfg)
	if err != nil {
		return nil, err
	}
	cc, err := core.Attach(c, tagBits)
	if err != nil {
		return nil, err
	}
	o, err := NewOracle(cfg)
	if err != nil {
		return nil, err
	}
	return &Run{CC: cc, Oracle: o}, nil
}

// Access plays one access through both models, updating the accuracy
// accumulator on a miss. It is the scalar reference implementation that
// the batched kernel (AccessBatch) is differentially tested against.
func (r *Run) Access(addr mem.Addr, isStore bool) {
	hit, ev := r.CC.Access(addr, isStore)
	kind := r.Oracle.Observe(addr, hit)
	if !hit {
		r.Acc.Record(kind, ev.Class)
	}
}

// AccessBatch plays a block of accesses through both models — the
// struct-of-arrays fast path. The work is staged per structure (real
// cache + MCT, then oracle, then accuracy) so each stage runs as one
// tight loop over parallel arrays; within each stage records are applied
// in order, making the outcome identical to calling Access in a loop.
// Per-record verdicts are left in r.Hits/r.Kinds/r.Classes for callers
// that report individual accesses. Steady-state allocation-free: the
// result arrays grow to the largest batch and are reused.
func (r *Run) AccessBatch(addrs []mem.Addr, stores []bool) {
	n := len(addrs)
	if cap(r.Hits) < n {
		r.Hits = make([]bool, n)
		r.Kinds = make([]Kind, n)
		r.Classes = make([]core.Class, n)
	}
	r.Hits = r.Hits[:n]
	r.Kinds = r.Kinds[:n]
	r.Classes = r.Classes[:n]
	if n == 0 {
		return
	}
	r.CC.AccessBatch(addrs, stores, r.Hits, r.Classes)
	r.Oracle.ObserveBatch(addrs, r.Hits, r.Kinds)
	for i, hit := range r.Hits {
		if !hit {
			r.Acc.Record(r.Kinds[i], r.Classes[i])
		}
	}
}
