package classify

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/mem"
)

func dmConfig() cache.Config {
	return cache.Config{Name: "t", Size: 16 * 1024, LineSize: 64, Assoc: 1}
}

func TestKindStringsAndGrouping(t *testing.T) {
	if Compulsory.String() != "compulsory" || Capacity.String() != "capacity" || Conflict.String() != "conflict" {
		t.Error("kind names wrong")
	}
	if Hit.String() != "hit" {
		t.Error("hit kind should render 'hit'")
	}
	if Kind(9).String() != "unknown" {
		t.Error("unknown kind should render 'unknown'")
	}
	if Hit.IsMiss() || !Compulsory.IsMiss() || !Capacity.IsMiss() || !Conflict.IsMiss() {
		t.Error("IsMiss wrong")
	}
	// The paper groups compulsory with capacity.
	if Compulsory.Grouped() != core.Capacity || Capacity.Grouped() != core.Capacity {
		t.Error("compulsory/capacity must group as capacity")
	}
	if Conflict.Grouped() != core.Conflict {
		t.Error("conflict must group as conflict")
	}
}

func TestOracleCompulsory(t *testing.T) {
	o := MustNewOracle(dmConfig())
	if k := o.Observe(0x1000, false); k != Compulsory {
		t.Errorf("first touch = %v", k)
	}
	// Second miss to the same line after eviction-scale history would not
	// be compulsory; immediately it would be a hit in the real cache, so
	// Observe is called with realHit=true and returns Hit.
	o.Observe(0x1000, true)
	comp, _, _ := o.Counts()
	if comp != 1 {
		t.Errorf("compulsory count = %d", comp)
	}
}

// TestObserveHitReturnsHit is the regression test for the old sentinel bug:
// Observe used to return Compulsory for real-cache hits, so a caller that
// tallied the return value unconditionally silently inflated compulsory
// counts. Hits must now return the distinct Hit kind and leave every miss
// counter untouched.
func TestObserveHitReturnsHit(t *testing.T) {
	o := MustNewOracle(dmConfig())
	if k := o.Observe(0x2000, false); k != Compulsory {
		t.Fatalf("first touch = %v, want compulsory", k)
	}
	for i := 0; i < 5; i++ {
		if k := o.Observe(0x2000, true); k != Hit {
			t.Fatalf("real hit = %v, want Hit", k)
		}
	}
	comp, cap_, conf := o.Counts()
	if comp != 1 || cap_ != 0 || conf != 0 {
		t.Errorf("counts after hits = (%d, %d, %d), want (1, 0, 0): hits must not be tallied as misses",
			comp, cap_, conf)
	}
	// A caller that (incorrectly) records every verdict must not corrupt
	// the accuracy denominators either: Record ignores Hit.
	var a Accuracy
	a.Record(Hit, core.Capacity)
	a.Record(Hit, core.Conflict)
	if a.Misses() != 0 || a.CapacityTotal != 0 || a.ConflictTotal != 0 {
		t.Errorf("Record(Hit, ...) polluted accuracy: %+v", a)
	}
}

func TestOracleConflictVsCapacity(t *testing.T) {
	// A two-line ping-pong in one set of a DM cache: the fully-associative
	// cache holds both lines, so after first touch every miss is conflict.
	o := MustNewOracle(dmConfig())
	a, b := mem.Addr(0x0000), mem.Addr(0x4000)
	o.Observe(a, false) // compulsory
	o.Observe(b, false) // compulsory
	for i := 0; i < 10; i++ {
		if k := o.Observe(a, false); k != Conflict {
			t.Fatalf("iter %d: a = %v", i, k)
		}
		if k := o.Observe(b, false); k != Conflict {
			t.Fatalf("iter %d: b = %v", i, k)
		}
	}
	// A cyclic sweep over twice the cache's line count misses the FA cache
	// too: capacity.
	o2 := MustNewOracle(dmConfig())
	lines := 2 * 256
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < lines; i++ {
			k := o2.Observe(mem.Addr(i*64), false)
			if pass == 0 && k != Compulsory {
				t.Fatalf("pass 0 line %d = %v", i, k)
			}
			if pass == 1 && k != Capacity {
				t.Fatalf("pass 1 line %d = %v", i, k)
			}
		}
	}
}

func TestOracleObservesHitsForRecency(t *testing.T) {
	// FA recency must advance on real-cache hits too; otherwise a hot line
	// would look FA-cold. Touch a line often (as hits), thrash the FA with
	// other lines, then miss on it: it must still classify capacity
	// (evicted from FA despite... actually verify the opposite: keeping it
	// hot in FA via hits makes the eventual miss a conflict).
	o := MustNewOracle(dmConfig())
	hot := mem.Addr(0x0000)
	o.Observe(hot, false) // compulsory, now resident
	for i := 0; i < 100; i++ {
		o.Observe(hot, true) // hits keep it MRU in the FA cache
		o.Observe(mem.Addr(0x100000+i*64), false)
	}
	if k := o.Observe(hot, false); k != Conflict {
		t.Errorf("hot line miss = %v, want conflict (FA-resident)", k)
	}
}

func TestAccuracyAccounting(t *testing.T) {
	var a Accuracy
	a.Record(Conflict, core.Conflict)
	a.Record(Conflict, core.Capacity)
	a.Record(Capacity, core.Capacity)
	a.Record(Compulsory, core.Capacity)
	a.Record(Compulsory, core.Conflict)
	if a.ConflictTotal != 2 || a.ConflictAgreed != 1 {
		t.Errorf("conflict accounting: %+v", a)
	}
	if a.CapacityTotal != 3 || a.CapacityAgreed != 2 || a.CompulsoryTotal != 2 {
		t.Errorf("capacity accounting: %+v", a)
	}
	if a.ConflictAccuracy() != 0.5 {
		t.Errorf("conflict accuracy = %g", a.ConflictAccuracy())
	}
	if a.OverallAccuracy() != 0.6 {
		t.Errorf("overall = %g", a.OverallAccuracy())
	}
	if a.ConflictShare() != 0.4 {
		t.Errorf("share = %g", a.ConflictShare())
	}
	var b Accuracy
	b.Merge(a)
	if b != a {
		t.Error("merge into empty should copy")
	}
	if (Accuracy{}).ConflictAccuracy() != 0 || (Accuracy{}).CapacityAccuracy() != 0 || (Accuracy{}).OverallAccuracy() != 0 {
		t.Error("empty accuracy should be 0, not NaN")
	}
}

func TestRunLockstepPingPong(t *testing.T) {
	// On the canonical ping-pong the MCT agrees with the oracle perfectly,
	// giving 100% accuracy.
	r, err := NewRun(dmConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	a, b := mem.Addr(0x0000), mem.Addr(0x4000)
	for i := 0; i < 50; i++ {
		r.Access(a, false)
		r.Access(b, false)
	}
	if r.Acc.ConflictTotal == 0 {
		t.Fatal("ping-pong should generate conflict misses")
	}
	if r.Acc.ConflictAccuracy() != 1.0 {
		t.Errorf("MCT conflict accuracy on pure ping-pong = %g, want 1",
			r.Acc.ConflictAccuracy())
	}
	if r.Acc.CapacityAccuracy() != 1.0 {
		t.Errorf("capacity accuracy = %g, want 1", r.Acc.CapacityAccuracy())
	}
}

func TestRunSweepMostlyCapacity(t *testing.T) {
	// A cyclic sweep over 4x the cache is capacity-dominated, and with
	// four lines aliasing per set the MCT's one-deep memory classifies
	// them correctly as capacity.
	r, err := NewRun(dmConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	lines := 4 * 256
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < lines; i++ {
			r.Access(mem.Addr(i*64), false)
		}
	}
	if r.Acc.ConflictTotal != 0 {
		t.Errorf("pure sweep produced %d oracle-conflict misses", r.Acc.ConflictTotal)
	}
	if r.Acc.CapacityAccuracy() != 1.0 {
		t.Errorf("capacity accuracy = %g", r.Acc.CapacityAccuracy())
	}
}

func TestRunTwoLineSweepMisclassifies(t *testing.T) {
	// The systematic error mode: a region with exactly two lines per set
	// is pure capacity (FA thrashes too), but the MCT's one-deep eviction
	// memory sees a ping-pong and labels it conflict (DESIGN.md kernel
	// SweepLoop rationale).
	r, err := NewRun(dmConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	lines := 2 * 256
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < lines; i++ {
			r.Access(mem.Addr(i*64), false)
		}
	}
	if r.Acc.ConflictTotal != 0 {
		t.Fatalf("oracle should see no conflicts in a 2x-cache sweep")
	}
	if acc := r.Acc.CapacityAccuracy(); acc > 0.5 {
		t.Errorf("capacity accuracy = %g; expected heavy misclassification in the k=2 sweep", acc)
	}
}

func TestPartialTagsBiasTowardConflict(t *testing.T) {
	// Figure 2's mechanism in miniature: with 1 stored bit, about half of
	// capacity misses falsely match and classify conflict.
	full, err := NewRun(dmConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	small, err := NewRun(dmConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	lines := 8 * 256
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < lines; i++ {
			full.Access(mem.Addr(i*64), false)
			small.Access(mem.Addr(i*64), false)
		}
	}
	if fullAcc, smallAcc := full.Acc.CapacityAccuracy(), small.Acc.CapacityAccuracy(); smallAcc >= fullAcc {
		t.Errorf("1-bit tags should lose capacity accuracy: full=%g small=%g", fullAcc, smallAcc)
	}
}

func TestNewRunRejectsBadConfig(t *testing.T) {
	if _, err := NewRun(cache.Config{Size: 3}, 0); err == nil {
		t.Error("bad cache config accepted")
	}
	if _, err := NewRun(dmConfig(), -3); err == nil {
		t.Error("bad tag bits accepted")
	}
}

// TestObserveSteadyStateAllocs pins the oracle hot path at zero
// allocations per access: the LineSet bitmap and the arena-backed
// fully-associative model must not touch the heap once warmed. A
// regression here multiplies across every simulated instruction.
func TestObserveSteadyStateAllocs(t *testing.T) {
	o := MustNewOracle(benchConfig())
	addrs := benchAddrs(4096)
	for _, a := range addrs {
		o.Observe(a, false)
	}
	i := 0
	if avg := testing.AllocsPerRun(1000, func() {
		o.Observe(addrs[i%len(addrs)], false)
		i++
	}); avg != 0 {
		t.Fatalf("Oracle.Observe steady state allocates %v allocs/op, want 0", avg)
	}
}

// TestAccessBatchSteadyStateAllocs pins the batched classification kernel
// at zero allocations per batch: once the result arrays and the oracle's
// staging scratch have grown to the working batch size, replaying batches
// must not touch the heap. This is the kernel every batch consumer
// (mctsim -trace, the service upload path, perf's sim.endtoend.batch)
// sits on.
func TestAccessBatchSteadyStateAllocs(t *testing.T) {
	run, err := NewRun(benchConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	addrs := benchAddrs(256)
	stores := make([]bool, len(addrs))
	for i := range stores {
		stores[i] = i%5 == 0
	}
	run.AccessBatch(addrs, stores) // warm: grow results and scratch, touch lines
	if avg := testing.AllocsPerRun(1000, func() {
		run.AccessBatch(addrs, stores)
	}); avg != 0 {
		t.Fatalf("Run.AccessBatch steady state allocates %v allocs/batch, want 0", avg)
	}
}
