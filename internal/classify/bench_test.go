package classify

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/mem"
)

// benchConfig is the paper's default L1: 16KB direct-mapped, 64B lines.
func benchConfig() cache.Config {
	return cache.Config{Name: "L1D", Size: 16 << 10, LineSize: 64, Assoc: 1}
}

// benchAddrs builds a deterministic access pattern with a realistic mix of
// hits, conflict misses, and capacity misses: a hot set that mostly hits,
// a ping-pong pair that conflicts, and a cold sweep twice the cache size.
func benchAddrs(n int) []mem.Addr {
	addrs := make([]mem.Addr, 0, n)
	var sweep uint64
	for len(addrs) < n {
		// Hot line, repeatedly hit.
		addrs = append(addrs, 0x1000)
		// Ping-pong pair 16KB apart (same set, different tag).
		addrs = append(addrs, 0x20000, 0x24000)
		// Cold sweep over a 32KB region.
		addrs = append(addrs, mem.Addr(0x100000+(sweep%512)*64))
		sweep++
	}
	return addrs[:n]
}

// BenchmarkOracleObserve measures the oracle's per-access hot path: the
// first-touch membership test plus the fully-associative LRU reference.
func BenchmarkOracleObserve(b *testing.B) {
	o := MustNewOracle(benchConfig())
	addrs := benchAddrs(4096)
	// Warm up so steady-state behavior (not first-touch growth) dominates.
	for _, a := range addrs {
		o.Observe(a, false)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Observe(addrs[i%len(addrs)], false)
	}
}

// BenchmarkRunAccess measures the full lockstep classification path:
// real cache access + oracle observe + accuracy recording.
func BenchmarkRunAccess(b *testing.B) {
	r, err := NewRun(benchConfig(), 0)
	if err != nil {
		b.Fatal(err)
	}
	addrs := benchAddrs(4096)
	for _, a := range addrs {
		r.Access(a, false)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Access(addrs[i%len(addrs)], false)
	}
}
