package classify_test

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/classify"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestSuiteClassificationShape is the tuning gate for the synthetic suite:
// on the paper's 16KB direct-mapped L1 every benchmark must classify with
// reasonable accuracy, and the suite overall must show the paper's
// worst-case bound (≥80% here; the paper reports 87%). It doubles as a
// smoke test that every benchmark generates, misses, and classifies.
func TestSuiteClassificationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("suite sweep is slow")
	}
	cfg := cache.Config{Name: "L1D", Size: 16 * 1024, LineSize: 64, Assoc: 1}
	for _, b := range workload.Suite() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			r, err := classify.NewRun(cfg, 0)
			if err != nil {
				t.Fatal(err)
			}
			s := trace.NewMemOnly(b.Stream(workload.DefaultSeed))
			var in trace.Instr
			for i := 0; i < 400_000 && s.Next(&in); i++ {
				r.Access(in.Addr, in.Op == trace.Store)
			}
			acc := r.Acc
			st := r.CC.Cache().Stats()
			t.Logf("%-9s missrate=%5.2f%% conflictShare=%5.1f%% confAcc=%5.1f%% capAcc=%5.1f%% overall=%5.1f%% (miss=%d)",
				b.Name, 100*st.MissRate(), 100*acc.ConflictShare(),
				100*acc.ConflictAccuracy(), 100*acc.CapacityAccuracy(),
				100*acc.OverallAccuracy(), acc.Misses())
			if acc.Misses() < 1000 {
				t.Errorf("%s: only %d misses in 400k accesses; workload too cache-friendly to classify", b.Name, acc.Misses())
			}
			if o := acc.OverallAccuracy(); o < 0.60 {
				t.Errorf("%s: overall accuracy %.1f%% implausibly low", b.Name, 100*o)
			}
		})
	}
}
