// Package prefetch implements the hardware prefetchers of Section 5.2: the
// next-line prefetcher with capacity-miss filtering via the Miss
// Classification Table, and the Chen–Baer reference prediction table (RPT)
// stride prefetcher the paper compares against in discussion.
//
// The next-line prefetcher fetches line N+1 into the assist buffer on a
// miss to line N. Unfiltered, it wastes many fetches on conflict misses
// (whose "next line" has no sequential relationship to future accesses);
// filtering those misses out raises prefetch accuracy — by about 25% in
// the paper — while barely moving coverage.
package prefetch

import (
	"fmt"

	"repro/internal/assist"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/mem"
)

// Policy configures the next-line prefetcher's filtering.
type Policy struct {
	// Filter selects which misses are NOT prefetched: a miss matching the
	// filter is considered conflict-flavored and skipped. NoFilter is the
	// conventional prefetch-everything baseline (Figure 4's first bar).
	Filter core.Filter
	// PrefetchOnBufferHit issues the next-line prefetch when a demand
	// access hits the prefetch buffer, continuing the stream (the paper's
	// "on a hit in the prefetch buffer, the line is moved into the cache
	// and the next line is prefetched").
	PrefetchOnBufferHit bool
}

// Name returns the experiment label for the policy.
func (p Policy) Name() string {
	if p.Filter == core.NoFilter {
		return "pf-all"
	}
	return "pf-skip-" + p.Filter.String()
}

// System is the next-line prefetch assist system.
type System struct {
	pol    Policy
	l1     *cache.Cache
	mct    *core.MCT
	buffer *assist.Buffer
	geom   mem.Geometry

	stats assist.Stats
}

// New builds a next-line prefetch system with an entries-deep buffer.
func New(cfg cache.Config, tagBits, entries int, pol Policy) (*System, error) {
	l1, err := cache.New(cfg)
	if err != nil {
		return nil, err
	}
	mct, err := core.New(core.Config{Sets: cfg.Sets(), TagBits: tagBits})
	if err != nil {
		return nil, err
	}
	if entries <= 0 {
		return nil, fmt.Errorf("prefetch: buffer needs positive entries, got %d", entries)
	}
	return &System{
		pol:    pol,
		l1:     l1,
		mct:    mct,
		buffer: assist.NewBuffer(entries),
		geom:   l1.Geometry(),
	}, nil
}

// MustNew is New that panics on error.
func MustNew(cfg cache.Config, tagBits, entries int, pol Policy) *System {
	s, err := New(cfg, tagBits, entries, pol)
	if err != nil {
		panic(err)
	}
	return s
}

// Name implements assist.System.
func (s *System) Name() string { return s.pol.Name() }

// Buffer exposes the prefetch buffer.
func (s *System) Buffer() *assist.Buffer { return s.buffer }

// L1 exposes the underlying cache.
func (s *System) L1() *cache.Cache { return s.l1 }

// Access implements assist.System.
func (s *System) Access(acc mem.Access) assist.Outcome {
	isStore := acc.Type == mem.Store
	s.stats.Accesses++
	if s.l1.Access(acc.Addr, acc.Type) {
		s.stats.L1Hits++
		return assist.Outcome{L1Hit: true}
	}

	set := s.geom.Set(acc.Addr)
	tag := s.geom.Tag(acc.Addr)
	class := s.mct.ClassifyMiss(set, tag)
	line := s.geom.Line(acc.Addr)

	if entry, ok := s.buffer.Hit(line, isStore); ok {
		s.stats.BufferHits++
		s.stats.BufferHitsByOrigin[entry.Origin]++
		// Move the line into the cache; the prefetch buffer entry is
		// consumed (stream-buffer style), and the stream continues.
		s.buffer.Remove(line)
		ev := assist.FillWithMCT(s.l1, s.mct, acc.Addr, isStore || entry.Dirty, class)
		wb := ev.Occurred && ev.Dirty
		var pfs []mem.LineAddr
		if s.pol.PrefetchOnBufferHit {
			pfs = s.maybePrefetch(acc.Addr)
		}
		return assist.Outcome{Class: class, BufferHit: true, CacheFill: true, Writeback: wb, Prefetches: pfs}
	}

	s.stats.Misses++
	if class == core.Conflict {
		s.stats.ConflictMisses++
	} else {
		s.stats.CapacityMisses++
	}
	ev := assist.FillWithMCT(s.l1, s.mct, acc.Addr, isStore, class)
	wb := false
	evictedBit := false
	if ev.Occurred {
		wb = ev.Dirty
		evictedBit = ev.Conflict
	}
	// Filtered next-line prefetch: skip when the miss matches the
	// conflict filter (NoFilter never matches conflict semantics here —
	// Eval always true — so invert: baseline prefetches everything).
	var pfs []mem.LineAddr
	if s.pol.Filter == core.NoFilter || !s.pol.Filter.Eval(class == core.Conflict, evictedBit) {
		pfs = s.maybePrefetch(acc.Addr)
	}
	return assist.Outcome{Class: class, CacheFill: true, Writeback: wb, Prefetches: pfs}
}

// maybePrefetch returns the next line as a prefetch target unless it is
// already present in the cache or buffer.
func (s *System) maybePrefetch(addr mem.Addr) []mem.LineAddr {
	next := s.geom.NextLine(addr)
	nline := s.geom.Line(next)
	if s.l1.Contains(next) || s.buffer.Contains(nline) {
		return nil
	}
	s.stats.PrefetchesIssued++
	return []mem.LineAddr{nline}
}

// Contains implements assist.System.
func (s *System) Contains(addr mem.Addr) (inL1, inBuffer bool) {
	return s.l1.Contains(addr), s.buffer.Contains(s.geom.Line(addr))
}

// PrefetchArrived implements assist.System: the completed prefetch lands
// in the buffer (unless it raced a demand fill into the cache).
func (s *System) PrefetchArrived(line mem.LineAddr) bool {
	addr := mem.Addr(uint64(line) << s.geom.LineShift())
	if s.l1.Contains(addr) || s.buffer.Contains(line) {
		return false
	}
	s.buffer.Insert(line, assist.Entry{Origin: assist.OriginPrefetch})
	return true
}

// Stats implements assist.System, folding the buffer's prefetch
// usefulness accounting into the system counters.
func (s *System) Stats() assist.Stats {
	out := s.stats
	bs := s.buffer.Stats()
	out.PrefetchesUseful = bs.PrefetchesUseful
	out.PrefetchesWasted = bs.PrefetchesWasted
	return out
}
