package prefetch

import (
	"testing"

	"repro/internal/assist"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/mem"
)

func dmConfig() cache.Config {
	return cache.Config{Name: "t", Size: 16 * 1024, LineSize: 64, Assoc: 1}
}

func load(a mem.Addr) mem.Access { return mem.Access{Addr: a, PC: 0x400, Type: mem.Load} }

// drive pushes an access through the system, completing any requested
// prefetches immediately (zero-latency arrival).
func drive(s assist.System, acc mem.Access) assist.Outcome {
	out := s.Access(acc)
	for _, pf := range out.Prefetches {
		s.PrefetchArrived(pf)
	}
	return out
}

func TestPolicyNames(t *testing.T) {
	if (Policy{}).Name() != "pf-all" {
		t.Error("unfiltered policy name wrong")
	}
	if (Policy{Filter: core.OrConflict}).Name() != "pf-skip-or-conflict" {
		t.Errorf("filtered name = %q", Policy{Filter: core.OrConflict}.Name())
	}
}

func TestNextLinePrefetchOnMiss(t *testing.T) {
	s := MustNew(dmConfig(), 0, 8, Policy{})
	out := s.Access(load(0x1000))
	if len(out.Prefetches) != 1 || out.Prefetches[0] != mem.LineAddr(0x1040>>6) {
		t.Fatalf("prefetches = %v", out.Prefetches)
	}
	s.PrefetchArrived(out.Prefetches[0])
	// The prefetched next line now hits in the buffer, moves to the
	// cache, and (with PrefetchOnBufferHit) keeps the stream going.
	s2 := MustNew(dmConfig(), 0, 8, Policy{PrefetchOnBufferHit: true})
	drive(s2, load(0x1000))
	out = s2.Access(load(0x1040))
	if !out.BufferHit || !out.CacheFill {
		t.Fatalf("buffer hit outcome = %+v", out)
	}
	if len(out.Prefetches) != 1 {
		t.Errorf("stream should continue with a new prefetch, got %v", out.Prefetches)
	}
	if inL1, _ := s2.Contains(0x1040); !inL1 {
		t.Error("prefetched line should have moved into the cache on hit")
	}
}

func TestNoPrefetchWhenNextLinePresent(t *testing.T) {
	s := MustNew(dmConfig(), 0, 8, Policy{})
	drive(s, load(0x1040)) // fills 0x1040's line, prefetches 0x1080
	out := s.Access(load(0x1000))
	// Next line (0x1040) already in cache -> no prefetch.
	if len(out.Prefetches) != 0 {
		t.Errorf("prefetched an already-present line: %v", out.Prefetches)
	}
}

func TestSequentialStreamCoverage(t *testing.T) {
	s := MustNew(dmConfig(), 0, 8, Policy{PrefetchOnBufferHit: true})
	misses := 0
	for i := 0; i < 200; i++ {
		out := drive(s, load(mem.Addr(0x40000+i*64)))
		if out.Miss() {
			misses++
		}
	}
	// With zero-latency arrivals, only the very first access should miss.
	if misses > 2 {
		t.Errorf("sequential stream suffered %d misses with a next-line prefetcher", misses)
	}
	if acc := s.Stats().PrefetchAccuracy(); acc < 0.9 && s.Stats().PrefetchesWasted > 2 {
		t.Errorf("sequential prefetch accuracy = %.2f", acc)
	}
}

func TestFilterSkipsConflictMissPrefetch(t *testing.T) {
	s := MustNew(dmConfig(), 0, 8, Policy{Filter: core.OutConflict})
	a, b := mem.Addr(0x0000), mem.Addr(0x4000)
	s.Access(load(a))        // capacity: prefetch issued
	s.Access(load(b))        // capacity: prefetch issued
	out := s.Access(load(a)) // conflict-classified: prefetch suppressed
	if out.Class != core.Conflict {
		t.Fatalf("class = %v", out.Class)
	}
	if len(out.Prefetches) != 0 {
		t.Error("out-conflict filter should suppress the prefetch")
	}
	// Unfiltered system prefetches on the same access pattern.
	u := MustNew(dmConfig(), 0, 8, Policy{})
	u.Access(load(a))
	u.Access(load(b))
	out = u.Access(load(a))
	if len(out.Prefetches) != 1 {
		t.Error("unfiltered prefetcher should prefetch on the conflict miss")
	}
}

func TestPrefetchArrivedDropsWhenPresent(t *testing.T) {
	s := MustNew(dmConfig(), 0, 8, Policy{})
	drive(s, load(0x2000))
	line := s.L1().Geometry().Line(0x2000)
	if s.PrefetchArrived(line) {
		t.Error("arrival for a cache-resident line should drop")
	}
	// A line already in the buffer also drops.
	nl := s.L1().Geometry().Line(0x2040)
	if s.PrefetchArrived(nl) {
		t.Error("arrival for a buffer-resident line should drop")
	}
}

func TestWastedPrefetchAccounting(t *testing.T) {
	s := MustNew(dmConfig(), 0, 2, Policy{})
	// Random-ish misses whose next lines are never used: the 2-entry
	// buffer churns and counts waste.
	for i := 0; i < 20; i++ {
		drive(s, load(mem.Addr(0x100000+i*8192)))
	}
	st := s.Stats()
	if st.PrefetchesWasted == 0 {
		t.Error("non-sequential stream should waste prefetches")
	}
	if st.PrefetchesUseful != 0 {
		t.Errorf("no prefetch should be useful here, got %d", st.PrefetchesUseful)
	}
	if st.PrefetchAccuracy() != 0 {
		t.Errorf("accuracy = %g", st.PrefetchAccuracy())
	}
}

func TestRPTDetectsStride(t *testing.T) {
	s := MustNewRPT(dmConfig(), 0, 8, 512)
	pc := mem.Addr(0x400)
	// A steady stride of 128 bytes: after the state machine settles the
	// RPT should prefetch addr+128.
	var issued int
	for i := 0; i < 10; i++ {
		out := s.Access(mem.Access{Addr: mem.Addr(0x8000 + i*128), PC: pc, Type: mem.Load})
		issued += len(out.Prefetches)
		for _, pf := range out.Prefetches {
			s.PrefetchArrived(pf)
		}
	}
	if issued == 0 {
		t.Fatal("RPT never issued a prefetch on a steady stride")
	}
	// The last prefetch target should be two strides ahead of the
	// second-to-last access.
}

func TestRPTIgnoresStrideZero(t *testing.T) {
	s := MustNewRPT(dmConfig(), 0, 8, 512)
	pc := mem.Addr(0x500)
	for i := 0; i < 10; i++ {
		out := s.Access(mem.Access{Addr: 0x9000, PC: pc, Type: mem.Load})
		if len(out.Prefetches) != 0 {
			t.Fatal("stride-0 access pattern must not prefetch")
		}
	}
}

func TestRPTRandomPatternMostlyQuiet(t *testing.T) {
	s := MustNewRPT(dmConfig(), 0, 8, 512)
	pc := mem.Addr(0x600)
	issued := 0
	addrs := []mem.Addr{0x1000, 0x9040, 0x2480, 0x77c0, 0x31c0, 0x5000, 0x1240}
	for i := 0; i < 50; i++ {
		out := s.Access(mem.Access{Addr: addrs[i%len(addrs)] + mem.Addr(i*8192), PC: pc, Type: mem.Load})
		issued += len(out.Prefetches)
	}
	if issued > 10 {
		t.Errorf("RPT issued %d prefetches on an unstrided pattern", issued)
	}
}

func TestRPTName(t *testing.T) {
	if MustNewRPT(dmConfig(), 0, 8, 512).Name() != "pf-rpt" {
		t.Error("RPT name wrong")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(dmConfig(), 0, 0, Policy{}); err == nil {
		t.Error("zero entries accepted")
	}
	if _, err := New(cache.Config{Size: 1}, 0, 8, Policy{}); err == nil {
		t.Error("bad cache config accepted")
	}
	// RPT with a non-power-of-two table falls back to 512 rather than
	// erroring (documented behavior).
	if s, err := NewRPT(dmConfig(), 0, 8, 300); err != nil || s == nil {
		t.Error("RPT should accept and round a bad table size")
	}
}
