package prefetch

import (
	"repro/internal/assist"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/mem"
)

// RPT is Chen and Baer's reference prediction table: a PC-indexed table of
// (last address, stride, 2-bit state) entries that issues a prefetch for
// lastAddr+stride once a load settles into a steady stride. The paper
// examined it as the sophisticated alternative to next-line prefetching
// and found next-line gave higher coverage on its irregular applications;
// it is implemented here so that comparison can be reproduced (see the
// ablation bench) and to document the cost difference the paper stresses:
// the RPT is read and updated on every memory access, while the filtered
// next-line prefetcher touches its state only on misses.
type rptState uint8

const (
	rptInitial rptState = iota
	rptTransient
	rptSteady
	rptNoPred
)

type rptEntry struct {
	tag      mem.Addr
	lastAddr mem.Addr
	stride   int64
	state    rptState
	valid    bool
}

// RPTSystem is an assist.System that prefetches via a reference prediction
// table into the same small buffer the other policies use.
type RPTSystem struct {
	l1     *cache.Cache
	mct    *core.MCT
	buffer *assist.Buffer
	geom   mem.Geometry
	table  []rptEntry
	mask   uint64

	stats assist.Stats
}

// NewRPT builds the RPT system; tableSize must be a power of two (Chen and
// Baer evaluate 512; we default callers to that).
func NewRPT(cfg cache.Config, tagBits, entries, tableSize int) (*RPTSystem, error) {
	l1, err := cache.New(cfg)
	if err != nil {
		return nil, err
	}
	mct, err := core.New(core.Config{Sets: cfg.Sets(), TagBits: tagBits})
	if err != nil {
		return nil, err
	}
	if tableSize <= 0 || tableSize&(tableSize-1) != 0 {
		tableSize = 512
	}
	return &RPTSystem{
		l1:     l1,
		mct:    mct,
		buffer: assist.NewBuffer(entries),
		geom:   l1.Geometry(),
		table:  make([]rptEntry, tableSize),
		mask:   uint64(tableSize - 1),
	}, nil
}

// MustNewRPT is NewRPT that panics on error.
func MustNewRPT(cfg cache.Config, tagBits, entries, tableSize int) *RPTSystem {
	s, err := NewRPT(cfg, tagBits, entries, tableSize)
	if err != nil {
		panic(err)
	}
	return s
}

// Name implements assist.System.
func (s *RPTSystem) Name() string { return "pf-rpt" }

// Buffer exposes the prefetch buffer.
func (s *RPTSystem) Buffer() *assist.Buffer { return s.buffer }

// update advances the RPT entry for this access per the Chen–Baer state
// machine and returns a prefetch address when the entry is predicting.
func (s *RPTSystem) update(acc mem.Access) (mem.Addr, bool) {
	idx := (uint64(acc.PC) >> 2) & s.mask
	e := &s.table[idx]
	if !e.valid || e.tag != acc.PC {
		*e = rptEntry{tag: acc.PC, lastAddr: acc.Addr, state: rptInitial, valid: true}
		return 0, false
	}
	stride := int64(acc.Addr) - int64(e.lastAddr)
	correct := stride == e.stride
	switch e.state {
	case rptInitial:
		if correct {
			e.state = rptSteady
		} else {
			e.stride = stride
			e.state = rptTransient
		}
	case rptTransient:
		if correct {
			e.state = rptSteady
		} else {
			e.stride = stride
			e.state = rptNoPred
		}
	case rptSteady:
		if !correct {
			e.state = rptInitial
		}
	case rptNoPred:
		if correct {
			e.state = rptTransient
		} else {
			e.stride = stride
		}
	}
	e.lastAddr = acc.Addr
	if e.state == rptSteady && e.stride != 0 {
		return mem.Addr(int64(acc.Addr) + e.stride), true
	}
	return 0, false
}

// Access implements assist.System. Unlike the next-line system, the RPT is
// consulted and updated on every access, hit or miss.
func (s *RPTSystem) Access(acc mem.Access) assist.Outcome {
	isStore := acc.Type == mem.Store
	s.stats.Accesses++
	target, predict := s.update(acc)
	var pfs []mem.LineAddr
	if predict && !s.l1.Contains(target) && !s.buffer.Contains(s.geom.Line(target)) {
		s.stats.PrefetchesIssued++
		pfs = []mem.LineAddr{s.geom.Line(target)}
	}

	if s.l1.Access(acc.Addr, acc.Type) {
		s.stats.L1Hits++
		return assist.Outcome{L1Hit: true, Prefetches: pfs}
	}
	set := s.geom.Set(acc.Addr)
	tag := s.geom.Tag(acc.Addr)
	class := s.mct.ClassifyMiss(set, tag)
	line := s.geom.Line(acc.Addr)

	if entry, ok := s.buffer.Hit(line, isStore); ok {
		s.stats.BufferHits++
		s.stats.BufferHitsByOrigin[entry.Origin]++
		s.buffer.Remove(line)
		ev := assist.FillWithMCT(s.l1, s.mct, acc.Addr, isStore || entry.Dirty, class)
		wb := ev.Occurred && ev.Dirty
		return assist.Outcome{Class: class, BufferHit: true, CacheFill: true, Writeback: wb, Prefetches: pfs}
	}

	s.stats.Misses++
	if class == core.Conflict {
		s.stats.ConflictMisses++
	} else {
		s.stats.CapacityMisses++
	}
	ev := assist.FillWithMCT(s.l1, s.mct, acc.Addr, isStore, class)
	wb := ev.Occurred && ev.Dirty
	return assist.Outcome{Class: class, CacheFill: true, Writeback: wb, Prefetches: pfs}
}

// Contains implements assist.System.
func (s *RPTSystem) Contains(addr mem.Addr) (inL1, inBuffer bool) {
	return s.l1.Contains(addr), s.buffer.Contains(s.geom.Line(addr))
}

// PrefetchArrived implements assist.System.
func (s *RPTSystem) PrefetchArrived(line mem.LineAddr) bool {
	addr := mem.Addr(uint64(line) << s.geom.LineShift())
	if s.l1.Contains(addr) || s.buffer.Contains(line) {
		return false
	}
	s.buffer.Insert(line, assist.Entry{Origin: assist.OriginPrefetch})
	return true
}

// Stats implements assist.System.
func (s *RPTSystem) Stats() assist.Stats {
	out := s.stats
	bs := s.buffer.Stats()
	out.PrefetchesUseful = bs.PrefetchesUseful
	out.PrefetchesWasted = bs.PrefetchesWasted
	return out
}
