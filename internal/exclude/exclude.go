// Package exclude implements the cache-exclusion architectures of Section
// 5.3: Johnson and Hwu's memory access table (MAT) and four Miss
// Classification Table alternatives (conflict, conflict-history, capacity,
// capacity-history). Excluded misses bypass the L1 into a 16-entry bypass
// buffer, where they remain until bumped.
//
// The paper's point is a cost/complexity one: the MAT must be read,
// incremented, and written by every load/store unit every cycle, while the
// MCT is touched only on misses — and the simple capacity filter still
// beats the MAT on both hit rate and performance.
package exclude

import (
	"fmt"

	"repro/internal/assist"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/mem"
)

// Mode selects the exclusion policy.
type Mode uint8

const (
	// ModeMAT is Johnson and Hwu's memory access table.
	ModeMAT Mode = iota
	// ModeConflict bypasses misses the MCT classifies as conflict.
	ModeConflict
	// ModeConflictHistory bypasses misses from regions with a history of
	// conflict misses.
	ModeConflictHistory
	// ModeCapacity bypasses misses the MCT classifies as capacity — the
	// paper's winner.
	ModeCapacity
	// ModeCapacityHistory bypasses misses from regions with a history of
	// capacity misses.
	ModeCapacityHistory
)

// String names the mode as the experiments label it.
func (m Mode) String() string {
	switch m {
	case ModeMAT:
		return "excl-mat"
	case ModeConflict:
		return "excl-conflict"
	case ModeConflictHistory:
		return "excl-conflict-hist"
	case ModeCapacity:
		return "excl-capacity"
	case ModeCapacityHistory:
		return "excl-capacity-hist"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Modes lists the Figure-5 policies in presentation order.
var Modes = []Mode{ModeMAT, ModeConflict, ModeConflictHistory, ModeCapacity, ModeCapacityHistory}

const (
	// regionShift is Johnson and Hwu's 1KB macroblock granularity.
	regionShift = 10
	// matEntries is the paper's 1K-entry direct-mapped MAT.
	matEntries = 1024
	// counterMax saturates the history-table region counters.
	counterMax = 63
	// matCounterMax saturates the MAT's per-macroblock access counters;
	// Johnson and Hwu's table stores narrow counters per 1KB block, so
	// hot/cold discrimination is coarse.
	matCounterMax = 15
	// DefaultEntries is the bypass buffer size: "we found [the Johnson
	// algorithm] to do poorly with an 8-entry buffer, which is why we use
	// the slightly larger structure here."
	DefaultEntries = 16
)

// matEntry is one tagged region counter.
type matEntry struct {
	tag   uint64
	count uint8
	valid bool
}

// histEntry tracks per-region miss-classification history for the history
// modes (the paper's "structure somewhat similar to the MAT").
type histEntry struct {
	tag      uint64
	conflict uint8
	capacity uint8
	valid    bool
}

// System is the cache-exclusion assist system.
type System struct {
	mode   Mode
	noSeed bool
	l1     *cache.Cache
	mct    *core.MCT
	buffer *assist.Buffer
	geom   mem.Geometry

	mat  []matEntry
	hist []histEntry

	stats assist.Stats
}

// New builds an exclusion system with an entries-deep bypass buffer
// (DefaultEntries reproduces the paper).
func New(cfg cache.Config, tagBits, entries int, mode Mode) (*System, error) {
	l1, err := cache.New(cfg)
	if err != nil {
		return nil, err
	}
	mct, err := core.New(core.Config{Sets: cfg.Sets(), TagBits: tagBits})
	if err != nil {
		return nil, err
	}
	if entries <= 0 {
		return nil, fmt.Errorf("exclude: buffer needs positive entries, got %d", entries)
	}
	s := &System{
		mode:   mode,
		l1:     l1,
		mct:    mct,
		buffer: assist.NewBuffer(entries),
		geom:   l1.Geometry(),
	}
	switch mode {
	case ModeMAT:
		s.mat = make([]matEntry, matEntries)
	case ModeConflictHistory, ModeCapacityHistory:
		s.hist = make([]histEntry, matEntries)
	}
	return s, nil
}

// MustNew is New that panics on error.
func MustNew(cfg cache.Config, tagBits, entries int, mode Mode) *System {
	s, err := New(cfg, tagBits, entries, mode)
	if err != nil {
		panic(err)
	}
	return s
}

// DisableSeeding turns off the Sec-5.3 MCT seeding of bypassed lines. It
// exists for the ablation benchmark that demonstrates why the paper needed
// the seeding rule: without it, a bypassed line can never later be
// classified as a conflict miss.
func (s *System) DisableSeeding() { s.noSeed = true }

// Name implements assist.System.
func (s *System) Name() string { return s.mode.String() }

// Buffer exposes the bypass buffer.
func (s *System) Buffer() *assist.Buffer { return s.buffer }

// L1 exposes the underlying cache.
func (s *System) L1() *cache.Cache { return s.l1 }

// region decomposes an address into the MAT's (index, tag).
func region(addr mem.Addr) (idx uint64, tag uint64) {
	r := uint64(addr) >> regionShift
	return r % matEntries, r / matEntries
}

// touchMAT performs the per-access MAT update: increment the region's
// saturating counter, with tag-conflict hysteresis (a mismatching region
// decays the resident counter and claims the entry when it reaches zero).
func (s *System) touchMAT(addr mem.Addr) {
	idx, tag := region(addr)
	e := &s.mat[idx]
	if !e.valid || e.tag != tag {
		if e.valid && e.count > 0 {
			e.count--
			return
		}
		*e = matEntry{tag: tag, count: 1, valid: true}
		return
	}
	if e.count < matCounterMax {
		e.count++
	}
}

// matCount reads the counter for addr's region (0 when another region owns
// the entry).
func (s *System) matCount(addr mem.Addr) uint8 {
	idx, tag := region(addr)
	e := s.mat[idx]
	if !e.valid || e.tag != tag {
		return 0
	}
	return e.count
}

// recordHistory notes a classified miss for addr's region.
func (s *System) recordHistory(addr mem.Addr, class core.Class) {
	idx, tag := region(addr)
	e := &s.hist[idx]
	if !e.valid || e.tag != tag {
		*e = histEntry{tag: tag, valid: true}
	}
	if class == core.Conflict {
		if e.conflict < counterMax {
			e.conflict++
		}
	} else if e.capacity < counterMax {
		e.capacity++
	}
}

// shouldExclude applies the mode's exclusion predicate to a classified
// miss.
func (s *System) shouldExclude(addr mem.Addr, class core.Class) bool {
	switch s.mode {
	case ModeMAT:
		// Exclude when the missing line's region is colder than the
		// region of the line it would displace.
		victim, full := s.l1.VictimCandidate(addr)
		if !full {
			return false
		}
		victimAddr := mem.Addr(uint64(victim.Addr) << s.geom.LineShift())
		return s.matCount(addr) < s.matCount(victimAddr)
	case ModeConflict:
		return class == core.Conflict
	case ModeCapacity:
		return class == core.Capacity
	case ModeConflictHistory:
		idx, tag := region(addr)
		e := s.hist[idx]
		return e.valid && e.tag == tag && e.conflict > e.capacity
	case ModeCapacityHistory:
		idx, tag := region(addr)
		e := s.hist[idx]
		return e.valid && e.tag == tag && e.capacity > e.conflict
	default:
		return false
	}
}

// Access implements assist.System.
func (s *System) Access(acc mem.Access) assist.Outcome {
	isStore := acc.Type == mem.Store
	s.stats.Accesses++
	if s.mode == ModeMAT {
		s.touchMAT(acc.Addr)
	}
	if s.l1.Access(acc.Addr, acc.Type) {
		s.stats.L1Hits++
		return assist.Outcome{L1Hit: true}
	}

	set := s.geom.Set(acc.Addr)
	tag := s.geom.Tag(acc.Addr)
	class := s.mct.ClassifyMiss(set, tag)
	if s.hist != nil {
		s.recordHistory(acc.Addr, class)
	}
	line := s.geom.Line(acc.Addr)

	if entry, ok := s.buffer.Hit(line, isStore); ok {
		// Excluded lines are served in place and remain in the buffer
		// until bumped (the paper's short-term spatial locality window).
		s.stats.BufferHits++
		s.stats.BufferHitsByOrigin[entry.Origin]++
		return assist.Outcome{Class: class, BufferHit: true}
	}

	s.stats.Misses++
	if class == core.Conflict {
		s.stats.ConflictMisses++
	} else {
		s.stats.CapacityMisses++
	}

	if s.shouldExclude(acc.Addr, class) {
		// Divert the line to the bypass buffer and seed the MCT with its
		// tag so a future miss on it can still classify as conflict (the
		// Sec 5.3 modification; without it no bypassed line could ever be
		// identified).
		s.stats.Bypasses++
		s.stats.BufferFills++
		if !s.noSeed {
			s.mct.Seed(set, tag)
		}
		dropped, wasFull := s.buffer.Insert(line, assist.Entry{
			Origin:   assist.OriginBypass,
			Dirty:    isStore,
			Conflict: class == core.Conflict,
		})
		return assist.Outcome{
			Class:      class,
			BufferFill: true,
			Writeback:  wasFull && dropped.Entry.Dirty,
		}
	}

	ev := assist.FillWithMCT(s.l1, s.mct, acc.Addr, isStore, class)
	return assist.Outcome{Class: class, CacheFill: true, Writeback: ev.Occurred && ev.Dirty}
}

// Contains implements assist.System.
func (s *System) Contains(addr mem.Addr) (inL1, inBuffer bool) {
	return s.l1.Contains(addr), s.buffer.Contains(s.geom.Line(addr))
}

// PrefetchArrived implements assist.System; exclusion never prefetches.
func (s *System) PrefetchArrived(mem.LineAddr) bool { return false }

// Stats implements assist.System.
func (s *System) Stats() assist.Stats { return s.stats }
