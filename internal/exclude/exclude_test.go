package exclude

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/mem"
)

func dmConfig() cache.Config {
	return cache.Config{Name: "t", Size: 16 * 1024, LineSize: 64, Assoc: 1}
}

func load(a mem.Addr) mem.Access  { return mem.Access{Addr: a, Type: mem.Load} }
func store(a mem.Addr) mem.Access { return mem.Access{Addr: a, Type: mem.Store} }

func TestModeNames(t *testing.T) {
	want := map[Mode]string{
		ModeMAT:             "excl-mat",
		ModeConflict:        "excl-conflict",
		ModeConflictHistory: "excl-conflict-hist",
		ModeCapacity:        "excl-capacity",
		ModeCapacityHistory: "excl-capacity-hist",
	}
	for m, n := range want {
		if m.String() != n {
			t.Errorf("%d.String() = %q", m, m.String())
		}
	}
	if Mode(99).String() == "" {
		t.Error("unknown mode should render")
	}
	if len(Modes) != 5 {
		t.Errorf("Modes has %d entries", len(Modes))
	}
}

func TestCapacityModeBypassesAndSeeds(t *testing.T) {
	s := MustNew(dmConfig(), 0, 16, ModeCapacity)
	a := mem.Addr(0x0000)
	// Fill the set first so the miss has a victim (exclusion is about
	// protecting resident lines).
	s.Access(load(mem.Addr(0x8000))) // same set as a (0x8000 % 16KB = 0x... set 0? 0x8000>>6 & 255 = 0x200&255=0... wait)
	out := s.Access(load(a))
	if out.Class != core.Capacity {
		t.Fatalf("cold miss class = %v", out.Class)
	}
	if !out.BufferFill || out.CacheFill {
		t.Fatalf("capacity miss should bypass: %+v", out)
	}
	if inL1, inBuf := s.Contains(a); inL1 || !inBuf {
		t.Error("bypassed line should be in the buffer only")
	}
	if s.Stats().Bypasses == 0 {
		t.Error("bypass not counted")
	}
	if s.Stats().Misses == 0 {
		t.Fatal("no misses recorded")
	}
}

func TestBypassedLineServedInPlace(t *testing.T) {
	s := MustNew(dmConfig(), 0, 16, ModeCapacity)
	a := mem.Addr(0x1000)
	s.Access(load(a)) // bypassed into the buffer
	out := s.Access(load(a))
	if !out.BufferHit {
		t.Fatalf("bypassed line should hit in the buffer: %+v", out)
	}
	if inL1, inBuf := s.Contains(a); inL1 || !inBuf {
		t.Error("excluded lines remain in the buffer until bumped")
	}
}

func TestConflictModeProtectsCapacityPath(t *testing.T) {
	s := MustNew(dmConfig(), 0, 16, ModeConflict)
	a, b := mem.Addr(0x0000), mem.Addr(0x4000)
	// Warm-up: both capacity -> normal fills.
	out := s.Access(load(a))
	if out.BufferFill || !out.CacheFill {
		t.Fatalf("capacity miss under conflict-exclusion should fill normally: %+v", out)
	}
	s.Access(load(b))
	// Now a's re-miss is conflict-classified -> excluded into the buffer.
	out = s.Access(load(a))
	if out.Class != core.Conflict || !out.BufferFill || out.CacheFill {
		t.Fatalf("conflict miss should bypass: %+v", out)
	}
	// b stays resident: the ping-pong is broken.
	if inL1, _ := s.Contains(b); !inL1 {
		t.Error("conflict exclusion should protect the resident line")
	}
}

func TestMATExcludesColdOverHot(t *testing.T) {
	s := MustNew(dmConfig(), 0, 16, ModeMAT)
	hot := mem.Addr(0x0000)
	cold := mem.Addr(0x4000) // aliases hot's set
	// Drive the hot line's region counter up with many accesses.
	for i := 0; i < 40; i++ {
		s.Access(load(hot))
	}
	out := s.Access(load(cold))
	if !out.BufferFill || out.CacheFill {
		t.Fatalf("cold region should be excluded when displacing a hot region: %+v", out)
	}
	if inL1, _ := s.Contains(hot); !inL1 {
		t.Error("hot line must survive")
	}
	// Reverse: a cold victim does not trigger exclusion (equal counts
	// cache normally).
	s2 := MustNew(dmConfig(), 0, 16, ModeMAT)
	s2.Access(load(hot))
	out = s2.Access(load(cold))
	if out.BufferFill {
		t.Errorf("equal-coldness miss should fill normally: %+v", out)
	}
}

func TestHistoryModesLearnRegions(t *testing.T) {
	s := MustNew(dmConfig(), 0, 16, ModeCapacityHistory)
	// A sweeping region builds a capacity-miss history; later misses from
	// the same region get excluded.
	sawBypass := false
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < 512; i++ {
			out := s.Access(load(mem.Addr(i * 64)))
			sawBypass = sawBypass || out.BufferFill
		}
	}
	if !sawBypass {
		t.Error("capacity-history mode never excluded a sweeping region")
	}
	if s.Stats().Bypasses == 0 {
		t.Error("bypasses not counted")
	}
}

func TestConflictHistoryMode(t *testing.T) {
	s := MustNew(dmConfig(), 0, 16, ModeConflictHistory)
	a, b := mem.Addr(0x0000), mem.Addr(0x4000)
	sawBypass := false
	for i := 0; i < 20; i++ {
		oa := s.Access(load(a))
		ob := s.Access(load(b))
		sawBypass = sawBypass || oa.BufferFill || ob.BufferFill
	}
	if !sawBypass {
		t.Error("conflict-history mode never excluded the ping-pong regions")
	}
}

func TestDirtyBypassDropWritesBack(t *testing.T) {
	s := MustNew(dmConfig(), 0, 2, ModeCapacity) // tiny buffer to force drops
	s.Access(store(0x1000))
	s.Access(load(0x2000))
	out := s.Access(load(0x3000)) // drops the dirty 0x1000 entry
	if !out.Writeback {
		t.Error("dropping a dirty bypass entry must write back")
	}
}

func TestMATCounterSaturation(t *testing.T) {
	s := MustNew(dmConfig(), 0, 16, ModeMAT)
	for i := 0; i < 1000; i++ {
		s.touchMAT(0x1000)
	}
	if got := s.matCount(0x1000); got != matCounterMax {
		t.Errorf("saturated count = %d, want %d", got, matCounterMax)
	}
	// Tag conflict: a different region at the same index decays and
	// eventually claims the entry.
	alias := mem.Addr(0x1000 + matEntries<<regionShift)
	for i := 0; i < int(matCounterMax)+2; i++ {
		s.touchMAT(alias)
	}
	if got := s.matCount(alias); got == 0 {
		t.Error("aliasing region never claimed the MAT entry")
	}
	if got := s.matCount(0x1000); got != 0 {
		t.Errorf("displaced region still reports count %d", got)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(dmConfig(), 0, 0, ModeMAT); err == nil {
		t.Error("zero entries accepted")
	}
	if _, err := New(cache.Config{Size: 5}, 0, 16, ModeMAT); err == nil {
		t.Error("bad cache accepted")
	}
	if _, err := New(dmConfig(), -1, 16, ModeMAT); err == nil {
		t.Error("bad tag bits accepted")
	}
}

func TestSeedEnablesLaterConflictClassification(t *testing.T) {
	// End-to-end check of the Sec 5.3 subtlety: bypass a line with a tiny
	// buffer, bump it out, then miss on it again — the seeded MCT entry
	// classifies the re-miss as conflict (which the capacity filter then
	// routes into the cache).
	s := MustNew(dmConfig(), 0, 1, ModeCapacity)
	a := mem.Addr(0x0000)
	s.Access(load(a))        // bypassed, seeded
	s.Access(load(0x100040)) // different set; bumps a out of the 1-entry buffer
	out := s.Access(load(a))
	if out.Class != core.Conflict {
		t.Fatalf("re-miss after bypass classified %v; seeding broken", out.Class)
	}
	if !out.CacheFill {
		t.Error("conflict-classified miss under capacity exclusion should fill the cache")
	}
}
