package mrc_test

import (
	"fmt"
	"math"
	"os"
	"testing"

	"repro/internal/mem"
	"repro/internal/mrc"
	"repro/internal/perf"
	"repro/internal/trace"
	"repro/internal/workload"
)

const lineSize = 64

// sizeLadder is the capacity ladder (in cache lines) the differential
// tests evaluate MRCs at: 4KB through 512KB of 64-byte lines.
var sizeLadder = []uint64{64, 128, 256, 512, 1024, 2048, 4096, 8192}

// collectAddrs renders the first n memory-access addresses of a named
// workload.
func collectAddrs(tb testing.TB, name string, n int) []mem.Addr {
	tb.Helper()
	b, ok := workload.ByName(name)
	if !ok {
		tb.Fatalf("unknown workload %q", name)
	}
	s := trace.NewMemOnly(b.Stream(workload.DefaultSeed))
	addrs := make([]mem.Addr, 0, n)
	var in trace.Instr
	for len(addrs) < n && s.Next(&in) {
		addrs = append(addrs, in.Addr)
	}
	if len(addrs) < n {
		tb.Fatalf("workload %q yielded only %d of %d accesses", name, len(addrs), n)
	}
	return addrs
}

// exactDistances computes the exact LRU stack distance of every access
// with the textbook O(N·D) recency stack — deliberately nothing like the
// profiler's Fenwick machinery, so the two implementations can only
// agree by being correct. Cold (first-touch) accesses report MaxUint64.
func exactDistances(addrs []mem.Addr) []uint64 {
	var stack []mem.LineAddr // most recent first
	out := make([]uint64, len(addrs))
	for i, a := range addrs {
		line := mem.LineAddr(uint64(a) / lineSize)
		idx := -1
		for j, l := range stack {
			if l == line {
				idx = j
				break
			}
		}
		if idx < 0 {
			out[i] = math.MaxUint64
			stack = append(stack, 0)
			copy(stack[1:], stack)
		} else {
			out[i] = uint64(idx)
			copy(stack[1:idx+1], stack[:idx])
		}
		stack[0] = line
	}
	return out
}

// exactMissRatio evaluates the exact MRC at a capacity: an access misses
// a C-line LRU cache iff its stack distance is >= C (cold included).
func exactMissRatio(dists []uint64, lines uint64) float64 {
	miss := 0
	for _, d := range dists {
		if d >= lines {
			miss++
		}
	}
	return float64(miss) / float64(len(dists))
}

func feed(p *mrc.Profiler, addrs []mem.Addr) {
	for i := 0; i < len(addrs); i += 256 {
		end := min(i+256, len(addrs))
		p.ObserveBatch(addrs[i:end])
	}
}

// TestProfilerMatchesExactReference pins the unsampled profiler (rate 1,
// unbounded set) to the naive exact stack-distance reference pointwise:
// the only divergence allowed is the log-bucket binning of distances
// above 256, bounded well under one miss-ratio percent.
func TestProfilerMatchesExactReference(t *testing.T) {
	for _, name := range []string{"swim", "compress", "gcc"} {
		t.Run(name, func(t *testing.T) {
			addrs := collectAddrs(t, name, 20_000)
			dists := exactDistances(addrs)
			p := mrc.New(mrc.Config{Rate: 1, MaxSampled: -1, LineSize: lineSize})
			feed(p, addrs)

			st := p.Stats()
			if st.Refs != uint64(len(addrs)) || st.Sampled != uint64(len(addrs)) {
				t.Fatalf("rate-1 profiler sampled %d/%d of %d refs", st.Sampled, st.Refs, len(addrs))
			}
			for _, lines := range sizeLadder {
				want := exactMissRatio(dists, lines)
				got := p.MissRatio(lines)
				if math.Abs(got-want) > 0.005 {
					t.Errorf("%s @ %d lines: profiler %.4f, exact %.4f (Δ %.4f)",
						name, lines, got, want, math.Abs(got-want))
				}
			}
		})
	}
}

// TestSampledErrorBounds is the SHARDS differential: sampled estimates
// across workloads × rates against the exact (rate-1) curve over a much
// longer stream than the naive reference can afford, with asserted
// mean-absolute-error bounds per rate. The 0.01-rate bound is the
// acceptance criterion for the whole subsystem.
func TestSampledErrorBounds(t *testing.T) {
	cases := []struct {
		rate     float64
		maxMAE   float64
		maxPoint float64
	}{
		{rate: 0.1, maxMAE: 0.02, maxPoint: 0.05},
		{rate: 0.01, maxMAE: 0.05, maxPoint: 0.10},
	}
	for _, name := range []string{"swim", "compress", "gcc", "li"} {
		addrs := collectAddrs(t, name, 300_000)
		exact := mrc.New(mrc.Config{Rate: 1, MaxSampled: -1, LineSize: lineSize})
		feed(exact, addrs)
		for _, tc := range cases {
			t.Run(fmt.Sprintf("%s/rate=%g", name, tc.rate), func(t *testing.T) {
				p := mrc.New(mrc.Config{Rate: tc.rate, LineSize: lineSize})
				feed(p, addrs)

				st := p.Stats()
				expSampled := tc.rate * float64(len(addrs))
				if float64(st.Sampled) < expSampled/4 || float64(st.Sampled) > expSampled*4 {
					t.Errorf("sampled %d refs, expected about %.0f", st.Sampled, expSampled)
				}
				var sum, worst float64
				for _, lines := range sizeLadder {
					d := math.Abs(p.MissRatio(lines) - exact.MissRatio(lines))
					sum += d
					if d > worst {
						worst = d
					}
				}
				mae := sum / float64(len(sizeLadder))
				t.Logf("%s rate %g: MAE %.4f worst %.4f (sampled %d, set %d)",
					name, tc.rate, mae, worst, st.Sampled, st.SampledSet)
				if mae > tc.maxMAE {
					t.Errorf("MAE %.4f exceeds bound %.4f", mae, tc.maxMAE)
				}
				if worst > tc.maxPoint {
					t.Errorf("worst pointwise error %.4f exceeds bound %.4f", worst, tc.maxPoint)
				}
			})
		}
	}
}

// TestCurveMonotone checks the structural property the service's smoke
// gate also asserts end to end: a miss-ratio curve is non-increasing in
// capacity, at every sampling rate, including dense ladders that land
// inside pro-rated buckets.
func TestCurveMonotone(t *testing.T) {
	dense := make([]uint64, 0, 200)
	for l := uint64(1); l <= 20_000; l = l + 1 + l/8 {
		dense = append(dense, l)
	}
	for _, name := range []string{"swim", "gcc"} {
		addrs := collectAddrs(t, name, 100_000)
		for _, rate := range []float64{1, 0.1, 0.01} {
			cfg := mrc.Config{Rate: rate, LineSize: lineSize}
			if rate == 1 {
				cfg.MaxSampled = -1
			}
			p := mrc.New(cfg)
			feed(p, addrs)
			pts := p.Curve(dense)
			for i := 1; i < len(pts); i++ {
				if pts[i].MissRatio > pts[i-1].MissRatio+1e-12 {
					t.Fatalf("%s rate %g: MRC not monotone: %.6f @ %d lines > %.6f @ %d lines",
						name, rate, pts[i].MissRatio, pts[i].Lines, pts[i-1].MissRatio, pts[i-1].Lines)
				}
			}
			if p.MissRatio(0) != 1 {
				t.Fatalf("MissRatio(0) = %v, want 1", p.MissRatio(0))
			}
		}
	}
}

// TestRateAdaptation forces threshold halving with a tiny set cap and
// checks the SHARDS invariants: the tracked set stays bounded, the rate
// only decreases, evictions are counted, and the estimate stays usable.
func TestRateAdaptation(t *testing.T) {
	addrs := collectAddrs(t, "gcc", 150_000)
	exact := mrc.New(mrc.Config{Rate: 1, MaxSampled: -1, LineSize: lineSize})
	feed(exact, addrs)

	const cap = 256
	p := mrc.New(mrc.Config{Rate: 1, MaxSampled: cap, LineSize: lineSize})
	feed(p, addrs)

	st := p.Stats()
	if st.SampledSet > cap {
		t.Fatalf("sampled set %d exceeds cap %d", st.SampledSet, cap)
	}
	if st.RateFinal >= st.RateInitial {
		t.Fatalf("rate never adapted: initial %g final %g", st.RateInitial, st.RateFinal)
	}
	if st.Evicted == 0 {
		t.Fatalf("adaptation evicted nothing")
	}
	var sum float64
	for _, lines := range sizeLadder {
		sum += math.Abs(p.MissRatio(lines) - exact.MissRatio(lines))
	}
	if mae := sum / float64(len(sizeLadder)); mae > 0.10 {
		t.Errorf("adapted-profile MAE %.4f too large (final rate %g, set %d)", mae, st.RateFinal, st.SampledSet)
	}
}

// TestObserveBatchAllocs pins the per-batch sampling hot path at zero
// steady-state allocations: after warmup (table populated, one rebuild
// exercised so the staging scratch exists) a batch costs hashes, map
// probes, and Fenwick updates — nothing on the heap.
func TestObserveBatchAllocs(t *testing.T) {
	addrs := collectAddrs(t, "swim", 40_000)
	p := mrc.New(mrc.Config{Rate: 1, LineSize: lineSize}) // default cap: adaptation exercised too
	feed(p, addrs)                                        // 40k sampled refs: past the first rebuild
	batch := addrs[:256]
	allocs := testing.AllocsPerRun(50, func() { p.ObserveBatch(batch) })
	if allocs != 0 {
		t.Fatalf("ObserveBatch allocated %.1f times per batch; want 0", allocs)
	}
}

// TestMRCThroughputBench is the env-gated BENCH writer: profiler
// throughput at the production sampling rate and in exact mode, written
// to MCT_BENCH_MRC_OUT (BENCH_pr10.json via make bench-mrc). It
// measures; it does not gate.
func TestMRCThroughputBench(t *testing.T) {
	if os.Getenv("MCT_BENCH_MRC") == "" {
		t.Skip("set MCT_BENCH_MRC=1 to run the MRC throughput benchmark")
	}
	addrs := collectAddrs(t, "swim", 1_000_000)
	measure := func(name string, rate float64, maxSampled int) perf.Result {
		br := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			p := mrc.New(mrc.Config{Rate: rate, MaxSampled: maxSampled, LineSize: lineSize})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for off := 0; off < len(addrs); off += 4096 {
					p.ObserveBatch(addrs[off:min(off+4096, len(addrs))])
				}
			}
		})
		res := perf.ResultOf(name, br, len(addrs))
		res.Metrics = map[string]float64{"refs_per_sec": res.OpsPerSec, "sampling_rate": rate}
		return res
	}
	report := perf.NewReport([]perf.Result{
		measure("mrc.observe.sampled", 0.01, 0),
		measure("mrc.observe.exact", 1, -1),
	})
	out := os.Getenv("MCT_BENCH_MRC_OUT")
	if out == "" {
		out = "BENCH_pr10.json"
	}
	if err := report.WriteJSON(out); err != nil {
		t.Fatalf("writing %s: %v", out, err)
	}
	t.Log("\n" + report.Table().String())
}
