// Package mrc builds miss-ratio curves from access streams by SHARDS-style
// spatial sampling (Waldspurger et al., and the MRC-construction survey in
// PAPERS.md): a reference is sampled iff a fixed hash of its line address
// falls under a threshold, so every reference to a given line is either
// always sampled or never sampled — exactly the property reuse-distance
// measurement needs. Sampled references feed a Mattson stack-distance
// computation over *sampled time* (a Fenwick tree over last-access
// timestamps), and each measured distance is scaled by the inverse
// sampling rate to estimate the full-trace distance.
//
// Rate adaptation bounds memory: when the tracked line set exceeds the
// configured cap, the hash threshold halves and every tracked line whose
// hash now falls above it is evicted. An evicted line can never re-enter
// (its hash is fixed), so eviction introduces no false cold misses.
//
// With Rate = 1 and an unbounded set the profiler degrades to the exact
// Mattson computation, which is what the differential tests (and the
// `mrc` experiment) compare the sampled estimates against.
package mrc

import (
	"math"
	"math/bits"
	"slices"

	"repro/internal/mem"
)

// Distance-histogram geometry: distances below 1<<distSubBits are binned
// exactly; above that, each power-of-two octave splits into 1<<distSubBits
// log-spaced sub-buckets, so the relative distance error from binning is
// at most 2^-distSubBits (~0.4%). The whole histogram is a flat float64
// array — ~114 KiB per profiler — indexed by bucketOf.
const (
	distSubBits  = 8
	distSubCount = 1 << distSubBits
	numBuckets   = (64 - distSubBits + 1) << distSubBits
)

// bucketOf maps a reuse distance to its histogram bucket.
func bucketOf(d uint64) int {
	if d < distSubCount {
		return int(d)
	}
	k := bits.Len64(d) - 1 // floor(log2 d), >= distSubBits
	return int(uint64(k-distSubBits+1)<<distSubBits | (d>>uint(k-distSubBits))&(distSubCount-1))
}

// bucketBounds returns the half-open distance interval [lo, hi) bucket
// idx covers — the inverse of bucketOf.
func bucketBounds(idx int) (lo, hi uint64) {
	if idx < distSubCount {
		return uint64(idx), uint64(idx) + 1
	}
	octave := uint(idx >> distSubBits) // >= 1
	sub := uint64(idx & (distSubCount - 1))
	lo = (distSubCount + sub) << (octave - 1)
	return lo, lo + 1<<(octave-1)
}

// Config shapes a Profiler. The zero value is usable.
type Config struct {
	// Rate is the initial spatial sampling rate in (0, 1]; 0 defaults to
	// 0.01 (SHARDS' fixed-rate sweet spot). Rate 1 samples everything.
	Rate float64
	// MaxSampled caps the tracked line set: exceeding it halves the
	// sampling rate and evicts the lines the new threshold rejects.
	// 0 defaults to 8192 (SHARDS' s_max); negative means unbounded
	// (exact mode — memory grows with the working set).
	MaxSampled int
	// LineSize is the cache line size in bytes used to fold byte
	// addresses to lines (0 defaults to 64; must be a power of two).
	LineSize int
}

// DefaultRate and DefaultMaxSampled are the Config defaults.
const (
	DefaultRate       = 0.01
	DefaultMaxSampled = 8192
)

// Stats is a snapshot of a profiler's accounting.
type Stats struct {
	// Refs counts every reference observed; Sampled the ones that passed
	// the hash filter and fed the distance machinery.
	Refs    uint64
	Sampled uint64
	// SampledSet is the current tracked-line count; Evicted how many
	// lines rate adaptation dropped.
	SampledSet int
	Evicted    uint64
	// RateInitial and RateFinal bracket rate adaptation (equal when the
	// set never hit its cap).
	RateInitial float64
	RateFinal   float64
	// ColdWeight is the estimated cold (first-touch) reference count;
	// TotalWeight the estimated total — the miss-ratio denominator.
	ColdWeight  float64
	TotalWeight float64
}

// Profiler accumulates one access stream's sampled reuse-distance
// profile. Not safe for concurrent use.
type Profiler struct {
	lineShift uint
	threshold uint64  // sample iff splitmix64(line) <= threshold
	invRate   float64 // 1 / current sampling rate
	initRate  float64
	maxSet    int // <= 0: unbounded

	table map[mem.LineAddr]uint64 // line -> last sampled-time (1-based)
	bit   []int32                 // Fenwick tree over sampled time, 1-based
	tick  uint64                  // last assigned sampled-time
	cap   uint64                  // bit capacity (time slots)

	hist  []float64 // weighted estimated-distance histogram
	coldW float64
	totW  float64

	refs, sampled, evicted uint64

	scratch []tableEntry // rebuild staging, reused
}

type tableEntry struct {
	line mem.LineAddr
	t    uint64
}

const initialTimeCap = 1 << 15

// New builds a profiler. Panics on an invalid Config (a config is
// programmer input, not request input — callers validate user-facing
// parameters before they get here).
func New(cfg Config) *Profiler {
	if cfg.Rate == 0 {
		cfg.Rate = DefaultRate
	}
	if cfg.Rate < 0 || cfg.Rate > 1 || math.IsNaN(cfg.Rate) {
		panic("mrc: sampling rate must be in (0, 1]")
	}
	if cfg.MaxSampled == 0 {
		cfg.MaxSampled = DefaultMaxSampled
	}
	if cfg.LineSize == 0 {
		cfg.LineSize = 64
	}
	if cfg.LineSize < 0 || cfg.LineSize&(cfg.LineSize-1) != 0 {
		panic("mrc: line size must be a positive power of two")
	}
	p := &Profiler{
		lineShift: uint(bits.TrailingZeros(uint(cfg.LineSize))),
		threshold: thresholdFor(cfg.Rate),
		maxSet:    cfg.MaxSampled,
		table:     make(map[mem.LineAddr]uint64),
		bit:       make([]int32, initialTimeCap+1),
		cap:       initialTimeCap,
		hist:      make([]float64, numBuckets),
	}
	p.initRate = rateOf(p.threshold)
	p.invRate = 1 / p.initRate
	return p
}

// thresholdFor converts a sampling rate to the inclusive hash threshold:
// sample iff hash <= threshold, so (threshold+1)/2^64 == rate.
func thresholdFor(rate float64) uint64 {
	if rate >= 1 {
		return math.MaxUint64
	}
	f := math.Ldexp(rate, 64)
	if f >= math.MaxUint64 {
		return math.MaxUint64
	}
	t := uint64(f)
	if t == 0 {
		return 0 // minimum: exactly one hash value samples
	}
	return t - 1
}

// rateOf is thresholdFor's inverse (exact 1.0 at the saturated threshold).
func rateOf(threshold uint64) float64 {
	if threshold == math.MaxUint64 {
		return 1
	}
	return math.Ldexp(float64(threshold)+1, -64)
}

// splitmix64 is the spatial-sampling hash: cheap, well-mixed, and fixed
// forever for a given line — the SHARDS invariant.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Observe records one byte-address reference.
func (p *Profiler) Observe(a mem.Addr) {
	p.observeLine(mem.LineAddr(uint64(a) >> p.lineShift))
}

// ObserveBatch records a block of byte-address references in order — the
// hot path the service feeds straight from trace batches. Steady state
// allocates nothing (the AllocsPerRun regression pins this): unsampled
// references cost one hash and one compare, and sampled ones reuse the
// tracked-set map slots and the fixed Fenwick array.
func (p *Profiler) ObserveBatch(addrs []mem.Addr) {
	for _, a := range addrs {
		p.observeLine(mem.LineAddr(uint64(a) >> p.lineShift))
	}
}

// ObserveLines is ObserveBatch for callers that already fold to lines.
func (p *Profiler) ObserveLines(lines []mem.LineAddr) {
	for _, l := range lines {
		p.observeLine(l)
	}
}

func (p *Profiler) observeLine(line mem.LineAddr) {
	p.refs++
	if splitmix64(uint64(line)) > p.threshold {
		return
	}
	p.sampled++
	if p.tick+1 > p.cap {
		p.rebuild()
	}
	w := p.invRate
	if last, ok := p.table[line]; ok {
		// Sampled reuse distance: tracked lines touched since this line's
		// previous access, i.e. live timestamps above last. The line's own
		// bit sits at last, so it is excluded by construction.
		ds := uint64(len(p.table)) - uint64(p.bitPrefix(last))
		est := uint64(float64(ds)*p.invRate + 0.5)
		p.hist[bucketOf(est)] += w
		p.bitAdd(last, -1)
	} else {
		p.coldW += w
	}
	p.tick++
	p.bitAdd(p.tick, 1)
	p.table[line] = p.tick
	p.totW += w
	if p.maxSet > 0 && len(p.table) > p.maxSet {
		p.adapt()
	}
}

// adapt halves the sampling rate until the tracked set fits, evicting
// every line the new threshold rejects. Weights already recorded at the
// old rate stand (the standard SHARDS approximation); only future
// references see the new rate.
func (p *Profiler) adapt() {
	for len(p.table) > p.maxSet && p.threshold > 0 {
		p.threshold /= 2
		p.invRate = 1 / rateOf(p.threshold)
		for line, t := range p.table {
			if splitmix64(uint64(line)) > p.threshold {
				p.bitAdd(t, -1)
				delete(p.table, line)
				p.evicted++
			}
		}
	}
}

// rebuild renumbers the tracked lines' timestamps to 1..n in order,
// growing the Fenwick array only when more than half its slots are live.
// Amortized cheap: each rebuild buys at least cap/2 sampled references
// of headroom.
func (p *Profiler) rebuild() {
	if cap(p.scratch) < len(p.table) {
		p.scratch = make([]tableEntry, 0, len(p.table)*2)
	}
	entries := p.scratch[:0]
	for line, t := range p.table {
		entries = append(entries, tableEntry{line: line, t: t})
	}
	slices.SortFunc(entries, func(a, b tableEntry) int {
		// Timestamps are unique, so this is a strict total order.
		if a.t < b.t {
			return -1
		}
		return 1
	})
	newCap := p.cap
	for uint64(len(entries))*2 > newCap {
		newCap *= 2
	}
	if newCap == p.cap {
		clear(p.bit)
	} else {
		p.bit = make([]int32, newCap+1)
		p.cap = newCap
	}
	p.tick = 0
	for _, e := range entries {
		p.tick++
		p.table[e.line] = p.tick
		p.bitAdd(p.tick, 1)
	}
	p.scratch = entries[:0]
}

func (p *Profiler) bitAdd(i uint64, delta int32) {
	for ; i <= p.cap; i += i & (^i + 1) {
		p.bit[i] += delta
	}
}

func (p *Profiler) bitPrefix(i uint64) int32 {
	var s int32
	for ; i > 0; i -= i & (^i + 1) {
		s += p.bit[i]
	}
	return s
}

// MissRatio estimates the miss ratio of a fully-associative LRU cache
// holding `lines` cache lines: the estimated weight of references whose
// reuse distance is at least `lines` (they would have been evicted),
// plus all cold references, over the estimated total. A bucket
// straddling the capacity is pro-rated linearly, which keeps the curve
// continuous and — together with the suffix-sum structure — monotone
// non-increasing in `lines` by construction.
func (p *Profiler) MissRatio(lines uint64) float64 {
	if p.totW == 0 {
		return 0
	}
	if lines == 0 {
		return 1
	}
	missW := p.coldW
	for idx, w := range p.hist {
		if w == 0 {
			continue
		}
		lo, hi := bucketBounds(idx)
		switch {
		case lo >= lines:
			missW += w
		case hi <= lines:
			// distance < capacity: hit
		default:
			missW += w * float64(hi-lines) / float64(hi-lo)
		}
	}
	r := missW / p.totW
	if r < 0 {
		return 0
	}
	if r > 1 {
		return 1
	}
	return r
}

// Point is one miss-ratio-curve sample.
type Point struct {
	Lines     uint64
	MissRatio float64
}

// Curve evaluates the MRC at each requested capacity (in lines),
// in the order given.
func (p *Profiler) Curve(lineCounts []uint64) []Point {
	out := make([]Point, len(lineCounts))
	for i, n := range lineCounts {
		out[i] = Point{Lines: n, MissRatio: p.MissRatio(n)}
	}
	return out
}

// Stats snapshots the profiler's accounting.
func (p *Profiler) Stats() Stats {
	return Stats{
		Refs:        p.refs,
		Sampled:     p.sampled,
		SampledSet:  len(p.table),
		Evicted:     p.evicted,
		RateInitial: p.initRate,
		RateFinal:   rateOf(p.threshold),
		ColdWeight:  p.coldW,
		TotalWeight: p.totW,
	}
}

// SampledRefs returns the running count of hash-passing references —
// the unit the service's per-tenant quota accounting charges.
func (p *Profiler) SampledRefs() uint64 { return p.sampled }
