package assist_test

// Cross-system property tests: invariants that must hold for every
// assist.System implementation over arbitrary access streams.

import (
	"testing"
	"testing/quick"

	"repro/internal/amb"
	"repro/internal/assist"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/exclude"
	"repro/internal/mem"
	"repro/internal/prefetch"
	"repro/internal/pseudo"
	"repro/internal/victim"
)

func dmConfig() cache.Config {
	return cache.Config{Name: "t", Size: 4 * 1024, LineSize: 64, Assoc: 1}
}

// systems returns one fresh instance of every System implementation.
func systems() map[string]assist.System {
	cfg := dmConfig()
	return map[string]assist.System{
		"baseline":  assist.MustNewBaseline(cfg, 0),
		"vc-trad":   victim.MustNew(cfg, 0, 4, victim.Traditional),
		"vc-both":   victim.MustNew(cfg, 0, 4, victim.FilterBothPolicy),
		"pf-all":    prefetch.MustNew(cfg, 0, 4, prefetch.Policy{PrefetchOnBufferHit: true}),
		"pf-or":     prefetch.MustNew(cfg, 0, 4, prefetch.Policy{Filter: core.OrConflict}),
		"rpt":       prefetch.MustNewRPT(cfg, 0, 4, 64),
		"excl-cap":  exclude.MustNew(cfg, 0, 4, exclude.ModeCapacity),
		"excl-mat":  exclude.MustNew(cfg, 0, 4, exclude.ModeMAT),
		"pseudo":    pseudo.MustNew(cfg, 0, true),
		"amb-vpe":   amb.MustNew(cfg, 0, 4, amb.VicPreExc),
		"amb-vpref": amb.MustNew(cfg, 0, 4, amb.VictPref),
	}
}

// addrFrom maps raw fuzz bytes into a small address space with aliasing.
func addrFrom(v uint16) mem.Addr {
	return mem.Addr(uint64(v%2048) * 64)
}

// TestAccountingInvariants drives random streams through every system and
// checks the counters always reconcile: hits+misses == accesses, miss
// classes partition misses, and Contains agrees with a repeat access.
func TestAccountingInvariants(t *testing.T) {
	f := func(raw []uint16) bool {
		for name, sys := range systems() {
			for i, v := range raw {
				acc := mem.Access{Addr: addrFrom(v), PC: mem.Addr(0x400 + v%64*4), Type: mem.Load}
				if i%5 == 0 {
					acc.Type = mem.Store
				}
				out := sys.Access(acc)
				for _, pf := range out.Prefetches {
					sys.PrefetchArrived(pf)
				}
				// Exactly one disposition per access.
				dispositions := 0
				if out.L1Hit {
					dispositions++
				}
				if out.SecondaryHit {
					dispositions++
				}
				if out.BufferHit {
					dispositions++
				}
				if out.Miss() {
					dispositions++
				}
				if dispositions != 1 {
					t.Errorf("%s: outcome %+v has %d dispositions", name, out, dispositions)
					return false
				}
			}
			st := sys.Stats()
			if st.L1Hits+st.SecondaryHits+st.BufferHits+st.Misses != st.Accesses {
				t.Errorf("%s: hits+misses != accesses: %+v", name, st)
				return false
			}
			if st.ConflictMisses+st.CapacityMisses != st.Misses {
				t.Errorf("%s: classification does not partition misses: %+v", name, st)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestContainsImpliesHit: if Contains reports the line present, a demand
// access to it must not go to the L2.
func TestContainsImpliesHit(t *testing.T) {
	f := func(raw []uint16, probe uint16) bool {
		for name, sys := range systems() {
			for _, v := range raw {
				out := sys.Access(mem.Access{Addr: addrFrom(v), Type: mem.Load})
				for _, pf := range out.Prefetches {
					sys.PrefetchArrived(pf)
				}
			}
			a := addrFrom(probe)
			inL1, inBuf := sys.Contains(a)
			if inL1 || inBuf {
				out := sys.Access(mem.Access{Addr: a, Type: mem.Load})
				if out.Miss() {
					t.Errorf("%s: Contains(%#x)=(%v,%v) but access missed", name, a, inL1, inBuf)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestRepeatAccessHits: immediately re-accessing any address must hit
// somewhere (L1, secondary, or buffer) in every system.
func TestRepeatAccessHits(t *testing.T) {
	f := func(raw []uint16) bool {
		for name, sys := range systems() {
			for _, v := range raw {
				a := addrFrom(v)
				out := sys.Access(mem.Access{Addr: a, Type: mem.Load})
				for _, pf := range out.Prefetches {
					sys.PrefetchArrived(pf)
				}
				out = sys.Access(mem.Access{Addr: a, Type: mem.Load})
				if out.Miss() {
					t.Errorf("%s: immediate repeat of %#x missed", name, a)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestDeterministicSystems: identical streams produce identical stats.
func TestDeterministicSystems(t *testing.T) {
	stream := make([]mem.Access, 500)
	for i := range stream {
		ty := mem.Load
		if i%7 == 0 {
			ty = mem.Store
		}
		stream[i] = mem.Access{Addr: addrFrom(uint16(i * 997)), PC: mem.Addr(0x400 + i%32*4), Type: ty}
	}
	run := func(sys assist.System) assist.Stats {
		for _, acc := range stream {
			out := sys.Access(acc)
			for _, pf := range out.Prefetches {
				sys.PrefetchArrived(pf)
			}
		}
		return sys.Stats()
	}
	a, b := systems(), systems()
	for name := range a {
		if run(a[name]) != run(b[name]) {
			t.Errorf("%s: nondeterministic stats", name)
		}
	}
}
