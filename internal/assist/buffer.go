package assist

import (
	"repro/internal/mem"
)

// Entry is the metadata stored with each assist-buffer line.
type Entry struct {
	// Origin records how the line entered (victim/prefetch/bypass).
	Origin Origin
	// Dirty marks lines that must be written back when dropped.
	Dirty bool
	// Conflict carries the line's conflict bit (from the cache line on a
	// victim stash, or from the miss classification on a bypass).
	Conflict bool
	// Used marks that the entry has been hit at least once since
	// insertion; prefetch entries evicted with Used false are the paper's
	// "wasted prefetches".
	Used bool
}

// Evicted describes a line dropped from the buffer to make room.
type Evicted struct {
	Line  mem.LineAddr
	Entry Entry
}

// Buffer is the small fully-associative cache-assist buffer (Sec 4: eight
// entries, two read and two write ports, single-cycle access). With at
// most sixteen entries a linear scan is both simpler and faster than any
// indexed structure, and mirrors the hardware's parallel tag match.
//
// Replacement is LRU. The paper notes a victim cache is naturally FIFO
// with mid-removal (which equals LRU when hits consume entries), and that
// at eight entries a true LRU fully-associative organization "is not
// complex"; LRU is also what the no-swap policies require.
type Buffer struct {
	capacity int
	lines    []mem.LineAddr
	entries  []Entry
	stamps   []uint64
	clock    uint64

	stats BufferStats
}

// BufferStats counts buffer events.
type BufferStats struct {
	Probes           uint64
	Hits             uint64
	Fills            uint64
	Evictions        uint64
	WritebacksOnDrop uint64
	PrefetchesWasted uint64
	PrefetchesUseful uint64
}

// NewBuffer creates an empty buffer with the given capacity.
func NewBuffer(capacity int) *Buffer {
	if capacity <= 0 {
		panic("assist: buffer capacity must be positive")
	}
	return &Buffer{
		capacity: capacity,
		lines:    make([]mem.LineAddr, 0, capacity),
		entries:  make([]Entry, 0, capacity),
		stamps:   make([]uint64, 0, capacity),
	}
}

// Capacity returns the buffer's entry count.
func (b *Buffer) Capacity() int { return b.capacity }

// Len returns the number of resident lines.
func (b *Buffer) Len() int { return len(b.lines) }

// Stats returns a snapshot of the counters.
func (b *Buffer) Stats() BufferStats { return b.stats }

func (b *Buffer) index(line mem.LineAddr) int {
	for i, l := range b.lines {
		if l == line {
			return i
		}
	}
	return -1
}

// Contains reports presence without any side effects.
func (b *Buffer) Contains(line mem.LineAddr) bool { return b.index(line) >= 0 }

// Probe looks the line up without recency or statistics side effects and
// returns a copy of its entry.
func (b *Buffer) Probe(line mem.LineAddr) (Entry, bool) {
	i := b.index(line)
	if i < 0 {
		return Entry{}, false
	}
	return b.entries[i], true
}

// Hit performs a demand lookup: on success the entry is marked used, moved
// to MRU, and a copy returned. Prefetch entries hit for the first time
// count as useful prefetches.
func (b *Buffer) Hit(line mem.LineAddr, isStore bool) (Entry, bool) {
	b.stats.Probes++
	i := b.index(line)
	if i < 0 {
		return Entry{}, false
	}
	b.stats.Hits++
	if b.entries[i].Origin == OriginPrefetch && !b.entries[i].Used {
		b.stats.PrefetchesUseful++
	}
	b.entries[i].Used = true
	if isStore {
		b.entries[i].Dirty = true
	}
	b.clock++
	b.stamps[i] = b.clock
	return b.entries[i], true
}

// Remove deletes the line (a consume, as on a swap to the cache),
// returning its entry. Removal is not an eviction: no waste accounting.
func (b *Buffer) Remove(line mem.LineAddr) (Entry, bool) {
	i := b.index(line)
	if i < 0 {
		return Entry{}, false
	}
	e := b.entries[i]
	last := len(b.lines) - 1
	b.lines[i], b.lines = b.lines[last], b.lines[:last]
	b.entries[i], b.entries = b.entries[last], b.entries[:last]
	b.stamps[i], b.stamps = b.stamps[last], b.stamps[:last]
	return e, true
}

// Insert places a line with the given entry at MRU, evicting LRU if full.
// Inserting a line already present refreshes its entry and recency. The
// eviction, if any, is returned so callers can issue writebacks; waste
// statistics for unused prefetch evictions are recorded here.
func (b *Buffer) Insert(line mem.LineAddr, e Entry) (Evicted, bool) {
	b.clock++
	if i := b.index(line); i >= 0 {
		b.entries[i] = e
		b.stamps[i] = b.clock
		return Evicted{}, false
	}
	b.stats.Fills++
	var ev Evicted
	var evicted bool
	if len(b.lines) >= b.capacity {
		lru := 0
		for i := 1; i < len(b.lines); i++ {
			if b.stamps[i] < b.stamps[lru] {
				lru = i
			}
		}
		ev = Evicted{Line: b.lines[lru], Entry: b.entries[lru]}
		evicted = true
		b.stats.Evictions++
		if ev.Entry.Dirty {
			b.stats.WritebacksOnDrop++
		}
		if ev.Entry.Origin == OriginPrefetch && !ev.Entry.Used {
			b.stats.PrefetchesWasted++
		}
		last := len(b.lines) - 1
		b.lines[lru], b.lines = b.lines[last], b.lines[:last]
		b.entries[lru], b.entries = b.entries[last], b.entries[:last]
		b.stamps[lru], b.stamps = b.stamps[last], b.stamps[:last]
	}
	b.lines = append(b.lines, line)
	b.entries = append(b.entries, e)
	b.stamps = append(b.stamps, b.clock)
	return ev, evicted
}

// Lines returns the resident lines in unspecified order (for tests).
func (b *Buffer) Lines() []mem.LineAddr {
	out := make([]mem.LineAddr, len(b.lines))
	copy(out, b.lines)
	return out
}
