package assist

import (
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/mem"
)

// Baseline is the no-assist System: a bare L1 with an MCT classifying its
// misses. Every Section-5 experiment reports speedups relative to it, and
// Table 1's "no V cache" row is its statistics.
type Baseline struct {
	name string
	l1   *cache.Cache
	mct  *core.MCT

	stats Stats
}

// NewBaseline builds the baseline over an L1 configuration. tagBits sizes
// the MCT entries (0 = full tags, the paper's setting for all of Sec 5).
func NewBaseline(cfg cache.Config, tagBits int) (*Baseline, error) {
	l1, err := cache.New(cfg)
	if err != nil {
		return nil, err
	}
	mct, err := core.New(core.Config{Sets: cfg.Sets(), TagBits: tagBits})
	if err != nil {
		return nil, err
	}
	return &Baseline{name: "base", l1: l1, mct: mct}, nil
}

// MustNewBaseline is NewBaseline that panics on error.
func MustNewBaseline(cfg cache.Config, tagBits int) *Baseline {
	b, err := NewBaseline(cfg, tagBits)
	if err != nil {
		panic(err)
	}
	return b
}

// Name implements System.
func (b *Baseline) Name() string { return b.name }

// L1 exposes the underlying cache (tests and diagnostics).
func (b *Baseline) L1() *cache.Cache { return b.l1 }

// MCT exposes the classification table.
func (b *Baseline) MCT() *core.MCT { return b.mct }

// Access implements System: classic miss-fill-record with no assist.
func (b *Baseline) Access(acc mem.Access) Outcome {
	isStore := acc.Type == mem.Store
	b.stats.Accesses++
	if b.l1.Access(acc.Addr, acc.Type) {
		b.stats.L1Hits++
		return Outcome{L1Hit: true}
	}
	geom := b.l1.Geometry()
	class := b.mct.ClassifyMiss(geom.Set(acc.Addr), geom.Tag(acc.Addr))
	b.stats.Misses++
	if class == core.Conflict {
		b.stats.ConflictMisses++
	} else {
		b.stats.CapacityMisses++
	}
	ev := FillWithMCT(b.l1, b.mct, acc.Addr, isStore, class)
	return Outcome{
		Class:     class,
		CacheFill: true,
		Writeback: ev.Occurred && ev.Dirty,
	}
}

// Contains implements System.
func (b *Baseline) Contains(addr mem.Addr) (inL1, inBuffer bool) {
	return b.l1.Contains(addr), false
}

// PrefetchArrived implements System; the baseline never prefetches.
func (b *Baseline) PrefetchArrived(mem.LineAddr) bool { return false }

// Stats implements System.
func (b *Baseline) Stats() Stats { return b.stats }
