// Package assist defines the cache-assist abstraction shared by every
// Section-5 architecture in the paper: a functional System interface that
// couples the L1 data cache, the Miss Classification Table, and a small
// fully-associative assist buffer, plus the buffer itself.
//
// The paper's four applications (victim caching, next-line prefetching,
// cache exclusion, and the Adaptive Miss Buffer) are all "flavors of a
// cache assist buffer ... in each case the structure is very similar"
// (Sec 4). Each flavor implements System in its own package; the timing
// hierarchy (internal/hier) wraps any System with banks, ports, buses, and
// MSHRs, so functional policy behavior and timing are cleanly separated.
package assist

import (
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/mem"
)

// Origin records how a line entered the assist buffer. The Adaptive Miss
// Buffer needs it ("extra bits to remember how a cache line entered the
// buffer, because we may do something different on a buffer hit depending
// on whether the line came in as a prefetch or a victim swap").
type Origin uint8

const (
	// OriginVictim marks a line evicted from the L1 (victim caching).
	OriginVictim Origin = iota
	// OriginPrefetch marks a hardware prefetch that has not yet been used.
	OriginPrefetch
	// OriginBypass marks a line excluded from the L1 (cache exclusion).
	OriginBypass
)

// String names the origin.
func (o Origin) String() string {
	switch o {
	case OriginVictim:
		return "victim"
	case OriginPrefetch:
		return "prefetch"
	case OriginBypass:
		return "bypass"
	default:
		return "unknown"
	}
}

// Outcome describes the functional result of one demand access through a
// System. The timing layer prices each component (bank cycles, buffer
// ports, swaps) from these flags.
type Outcome struct {
	// Class is the MCT classification when the access missed the L1
	// (meaningless for L1 hits).
	Class core.Class
	// L1Hit reports a primary-cache hit.
	L1Hit bool
	// SecondaryHit reports a pseudo-associative hit in the alternate cache
	// location (slower than a primary hit, triggers a cache-internal swap).
	SecondaryHit bool
	// BufferHit reports an assist-buffer hit (after an L1 miss).
	BufferHit bool
	// Swap reports a full line exchange between the L1 and the buffer —
	// the expensive operation (two ports for two cycles, plus the bank).
	Swap bool
	// BufferFill reports a line was written into the buffer (victim stash,
	// bypass placement); costs a write port for two cycles.
	BufferFill bool
	// CacheFill reports the missing line was (or will be, when it arrives)
	// placed in the L1.
	CacheFill bool
	// Writeback reports a dirty eviction that must travel to the L2.
	Writeback bool
	// Prefetches lists line addresses the policy wants prefetched as a
	// consequence of this access. The timing layer issues them if MSHRs
	// allow and discards them otherwise (paper Sec 4).
	Prefetches []mem.LineAddr
}

// Miss reports whether the access missed both the L1 and the buffer and
// therefore goes to the L2.
func (o Outcome) Miss() bool { return !o.L1Hit && !o.SecondaryHit && !o.BufferHit }

// System is the functional model of an L1 cache plus (optionally) an
// assist structure and an MCT. Implementations must be deterministic and
// must keep their own statistics.
type System interface {
	// Name identifies the policy configuration in experiment output.
	Name() string
	// Access runs one demand access and returns what happened.
	Access(acc mem.Access) Outcome
	// Contains reports, without side effects, whether the line holding
	// addr is present in the L1 or the assist buffer. The timing layer
	// uses it to decide MSHR stalls before committing the functional
	// access.
	Contains(addr mem.Addr) (inL1, inBuffer bool)
	// PrefetchArrived informs the system that a previously requested
	// prefetch completed; the system decides where it lands (typically the
	// buffer). Returns false if the line was dropped (e.g. already
	// present).
	PrefetchArrived(line mem.LineAddr) bool
	// Stats returns the system's functional counters.
	Stats() Stats
}

// Stats are the functional counters every System reports; they feed
// Table 1 and Figure 7 directly.
type Stats struct {
	// Accesses counts demand accesses; L1Hits, SecondaryHits and
	// BufferHits partition the hits.
	Accesses      uint64
	L1Hits        uint64
	SecondaryHits uint64
	BufferHits    uint64
	// BufferHitsByOrigin splits buffer hits by how the line entered.
	BufferHitsByOrigin [3]uint64
	// Misses counts accesses that went to the L2.
	Misses uint64
	// ConflictMisses and CapacityMisses split Misses by MCT verdict.
	ConflictMisses uint64
	CapacityMisses uint64
	// Swaps counts L1<->buffer line exchanges; BufferFills counts lines
	// written into the buffer other than by swap.
	Swaps       uint64
	BufferFills uint64
	// PrefetchesIssued counts prefetch requests handed to the timing
	// layer; PrefetchesUseful counts prefetched lines that were hit before
	// eviction; PrefetchesWasted counts prefetched lines evicted unused.
	PrefetchesIssued uint64
	PrefetchesUseful uint64
	PrefetchesWasted uint64
	// Bypasses counts misses diverted around the L1 into the buffer.
	Bypasses uint64
}

// TotalHitRate returns (all hits)/accesses — the paper's "Total" column.
func (s Stats) TotalHitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.L1Hits+s.SecondaryHits+s.BufferHits) / float64(s.Accesses)
}

// L1HitRate returns L1 hits (primary+secondary) over accesses.
func (s Stats) L1HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.L1Hits+s.SecondaryHits) / float64(s.Accesses)
}

// BufferHitRate returns buffer hits over accesses.
func (s Stats) BufferHitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.BufferHits) / float64(s.Accesses)
}

// MissRate returns L2-bound misses over accesses.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// SwapRate and FillRate return swaps and buffer fills as a fraction of all
// accesses — Table 1's last two columns.
func (s Stats) SwapRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Swaps) / float64(s.Accesses)
}

// FillRate returns buffer fills as a fraction of all accesses.
func (s Stats) FillRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.BufferFills) / float64(s.Accesses)
}

// PrefetchAccuracy returns useful prefetches over completed prefetches
// (useful + wasted) — the metric Figure 4 improves by ~25%.
func (s Stats) PrefetchAccuracy() float64 {
	done := s.PrefetchesUseful + s.PrefetchesWasted
	if done == 0 {
		return 0
	}
	return float64(s.PrefetchesUseful) / float64(done)
}

// DefaultEntries is the paper's assist-buffer size ("in most cases it will
// have eight fully-associative entries"); exclusion uses 16.
const DefaultEntries = 8

// FillWithMCT is the shared fill-and-record sequence every policy uses
// when a line goes into the L1: fill with the conflict bit implied by the
// classification, then record the evicted line's own (set, tag) in the
// MCT. Both halves of the key come from the evicted line's stored address
// — identical to deriving the set from the incoming address under modulo
// indexing (victim and newcomer share a set), and the only well-defined
// choice under skewed/random indexing, where they need not.
func FillWithMCT(l1 *cache.Cache, mct *core.MCT, addr mem.Addr, dirty bool, class core.Class) cache.Eviction {
	ev := l1.Fill(addr, dirty, class == core.Conflict)
	if ev.Occurred {
		geom := l1.Geometry()
		mct.RecordEviction(geom.SetOfLine(ev.Line), geom.TagOfLine(ev.Line))
	}
	return ev
}
