package assist

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func TestBufferHitMiss(t *testing.T) {
	b := NewBuffer(2)
	if _, ok := b.Hit(1, false); ok {
		t.Fatal("empty buffer should miss")
	}
	b.Insert(1, Entry{Origin: OriginVictim})
	e, ok := b.Hit(1, false)
	if !ok || e.Origin != OriginVictim || !e.Used {
		t.Errorf("hit entry = %+v ok=%v", e, ok)
	}
	st := b.Stats()
	if st.Probes != 2 || st.Hits != 1 || st.Fills != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestBufferLRUEviction(t *testing.T) {
	b := NewBuffer(3)
	b.Insert(1, Entry{})
	b.Insert(2, Entry{})
	b.Insert(3, Entry{})
	b.Hit(1, false) // 2 becomes LRU
	ev, ok := b.Insert(4, Entry{})
	if !ok || ev.Line != 2 {
		t.Errorf("evicted %d, want 2", ev.Line)
	}
}

func TestBufferStoreDirties(t *testing.T) {
	b := NewBuffer(2)
	b.Insert(5, Entry{})
	b.Hit(5, true)
	e, _ := b.Probe(5)
	if !e.Dirty {
		t.Error("store hit should dirty the entry")
	}
	// Dirty drop counts a writeback.
	b.Insert(6, Entry{})
	b.Insert(7, Entry{})
	b.Insert(8, Entry{}) // drops 5 or 6; 5 is LRU? 5 was hit, so 6 drops first
	b.Insert(9, Entry{}) // now 5 drops
	if b.Stats().WritebacksOnDrop != 1 {
		t.Errorf("writebacks on drop = %d", b.Stats().WritebacksOnDrop)
	}
}

func TestWastedAndUsefulPrefetches(t *testing.T) {
	b := NewBuffer(2)
	b.Insert(1, Entry{Origin: OriginPrefetch})
	b.Insert(2, Entry{Origin: OriginPrefetch})
	b.Hit(1, false)      // 1 becomes useful
	b.Insert(3, Entry{}) // evicts 2 unused -> wasted
	b.Insert(4, Entry{}) // evicts 1 (used) -> not wasted
	st := b.Stats()
	if st.PrefetchesUseful != 1 {
		t.Errorf("useful = %d", st.PrefetchesUseful)
	}
	if st.PrefetchesWasted != 1 {
		t.Errorf("wasted = %d", st.PrefetchesWasted)
	}
	// A second hit on the same prefetch entry must not double-count.
	b2 := NewBuffer(2)
	b2.Insert(1, Entry{Origin: OriginPrefetch})
	b2.Hit(1, false)
	b2.Hit(1, false)
	if b2.Stats().PrefetchesUseful != 1 {
		t.Errorf("double-counted useful prefetch: %d", b2.Stats().PrefetchesUseful)
	}
}

func TestRemoveIsNotEviction(t *testing.T) {
	b := NewBuffer(2)
	b.Insert(1, Entry{Origin: OriginPrefetch})
	if _, ok := b.Remove(1); !ok {
		t.Fatal("remove failed")
	}
	if b.Stats().Evictions != 0 || b.Stats().PrefetchesWasted != 0 {
		t.Error("remove must not count as eviction or waste")
	}
	if _, ok := b.Remove(1); ok {
		t.Error("double remove should fail")
	}
}

func TestInsertPresentRefreshes(t *testing.T) {
	b := NewBuffer(2)
	b.Insert(1, Entry{Origin: OriginVictim})
	b.Insert(2, Entry{})
	// Refresh 1 with a new origin; no eviction.
	if _, ok := b.Insert(1, Entry{Origin: OriginBypass}); ok {
		t.Error("re-insert must not evict")
	}
	e, _ := b.Probe(1)
	if e.Origin != OriginBypass {
		t.Error("re-insert should update the entry")
	}
	// 2 is now LRU.
	ev, _ := b.Insert(3, Entry{})
	if ev.Line != 2 {
		t.Errorf("evicted %d, want 2", ev.Line)
	}
	if b.Stats().Fills != 3 { // 1, 2, 3 (refresh doesn't count)
		t.Errorf("fills = %d", b.Stats().Fills)
	}
}

func TestProbeHasNoSideEffects(t *testing.T) {
	b := NewBuffer(2)
	b.Insert(1, Entry{})
	b.Insert(2, Entry{})
	b.Probe(1) // must NOT refresh recency
	ev, _ := b.Insert(3, Entry{})
	if ev.Line != 1 {
		t.Errorf("probe changed recency: evicted %d, want 1", ev.Line)
	}
	if b.Stats().Probes != 0 {
		t.Error("Probe must not count as a demand probe")
	}
}

func TestBufferCapacityProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		b := NewBuffer(8)
		for _, op := range ops {
			line := mem.LineAddr(op & 0x3f)
			switch op >> 14 {
			case 0:
				b.Insert(line, Entry{Origin: Origin(op % 3)})
			case 1:
				b.Hit(line, op&1 == 1)
			case 2:
				b.Remove(line)
			default:
				b.Probe(line)
			}
			if b.Len() > 8 {
				return false
			}
		}
		return len(b.Lines()) == b.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBufferPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBuffer(0) did not panic")
		}
	}()
	NewBuffer(0)
}

func TestOriginNames(t *testing.T) {
	if OriginVictim.String() != "victim" || OriginPrefetch.String() != "prefetch" || OriginBypass.String() != "bypass" {
		t.Error("origin names wrong")
	}
	if Origin(9).String() != "unknown" {
		t.Error("unknown origin should render")
	}
}
