package assist

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/mem"
)

func dmConfig() cache.Config {
	return cache.Config{Name: "t", Size: 16 * 1024, LineSize: 64, Assoc: 1}
}

func TestBaselineClassifiesAndFills(t *testing.T) {
	b := MustNewBaseline(dmConfig(), 0)
	a1, a2 := mem.Addr(0x0000), mem.Addr(0x4000)

	out := b.Access(mem.Access{Addr: a1, Type: mem.Load})
	if out.L1Hit || !out.CacheFill || out.Class != 0 {
		t.Fatalf("first access outcome: %+v", out)
	}
	out = b.Access(mem.Access{Addr: a2, Type: mem.Load})
	if out.L1Hit {
		t.Fatal("aliasing access should miss")
	}
	out = b.Access(mem.Access{Addr: a1, Type: mem.Load})
	if out.Class.String() != "conflict" {
		t.Errorf("re-miss class = %v", out.Class)
	}
	out = b.Access(mem.Access{Addr: a1, Type: mem.Load})
	if !out.L1Hit {
		t.Error("resident line should hit")
	}

	st := b.Stats()
	if st.Accesses != 4 || st.L1Hits != 1 || st.Misses != 3 {
		t.Errorf("stats = %+v", st)
	}
	if st.ConflictMisses != 1 || st.CapacityMisses != 2 {
		t.Errorf("classified misses = %d/%d", st.ConflictMisses, st.CapacityMisses)
	}
}

func TestBaselineWritebackOutcome(t *testing.T) {
	b := MustNewBaseline(dmConfig(), 0)
	b.Access(mem.Access{Addr: 0x0000, Type: mem.Store})
	out := b.Access(mem.Access{Addr: 0x4000, Type: mem.Load})
	if !out.Writeback {
		t.Error("evicting a dirty line should report a writeback")
	}
}

func TestBaselineContains(t *testing.T) {
	b := MustNewBaseline(dmConfig(), 0)
	if inL1, inBuf := b.Contains(0x1000); inL1 || inBuf {
		t.Error("cold baseline should contain nothing")
	}
	b.Access(mem.Access{Addr: 0x1000, Type: mem.Load})
	if inL1, inBuf := b.Contains(0x1000); !inL1 || inBuf {
		t.Error("filled line should be in L1, never in a buffer")
	}
}

func TestBaselinePrefetchArrivedIgnored(t *testing.T) {
	b := MustNewBaseline(dmConfig(), 0)
	if b.PrefetchArrived(42) {
		t.Error("baseline has no buffer to accept prefetches")
	}
}

func TestStatsDerivedMetrics(t *testing.T) {
	s := Stats{
		Accesses: 100, L1Hits: 80, BufferHits: 10, Misses: 10,
		Swaps: 4, BufferFills: 6,
		PrefetchesUseful: 3, PrefetchesWasted: 1,
	}
	if s.TotalHitRate() != 0.9 || s.L1HitRate() != 0.8 || s.BufferHitRate() != 0.1 {
		t.Error("hit rates wrong")
	}
	if s.MissRate() != 0.1 || s.SwapRate() != 0.04 || s.FillRate() != 0.06 {
		t.Error("traffic rates wrong")
	}
	if s.PrefetchAccuracy() != 0.75 {
		t.Errorf("prefetch accuracy = %g", s.PrefetchAccuracy())
	}
	var zero Stats
	if zero.TotalHitRate() != 0 || zero.MissRate() != 0 || zero.PrefetchAccuracy() != 0 ||
		zero.L1HitRate() != 0 || zero.BufferHitRate() != 0 || zero.SwapRate() != 0 || zero.FillRate() != 0 {
		t.Error("zero stats must not NaN")
	}
}

func TestOutcomeMiss(t *testing.T) {
	if !(Outcome{}).Miss() {
		t.Error("empty outcome is a miss")
	}
	for _, o := range []Outcome{{L1Hit: true}, {SecondaryHit: true}, {BufferHit: true}} {
		if o.Miss() {
			t.Errorf("outcome %+v should not be a miss", o)
		}
	}
}
