package remap

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/mem"
)

func dmConfig() cache.Config {
	return cache.Config{Name: "t", Size: 16 * 1024, LineSize: 64, Assoc: 1}
}

func TestPolicyNames(t *testing.T) {
	if NoRemap.String() != "no-remap" || CountAll.String() != "cml-all-misses" || CountConflict.String() != "cml-conflict-only" {
		t.Error("policy names wrong")
	}
	if Policy(9).String() == "" {
		t.Error("unknown policy should render")
	}
}

func TestRejectsUselessPageSize(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PageShift = 20 // 1MB pages >> 16KB cache: no index bits to recolor
	if _, err := New(dmConfig(), cfg, CountConflict); err == nil {
		t.Error("recoloring with pages larger than the cache should be rejected")
	}
}

func TestNoRemapNeverRemaps(t *testing.T) {
	s := MustNew(dmConfig(), DefaultConfig(), NoRemap)
	a, b := mem.Addr(0x10000), mem.Addr(0x14000)
	for i := 0; i < 5000; i++ {
		s.Access(a, false)
		s.Access(b, false)
	}
	if s.Stats().Remaps != 0 {
		t.Errorf("no-remap performed %d remaps", s.Stats().Remaps)
	}
	if s.Stats().Conflicts == 0 {
		t.Error("ping-pong should classify conflicts")
	}
}

func TestConflictCountingRemapsFightingPages(t *testing.T) {
	// Two pages whose lines collide: recoloring one must stop the
	// ping-pong. 8KB pages; A at 0x10000 (page 8), B at 0x14000 (page 10)
	// collide in a 16KB cache.
	cfg := DefaultConfig()
	cfg.Threshold = 32
	s := MustNew(dmConfig(), cfg, CountConflict)
	a, b := mem.Addr(0x10000), mem.Addr(0x14000)
	missesBefore := uint64(0)
	for i := 0; i < 200; i++ {
		s.Access(a, false)
		s.Access(b, false)
	}
	missesBefore = s.Stats().Misses
	if s.Stats().Remaps == 0 {
		t.Fatal("conflicting pages never remapped")
	}
	// After the remap the pair must stop missing.
	for i := 0; i < 200; i++ {
		s.Access(a, false)
		s.Access(b, false)
	}
	missesAfter := s.Stats().Misses - missesBefore
	if missesAfter > 20 {
		t.Errorf("after recoloring the pair still missed %d times in 400 accesses", missesAfter)
	}
}

func TestConflictOnlyAvoidsPointlessRemaps(t *testing.T) {
	// A pure capacity sweep (4x the cache, 4 lines per set) should not
	// trigger conflict-counted remaps, but does trigger count-all remaps
	// — the paper's argument for classification-aware counting.
	sweep := func(p Policy) uint64 {
		cfg := DefaultConfig()
		cfg.Threshold = 32
		s := MustNew(dmConfig(), cfg, p)
		for pass := 0; pass < 8; pass++ {
			for i := 0; i < 4*256; i++ {
				s.Access(mem.Addr(0x100000+i*64), false)
			}
		}
		return s.Stats().Remaps
	}
	all := sweep(CountAll)
	conf := sweep(CountConflict)
	if all == 0 {
		t.Error("count-all should remap under a heavy miss stream")
	}
	if conf >= all {
		t.Errorf("conflict-only (%d remaps) should remap far less than count-all (%d) on capacity misses", conf, all)
	}
}

func TestMaxRemapsBudget(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Threshold = 8
	cfg.MaxRemaps = 2
	s := MustNew(dmConfig(), cfg, CountAll)
	for i := 0; i < 20000; i++ {
		s.Access(mem.Addr(0x100000+i%2048*64), false)
	}
	if s.Stats().Remaps > 2 {
		t.Errorf("budget exceeded: %d remaps", s.Stats().Remaps)
	}
}

func TestCountersDecay(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Threshold = 1000 // unreachable
	cfg.Window = 64
	s := MustNew(dmConfig(), cfg, CountAll)
	for i := 0; i < 1000; i++ {
		s.Access(mem.Addr(0x100000+i%1024*64), false)
	}
	for p, c := range s.counts {
		if c >= 1000 {
			t.Errorf("page %d counter %d never decayed", p, c)
		}
	}
}

func TestTranslationConsistency(t *testing.T) {
	// After any number of remaps, a hit must still be a hit: the same
	// address translates the same way until its page is remapped again.
	cfg := DefaultConfig()
	cfg.Threshold = 16
	s := MustNew(dmConfig(), cfg, CountAll)
	addrs := []mem.Addr{0x10000, 0x14000, 0x18000, 0x1c040, 0x20080}
	for i := 0; i < 3000; i++ {
		s.Access(addrs[i%len(addrs)], i%7 == 0)
	}
	// Back-to-back accesses to one address: second must hit.
	s.Access(0x30000, false)
	if !s.Access(0x30000, false) {
		t.Error("repeat access missed; translation inconsistent")
	}
}
