// Package remap implements the paper's Section-5.6 "runtime conflict
// avoidance" application: a cache-miss lookaside buffer (CML, after
// Bershad et al.) that counts misses by physical page so the operating
// system can recolor a page that keeps colliding in the cache.
//
// The paper's proposal is to count only *conflict* misses, as identified
// by the Miss Classification Table: a page suffering capacity misses
// gains nothing from a new color, so classification-aware counting avoids
// pointless remaps. This package implements both variants — count-all
// (the original CML) and count-conflict (MCT-assisted) — over a simple
// page-recoloring model, so the claim is directly measurable.
package remap

import (
	"fmt"

	"repro/internal/assist"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/mem"
)

// Policy selects what the lookaside buffer counts.
type Policy uint8

const (
	// NoRemap disables recoloring (the baseline).
	NoRemap Policy = iota
	// CountAll is Bershad's original CML: every miss increments the
	// page's counter.
	CountAll
	// CountConflict increments only on MCT-classified conflict misses —
	// the paper's proposal.
	CountConflict
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case NoRemap:
		return "no-remap"
	case CountAll:
		return "cml-all-misses"
	case CountConflict:
		return "cml-conflict-only"
	default:
		return fmt.Sprintf("Policy(%d)", uint8(p))
	}
}

// Config sizes the recoloring system.
type Config struct {
	// PageShift is log2(page size); 13 (8KB) by default.
	PageShift uint
	// Threshold is the page miss count that triggers a remap.
	Threshold uint32
	// Window is the access count after which all counters decay by half,
	// so stale conflicts do not trigger remaps forever.
	Window uint64
	// MaxRemaps bounds total recolorings (the OS cost budget); 0 means
	// unlimited.
	MaxRemaps int
}

// DefaultConfig returns a reasonable recoloring setup for the paper's
// 16KB L1: 8KB pages (two page colors in the cache), a threshold of 64
// counted misses, and a 64K-access decay window.
func DefaultConfig() Config {
	return Config{PageShift: 13, Threshold: 64, Window: 1 << 16, MaxRemaps: 0}
}

// Stats counts the recoloring system's events.
type Stats struct {
	Accesses  uint64
	Misses    uint64
	Conflicts uint64
	Remaps    uint64
}

// System couples a cache+MCT with the page-recoloring layer. It is a
// functional model: the "color" of a page is an XOR perturbation applied
// to the page bits that fall inside the cache index, exactly the effect
// of the OS choosing a different physical frame color.
type System struct {
	cfg    Config
	policy Policy
	l1     *cache.Cache
	mct    *core.MCT
	geom   mem.Geometry

	colorMask uint64 // which page-number bits can change the cache set
	colors    map[uint64]uint64
	counts    map[uint64]uint32
	nextColor uint64

	stats Stats
}

// New builds the recoloring system over an L1 configuration.
func New(l1cfg cache.Config, cfg Config, policy Policy) (*System, error) {
	l1, err := cache.New(l1cfg)
	if err != nil {
		return nil, err
	}
	mct, err := core.New(core.Config{Sets: l1cfg.Sets()})
	if err != nil {
		return nil, err
	}
	if cfg.PageShift == 0 {
		cfg = DefaultConfig()
	}
	geom := l1.Geometry()
	// Cache index bits span [lineShift, lineShift+log2(sets)); page bits
	// start at PageShift. The overlap is what recoloring can change.
	idxTop := geom.LineShift() + uint(log2(l1cfg.Sets()))
	var mask uint64
	if idxTop > cfg.PageShift {
		mask = (uint64(1) << (idxTop - cfg.PageShift)) - 1
	}
	if mask == 0 {
		return nil, fmt.Errorf("remap: pages (%d bytes) span the whole cache index; recoloring is a no-op", 1<<cfg.PageShift)
	}
	return &System{
		cfg:       cfg,
		policy:    policy,
		l1:        l1,
		mct:       mct,
		geom:      geom,
		colorMask: mask,
		colors:    make(map[uint64]uint64),
		counts:    make(map[uint64]uint32),
	}, nil
}

// MustNew is New that panics on error.
func MustNew(l1cfg cache.Config, cfg Config, policy Policy) *System {
	s, err := New(l1cfg, cfg, policy)
	if err != nil {
		panic(err)
	}
	return s
}

// Name labels the system for experiment output.
func (s *System) Name() string { return s.policy.String() }

// Stats returns the counters.
func (s *System) Stats() Stats { return s.stats }

// L1 exposes the underlying cache.
func (s *System) L1() *cache.Cache { return s.l1 }

// page returns the virtual page number of an address.
func (s *System) page(a mem.Addr) uint64 { return uint64(a) >> s.cfg.PageShift }

// translate applies the page's current color to the address: the color
// XORs the low page-number bits, perturbing which cache sets the page's
// lines occupy while leaving the intra-page offset alone.
func (s *System) translate(a mem.Addr) mem.Addr {
	color, ok := s.colors[s.page(a)]
	if !ok || color == 0 {
		return a
	}
	return a ^ mem.Addr(color<<s.cfg.PageShift)
}

// Access runs one access through translation, cache, and classification,
// and applies the recoloring policy. It returns whether the (translated)
// access hit.
func (s *System) Access(a mem.Addr, isStore bool) bool {
	s.stats.Accesses++
	if s.cfg.Window != 0 && s.stats.Accesses%s.cfg.Window == 0 {
		for p := range s.counts {
			s.counts[p] /= 2
		}
	}
	typ := mem.Load
	if isStore {
		typ = mem.Store
	}
	ta := s.translate(a)
	if s.l1.Access(ta, typ) {
		return true
	}
	s.stats.Misses++
	set, tag := s.geom.Set(ta), s.geom.Tag(ta)
	class := s.mct.ClassifyMiss(set, tag)
	if class == core.Conflict {
		s.stats.Conflicts++
	}
	assist.FillWithMCT(s.l1, s.mct, ta, isStore, class)
	s.countMiss(a, class)
	return false
}

// countMiss updates the page counter and triggers a remap past threshold.
func (s *System) countMiss(a mem.Addr, class core.Class) {
	switch s.policy {
	case NoRemap:
		return
	case CountConflict:
		if class != core.Conflict {
			return
		}
	}
	p := s.page(a)
	s.counts[p]++
	if s.counts[p] < s.cfg.Threshold {
		return
	}
	if s.cfg.MaxRemaps > 0 && int(s.stats.Remaps) >= s.cfg.MaxRemaps {
		return
	}
	// Recolor: rotate the page to the next color. A real OS would copy
	// the page to a frame of that color; functionally the page's lines
	// simply move to different sets, so we flush its lines.
	s.nextColor = (s.nextColor + 1) & s.colorMask
	if s.nextColor == s.colors[p] {
		s.nextColor = (s.nextColor + 1) & s.colorMask
	}
	s.flushPage(a, s.colors[p])
	s.colors[p] = s.nextColor
	s.counts[p] = 0
	s.stats.Remaps++
}

// flushPage invalidates the page's lines under its current color (the OS
// copy invalidates the old frame).
func (s *System) flushPage(a mem.Addr, oldColor uint64) {
	base := mem.Addr(uint64(a) &^ ((1 << s.cfg.PageShift) - 1))
	for off := uint64(0); off < 1<<s.cfg.PageShift; off += uint64(s.geom.LineSize()) {
		line := base + mem.Addr(off)
		if oldColor != 0 {
			line ^= mem.Addr(oldColor << s.cfg.PageShift)
		}
		s.l1.Invalidate(line)
	}
}

func log2(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
