package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical draws of 100", same)
	}
}

func TestReseedRestarts(t *testing.T) {
	s := New(7)
	first := s.Uint64()
	for i := 0; i < 17; i++ {
		s.Uint64()
	}
	s.Reseed(7)
	if got := s.Uint64(); got != first {
		t.Errorf("Reseed did not restart the stream: %d != %d", got, first)
	}
}

func TestZeroSeedNotDegenerate(t *testing.T) {
	s := New(0)
	zeros := 0
	for i := 0; i < 100; i++ {
		if s.Uint64() == 0 {
			zeros++
		}
	}
	if zeros > 1 {
		t.Errorf("seed 0 produced %d zero outputs of 100", zeros)
	}
}

func TestUint64nBounds(t *testing.T) {
	s := New(3)
	for _, n := range []uint64{1, 2, 3, 7, 100, 1 << 40} {
		for i := 0; i < 200; i++ {
			if v := s.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) returned %d", n, v)
			}
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(-1) did not panic")
		}
	}()
	New(1).Intn(-1)
}

func TestUint64nRoughlyUniform(t *testing.T) {
	s := New(99)
	const n, draws = 8, 80000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[s.Uint64n(n)]++
	}
	want := draws / n
	for i, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Errorf("bucket %d: %d draws, want about %d", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(5)
	sum := 0.0
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
		sum += f
	}
	if mean := sum / 10000; mean < 0.47 || mean > 0.53 {
		t.Errorf("Float64 mean %g far from 0.5", mean)
	}
}

func TestBoolEdges(t *testing.T) {
	s := New(6)
	for i := 0; i < 100; i++ {
		if s.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !s.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
	trues := 0
	for i := 0; i < 10000; i++ {
		if s.Bool(0.25) {
			trues++
		}
	}
	if trues < 2200 || trues > 2800 {
		t.Errorf("Bool(0.25) fired %d/10000 times", trues)
	}
}

func TestGeometricMean(t *testing.T) {
	s := New(8)
	const m = 6.0
	sum := 0
	const draws = 20000
	for i := 0; i < draws; i++ {
		v := s.Geometric(m)
		if v < 1 {
			t.Fatalf("Geometric returned %d < 1", v)
		}
		sum += v
	}
	mean := float64(sum) / draws
	if mean < m*0.9 || mean > m*1.1 {
		t.Errorf("Geometric(%g) sample mean %g", m, mean)
	}
	if v := s.Geometric(0.5); v != 1 {
		t.Errorf("Geometric(<=1) should return 1, got %d", v)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(11)
	out := make([]int, 37)
	s.Perm(out)
	seen := make([]bool, len(out))
	for _, v := range out {
		if v < 0 || v >= len(out) || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", out)
		}
		seen[v] = true
	}
}

func TestZipfBoundsAndSkew(t *testing.T) {
	s := New(13)
	z := NewZipf(1024, 0.8)
	var head, total int
	for i := 0; i < 50000; i++ {
		v := z.Sample(s)
		if v >= 1024 {
			t.Fatalf("Zipf sample %d out of range", v)
		}
		if v < 16 {
			head++
		}
		total++
	}
	// With theta 0.8 the hottest 16 of 1024 values should carry far more
	// than their uniform share (16/1024 = 1.6%).
	frac := float64(head) / float64(total)
	if frac < 0.15 {
		t.Errorf("Zipf head fraction %.3f; distribution not skewed", frac)
	}
}

func TestZipfPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewZipf(0, 0.5) },
		func() { NewZipf(10, 0) },
		func() { NewZipf(10, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestZipfLargeNFinite(t *testing.T) {
	z := NewZipf(1<<30, 0.7)
	s := New(17)
	for i := 0; i < 100; i++ {
		v := z.Sample(s)
		if v >= 1<<30 || math.IsNaN(float64(v)) {
			t.Fatalf("large-n Zipf sample invalid: %d", v)
		}
	}
}
