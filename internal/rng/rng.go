// Package rng provides a small, fast, deterministic pseudo-random number
// generator for workload synthesis.
//
// The simulator never uses math/rand or wall-clock entropy: every stream of
// random choices is derived from an explicit 64-bit seed, so a benchmark
// trace is a pure function of (benchmark name, parameters, seed) and every
// experiment is bit-reproducible across runs and machines.
//
// The generator is splitmix64 seeding xoshiro256** (Blackman & Vigna,
// public domain).
package rng

import (
	"math"
	"math/bits"
)

// Source is a deterministic 64-bit PRNG.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from the given 64-bit seed. Distinct seeds
// yield statistically independent streams.
func New(seed uint64) *Source {
	var src Source
	src.Reseed(seed)
	return &src
}

// Reseed reinitializes the source from seed, as if freshly created.
func (s *Source) Reseed(seed uint64) {
	x := seed
	for i := range s.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		s.s[i] = z ^ (z >> 31)
	}
	if s.s[0]|s.s[1]|s.s[2]|s.s[3] == 0 {
		s.s[0] = 0x9e3779b97f4a7c15
	}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	result := bits.RotateLeft64(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = bits.RotateLeft64(s.s[3], 45)
	return result
}

// Uint64n returns a uniformly distributed uint64 in [0, n). It panics if
// n == 0. Uses Lemire's unbiased multiply-shift method.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	hi, lo := bits.Mul64(s.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(s.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(s.Uint64n(uint64(n)))
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Geometric returns a sample from a geometric distribution with mean m
// (number of trials until the first success, minimum 1). Workload kernels
// use it to model burst lengths.
func (s *Source) Geometric(m float64) int {
	if m <= 1 {
		return 1
	}
	p := 1 / m
	n := 1
	for !s.Bool(p) && n < 1<<20 {
		n++
	}
	return n
}

// Perm fills out with a uniformly random permutation of [0, len(out)).
func (s *Source) Perm(out []int) {
	for i := range out {
		out[i] = i
	}
	for i := len(out) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
}

// Zipf samples in [0, n) from a Zipf-like distribution with exponent theta
// in (0, 1); larger theta skews harder toward small values. It uses the
// inverse-CDF approximation of Gray et al. ("Quickly generating
// billion-record synthetic databases"), which is the standard construction
// for synthetic skewed reference streams.
type Zipf struct {
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
}

// NewZipf prepares a Zipf sampler over [0, n) with skew theta in (0, 1).
func NewZipf(n uint64, theta float64) *Zipf {
	if n == 0 {
		panic("rng: NewZipf with n == 0")
	}
	if theta <= 0 || theta >= 1 {
		panic("rng: NewZipf theta must be in (0,1)")
	}
	z := &Zipf{n: n, theta: theta}
	z.zetan = zeta(n, theta)
	zeta2 := zeta(2, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta2/z.zetan)
	return z
}

// Sample draws one value in [0, n) using randomness from src.
func (z *Zipf) Sample(src *Source) uint64 {
	u := src.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	v := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if v >= z.n {
		v = z.n - 1
	}
	return v
}

// zeta computes the generalized harmonic number H_{n,theta}, approximating
// the tail with an integral for very large n.
func zeta(n uint64, theta float64) float64 {
	const direct = 1 << 16
	sum := 0.0
	m := n
	if m > direct {
		m = direct
	}
	for i := uint64(1); i <= m; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	if n > direct {
		sum += (math.Pow(float64(n), 1-theta) - math.Pow(float64(direct), 1-theta)) / (1 - theta)
	}
	return sum
}
