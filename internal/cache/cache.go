// Package cache implements the functional cache models underlying the
// reproduction: a set-associative write-back cache with true-LRU
// replacement, per-line conflict bits, and a pluggable index scheme
// (modulo, skewed-associative, or randomized — see IndexScheme), and a
// fully-associative LRU cache used by the classic (oracle) miss
// classifier.
//
// The models here are purely functional — they track contents and
// replacement state, not time. Timing (banks, ports, buses, MSHRs) is
// layered on by internal/hier so the same functional model backs both the
// accuracy experiments (Figures 1–2) and the performance experiments
// (Figures 3–7).
package cache

import (
	"fmt"
	"math/bits"

	"repro/internal/mem"
)

// Config describes a cache shape.
type Config struct {
	// Name labels the cache in stats output (e.g. "L1D", "L2").
	Name string
	// Size is the total capacity in bytes.
	Size int
	// LineSize is the line size in bytes (the paper uses 64 everywhere).
	LineSize int
	// Assoc is the set associativity (1 = direct-mapped).
	Assoc int
	// Indexing selects the row-index scheme. The zero value (IndexModulo)
	// is the paper's classic set index.
	Indexing IndexScheme
	// IndexSeed keys IndexRandom's per-way hashes; zero means a fixed
	// default so the zero-value Config stays deterministic. Ignored by
	// modulo and skewed indexing, which are unkeyed.
	IndexSeed uint64
}

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	if c.Size <= 0 || c.LineSize <= 0 || c.Assoc <= 0 {
		return fmt.Errorf("cache %q: size, line size, and associativity must be positive", c.Name)
	}
	if c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("cache %q: line size %d is not a power of two", c.Name, c.LineSize)
	}
	lines := c.Size / c.LineSize
	if lines*c.LineSize != c.Size {
		return fmt.Errorf("cache %q: size %d is not a multiple of line size %d", c.Name, c.Size, c.LineSize)
	}
	if lines%c.Assoc != 0 {
		return fmt.Errorf("cache %q: %d lines not divisible by associativity %d", c.Name, lines, c.Assoc)
	}
	sets := lines / c.Assoc
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %q: set count %d is not a power of two", c.Name, sets)
	}
	switch c.Indexing {
	case IndexModulo, IndexSkewed, IndexRandom:
	default:
		return fmt.Errorf("cache %q: unknown index scheme %d", c.Name, int(c.Indexing))
	}
	return nil
}

// Sets returns the number of sets implied by the configuration.
func (c Config) Sets() int { return c.Size / c.LineSize / c.Assoc }

// Line is one cache line's bookkeeping state. Data contents are not
// simulated; only presence, dirtiness, and the MCT conflict bit matter.
type Line struct {
	// Addr is the full line address of the cached line. Storing it (rather
	// than a tag recomposed with the row index on eviction) is what makes
	// non-invertible index schemes possible: under skewed or randomized
	// indexing there is no (tag, row) → address inverse.
	Addr mem.LineAddr
	// Valid marks the line as present.
	Valid bool
	// Dirty marks the line as modified (written back on eviction).
	Dirty bool
	// Conflict is the paper's per-line conflict bit: set when the line was
	// brought in by a miss the MCT classified as a conflict miss. The cache
	// stores it but never interprets it; policy code owns its meaning.
	Conflict bool

	lastUse uint64 // LRU timestamp; larger is more recent
}

// Eviction describes the line displaced by a fill. Occurred is false when
// the fill landed in an invalid (empty) way.
type Eviction struct {
	// Occurred reports whether a valid line was displaced.
	Occurred bool
	// Line is the line address of the displaced line.
	Line mem.LineAddr
	// Dirty reports whether the displaced line required a writeback.
	Dirty bool
	// Conflict is the displaced line's conflict bit at eviction time.
	Conflict bool
}

// Stats counts the cache's functional events.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	LoadMisses uint64
	Stores     uint64
	Fills      uint64
	Evictions  uint64
	Writebacks uint64
}

// HitRate returns hits/accesses.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// MissRate returns misses/accesses.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is a set-associative, write-back, write-allocate cache with true
// LRU replacement and a configurable index scheme.
//
// Storage is rows×assoc lines: the slot for (row r, way w) is r*assoc+w.
// Under modulo indexing every way of a line shares one row, so a "set" is
// the contiguous slice ways[r*assoc : (r+1)*assoc] — the seed layout,
// scanned in the same order. Under skewed/random indexing each way w gets
// its own row from the scheme's per-way hash, so the candidate slots for a
// line are scattered; replacement is still LRU over those assoc
// candidates. The scheme is resolved once at construction: the hot path
// branches once per operation, never through an interface.
type Cache struct {
	cfg     Config
	geom    mem.Geometry
	assoc   int
	scheme  IndexScheme
	rowBits uint     // log2(rows); rows == cfg.Sets()
	rowMask uint64   // rows-1
	wayKeys []uint64 // IndexRandom per-way hash keys (nil otherwise)
	ways    []Line   // rows*assoc lines; slot (row r, way w) = r*assoc+w
	clock   uint64
	stats   Stats
}

// New constructs a cache from a validated configuration.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	geom, err := mem.NewGeometry(cfg.LineSize, cfg.Sets())
	if err != nil {
		return nil, fmt.Errorf("cache %q: %w", cfg.Name, err)
	}
	c := &Cache{
		cfg:     cfg,
		geom:    geom,
		assoc:   cfg.Assoc,
		scheme:  cfg.Indexing,
		rowBits: uint(bits.Len(uint(cfg.Sets())) - 1),
		rowMask: uint64(cfg.Sets() - 1),
		ways:    make([]Line, cfg.Sets()*cfg.Assoc),
	}
	if cfg.Indexing == IndexRandom {
		c.wayKeys = deriveWayKeys(cfg.IndexSeed, cfg.Assoc)
	}
	return c, nil
}

// MustNew is New that panics on error, for fixed test/example shapes.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Geometry returns the modulo address decomposition for this cache's
// shape. Note this describes line/tag extraction and the modulo row — the
// MCT and oracle layers key on it — not the indexing actually in force
// when Indexing is skewed or random; use RowOf for that.
func (c *Cache) Geometry() mem.Geometry { return c.geom }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats clears the counters without touching contents. Experiments use
// this to discard cache-warming effects when a warmup phase is configured.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// rowOf computes the non-modulo row for way w. Callers branch on scheme
// before the per-way loop; only skewed/random reach here.
func (c *Cache) rowOf(w int, line mem.LineAddr) uint64 {
	if c.scheme == IndexSkewed {
		return skewRow(uint64(line), c.rowBits, w)
	}
	return mixRow(uint64(line), c.wayKeys[w], c.rowMask)
}

// RowOf reports the row that line indexes in the given way under the
// cache's scheme, for tests and diagnostics.
func (c *Cache) RowOf(way int, line mem.LineAddr) uint64 {
	if c.scheme == IndexModulo {
		return uint64(line) & c.rowMask
	}
	return c.rowOf(way, line)
}

// findSlot returns the ways index of the valid line holding line, or -1.
func (c *Cache) findSlot(line mem.LineAddr) int {
	if c.scheme == IndexModulo {
		base := int(uint64(line)&c.rowMask) * c.assoc
		for i := base; i < base+c.assoc; i++ {
			if c.ways[i].Valid && c.ways[i].Addr == line {
				return i
			}
		}
		return -1
	}
	for w := 0; w < c.assoc; w++ {
		i := int(c.rowOf(w, line))*c.assoc + w
		if c.ways[i].Valid && c.ways[i].Addr == line {
			return i
		}
	}
	return -1
}

// victimSlot returns the slot a fill of line should use: the first invalid
// candidate in way order, else the LRU candidate (earliest way on ties).
func (c *Cache) victimSlot(line mem.LineAddr) int {
	victim := -1
	if c.scheme == IndexModulo {
		base := int(uint64(line)&c.rowMask) * c.assoc
		for i := base; i < base+c.assoc; i++ {
			if !c.ways[i].Valid {
				return i
			}
			if victim < 0 || c.ways[i].lastUse < c.ways[victim].lastUse {
				victim = i
			}
		}
		return victim
	}
	for w := 0; w < c.assoc; w++ {
		i := int(c.rowOf(w, line))*c.assoc + w
		if !c.ways[i].Valid {
			return i
		}
		if victim < 0 || c.ways[i].lastUse < c.ways[victim].lastUse {
			victim = i
		}
	}
	return victim
}

// Access performs a demand access at addr: on a hit it updates LRU (and the
// dirty bit for stores) and returns true; on a miss it returns false and
// leaves the cache unmodified — the caller decides whether and how to Fill,
// which is what lets assist buffers and exclusion policies interpose. The
// access type drives the stats split: only mem.Load misses count as
// LoadMisses (IFetch and prefetch misses used to inflate that counter).
func (c *Cache) Access(addr mem.Addr, typ mem.AccessType) bool {
	c.stats.Accesses++
	if typ == mem.Store {
		c.stats.Stores++
	}
	i := c.findSlot(c.geom.Line(addr))
	if i < 0 {
		c.stats.Misses++
		if typ == mem.Load {
			c.stats.LoadMisses++
		}
		return false
	}
	c.stats.Hits++
	c.clock++
	c.ways[i].lastUse = c.clock
	if typ == mem.Store {
		c.ways[i].Dirty = true
	}
	return true
}

// Contains reports whether the line holding addr is present, without
// touching LRU state or statistics.
func (c *Cache) Contains(addr mem.Addr) bool {
	return c.findSlot(c.geom.Line(addr)) >= 0
}

// ConflictBit returns the conflict bit of the line holding addr and whether
// the line is present.
func (c *Cache) ConflictBit(addr mem.Addr) (bit, present bool) {
	i := c.findSlot(c.geom.Line(addr))
	if i < 0 {
		return false, false
	}
	return c.ways[i].Conflict, true
}

// SetConflictBit overwrites the conflict bit of the line holding addr,
// reporting whether the line was present.
func (c *Cache) SetConflictBit(addr mem.Addr, bit bool) bool {
	i := c.findSlot(c.geom.Line(addr))
	if i < 0 {
		return false
	}
	c.ways[i].Conflict = bit
	return true
}

// VictimCandidate returns a copy of the line that a Fill to addr would
// displace right now (the LRU line among the candidate slots), and whether
// the fill would displace anything at all. Policies that must decide
// before filling (e.g. exclusion) use this preview.
func (c *Cache) VictimCandidate(addr mem.Addr) (Line, bool) {
	line := c.geom.Line(addr)
	victim := -1
	if c.scheme == IndexModulo {
		base := int(uint64(line)&c.rowMask) * c.assoc
		for i := base; i < base+c.assoc; i++ {
			if !c.ways[i].Valid {
				return Line{}, false
			}
			if victim < 0 || c.ways[i].lastUse < c.ways[victim].lastUse {
				victim = i
			}
		}
	} else {
		for w := 0; w < c.assoc; w++ {
			i := int(c.rowOf(w, line))*c.assoc + w
			if !c.ways[i].Valid {
				return Line{}, false
			}
			if victim < 0 || c.ways[i].lastUse < c.ways[victim].lastUse {
				victim = i
			}
		}
	}
	return c.ways[victim], true
}

// Fill inserts the line containing addr, marking it dirty when requested
// (a store-triggered fill, or a swap of an already-dirty line) and
// recording the conflict bit supplied by the MCT policy layer. It returns
// the eviction that made room — the evicted line's full address comes
// straight from its Line.Addr, with no (tag, row) recomposition. Filling a
// line that is already present refreshes its LRU position and returns no
// eviction (this happens when a prefetch lands for a line a demand miss
// also fetched).
func (c *Cache) Fill(addr mem.Addr, dirty, conflict bool) Eviction {
	line := c.geom.Line(addr)
	c.clock++
	if i := c.findSlot(line); i >= 0 {
		c.ways[i].lastUse = c.clock
		if dirty {
			c.ways[i].Dirty = true
		}
		return Eviction{}
	}
	c.stats.Fills++
	i := c.victimSlot(line)
	var ev Eviction
	if c.ways[i].Valid {
		c.stats.Evictions++
		if c.ways[i].Dirty {
			c.stats.Writebacks++
		}
		ev = Eviction{
			Occurred: true,
			Line:     c.ways[i].Addr,
			Dirty:    c.ways[i].Dirty,
			Conflict: c.ways[i].Conflict,
		}
	}
	c.ways[i] = Line{Addr: line, Valid: true, Dirty: dirty, Conflict: conflict, lastUse: c.clock}
	return ev
}

// Invalidate removes the line holding addr, returning its state and whether
// it was present. Victim-cache swaps use this to pull a line out of the
// cache without recording an eviction.
func (c *Cache) Invalidate(addr mem.Addr) (Line, bool) {
	i := c.findSlot(c.geom.Line(addr))
	if i < 0 {
		return Line{}, false
	}
	l := c.ways[i]
	c.ways[i] = Line{}
	return l, true
}

// LinesInSet returns copies of the valid lines currently in row s (under
// modulo indexing, exactly set s), for diagnostics and tests.
func (c *Cache) LinesInSet(s uint64) []Line {
	ways := c.ways[int(s)*c.assoc : (int(s)+1)*c.assoc]
	out := make([]Line, 0, len(ways))
	for _, l := range ways {
		if l.Valid {
			out = append(out, l)
		}
	}
	return out
}

// ValidLines returns the total number of valid lines in the cache.
func (c *Cache) ValidLines() int {
	n := 0
	for i := range c.ways {
		if c.ways[i].Valid {
			n++
		}
	}
	return n
}

// Flush invalidates every line (statistics are preserved).
func (c *Cache) Flush() {
	for i := range c.ways {
		c.ways[i] = Line{}
	}
}
