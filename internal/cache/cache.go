// Package cache implements the functional cache models underlying the
// reproduction: a set-associative write-back cache with true-LRU
// replacement and per-line conflict bits, and a fully-associative LRU cache
// used by the classic (oracle) miss classifier.
//
// The models here are purely functional — they track contents and
// replacement state, not time. Timing (banks, ports, buses, MSHRs) is
// layered on by internal/hier so the same functional model backs both the
// accuracy experiments (Figures 1–2) and the performance experiments
// (Figures 3–7).
package cache

import (
	"fmt"

	"repro/internal/mem"
)

// Config describes a cache shape.
type Config struct {
	// Name labels the cache in stats output (e.g. "L1D", "L2").
	Name string
	// Size is the total capacity in bytes.
	Size int
	// LineSize is the line size in bytes (the paper uses 64 everywhere).
	LineSize int
	// Assoc is the set associativity (1 = direct-mapped).
	Assoc int
}

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	if c.Size <= 0 || c.LineSize <= 0 || c.Assoc <= 0 {
		return fmt.Errorf("cache %q: size, line size, and associativity must be positive", c.Name)
	}
	if c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("cache %q: line size %d is not a power of two", c.Name, c.LineSize)
	}
	lines := c.Size / c.LineSize
	if lines*c.LineSize != c.Size {
		return fmt.Errorf("cache %q: size %d is not a multiple of line size %d", c.Name, c.Size, c.LineSize)
	}
	if lines%c.Assoc != 0 {
		return fmt.Errorf("cache %q: %d lines not divisible by associativity %d", c.Name, lines, c.Assoc)
	}
	sets := lines / c.Assoc
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %q: set count %d is not a power of two", c.Name, sets)
	}
	return nil
}

// Sets returns the number of sets implied by the configuration.
func (c Config) Sets() int { return c.Size / c.LineSize / c.Assoc }

// Line is one cache line's bookkeeping state. Data contents are not
// simulated; only presence, dirtiness, and the MCT conflict bit matter.
type Line struct {
	// Tag is the address tag (bits above the set index).
	Tag uint64
	// Valid marks the line as present.
	Valid bool
	// Dirty marks the line as modified (written back on eviction).
	Dirty bool
	// Conflict is the paper's per-line conflict bit: set when the line was
	// brought in by a miss the MCT classified as a conflict miss. The cache
	// stores it but never interprets it; policy code owns its meaning.
	Conflict bool

	lastUse uint64 // LRU timestamp; larger is more recent
}

// Eviction describes the line displaced by a fill. Occurred is false when
// the fill landed in an invalid (empty) way.
type Eviction struct {
	// Occurred reports whether a valid line was displaced.
	Occurred bool
	// Line is the line address of the displaced line.
	Line mem.LineAddr
	// Dirty reports whether the displaced line required a writeback.
	Dirty bool
	// Conflict is the displaced line's conflict bit at eviction time.
	Conflict bool
}

// Stats counts the cache's functional events.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	LoadMisses uint64
	Stores     uint64
	Fills      uint64
	Evictions  uint64
	Writebacks uint64
}

// HitRate returns hits/accesses.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// MissRate returns misses/accesses.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is a set-associative, write-back, write-allocate cache with true
// LRU replacement.
type Cache struct {
	cfg   Config
	geom  mem.Geometry
	assoc int
	ways  []Line // sets*assoc lines; set s occupies ways[s*assoc : (s+1)*assoc]
	clock uint64
	stats Stats
}

// New constructs a cache from a validated configuration.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	geom, err := mem.NewGeometry(cfg.LineSize, cfg.Sets())
	if err != nil {
		return nil, fmt.Errorf("cache %q: %w", cfg.Name, err)
	}
	return &Cache{
		cfg:   cfg,
		geom:  geom,
		assoc: cfg.Assoc,
		ways:  make([]Line, cfg.Sets()*cfg.Assoc),
	}, nil
}

// MustNew is New that panics on error, for fixed test/example shapes.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Geometry returns the address decomposition for this cache.
func (c *Cache) Geometry() mem.Geometry { return c.geom }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats clears the counters without touching contents. Experiments use
// this to discard cache-warming effects when a warmup phase is configured.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// set returns the slice of ways backing set s.
func (c *Cache) set(s uint64) []Line {
	return c.ways[int(s)*c.assoc : (int(s)+1)*c.assoc]
}

// findWay returns the index within the set of the valid line with the given
// tag, or -1.
func findWay(set []Line, tag uint64) int {
	for i := range set {
		if set[i].Valid && set[i].Tag == tag {
			return i
		}
	}
	return -1
}

// Access performs a demand access at addr: on a hit it updates LRU (and the
// dirty bit for stores) and returns true; on a miss it returns false and
// leaves the cache unmodified — the caller decides whether and how to Fill,
// which is what lets assist buffers and exclusion policies interpose.
func (c *Cache) Access(addr mem.Addr, isStore bool) bool {
	c.stats.Accesses++
	if isStore {
		c.stats.Stores++
	}
	set := c.geom.Set(addr)
	tag := c.geom.Tag(addr)
	ways := c.set(set)
	w := findWay(ways, tag)
	if w < 0 {
		c.stats.Misses++
		if !isStore {
			c.stats.LoadMisses++
		}
		return false
	}
	c.stats.Hits++
	c.clock++
	ways[w].lastUse = c.clock
	if isStore {
		ways[w].Dirty = true
	}
	return true
}

// Contains reports whether the line holding addr is present, without
// touching LRU state or statistics.
func (c *Cache) Contains(addr mem.Addr) bool {
	return findWay(c.set(c.geom.Set(addr)), c.geom.Tag(addr)) >= 0
}

// ConflictBit returns the conflict bit of the line holding addr and whether
// the line is present.
func (c *Cache) ConflictBit(addr mem.Addr) (bit, present bool) {
	ways := c.set(c.geom.Set(addr))
	w := findWay(ways, c.geom.Tag(addr))
	if w < 0 {
		return false, false
	}
	return ways[w].Conflict, true
}

// SetConflictBit overwrites the conflict bit of the line holding addr,
// reporting whether the line was present.
func (c *Cache) SetConflictBit(addr mem.Addr, bit bool) bool {
	ways := c.set(c.geom.Set(addr))
	w := findWay(ways, c.geom.Tag(addr))
	if w < 0 {
		return false
	}
	ways[w].Conflict = bit
	return true
}

// VictimCandidate returns a copy of the line that a Fill to addr's set
// would displace right now (the LRU valid line), and whether the fill would
// displace anything at all. Policies that must decide before filling (e.g.
// exclusion) use this preview.
func (c *Cache) VictimCandidate(addr mem.Addr) (Line, bool) {
	ways := c.set(c.geom.Set(addr))
	victim := -1
	for i := range ways {
		if !ways[i].Valid {
			return Line{}, false
		}
		if victim < 0 || ways[i].lastUse < ways[victim].lastUse {
			victim = i
		}
	}
	return ways[victim], true
}

// Fill inserts the line containing addr, marking it dirty if the triggering
// access was a store and recording the conflict bit supplied by the MCT
// policy layer. It returns the eviction that made room. Filling a line that
// is already present refreshes its LRU position and returns no eviction
// (this happens when a prefetch lands for a line a demand miss also
// fetched).
func (c *Cache) Fill(addr mem.Addr, isStore, conflict bool) Eviction {
	set := c.geom.Set(addr)
	tag := c.geom.Tag(addr)
	ways := c.set(set)
	c.clock++
	if w := findWay(ways, tag); w >= 0 {
		ways[w].lastUse = c.clock
		if isStore {
			ways[w].Dirty = true
		}
		return Eviction{}
	}
	c.stats.Fills++
	victim := -1
	for i := range ways {
		if !ways[i].Valid {
			victim = i
			break
		}
		if victim < 0 || ways[i].lastUse < ways[victim].lastUse {
			victim = i
		}
	}
	var ev Eviction
	if ways[victim].Valid {
		c.stats.Evictions++
		if ways[victim].Dirty {
			c.stats.Writebacks++
		}
		ev = Eviction{
			Occurred: true,
			Line:     mem.LineAddr(uint64(ways[victim].Tag)<<uint64Log2(c.geom.Sets()) | set),
			Dirty:    ways[victim].Dirty,
			Conflict: ways[victim].Conflict,
		}
	}
	ways[victim] = Line{Tag: tag, Valid: true, Dirty: isStore, Conflict: conflict, lastUse: c.clock}
	return ev
}

// Invalidate removes the line holding addr, returning its state and whether
// it was present. Victim-cache swaps use this to pull a line out of the
// cache without recording an eviction.
func (c *Cache) Invalidate(addr mem.Addr) (Line, bool) {
	ways := c.set(c.geom.Set(addr))
	w := findWay(ways, c.geom.Tag(addr))
	if w < 0 {
		return Line{}, false
	}
	l := ways[w]
	ways[w] = Line{}
	return l, true
}

// LinesInSet returns copies of the valid lines currently in set s, for
// diagnostics and tests.
func (c *Cache) LinesInSet(s uint64) []Line {
	ways := c.set(s)
	out := make([]Line, 0, len(ways))
	for _, l := range ways {
		if l.Valid {
			out = append(out, l)
		}
	}
	return out
}

// ValidLines returns the total number of valid lines in the cache.
func (c *Cache) ValidLines() int {
	n := 0
	for i := range c.ways {
		if c.ways[i].Valid {
			n++
		}
	}
	return n
}

// Flush invalidates every line (statistics are preserved).
func (c *Cache) Flush() {
	for i := range c.ways {
		c.ways[i] = Line{}
	}
}

// uint64Log2 returns log2 of a positive power of two as a shift amount.
func uint64Log2(v int) uint {
	n := uint(0)
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
