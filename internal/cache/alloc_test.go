package cache

import (
	"testing"

	"repro/internal/mem"
)

// Allocation-regression tests: the simulation hot paths must be
// allocation-free in steady state, or experiment throughput collapses
// under GC pressure. These pin the zero with testing.AllocsPerRun; the
// matching benchmarks (bench_test.go, internal/perf) report the same
// number as a column. "Steady state" means after warmup — the first
// touch of a set or the arena growing to capacity may allocate, the
// millionth access may not.

func allocTestConfig() Config {
	return Config{Name: "L1D", Size: 16 << 10, LineSize: 64, Assoc: 1}
}

func TestCacheAccessSteadyStateAllocs(t *testing.T) {
	for _, scheme := range []IndexScheme{IndexModulo, IndexSkewed, IndexRandom} {
		t.Run(scheme.String(), func(t *testing.T) {
			cfg := allocTestConfig()
			cfg.Assoc = 2
			cfg.Indexing = scheme
			c := MustNew(cfg)
			addrs := []mem.Addr{0x1000, 0x20000, 0x24000, 0x103000}
			for _, a := range addrs {
				if !c.Access(a, mem.Load) {
					c.Fill(a, false, false)
				}
			}
			i := 0
			if avg := testing.AllocsPerRun(1000, func() {
				a := addrs[i%len(addrs)]
				if !c.Access(a, mem.Load) {
					c.Fill(a, false, false)
				}
				i++
			}); avg != 0 {
				t.Fatalf("Cache.Access/Fill steady state allocates %v allocs/op, want 0", avg)
			}
		})
	}
}

func TestFAReferenceSteadyStateAllocs(t *testing.T) {
	fa := NewFullyAssociative(256)
	// Warm past capacity so every Reference below churns the eviction
	// path too, not just the move-to-front path.
	for l := mem.LineAddr(0); l < 512; l++ {
		fa.Reference(l)
	}
	i := 0
	if avg := testing.AllocsPerRun(1000, func() {
		fa.Reference(mem.LineAddr(i & 511))
		i++
	}); avg != 0 {
		t.Fatalf("FullyAssociative.Reference steady state allocates %v allocs/op, want 0", avg)
	}
}
