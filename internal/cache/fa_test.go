package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func TestFAReferenceBasics(t *testing.T) {
	f := NewFullyAssociative(2)
	if f.Reference(1) {
		t.Fatal("cold reference should miss")
	}
	if !f.Reference(1) {
		t.Fatal("repeat reference should hit")
	}
	f.Reference(2)
	f.Reference(3) // evicts 1 (LRU)
	if f.Contains(1) {
		t.Error("1 should have been evicted")
	}
	if !f.Contains(2) || !f.Contains(3) {
		t.Error("2 and 3 should be resident")
	}
	if f.Hits() != 1 || f.Misses() != 3 {
		t.Errorf("hits=%d misses=%d", f.Hits(), f.Misses())
	}
}

func TestFALRUOrder(t *testing.T) {
	f := NewFullyAssociative(3)
	f.Reference(1)
	f.Reference(2)
	f.Reference(3)
	f.Reference(1) // 1 -> MRU; LRU is 2
	if lru, ok := f.LRU(); !ok || lru != 2 {
		t.Errorf("LRU = %d, want 2", lru)
	}
	lines := f.Lines()
	if len(lines) != 3 || lines[0] != 1 || lines[2] != 2 {
		t.Errorf("MRU..LRU = %v", lines)
	}
}

func TestFAInsertEvictsLRU(t *testing.T) {
	f := NewFullyAssociative(2)
	f.Insert(10)
	f.Insert(20)
	ev, ok := f.Insert(30)
	if !ok || ev != 10 {
		t.Errorf("evicted %d ok=%v, want 10", ev, ok)
	}
	// Inserting a present line refreshes without eviction.
	if _, ok := f.Insert(20); ok {
		t.Error("re-insert must not evict")
	}
}

func TestFATouchAndRemove(t *testing.T) {
	f := NewFullyAssociative(2)
	f.Insert(1)
	f.Insert(2)
	if !f.Touch(1) { // 2 becomes LRU
		t.Fatal("touch of present line failed")
	}
	if f.Touch(99) {
		t.Error("touch of absent line should fail")
	}
	if lru, _ := f.LRU(); lru != 2 {
		t.Errorf("LRU = %d, want 2", lru)
	}
	if !f.Remove(2) || f.Remove(2) {
		t.Error("remove semantics wrong")
	}
	if f.Len() != 1 {
		t.Errorf("Len = %d", f.Len())
	}
}

func TestFAReset(t *testing.T) {
	f := NewFullyAssociative(4)
	f.Reference(1)
	f.Reference(1)
	f.Reset()
	if f.Len() != 0 || f.Hits() != 0 || f.Misses() != 0 {
		t.Error("reset should clear contents and counters")
	}
}

// TestFAInclusionProperty verifies the stack (inclusion) property of LRU:
// for the same reference stream, every hit in a smaller LRU cache is also
// a hit in a larger one. The classic conflict/capacity taxonomy depends on
// this property.
func TestFAInclusionProperty(t *testing.T) {
	f := func(refs []uint8) bool {
		small := NewFullyAssociative(4)
		large := NewFullyAssociative(16)
		for _, r := range refs {
			line := mem.LineAddr(r % 64)
			hitS := small.Reference(line)
			hitL := large.Reference(line)
			if hitS && !hitL {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestFANeverExceedsCapacity is a property over arbitrary operation mixes.
func TestFANeverExceedsCapacity(t *testing.T) {
	f := func(ops []uint16) bool {
		fa := NewFullyAssociative(8)
		for _, op := range ops {
			line := mem.LineAddr(op & 0xff)
			switch op >> 14 {
			case 0, 1:
				fa.Reference(line)
			case 2:
				fa.Insert(line)
			default:
				fa.Remove(line)
			}
			if fa.Len() > 8 {
				return false
			}
		}
		// The recency list and the map must agree in size.
		return len(fa.Lines()) == fa.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFAWorkingSetFitsNoEviction(t *testing.T) {
	f := NewFullyAssociative(64)
	// Cyclic references over 32 lines fit: after warmup, all hits.
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < 32; i++ {
			hit := f.Reference(mem.LineAddr(i))
			if pass > 0 && !hit {
				t.Fatalf("pass %d line %d missed in fitting working set", pass, i)
			}
		}
	}
	// Cyclic references over 65 lines thrash: all misses in steady state.
	g := NewFullyAssociative(64)
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < 65; i++ {
			hit := g.Reference(mem.LineAddr(i))
			if pass > 0 && hit {
				t.Fatalf("pass %d line %d hit in thrashing working set", pass, i)
			}
		}
	}
}
