package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func TestFAReferenceBasics(t *testing.T) {
	f := NewFullyAssociative(2)
	if f.Reference(1) {
		t.Fatal("cold reference should miss")
	}
	if !f.Reference(1) {
		t.Fatal("repeat reference should hit")
	}
	f.Reference(2)
	f.Reference(3) // evicts 1 (LRU)
	if f.Contains(1) {
		t.Error("1 should have been evicted")
	}
	if !f.Contains(2) || !f.Contains(3) {
		t.Error("2 and 3 should be resident")
	}
	if f.Hits() != 1 || f.Misses() != 3 {
		t.Errorf("hits=%d misses=%d", f.Hits(), f.Misses())
	}
}

func TestFALRUOrder(t *testing.T) {
	f := NewFullyAssociative(3)
	f.Reference(1)
	f.Reference(2)
	f.Reference(3)
	f.Reference(1) // 1 -> MRU; LRU is 2
	if lru, ok := f.LRU(); !ok || lru != 2 {
		t.Errorf("LRU = %d, want 2", lru)
	}
	lines := f.Lines()
	if len(lines) != 3 || lines[0] != 1 || lines[2] != 2 {
		t.Errorf("MRU..LRU = %v", lines)
	}
}

func TestFAInsertEvictsLRU(t *testing.T) {
	f := NewFullyAssociative(2)
	f.Insert(10)
	f.Insert(20)
	ev, ok := f.Insert(30)
	if !ok || ev != 10 {
		t.Errorf("evicted %d ok=%v, want 10", ev, ok)
	}
	// Inserting a present line refreshes without eviction.
	if _, ok := f.Insert(20); ok {
		t.Error("re-insert must not evict")
	}
}

func TestFATouchAndRemove(t *testing.T) {
	f := NewFullyAssociative(2)
	f.Insert(1)
	f.Insert(2)
	if !f.Touch(1) { // 2 becomes LRU
		t.Fatal("touch of present line failed")
	}
	if f.Touch(99) {
		t.Error("touch of absent line should fail")
	}
	if lru, _ := f.LRU(); lru != 2 {
		t.Errorf("LRU = %d, want 2", lru)
	}
	if !f.Remove(2) || f.Remove(2) {
		t.Error("remove semantics wrong")
	}
	if f.Len() != 1 {
		t.Errorf("Len = %d", f.Len())
	}
}

func TestFAReset(t *testing.T) {
	f := NewFullyAssociative(4)
	f.Reference(1)
	f.Reference(1)
	f.Reset()
	if f.Len() != 0 || f.Hits() != 0 || f.Misses() != 0 {
		t.Error("reset should clear contents and counters")
	}
}

// TestFAInclusionProperty verifies the stack (inclusion) property of LRU:
// for the same reference stream, every hit in a smaller LRU cache is also
// a hit in a larger one. The classic conflict/capacity taxonomy depends on
// this property.
func TestFAInclusionProperty(t *testing.T) {
	f := func(refs []uint8) bool {
		small := NewFullyAssociative(4)
		large := NewFullyAssociative(16)
		for _, r := range refs {
			line := mem.LineAddr(r % 64)
			hitS := small.Reference(line)
			hitL := large.Reference(line)
			if hitS && !hitL {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestFANeverExceedsCapacity is a property over arbitrary operation mixes.
func TestFANeverExceedsCapacity(t *testing.T) {
	f := func(ops []uint16) bool {
		fa := NewFullyAssociative(8)
		for _, op := range ops {
			line := mem.LineAddr(op & 0xff)
			switch op >> 14 {
			case 0, 1:
				fa.Reference(line)
			case 2:
				fa.Insert(line)
			default:
				fa.Remove(line)
			}
			if fa.Len() > 8 {
				return false
			}
		}
		// The recency list and the map must agree in size.
		return len(fa.Lines()) == fa.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFAWorkingSetFitsNoEviction(t *testing.T) {
	f := NewFullyAssociative(64)
	// Cyclic references over 32 lines fit: after warmup, all hits.
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < 32; i++ {
			hit := f.Reference(mem.LineAddr(i))
			if pass > 0 && !hit {
				t.Fatalf("pass %d line %d missed in fitting working set", pass, i)
			}
		}
	}
	// Cyclic references over 65 lines thrash: all misses in steady state.
	g := NewFullyAssociative(64)
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < 65; i++ {
			hit := g.Reference(mem.LineAddr(i))
			if pass > 0 && hit {
				t.Fatalf("pass %d line %d hit in thrashing working set", pass, i)
			}
		}
	}
}

// TestFAInsertLineZero pins the Insert contract: a no-eviction insert
// returns (0, false), and 0 is also a valid line address, so the evicted
// value is meaningful ONLY when ok is true. Line 0 must survive the round
// trip through an eviction undamaged.
func TestFAInsertLineZero(t *testing.T) {
	f := NewFullyAssociative(2)
	// Inserting into a non-full cache: ok must be false even though the
	// returned line value is 0.
	if ev, ok := f.Insert(0); ok || ev != 0 {
		t.Fatalf("Insert(0) into empty cache = (%d, %v), want (0, false)", ev, ok)
	}
	if !f.Contains(0) {
		t.Fatal("line 0 not resident after insert")
	}
	f.Insert(7)
	// Now line 0 is LRU; the next insert must report evicted == 0 WITH
	// ok == true — indistinguishable from the no-eviction return except
	// through ok.
	ev, ok := f.Insert(9)
	if !ok || ev != 0 {
		t.Fatalf("Insert(9) = (%d, %v), want (0, true): line 0 evicted", ev, ok)
	}
	if f.Contains(0) {
		t.Fatal("line 0 still resident after eviction")
	}
	// Referencing line 0 again must work (miss, then hit).
	if f.Reference(0) {
		t.Fatal("evicted line 0 should miss")
	}
	if !f.Reference(0) {
		t.Fatal("re-inserted line 0 should hit")
	}
}

// faRef is a trivially-correct reference model: a slice ordered MRU-first.
type faRef struct {
	capacity int
	lines    []mem.LineAddr
}

func (r *faRef) find(line mem.LineAddr) int {
	for i, l := range r.lines {
		if l == line {
			return i
		}
	}
	return -1
}

func (r *faRef) reference(line mem.LineAddr) bool {
	if i := r.find(line); i >= 0 {
		r.lines = append([]mem.LineAddr{line}, append(r.lines[:i:i], r.lines[i+1:]...)...)
		return true
	}
	r.lines = append([]mem.LineAddr{line}, r.lines...)
	if len(r.lines) > r.capacity {
		r.lines = r.lines[:r.capacity]
	}
	return false
}

func (r *faRef) remove(line mem.LineAddr) bool {
	if i := r.find(line); i >= 0 {
		r.lines = append(r.lines[:i:i], r.lines[i+1:]...)
		return true
	}
	return false
}

// TestFADifferential drives the arena + open-addressing implementation and
// the reference model with the same randomized operation stream and
// demands identical observable state after every step. This is the guard
// on the hash table's backward-shift deletion, the most delicate piece of
// the allocation-free rewrite.
func TestFADifferential(t *testing.T) {
	for _, capacity := range []int{1, 2, 3, 8, 64} {
		fa := NewFullyAssociative(capacity)
		ref := &faRef{capacity: capacity}
		x := uint64(12345)
		for step := 0; step < 50000; step++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			// Small line space forces constant eviction/reinsert churn;
			// occasional huge lines exercise hash mixing of sparse bits.
			line := mem.LineAddr(x % 97)
			if x%31 == 0 {
				line = mem.LineAddr(x >> 8)
			}
			switch x % 5 {
			case 0, 1, 2:
				got, want := fa.Reference(line), ref.reference(line)
				if got != want {
					t.Fatalf("cap %d step %d: Reference(%d) = %v, ref %v", capacity, step, line, got, want)
				}
			case 3:
				got, want := fa.Remove(line), ref.remove(line)
				if got != want {
					t.Fatalf("cap %d step %d: Remove(%d) = %v, ref %v", capacity, step, line, got, want)
				}
			default:
				got, want := fa.Contains(line), ref.find(line) >= 0
				if got != want {
					t.Fatalf("cap %d step %d: Contains(%d) = %v, ref %v", capacity, step, line, got, want)
				}
			}
			if fa.Len() != len(ref.lines) {
				t.Fatalf("cap %d step %d: Len = %d, ref %d", capacity, step, fa.Len(), len(ref.lines))
			}
			if step%100 == 0 {
				got := fa.Lines()
				if len(got) != len(ref.lines) {
					t.Fatalf("cap %d step %d: Lines len %d, ref %d", capacity, step, len(got), len(ref.lines))
				}
				for i := range got {
					if got[i] != ref.lines[i] {
						t.Fatalf("cap %d step %d: Lines[%d] = %d, ref %d (full %v vs %v)",
							capacity, step, i, got[i], ref.lines[i], got, ref.lines)
					}
				}
				if lru, ok := fa.LRU(); ok != (len(ref.lines) > 0) ||
					(ok && lru != ref.lines[len(ref.lines)-1]) {
					t.Fatalf("cap %d step %d: LRU = %d/%v, ref %v", capacity, step, lru, ok, ref.lines)
				}
			}
		}
	}
}

// TestFAResetReuse verifies Reset returns the structure to a fresh state
// without losing the preallocated arena/table (steady-state reuse).
func TestFAResetReuse(t *testing.T) {
	f := NewFullyAssociative(8)
	for i := 0; i < 100; i++ {
		f.Reference(mem.LineAddr(i))
	}
	f.Reset()
	if f.Len() != 0 {
		t.Fatalf("Len after Reset = %d", f.Len())
	}
	for i := 0; i < 8; i++ {
		if f.Reference(mem.LineAddr(i)) {
			t.Fatalf("line %d hit in reset cache", i)
		}
	}
	for i := 0; i < 8; i++ {
		if !f.Reference(mem.LineAddr(i)) {
			t.Fatalf("line %d missed after refill", i)
		}
	}
}
