package cache

import "repro/internal/mem"

// FullyAssociative is a fully-associative cache over line addresses with
// true LRU replacement, implemented as an open-addressing hash index plus
// an intrusive doubly-linked recency list. It backs the classic (Hill)
// miss classifier: a reference that misses a set-associative cache but
// hits a fully-associative LRU cache of equal capacity is a conflict miss.
//
// The structure is also reused directly as the storage for the small
// fully-associative assist buffers (victim/prefetch/bypass), which the
// paper sizes at 8–16 entries.
//
// Everything lives in two contiguous slabs allocated at construction:
// an arena of nodes linked by int32 indices (no per-entry heap nodes),
// and a pointer-free linear-probing hash table mapping line -> arena
// index (no map inserts on the hot path). Capacity is fixed, so the
// table is sized once, never grows, and every operation — Reference,
// Insert, Remove — performs zero heap allocations. This is the oracle
// classifier's per-access workload, so the constant factors here bound
// every accuracy experiment's throughput.
type FullyAssociative struct {
	capacity int
	len      int
	index    faTable
	nodes    []faNode // arena; len == capacity, allocated once
	head     int32    // most recently used, faNil if empty
	tail     int32    // least recently used, faNil if empty
	free     int32    // head of the free list, chained through next

	hits, misses uint64
}

// faNil is the arena's (and the hash table's) null index.
const faNil int32 = -1

type faNode struct {
	line       mem.LineAddr
	prev, next int32
}

// faTable is a fixed-size linear-probing hash table from line address to
// arena index. Slots are pointer-free, deletion uses backward shifting
// (no tombstones), and the table is sized to at most 25% load so probe
// sequences stay short.
type faTable struct {
	mask  uint64
	slots []faSlot
}

type faSlot struct {
	line mem.LineAddr
	idx  int32 // faNil = empty
}

// newFATable sizes the table to the smallest power of two holding capacity
// entries at <= 25% load (minimum 8 slots).
func newFATable(capacity int) faTable {
	size := 8
	for size < 4*capacity {
		size <<= 1
	}
	t := faTable{mask: uint64(size - 1), slots: make([]faSlot, size)}
	for i := range t.slots {
		t.slots[i].idx = faNil
	}
	return t
}

// home returns the line's preferred slot (Fibonacci hashing: multiply by
// the 64-bit golden ratio and keep the top bits, which mixes the sparse
// high bits of line addresses into the table's low index bits).
func (t *faTable) home(line mem.LineAddr) uint64 {
	h := uint64(line) * 0x9E3779B97F4A7C15
	return (h >> 32) & t.mask
}

// get returns the arena index stored for line, or faNil.
func (t *faTable) get(line mem.LineAddr) int32 {
	for i := t.home(line); ; i = (i + 1) & t.mask {
		s := &t.slots[i]
		if s.idx == faNil {
			return faNil
		}
		if s.line == line {
			return s.idx
		}
	}
}

// put inserts line -> idx. line must not be present.
func (t *faTable) put(line mem.LineAddr, idx int32) {
	for i := t.home(line); ; i = (i + 1) & t.mask {
		if t.slots[i].idx == faNil {
			t.slots[i] = faSlot{line: line, idx: idx}
			return
		}
	}
}

// del removes line, which must be present, compacting the probe cluster by
// backward shifting so lookups never need tombstones.
func (t *faTable) del(line mem.LineAddr) {
	i := t.home(line)
	for t.slots[i].line != line || t.slots[i].idx == faNil {
		i = (i + 1) & t.mask
	}
	// Shift later cluster members back if they can no longer be reached
	// from their home slot once slot i empties.
	j := i
	for {
		t.slots[i].idx = faNil
		for {
			j = (j + 1) & t.mask
			s := t.slots[j]
			if s.idx == faNil {
				return
			}
			// s belongs at home(s.line); it may stay at j only if its home
			// lies cyclically after the hole at i.
			if (j-t.home(s.line))&t.mask >= (j-i)&t.mask {
				t.slots[i] = s
				i = j
				break
			}
		}
	}
}

// reset empties the table in place.
func (t *faTable) reset() {
	for i := range t.slots {
		t.slots[i].idx = faNil
	}
}

// NewFullyAssociative creates a fully-associative LRU cache holding up to
// capacity lines. Capacity must be positive.
func NewFullyAssociative(capacity int) *FullyAssociative {
	if capacity <= 0 {
		panic("cache: fully-associative capacity must be positive")
	}
	f := &FullyAssociative{
		capacity: capacity,
		index:    newFATable(capacity),
		nodes:    make([]faNode, capacity),
		head:     faNil,
		tail:     faNil,
	}
	f.rebuildFreeList()
	return f
}

// rebuildFreeList chains every arena slot onto the free list.
func (f *FullyAssociative) rebuildFreeList() {
	for i := range f.nodes {
		f.nodes[i] = faNode{next: int32(i) + 1, prev: faNil}
	}
	f.nodes[len(f.nodes)-1].next = faNil
	f.free = 0
}

// Capacity returns the maximum number of lines held.
func (f *FullyAssociative) Capacity() int { return f.capacity }

// Len returns the number of lines currently held.
func (f *FullyAssociative) Len() int { return f.len }

// Hits and Misses return the access counters maintained by Reference.
func (f *FullyAssociative) Hits() uint64   { return f.hits }
func (f *FullyAssociative) Misses() uint64 { return f.misses }

// Reference performs an LRU reference to line: on hit the line moves to
// MRU and Reference returns true; on miss the line is inserted (evicting
// LRU if full) and Reference returns false. This single operation is the
// oracle classifier's whole per-access workload.
func (f *FullyAssociative) Reference(line mem.LineAddr) bool {
	if n := f.index.get(line); n != faNil {
		f.hits++
		f.moveToFront(n)
		return true
	}
	f.misses++
	// The line is known absent; skip Insert's presence probe.
	f.evictIfFull()
	f.insertFront(line)
	return false
}

// ReferenceBatch performs one LRU reference per line, recording each hit
// verdict in hits (which must be at least as long as lines). References
// are applied in slice order — the recency each reference observes
// includes every earlier reference in the batch, exactly as if Reference
// had been called in a loop. The batch entry point exists to amortize call
// overhead in the oracle classifier's struct-of-arrays kernel.
func (f *FullyAssociative) ReferenceBatch(lines []mem.LineAddr, hits []bool) {
	if len(lines) == 0 {
		return
	}
	hits = hits[:len(lines)]
	for i, line := range lines {
		hits[i] = f.Reference(line)
	}
}

// Contains reports presence without updating recency.
func (f *FullyAssociative) Contains(line mem.LineAddr) bool {
	return f.index.get(line) != faNil
}

// Touch moves line to MRU if present, reporting whether it was.
func (f *FullyAssociative) Touch(line mem.LineAddr) bool {
	n := f.index.get(line)
	if n == faNil {
		return false
	}
	f.moveToFront(n)
	return true
}

// Insert adds line at MRU, evicting the LRU line if full. It returns the
// evicted line and whether an eviction happened. Inserting a present line
// just refreshes it.
//
// Contract: callers MUST check ok before using evicted. A no-eviction
// insert returns (0, false), and 0 is itself a valid line address — the
// line of byte address 0 — so the zero value alone cannot distinguish "no
// eviction" from "evicted line 0". See TestFAInsertLineZero.
func (f *FullyAssociative) Insert(line mem.LineAddr) (evicted mem.LineAddr, ok bool) {
	if n := f.index.get(line); n != faNil {
		f.moveToFront(n)
		return 0, false
	}
	evicted, ok = f.evictIfFull()
	f.insertFront(line)
	return evicted, ok
}

// evictIfFull evicts the LRU line when the cache is at capacity, returning
// it and whether an eviction happened.
func (f *FullyAssociative) evictIfFull() (evicted mem.LineAddr, ok bool) {
	if f.len < f.capacity {
		return 0, false
	}
	lru := f.tail
	f.removeNode(lru)
	line := f.nodes[lru].line
	f.index.del(line)
	f.len--
	f.nodes[lru].next = f.free
	f.free = lru
	return line, true
}

// Remove deletes line, reporting whether it was present.
func (f *FullyAssociative) Remove(line mem.LineAddr) bool {
	n := f.index.get(line)
	if n == faNil {
		return false
	}
	f.removeNode(n)
	f.index.del(line)
	f.len--
	f.nodes[n].next = f.free
	f.free = n
	return true
}

// LRU returns the least-recently-used line, if any.
func (f *FullyAssociative) LRU() (mem.LineAddr, bool) {
	if f.tail == faNil {
		return 0, false
	}
	return f.nodes[f.tail].line, true
}

// Lines returns the resident lines from MRU to LRU order.
func (f *FullyAssociative) Lines() []mem.LineAddr {
	out := make([]mem.LineAddr, 0, f.len)
	for n := f.head; n != faNil; n = f.nodes[n].next {
		out = append(out, f.nodes[n].line)
	}
	return out
}

// Reset empties the cache and clears counters. The arena and hash table
// are retained, so a reused cache re-fills without allocating.
func (f *FullyAssociative) Reset() {
	f.index.reset()
	f.len = 0
	f.head, f.tail = faNil, faNil
	f.rebuildFreeList()
	f.hits, f.misses = 0, 0
}

func (f *FullyAssociative) insertFront(line mem.LineAddr) {
	if f.free == faNil {
		// Caller must have evicted first; enforce the invariant loudly.
		panic("cache: fully-associative insert past capacity")
	}
	n := f.free
	f.free = f.nodes[n].next
	f.nodes[n] = faNode{line: line, prev: faNil, next: f.head}
	f.index.put(line, n)
	f.len++
	if f.head != faNil {
		f.nodes[f.head].prev = n
	}
	f.head = n
	if f.tail == faNil {
		f.tail = n
	}
}

func (f *FullyAssociative) moveToFront(n int32) {
	if f.head == n {
		return
	}
	f.removeNode(n)
	f.nodes[n].prev, f.nodes[n].next = faNil, f.head
	if f.head != faNil {
		f.nodes[f.head].prev = n
	}
	f.head = n
	if f.tail == faNil {
		f.tail = n
	}
}

func (f *FullyAssociative) removeNode(n int32) {
	node := &f.nodes[n]
	if node.prev != faNil {
		f.nodes[node.prev].next = node.next
	} else {
		f.head = node.next
	}
	if node.next != faNil {
		f.nodes[node.next].prev = node.prev
	} else {
		f.tail = node.prev
	}
	node.prev, node.next = faNil, faNil
}
