package cache

import "repro/internal/mem"

// FullyAssociative is a fully-associative cache over line addresses with
// true LRU replacement, implemented as a hash map plus an intrusive
// doubly-linked recency list. It backs the classic (Hill) miss classifier:
// a reference that misses a set-associative cache but hits a
// fully-associative LRU cache of equal capacity is a conflict miss.
//
// The structure is also reused directly as the storage for the small
// fully-associative assist buffers (victim/prefetch/bypass), which the
// paper sizes at 8–16 entries.
type FullyAssociative struct {
	capacity int
	entries  map[mem.LineAddr]*faNode
	head     *faNode // most recently used
	tail     *faNode // least recently used
	free     []*faNode

	hits, misses uint64
}

type faNode struct {
	line       mem.LineAddr
	prev, next *faNode
}

// NewFullyAssociative creates a fully-associative LRU cache holding up to
// capacity lines. Capacity must be positive.
func NewFullyAssociative(capacity int) *FullyAssociative {
	if capacity <= 0 {
		panic("cache: fully-associative capacity must be positive")
	}
	f := &FullyAssociative{
		capacity: capacity,
		entries:  make(map[mem.LineAddr]*faNode, capacity),
	}
	return f
}

// Capacity returns the maximum number of lines held.
func (f *FullyAssociative) Capacity() int { return f.capacity }

// Len returns the number of lines currently held.
func (f *FullyAssociative) Len() int { return len(f.entries) }

// Hits and Misses return the access counters maintained by Reference.
func (f *FullyAssociative) Hits() uint64   { return f.hits }
func (f *FullyAssociative) Misses() uint64 { return f.misses }

// Reference performs an LRU reference to line: on hit the line moves to
// MRU and Reference returns true; on miss the line is inserted (evicting
// LRU if full) and Reference returns false. This single operation is the
// oracle classifier's whole per-access workload.
func (f *FullyAssociative) Reference(line mem.LineAddr) bool {
	if n, ok := f.entries[line]; ok {
		f.hits++
		f.moveToFront(n)
		return true
	}
	f.misses++
	f.Insert(line)
	return false
}

// Contains reports presence without updating recency.
func (f *FullyAssociative) Contains(line mem.LineAddr) bool {
	_, ok := f.entries[line]
	return ok
}

// Touch moves line to MRU if present, reporting whether it was.
func (f *FullyAssociative) Touch(line mem.LineAddr) bool {
	n, ok := f.entries[line]
	if !ok {
		return false
	}
	f.moveToFront(n)
	return true
}

// Insert adds line at MRU, evicting the LRU line if full. It returns the
// evicted line and whether an eviction happened. Inserting a present line
// just refreshes it.
func (f *FullyAssociative) Insert(line mem.LineAddr) (evicted mem.LineAddr, ok bool) {
	if n, present := f.entries[line]; present {
		f.moveToFront(n)
		return 0, false
	}
	if len(f.entries) >= f.capacity {
		lru := f.tail
		f.remove(lru)
		delete(f.entries, lru.line)
		evicted, ok = lru.line, true
		f.free = append(f.free, lru)
	}
	f.insertFront(line)
	return evicted, ok
}

// Remove deletes line, reporting whether it was present.
func (f *FullyAssociative) Remove(line mem.LineAddr) bool {
	n, ok := f.entries[line]
	if !ok {
		return false
	}
	f.remove(n)
	delete(f.entries, line)
	f.free = append(f.free, n)
	return true
}

// LRU returns the least-recently-used line, if any.
func (f *FullyAssociative) LRU() (mem.LineAddr, bool) {
	if f.tail == nil {
		return 0, false
	}
	return f.tail.line, true
}

// Lines returns the resident lines from MRU to LRU order.
func (f *FullyAssociative) Lines() []mem.LineAddr {
	out := make([]mem.LineAddr, 0, len(f.entries))
	for n := f.head; n != nil; n = n.next {
		out = append(out, n.line)
	}
	return out
}

// Reset empties the cache and clears counters.
func (f *FullyAssociative) Reset() {
	f.entries = make(map[mem.LineAddr]*faNode, f.capacity)
	f.head, f.tail = nil, nil
	f.free = nil
	f.hits, f.misses = 0, 0
}

func (f *FullyAssociative) insertFront(line mem.LineAddr) {
	var n *faNode
	if len(f.free) > 0 {
		n = f.free[len(f.free)-1]
		f.free = f.free[:len(f.free)-1]
		*n = faNode{line: line}
	} else {
		n = &faNode{line: line}
	}
	if len(f.entries) >= f.capacity {
		// Caller must have evicted first; enforce the invariant loudly.
		panic("cache: fully-associative insert past capacity")
	}
	f.entries[line] = n
	n.next = f.head
	if f.head != nil {
		f.head.prev = n
	}
	f.head = n
	if f.tail == nil {
		f.tail = n
	}
}

func (f *FullyAssociative) moveToFront(n *faNode) {
	if f.head == n {
		return
	}
	f.remove(n)
	n.prev, n.next = nil, f.head
	if f.head != nil {
		f.head.prev = n
	}
	f.head = n
	if f.tail == nil {
		f.tail = n
	}
}

func (f *FullyAssociative) remove(n *faNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		f.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		f.tail = n.prev
	}
	n.prev, n.next = nil, nil
}
