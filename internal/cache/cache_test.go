package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func dmConfig() Config {
	return Config{Name: "t", Size: 16 * 1024, LineSize: 64, Assoc: 1}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Size: 0, LineSize: 64, Assoc: 1},
		{Size: 16384, LineSize: 0, Assoc: 1},
		{Size: 16384, LineSize: 64, Assoc: 0},
		{Size: 16384, LineSize: 60, Assoc: 1},  // line not power of two
		{Size: 16000, LineSize: 64, Assoc: 1},  // size not multiple of line
		{Size: 16384, LineSize: 64, Assoc: 3},  // sets not power of two (256/3)
		{Size: 12288, LineSize: 64, Assoc: 1},  // 192 sets
		{Size: 16384, LineSize: 64, Assoc: -1}, // negative
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: config %+v should be invalid", i, c)
		}
	}
	good := []Config{
		dmConfig(),
		{Size: 16384, LineSize: 64, Assoc: 2},
		{Size: 1 << 20, LineSize: 64, Assoc: 2},
		{Size: 64 * 1024, LineSize: 32, Assoc: 4},
	}
	for i, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("case %d: %v", i, err)
		}
	}
}

func TestSetsComputation(t *testing.T) {
	if got := dmConfig().Sets(); got != 256 {
		t.Errorf("16KB DM sets = %d, want 256", got)
	}
	c := Config{Size: 1 << 20, LineSize: 64, Assoc: 2}
	if got := c.Sets(); got != 8192 {
		t.Errorf("1MB 2-way sets = %d, want 8192", got)
	}
}

func TestMissThenFillThenHit(t *testing.T) {
	c := MustNew(dmConfig())
	addr := mem.Addr(0x1000)
	if c.Access(addr, mem.Load) {
		t.Fatal("cold cache should miss")
	}
	ev := c.Fill(addr, false, false)
	if ev.Occurred {
		t.Fatal("fill into empty set should not evict")
	}
	if !c.Access(addr, mem.Load) {
		t.Fatal("filled line should hit")
	}
	if !c.Access(addr+63, mem.Load) {
		t.Fatal("same line, different offset should hit")
	}
	if c.Access(addr+64, mem.Load) {
		t.Fatal("next line should miss")
	}
	st := c.Stats()
	if st.Accesses != 4 || st.Hits != 2 || st.Misses != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDirectMappedConflictEviction(t *testing.T) {
	c := MustNew(dmConfig())
	a, b := mem.Addr(0x0000), mem.Addr(0x4000) // alias 16KB apart
	c.Fill(a, false, true)
	ev := c.Fill(b, false, false)
	if !ev.Occurred {
		t.Fatal("aliasing fill must evict")
	}
	if ev.Line != c.Geometry().Line(a) {
		t.Errorf("evicted line %#x, want %#x", ev.Line, c.Geometry().Line(a))
	}
	if !ev.Conflict {
		t.Error("eviction should carry the victim's conflict bit")
	}
	if c.Contains(a) {
		t.Error("a should be gone")
	}
	if !c.Contains(b) {
		t.Error("b should be present")
	}
}

func TestDirtyEvictionWriteback(t *testing.T) {
	c := MustNew(dmConfig())
	a, b := mem.Addr(0x0000), mem.Addr(0x4000)
	c.Fill(a, true, false) // store-allocated => dirty
	ev := c.Fill(b, false, false)
	if !ev.Dirty {
		t.Error("dirty victim should report Dirty")
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("writebacks = %d", c.Stats().Writebacks)
	}
	// Store hit also dirties.
	c.Access(b, mem.Store)
	ev = c.Fill(a, false, false)
	if !ev.Dirty {
		t.Error("store-hit line should evict dirty")
	}
}

func TestLRUWithinSet(t *testing.T) {
	cfg := Config{Name: "t", Size: 16 * 1024, LineSize: 64, Assoc: 4}
	c := MustNew(cfg)
	// Four aliasing lines fill the set; touch them in order; a fifth evicts
	// the least recently touched.
	base := mem.Addr(0x10000)
	stride := mem.Addr(cfg.Size / cfg.Assoc) // 4KB aliases in a 4-way 16KB cache
	lines := []mem.Addr{base, base + stride, base + 2*stride, base + 3*stride}
	for _, a := range lines {
		c.Fill(a, false, false)
	}
	// Touch 0, 2, 3 so line 1 is LRU.
	c.Access(lines[0], mem.Load)
	c.Access(lines[2], mem.Load)
	c.Access(lines[3], mem.Load)
	ev := c.Fill(base+4*stride, false, false)
	if !ev.Occurred || ev.Line != c.Geometry().Line(lines[1]) {
		t.Errorf("evicted %#x, want LRU line %#x", ev.Line, c.Geometry().Line(lines[1]))
	}
}

func TestVictimCandidatePreview(t *testing.T) {
	c := MustNew(dmConfig())
	if _, full := c.VictimCandidate(0x4000); full {
		t.Error("empty set should have no victim")
	}
	c.Fill(0x0000, false, true)
	victim, full := c.VictimCandidate(0x4000)
	if !full {
		t.Fatal("full set should preview a victim")
	}
	if victim.Addr != c.Geometry().Line(0x0000) || !victim.Conflict {
		t.Errorf("victim preview = %+v", victim)
	}
	// Preview must not modify the cache.
	if !c.Contains(0x0000) {
		t.Error("VictimCandidate must not evict")
	}
}

func TestConflictBitAccessors(t *testing.T) {
	c := MustNew(dmConfig())
	a := mem.Addr(0x2000)
	if _, present := c.ConflictBit(a); present {
		t.Error("absent line should not report a bit")
	}
	c.Fill(a, false, false)
	if bit, present := c.ConflictBit(a); !present || bit {
		t.Errorf("bit=%v present=%v, want false/true", bit, present)
	}
	if !c.SetConflictBit(a, true) {
		t.Fatal("SetConflictBit on present line failed")
	}
	if bit, _ := c.ConflictBit(a); !bit {
		t.Error("bit should now be set")
	}
	if c.SetConflictBit(0x9999999, true) {
		t.Error("SetConflictBit on absent line should fail")
	}
}

func TestInvalidate(t *testing.T) {
	c := MustNew(dmConfig())
	a := mem.Addr(0x3000)
	c.Fill(a, true, true)
	l, ok := c.Invalidate(a)
	if !ok || !l.Dirty || !l.Conflict {
		t.Errorf("invalidate returned %+v ok=%v", l, ok)
	}
	if c.Contains(a) {
		t.Error("line should be gone after invalidate")
	}
	if _, ok := c.Invalidate(a); ok {
		t.Error("double invalidate should fail")
	}
}

func TestFillPresentLineRefreshes(t *testing.T) {
	cfg := Config{Name: "t", Size: 256, LineSize: 64, Assoc: 2} // 2 sets, 2 ways
	c := MustNew(cfg)
	a := mem.Addr(0)
	b := mem.Addr(128) // same set (set stride = 128)
	c.Fill(a, false, false)
	c.Fill(b, false, false)
	// Refresh a by re-filling; then a new alias should evict b (now LRU).
	if ev := c.Fill(a, false, false); ev.Occurred {
		t.Fatal("re-fill of present line must not evict")
	}
	ev := c.Fill(mem.Addr(256), false, false)
	if !ev.Occurred || ev.Line != c.Geometry().Line(b) {
		t.Errorf("refresh did not update LRU: evicted %#x", ev.Line)
	}
}

func TestFlushAndValidLines(t *testing.T) {
	c := MustNew(dmConfig())
	for i := 0; i < 10; i++ {
		c.Fill(mem.Addr(i*64), false, false)
	}
	if c.ValidLines() != 10 {
		t.Errorf("ValidLines = %d", c.ValidLines())
	}
	c.Flush()
	if c.ValidLines() != 0 {
		t.Error("flush should empty the cache")
	}
}

func TestLinesInSet(t *testing.T) {
	cfg := Config{Name: "t", Size: 16 * 1024, LineSize: 64, Assoc: 2}
	c := MustNew(cfg)
	c.Fill(0x0000, false, false)
	c.Fill(0x2000, false, true) // same set in 2-way 16KB (set span 8KB)
	ls := c.LinesInSet(0)
	if len(ls) != 2 {
		t.Fatalf("set 0 has %d lines, want 2", len(ls))
	}
}

// TestCacheNeverExceedsCapacity is a property test: any access/fill
// sequence keeps the valid-line count at or below the configured capacity
// and per-set occupancy at or below associativity.
func TestCacheNeverExceedsCapacity(t *testing.T) {
	cfg := Config{Name: "t", Size: 4096, LineSize: 64, Assoc: 2} // 32 sets
	f := func(addrs []uint16, stores []bool) bool {
		c := MustNew(cfg)
		for i, a := range addrs {
			addr := mem.Addr(a)
			isStore := i < len(stores) && stores[i]
			typ := mem.Load
			if isStore {
				typ = mem.Store
			}
			if !c.Access(addr, typ) {
				c.Fill(addr, isStore, i%2 == 0)
			}
		}
		if c.ValidLines() > cfg.Size/cfg.LineSize {
			return false
		}
		for s := 0; s < cfg.Sets(); s++ {
			if len(c.LinesInSet(uint64(s))) > cfg.Assoc {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestFillMakesHit is a property: after Fill(addr), Access(addr) hits.
func TestFillMakesHit(t *testing.T) {
	c := MustNew(dmConfig())
	f := func(a mem.Addr) bool {
		c.Fill(a, false, false)
		return c.Access(a, mem.Load)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestResetStatsPreservesContents(t *testing.T) {
	c := MustNew(dmConfig())
	c.Fill(0x1234, false, false)
	c.Access(0x1234, mem.Load)
	c.ResetStats()
	if c.Stats().Accesses != 0 {
		t.Error("stats should be cleared")
	}
	if !c.Contains(0x1234) {
		t.Error("contents should survive ResetStats")
	}
}
