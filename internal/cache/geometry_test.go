package cache

import (
	"testing"

	"repro/internal/mem"
)

func skewConfig(scheme IndexScheme) Config {
	return Config{Name: "t", Size: 16 << 10, LineSize: 64, Assoc: 2, Indexing: scheme}
}

func TestIndexSchemeStringsRoundTrip(t *testing.T) {
	for _, s := range []IndexScheme{IndexModulo, IndexSkewed, IndexRandom} {
		got, err := ParseIndexScheme(s.String())
		if err != nil || got != s {
			t.Errorf("ParseIndexScheme(%q) = %v, %v; want %v", s.String(), got, err, s)
		}
	}
	if got, err := ParseIndexScheme(""); err != nil || got != IndexModulo {
		t.Errorf("empty spec = %v, %v; want modulo", got, err)
	}
	if _, err := ParseIndexScheme("hash"); err == nil {
		t.Error("unknown scheme should be rejected")
	}
}

func TestConfigValidateRejectsUnknownScheme(t *testing.T) {
	cfg := skewConfig(IndexScheme(7))
	if err := cfg.Validate(); err == nil {
		t.Error("IndexScheme(7) should fail validation")
	}
}

// TestModuloRowsMatchGeometry pins the modulo family to the classic set
// index in every way.
func TestModuloRowsMatchGeometry(t *testing.T) {
	c := MustNew(skewConfig(IndexModulo))
	geom := c.Geometry()
	for _, a := range []mem.Addr{0, 0x1000, 0x4321, 0xdeadbeef} {
		line := geom.Line(a)
		for w := 0; w < 2; w++ {
			if got := c.RowOf(w, line); got != geom.Set(a) {
				t.Errorf("modulo RowOf(%d, %#x) = %d, want set %d", w, a, got, geom.Set(a))
			}
		}
	}
}

// TestSkewedWaysDisagree: the point of skewing is that two lines
// conflicting in one way rarely conflict in another. Check that the two
// ways genuinely index differently, and that rows stay in range.
func TestSkewedWaysDisagree(t *testing.T) {
	c := MustNew(skewConfig(IndexSkewed))
	rows := uint64(c.Config().Sets())
	differ := 0
	const n = 4096
	for i := 0; i < n; i++ {
		line := mem.LineAddr(i * 257) // stride through tag bits too
		r0, r1 := c.RowOf(0, line), c.RowOf(1, line)
		if r0 >= rows || r1 >= rows {
			t.Fatalf("row out of range: %d/%d of %d", r0, r1, rows)
		}
		if r0 != r1 {
			differ++
		}
	}
	if differ < n/2 {
		t.Errorf("ways agree on %d/%d lines; skewing is not dispersing", n-differ, n)
	}
}

// TestRandomIndexingDeterministicBySeed: same seed, same mapping; different
// seed, different mapping (and seed 0 means the fixed default, not chaos).
func TestRandomIndexingDeterministicBySeed(t *testing.T) {
	cfg := skewConfig(IndexRandom)
	a := MustNew(cfg)
	b := MustNew(cfg)
	cfg.IndexSeed = 12345
	d := MustNew(cfg)
	same, diff := 0, 0
	for i := 0; i < 1024; i++ {
		line := mem.LineAddr(i * 131)
		for w := 0; w < 2; w++ {
			if a.RowOf(w, line) == b.RowOf(w, line) {
				same++
			}
			if a.RowOf(w, line) != d.RowOf(w, line) {
				diff++
			}
		}
	}
	if same != 2048 {
		t.Errorf("same-seed caches agree on %d/2048 rows, want all", same)
	}
	if diff < 1024 {
		t.Errorf("different-seed caches agree almost everywhere (%d/2048 differ)", diff)
	}
}

// TestRandomRowsSpread is a crude uniformity check: filling many more
// lines than rows must touch a large fraction of the rows in each way.
func TestRandomRowsSpread(t *testing.T) {
	for _, scheme := range []IndexScheme{IndexSkewed, IndexRandom} {
		c := MustNew(skewConfig(scheme))
		rows := c.Config().Sets()
		for w := 0; w < 2; w++ {
			seen := make(map[uint64]bool)
			for i := 0; i < 8*rows; i++ {
				seen[c.RowOf(w, mem.LineAddr(i))] = true
			}
			if len(seen) < rows/2 {
				t.Errorf("%v way %d touches only %d/%d rows", scheme, w, len(seen), rows)
			}
		}
	}
}

// TestEvictionAddressExactUnderSkew is the reason Line stores the full
// address: under a non-invertible index, the eviction must still report
// exactly the line that was inserted.
func TestEvictionAddressExactUnderSkew(t *testing.T) {
	for _, scheme := range []IndexScheme{IndexSkewed, IndexRandom} {
		c := MustNew(skewConfig(scheme))
		geom := c.Geometry()
		inserted := make(map[mem.LineAddr]bool)
		evicted := make(map[mem.LineAddr]bool)
		for i := 0; i < 4096; i++ {
			a := mem.Addr(i * 64)
			inserted[geom.Line(a)] = true
			if ev := c.Fill(a, false, false); ev.Occurred {
				if !inserted[ev.Line] {
					t.Fatalf("%v: evicted line %#x was never inserted", scheme, ev.Line)
				}
				if evicted[ev.Line] && c.Contains(mem.Addr(uint64(ev.Line)<<geom.LineShift())) {
					t.Fatalf("%v: line %#x evicted yet still present", scheme, ev.Line)
				}
				evicted[ev.Line] = true
			}
		}
		// Conservation: everything inserted is either still resident or was
		// reported evicted exactly once by address.
		resident := 0
		for l := range inserted {
			if c.Contains(mem.Addr(uint64(l) << geom.LineShift())) {
				resident++
			}
		}
		if resident != c.ValidLines() {
			t.Errorf("%v: %d inserted lines resident but cache holds %d valid lines",
				scheme, resident, c.ValidLines())
		}
	}
}

// TestFillMakesHitAllSchemes extends the modulo property to the new
// families: after Fill(addr), Access(addr) hits and Invalidate finds it.
func TestFillMakesHitAllSchemes(t *testing.T) {
	for _, scheme := range []IndexScheme{IndexModulo, IndexSkewed, IndexRandom} {
		c := MustNew(skewConfig(scheme))
		for i := 0; i < 2000; i++ {
			a := mem.Addr(i * 8191)
			c.Fill(a, false, false)
			if !c.Access(a, mem.Load) {
				t.Fatalf("%v: just-filled %#x misses", scheme, a)
			}
			if !c.Contains(a) {
				t.Fatalf("%v: just-filled %#x not contained", scheme, a)
			}
		}
	}
}

// TestSkewedReducesConflictMisses is the functional sanity behind the new
// experiment: a ping-pong pattern that pathologically conflicts under
// modulo indexing should hit much more often under skewed or randomized
// indexing with the same capacity.
func TestSkewedReducesConflictMisses(t *testing.T) {
	run := func(scheme IndexScheme) uint64 {
		c := MustNew(skewConfig(scheme))
		// Three lines aliasing to one modulo set of a 2-way cache: round
		// robin guarantees every access misses under modulo+LRU.
		span := mem.Addr(c.Config().Size / c.Config().Assoc)
		addrs := []mem.Addr{0x100000, 0x100000 + span, 0x100000 + 2*span}
		for i := 0; i < 3000; i++ {
			a := addrs[i%3]
			if !c.Access(a, mem.Load) {
				c.Fill(a, false, false)
			}
		}
		return c.Stats().Hits
	}
	modulo, skewed, random := run(IndexModulo), run(IndexSkewed), run(IndexRandom)
	if modulo != 0 {
		t.Errorf("modulo round-robin over 3 aliases in 2 ways should never hit, got %d hits", modulo)
	}
	if skewed == 0 {
		t.Error("skewed indexing should break the alias pattern")
	}
	if random == 0 {
		t.Error("random indexing should break the alias pattern")
	}
}

// TestLoadMissAccounting is the stats regression test: only demand-load
// misses may count as LoadMisses — IFetch, prefetch, and store misses
// previously inflated the counter.
func TestLoadMissAccounting(t *testing.T) {
	c := MustNew(dmConfig())
	types := []mem.AccessType{mem.Load, mem.Store, mem.IFetch, mem.PrefetchRead}
	for i, typ := range types {
		c.Access(mem.Addr(i*0x1000), typ) // four distinct cold lines: all miss
	}
	st := c.Stats()
	if st.Misses != 4 {
		t.Fatalf("misses = %d, want 4", st.Misses)
	}
	if st.LoadMisses != 1 {
		t.Errorf("LoadMisses = %d, want 1 (only the mem.Load miss)", st.LoadMisses)
	}
	if st.Stores != 1 {
		t.Errorf("Stores = %d, want 1", st.Stores)
	}
	// A load hit must not count either.
	c.Fill(0x9000, false, false)
	c.Access(0x9000, mem.Load)
	if got := c.Stats().LoadMisses; got != 1 {
		t.Errorf("LoadMisses after load hit = %d, want 1", got)
	}
}
