package cache

import (
	"testing"

	"repro/internal/mem"
)

// Hot-path benchmarks for the cache layer. The same components are
// measured by internal/perf (paperbench -bench) for the BENCH_*.json
// trajectory; these exist so `go test -bench` works per-package during
// development.

func benchAddrs(n int) []mem.Addr {
	addrs := make([]mem.Addr, 0, n)
	var sweep uint64
	for len(addrs) < n {
		addrs = append(addrs, 0x1000, 0x20000, 0x24000,
			mem.Addr(0x100000+(sweep%512)*64))
		sweep++
	}
	return addrs[:n]
}

// BenchmarkCacheAccess measures the set-associative lookup with a mixed
// hit/miss stream (warmed so steady state dominates).
func BenchmarkCacheAccess(b *testing.B) {
	c := MustNew(allocTestConfig())
	addrs := benchAddrs(4096)
	for _, a := range addrs {
		if !c.Access(a, mem.Load) {
			c.Fill(a, false, false)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i%len(addrs)], mem.Load)
	}
}

// BenchmarkCacheFill measures the miss-path fill with eviction churn:
// two tags forced into one set alternately, so every fill evicts.
func BenchmarkCacheFill(b *testing.B) {
	c := MustNew(allocTestConfig())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Fill(mem.Addr(0x20000+uint64(i&1)<<14), false, false)
	}
}

// BenchmarkFAReference measures the fully-associative LRU's combined
// lookup/move-to-front/evict path: a 512-line working set over 256
// capacity, so half the references miss and evict.
func BenchmarkFAReference(b *testing.B) {
	fa := NewFullyAssociative(256)
	for l := mem.LineAddr(0); l < 512; l++ {
		fa.Reference(l)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fa.Reference(mem.LineAddr(i & 511))
	}
}
