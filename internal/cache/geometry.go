package cache

import "fmt"

// IndexScheme selects how a line address is mapped to a row within each
// way. The paper (and the MCT it proposes) assumes IndexModulo — the
// classic power-of-two set index. The other two families model the
// conflict-destroying defenses from the literature: skewed-associative
// caches (Seznec) give each way a different XOR-derived index so two lines
// that collide in one way almost never collide in another, and randomized
// caches (MIRAGE-style) index each way with a keyed hash so the mapping is
// unpredictable without the key. Neither family has a (tag, set) → address
// inverse, which is why Line stores the full line address (see Line.Addr)
// instead of a tag the cache would have to recompose.
type IndexScheme int

const (
	// IndexModulo is the paper's set index: row = line mod sets, identical
	// in every way. The zero value, so existing Configs are unchanged.
	IndexModulo IndexScheme = iota
	// IndexSkewed is Seznec-style skewed associativity: each way XORs the
	// base index with differently-rotated higher line-address bits.
	IndexSkewed
	// IndexRandom is MIRAGE-style randomized indexing: each way hashes the
	// line address with its own key (a splitmix64-finalizer bijection).
	IndexRandom
)

// String returns the spec-path name of the scheme ("modulo", "skewed",
// "random").
func (s IndexScheme) String() string {
	switch s {
	case IndexModulo:
		return "modulo"
	case IndexSkewed:
		return "skewed"
	case IndexRandom:
		return "random"
	default:
		return fmt.Sprintf("IndexScheme(%d)", int(s))
	}
}

// ParseIndexScheme maps a spec string to a scheme. The empty string means
// modulo, so omitted spec fields keep the paper's default.
func ParseIndexScheme(s string) (IndexScheme, error) {
	switch s {
	case "", "modulo":
		return IndexModulo, nil
	case "skewed", "skew":
		return IndexSkewed, nil
	case "random", "randomized":
		return IndexRandom, nil
	default:
		return 0, fmt.Errorf("cache: unknown index scheme %q (want modulo, skewed, or random)", s)
	}
}

// defaultIndexSeed keys IndexRandom when Config.IndexSeed is zero, so the
// zero-value Config is still fully deterministic.
const defaultIndexSeed uint64 = 0x6d63745f67656f6d // "mct_geom"

// splitmix64 advances the state and returns the next value of the
// splitmix64 sequence (Steele et al.), the same generator runner's backoff
// jitter uses; here it derives per-way keys from one seed.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// mixRow is the splitmix64 finalizer applied to a keyed line address: a
// full-width bijection, so distinct lines never merge before the final
// row mask. This is the IndexRandom per-way hash.
func mixRow(line, key, rowMask uint64) uint64 {
	z := line ^ key
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return z & rowMask
}

// rotlBits rotates the low width bits of v left by k, discarding anything
// above the window. width 0 returns 0 (a one-row cache has no index bits).
func rotlBits(v uint64, k, width uint) uint64 {
	if width == 0 {
		return 0
	}
	k %= width
	mask := (uint64(1) << width) - 1
	v &= mask
	return ((v << k) | (v >> (width - k))) & mask
}

// skewRow is the IndexSkewed per-way index: the base row XORed with two
// higher windows of the line address, each rotated by a way-dependent
// amount so every way sees a different permutation of the same conflict
// set (Seznec's inter-bank dispersion, in spirit if not in gate count).
// Way 0 with rotations (0, 0) intentionally reduces to a XOR-folded index
// rather than pure modulo: a skewed cache disperses in every way.
func skewRow(line uint64, rowBits uint, way int) uint64 {
	if rowBits == 0 {
		return 0
	}
	mask := (uint64(1) << rowBits) - 1
	a := line & mask
	b1 := (line >> rowBits) & mask
	b2 := (line >> (2 * rowBits)) & mask
	w := uint(way)
	return a ^ rotlBits(b1, w, rowBits) ^ rotlBits(b2, 2*w+1, rowBits)
}

// deriveWayKeys expands one seed into assoc per-way keys for IndexRandom.
func deriveWayKeys(seed uint64, assoc int) []uint64 {
	if seed == 0 {
		seed = defaultIndexSeed
	}
	keys := make([]uint64, assoc)
	for i := range keys {
		keys[i] = splitmix64(&seed)
	}
	return keys
}
