package faultinject

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestParseNetSpec(t *testing.T) {
	c, err := ParseNetSpec("reset=0.05,latency=20ms,jitter=60ms,partial=0.2,bw=65536,blackhole=0.01,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	want := NetConfig{ResetProb: 0.05, Latency: 20 * time.Millisecond, Jitter: 60 * time.Millisecond,
		PartialProb: 0.2, BandwidthBps: 65536, BlackholeProb: 0.01, Seed: 7}
	if c != want {
		t.Fatalf("parsed %+v, want %+v", c, want)
	}
	for _, bad := range []string{"", "reset", "reset=2", "latency=fast", "wat=1", "bw=x"} {
		if _, err := ParseNetSpec(bad); err == nil {
			t.Errorf("ParseNetSpec(%q) should fail", bad)
		}
	}
	// String round-trips through the parser.
	rt, err := ParseNetSpec(c.String())
	if err != nil || rt != c {
		t.Fatalf("String round trip: %+v, %v", rt, err)
	}
}

// chaosServer boots an httptest server whose listener is wrapped by the
// chaos config.
func chaosServer(t *testing.T, cfg NetConfig, handler http.Handler) *httptest.Server {
	t.Helper()
	srv := httptest.NewUnstartedServer(handler)
	srv.Listener = cfg.Listener(srv.Listener)
	srv.Start()
	t.Cleanup(srv.Close)
	return srv
}

func TestChaosListenerPassthroughWhenZero(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer inner.Close()
	if got := (NetConfig{}).Listener(inner); got != inner {
		t.Fatal("zero config must return the inner listener unchanged")
	}
	if got := (NetConfig{}).Transport(nil); got != http.DefaultTransport {
		t.Fatal("zero config must return the inner transport unchanged")
	}
}

// TestChaosListenerResets: with reset=1 every connection dies
// mid-stream; with reset=0 every request succeeds. The deterministic
// extremes pin the fault path without probabilistic flake.
func TestChaosListenerResets(t *testing.T) {
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		fmt.Fprint(w, strings.Repeat("x", 4096))
	})

	srv := chaosServer(t, NetConfig{ResetProb: 1, Seed: 3}, handler)
	client := &http.Client{Timeout: 5 * time.Second, Transport: &http.Transport{DisableKeepAlives: true}}
	failures := 0
	for i := 0; i < 5; i++ {
		resp, err := client.Post(srv.URL, "text/plain", strings.NewReader(strings.Repeat("b", 2048)))
		if err != nil {
			failures++
			continue
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			failures++
		}
		resp.Body.Close()
	}
	if failures == 0 {
		t.Fatal("reset=1 injected no visible failures across 5 requests")
	}

	clean := chaosServer(t, NetConfig{Latency: time.Millisecond, Seed: 3}, handler)
	for i := 0; i < 3; i++ {
		resp, err := client.Post(clean.URL, "text/plain", strings.NewReader("hello"))
		if err != nil {
			t.Fatalf("latency-only chaos broke request %d: %v", i, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// TestChaosListenerLatency: injected latency is observable end to end.
func TestChaosListenerLatency(t *testing.T) {
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { fmt.Fprint(w, "ok") })
	srv := chaosServer(t, NetConfig{Latency: 50 * time.Millisecond, Seed: 1}, handler)
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	t0 := time.Now()
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if el := time.Since(t0); el < 50*time.Millisecond {
		t.Fatalf("request took %v, want >= 50ms of injected latency", el)
	}
}

// TestChaosTransportReset: the client-side reset error unwraps to
// ECONNRESET so retry classifiers treat it as a real reset.
func TestChaosTransportReset(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()
	tr := NetConfig{ResetProb: 1, Seed: 9}.Transport(nil)
	req, _ := http.NewRequest(http.MethodGet, srv.URL, nil)
	_, err := tr.RoundTrip(req)
	if err == nil {
		t.Fatal("reset=1 transport returned no error")
	}
	if !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("injected reset %v should unwrap to ECONNRESET", err)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("injected reset %v should carry the ErrInjected sentinel", err)
	}
}

// TestChaosTransportBlackhole: a black-holed request blocks until its
// context expires — the client-visible timeout path.
func TestChaosTransportBlackhole(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()
	tr := NetConfig{BlackholeProb: 1, Seed: 2}.Transport(nil)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	t0 := time.Now()
	_, err := tr.RoundTrip(req)
	if err == nil {
		t.Fatal("blackhole returned a response")
	}
	if time.Since(t0) < 50*time.Millisecond {
		t.Fatalf("blackhole returned after %v, before the context deadline", time.Since(t0))
	}
	var ne net.Error
	if !errors.As(err, &ne) && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blackhole error %v should read as a net timeout", err)
	}
}

// TestChaosDeterminism: the same seed yields the same per-request fault
// schedule on the transport.
func TestChaosDeterminism(t *testing.T) {
	outcomes := func(seed uint64) []bool {
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
		defer srv.Close()
		tr := NetConfig{ResetProb: 0.5, Seed: seed}.Transport(nil)
		var outs []bool
		for i := 0; i < 32; i++ {
			req, _ := http.NewRequest(http.MethodGet, srv.URL, nil)
			resp, err := tr.RoundTrip(req)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			outs = append(outs, err == nil)
		}
		return outs
	}
	a, b := outcomes(42), outcomes(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d outcome differs across identical seeds", i)
		}
	}
	c := outcomes(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced an identical 32-request schedule (suspicious)")
	}
}

// TestChaosBandwidthCap: a bandwidth cap stretches a bulk response.
func TestChaosBandwidthCap(t *testing.T) {
	payload := strings.Repeat("z", 64<<10)
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { io.WriteString(w, payload) })
	srv := chaosServer(t, NetConfig{BandwidthBps: 256 << 10, Seed: 5}, handler)
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	t0 := time.Now()
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if len(got) != len(payload) {
		t.Fatalf("read %d bytes, want %d", len(got), len(payload))
	}
	// 64 KiB at 256 KiB/s ≥ 250ms even ignoring fixed costs.
	if el := time.Since(t0); el < 200*time.Millisecond {
		t.Fatalf("64KiB at 256KiB/s completed in %v; pacing is not applied", el)
	}
}
