// Package faultinject provides injectable faults for exercising the
// runner's supervision layer: transient errors the Retry option must
// heal, hangs the Deadline option must cut short, and panics the pool
// must isolate. Faults install through runner.SetTaskHook — a
// build-tag-free seam, so chaos tests (and paperbench -inject) exercise
// the exact same binary and code paths a production run uses; with no
// fault installed the hook is nil and costs one atomic load per attempt.
//
// All faults are deterministic functions of (task label, attempt
// number): injecting the same schedule into the same sweep perturbs it
// identically every time, which is what lets the chaos tests assert that
// a faulted run converges to byte-identical output tables.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/runner"
)

// ErrInjected is the sentinel every injected error wraps;
// errors.Is(err, faultinject.ErrInjected) identifies synthetic failures
// in test assertions and failure summaries.
var ErrInjected = errors.New("faultinject: injected fault")

// Fault decides, for one task attempt, whether to inject a failure.
// Returning nil lets the attempt proceed; returning an error fails it
// (mark it runner.Retryable to model a transient fault); blocking on
// ctx models a hang; panicking models a crash. Faults run on the
// attempt's goroutine under the attempt's context and must be safe for
// concurrent use.
type Fault func(ctx context.Context, label string, attempt int) error

// Install wires f into the runner's task hook and returns the restore
// function that removes it. Always defer the restore: a fault left
// installed leaks into every later sweep in the process.
func Install(f Fault) (restore func()) {
	runner.SetTaskHook(runner.TaskHook(f))
	return func() { runner.SetTaskHook(nil) }
}

// matches reports whether a fault scoped to pattern applies to label:
// an empty pattern matches every task, otherwise substring match.
func matches(pattern, label string) bool {
	return pattern == "" || strings.Contains(label, pattern)
}

// ErrorN fails the first n attempts of every matching task with a
// retryable error — the transient-fault model: a task granted at least
// n retries converges to its fault-free result, one granted fewer
// fails with attempt accounting intact.
func ErrorN(pattern string, n int) Fault {
	return func(_ context.Context, label string, attempt int) error {
		if matches(pattern, label) && attempt < n {
			return runner.Retryable(fmt.Errorf("%w: transient error %d/%d in %q", ErrInjected, attempt+1, n, label))
		}
		return nil
	}
}

// ErrorOnce is ErrorN(pattern, 1): each matching task fails exactly its
// first attempt.
func ErrorOnce(pattern string) Fault { return ErrorN(pattern, 1) }

// Fatal fails every attempt of every matching task with a non-retryable
// error — the permanent-failure model partial-results mode must survive.
func Fatal(pattern string) Fault {
	return func(_ context.Context, label string, attempt int) error {
		if matches(pattern, label) {
			return fmt.Errorf("%w: fatal error in %q (attempt %d)", ErrInjected, label, attempt)
		}
		return nil
	}
}

// Hang blocks matching attempts until their context is cancelled — the
// wedged-task model the Deadline option exists for. Without a deadline
// (or parent cancellation) a matching task hangs forever, exactly like
// the real failure it simulates.
func Hang(pattern string) Fault {
	return func(ctx context.Context, label string, _ int) error {
		if !matches(pattern, label) {
			return nil
		}
		<-ctx.Done()
		return ctx.Err()
	}
}

// Delay sleeps every matching attempt for d before it proceeds — the
// slow-dependency model. Unlike Hang it always completes, so it models
// per-task service time rather than a wedge: the cluster scaling bench
// uses it to give every sweep cell a fixed occupancy cost that
// overlaps across nodes (and, on a one-core machine, honestly measures
// the distribution layer rather than the scheduler). The sleep is cut
// short by cancellation, returning ctx.Err like the real slow call
// would.
func Delay(pattern string, d time.Duration) Fault {
	return func(ctx context.Context, label string, _ int) error {
		if !matches(pattern, label) {
			return nil
		}
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Panic crashes the first attempt of every matching task — the model for
// the pool's panic isolation. Panics are never retried (a panic is a
// bug), so a matching task fails its sweep cell permanently with a
// *runner.PanicError.
func Panic(pattern string) Fault {
	return func(_ context.Context, label string, attempt int) error {
		if matches(pattern, label) && attempt == 0 {
			panic(fmt.Sprintf("faultinject: injected panic in %q", label))
		}
		return nil
	}
}

// Chain composes faults: each is consulted in order and the first
// injection wins.
func Chain(faults ...Fault) Fault {
	return func(ctx context.Context, label string, attempt int) error {
		for _, f := range faults {
			if err := f(ctx, label, attempt); err != nil {
				return err
			}
		}
		return nil
	}
}

// Parse builds a Fault from a comma-separated schedule spec, the syntax
// behind paperbench's -inject flag. Each clause is
//
//	kind[:n][@pattern]
//
// where kind is error (retryable, n times per task, default 1), fatal,
// hang, panic, or delay (n is a duration, e.g. delay:25ms); and pattern
// scopes the clause to task labels containing it (default: all tasks).
// Examples:
//
//	error:2            every task fails its first two attempts
//	error:2@fig2       ...only tasks whose label contains "fig2"
//	hang@sim/gcc       tasks matching sim/gcc hang until cancelled
//	panic,error:1@fig1 first attempts panic; fig1 also errors once
//	delay:25ms@sweep   every sweep cell attempt takes 25ms extra
func Parse(spec string) (Fault, error) {
	var faults []Fault
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		pattern := ""
		if at := strings.IndexByte(clause, '@'); at >= 0 {
			pattern = clause[at+1:]
			clause = clause[:at]
		}
		kind, nstr, hasN := strings.Cut(clause, ":")
		if kind == "delay" {
			// delay takes a duration, not a count: delay:25ms@sweep.
			d, err := time.ParseDuration(nstr)
			if !hasN || err != nil || d <= 0 {
				return nil, fmt.Errorf("faultinject: bad duration %q in clause %q (want e.g. delay:25ms)", nstr, clause)
			}
			faults = append(faults, Delay(pattern, d))
			continue
		}
		n := 1
		if hasN {
			v, err := strconv.Atoi(nstr)
			if err != nil || v < 1 {
				return nil, fmt.Errorf("faultinject: bad count %q in clause %q", nstr, clause)
			}
			n = v
		}
		switch kind {
		case "error":
			faults = append(faults, ErrorN(pattern, n))
		case "fatal":
			faults = append(faults, Fatal(pattern))
		case "hang":
			faults = append(faults, Hang(pattern))
		case "panic":
			faults = append(faults, Panic(pattern))
		default:
			return nil, fmt.Errorf("faultinject: unknown fault kind %q (want error, fatal, hang, panic, or delay)", kind)
		}
	}
	if len(faults) == 0 {
		return nil, errors.New("faultinject: empty fault spec")
	}
	if len(faults) == 1 {
		return faults[0], nil
	}
	return Chain(faults...), nil
}
