package faultinject

// Network fault injection: the task-level faults in this package
// (ErrorN/Hang/Panic) perturb computation; the chaos net.Listener and
// http.RoundTripper here perturb the wire. Together they model a
// hostile network around mctd — connection resets, fixed+jittered
// latency, slow (chunked) writes, bandwidth caps, black holes — usable
// in-process by tests and from the CLI via `mctd -chaos` (server side,
// wrapping the accept loop) and `mctload -chaos` (client side,
// wrapping the transport).
//
// Like the task faults, every decision is a deterministic function of
// the seed and a monotonically assigned index (connection number,
// request number): the same chaos spec against the same traffic order
// injects the same schedule, which is what lets the chaosnet smoke
// gate assert exact convergence properties instead of "it mostly
// works".

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"
)

// NetConfig shapes the injected network faults. The zero value injects
// nothing.
type NetConfig struct {
	// ResetProb is the per-connection (listener) or per-request
	// (transport) probability of a connection reset: the wrapped side
	// observes ECONNRESET mid-stream.
	ResetProb float64
	// Latency and Jitter inject `Latency + U[0,Jitter)` of one-way delay:
	// per accepted connection's first I/O on the listener side, per
	// request on the transport side.
	Latency time.Duration
	Jitter  time.Duration
	// PartialProb is the probability that a listener-side Write is
	// delivered as a slow trickle of small chunks instead of one burst —
	// the slow-consumer / tiny-congestion-window model.
	PartialProb float64
	// BandwidthBps caps listener-side connection throughput in bytes per
	// second (0 = uncapped) by pacing writes.
	BandwidthBps int64
	// BlackholeProb is the probability a connection (or request) is
	// accepted and then never answered: reads and writes stall until the
	// peer gives up. The timeout-path model.
	BlackholeProb float64
	// Seed keys the deterministic fault schedule.
	Seed uint64
}

// enabled reports whether the config injects anything at all.
func (c NetConfig) enabled() bool {
	return c.ResetProb > 0 || c.Latency > 0 || c.Jitter > 0 ||
		c.PartialProb > 0 || c.BandwidthBps > 0 || c.BlackholeProb > 0
}

// splitmix64 is the shared deterministic PRNG step (same constants as
// the runner's retry jitter and loadgen's traffic choices).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unit maps a PRNG word to [0,1).
func unit(x uint64) float64 { return float64(x>>11) / float64(1<<53) }

// ParseNetSpec parses the -chaos flag syntax: comma-separated key=value
// clauses.
//
//	reset=0.05          5% of connections reset mid-stream
//	latency=20ms        fixed injected delay
//	jitter=60ms         + uniform extra in [0, 60ms)
//	partial=0.2         20% of writes trickle out in small chunks
//	bw=65536            cap throughput at 64 KiB/s
//	blackhole=0.01      1% of connections stall forever
//	seed=7              schedule seed
func ParseNetSpec(spec string) (NetConfig, error) {
	var c NetConfig
	any := false
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return c, fmt.Errorf("faultinject: chaos clause %q is not key=value", clause)
		}
		any = true
		var err error
		switch key {
		case "reset":
			c.ResetProb, err = parseProb(val)
		case "latency":
			c.Latency, err = time.ParseDuration(val)
		case "jitter":
			c.Jitter, err = time.ParseDuration(val)
		case "partial":
			c.PartialProb, err = parseProb(val)
		case "bw":
			c.BandwidthBps, err = strconv.ParseInt(val, 10, 64)
		case "blackhole":
			c.BlackholeProb, err = parseProb(val)
		case "seed":
			c.Seed, err = strconv.ParseUint(val, 0, 64)
		default:
			return c, fmt.Errorf("faultinject: unknown chaos key %q (want reset, latency, jitter, partial, bw, blackhole, or seed)", key)
		}
		if err != nil {
			return c, fmt.Errorf("faultinject: chaos clause %q: %v", clause, err)
		}
	}
	if !any {
		return c, errors.New("faultinject: empty chaos spec")
	}
	return c, nil
}

func parseProb(s string) (float64, error) {
	p, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %v outside [0,1]", p)
	}
	return p, nil
}

// String renders the config back in flag syntax (for boot logs).
func (c NetConfig) String() string {
	var parts []string
	add := func(k, v string) { parts = append(parts, k+"="+v) }
	if c.ResetProb > 0 {
		add("reset", strconv.FormatFloat(c.ResetProb, 'g', -1, 64))
	}
	if c.Latency > 0 {
		add("latency", c.Latency.String())
	}
	if c.Jitter > 0 {
		add("jitter", c.Jitter.String())
	}
	if c.PartialProb > 0 {
		add("partial", strconv.FormatFloat(c.PartialProb, 'g', -1, 64))
	}
	if c.BandwidthBps > 0 {
		add("bw", strconv.FormatInt(c.BandwidthBps, 10))
	}
	if c.BlackholeProb > 0 {
		add("blackhole", strconv.FormatFloat(c.BlackholeProb, 'g', -1, 64))
	}
	add("seed", strconv.FormatUint(c.Seed, 10))
	return strings.Join(parts, ",")
}

// ErrInjectedReset is the error surfaced by transport-side injected
// resets; it unwraps to syscall.ECONNRESET so error classifiers treat
// it exactly like a kernel-reported reset.
var ErrInjectedReset = fmt.Errorf("%w: %w", ErrInjected, syscall.ECONNRESET)

// Listener wraps inner so accepted connections carry the configured
// faults. A config that injects nothing returns inner unchanged.
func (c NetConfig) Listener(inner net.Listener) net.Listener {
	if !c.enabled() {
		return inner
	}
	return &chaosListener{Listener: inner, cfg: c}
}

type chaosListener struct {
	net.Listener
	cfg  NetConfig
	conn atomic.Uint64 // connection index, the determinism axis
}

func (l *chaosListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	idx := l.conn.Add(1)
	rng := splitmix64(l.cfg.Seed ^ (idx * 0x9e3779b97f4a7c15))
	cc := &chaosConn{Conn: conn, cfg: l.cfg}

	// Decide this connection's fate up front, deterministically.
	r1 := unit(rng)
	rng = splitmix64(rng)
	r2 := unit(rng)
	rng = splitmix64(rng)
	if r1 < l.cfg.BlackholeProb {
		cc.blackhole = true
	} else if r2 < l.cfg.ResetProb {
		// Reset after a small deterministic byte budget: enough for the
		// request to be mid-flight, so the client sees a true mid-stream
		// reset rather than a failed dial.
		cc.resetAfter = 64 + int64(rng%1024)
	}
	rng = splitmix64(rng)
	cc.delay = c0(l.cfg.Latency, l.cfg.Jitter, rng)
	rng = splitmix64(rng)
	cc.rng = rng
	return cc, nil
}

// c0 computes latency + U[0,jitter).
func c0(latency, jitter time.Duration, rng uint64) time.Duration {
	d := latency
	if jitter > 0 {
		d += time.Duration(unit(rng) * float64(jitter))
	}
	return d
}

// chaosConn is one faulted connection.
type chaosConn struct {
	net.Conn
	cfg NetConfig
	rng uint64

	blackhole  bool
	resetAfter int64 // bytes (read+written) until injected reset; 0 = never
	moved      atomic.Int64 // bytes moved so far (read and write paths run on different goroutines)
	delay      time.Duration
	delayed    atomic.Bool // first-I/O latency applied?
}

// injectReset forces an RST where the transport allows it (TCP with
// SO_LINGER 0), else just closes; either way the peer's read fails.
func (cc *chaosConn) injectReset() error {
	if tc, ok := cc.Conn.(*net.TCPConn); ok {
		_ = tc.SetLinger(0)
	}
	_ = cc.Conn.Close()
	return ErrInjectedReset
}

// pre runs the shared per-I/O fault ladder: first-op latency, then the
// reset byte budget. (Black holes divert to stall before pre runs.)
func (cc *chaosConn) pre() error {
	if cc.delayed.CompareAndSwap(false, true) && cc.delay > 0 {
		time.Sleep(cc.delay)
	}
	if cc.resetAfter > 0 && cc.moved.Load() >= cc.resetAfter {
		return cc.injectReset()
	}
	return nil
}

func (cc *chaosConn) Read(p []byte) (int, error) {
	if cc.blackhole {
		return cc.stall()
	}
	if err := cc.pre(); err != nil {
		return 0, err
	}
	n, err := cc.Conn.Read(p)
	cc.moved.Add(int64(n))
	return n, err
}

func (cc *chaosConn) Write(p []byte) (int, error) {
	if cc.blackhole {
		return cc.stall()
	}
	if err := cc.pre(); err != nil {
		return 0, err
	}
	// Bandwidth pacing: the transfer of len(p) bytes takes at least
	// len(p)/bw seconds.
	if cc.cfg.BandwidthBps > 0 {
		time.Sleep(time.Duration(float64(len(p)) / float64(cc.cfg.BandwidthBps) * float64(time.Second)))
	}
	// Slow/partial writes: deliver in small chunks with gaps.
	cc.rng = splitmix64(cc.rng)
	if cc.cfg.PartialProb > 0 && unit(cc.rng) < cc.cfg.PartialProb && len(p) > 16 {
		total := 0
		for off := 0; off < len(p); off += 512 {
			end := off + 512
			if end > len(p) {
				end = len(p)
			}
			n, err := cc.Conn.Write(p[off:end])
			total += n
			cc.moved.Add(int64(n))
			if err != nil {
				return total, err
			}
			time.Sleep(time.Millisecond)
		}
		return total, nil
	}
	n, err := cc.Conn.Write(p)
	cc.moved.Add(int64(n))
	return n, err
}

// stall parks a black-holed connection until the underlying conn is
// closed (server shutdown, peer timeout tearing it down, or a
// deadline the HTTP server set expiring on the real conn).
func (cc *chaosConn) stall() (int, error) {
	// Poll the real conn with a zero-byte-progress read and a deadline:
	// when the peer or the server closes it, the read errors and the
	// stall ends. This keeps Close semantics intact without extra
	// goroutines.
	var tiny [1]byte
	for {
		_ = cc.Conn.SetReadDeadline(time.Now().Add(250 * time.Millisecond))
		_, err := cc.Conn.Read(tiny[:])
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return 0, err
		}
		// Discard any real bytes: a black hole consumes and never answers.
	}
}

// Transport wraps inner (nil = http.DefaultTransport) with client-side
// chaos: per-request latency, injected resets, black holes. A config
// that injects nothing returns inner unchanged.
func (c NetConfig) Transport(inner http.RoundTripper) http.RoundTripper {
	if inner == nil {
		inner = http.DefaultTransport
	}
	if !c.enabled() {
		return inner
	}
	return &chaosTransport{inner: inner, cfg: c}
}

type chaosTransport struct {
	inner http.RoundTripper
	cfg   NetConfig
	req   atomic.Uint64
}

func (t *chaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	idx := t.req.Add(1)
	rng := splitmix64(t.cfg.Seed ^ (idx * 0xbf58476d1ce4e5b9))
	r1 := unit(rng)
	rng = splitmix64(rng)
	r2 := unit(rng)
	rng = splitmix64(rng)

	if d := c0(t.cfg.Latency, t.cfg.Jitter, rng); d > 0 {
		select {
		case <-time.After(d):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	switch {
	case r1 < t.cfg.BlackholeProb:
		// Swallow the request until the caller's context gives up — the
		// client-side view of a black-holed peer.
		<-req.Context().Done()
		return nil, &net.OpError{Op: "read", Net: "tcp", Err: context.DeadlineExceeded}
	case r2 < t.cfg.ResetProb:
		return nil, &net.OpError{Op: "read", Net: "tcp", Err: ErrInjectedReset}
	}
	return t.inner.RoundTrip(req)
}
