package faultinject

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/runner"
)

// sweep runs a small deterministic fan-out through the runner and renders
// its results as a stable string — the "output table" the chaos tests
// assert byte-identity on.
func sweep(opts ...runner.Option) (string, error) {
	out, err := runner.MapN(context.Background(), 8,
		func(i int) string { return fmt.Sprintf("cell/%d", i) },
		func(_ context.Context, i int) (int, error) { return i*i + 1, nil },
		opts...)
	var sb strings.Builder
	for i, v := range out {
		fmt.Fprintf(&sb, "cell/%d=%d\n", i, v)
	}
	return sb.String(), err
}

// TestChaosConvergesToFaultFreeOutput is the package's core claim: any
// schedule of transient faults that the retry budget covers produces
// byte-identical output to the fault-free run.
func TestChaosConvergesToFaultFreeOutput(t *testing.T) {
	clean, err := sweep()
	if err != nil {
		t.Fatal(err)
	}
	schedules := []struct {
		name  string
		fault Fault
	}{
		{"error-once-everywhere", ErrorOnce("")},
		{"error-twice-everywhere", ErrorN("", 2)},
		{"error-on-one-cell", ErrorN("cell/3", 2)},
		{"chained-scoped-errors", Chain(ErrorOnce("cell/1"), ErrorN("cell/5", 2))},
	}
	for _, s := range schedules {
		t.Run(s.name, func(t *testing.T) {
			restore := Install(s.fault)
			defer restore()
			for trial := 0; trial < 3; trial++ {
				got, err := sweep(runner.Retry(2, time.Millisecond), runner.Workers(3))
				if err != nil {
					t.Fatalf("trial %d: faulted sweep failed: %v", trial, err)
				}
				if got != clean {
					t.Fatalf("trial %d: faulted output diverged:\n--- clean ---\n%s--- faulted ---\n%s", trial, clean, got)
				}
			}
		})
	}
}

func TestErrorNExhaustsShortRetryBudget(t *testing.T) {
	restore := Install(ErrorN("cell/2", 3))
	defer restore()
	_, err := sweep(runner.Retry(2, time.Millisecond))
	var te *runner.TaskError
	if !errors.As(err, &te) {
		t.Fatalf("want *TaskError, got %v", err)
	}
	if te.Label != "cell/2" || te.Attempts != 3 {
		t.Errorf("failure = %q after %d attempts, want cell/2 after 3", te.Label, te.Attempts)
	}
	if !errors.Is(err, ErrInjected) {
		t.Error("injected failure must be identifiable via ErrInjected")
	}
}

func TestFatalIgnoresRetries(t *testing.T) {
	restore := Install(Fatal("cell/0"))
	defer restore()
	out, err := sweep(runner.Retry(5, time.Millisecond), runner.PartialResults())
	var me *runner.MultiError
	if !errors.As(err, &me) {
		t.Fatalf("want *MultiError, got %v", err)
	}
	if len(me.Failures) != 1 || me.Failures[0].Attempts != 1 {
		t.Errorf("fatal fault: %+v (must fail permanently on attempt 1)", me.Failures)
	}
	if !strings.Contains(out, "cell/7=50") {
		t.Errorf("unaffected cells must still produce results:\n%s", out)
	}
}

func TestHangIsCutByDeadline(t *testing.T) {
	restore := Install(Hang("cell/4"))
	defer restore()
	start := time.Now()
	_, err := sweep(runner.Deadline(30*time.Millisecond), runner.PartialResults())
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("hang not cut by deadline (took %v)", elapsed)
	}
	var me *runner.MultiError
	if !errors.As(err, &me) {
		t.Fatalf("want *MultiError, got %v", err)
	}
	if len(me.Failures) != 1 || me.Failures[0].Label != "cell/4" {
		t.Fatalf("failures = %+v", me.Failures)
	}
	if !errors.Is(me.Failures[0].Err, context.DeadlineExceeded) {
		t.Errorf("hang should surface as a deadline expiration, got %v", me.Failures[0].Err)
	}
}

func TestPanicIsIsolated(t *testing.T) {
	restore := Install(Panic("cell/6"))
	defer restore()
	out, err := sweep(runner.PartialResults())
	var me *runner.MultiError
	if !errors.As(err, &me) {
		t.Fatalf("want *MultiError, got %v", err)
	}
	var pe *runner.PanicError
	if len(me.Failures) != 1 || !errors.As(me.Failures[0].Err, &pe) {
		t.Fatalf("failures = %+v, want one *PanicError", me.Failures)
	}
	if !strings.Contains(out, "cell/5=26") {
		t.Errorf("panic must not take down neighboring cells:\n%s", out)
	}
}

func TestRestoreRemovesFault(t *testing.T) {
	restore := Install(Fatal(""))
	restore()
	if _, err := sweep(); err != nil {
		t.Fatalf("fault survived its restore: %v", err)
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		spec    string
		wantErr bool
	}{
		{"error:2", false},
		{"error", false},
		{"error:2@fig2", false},
		{"hang@sim/gcc", false},
		{"panic,error:1@fig1", false},
		{"fatal@x, error:3", false},
		{"", true},
		{"  ,  ", true},
		{"error:0", true},
		{"error:x", true},
		{"explode", true},
		{"delay:25ms", false},
		{"delay:25ms@sweep", false},
		{"delay:1s@sweep/fig2, error:1", false},
		{"delay", true},     // delay needs a duration
		{"delay:3", true},   // bare count is not a duration
		{"delay:-5ms", true},
	}
	for _, c := range cases {
		_, err := Parse(c.spec)
		if (err != nil) != c.wantErr {
			t.Errorf("Parse(%q) err = %v, wantErr %v", c.spec, err, c.wantErr)
		}
	}
}

func TestParsedScheduleBehaves(t *testing.T) {
	f, err := Parse("error:2@cell/1,fatal@cell/6")
	if err != nil {
		t.Fatal(err)
	}
	restore := Install(f)
	defer restore()
	out, err := sweep(runner.Retry(2, time.Millisecond), runner.PartialResults())
	var me *runner.MultiError
	if !errors.As(err, &me) {
		t.Fatalf("want *MultiError, got %v", err)
	}
	// cell/1's two transient errors heal inside the retry budget; cell/6's
	// fatal fault does not.
	if len(me.Failures) != 1 || me.Failures[0].Label != "cell/6" {
		t.Fatalf("failures = %+v, want only cell/6", me.Failures)
	}
	if !strings.Contains(out, "cell/1=2") {
		t.Errorf("cell/1 should have healed:\n%s", out)
	}
}

// TestDelaySlowsMatchingAttempts: delay is an occupancy cost, not a
// failure — matching attempts complete after the sleep, non-matching
// ones are untouched, and cancellation cuts the sleep short.
func TestDelaySlowsMatchingAttempts(t *testing.T) {
	f, err := Parse("delay:30ms@slow")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := f(context.Background(), "slow/cell", 0); err != nil {
		t.Fatalf("delayed attempt errored: %v", err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Errorf("matching attempt took %v, want >= 30ms", d)
	}
	start = time.Now()
	if err := f(context.Background(), "fast/cell", 0); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 10*time.Millisecond {
		t.Errorf("non-matching attempt took %v, want instant", d)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if err := f(ctx, "slow/cell", 0); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("cancelled delay returned %v, want deadline exceeded", err)
	}
}
