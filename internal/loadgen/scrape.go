package loadgen

import (
	"context"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/obs"
	"repro/internal/perf"
)

// ScrapeServer fetches the service's Prometheus exposition and folds it
// into the report's Server section: plain (label-free) samples become
// counters, *_bucket/_sum/_count families become histograms. The caller
// decides whether a scrape failure fails the run — the client-side
// results are complete without it.
func ScrapeServer(ctx context.Context, client *http.Client, baseURL string) (*perf.ServerMetrics, error) {
	if client == nil {
		client = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/metrics?format=prometheus", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: scrape %s: status %d", req.URL, resp.StatusCode)
	}
	samples, err := obs.ParseProm(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("loadgen: scrape %s: %w", req.URL, err)
	}

	sm := &perf.ServerMetrics{Counters: map[string]float64{}}
	for _, h := range obs.HistogramsFromSamples(samples) {
		sh := perf.ServerHistogram{Name: h.Name, Count: h.Count, Sum: h.Sum}
		for _, b := range h.Buckets {
			sh.Buckets = append(sh.Buckets, perf.ServerBucket{LE: b.LE, Count: b.CumulativeCount})
		}
		sm.Histograms = append(sm.Histograms, sh)
	}
	for _, s := range samples {
		// Histogram series are already folded above; everything else
		// label-free is a scalar worth keeping.
		if s.Labels != nil || strings.HasSuffix(s.Name, "_sum") || strings.HasSuffix(s.Name, "_count") {
			continue
		}
		sm.Counters[s.Name] = s.Value
	}
	return sm, nil
}
