package loadgen

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/perf"
	"repro/internal/service"
)

func TestRunAgainstInProcessService(t *testing.T) {
	svc := service.New(service.Config{CacheDir: t.TempDir() + "/cache", CheckpointDir: t.TempDir() + "/ckpt"})
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		svc.Drain(ctx)
	})

	report, err := Run(context.Background(), Config{
		BaseURL:     srv.URL,
		Concurrency: 3,
		Duration:    300 * time.Millisecond,
		Client:      srv.Client(),
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Results) == 0 {
		t.Fatal("empty report")
	}
	total := report.Results[len(report.Results)-1]
	if total.Name != "total" {
		t.Fatalf("last result is %q, want total", total.Name)
	}
	if total.Requests == 0 {
		t.Fatal("no requests completed")
	}
	if total.Errors != 0 {
		t.Errorf("%d errors out of %d requests", total.Errors, total.Requests)
	}
	if total.Latency.Count != total.Requests {
		t.Errorf("latency count %d != requests %d", total.Latency.Count, total.Requests)
	}
	if total.Latency.P50Ms <= 0 || total.Latency.P99Ms < total.Latency.P50Ms || total.Latency.MaxMs < total.Latency.P99Ms {
		t.Errorf("implausible latency summary: %+v", total.Latency)
	}
	if total.Throughput <= 0 {
		t.Errorf("throughput = %v", total.Throughput)
	}
	if total.ByStatus["200"] != total.Requests {
		t.Errorf("by_status = %v, want all 200s", total.ByStatus)
	}
}

func TestRunRequiresBaseURL(t *testing.T) {
	if _, err := Run(context.Background(), Config{}); err == nil {
		t.Fatal("Run without BaseURL must fail")
	}
}

func TestPercentile(t *testing.T) {
	samples := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10} // sorted
	cases := []struct {
		q    float64
		want time.Duration
	}{
		{0, 1}, {0.5, 5}, {0.9, 9}, {0.99, 10}, {1, 10},
	}
	for _, c := range cases {
		if got := perf.Percentile(samples, c.q); got != c.want {
			t.Errorf("Percentile(%v) = %d, want %d", c.q, got, c.want)
		}
	}
	if got := perf.Percentile(nil, 0.5); got != 0 {
		t.Errorf("Percentile(empty) = %d, want 0", got)
	}
}

func TestSummarizeLatency(t *testing.T) {
	s := perf.SummarizeLatency([]time.Duration{
		4 * time.Millisecond, 2 * time.Millisecond, 1 * time.Millisecond, 3 * time.Millisecond,
	})
	if s.Count != 4 || s.MeanMs != 2.5 || s.MaxMs != 4 {
		t.Errorf("summary = %+v", s)
	}
	if s.P50Ms != 2 {
		t.Errorf("p50 = %v, want 2", s.P50Ms)
	}
}
