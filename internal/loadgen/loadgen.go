// Package loadgen is a closed-loop load generator for the mctd service:
// a fixed fleet of workers drives mixed classify/sweep traffic at either
// the maximum closed-loop rate or a target QPS, measuring per-request
// latency and error rates. cmd/mctload wraps it as a CLI and writes the
// BENCH_pr8.json report (client-side results plus the server's own
// histograms scraped from the Prometheus endpoint).
//
// "Closed loop" means each worker issues its next request only after the
// previous one completes — offered load adapts to service latency, so an
// overloaded service sees backpressure (and its 429s show up in the
// by-status counts) instead of an unbounded request pile-up inside the
// generator.
//
// All traffic flows through one shared internal/client Client, so every
// request carries an idempotency key and — when MaxAttempts > 1 — rides
// the resilient retry/hedge machinery. Under a chaos transport (resets,
// latency, black holes) the per-class results then separate what the
// service failed from what the retry layer absorbed: terminal failures
// land in by_failure, absorbed ones in the retries/hedges counts.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/perf"
	"repro/internal/workload"
)

// Config shapes one load run.
type Config struct {
	// BaseURL is the mctd instance, e.g. "http://127.0.0.1:8047".
	BaseURL string
	// Targets, when set, spreads the fleet across several mctd instances
	// (workers are assigned round-robin by worker ID, each worker staying
	// with its instance — per-target results remain closed-loop). It
	// overrides BaseURL; failure taxonomy keys gain an @target suffix so
	// a flaky node is attributable. cmd/mctload's -targets flag feeds it.
	Targets []string
	// Concurrency is the worker-fleet size.
	Concurrency int
	// Duration bounds the run.
	Duration time.Duration
	// QPS, when positive, paces the fleet at this aggregate rate via a
	// shared ticker; zero runs the pure closed loop (as fast as the
	// service answers).
	QPS float64
	// ClassifyFraction is the share of requests that are classifies (the
	// rest are sweeps). Default 0.9: classify is the cheap, frequent op.
	ClassifyFraction float64
	// MRCFraction carves an MRC share out of the classify slice of the
	// mix: a roll below MRCFraction is a POST /v1/mrc (with a rotating
	// X-Mct-Tenant), between MRCFraction and ClassifyFraction a
	// classify, above it a sweep. Zero keeps the historical two-class
	// mix.
	MRCFraction float64
	// Seed makes the traffic pattern reproducible.
	Seed uint64
	// Client overrides the HTTP transport (tests inject the httptest
	// client; mctload injects a chaos round-tripper for -chaos runs).
	Client *http.Client
	// Variants is how many distinct parameterizations each traffic class
	// cycles through (distinct cache keys server-side). Default 4: the
	// first wave computes, the rest replay — a realistic warm-cache mix.
	Variants int
	// MaxRequests, when positive, stops the fleet after exactly this many
	// requests have been issued (whichever of MaxRequests and Duration is
	// reached first ends the run). The obs-smoke gate uses this to make
	// client-side and server-side request counts exactly comparable.
	MaxRequests uint64
	// MaxAttempts bounds each logical request's tries (first attempt
	// included), via the shared resilient client. Default 1: a pure
	// measurement run issues every request exactly once, so the error
	// rates are the service's own. mctload raises it (-retries) so chaos
	// runs converge instead of bleeding transport errors.
	MaxAttempts int
	// BaseBackoff is the first retry delay (the client's default when
	// zero); it doubles per attempt with 50–150% jitter, floored by any
	// server Retry-After.
	BaseBackoff time.Duration
	// HedgeAfter, when positive, hedges classify requests still
	// unanswered after this delay. Sweeps are never hedged: they are the
	// expensive op, and the hedge would just queue behind the original's
	// idempotency singleflight.
	HedgeAfter time.Duration
}

func (c Config) withDefaults() Config {
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.Duration <= 0 {
		c.Duration = 10 * time.Second
	}
	if c.ClassifyFraction <= 0 || c.ClassifyFraction > 1 {
		c.ClassifyFraction = 0.9
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 2 * time.Minute}
	}
	if c.Variants <= 0 {
		c.Variants = 4
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 1
	}
	return c
}

// sample is one completed logical request (retries and hedges folded
// into it by the client).
type sample struct {
	class    string             // "classify" | "sweep"
	target   string             // instance this request terminated against
	status   int                // final HTTP status; 0 transport failure; -1 run-teardown discard
	kind     client.FailureKind // terminal failure bucket, FailNone on success
	attempts int                // total HTTP attempts the client issued
	hedged   bool               // a hedge was launched
	latency  time.Duration
	err      bool
}

// splitmix64 is the same deterministic PRNG step the runner uses for
// retry jitter; here it decorrelates per-worker traffic choices.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Run drives the fleet until cfg.Duration elapses (or ctx cancels) and
// returns the aggregated report. The error is non-nil only for setup
// failures; request failures are data, not errors.
func Run(ctx context.Context, cfg Config) (perf.LoadReport, error) {
	cfg = cfg.withDefaults()
	targets := cfg.Targets
	if len(targets) == 0 {
		if cfg.BaseURL == "" {
			return perf.LoadReport{}, fmt.Errorf("loadgen: BaseURL (or Targets) is required")
		}
		targets = []string{cfg.BaseURL}
	}
	names := workload.Names()
	if len(names) == 0 {
		return perf.LoadReport{}, fmt.Errorf("loadgen: no workloads registered")
	}
	// One shared client per target: each client's key sequence guarantees
	// distinct idempotency keys across the workers it serves. Seed is
	// deliberately NOT cfg.Seed — keys must never repeat across runs
	// against the same server, or the idempotency store would replay a
	// previous run's responses; only the traffic pattern needs
	// reproducibility.
	clients := make([]*client.Client, len(targets))
	for i, tgt := range targets {
		cl, err := client.New(client.Options{
			BaseURL:     tgt,
			HTTPClient:  cfg.Client,
			MaxAttempts: cfg.MaxAttempts,
			BaseBackoff: cfg.BaseBackoff,
			HedgeAfter:  cfg.HedgeAfter,
		})
		if err != nil {
			return perf.LoadReport{}, fmt.Errorf("loadgen: target %s: %w", tgt, err)
		}
		clients[i] = cl
	}

	runCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()

	// Optional pacing: a shared ticker hands out send permits at the
	// aggregate target rate. Closed loop otherwise.
	var permits <-chan time.Time
	if cfg.QPS > 0 {
		interval := time.Duration(float64(time.Second) / cfg.QPS)
		if interval <= 0 {
			interval = time.Nanosecond
		}
		t := time.NewTicker(interval)
		defer t.Stop()
		permits = t.C
	}

	samples := make(chan sample, 1024)
	var wg sync.WaitGroup
	var issued atomic.Uint64 // across the fleet, for MaxRequests
	start := time.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cl := clients[id%len(clients)]
			tgt := targets[id%len(targets)]
			rng := splitmix64(cfg.Seed + uint64(id)*0x9e37)
			for {
				if runCtx.Err() != nil {
					return
				}
				if cfg.MaxRequests > 0 && issued.Add(1) > cfg.MaxRequests {
					return
				}
				if permits != nil {
					select {
					case <-permits:
					case <-runCtx.Done():
						return
					}
				}
				rng = splitmix64(rng)
				samples <- cfg.oneRequest(runCtx, cl, tgt, rng, names, id)
			}
		}(w)
	}

	// Collect until the fleet drains.
	done := make(chan struct{})
	var collected []sample
	go func() {
		defer close(done)
		for s := range samples {
			collected = append(collected, s)
		}
	}()
	wg.Wait()
	close(samples)
	<-done
	elapsed := time.Since(start)

	report := perf.NewLoadReport(targets[0], elapsed, cfg.Concurrency, cfg.QPS,
		aggregate(collected, elapsed, len(targets) > 1))
	if len(targets) > 1 {
		report.Targets = targets
	}
	return report, nil
}

// oneRequest issues a single classify or sweep through the shared
// resilient client and measures the whole logical request — latency
// includes any retries and backoff, because that is what a caller
// experiences. A context cancellation mid-request (the run ending) is
// not counted as a service error.
func (c Config) oneRequest(ctx context.Context, cl *client.Client, target string, rng uint64, names []string, worker int) sample {
	variant := rng % uint64(c.Variants)
	roll := float64(rng%1000) / 1000.0
	isMRC := roll < c.MRCFraction
	isClassify := !isMRC && roll < c.ClassifyFraction

	var path, body, class string
	switch {
	case isMRC:
		class = "mrc"
		path = "/v1/mrc"
		body = fmt.Sprintf(`{"workload":%q,"accesses":%d,"sizes_kb":[4,8,16,32],"rate":0.05}`,
			names[int(rng/7)%len(names)], 4000+variant*1000)
	case isClassify:
		class = "classify"
		path = "/v1/classify"
		body = fmt.Sprintf(`{"workload":%q,"accesses":%d,"size_kb":8,"emit":"summary"}`,
			names[int(rng/7)%len(names)], 4000+variant*1000)
	default:
		class = "sweep"
		path = "/v1/sweep"
		body = fmt.Sprintf(`{"experiments":["fig2"],"accesses":%d,"instructions":%d}`,
			4000+variant*1000, 4000+variant*1000)
	}

	header := http.Header{"X-Mct-Client": []string{fmt.Sprintf("mctload-%d", worker)}}
	if isMRC {
		// A small rotating tenant population, so quota accounting and
		// per-tenant metrics see realistic multi-tenant traffic.
		header.Set("X-Mct-Tenant", fmt.Sprintf("mctload-%d", worker%4))
	}
	req := client.Request{
		Path:        path,
		Body:        []byte(body),
		ContentType: "application/json",
		Header:      header,
		Hedge:       isClassify || isMRC,
	}

	t0 := time.Now()
	resp, err := cl.Do(ctx, req)
	lat := time.Since(t0)
	if err != nil {
		// The run context expiring (Duration is a WithTimeout) or the
		// caller canceling tears down in-flight requests with the context's
		// own error; a real failure canceled during backoff keeps its
		// original cause and is still counted.
		if ctx.Err() != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			return sample{class: class, status: -1} // run ended mid-flight; discard below
		}
		s := sample{class: class, target: target, kind: client.KindOf(err), attempts: 1, latency: lat, err: true}
		var ce *client.Error
		if errors.As(err, &ce) {
			s.status = ce.Status
			s.attempts = ce.Attempts
			if ce.Target != "" {
				// The terminal peer the failure actually came from — in a
				// multi-target run the taxonomy must name the flaky node.
				s.target = ce.Target
			}
			// Same rule as the response path: rejections (429/503) are the
			// admission controller working, not errors — even terminal ones.
			s.err = ce.Status == 0 || (ce.Status >= 500 && ce.Status != http.StatusServiceUnavailable)
		}
		return s
	}
	return sample{class: class, target: target, status: resp.Status, attempts: resp.Attempts, hedged: resp.Hedged,
		latency: lat, err: resp.Status >= 500 && resp.Status != http.StatusServiceUnavailable}
}

// aggregate folds samples into per-class results plus a total; a
// multi-target run appends one row per target and keys by_failure as
// kind@target, so a single flaky node is visible without cross-
// referencing raw samples.
func aggregate(samples []sample, elapsed time.Duration, multiTarget bool) []perf.LoadResult {
	classes := map[string][]sample{}
	var targetOrder []string
	for _, s := range samples {
		if s.status == -1 {
			continue // request torn down by the run ending, not a data point
		}
		classes[s.class] = append(classes[s.class], s)
		classes["total"] = append(classes["total"], s)
		if multiTarget && s.target != "" {
			key := "target:" + s.target
			if classes[key] == nil {
				targetOrder = append(targetOrder, key)
			}
			classes[key] = append(classes[key], s)
		}
	}
	sort.Strings(targetOrder)
	order := append([]string{"mrc", "classify", "sweep", "total"}, targetOrder...)
	var out []perf.LoadResult
	for _, name := range order {
		ss := classes[name]
		if len(ss) == 0 {
			continue
		}
		res := perf.LoadResult{Name: name, ByStatus: map[string]uint64{}}
		lats := make([]time.Duration, 0, len(ss))
		for _, s := range ss {
			res.Requests++
			if s.err {
				res.Errors++
			}
			key := "transport_error"
			if s.status > 0 {
				key = fmt.Sprint(s.status)
			}
			res.ByStatus[key]++
			if s.kind != client.FailNone {
				if res.ByFailure == nil {
					res.ByFailure = map[string]uint64{}
				}
				fkey := string(s.kind)
				if multiTarget && s.target != "" {
					fkey += "@" + s.target
				}
				res.ByFailure[fkey]++
			}
			// Attempts counts every HTTP request the client issued for this
			// logical one; a hedge accounts for one of the extras (hedging
			// more than once per request needs multiple slow tries — rare
			// enough that the split below is exact in practice).
			if extra := uint64(max(s.attempts-1, 0)); extra > 0 {
				if s.hedged {
					res.Hedges++
					extra--
				}
				res.Retries += extra
			}
			lats = append(lats, s.latency)
		}
		if sec := elapsed.Seconds(); sec > 0 {
			res.Throughput = float64(res.Requests) / sec
		}
		res.Latency = perf.SummarizeLatency(lats)
		out = append(out, res)
	}
	return out
}
