package sim

import (
	"repro/internal/classify"
	"repro/internal/mem"
	"repro/internal/trace"
)

// ClassifyScalar replays every memory reference of a stream through the
// classification run one access at a time. It is the reference
// implementation the batched kernel is differentially tested against;
// measurement tools should prefer ClassifyBatched. Returns the number of
// memory accesses classified.
func ClassifyScalar(run *classify.Run, s trace.Stream) uint64 {
	var in trace.Instr
	var n uint64
	for s.Next(&in) {
		if !in.Op.IsMem() {
			continue
		}
		run.Access(in.Addr, in.Op == trace.Store)
		n++
	}
	return n
}

// BatchClassifier drives a classification run from SoA record batches: it
// compacts each batch's loads and stores into parallel addr/store arrays
// and hands them to the kernel in one call. All scratch is owned by the
// classifier and reused, so the steady state allocates nothing per batch.
type BatchClassifier struct {
	Run *classify.Run
	// Addrs and Stores hold the compacted memory references of the most
	// recent Classify call — the accesses whose verdicts sit at the same
	// index in Run.Hits/Kinds/Classes. Valid until the next Classify.
	Addrs  []mem.Addr
	Stores []bool

	batch *trace.Batch
	size  int
}

// NewBatchClassifier builds a classifier over run processing batchSize
// records per kernel call (0 = trace.DefaultBatchSize).
func NewBatchClassifier(run *classify.Run, batchSize int) *BatchClassifier {
	if batchSize <= 0 {
		batchSize = trace.DefaultBatchSize
	}
	return &BatchClassifier{
		Run:    run,
		Addrs:  make([]mem.Addr, batchSize),
		Stores: make([]bool, batchSize),
		batch:  trace.NewBatch(batchSize),
		size:   batchSize,
	}
}

// Classify consumes one batch from src, classifying its memory references.
// It returns the number of records read (0 = src exhausted; check
// src.Err()) and how many of them were memory accesses. After it returns,
// bc.Run.Hits/Kinds/Classes hold the per-access verdicts for exactly the
// mem accesses of this batch, in order.
func (bc *BatchClassifier) Classify(src trace.BatchSource) (records, memOps int) {
	n := src.ReadBatch(bc.batch, bc.size)
	if n == 0 {
		return 0, 0
	}
	b := bc.batch
	m := 0
	for i := 0; i < n; i++ {
		if b.Op[i].IsMem() {
			bc.Addrs[m] = b.Addr[i]
			bc.Stores[m] = b.Op[i] == trace.Store
			m++
		}
	}
	bc.Run.AccessBatch(bc.Addrs[:m], bc.Stores[:m])
	return n, m
}

// ClassifyAll drains src, returning the total memory accesses classified.
func (bc *BatchClassifier) ClassifyAll(src trace.BatchSource) uint64 {
	var total uint64
	for {
		n, m := bc.Classify(src)
		if n == 0 {
			return total
		}
		total += uint64(m)
	}
}

// ClassifyBatched replays every memory reference from a batch source
// through run in batchSize blocks (0 = trace.DefaultBatchSize), returning
// the number of memory accesses classified. This is the fast path
// equivalent of ClassifyScalar.
func ClassifyBatched(run *classify.Run, src trace.BatchSource, batchSize int) uint64 {
	return NewBatchClassifier(run, batchSize).ClassifyAll(src)
}
