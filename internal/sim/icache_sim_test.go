package sim

import (
	"testing"

	"repro/internal/assist"
	"repro/internal/cache"
	"repro/internal/workload"
)

func iCfg() cache.Config {
	return cache.Config{Name: "L1I", Size: 8 * 1024, LineSize: 64, Assoc: 1}
}

func TestRunWithICache(t *testing.T) {
	b, _ := workload.ByName("gcc")
	opt := Options{Instructions: 20_000}
	opt.ICache = func() assist.System { return assist.MustNewBaseline(iCfg(), 0) }
	r := Run(b, assist.MustNewBaseline(L1Config(), 0), opt)
	if r.IFetch.Fetches == 0 {
		t.Fatal("instruction fetches not counted")
	}
	if r.ISys.Accesses == 0 {
		t.Fatal("I-system stats not collected")
	}
	if r.ISys.Misses == 0 {
		t.Error("gcc's code footprint should miss an 8KB I-cache")
	}
	// The I-cache must cost performance relative to the perfect front end.
	perfect := Run(b, assist.MustNewBaseline(L1Config(), 0), Options{Instructions: 20_000})
	if r.IPC() >= perfect.IPC() {
		t.Errorf("finite I-cache (%.3f) should be slower than perfect (%.3f)", r.IPC(), perfect.IPC())
	}
}

func TestRunWithoutICacheLeavesIStatsEmpty(t *testing.T) {
	b, _ := workload.ByName("gcc")
	r := Run(b, assist.MustNewBaseline(L1Config(), 0), Options{Instructions: 10_000})
	if r.IFetch.Fetches != 0 || r.ISys.Accesses != 0 {
		t.Error("I-side stats should be zero without an attached I-cache")
	}
}

func TestRunWithICacheDeterministic(t *testing.T) {
	b, _ := workload.ByName("vortex")
	opt := Options{Instructions: 15_000}
	opt.ICache = func() assist.System { return assist.MustNewBaseline(iCfg(), 0) }
	r1 := Run(b, assist.MustNewBaseline(L1Config(), 0), opt)
	r2 := Run(b, assist.MustNewBaseline(L1Config(), 0), opt)
	if r1.CPU != r2.CPU || r1.ISys != r2.ISys {
		t.Error("I-cache runs diverged")
	}
}
