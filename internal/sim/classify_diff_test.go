package sim

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/cache"
	"repro/internal/classify"
	"repro/internal/trace"
	"repro/internal/workload"
)

// diffInstrs is sized so the stream does not divide evenly by any tested
// batch size: the final batch is always partial, which is exactly the
// boundary the kernel must get right.
const diffInstrs = 6_000

// diffGeometries spans direct-mapped, high-associativity small-line, and
// mid-size set-associative caches, so set indexing, eviction, and the
// fully-associative oracle all get exercised under different shapes — plus
// the skewed and randomized index families, so the batch kernel is pinned
// against the scalar reference under non-modulo row mappings too.
func diffGeometries() []cache.Config {
	return []cache.Config{
		{Name: "L1D", Size: 16 << 10, LineSize: 64, Assoc: 1},
		{Name: "L1D", Size: 8 << 10, LineSize: 32, Assoc: 4},
		{Name: "L1D", Size: 32 << 10, LineSize: 64, Assoc: 2},
		{Name: "L1D", Size: 16 << 10, LineSize: 64, Assoc: 2, Indexing: cache.IndexSkewed},
		{Name: "L1D", Size: 16 << 10, LineSize: 64, Assoc: 2, Indexing: cache.IndexRandom, IndexSeed: 0xC0FFEE},
	}
}

// scalarReplay is the per-access reference: Run.Access spelled out so the
// test can capture each access's verdict into table. It returns the number
// of memory accesses replayed. TestClassifyBatchMatchesScalar pins this
// inline copy against sim.ClassifyScalar before trusting its table.
func scalarReplay(run *classify.Run, s trace.Stream, table *bytes.Buffer) uint64 {
	var in trace.Instr
	var n uint64
	for s.Next(&in) {
		if !in.Op.IsMem() {
			continue
		}
		store := in.Op == trace.Store
		hit, ev := run.CC.Access(in.Addr, store)
		kind := run.Oracle.Observe(in.Addr, hit)
		if !hit {
			run.Acc.Record(kind, ev.Class)
		}
		writeVerdict(table, n, uint64(in.Addr), store, hit, kind, ev.Class)
		n++
	}
	return n
}

// batchReplay drains src through the batch kernel, capturing every
// per-access verdict from Run.Hits/Kinds/Classes into table.
func batchReplay(run *classify.Run, src trace.BatchSource, batchSize int, table *bytes.Buffer) uint64 {
	bc := NewBatchClassifier(run, batchSize)
	var total uint64
	for {
		n, m := bc.Classify(src)
		if n == 0 {
			return total
		}
		for i := 0; i < m; i++ {
			writeVerdict(table, total+uint64(i), uint64(bc.Addrs[i]), bc.Stores[i],
				run.Hits[i], run.Kinds[i], run.Classes[i])
		}
		total += uint64(m)
	}
}

// writeVerdict renders one access's classification as a table row. Hits
// carry no MCT class, so the class column is only rendered for misses —
// mirroring the service's NDJSON emission.
func writeVerdict(w *bytes.Buffer, i, addr uint64, store, hit bool, kind classify.Kind, class interface{ String() string }) {
	if hit {
		fmt.Fprintf(w, "%d 0x%x %t hit\n", i, addr, store)
		return
	}
	fmt.Fprintf(w, "%d 0x%x %t %s %s\n", i, addr, store, kind, class.String())
}

func newDiffRun(t *testing.T, cfg cache.Config, tagBits int) *classify.Run {
	t.Helper()
	run, err := classify.NewRun(cfg, tagBits)
	if err != nil {
		t.Fatal(err)
	}
	return run
}

// TestClassifyBatchMatchesScalar is the differential property test for the
// batch kernel: across workloads, seeds, cache geometries, MCT tag widths,
// and batch sizes straddling the default (1, 255, 256, 257 — the stream
// length guarantees a partial final batch), the batched path must produce
// the same access count, the same accuracy accumulator, the same oracle
// miss mix, and a byte-identical per-access verdict table as the scalar
// reference.
func TestClassifyBatchMatchesScalar(t *testing.T) {
	for _, wl := range []string{"gcc", "swim"} {
		b, ok := workload.ByName(wl)
		if !ok {
			t.Fatalf("workload %q not registered", wl)
		}
		for _, seed := range []uint64{1, 0xC0FFEE} {
			for _, cfg := range diffGeometries() {
				for _, tagBits := range []int{0, 6} {
					name := fmt.Sprintf("%s/seed%d/%dKB-%dw-%dB-%s/tag%d",
						wl, seed, cfg.Size>>10, cfg.Assoc, cfg.LineSize, cfg.Indexing, tagBits)
					stream := func() trace.Stream {
						return trace.NewLimit(b.Stream(seed), diffInstrs)
					}

					scalar := newDiffRun(t, cfg, tagBits)
					var want bytes.Buffer
					wantN := scalarReplay(scalar, stream(), &want)

					// Pin the inline reference above to the exported one.
					ref := newDiffRun(t, cfg, tagBits)
					if refN := ClassifyScalar(ref, stream()); refN != wantN || ref.Acc != scalar.Acc {
						t.Fatalf("%s: scalarReplay diverges from ClassifyScalar: %d/%+v vs %d/%+v",
							name, wantN, scalar.Acc, refN, ref.Acc)
					}

					for _, batchSize := range []int{1, 255, 256, 257} {
						batch := newDiffRun(t, cfg, tagBits)
						var got bytes.Buffer
						gotN := batchReplay(batch, trace.NewStreamBatcher(stream()), batchSize, &got)
						if gotN != wantN {
							t.Errorf("%s/batch%d: %d accesses, scalar classified %d", name, batchSize, gotN, wantN)
						}
						if batch.Acc != scalar.Acc {
							t.Errorf("%s/batch%d: accuracy %+v, scalar %+v", name, batchSize, batch.Acc, scalar.Acc)
						}
						bcm, bca, bcf := batch.Oracle.Counts()
						scm, sca, scf := scalar.Oracle.Counts()
						if bcm != scm || bca != sca || bcf != scf {
							t.Errorf("%s/batch%d: oracle mix %d/%d/%d, scalar %d/%d/%d",
								name, batchSize, bcm, bca, bcf, scm, sca, scf)
						}
						if !bytes.Equal(got.Bytes(), want.Bytes()) {
							t.Errorf("%s/batch%d: verdict table differs from scalar (first divergence at byte %d)",
								name, batchSize, firstDiff(got.Bytes(), want.Bytes()))
						}
					}
				}
			}
		}
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// TestClassifyBatchAcrossWireFormats pins representation independence: the
// same instruction stream classified live (StreamBatcher), from a legacy
// v1 trace via the streaming Reader, from a fixed-stride v2 trace via the
// Reader, and from a v2 image via the zero-copy Mapped path must all
// reproduce the scalar verdict table byte for byte.
func TestClassifyBatchAcrossWireFormats(t *testing.T) {
	b, ok := workload.ByName("gcc")
	if !ok {
		t.Fatal("workload gcc not registered")
	}
	cfg := cache.Config{Name: "L1D", Size: 8 << 10, LineSize: 64, Assoc: 2}
	stream := func() trace.Stream {
		return trace.NewLimit(b.Stream(workload.DefaultSeed), diffInstrs)
	}

	scalar := newDiffRun(t, cfg, 0)
	var want bytes.Buffer
	wantN := scalarReplay(scalar, stream(), &want)

	var v1 bytes.Buffer
	if _, err := trace.WriteAll(&v1, stream()); err != nil {
		t.Fatal(err)
	}
	var v2 bytes.Buffer
	if _, err := trace.Transcode(&v2, bytes.NewReader(v1.Bytes()), trace.Limits{}); err != nil {
		t.Fatal(err)
	}

	sources := map[string]func() trace.BatchSource{
		"stream": func() trace.BatchSource { return trace.NewStreamBatcher(stream()) },
		"reader-v1": func() trace.BatchSource {
			r, err := trace.NewReader(bytes.NewReader(v1.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			return r
		},
		"reader-v2": func() trace.BatchSource {
			r, err := trace.NewReader(bytes.NewReader(v2.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			return r
		},
		"mapped-v2": func() trace.BatchSource {
			m, err := trace.OpenMapped(v2.Bytes(), trace.Limits{})
			if err != nil {
				t.Fatal(err)
			}
			return m
		},
	}
	for name, open := range sources {
		run := newDiffRun(t, cfg, 0)
		var got bytes.Buffer
		gotN := batchReplay(run, open(), 0, &got)
		if gotN != wantN || run.Acc != scalar.Acc {
			t.Errorf("%s: %d accesses/%+v, scalar %d/%+v", name, gotN, run.Acc, wantN, scalar.Acc)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Errorf("%s: verdict table differs from scalar (first divergence at byte %d)",
				name, firstDiff(got.Bytes(), want.Bytes()))
		}
	}
}

// TestClassifyBatchedSteadyStateAllocs pins the whole ingest stack —
// mapped decode, SoA compaction, batched cache+MCT+oracle update — at
// zero allocations per replay once warmed.
func TestClassifyBatchedSteadyStateAllocs(t *testing.T) {
	b, ok := workload.ByName("gcc")
	if !ok {
		t.Fatal("workload gcc not registered")
	}
	var v2 bytes.Buffer
	w, err := trace.NewWriterV2(&v2, 0)
	if err != nil {
		t.Fatal(err)
	}
	sb := trace.NewStreamBatcher(trace.NewLimit(b.Stream(workload.DefaultSeed), 4*trace.DefaultBatchSize))
	batch := trace.NewBatch(trace.DefaultBatchSize)
	for sb.ReadBatch(batch, trace.DefaultBatchSize) > 0 {
		if err := w.WriteBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	m, err := trace.OpenMapped(v2.Bytes(), trace.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	run := newDiffRun(t, cache.Config{Name: "L1D", Size: 16 << 10, LineSize: 64, Assoc: 1}, 0)
	bc := NewBatchClassifier(run, 0)
	bc.ClassifyAll(m) // warm: touch every line, size all scratch
	if avg := testing.AllocsPerRun(100, func() {
		m.Rewind()
		bc.ClassifyAll(m)
	}); avg != 0 {
		t.Fatalf("batched classification steady state allocates %v allocs/replay, want 0", avg)
	}
}
