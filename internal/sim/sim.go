// Package sim wires a synthetic benchmark, a functional cache system, the
// timing hierarchy, and the out-of-order CPU into one measured run, and
// provides the parallel sweep driver the experiments are built on.
package sim

import (
	"context"
	"fmt"

	"repro/internal/assist"
	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/hier"
	"repro/internal/runner"
	"repro/internal/trace"
	"repro/internal/workload"
)

// L1Config is the paper's default first-level data cache: 16KB
// direct-mapped, 64-byte lines.
func L1Config() cache.Config {
	return cache.Config{Name: "L1D", Size: 16 * 1024, LineSize: 64, Assoc: 1}
}

// Options parameterizes one run.
type Options struct {
	// Instructions is the measured instruction count (the paper measures
	// 300M; experiments here default to far fewer — see DESIGN.md).
	Instructions uint64
	// Seed feeds the workload generator.
	Seed uint64
	// Hier is the timing configuration; zero value means DefaultConfig.
	Hier hier.Config
	// CPU is the pipeline configuration; zero value means DefaultConfig.
	CPU cpu.Config
	// ICache, when non-nil, builds an instruction-side system attached to
	// the hierarchy (nil = the perfect I-cache every data-side experiment
	// assumes, matching the paper's data-cache focus).
	ICache SystemFactory
}

// withDefaults fills zero-valued fields.
func (o Options) withDefaults() Options {
	if o.Instructions == 0 {
		o.Instructions = 1_000_000
	}
	if o.Seed == 0 {
		o.Seed = workload.DefaultSeed
	}
	if o.Hier.MSHRs == 0 {
		o.Hier = hier.DefaultConfig()
	}
	if o.CPU.ROBSize == 0 {
		o.CPU = cpu.DefaultConfig()
	}
	return o
}

// Result is the complete outcome of one (benchmark, system) run.
type Result struct {
	Bench  string
	System string
	CPU    cpu.Metrics
	Sys    assist.Stats
	Hier   hier.Stats
	// ISys and IFetch are filled when an instruction cache was attached.
	ISys   assist.Stats
	IFetch hier.IStats
}

// IPC returns the run's instructions per cycle.
func (r Result) IPC() float64 { return r.CPU.IPC() }

// Run simulates one benchmark on one system configuration.
func Run(b *workload.Benchmark, sys assist.System, opt Options) Result {
	opt = opt.withDefaults()
	h := hier.MustNew(opt.Hier, sys)
	var isys assist.System
	if opt.ICache != nil {
		isys = opt.ICache()
		h.AttachI(isys)
	}
	c := cpu.MustNew(opt.CPU, h)
	stream := b.Stream(opt.Seed)
	m := c.Run(stream, opt.Instructions)
	r := Result{
		Bench:  b.Name,
		System: sys.Name(),
		CPU:    m,
		Sys:    sys.Stats(),
		Hier:   h.Stats(),
	}
	if isys != nil {
		r.ISys = isys.Stats()
		r.IFetch = h.IFetchStats()
	}
	return r
}

// SystemFactory builds a fresh functional system for one run. Factories
// let a sweep instantiate the same policy independently per benchmark.
type SystemFactory func() assist.System

// Sweep runs every benchmark against every system factory on the shared
// runner pool and returns results indexed [benchmark][system] in the given
// orders. Each run is independent and deterministic, and the runner merges
// by task index, so parallelism does not perturb results. A panic in any
// single run (a misconfigured system, say) is isolated by the pool and
// returned as an error naming the offending benchmark×system cell; under
// the runner's partial-results mode the error is a *runner.MultiError
// listing every failed cell.
func Sweep(benches []*workload.Benchmark, systems []SystemFactory, opt Options) ([][]Result, error) {
	opt = opt.withDefaults()
	ns := len(systems)
	flat, err := runner.Map(context.Background(), sweepTasks(benches, systems, opt))
	if err != nil {
		return nil, err
	}
	out := make([][]Result, len(benches))
	for bi := range out {
		out[bi] = flat[bi*ns : (bi+1)*ns : (bi+1)*ns]
	}
	return out, nil
}

// sweepTasks flattens the benchmark×system grid row-major into pool tasks.
func sweepTasks(benches []*workload.Benchmark, systems []SystemFactory, opt Options) []runner.Task[Result] {
	tasks := make([]runner.Task[Result], 0, len(benches)*len(systems))
	for _, b := range benches {
		b := b
		for si, f := range systems {
			f := f
			tasks = append(tasks, runner.NewTask(
				fmt.Sprintf("sim/%s/sys%d", b.Name, si),
				func(context.Context) (Result, error) { return Run(b, f(), opt), nil }))
		}
	}
	return tasks
}

// ReplayMem replays only the memory references of a benchmark through a
// functional system, without CPU or hierarchy timing — the fast path used
// by hit-rate-only measurements and tests. Prefetch requests are satisfied
// immediately (zero-latency arrival), which upper-bounds prefetch
// usefulness exactly as a bandwidth-unconstrained system would.
func ReplayMem(b *workload.Benchmark, sys assist.System, accesses uint64, seed uint64) assist.Stats {
	if seed == 0 {
		seed = workload.DefaultSeed
	}
	s := trace.NewMemOnly(b.Stream(seed))
	var in trace.Instr
	for n := uint64(0); n < accesses && s.Next(&in); n++ {
		out := sys.Access(trace.AccessOf(in))
		for _, pf := range out.Prefetches {
			sys.PrefetchArrived(pf)
		}
	}
	return sys.Stats()
}
