package sim

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/assist"
	"repro/internal/cache"
	"repro/internal/hier"
	"repro/internal/trace"
	"repro/internal/workload"
)

// geomFingerprintPath is the committed golden file. It was generated
// against the pre-pluggable-geometry cache (tag-per-line storage, modulo
// indexing hardwired), so the test proves the refactored modulo path is
// bit-identical to the seed behavior: same per-access classification
// verdicts and same end-to-end cycle counts, hashed.
const geomFingerprintPath = "testdata/geom_fingerprints.json"

// Set GEOM_FP_UPDATE=1 to regenerate the golden file instead of checking
// it. Only do this deliberately: rewriting the file forfeits the
// bit-identical-to-seed guarantee and re-baselines on current behavior.
func geomFPUpdating() bool { return os.Getenv("GEOM_FP_UPDATE") == "1" }

// fpWorkloads spans integer and FP flavors of the synthetic suite.
var fpWorkloads = []string{"compress", "gcc", "swim", "tomcatv", "vortex"}

// fpClassifyConfigs exercises direct-mapped, 2-way, small-line 4-way, and
// larger 2-way shapes through the classification pipeline.
var fpClassifyConfigs = []cache.Config{
	{Name: "L1D", Size: 16 << 10, LineSize: 64, Assoc: 1},
	{Name: "L1D", Size: 16 << 10, LineSize: 64, Assoc: 2},
	{Name: "L1D", Size: 8 << 10, LineSize: 32, Assoc: 4},
	{Name: "L1D", Size: 32 << 10, LineSize: 64, Assoc: 2},
}

// fpTimingConfigs are the end-to-end L1 shapes (the L2 and the rest of the
// hierarchy come from hier.DefaultConfig, with MSHRs varied).
var fpTimingConfigs = []cache.Config{
	{Name: "L1D", Size: 16 << 10, LineSize: 64, Assoc: 1},
	{Name: "L1D", Size: 16 << 10, LineSize: 64, Assoc: 2},
	{Name: "L1D", Size: 64 << 10, LineSize: 64, Assoc: 1},
	{Name: "L1D", Size: 64 << 10, LineSize: 64, Assoc: 2},
}

const fpTimingInstrs = 60_000

func sha256Hex(b []byte) string {
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:])
}

// geomFingerprints computes the full fingerprint map: classification
// verdict-table hashes for every workload×shape×tagBits cell, and
// end-to-end timing hashes (full sim.Result rendering, cycles included)
// for every workload×shape×MSHR cell.
func geomFingerprints(t *testing.T) map[string]string {
	t.Helper()
	out := map[string]string{}

	for _, wl := range fpWorkloads {
		b, ok := workload.ByName(wl)
		if !ok {
			t.Fatalf("workload %q not registered", wl)
		}
		for _, cfg := range fpClassifyConfigs {
			for _, tagBits := range []int{0, 6} {
				key := fmt.Sprintf("classify/%s/%dKB-%dw-%dB/tag%d",
					wl, cfg.Size>>10, cfg.Assoc, cfg.LineSize, tagBits)
				run := newDiffRun(t, cfg, tagBits)
				var table bytes.Buffer
				n := scalarReplay(run, trace.NewLimit(b.Stream(workload.DefaultSeed), diffInstrs), &table)
				fmt.Fprintf(&table, "n=%d acc=%+v\n", n, run.Acc)
				out[key] = sha256Hex(table.Bytes())
			}
		}
		for _, cfg := range fpTimingConfigs {
			for _, mshrs := range []int{1, 16} {
				key := fmt.Sprintf("timing/%s/%dKB-%dw/mshr%d", wl, cfg.Size>>10, cfg.Assoc, mshrs)
				hc := hier.DefaultConfig()
				hc.MSHRs = mshrs
				r := Run(b, assist.MustNewBaseline(cfg, 0), Options{
					Instructions: fpTimingInstrs,
					Hier:         hc,
				})
				out[key] = sha256Hex([]byte(fmt.Sprintf("%+v", r)))
			}
		}
	}
	return out
}

// TestModuloGeometryFingerprintsMatchSeed is the PR-6-style multi-config
// differential: the modulo-indexed cache, now routed through the pluggable
// geometry layer with victim addresses stored in lines rather than
// recomputed from (tag, set), must reproduce the seed's classification
// verdicts and end-to-end timing bit for bit across 40 classification
// cells and 40 timing cells.
func TestModuloGeometryFingerprintsMatchSeed(t *testing.T) {
	got := geomFingerprints(t)

	if geomFPUpdating() {
		if err := os.MkdirAll(filepath.Dir(geomFingerprintPath), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(geomFingerprintPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d fingerprints", geomFingerprintPath, len(got))
		return
	}

	data, err := os.ReadFile(geomFingerprintPath)
	if err != nil {
		t.Fatalf("reading golden fingerprints (regenerate with GEOM_FP_UPDATE=1): %v", err)
	}
	var want map[string]string
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parsing %s: %v", geomFingerprintPath, err)
	}

	keys := make([]string, 0, len(want))
	for k := range want {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if got[k] == "" {
			t.Errorf("%s: fingerprint no longer computed", k)
			continue
		}
		if got[k] != want[k] {
			t.Errorf("%s: fingerprint %s differs from seed %s", k, got[k][:12], want[k][:12])
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("%s: computed but missing from golden file (regenerate deliberately)", k)
		}
	}
}
