package sim

import (
	"testing"

	"repro/internal/assist"
	"repro/internal/victim"
	"repro/internal/workload"
)

func TestL1ConfigMatchesPaper(t *testing.T) {
	cfg := L1Config()
	if cfg.Size != 16*1024 || cfg.LineSize != 64 || cfg.Assoc != 1 {
		t.Errorf("L1 config = %+v; paper uses 16KB DM with 64B lines", cfg)
	}
}

func TestRunProducesMetrics(t *testing.T) {
	b, _ := workload.ByName("gcc")
	r := Run(b, assist.MustNewBaseline(L1Config(), 0), Options{Instructions: 20_000})
	if r.Bench != "gcc" || r.System != "base" {
		t.Errorf("labels = %q %q", r.Bench, r.System)
	}
	if r.CPU.Instructions < 20_000 {
		t.Errorf("retired %d", r.CPU.Instructions)
	}
	if r.IPC() <= 0 || r.IPC() > 8 {
		t.Errorf("IPC = %.3f", r.IPC())
	}
	if r.Sys.Accesses == 0 || r.Hier.Accesses == 0 {
		t.Error("stats not collected")
	}
}

func TestRunDeterministic(t *testing.T) {
	b, _ := workload.ByName("li")
	opt := Options{Instructions: 15_000, Seed: 77}
	r1 := Run(b, assist.MustNewBaseline(L1Config(), 0), opt)
	r2 := Run(b, assist.MustNewBaseline(L1Config(), 0), opt)
	if r1.CPU != r2.CPU || r1.Sys != r2.Sys || r1.Hier != r2.Hier {
		t.Error("identical runs diverged")
	}
}

func TestSweepShape(t *testing.T) {
	benches := workload.Carried()[:3]
	systems := []SystemFactory{
		func() assist.System { return assist.MustNewBaseline(L1Config(), 0) },
		func() assist.System { return victim.MustNew(L1Config(), 0, 8, victim.Traditional) },
	}
	res, err := Sweep(benches, systems, Options{Instructions: 10_000})
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if len(res) != 3 || len(res[0]) != 2 {
		t.Fatalf("sweep shape = %dx%d", len(res), len(res[0]))
	}
	for bi, row := range res {
		for si, r := range row {
			if r.Bench != benches[bi].Name {
				t.Errorf("[%d][%d] bench = %q", bi, si, r.Bench)
			}
			if r.CPU.Instructions == 0 {
				t.Errorf("[%d][%d] empty run", bi, si)
			}
		}
	}
	if res[0][0].System == res[0][1].System {
		t.Error("system labels not distinct")
	}
}

func TestSweepMatchesSerialRuns(t *testing.T) {
	// Parallel execution must not perturb results.
	b := workload.Carried()[0]
	opt := Options{Instructions: 10_000}
	serial := Run(b, assist.MustNewBaseline(L1Config(), 0), opt)
	par, err := Sweep([]*workload.Benchmark{b}, []SystemFactory{
		func() assist.System { return assist.MustNewBaseline(L1Config(), 0) },
	}, opt)
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if par[0][0].CPU != serial.CPU {
		t.Error("parallel sweep diverged from serial run")
	}
}

func TestReplayMem(t *testing.T) {
	b, _ := workload.ByName("compress")
	st := ReplayMem(b, assist.MustNewBaseline(L1Config(), 0), 30_000, 0)
	if st.Accesses != 30_000 {
		t.Errorf("accesses = %d", st.Accesses)
	}
	if st.Misses == 0 || st.L1Hits == 0 {
		t.Errorf("degenerate replay: %+v", st)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Instructions == 0 || o.Seed == 0 || o.Hier.MSHRs == 0 || o.CPU.ROBSize == 0 {
		t.Errorf("defaults not filled: %+v", o)
	}
}
