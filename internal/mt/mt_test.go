package mt

import (
	"testing"

	"repro/internal/workload"
)

func cfgSmall() Config {
	c := DefaultConfig()
	c.AccessesPerThread = 40_000
	return c
}

func pick(t *testing.T, names ...string) []*workload.Benchmark {
	t.Helper()
	out := make([]*workload.Benchmark, len(names))
	for i, n := range names {
		b, ok := workload.ByName(n)
		if !ok {
			t.Fatalf("benchmark %s missing", n)
		}
		out[i] = b
	}
	return out
}

func TestShareBasics(t *testing.T) {
	r, err := Share(pick(t, "gcc", "compress"), cfgSmall())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Threads) != 2 {
		t.Fatalf("threads = %d", len(r.Threads))
	}
	for i, th := range r.Threads {
		if th.Accesses != 40_000 {
			t.Errorf("thread %d accesses = %d", i, th.Accesses)
		}
		if th.Misses == 0 {
			t.Errorf("thread %d never missed", i)
		}
		if th.ConflictMisses > th.Misses {
			t.Errorf("thread %d conflict accounting broken", i)
		}
	}
	if r.TotalConflictShare() <= 0 || r.TotalConflictShare() > 1 {
		t.Errorf("conflict share = %g", r.TotalConflictShare())
	}
}

func TestSharingInflatesMissRates(t *testing.T) {
	// The paper's premise: threads sharing a cache suffer misses they
	// would not suffer alone.
	r, err := Share(pick(t, "gcc", "vortex"), cfgSmall())
	if err != nil {
		t.Fatal(err)
	}
	for i, th := range r.Threads {
		if th.MissRate() < r.SoloMissRates[i]*0.9 {
			t.Errorf("thread %s: shared miss rate %.3f below solo %.3f",
				th.Name, th.MissRate(), r.SoloMissRates[i])
		}
	}
	// And at least some of the inflation is attributable cross-thread
	// conflict (the MCT-visible part).
	if r.CrossConflictShare() == 0 {
		t.Error("no cross-thread conflicts detected between co-running threads")
	}
}

func TestSelfSharingProducesCrossConflicts(t *testing.T) {
	// Two copies of a conflict-heavy benchmark with different seeds fight
	// over the same sets; cross-thread conflicts must be substantial.
	r, err := Share(pick(t, "tomcatv", "tomcatv"), cfgSmall())
	if err != nil {
		t.Fatal(err)
	}
	if r.CrossConflictShare() < 0.01 {
		t.Errorf("tomcatv pair cross-conflict share = %.3f; expected heavy interference", r.CrossConflictShare())
	}
}

func TestShareErrors(t *testing.T) {
	if _, err := Share(nil, cfgSmall()); err == nil {
		t.Error("empty benchmark list accepted")
	}
	bad := cfgSmall()
	bad.L1.Size = 7
	if _, err := Share(pick(t, "gcc"), bad); err == nil {
		t.Error("bad cache config accepted")
	}
}

func TestCoScheduleMatrixRanks(t *testing.T) {
	benches := pick(t, "go", "m88ksim", "tomcatv", "wave5")
	cfg := cfgSmall()
	cfg.AccessesPerThread = 20_000
	scores, err := CoScheduleMatrix(benches, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 6 { // C(4,2)
		t.Fatalf("pairs = %d", len(scores))
	}
	for i := 1; i < len(scores); i++ {
		if scores[i-1].CrossConflictRate > scores[i].CrossConflictRate {
			t.Fatal("matrix not sorted")
		}
	}
	// The cache-friendly pair (go, m88ksim) must rank strictly better
	// than the conflict monsters (tomcatv, wave5).
	rank := map[[2]string]int{}
	for i, s := range scores {
		rank[[2]string{s.A, s.B}] = i
	}
	friendly, heavy := -1, -1
	for k, i := range rank {
		switch {
		case (k[0] == "go" && k[1] == "m88ksim") || (k[0] == "m88ksim" && k[1] == "go"):
			friendly = i
		case (k[0] == "tomcatv" && k[1] == "wave5") || (k[0] == "wave5" && k[1] == "tomcatv"):
			heavy = i
		}
	}
	if friendly < 0 || heavy < 0 {
		t.Fatal("expected pairs missing from matrix")
	}
	if friendly > heavy {
		t.Errorf("co-schedule ranking inverted: friendly pair rank %d, heavy pair rank %d", friendly, heavy)
	}
}

func TestDeterministicShares(t *testing.T) {
	r1, err := Share(pick(t, "li", "perl"), cfgSmall())
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := Share(pick(t, "li", "perl"), cfgSmall())
	for i := range r1.Threads {
		if r1.Threads[i] != r2.Threads[i] {
			t.Fatal("shared replay not deterministic")
		}
	}
}
