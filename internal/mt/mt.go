// Package mt implements the paper's Section-5.6 "multithreaded
// architectures" application: threads dynamically sharing one data cache
// are particularly prone to conflict misses, the conflicts cannot be
// removed by software within one thread (they come from the other
// thread), and a scheduler can use the Miss Classification Table to
// identify job pairs that conflict badly and avoid co-scheduling them.
//
// The model is a functional shared-cache replay: the threads' access
// streams interleave round-robin in fixed-size bursts (an SMT fetch
// policy's coarse effect), one MCT classifies the shared cache's misses,
// and per-thread attribution separates self-conflicts from cross-thread
// conflicts. CoScheduleMatrix runs every pair and ranks them, which is
// exactly the scheduler feedback loop the paper sketches.
package mt

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// ThreadStats is one thread's view of a shared-cache run.
type ThreadStats struct {
	Name     string
	Accesses uint64
	Misses   uint64
	// ConflictMisses are this thread's misses the MCT labeled conflict;
	// CrossConflicts is the subset where the evicted line belonged to
	// another thread (inter-thread conflict, invisible to single-thread
	// tuning).
	ConflictMisses uint64
	CrossConflicts uint64
}

// MissRate returns misses/accesses.
func (t ThreadStats) MissRate() float64 { return stats.Ratio(t.Misses, t.Accesses) }

// Result summarizes a shared-cache run.
type Result struct {
	Threads []ThreadStats
	// SoloMissRates are each thread's miss rates when run alone on the
	// same cache, for the interference comparison.
	SoloMissRates []float64
}

// TotalConflictShare returns the fraction of all misses that were
// conflict-classified.
func (r Result) TotalConflictShare() float64 {
	var conf, miss uint64
	for _, t := range r.Threads {
		conf += t.ConflictMisses
		miss += t.Misses
	}
	return stats.Ratio(conf, miss)
}

// CrossConflictShare returns the fraction of all misses that were
// cross-thread conflicts — the paper's co-scheduling badness signal.
func (r Result) CrossConflictShare() float64 {
	var cross, miss uint64
	for _, t := range r.Threads {
		cross += t.CrossConflicts
		miss += t.Misses
	}
	return stats.Ratio(cross, miss)
}

// Config parameterizes a shared run.
type Config struct {
	// L1 is the shared cache shape.
	L1 cache.Config
	// Burst is how many memory accesses a thread issues before the next
	// thread takes over.
	Burst int
	// AccessesPerThread bounds the replay.
	AccessesPerThread uint64
	// Seed feeds the workloads.
	Seed uint64
}

// DefaultConfig shares the paper's 16KB DM L1 between threads with an
// 8-access interleave.
func DefaultConfig() Config {
	return Config{
		L1:                cache.Config{Name: "L1D", Size: 16 << 10, LineSize: 64, Assoc: 1},
		Burst:             8,
		AccessesPerThread: 200_000,
		Seed:              workload.DefaultSeed,
	}
}

// lineOwner tracks which thread most recently filled each resident line.
type lineOwner map[mem.LineAddr]int

// Share replays the benchmarks' access streams through one shared cache
// and attributes every classified miss.
func Share(benches []*workload.Benchmark, cfg Config) (Result, error) {
	if len(benches) == 0 {
		return Result{}, fmt.Errorf("mt: no benchmarks")
	}
	if cfg.Burst <= 0 {
		cfg.Burst = 8
	}
	l1, err := cache.New(cfg.L1)
	if err != nil {
		return Result{}, err
	}
	mct, err := core.New(core.Config{Sets: cfg.L1.Sets()})
	if err != nil {
		return Result{}, err
	}
	geom := l1.Geometry()

	streams := make([]trace.Stream, len(benches))
	threads := make([]ThreadStats, len(benches))
	for i, b := range benches {
		streams[i] = trace.NewMemOnly(b.Stream(cfg.Seed + uint64(i)))
		threads[i].Name = b.Name
	}
	owner := lineOwner{}

	live := len(benches)
	var in trace.Instr
	for live > 0 {
		live = 0
		for ti := range streams {
			if threads[ti].Accesses >= cfg.AccessesPerThread {
				continue
			}
			live++
			for n := 0; n < cfg.Burst && threads[ti].Accesses < cfg.AccessesPerThread; n++ {
				if !streams[ti].Next(&in) {
					threads[ti].Accesses = cfg.AccessesPerThread
					break
				}
				threads[ti].Accesses++
				isStore := in.Op == trace.Store
				typ := mem.Load
				if isStore {
					typ = mem.Store
				}
				if l1.Access(in.Addr, typ) {
					continue
				}
				threads[ti].Misses++
				set, tag := geom.Set(in.Addr), geom.Tag(in.Addr)
				class := mct.ClassifyMiss(set, tag)
				ev := l1.Fill(in.Addr, isStore, class == core.Conflict)
				if class == core.Conflict {
					threads[ti].ConflictMisses++
				}
				if ev.Occurred {
					mct.RecordEviction(geom.SetOfLine(ev.Line), geom.TagOfLine(ev.Line))
					if prev, ok := owner[ev.Line]; ok && prev != ti && class == core.Conflict {
						threads[ti].CrossConflicts++
					}
					delete(owner, ev.Line)
				}
				owner[geom.Line(in.Addr)] = ti
			}
		}
	}

	res := Result{Threads: threads, SoloMissRates: make([]float64, len(benches))}
	for i, b := range benches {
		res.SoloMissRates[i] = soloMissRate(b, cfg, uint64(i))
	}
	return res, nil
}

// soloMissRate measures a benchmark's miss rate alone on the same cache,
// using the exact stream (same per-thread seed) it had in the shared run.
func soloMissRate(b *workload.Benchmark, cfg Config, tid uint64) float64 {
	l1 := cache.MustNew(cfg.L1)
	s := trace.NewMemOnly(b.Stream(cfg.Seed + tid))
	var in trace.Instr
	for n := uint64(0); n < cfg.AccessesPerThread && s.Next(&in); n++ {
		typ := mem.Load
		if in.Op == trace.Store {
			typ = mem.Store
		}
		if !l1.Access(in.Addr, typ) {
			l1.Fill(in.Addr, in.Op == trace.Store, false)
		}
	}
	return l1.Stats().MissRate()
}

// PairScore is one co-schedule candidate pair with its measured
// cross-thread conflict production. CrossConflictRate is cross-thread
// conflict misses per access — an absolute interference rate, so a pair
// of quiet jobs is not penalized for having few misses overall.
type PairScore struct {
	A, B              string
	CrossConflictRate float64
	CombinedMissRate  float64
}

// CoScheduleMatrix measures every pair from the benchmark list and
// returns the pairs sorted best (least cross-conflict) first — the
// ranking a classification-aware SMT scheduler would maintain.
func CoScheduleMatrix(benches []*workload.Benchmark, cfg Config) ([]PairScore, error) {
	type job struct{ i, j int }
	var jobs []job
	for i := 0; i < len(benches); i++ {
		for j := i + 1; j < len(benches); j++ {
			jobs = append(jobs, job{i, j})
		}
	}
	scores, err := runner.MapN(context.Background(), len(jobs),
		func(i int) string {
			return "cosched/" + benches[jobs[i].i].Name + "+" + benches[jobs[i].j].Name
		},
		func(_ context.Context, ji int) (PairScore, error) {
			jb := jobs[ji]
			r, err := Share([]*workload.Benchmark{benches[jb.i], benches[jb.j]}, cfg)
			if err != nil {
				return PairScore{}, err
			}
			var miss, acc, cross uint64
			for _, t := range r.Threads {
				miss += t.Misses
				acc += t.Accesses
				cross += t.CrossConflicts
			}
			return PairScore{
				A: benches[jb.i].Name, B: benches[jb.j].Name,
				CrossConflictRate: stats.Ratio(cross, acc),
				CombinedMissRate:  stats.Ratio(miss, acc),
			}, nil
		})
	if err != nil {
		return nil, err
	}
	sort.Slice(scores, func(i, j int) bool {
		return scores[i].CrossConflictRate < scores[j].CrossConflictRate
	})
	return scores, nil
}
