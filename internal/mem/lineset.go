package mem

import "math/bits"

// LineSet is a set of cache-line addresses backed by a paged bitmap: the
// line-address space is divided into fixed-size pages of bits, and only
// pages that have ever held a member are materialized. Membership tests and
// inserts are a map lookup plus bit arithmetic, with no per-element
// allocation — a page allocates once, on its first member, and then absorbs
// every other line in its range for free.
//
// The oracle miss classifier uses a LineSet for its "ever touched" record,
// where the map[LineAddr]struct{} it replaces paid a hash insert (and,
// amortized, a rehash) for every first touch. Workloads reference lines
// with high spatial locality, so the page working set stays tiny: a page
// covers 2^16 lines = 4MB of address space at 64-byte lines.
//
// The zero value is an empty set ready for use.
type LineSet struct {
	pages map[uint64]*linePage
	count uint64

	// lastKey/lastPage memoize the most recently used page: spatially
	// local access streams stay on one page for long runs, and the
	// memo answers those without hashing into the page map at all.
	lastKey  uint64
	lastPage *linePage
}

// linePageBits is log2 of the lines covered per page. 2^16 lines per page
// makes each page an 8KB bitmap — large enough that sequential sweeps stay
// on one page for millions of bytes, small enough that sparse pointer
// chases don't balloon memory.
const linePageBits = 16

// linePageWords is the uint64 words per page.
const linePageWords = (1 << linePageBits) / 64

type linePage [linePageWords]uint64

// split decomposes a line address into page key, word index, and bit mask.
func (s *LineSet) split(line LineAddr) (page uint64, word int, mask uint64) {
	page = uint64(line) >> linePageBits
	low := uint64(line) & (1<<linePageBits - 1)
	return page, int(low >> 6), 1 << (low & 63)
}

// page returns the materialized page covering key, or nil.
func (s *LineSet) page(key uint64) *linePage {
	if s.lastPage != nil && s.lastKey == key {
		return s.lastPage
	}
	p := s.pages[key]
	if p != nil {
		s.lastKey, s.lastPage = key, p
	}
	return p
}

// TestAndSet inserts line and reports whether it was already a member.
// This is the oracle hot path: one call answers "first touch?" and records
// the touch.
func (s *LineSet) TestAndSet(line LineAddr) bool {
	key, word, mask := s.split(line)
	p := s.page(key)
	if p == nil {
		if s.pages == nil {
			s.pages = make(map[uint64]*linePage)
		}
		p = new(linePage)
		s.pages[key] = p
		s.lastKey, s.lastPage = key, p
	}
	if p[word]&mask != 0 {
		return true
	}
	p[word] |= mask
	s.count++
	return false
}

// Add inserts line into the set.
func (s *LineSet) Add(line LineAddr) { s.TestAndSet(line) }

// Contains reports membership without modifying the set.
func (s *LineSet) Contains(line LineAddr) bool {
	key, word, mask := s.split(line)
	p := s.page(key)
	return p != nil && p[word]&mask != 0
}

// Len returns the number of distinct lines in the set.
func (s *LineSet) Len() uint64 { return s.count }

// Pages returns how many bitmap pages are materialized, for memory
// accounting and tests.
func (s *LineSet) Pages() int { return len(s.pages) }

// Clear empties the set, retaining the materialized pages so a reused set
// reaches steady state (zero allocations) immediately.
func (s *LineSet) Clear() {
	for _, p := range s.pages {
		*p = linePage{}
	}
	s.count = 0
}

// PopCount recomputes the member count from the bitmap, for tests that
// cross-check the fast counter.
func (s *LineSet) PopCount() uint64 {
	var n uint64
	for _, p := range s.pages {
		for _, w := range p {
			n += uint64(bits.OnesCount64(w))
		}
	}
	return n
}
