package mem

import (
	"testing"
	"testing/quick"
)

func TestNewGeometryValidation(t *testing.T) {
	cases := []struct {
		lineSize, sets int
		ok             bool
	}{
		{64, 256, true},
		{64, 1, true},
		{1, 1, true},
		{32, 128, true},
		{0, 256, false},
		{64, 0, false},
		{63, 256, false},
		{64, 255, false},
		{-64, 256, false},
		{64, -4, false},
	}
	for _, c := range cases {
		_, err := NewGeometry(c.lineSize, c.sets)
		if (err == nil) != c.ok {
			t.Errorf("NewGeometry(%d, %d): err=%v, want ok=%v", c.lineSize, c.sets, err, c.ok)
		}
	}
}

func TestMustGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustGeometry(63, 256) did not panic")
		}
	}()
	MustGeometry(63, 256)
}

func TestGeometryDecomposition16KBDM(t *testing.T) {
	// The paper's L1: 16KB direct-mapped, 64B lines -> 256 sets.
	g := MustGeometry(64, 256)
	if g.LineSize() != 64 || g.Sets() != 256 || g.LineShift() != 6 {
		t.Fatalf("geometry fields: lineSize=%d sets=%d shift=%d", g.LineSize(), g.Sets(), g.LineShift())
	}
	a := Addr(0x12345678)
	if got, want := g.Line(a), LineAddr(0x12345678>>6); got != want {
		t.Errorf("Line = %#x, want %#x", got, want)
	}
	if got, want := g.Set(a), (uint64(0x12345678)>>6)&0xff; got != want {
		t.Errorf("Set = %#x, want %#x", got, want)
	}
	if got, want := g.Tag(a), uint64(0x12345678)>>14; got != want {
		t.Errorf("Tag = %#x, want %#x", got, want)
	}
}

func TestLineBaseAndNextLine(t *testing.T) {
	g := MustGeometry(64, 256)
	for _, a := range []Addr{0, 1, 63, 64, 65, 0xfff, 0x10000} {
		base := g.LineBase(a)
		if base%64 != 0 {
			t.Errorf("LineBase(%#x) = %#x not line-aligned", a, base)
		}
		if base > a || a-base >= 64 {
			t.Errorf("LineBase(%#x) = %#x not covering address", a, base)
		}
		if got := g.NextLine(a); got != base+64 {
			t.Errorf("NextLine(%#x) = %#x, want %#x", a, got, base+64)
		}
	}
}

func TestComposeInvertsTagSet(t *testing.T) {
	g := MustGeometry(64, 256)
	f := func(a Addr) bool {
		base := g.LineBase(a)
		return g.Compose(g.Tag(a), g.Set(a)) == base
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestComposeRoundTripAcrossShapes pins the modulo family's invertibility
// property — Compose∘(Tag,Set) = LineBase, at both the address and the
// line level — across the shapes the repo uses, degenerate single-set
// geometries included. Only the modulo family has this inverse: the cache
// layer stores full line addresses in Line.Addr precisely because skewed
// and randomized indexing do not.
func TestComposeRoundTripAcrossShapes(t *testing.T) {
	for _, sh := range []struct{ line, sets int }{
		{32, 1}, {32, 64}, {64, 1}, {64, 256}, {64, 8192}, {128, 512},
	} {
		g := MustGeometry(sh.line, sh.sets)
		f := func(a Addr) bool {
			if g.Compose(g.Tag(a), g.Set(a)) != g.LineBase(a) {
				return false
			}
			l := g.Line(a)
			return g.Compose(g.TagOfLine(l), g.SetOfLine(l)) == g.LineBase(a)
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%dB lines × %d sets: %v", sh.line, sh.sets, err)
		}
	}
}

func TestTagOfLineMatchesTag(t *testing.T) {
	g := MustGeometry(64, 512)
	f := func(a Addr) bool {
		return g.TagOfLine(g.Line(a)) == g.Tag(a) &&
			g.SetOfLine(g.Line(a)) == g.Set(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSameLine(t *testing.T) {
	g := MustGeometry(64, 256)
	if !g.SameLine(0x100, 0x13f) {
		t.Error("0x100 and 0x13f should share a line")
	}
	if g.SameLine(0x13f, 0x140) {
		t.Error("0x13f and 0x140 should not share a line")
	}
}

func TestAliasingAddressesShareSets(t *testing.T) {
	// Two addresses 16KB apart map to the same set of a 16KB DM cache but
	// different tags — the aliasing property the workload suite builds on.
	g := MustGeometry(64, 256)
	a, b := Addr(0x2000_0000), Addr(0x2000_4000)
	if g.Set(a) != g.Set(b) {
		t.Error("16KB-separated addresses should alias in a 16KB DM cache")
	}
	if g.Tag(a) == g.Tag(b) {
		t.Error("aliasing addresses must differ in tag")
	}
	// In a 64KB DM cache (1024 sets) they do NOT alias.
	g64 := MustGeometry(64, 1024)
	if g64.Set(a) == g64.Set(b) {
		t.Error("16KB-separated addresses should not alias in a 64KB DM cache")
	}
	// 256KB separation aliases in both.
	c := Addr(0x2004_0000)
	if g.Set(a) != g.Set(c) || g64.Set(a) != g64.Set(c) {
		t.Error("256KB-separated addresses should alias in both 16KB and 64KB caches")
	}
}

func TestAccessTypeProperties(t *testing.T) {
	if !Load.IsDemand() || !Store.IsDemand() || !IFetch.IsDemand() {
		t.Error("program accesses are demand accesses")
	}
	if PrefetchRead.IsDemand() {
		t.Error("prefetches are not demand accesses")
	}
	names := map[AccessType]string{Load: "load", Store: "store", IFetch: "ifetch", PrefetchRead: "prefetch"}
	for at, want := range names {
		if at.String() != want {
			t.Errorf("%v.String() = %q, want %q", uint8(at), at.String(), want)
		}
	}
	if AccessType(99).String() == "" {
		t.Error("unknown access type should still render")
	}
}
