// Package mem defines the primitive address and access types shared by
// every layer of the simulator: physical addresses, cache-line addresses,
// and memory access records.
//
// All address arithmetic (line, set, tag extraction) lives here so that the
// cache model, the Miss Classification Table, and the assist buffers agree
// byte-for-byte on how an address decomposes.
package mem

import "fmt"

// Addr is a byte address in the simulated physical address space.
type Addr uint64

// LineAddr is an address with the intra-line offset stripped: Addr >> lineShift.
// Two accesses with the same LineAddr touch the same cache line.
type LineAddr uint64

// AccessType distinguishes the kinds of memory operations the hierarchy sees.
type AccessType uint8

const (
	// Load is a data read.
	Load AccessType = iota
	// Store is a data write.
	Store
	// IFetch is an instruction fetch. The paper applies its techniques to
	// the data cache only, but the hierarchy accepts instruction fetches so
	// the same machinery extends to the I-cache.
	IFetch
	// PrefetchRead is a hardware prefetch injected by an assist structure.
	// Prefetches are discarded (not stalled) when MSHRs are exhausted.
	PrefetchRead
)

// String returns a short human-readable name for the access type.
func (t AccessType) String() string {
	switch t {
	case Load:
		return "load"
	case Store:
		return "store"
	case IFetch:
		return "ifetch"
	case PrefetchRead:
		return "prefetch"
	default:
		return fmt.Sprintf("AccessType(%d)", uint8(t))
	}
}

// IsDemand reports whether the access is a demand access (issued by the
// program) rather than a speculative hardware prefetch.
func (t AccessType) IsDemand() bool { return t != PrefetchRead }

// Access is one memory reference presented to the cache hierarchy.
type Access struct {
	// Addr is the byte address referenced.
	Addr Addr
	// PC is the program counter of the instruction that issued the access.
	// Exclusion schemes indexed by instruction (Tyson et al.) key off this.
	PC Addr
	// Type is the kind of access.
	Type AccessType
}

// Geometry captures how addresses decompose for a particular cache shape.
// It is immutable once constructed.
type Geometry struct {
	lineSize  int
	sets      int
	lineShift uint
	setShift  uint
	setMask   uint64
	setBits   uint // log2(sets), precomputed for the tag split
}

// NewGeometry builds the address-decomposition helper for a cache with the
// given line size (bytes) and number of sets. Both must be powers of two.
func NewGeometry(lineSize, sets int) (Geometry, error) {
	if lineSize <= 0 || lineSize&(lineSize-1) != 0 {
		return Geometry{}, fmt.Errorf("mem: line size %d is not a positive power of two", lineSize)
	}
	if sets <= 0 || sets&(sets-1) != 0 {
		return Geometry{}, fmt.Errorf("mem: set count %d is not a positive power of two", sets)
	}
	g := Geometry{
		lineSize:  lineSize,
		sets:      sets,
		lineShift: uint(log2(lineSize)),
	}
	g.setShift = g.lineShift
	g.setMask = uint64(sets - 1)
	g.setBits = uint(log2(sets))
	return g, nil
}

// MustGeometry is NewGeometry that panics on invalid parameters. Use for
// compile-time-constant shapes in tests and examples.
func MustGeometry(lineSize, sets int) Geometry {
	g, err := NewGeometry(lineSize, sets)
	if err != nil {
		panic(err)
	}
	return g
}

// LineSize returns the cache line size in bytes.
func (g Geometry) LineSize() int { return g.lineSize }

// Sets returns the number of sets the geometry indexes.
func (g Geometry) Sets() int { return g.sets }

// LineShift returns log2(line size).
func (g Geometry) LineShift() uint { return g.lineShift }

// Line returns the line address of a byte address.
func (g Geometry) Line(a Addr) LineAddr { return LineAddr(uint64(a) >> g.lineShift) }

// LineBase returns the first byte address of the line containing a.
func (g Geometry) LineBase(a Addr) Addr {
	return Addr(uint64(a) &^ (uint64(g.lineSize) - 1))
}

// NextLine returns the byte address of the start of the line following the
// one containing a. Next-line prefetchers use this.
func (g Geometry) NextLine(a Addr) Addr {
	return g.LineBase(a) + Addr(g.lineSize)
}

// Set returns the set index of a byte address.
func (g Geometry) Set(a Addr) uint64 {
	return (uint64(a) >> g.setShift) & g.setMask
}

// SetOfLine returns the set index of a line address.
func (g Geometry) SetOfLine(l LineAddr) uint64 {
	return uint64(l) & g.setMask
}

// Tag returns the tag of a byte address: the bits above the set index.
func (g Geometry) Tag(a Addr) uint64 {
	return uint64(a) >> (g.setShift + g.setBits)
}

// TagOfLine returns the tag of a line address.
func (g Geometry) TagOfLine(l LineAddr) uint64 {
	return uint64(l) >> g.setBits
}

// Compose reconstructs the first byte address of the line with the given
// tag and set index. It is the inverse of (Tag, Set) up to line offset.
func (g Geometry) Compose(tag, set uint64) Addr {
	return Addr((tag<<g.setBits | set) << g.setShift) // line base
}

// SameLine reports whether two byte addresses fall in the same cache line.
func (g Geometry) SameLine(a, b Addr) bool { return g.Line(a) == g.Line(b) }

// log2 returns log base 2 of a positive power of two.
func log2(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
