package mem

import "testing"

func TestLineSetBasics(t *testing.T) {
	var s LineSet
	if s.Contains(0) {
		t.Error("empty set contains 0")
	}
	if s.TestAndSet(0) {
		t.Error("first TestAndSet(0) reported already-present")
	}
	if !s.TestAndSet(0) {
		t.Error("second TestAndSet(0) reported absent")
	}
	if !s.Contains(0) {
		t.Error("set lost line 0")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
}

func TestLineSetAcrossPages(t *testing.T) {
	var s LineSet
	// Neighboring lines, a same-page distant line, and far-apart pages,
	// including the top of the address space.
	lines := []LineAddr{0, 1, 63, 64, 1<<linePageBits - 1, 1 << linePageBits,
		1 << 30, 1<<30 + 1, 1 << 57}
	for _, l := range lines {
		if s.TestAndSet(l) {
			t.Errorf("line %#x reported present on first touch", uint64(l))
		}
	}
	for _, l := range lines {
		if !s.Contains(l) {
			t.Errorf("line %#x lost", uint64(l))
		}
	}
	if s.Len() != uint64(len(lines)) {
		t.Errorf("Len = %d, want %d", s.Len(), len(lines))
	}
	if got := s.PopCount(); got != s.Len() {
		t.Errorf("PopCount = %d disagrees with Len = %d", got, s.Len())
	}
	// 0..65535 share a page; 65536 and 1<<30(+1) and 1<<57 add three more.
	if s.Pages() != 4 {
		t.Errorf("Pages = %d, want 4", s.Pages())
	}
}

func TestLineSetClearKeepsPages(t *testing.T) {
	var s LineSet
	s.Add(5)
	s.Add(1 << 20)
	pages := s.Pages()
	s.Clear()
	if s.Len() != 0 || s.Contains(5) || s.Contains(1<<20) {
		t.Error("Clear left members behind")
	}
	if s.Pages() != pages {
		t.Errorf("Clear dropped pages: %d -> %d", pages, s.Pages())
	}
	if s.TestAndSet(5) {
		t.Error("re-add after Clear reported present")
	}
}

func TestLineSetAgainstMap(t *testing.T) {
	// Differential test against the map implementation the set replaced.
	var s LineSet
	ref := map[LineAddr]struct{}{}
	x := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < 20000; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		// Mix dense (low) and sparse (high) lines.
		line := LineAddr(x % 4096)
		if i%3 == 0 {
			line = LineAddr(x >> 20)
		}
		_, seen := ref[line]
		ref[line] = struct{}{}
		if got := s.TestAndSet(line); got != seen {
			t.Fatalf("TestAndSet(%#x) = %v, map says %v", uint64(line), got, seen)
		}
	}
	if s.Len() != uint64(len(ref)) {
		t.Errorf("Len = %d, map has %d", s.Len(), len(ref))
	}
	if got := s.PopCount(); got != s.Len() {
		t.Errorf("PopCount = %d disagrees with Len = %d", got, s.Len())
	}
}

func TestLineSetSteadyStateAllocs(t *testing.T) {
	var s LineSet
	for i := LineAddr(0); i < 4096; i++ {
		s.Add(i)
	}
	avg := testing.AllocsPerRun(1000, func() {
		s.TestAndSet(1234)
		s.Contains(99)
	})
	if avg != 0 {
		t.Errorf("steady-state TestAndSet allocates %.1f allocs/op, want 0", avg)
	}
}
