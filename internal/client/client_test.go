package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

func newClient(t *testing.T, opts Options) *Client {
	t.Helper()
	if opts.Seed == 0 {
		opts.Seed = 42
	}
	if opts.BaseBackoff == 0 {
		opts.BaseBackoff = time.Millisecond
	}
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err    error
		status int
		want   FailureKind
	}{
		{nil, 200, FailNone},
		{nil, 429, FailHTTP429},
		{nil, 503, FailHTTP503},
		{nil, 500, FailHTTP5xx},
		{nil, 502, FailHTTP5xx},
		{nil, 400, FailOther},
		{fmt.Errorf("wrap: %w", syscall.ECONNRESET), 0, FailConnReset},
		{fmt.Errorf("wrap: %w", syscall.ECONNREFUSED), 0, FailConnect},
		{context.DeadlineExceeded, 0, FailTimeout},
		{errors.New("mystery"), 0, FailOther},
	}
	for _, c := range cases {
		if got := Classify(c.err, c.status); got != c.want {
			t.Errorf("Classify(%v, %d) = %q, want %q", c.err, c.status, got, c.want)
		}
	}
}

// TestRetryOn503ThenSuccess: transient 503s are retried and the
// idempotency key is identical on every attempt.
func TestRetryOn503ThenSuccess(t *testing.T) {
	var calls atomic.Int32
	var keys []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		keys = append(keys, r.Header.Get(IdempotencyHeader))
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, "done")
	}))
	defer srv.Close()

	c := newClient(t, Options{BaseURL: srv.URL})
	resp, err := c.Do(context.Background(), Request{Path: "/x", Body: []byte("req"), ContentType: "text/plain"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || string(resp.Body) != "done" || resp.Attempts != 3 {
		t.Fatalf("resp = %+v body %q", resp, resp.Body)
	}
	if len(keys) != 3 || keys[0] == "" || keys[0] != keys[1] || keys[1] != keys[2] {
		t.Fatalf("idempotency keys across retries = %q, want three identical non-empty", keys)
	}
	st := c.Stats()
	if st.Retries != 2 || st.ByKind["http_503"] != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestRetryAfterHonored: the server's Retry-After floor dominates the
// client's own (tiny) backoff curve.
func TestRetryAfterHonored(t *testing.T) {
	var calls atomic.Int32
	var gap time.Duration
	var last time.Time
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		now := time.Now()
		if n := calls.Add(1); n == 1 {
			last = now
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		gap = now.Sub(last)
		fmt.Fprint(w, "ok")
	}))
	defer srv.Close()

	c := newClient(t, Options{BaseURL: srv.URL, BaseBackoff: time.Millisecond})
	if _, err := c.Do(context.Background(), Request{Path: "/x"}); err != nil {
		t.Fatal(err)
	}
	if gap < 900*time.Millisecond {
		t.Fatalf("retry arrived %v after the 429; Retry-After: 1 was not honored", gap)
	}
}

// TestNonRetryable400: client errors fail fast — one attempt, classified
// other.
func TestNonRetryable400(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"bad spec"}`, http.StatusBadRequest)
	}))
	defer srv.Close()

	c := newClient(t, Options{BaseURL: srv.URL})
	_, err := c.Do(context.Background(), Request{Path: "/x"})
	if err == nil || calls.Load() != 1 {
		t.Fatalf("400 handled with %d calls, err %v; want 1 call + error", calls.Load(), err)
	}
	var ce *Error
	if !errors.As(err, &ce) || ce.Kind != FailOther || ce.Status != 400 {
		t.Fatalf("error = %#v, want *Error{Kind: other, Status: 400}", err)
	}
	if KindOf(err) != FailOther {
		t.Fatalf("KindOf(%v) = %q", err, KindOf(err))
	}
}

// TestAttemptsExhausted: a permanently failing endpoint stops at
// MaxAttempts with the taxonomy preserved.
func TestAttemptsExhausted(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer srv.Close()

	c := newClient(t, Options{BaseURL: srv.URL, MaxAttempts: 3})
	_, err := c.Do(context.Background(), Request{Path: "/x"})
	if calls.Load() != 3 {
		t.Fatalf("%d calls, want MaxAttempts=3", calls.Load())
	}
	var ce *Error
	if !errors.As(err, &ce) || ce.Kind != FailHTTP5xx || ce.Attempts != 3 {
		t.Fatalf("error = %#v", err)
	}
}

// TestConnectRefusedRetries: dial failures are retryable (the service
// may be rebooting — the crash-recovery story depends on this).
func TestConnectRefusedRetries(t *testing.T) {
	// Grab a port with nothing listening.
	srv := httptest.NewServer(http.NewServeMux())
	url := srv.URL
	srv.Close()

	c := newClient(t, Options{BaseURL: url, MaxAttempts: 2})
	_, err := c.Do(context.Background(), Request{Path: "/x"})
	var ce *Error
	if !errors.As(err, &ce) || ce.Kind != FailConnect || ce.Attempts != 2 {
		t.Fatalf("error = %#v, want connect kind after 2 attempts", err)
	}
}

// TestHedgeWins: a slow primary is overtaken by the hedge; both carry
// the same idempotency key so the server can dedupe.
func TestHedgeWins(t *testing.T) {
	var calls atomic.Int32
	var mu sync.Mutex // the slow primary is still in-flight when the test asserts
	var keys [2]string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		if n <= 2 {
			mu.Lock()
			keys[n-1] = r.Header.Get(IdempotencyHeader)
			mu.Unlock()
		}
		if n == 1 {
			time.Sleep(500 * time.Millisecond) // slow primary
		}
		fmt.Fprint(w, "ok")
	}))
	defer srv.Close()

	c := newClient(t, Options{BaseURL: srv.URL, HedgeAfter: 20 * time.Millisecond})
	t0 := time.Now()
	resp, err := c.Do(context.Background(), Request{Path: "/x", Hedge: true})
	if err != nil {
		t.Fatal(err)
	}
	if el := time.Since(t0); el >= 450*time.Millisecond {
		t.Fatalf("hedged request took %v; hedge did not overtake the slow primary", el)
	}
	if !resp.Hedged || resp.Attempts != 2 {
		t.Fatalf("resp = %+v, want hedged with 2 attempts", resp)
	}
	mu.Lock()
	k := keys
	mu.Unlock()
	if k[0] == "" || k[0] != k[1] {
		t.Fatalf("hedge keys = %q, want identical non-empty", k)
	}
	if st := c.Stats(); st.Hedges != 1 {
		t.Fatalf("stats = %+v, want 1 hedge", st)
	}
}

// TestHedgeCountsAgainstMaxAttempts: a hedged try issues two real HTTP
// attempts and both count toward MaxAttempts — the bound is on attempts
// hitting the server, not on retry-loop iterations, so hedging can never
// double the documented request budget.
func TestHedgeCountsAgainstMaxAttempts(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		time.Sleep(30 * time.Millisecond) // outlast HedgeAfter so the hedge launches
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer srv.Close()

	c := newClient(t, Options{BaseURL: srv.URL, MaxAttempts: 2, HedgeAfter: 5 * time.Millisecond})
	_, err := c.Do(context.Background(), Request{Path: "/x", Hedge: true})
	var ce *Error
	if !errors.As(err, &ce) || ce.Attempts != 2 {
		t.Fatalf("error = %#v, want terminal after 2 attempts", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("%d HTTP attempts, want exactly MaxAttempts=2 (one hedged try)", calls.Load())
	}
}

// TestHedgeDisabledWithoutOptIn: Request.Hedge without Options.HedgeAfter
// (and vice versa) stays single-flight.
func TestHedgeDisabledWithoutOptIn(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		time.Sleep(30 * time.Millisecond)
		fmt.Fprint(w, "ok")
	}))
	defer srv.Close()

	c := newClient(t, Options{BaseURL: srv.URL}) // no HedgeAfter
	if _, err := c.Do(context.Background(), Request{Path: "/x", Hedge: true}); err != nil {
		t.Fatal(err)
	}
	c2 := newClient(t, Options{BaseURL: srv.URL, HedgeAfter: 5 * time.Millisecond})
	if _, err := c2.Do(context.Background(), Request{Path: "/x"}); err != nil { // no Request.Hedge
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Fatalf("%d calls, want exactly 2 (no hedges)", calls.Load())
	}
}

// TestUniqueKeysAcrossRequests: distinct logical requests never share an
// idempotency key (sharing one would alias their journaled outcomes).
func TestUniqueKeysAcrossRequests(t *testing.T) {
	seen := map[string]bool{}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		k := r.Header.Get(IdempotencyHeader)
		if k == "" || seen[k] {
			t.Errorf("key %q empty or reused", k)
		}
		seen[k] = true
	}))
	defer srv.Close()
	c := newClient(t, Options{BaseURL: srv.URL})
	for i := 0; i < 50; i++ {
		if _, err := c.Do(context.Background(), Request{Path: "/x"}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestContextCancelDuringBackoff: cancellation cuts the retry loop
// short instead of sleeping it out.
func TestContextCancelDuringBackoff(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	c := newClient(t, Options{BaseURL: srv.URL})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	_, err := c.Do(ctx, Request{Path: "/x"})
	if err == nil || time.Since(t0) > 2*time.Second {
		t.Fatalf("cancel during backoff: err=%v after %v", err, time.Since(t0))
	}
}

func TestParseRetryAfter(t *testing.T) {
	h := http.Header{}
	if parseRetryAfter(h) != 0 {
		t.Error("absent header should be 0")
	}
	h.Set("Retry-After", "2")
	if got := parseRetryAfter(h); got != 2*time.Second {
		t.Errorf("delta-seconds = %v", got)
	}
	h.Set("Retry-After", time.Now().Add(3*time.Second).UTC().Format(http.TimeFormat))
	if got := parseRetryAfter(h); got <= 0 || got > 3*time.Second {
		t.Errorf("http-date = %v", got)
	}
	h.Set("Retry-After", "garbage")
	if parseRetryAfter(h) != 0 {
		t.Error("garbage should be 0")
	}
}

// TestErrorTargetNamesPeer: a terminal failure carries the base URL it
// terminated against, so a multi-target caller (the load generator's
// fleet mode, the cluster's forwarding layer) can attribute failures to
// the peer that produced them.
func TestErrorTargetNamesPeer(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
	}))
	defer srv.Close()

	c := newClient(t, Options{BaseURL: srv.URL, MaxAttempts: 3})
	_, err := c.Do(context.Background(), Request{Path: "/x"})
	var ce *Error
	if !errors.As(err, &ce) {
		t.Fatalf("error = %#v, want *Error", err)
	}
	if ce.Target != srv.URL {
		t.Fatalf("Error.Target = %q, want %q", ce.Target, srv.URL)
	}
	if c.Target() != srv.URL {
		t.Fatalf("Client.Target() = %q, want %q", c.Target(), srv.URL)
	}
	if !strings.Contains(ce.Error(), srv.URL) {
		t.Errorf("Error() = %q: should name the target", ce.Error())
	}
}

// TestExplicitIdempotencyKey: a request carrying IdempotencyKey sends it
// verbatim on every attempt — the cluster forwarding contract (a
// forwarded cell must reach the owner under the CALLER's key, not a
// fresh one) depends on this.
func TestExplicitIdempotencyKey(t *testing.T) {
	var keys []string
	var mu sync.Mutex
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		keys = append(keys, r.Header.Get(IdempotencyHeader))
		mu.Unlock()
		if calls.Add(1) == 1 {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer srv.Close()

	c := newClient(t, Options{BaseURL: srv.URL, MaxAttempts: 3})
	if _, err := c.Do(context.Background(), Request{Method: "POST", Path: "/x", Body: []byte(`{}`), IdempotencyKey: "fixed-key-7"}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(keys) != 2 {
		t.Fatalf("saw %d attempts, want 2", len(keys))
	}
	for i, k := range keys {
		if k != "fixed-key-7" {
			t.Errorf("attempt %d key = %q, want fixed-key-7 (explicit key must pass through unchanged)", i, k)
		}
	}
}
