// Package client is the shared resilient HTTP client for mct services:
// jittered exponential backoff that honors Retry-After, per-request
// idempotency keys (so the service can dedupe retries against its job
// journal and never compute the same work twice), and opt-in hedged
// requests for tail-latency-sensitive callers. cmd/mctload drives all
// its traffic through this package; tests point it at chaos-wrapped
// listeners from internal/faultinject to prove convergence under
// injected resets, latency, and black holes.
//
// The client retries whole logical requests, not just connection
// attempts: a connection reset halfway through reading a response body
// re-issues the request with the SAME idempotency key, and the service
// replays the journaled outcome instead of recomputing. That contract is
// what lets Do guarantee either a complete response or a classified
// error — never a torn half-response.
package client

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// IdempotencyHeader carries the per-logical-request key the service
// dedupes on. Every retry and every hedge of one Do call sends the same
// value.
const IdempotencyHeader = "X-Mct-Idempotency-Key"

// FailureKind buckets request failures for the mctload error taxonomy.
// The string values appear verbatim in perf.LoadReport's by_failure map.
type FailureKind string

const (
	FailNone      FailureKind = ""
	FailConnReset FailureKind = "conn_reset"
	FailTimeout   FailureKind = "timeout"
	FailConnect   FailureKind = "connect"
	FailHTTP429   FailureKind = "http_429"
	FailHTTP503   FailureKind = "http_503"
	FailHTTP5xx   FailureKind = "http_5xx"
	FailOther     FailureKind = "other"
)

// Classify maps a transport error or HTTP status onto the taxonomy.
// Pass status 0 when err is a transport-level failure.
func Classify(err error, status int) FailureKind {
	switch {
	case err == nil && status < 400:
		return FailNone
	case status == http.StatusTooManyRequests:
		return FailHTTP429
	case status == http.StatusServiceUnavailable:
		return FailHTTP503
	case status >= 500:
		return FailHTTP5xx
	case status >= 400:
		return FailOther
	}
	var ne net.Error
	switch {
	case errors.Is(err, syscall.ECONNRESET), errors.Is(err, syscall.EPIPE),
		errors.Is(err, io.ErrUnexpectedEOF), errors.Is(err, io.EOF):
		return FailConnReset
	case errors.Is(err, syscall.ECONNREFUSED):
		return FailConnect
	case errors.Is(err, context.DeadlineExceeded):
		return FailTimeout
	case errors.As(err, &ne) && ne.Timeout():
		return FailTimeout
	default:
		return FailOther
	}
}

// retryable reports whether a failure of this kind may succeed on
// re-issue. 4xx other than 429 are the caller's bug; everything
// transport-shaped or overload-shaped is worth another attempt.
func (k FailureKind) retryable() bool {
	switch k {
	case FailConnReset, FailTimeout, FailConnect, FailHTTP429, FailHTTP503, FailHTTP5xx:
		return true
	}
	return false
}

// Options configures a Client. The zero value plus BaseURL is usable.
type Options struct {
	// BaseURL is the service root, e.g. "http://127.0.0.1:8047".
	BaseURL string
	// HTTPClient overrides the underlying transport (tests inject chaos
	// round-trippers here). Default: a plain client with no global timeout
	// — deadlines come from the caller's context.
	HTTPClient *http.Client
	// MaxAttempts bounds total HTTP attempts per logical request (first
	// attempt and any hedge copies included) — a hedged try consumes two
	// attempts when the hedge actually launches. Default 5.
	MaxAttempts int
	// BaseBackoff is the first retry delay before jitter; doubles each
	// attempt. Default 100ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth. Default 5s.
	MaxBackoff time.Duration
	// HedgeAfter, when positive, arms hedging: a request marked
	// Request.Hedge that has not finished after this delay gets a second
	// in-flight copy (same idempotency key); first result wins. Zero
	// disables hedging entirely.
	HedgeAfter time.Duration
	// ClientID is sent as X-Mct-Client for per-client fairness.
	ClientID string
	// Seed makes backoff jitter and idempotency keys reproducible in
	// tests. Zero draws a random seed — required in production so two
	// processes never mint colliding idempotency keys.
	Seed uint64
	// Logf, when set, receives one line per retry/hedge decision.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.HTTPClient == nil {
		o.HTTPClient = &http.Client{}
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 5
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = 100 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 5 * time.Second
	}
	if o.Seed == 0 {
		var b [8]byte
		if _, err := rand.Read(b[:]); err == nil {
			o.Seed = binary.LittleEndian.Uint64(b[:])
		}
		if o.Seed == 0 {
			o.Seed = 0x9e3779b97f4a7c15
		}
	}
	return o
}

// Request is one logical request. Body is a byte slice, not a reader,
// precisely so every retry and hedge can replay it.
type Request struct {
	Method      string // default POST when Body != nil, else GET
	Path        string // joined to Options.BaseURL, e.g. "/v1/classify"
	Body        []byte
	ContentType string
	Header      http.Header // optional extras (merged last)
	// Hedge opts this request into hedging (requires Options.HedgeAfter).
	Hedge bool
	// NoIdempotency suppresses the idempotency key for requests that are
	// intentionally non-idempotent. Default is to always send one.
	NoIdempotency bool
	// IdempotencyKey, when set, is sent verbatim instead of a freshly
	// minted key. Forwarding layers use this to propagate the caller's
	// key unchanged, so the idempotency store one hop away dedupes the
	// caller's retries exactly as the first hop would have.
	IdempotencyKey string
}

// Response is a fully-read reply: Do never hands back a stream that can
// tear mid-read.
type Response struct {
	Status   int
	Header   http.Header
	Body     []byte
	Attempts int  // total HTTP attempts issued (hedges included)
	Hedged   bool // a hedge was launched for this request
}

// Error is the terminal failure of a Do call after retries exhausted.
// Target names the base URL the failure terminated against, so callers
// juggling several clients (multi-target mctload, cluster forwarding)
// can attribute the failure to a node instead of aggregating across the
// fleet.
type Error struct {
	Kind     FailureKind
	Status   int // last HTTP status, 0 for transport failures
	Attempts int
	Target   string // the client's BaseURL
	Err      error
}

func (e *Error) Error() string {
	if e.Status != 0 {
		return fmt.Sprintf("client: %s (HTTP %d) from %s after %d attempts: %v", e.Kind, e.Status, e.Target, e.Attempts, e.Err)
	}
	return fmt.Sprintf("client: %s from %s after %d attempts: %v", e.Kind, e.Target, e.Attempts, e.Err)
}

func (e *Error) Unwrap() error { return e.Err }

// KindOf extracts the taxonomy bucket from any error returned by Do.
func KindOf(err error) FailureKind {
	var ce *Error
	if errors.As(err, &ce) {
		return ce.Kind
	}
	if err != nil {
		return Classify(err, 0)
	}
	return FailNone
}

// Stats aggregates the client's lifetime retry activity, for
// perf.LoadReport.
type Stats struct {
	Attempts uint64            `json:"attempts"`
	Retries  uint64            `json:"retries"`
	Hedges   uint64            `json:"hedges"`
	ByKind   map[string]uint64 `json:"by_failure,omitempty"`
}

// Client issues resilient requests against one base URL. Safe for
// concurrent use.
type Client struct {
	opts     Options
	attempts atomic.Uint64
	retries  atomic.Uint64
	hedges   atomic.Uint64
	keySeq   atomic.Uint64

	mu     sync.Mutex
	byKind map[FailureKind]uint64
}

// New builds a Client. BaseURL is required.
func New(opts Options) (*Client, error) {
	if opts.BaseURL == "" {
		return nil, fmt.Errorf("client: BaseURL is required")
	}
	return &Client{opts: opts.withDefaults(), byKind: map[FailureKind]uint64{}}, nil
}

// Target returns the client's base URL, the address Error.Target and
// per-target load attribution report against.
func (c *Client) Target() string { return c.opts.BaseURL }

// Stats snapshots the lifetime counters.
func (c *Client) Stats() Stats {
	s := Stats{
		Attempts: c.attempts.Load(),
		Retries:  c.retries.Load(),
		Hedges:   c.hedges.Load(),
		ByKind:   map[string]uint64{},
	}
	c.mu.Lock()
	for k, n := range c.byKind {
		s.ByKind[string(k)] = n
	}
	c.mu.Unlock()
	if len(s.ByKind) == 0 {
		s.ByKind = nil
	}
	return s
}

func (c *Client) noteKind(k FailureKind) {
	if k == FailNone {
		return
	}
	c.mu.Lock()
	c.byKind[k]++
	c.mu.Unlock()
}

// splitmix64 is the repo-wide deterministic PRNG step (runner retry
// jitter, loadgen traffic, chaos scheduling all use the same constants).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// newKey mints one idempotency key: seed-derived so tests are
// reproducible, sequence-derived so concurrent requests never collide.
func (c *Client) newKey() string {
	n := c.keySeq.Add(1)
	a := splitmix64(c.opts.Seed ^ n)
	b := splitmix64(a ^ 0xda942042e4dd58b5)
	return fmt.Sprintf("%016x%016x", a, b)
}

// backoff computes the pre-jitter-scaled delay before retry number
// `retry` (1-based), folding in any server-provided Retry-After as a
// floor: the server knows its brownout horizon better than our curve.
func (c *Client) backoff(retry int, retryAfter time.Duration, rngState *uint64) time.Duration {
	d := c.opts.BaseBackoff << (retry - 1)
	if d > c.opts.MaxBackoff || d <= 0 {
		d = c.opts.MaxBackoff
	}
	// Jitter to 50–150% so a synchronized client fleet decorrelates.
	*rngState = splitmix64(*rngState)
	frac := 0.5 + float64(*rngState>>11)/float64(1<<53)
	d = time.Duration(float64(d) * frac)
	if retryAfter > d {
		d = retryAfter
	}
	return d
}

// parseRetryAfter reads a Retry-After header (delta-seconds or
// HTTP-date). Zero when absent or unparseable.
func parseRetryAfter(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

// Do runs one logical request to completion: attempts, backoff, hedges
// and all. On success the Response body is fully read. On failure the
// returned error is an *Error carrying the taxonomy bucket.
func (c *Client) Do(ctx context.Context, req Request) (*Response, error) {
	if req.Method == "" {
		if req.Body != nil {
			req.Method = http.MethodPost
		} else {
			req.Method = http.MethodGet
		}
	}
	key := ""
	if !req.NoIdempotency {
		if req.IdempotencyKey != "" {
			key = req.IdempotencyKey
		} else {
			key = c.newKey()
		}
	}

	rng := splitmix64(c.opts.Seed ^ c.keySeq.Load())
	hedged := false
	var lastErr error
	var lastStatus int
	attempts := 0
	for try := 1; ; try++ {
		var resp *Response
		var err error
		var n int
		if req.Hedge && c.opts.HedgeAfter > 0 {
			resp, err, n = c.attemptHedged(ctx, req, key)
			if n > 1 {
				hedged = true
			}
		} else {
			resp, err = c.attempt(ctx, req, key)
			n = 1
		}
		attempts += n

		kind, retryAfter := c.outcome(resp, err)
		if kind == FailNone {
			resp.Attempts = attempts
			resp.Hedged = hedged
			return resp, nil
		}
		c.noteKind(kind)
		if err != nil {
			lastErr, lastStatus = err, 0
		} else {
			lastErr = fmt.Errorf("HTTP %d: %s", resp.Status, firstLine(resp.Body))
			lastStatus = resp.Status
		}

		if !kind.retryable() || attempts >= c.opts.MaxAttempts || ctx.Err() != nil {
			return nil, &Error{Kind: kind, Status: lastStatus, Attempts: attempts, Target: c.opts.BaseURL, Err: lastErr}
		}
		d := c.backoff(try, retryAfter, &rng)
		if c.opts.Logf != nil {
			c.opts.Logf("client: %s %s attempt %d failed (%s); retrying in %v",
				req.Method, req.Path, try, kind, d.Round(time.Millisecond))
		}
		c.retries.Add(1)
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return nil, &Error{Kind: kind, Status: lastStatus, Attempts: attempts, Target: c.opts.BaseURL,
				Err: fmt.Errorf("%w (canceled during backoff after %v)", lastErr, ctx.Err())}
		}
	}
}

// outcome classifies one attempt's result and extracts the server's
// Retry-After hint if any.
func (c *Client) outcome(resp *Response, err error) (FailureKind, time.Duration) {
	if err != nil {
		return Classify(err, 0), 0
	}
	if resp.Status < 400 {
		return FailNone, 0
	}
	return Classify(nil, resp.Status), parseRetryAfter(resp.Header)
}

// attempt issues exactly one HTTP request and reads the full body. Body
// read errors are attempt failures — the caller retries with the same
// idempotency key rather than surfacing a torn stream.
func (c *Client) attempt(ctx context.Context, req Request, key string) (*Response, error) {
	c.attempts.Add(1)
	hr, err := http.NewRequestWithContext(ctx, req.Method, c.opts.BaseURL+req.Path,
		bytes.NewReader(req.Body))
	if err != nil {
		return nil, err
	}
	if req.ContentType != "" {
		hr.Header.Set("Content-Type", req.ContentType)
	}
	if c.opts.ClientID != "" {
		hr.Header.Set("X-Mct-Client", c.opts.ClientID)
	}
	if key != "" {
		hr.Header.Set(IdempotencyHeader, key)
	}
	for k, vs := range req.Header {
		for _, v := range vs {
			hr.Header.Add(k, v)
		}
	}
	resp, err := c.opts.HTTPClient.Do(hr)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("reading response body: %w", err)
	}
	return &Response{Status: resp.StatusCode, Header: resp.Header, Body: body}, nil
}

// attemptHedged races up to two copies of one attempt: the hedge
// launches if the primary is still in flight after HedgeAfter. First
// success wins and cancels the other; if both fail the primary's error
// is reported. Returns how many copies actually launched.
func (c *Client) attemptHedged(ctx context.Context, req Request, key string) (*Response, error, int) {
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type result struct {
		resp *Response
		err  error
	}
	ch := make(chan result, 2)
	launch := func() { go func() { r, e := c.attempt(hctx, req, key); ch <- result{r, e} }() }
	launch()
	launched, outstanding := 1, 1
	timer := time.NewTimer(c.opts.HedgeAfter)
	defer timer.Stop()

	var firstFail *result
	for {
		select {
		case <-timer.C:
			if launched == 1 {
				launched, outstanding = 2, outstanding+1
				c.hedges.Add(1)
				if c.opts.Logf != nil {
					c.opts.Logf("client: hedging %s %s after %v", req.Method, req.Path, c.opts.HedgeAfter)
				}
				launch()
			}
		case r := <-ch:
			outstanding--
			if r.err == nil && r.resp.Status < 400 {
				return r.resp, nil, launched
			}
			if firstFail == nil {
				firstFail = &r
			}
			if outstanding == 0 {
				return firstFail.resp, firstFail.err, launched
			}
			// One copy failed, the other is still running: let it finish.
		case <-ctx.Done():
			return nil, ctx.Err(), launched
		}
	}
}

// firstLine trims an error body to its first line for error messages.
func firstLine(b []byte) string {
	if i := bytes.IndexByte(b, '\n'); i >= 0 {
		b = b[:i]
	}
	if len(b) > 200 {
		b = b[:200]
	}
	return string(b)
}

// Kinds lists the taxonomy buckets in stable report order.
func Kinds() []FailureKind {
	ks := []FailureKind{FailConnReset, FailTimeout, FailConnect, FailHTTP429, FailHTTP503, FailHTTP5xx, FailOther}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}
