// Package journal is an append-only, torn-write-tolerant write-ahead
// log: the durability substrate under the service's job registry
// (results/jobs/). Records are opaque byte payloads framed with a
// length + CRC32C header, written to numbered segment files that
// rotate at a size threshold and compact down to a live-set snapshot.
//
// The failure model, from most to least common:
//
//   - SIGKILL / process crash: the OS page cache survives, so every
//     completed Append is readable on the next boot regardless of the
//     fsync policy. A write torn by the kill itself is at the tail of
//     the last segment; replay detects it by CRC (or short frame) and
//     truncates it away.
//   - Power loss: what survives depends on the durable.Policy —
//     PolicyAlways fsyncs every append; PolicyData fsyncs at rotation,
//     compaction, and close; PolicyOff never does. Whatever was lost,
//     the CRC framing keeps the journal readable up to the last intact
//     record.
//   - Bit rot / partial corruption in the middle of a segment: framing
//     is unrecoverable past the damage, so the segment is quarantined
//     (moved aside with a .reason sidecar, mirroring the cache's
//     convention) and replay continues with the next segment. The
//     records lost are bounded by one segment; the ops runbook in
//     README.md covers the diagnosis.
//
// Replay is idempotent by design contract: the caller's records must
// tolerate being applied twice (the service keys them by job ID and
// op), which lets compaction crash between writing the snapshot and
// deleting the old segments without a recovery protocol.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/durable"
)

// segment file naming: seg-%08d.wal, strictly increasing.
const (
	segPrefix = "seg-"
	segSuffix = ".wal"
)

// QuarantineDirName is the subdirectory corrupt segments are moved
// into, mirroring the memoization cache's quarantine convention.
const QuarantineDirName = "quarantine"

// frame header: u32 little-endian payload length + u32 CRC32-Castagnoli
// of the payload.
const frameHeader = 8

// MaxRecordBytes bounds a single record; a decoded length beyond it is
// corruption (or a torn length word), never a legitimate record.
const MaxRecordBytes = 16 << 20

// castagnoli is the CRC polynomial used for framing (hardware-
// accelerated on the platforms this runs on).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed reports an Append after Close.
var ErrClosed = errors.New("journal: closed")

// Options configures a Journal.
type Options struct {
	// Sync is the fsync policy (see package durable). Default PolicyData.
	Sync durable.Policy
	// MaxSegmentBytes rotates the active segment beyond this size.
	// Default 4 MiB.
	MaxSegmentBytes int64
	// Logf receives non-fatal diagnostics (quarantines, torn tails).
	// Nil discards.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.MaxSegmentBytes <= 0 {
		o.MaxSegmentBytes = 4 << 20
	}
	return o
}

// Journal is one directory of WAL segments. Safe for concurrent use;
// appends are serialized internally.
type Journal struct {
	dir  string
	opts Options

	mu     sync.Mutex
	f      *os.File // active segment (nil until first Append)
	seq    uint64   // active segment's sequence number
	size   int64    // active segment's size
	closed bool

	appended uint64 // records appended this process (metrics)
}

// ReplayStats summarizes what Replay found.
type ReplayStats struct {
	Records     int  // records delivered to the callback
	Segments    int  // segments read
	TornTail    bool // the last segment ended in a torn record (truncated away)
	Quarantined int  // segments moved to quarantine for mid-file corruption
}

// Open prepares a journal rooted at dir (created if missing). Existing
// segments are left untouched until Replay (which the caller should run
// before the first Append; appends go to a fresh segment either way, so
// an un-replayed journal is never overwritten).
func Open(dir string, opts Options) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: creating %s: %w", dir, err)
	}
	j := &Journal{dir: dir, opts: opts.withDefaults()}
	segs, err := j.segments()
	if err != nil {
		return nil, err
	}
	if n := len(segs); n > 0 {
		j.seq = segs[n-1].seq // next rotation appends after the newest
	}
	return j, nil
}

// Dir returns the journal's root directory.
func (j *Journal) Dir() string { return j.dir }

// Appended returns how many records this process has appended.
func (j *Journal) Appended() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appended
}

type segref struct {
	seq  uint64
	path string
}

// segments lists the on-disk segments in sequence order.
func (j *Journal) segments() ([]segref, error) {
	ents, err := os.ReadDir(j.dir)
	if err != nil {
		return nil, fmt.Errorf("journal: reading %s: %w", j.dir, err)
	}
	var segs []segref
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), 10, 64)
		if err != nil {
			continue // foreign file; leave it alone
		}
		segs = append(segs, segref{seq: seq, path: filepath.Join(j.dir, name)})
	}
	sort.Slice(segs, func(a, b int) bool { return segs[a].seq < segs[b].seq })
	return segs, nil
}

func (j *Journal) logf(format string, args ...any) {
	if j.opts.Logf != nil {
		j.opts.Logf(format, args...)
	}
}

// Replay streams every intact record, oldest first, into fn. A torn
// record at the tail of the LAST segment is truncated away (the
// SIGKILL-mid-write case); corruption anywhere else quarantines the
// rest of that segment and continues with the next. fn returning an
// error aborts the replay.
func (j *Journal) Replay(fn func(payload []byte) error) (ReplayStats, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var st ReplayStats
	segs, err := j.segments()
	if err != nil {
		return st, err
	}
	for i, seg := range segs {
		last := i == len(segs)-1
		n, tornAt, corrupt, rerr := replaySegment(seg.path, fn)
		st.Records += n
		st.Segments++
		if rerr != nil {
			return st, rerr // fn aborted
		}
		switch {
		case corrupt == "" && tornAt < 0:
			// Clean segment.
		case corrupt == "" && last:
			// Torn tail of the newest segment: the expected crash shape.
			// Truncate so the next replay is clean.
			st.TornTail = true
			j.logf("journal: %s has a torn tail at offset %d (crash mid-append); truncating", seg.path, tornAt)
			_ = os.Truncate(seg.path, tornAt)
		default:
			// Torn frame in a non-final segment, or an outright CRC/length
			// corruption: framing is lost for the rest of the segment.
			// Quarantine it (records already delivered stay delivered).
			reason := corrupt
			if reason == "" {
				reason = fmt.Sprintf("torn frame at offset %d in a non-final segment", tornAt)
			}
			st.Quarantined++
			j.quarantine(seg.path, reason)
		}
	}
	return st, nil
}

// replaySegment decodes one segment. Returns the number of records
// delivered, the offset of a torn/corrupt frame (-1 if none), a
// non-empty corruption reason for CRC/length damage (as opposed to a
// clean truncation), and fn's error if it aborted.
func replaySegment(path string, fn func([]byte) error) (n int, tornAt int64, corrupt string, err error) {
	data, rerr := os.ReadFile(path)
	if rerr != nil {
		return 0, 0, fmt.Sprintf("unreadable: %v", rerr), nil
	}
	off := int64(0)
	for int64(len(data))-off >= frameHeader {
		length := binary.LittleEndian.Uint32(data[off:])
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if length > MaxRecordBytes {
			return n, off, fmt.Sprintf("frame at offset %d declares %d bytes (max %d): corrupt length", off, length, MaxRecordBytes), nil
		}
		end := off + frameHeader + int64(length)
		if end > int64(len(data)) {
			return n, off, "", nil // short payload: torn tail
		}
		payload := data[off+frameHeader : end]
		if crc32.Checksum(payload, castagnoli) != sum {
			// A bad CRC at the very end of the file is a torn write; in the
			// middle (bytes follow) it is corruption.
			if end == int64(len(data)) {
				return n, off, "", nil
			}
			return n, off, fmt.Sprintf("CRC mismatch at offset %d", off), nil
		}
		if err := fn(payload); err != nil {
			return n, -1, "", err
		}
		n++
		off = end
	}
	if off != int64(len(data)) {
		return n, off, "", nil // trailing partial header: torn tail
	}
	return n, -1, "", nil
}

// quarantine moves a damaged segment aside with a .reason sidecar.
// Caller holds j.mu. Never fatal.
func (j *Journal) quarantine(path, reason string) {
	qdir := filepath.Join(j.dir, QuarantineDirName)
	dst := filepath.Join(qdir, filepath.Base(path))
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		j.logf("journal: %s is corrupt (%s) but quarantine dir failed: %v", path, reason, err)
		return
	}
	if err := os.Rename(path, dst); err != nil {
		j.logf("journal: %s is corrupt (%s) but quarantine move failed: %v", path, reason, err)
		return
	}
	_ = os.WriteFile(dst+".reason", []byte(reason+"\n"), 0o644)
	j.logf("journal: quarantined corrupt segment %s: %s", path, reason)
}

// rotateLocked closes the active segment (fsyncing per policy) and
// opens the next one. Caller holds j.mu.
func (j *Journal) rotateLocked() error {
	if j.f != nil {
		if err := durable.SyncFile(j.f, j.opts.Sync); err != nil {
			j.logf("journal: %v", err)
		}
		if err := j.f.Close(); err != nil {
			return fmt.Errorf("journal: closing segment: %w", err)
		}
		j.f = nil
	}
	j.seq++
	path := filepath.Join(j.dir, fmt.Sprintf("%s%08d%s", segPrefix, j.seq, segSuffix))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("journal: creating segment: %w", err)
	}
	j.f = f
	j.size = 0
	// The segment's existence must be durable before any record in it
	// claims to be.
	if err := durable.SyncDir(j.dir, j.opts.Sync); err != nil {
		j.logf("journal: %v", err)
	}
	return nil
}

// Append frames and writes one record, rotating the segment when it
// exceeds the size threshold and fsyncing per policy (PolicyAlways:
// every append; PolicyData/PolicyOff: only at boundaries).
func (j *Journal) Append(payload []byte) error {
	if len(payload) > MaxRecordBytes {
		return fmt.Errorf("journal: record of %d bytes exceeds the %d-byte frame limit", len(payload), MaxRecordBytes)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if j.f == nil || j.size >= j.opts.MaxSegmentBytes {
		if err := j.rotateLocked(); err != nil {
			return err
		}
	}
	return j.appendLocked(payload)
}

// appendLocked writes one framed record to the active segment. Caller
// holds j.mu and guarantees j.f is open.
func (j *Journal) appendLocked(payload []byte) error {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, castagnoli))
	// One Write call for the whole frame: the kernel appends atomically
	// with respect to other writers of this fd, and a crash mid-write
	// tears at most this one record (which replay then truncates).
	buf := make([]byte, 0, frameHeader+len(payload))
	buf = append(buf, hdr[:]...)
	buf = append(buf, payload...)
	if _, err := j.f.Write(buf); err != nil {
		return fmt.Errorf("journal: appending record: %w", err)
	}
	j.size += int64(len(buf))
	j.appended++
	if j.opts.Sync == durable.PolicyAlways {
		if err := durable.SyncFile(j.f, j.opts.Sync); err != nil {
			return err
		}
	}
	return nil
}

// Sync flushes the active segment if the policy asks for durability at
// batch boundaries (PolicyData or PolicyAlways). Callers declare their
// own boundaries with it — the service syncs on job completion, so a
// finished job's outcome survives power loss even under PolicyData.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil || j.closed {
		return nil
	}
	return durable.SyncFile(j.f, j.opts.Sync)
}

// Compact rewrites the journal down to the given live payloads: they
// are appended to a fresh segment (fsynced regardless of policy — the
// snapshot is a batch boundary), and every older segment is deleted.
// A crash between the snapshot and the deletes leaves duplicates,
// which replay's idempotency contract absorbs.
func (j *Journal) Compact(live [][]byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	old, err := j.segments()
	if err != nil {
		return err
	}
	if err := j.rotateLocked(); err != nil {
		return err
	}
	for _, p := range live {
		if err := j.appendLocked(p); err != nil {
			return err
		}
	}
	// The snapshot must be durable before the history it replaces goes
	// away; PolicyOff keeps its no-fsync contract (it accepts power-loss
	// exposure everywhere).
	p := j.opts.Sync
	if p == durable.PolicyData {
		p = durable.PolicyAlways
	}
	if err := durable.SyncFile(j.f, p); err != nil {
		return err
	}
	if err := durable.SyncDir(j.dir, p); err != nil {
		j.logf("journal: %v", err)
	}
	for _, seg := range old {
		if seg.seq < j.seq {
			if err := os.Remove(seg.path); err != nil && !os.IsNotExist(err) {
				j.logf("journal: compact: removing %s: %v", seg.path, err)
			}
		}
	}
	return nil
}

// Close fsyncs (per policy) and closes the active segment. Further
// Appends fail with ErrClosed.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if j.f == nil {
		return nil
	}
	if err := durable.SyncFile(j.f, j.opts.Sync); err != nil {
		j.logf("journal: %v", err)
	}
	err := j.f.Close()
	j.f = nil
	if err != nil {
		return fmt.Errorf("journal: closing segment: %w", err)
	}
	return nil
}
