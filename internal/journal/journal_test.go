package journal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/durable"
)

func replayAll(t *testing.T, j *Journal) ([][]byte, ReplayStats) {
	t.Helper()
	var got [][]byte
	st, err := j.Replay(func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got, st
}

func openT(t *testing.T, dir string, opts Options) *Journal {
	t.Helper()
	j, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j := openT(t, dir, Options{Sync: durable.PolicyAlways})
	var want [][]byte
	for i := 0; i < 100; i++ {
		p := []byte(fmt.Sprintf(`{"op":"create","i":%d}`, i))
		want = append(want, p)
		if err := j.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2 := openT(t, dir, Options{})
	got, st := replayAll(t, j2)
	if st.Records != 100 || st.TornTail || st.Quarantined != 0 {
		t.Fatalf("stats = %+v, want 100 clean records", st)
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestTornTailTruncated is the SIGKILL-mid-append model: the last
// record's bytes stop partway through. Replay must deliver everything
// before it, report the torn tail, and truncate so the next replay is
// clean — and a journal reopened after the tear must keep accepting
// appends whose records all survive.
func TestTornTailTruncated(t *testing.T) {
	for _, cut := range []struct {
		name string
		trim func(sz int64) int64
	}{
		{"mid-payload", func(sz int64) int64 { return sz - 3 }},
		{"mid-header", func(sz int64) int64 { return sz - 12 }},
	} {
		t.Run(cut.name, func(t *testing.T) {
			dir := t.TempDir()
			j := openT(t, dir, Options{})
			for i := 0; i < 10; i++ {
				if err := j.Append([]byte(fmt.Sprintf("record-%02d-padding-padding", i))); err != nil {
					t.Fatal(err)
				}
			}
			j.Close()

			segs, _ := openT(t, dir, Options{}).segments()
			if len(segs) != 1 {
				t.Fatalf("%d segments, want 1", len(segs))
			}
			fi, _ := os.Stat(segs[0].path)
			if err := os.Truncate(segs[0].path, cut.trim(fi.Size())); err != nil {
				t.Fatal(err)
			}

			j2 := openT(t, dir, Options{})
			got, st := replayAll(t, j2)
			if len(got) != 9 || !st.TornTail || st.Quarantined != 0 {
				t.Fatalf("after tear: %d records, stats %+v; want 9 records, torn tail", len(got), st)
			}

			// Appends continue after the tear; a further replay sees old
			// records (tail truncated) plus the new one, no tear reported.
			if err := j2.Append([]byte("post-crash")); err != nil {
				t.Fatal(err)
			}
			j2.Close()
			j3 := openT(t, dir, Options{})
			got3, st3 := replayAll(t, j3)
			if len(got3) != 10 || st3.TornTail || st3.Quarantined != 0 {
				t.Fatalf("after recovery append: %d records, stats %+v; want 10 clean", len(got3), st3)
			}
			if string(got3[9]) != "post-crash" {
				t.Fatalf("last record = %q", got3[9])
			}
		})
	}
}

// TestMidFileCorruptionQuarantined: damage in the middle of an old
// segment loses the rest of that segment (framing is gone) but not the
// journal — the segment moves to quarantine with a reason sidecar and
// later segments still replay.
func TestMidFileCorruptionQuarantined(t *testing.T) {
	dir := t.TempDir()
	// Two segments: tiny rotation threshold forces the split.
	j := openT(t, dir, Options{MaxSegmentBytes: 64})
	for i := 0; i < 8; i++ {
		if err := j.Append([]byte(fmt.Sprintf("record-%02d-xxxxxxxxxxxxxxxx", i))); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	segs, _ := openT(t, dir, Options{}).segments()
	if len(segs) < 2 {
		t.Fatalf("%d segments, want >= 2", len(segs))
	}

	// Flip a payload byte in the middle of the FIRST segment.
	raw, _ := os.ReadFile(segs[0].path)
	raw[frameHeader+2] ^= 0xff
	if err := os.WriteFile(segs[0].path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	var logs []string
	j2 := openT(t, dir, Options{Logf: func(f string, a ...any) { logs = append(logs, fmt.Sprintf(f, a...)) }})
	got, st := replayAll(t, j2)
	if st.Quarantined != 1 {
		t.Fatalf("stats %+v, want 1 quarantined segment", st)
	}
	// Later segments' records survived.
	if len(got) == 0 || !strings.HasPrefix(string(got[len(got)-1]), "record-07") {
		t.Fatalf("later segments lost: got %d records, last %q", len(got), got)
	}
	// The segment moved to quarantine with a .reason sidecar.
	q := filepath.Join(dir, QuarantineDirName, filepath.Base(segs[0].path))
	if _, err := os.Stat(q); err != nil {
		t.Errorf("quarantined segment missing: %v", err)
	}
	reason, err := os.ReadFile(q + ".reason")
	if err != nil || !strings.Contains(string(reason), "CRC mismatch") {
		t.Errorf("reason sidecar = %q, %v", reason, err)
	}
	if len(logs) == 0 {
		t.Error("quarantine should log a diagnostic")
	}
}

// TestCorruptLengthWord: a frame length beyond MaxRecordBytes is
// corruption, not an allocation request.
func TestCorruptLengthWord(t *testing.T) {
	dir := t.TempDir()
	j := openT(t, dir, Options{MaxSegmentBytes: 32})
	for i := 0; i < 4; i++ {
		if err := j.Append([]byte("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa")); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	segs, _ := openT(t, dir, Options{}).segments()
	raw, _ := os.ReadFile(segs[0].path)
	binary.LittleEndian.PutUint32(raw, 0xffffffff)
	os.WriteFile(segs[0].path, raw, 0o644)

	j2 := openT(t, dir, Options{})
	_, st := replayAll(t, j2)
	if st.Quarantined != 1 {
		t.Fatalf("stats %+v, want the bad-length segment quarantined", st)
	}
}

func TestRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	j := openT(t, dir, Options{MaxSegmentBytes: 128})
	for i := 0; i < 50; i++ {
		if err := j.Append([]byte(fmt.Sprintf("rec-%03d-aaaaaaaaaaaaaaaaaaaaaaaa", i))); err != nil {
			t.Fatal(err)
		}
	}
	segs, _ := j.segments()
	if len(segs) < 3 {
		t.Fatalf("rotation produced %d segments, want several", len(segs))
	}

	// Compact to two live records: old segments vanish, replay sees
	// exactly the live set (plus anything appended after).
	live := [][]byte{[]byte("live-1"), []byte("live-2")}
	if err := j.Compact(live); err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte("after-compact")); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2 := openT(t, dir, Options{})
	got, st := replayAll(t, j2)
	if st.Quarantined != 0 || st.TornTail {
		t.Fatalf("stats %+v", st)
	}
	want := []string{"live-1", "live-2", "after-compact"}
	if len(got) != len(want) {
		t.Fatalf("replay after compact: %d records %q, want %v", len(got), got, want)
	}
	for i := range want {
		if string(got[i]) != want[i] {
			t.Errorf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	j := openT(t, t.TempDir(), Options{})
	if err := j.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	j.Close()
	if err := j.Append([]byte("y")); err != ErrClosed {
		t.Fatalf("append after close = %v, want ErrClosed", err)
	}
}

func TestOversizeRecordRejected(t *testing.T) {
	j := openT(t, t.TempDir(), Options{})
	if err := j.Append(make([]byte, MaxRecordBytes+1)); err == nil {
		t.Fatal("oversize record accepted")
	}
}

// TestReplayEmptyDir: a fresh journal replays zero records without
// error — the boot path of a first-ever mctd start.
func TestReplayEmptyDir(t *testing.T) {
	j := openT(t, t.TempDir(), Options{})
	got, st := replayAll(t, j)
	if len(got) != 0 || st.Segments != 0 {
		t.Fatalf("fresh journal: %d records, stats %+v", len(got), st)
	}
}

// TestSequenceContinuesAcrossReopen: a reopened journal appends to a
// NEW segment numbered after the existing ones, never rewriting
// history.
func TestSequenceContinuesAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	j := openT(t, dir, Options{})
	j.Append([]byte("boot-1"))
	j.Close()
	j2 := openT(t, dir, Options{})
	j2.Append([]byte("boot-2"))
	j2.Close()
	segs, _ := openT(t, dir, Options{}).segments()
	if len(segs) != 2 || segs[0].seq >= segs[1].seq {
		t.Fatalf("segments %+v, want two with increasing seq", segs)
	}
	j3 := openT(t, dir, Options{})
	got, _ := replayAll(t, j3)
	if len(got) != 2 || string(got[0]) != "boot-1" || string(got[1]) != "boot-2" {
		t.Fatalf("replay = %q", got)
	}
}
