// Package trace defines the instruction-trace representation that couples
// the synthetic workload generators to the processor timing model, plus a
// compact binary on-disk format so traces can be captured, inspected, and
// replayed.
//
// The original paper drives SMTSIM with Compaq Alpha binaries. This
// reproduction substitutes abstract instruction records carrying exactly
// what a memory-system study needs: an operation class (for functional-unit
// latency and queue routing), register dependences (for issue scheduling),
// a memory address (for the cache hierarchy), and a branch outcome (for the
// mispredict-bubble model).
package trace

import (
	"fmt"

	"repro/internal/mem"
)

// OpClass is the coarse operation class of an instruction.
type OpClass uint8

const (
	// IntOp is a single-cycle integer ALU operation.
	IntOp OpClass = iota
	// IntMul is a multi-cycle integer multiply.
	IntMul
	// FPOp is a pipelined floating-point add/multiply.
	FPOp
	// FPDiv is a long-latency floating-point divide.
	FPDiv
	// Load reads memory.
	Load
	// Store writes memory.
	Store
	// Branch is a conditional branch with a recorded outcome.
	Branch
	numOpClasses
)

// NumOpClasses is the number of distinct operation classes.
const NumOpClasses = int(numOpClasses)

// String names the op class.
func (o OpClass) String() string {
	switch o {
	case IntOp:
		return "int"
	case IntMul:
		return "imul"
	case FPOp:
		return "fp"
	case FPDiv:
		return "fdiv"
	case Load:
		return "load"
	case Store:
		return "store"
	case Branch:
		return "branch"
	default:
		return fmt.Sprintf("OpClass(%d)", uint8(o))
	}
}

// IsMem reports whether the op accesses data memory.
func (o OpClass) IsMem() bool { return o == Load || o == Store }

// IsFP reports whether the op issues to the floating-point queue. The
// simulated processor has two 32-entry instruction queues (integer and FP),
// matching the paper's SMTSIM configuration.
func (o OpClass) IsFP() bool { return o == FPOp || o == FPDiv }

// ExecLatency returns the functional-unit latency in cycles for the class.
// Memory latency for loads is determined by the cache hierarchy instead.
func (o OpClass) ExecLatency() int {
	switch o {
	case IntOp, Branch, Store:
		return 1
	case IntMul:
		return 3
	case FPOp:
		return 4
	case FPDiv:
		return 16
	case Load:
		return 1 // address generation; memory time added by the hierarchy
	default:
		return 1
	}
}

// RegZero is the hardwired zero register: reading it creates no dependence
// and writing it is discarded, exactly like Alpha's r31.
const RegZero uint8 = 0

// NumRegs is the size of the architectural register file the generators
// allocate from (integer and FP share the namespace for simplicity; the
// scheduler only cares about dependences, not banks).
const NumRegs = 64

// Instr is one dynamic instruction.
type Instr struct {
	// PC is the instruction's address. Exclusion predictors and the branch
	// predictor index by it.
	PC mem.Addr
	// Op is the operation class.
	Op OpClass
	// Dest is the destination register (RegZero if none).
	Dest uint8
	// Src1, Src2 are source registers (RegZero if unused).
	Src1, Src2 uint8
	// Addr is the effective address for loads and stores.
	Addr mem.Addr
	// Taken is the branch outcome for Branch ops.
	Taken bool
}

// Stream produces a sequence of instructions. Next stores the next
// instruction into out and reports whether one was produced; once it
// returns false the stream is exhausted and stays exhausted.
type Stream interface {
	Next(out *Instr) bool
}

// SliceStream adapts a slice of instructions to a Stream.
type SliceStream struct {
	instrs []Instr
	pos    int
}

// NewSliceStream wraps instrs (not copied) in a Stream.
func NewSliceStream(instrs []Instr) *SliceStream {
	return &SliceStream{instrs: instrs}
}

// Next implements Stream.
func (s *SliceStream) Next(out *Instr) bool {
	if s.pos >= len(s.instrs) {
		return false
	}
	*out = s.instrs[s.pos]
	s.pos++
	return true
}

// SkipAhead implements Skipper in O(1) by advancing the cursor.
func (s *SliceStream) SkipAhead(n uint64) uint64 {
	left := uint64(len(s.instrs) - s.pos)
	if n > left {
		n = left
	}
	s.pos += int(n)
	return n
}

// Limit wraps a stream and cuts it off after n instructions.
type Limit struct {
	inner Stream
	left  uint64
}

// NewLimit returns a stream yielding at most n instructions from inner.
func NewLimit(inner Stream, n uint64) *Limit {
	return &Limit{inner: inner, left: n}
}

// Next implements Stream.
func (l *Limit) Next(out *Instr) bool {
	if l.left == 0 {
		return false
	}
	if !l.inner.Next(out) {
		l.left = 0
		return false
	}
	l.left--
	return true
}

// SkipAhead implements Skipper: it discards up to n instructions from the
// inner stream, bounded by and charged against the limit.
func (l *Limit) SkipAhead(n uint64) uint64 {
	if n > l.left {
		n = l.left
	}
	done := Skip(l.inner, n)
	if done < n {
		l.left = 0 // inner exhausted; stay exhausted
		return done
	}
	l.left -= done
	return done
}

// Skipper is a Stream that can discard instructions more efficiently — or
// with fewer side effects — than repeated Next calls. Skip uses it when
// available. Tee's implementation is load-bearing for measurement
// correctness: skipped (warmup) instructions bypass the observer.
type Skipper interface {
	// SkipAhead discards up to n instructions, returning how many were
	// discarded (fewer only if the stream ended).
	SkipAhead(n uint64) uint64
}

// Skip discards n instructions from s, returning how many were actually
// discarded (less than n if the stream ended). Experiments use this for the
// paper's "start measured simulation N instructions into execution".
//
// Skipped instructions are warmup by definition, so they must not leak
// into measured counters: if s is a Tee (or any Skipper that bypasses
// side effects), its observer does NOT fire for skipped instructions.
// Note the composition order still matters for wrapped observers — a Tee
// buried beneath a non-Skipper wrapper is driven through Next and will
// observe; attach observers outermost (or after warmup) to keep them
// measurement-clean.
func Skip(s Stream, n uint64) uint64 {
	if sk, ok := s.(Skipper); ok {
		return sk.SkipAhead(n)
	}
	var in Instr
	var done uint64
	for done < n && s.Next(&in) {
		done++
	}
	return done
}

// Drain pulls every remaining instruction from s into a slice. Intended for
// tests and small traces only.
func Drain(s Stream) []Instr {
	var out []Instr
	var in Instr
	for s.Next(&in) {
		out = append(out, in)
	}
	return out
}

// CountKinds consumes the stream and tallies instructions per op class,
// returning the counts and the total. Used by trace tooling and tests.
func CountKinds(s Stream) ([NumOpClasses]uint64, uint64) {
	var counts [NumOpClasses]uint64
	var total uint64
	var in Instr
	for s.Next(&in) {
		counts[in.Op]++
		total++
	}
	return counts, total
}

// Tee duplicates a stream to an observer function while passing
// instructions through unchanged.
type Tee struct {
	inner Stream
	fn    func(Instr)
}

// NewTee wraps inner so fn sees each instruction as it is consumed.
func NewTee(inner Stream, fn func(Instr)) *Tee {
	return &Tee{inner: inner, fn: fn}
}

// Next implements Stream.
func (t *Tee) Next(out *Instr) bool {
	if !t.inner.Next(out) {
		return false
	}
	t.fn(*out)
	return true
}

// SkipAhead implements Skipper: skipped instructions are discarded without
// firing the observer. Before this, Skip over a Tee drove the observer for
// every skipped warmup instruction, polluting measured counters whenever a
// Tee was attached before the warmup skip; TestSkipBypassesTee pins the
// fixed behavior.
func (t *Tee) SkipAhead(n uint64) uint64 {
	return Skip(t.inner, n)
}

// MemOnly filters a stream down to its loads and stores — the access
// stream the functional classification experiments replay.
type MemOnly struct {
	inner Stream
}

// NewMemOnly wraps inner, yielding only memory operations.
func NewMemOnly(inner Stream) *MemOnly { return &MemOnly{inner: inner} }

// Next implements Stream.
func (m *MemOnly) Next(out *Instr) bool {
	for m.inner.Next(out) {
		if out.Op.IsMem() {
			return true
		}
	}
	return false
}

// AccessOf converts a memory instruction to the hierarchy's access record.
func AccessOf(in Instr) mem.Access {
	t := mem.Load
	if in.Op == Store {
		t = mem.Store
	}
	return mem.Access{Addr: in.Addr, PC: in.PC, Type: t}
}
