package trace

import (
	"encoding/binary"
	"fmt"

	"repro/internal/mem"
)

// Mapped is a zero-copy trace reader over an in-memory byte image of a
// trace file — typically an mmap'd region (see MapFile). The fixed record
// stride makes every record directly addressable, so Mapped validates the
// whole image once at open and then serves records and batches by pure
// indexing: no buffered reads, no per-record error paths, no allocation.
//
// Mapped implements both Stream (sequential Next) and BatchSource
// (ReadBatch), and additionally offers random access through At.
type Mapped struct {
	body    []byte // record region (header stripped)
	stride  int
	n       int // record count
	pos     int // Next/ReadBatch cursor
	release func() error
}

// OpenMapped validates the header and record region of a complete trace
// image and returns a Mapped reader over it. The data is not copied; the
// caller must keep it alive (and unmodified) for the reader's lifetime.
// Unlike the streaming Reader, truncation is detected here, up front:
// a partial trailing record or a body shorter than the declared count
// fails at open rather than mid-replay.
func OpenMapped(data []byte, lim Limits) (*Mapped, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("trace: image of %d bytes is shorter than the header", len(data))
	}
	var hdr [headerSize]byte
	copy(hdr[:], data)
	_, stride, declared, err := parseHeader(hdr)
	if err != nil {
		return nil, err
	}
	if err := lim.allowsDeclared(declared, stride); err != nil {
		return nil, err
	}
	body := data[headerSize:]
	if len(body)%int(stride) != 0 {
		return nil, fmt.Errorf("trace: %d-byte body is not a whole number of %d-byte records", len(body), stride)
	}
	n := len(body) / int(stride)
	if declared != 0 {
		if uint64(n) < declared {
			return nil, fmt.Errorf("trace: truncated: header declared %d records, image holds %d", declared, n)
		}
		n = int(declared)
	}
	if lim.MaxRecords != 0 && uint64(n) > lim.MaxRecords {
		return nil, fmt.Errorf("trace: image holds %d records, limit is %d: %w", n, lim.MaxRecords, ErrTraceTooLarge)
	}
	if lim.MaxBytes != 0 && uint64(len(data)) > lim.MaxBytes {
		return nil, fmt.Errorf("trace: image is %d bytes, limit is %d: %w", len(data), lim.MaxBytes, ErrTraceTooLarge)
	}
	return &Mapped{body: body, stride: int(stride), n: n}, nil
}

// Len returns the total record count.
func (m *Mapped) Len() int { return m.n }

// At decodes record i. It does not move the sequential cursor.
func (m *Mapped) At(i int) Instr {
	raw := m.body[i*m.stride:]
	return Instr{
		PC:   mem.Addr(binary.LittleEndian.Uint64(raw[0:])),
		Addr: mem.Addr(binary.LittleEndian.Uint64(raw[8:])),
		Op:   OpClass(raw[16]),
		Dest: raw[17], Src1: raw[18], Src2: raw[19],
		Taken: raw[20]&1 != 0,
	}
}

// Next implements Stream.
func (m *Mapped) Next(out *Instr) bool {
	if m.pos >= m.n {
		return false
	}
	*out = m.At(m.pos)
	m.pos++
	return true
}

// Rewind resets the sequential cursor to the first record, so one mapped
// image can be replayed repeatedly without revalidating or remapping.
func (m *Mapped) Rewind() { m.pos = 0 }

// SkipAhead implements Skipper in O(1).
func (m *Mapped) SkipAhead(n uint64) uint64 {
	left := uint64(m.n - m.pos)
	if n > left {
		n = left
	}
	m.pos += int(n)
	return n
}

// ReadBatch implements BatchSource, decoding straight out of the mapped
// image.
func (m *Mapped) ReadBatch(b *Batch, max int) int {
	n := m.n - m.pos
	if n > max {
		n = max
	}
	if n <= 0 {
		b.truncate(0)
		return 0
	}
	b.grow(n)
	base := m.pos * m.stride
	for i := 0; i < n; i++ {
		b.decodeInto(i, m.body[base+i*m.stride:])
	}
	m.pos += n
	return n
}

// Err implements BatchSource. A Mapped image is fully validated at open,
// so replay cannot fail.
func (m *Mapped) Err() error { return nil }

// Close releases the underlying mapping, if the Mapped owns one (MapFile).
// Closing a Mapped over caller-owned bytes is a no-op.
func (m *Mapped) Close() error {
	m.body, m.n, m.pos = nil, 0, 0
	if m.release == nil {
		return nil
	}
	rel := m.release
	m.release = nil
	return rel()
}
