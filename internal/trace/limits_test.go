package trace

import (
	"bytes"
	"context"
	"errors"
	"testing"
)

// encode writes n instructions with the given declared header count
// (which may differ from n to model truncated or count-unknown traces).
func encode(t *testing.T, n int, declared uint64) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, declared)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range instrs(n) {
		if err := w.Write(in); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestReaderDeclaredOverRecordLimit(t *testing.T) {
	data := encode(t, 10, 10)
	_, err := NewReaderContext(context.Background(), bytes.NewReader(data), Limits{MaxRecords: 5})
	if !errors.Is(err, ErrTraceTooLarge) {
		t.Fatalf("declared 10 > limit 5: err = %v, want ErrTraceTooLarge", err)
	}
}

func TestReaderDeclaredOverByteLimit(t *testing.T) {
	data := encode(t, 10, 10)
	_, err := NewReaderContext(context.Background(), bytes.NewReader(data), Limits{MaxBytes: 64})
	if !errors.Is(err, ErrTraceTooLarge) {
		t.Fatalf("declared 10 records over 64-byte limit: err = %v, want ErrTraceTooLarge", err)
	}
}

func TestReaderStreamOverRecordLimit(t *testing.T) {
	// Count-unknown trace (declared 0): the limit must bite on the stream
	// itself, at the first record past the bound.
	data := encode(t, 10, 0)
	r, err := NewReaderContext(context.Background(), bytes.NewReader(data), Limits{MaxRecords: 5})
	if err != nil {
		t.Fatal(err)
	}
	got := Drain(r)
	if len(got) != 5 {
		t.Fatalf("drained %d records, want 5 before the limit error", len(got))
	}
	if !errors.Is(r.Err(), ErrTraceTooLarge) {
		t.Fatalf("Err() = %v, want ErrTraceTooLarge", r.Err())
	}
}

func TestReaderStreamOverByteLimit(t *testing.T) {
	data := encode(t, 10, 0)
	// Header (16) + 3 records (63) = 79 bytes; allow 80 so exactly three
	// records fit.
	r, err := NewReaderContext(context.Background(), bytes.NewReader(data), Limits{MaxBytes: 80})
	if err != nil {
		t.Fatal(err)
	}
	got := Drain(r)
	if len(got) != 3 {
		t.Fatalf("drained %d records, want 3 under an 80-byte limit", len(got))
	}
	if !errors.Is(r.Err(), ErrTraceTooLarge) {
		t.Fatalf("Err() = %v, want ErrTraceTooLarge", r.Err())
	}
}

func TestReaderExactlyAtLimitIsClean(t *testing.T) {
	// A count-unknown trace with exactly MaxRecords records must read
	// cleanly: the limit only rejects traces that actually exceed it.
	data := encode(t, 5, 0)
	r, err := NewReaderContext(context.Background(), bytes.NewReader(data), Limits{MaxRecords: 5})
	if err != nil {
		t.Fatal(err)
	}
	got := Drain(r)
	if len(got) != 5 || r.Err() != nil {
		t.Fatalf("drained %d records, err %v; want all 5 and no error", len(got), r.Err())
	}
}

func TestReaderCancellation(t *testing.T) {
	// Enough records that the periodic cancellation check fires at least
	// once after the cancel.
	data := encode(t, 4*cancelCheckInterval, 0)
	ctx, cancel := context.WithCancel(context.Background())
	r, err := NewReaderContext(ctx, bytes.NewReader(data), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	var in Instr
	for i := 0; i < cancelCheckInterval/2; i++ {
		if !r.Next(&in) {
			t.Fatalf("stream ended early at %d: %v", i, r.Err())
		}
	}
	cancel()
	n := 0
	for r.Next(&in) {
		n++
	}
	if n > cancelCheckInterval {
		t.Fatalf("read %d records after cancellation, want at most one check interval", n)
	}
	if !errors.Is(r.Err(), context.Canceled) {
		t.Fatalf("Err() = %v, want context.Canceled", r.Err())
	}
}

func TestReaderCancelledBeforeFirstRecord(t *testing.T) {
	data := encode(t, 10, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r, err := NewReaderContext(ctx, bytes.NewReader(data), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	var in Instr
	if r.Next(&in) {
		t.Fatal("Next succeeded under a cancelled context")
	}
	if !errors.Is(r.Err(), context.Canceled) {
		t.Fatalf("Err() = %v, want context.Canceled", r.Err())
	}
}
