package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func TestBinaryRoundTrip(t *testing.T) {
	src := instrs(100)
	var buf bytes.Buffer
	n, err := WriteAll(&buf, NewSliceStream(src))
	if err != nil || n != 100 {
		t.Fatalf("WriteAll: n=%d err=%v", n, err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := Drain(r)
	if r.Err() != nil {
		t.Fatalf("reader error: %v", r.Err())
	}
	if len(got) != len(src) {
		t.Fatalf("round trip length %d != %d", len(got), len(src))
	}
	for i := range src {
		if got[i] != src[i] {
			t.Fatalf("instr %d: %+v != %+v", i, got[i], src[i])
		}
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(pc, addr uint64, op uint8, dest, s1, s2 uint8, taken bool) bool {
		in := Instr{
			PC:   mem.Addr(pc),
			Addr: mem.Addr(addr),
			Op:   OpClass(op % uint8(NumOpClasses)),
			Dest: dest, Src1: s1, Src2: s2,
			Taken: taken,
		}
		var buf bytes.Buffer
		if _, err := WriteAll(&buf, NewSliceStream([]Instr{in})); err != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		var out Instr
		return r.Next(&out) && out == in && !r.Next(&out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDeclaredCountHonored(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range instrs(5) {
		if err := w.Write(in); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 5 {
		t.Errorf("writer count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Declared() != 2 {
		t.Errorf("declared = %d", r.Declared())
	}
	// Reader stops at the declared count even though more records exist.
	if got := len(Drain(r)); got != 2 {
		t.Errorf("read %d records, want 2", got)
	}
}

func TestReaderRejectsBadHeader(t *testing.T) {
	if _, err := NewReader(strings.NewReader("NOPE00000000000000")); err == nil {
		t.Error("bad magic accepted")
	}
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 0)
	w.Flush()
	raw := buf.Bytes()
	raw[4] = 99 // corrupt version
	if _, err := NewReader(bytes.NewReader(raw)); err == nil {
		t.Error("bad version accepted")
	}
	if _, err := NewReader(strings.NewReader("MC")); err == nil {
		t.Error("truncated header accepted")
	}
}

func TestTruncatedRecordSurfacesError(t *testing.T) {
	var buf bytes.Buffer
	WriteAll(&buf, NewSliceStream(instrs(2)))
	raw := buf.Bytes()
	r, err := NewReader(bytes.NewReader(raw[:len(raw)-3]))
	if err != nil {
		t.Fatal(err)
	}
	var in Instr
	if !r.Next(&in) {
		t.Fatal("first record should read")
	}
	if r.Next(&in) {
		t.Fatal("truncated record should not read")
	}
	if r.Err() == nil {
		t.Error("truncation should surface through Err")
	}
}

func TestEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteAll(&buf, NewSliceStream(nil)); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var in Instr
	if r.Next(&in) {
		t.Error("empty trace should yield nothing")
	}
	if r.Err() != nil {
		t.Errorf("clean EOF should not be an error: %v", r.Err())
	}
}
