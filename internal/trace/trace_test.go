package trace

import (
	"testing"

	"repro/internal/mem"
)

func instrs(n int) []Instr {
	out := make([]Instr, n)
	for i := range out {
		op := IntOp
		switch i % 4 {
		case 1:
			op = Load
		case 2:
			op = Store
		case 3:
			op = Branch
		}
		out[i] = Instr{PC: mem.Addr(i * 4), Op: op, Addr: mem.Addr(i * 64), Taken: i%8 == 3}
	}
	return out
}

func TestSliceStream(t *testing.T) {
	s := NewSliceStream(instrs(5))
	var in Instr
	for i := 0; i < 5; i++ {
		if !s.Next(&in) {
			t.Fatalf("stream ended early at %d", i)
		}
		if in.PC != mem.Addr(i*4) {
			t.Errorf("instr %d PC = %#x", i, in.PC)
		}
	}
	if s.Next(&in) {
		t.Error("exhausted stream should stay exhausted")
	}
	if s.Next(&in) {
		t.Error("Next after end must remain false")
	}
}

func TestLimit(t *testing.T) {
	s := NewLimit(NewSliceStream(instrs(10)), 3)
	var in Instr
	n := 0
	for s.Next(&in) {
		n++
	}
	if n != 3 {
		t.Errorf("limit yielded %d, want 3", n)
	}
	// Limit longer than the stream ends at the stream's end.
	s = NewLimit(NewSliceStream(instrs(2)), 100)
	n = 0
	for s.Next(&in) {
		n++
	}
	if n != 2 {
		t.Errorf("over-limit yielded %d, want 2", n)
	}
}

func TestSkip(t *testing.T) {
	s := NewSliceStream(instrs(10))
	if got := Skip(s, 4); got != 4 {
		t.Errorf("Skip = %d", got)
	}
	var in Instr
	s.Next(&in)
	if in.PC != mem.Addr(4*4) {
		t.Errorf("after skip, PC = %#x", in.PC)
	}
	if got := Skip(s, 100); got != 5 {
		t.Errorf("Skip past end = %d, want 5", got)
	}
}

func TestDrainAndCountKinds(t *testing.T) {
	all := Drain(NewSliceStream(instrs(12)))
	if len(all) != 12 {
		t.Fatalf("Drain returned %d", len(all))
	}
	counts, total := CountKinds(NewSliceStream(instrs(12)))
	if total != 12 {
		t.Errorf("total = %d", total)
	}
	if counts[IntOp] != 3 || counts[Load] != 3 || counts[Store] != 3 || counts[Branch] != 3 {
		t.Errorf("counts = %v", counts)
	}
}

func TestTee(t *testing.T) {
	var seen int
	s := NewTee(NewSliceStream(instrs(7)), func(Instr) { seen++ })
	Drain(s)
	if seen != 7 {
		t.Errorf("tee observed %d", seen)
	}
}

func TestMemOnly(t *testing.T) {
	s := NewMemOnly(NewSliceStream(instrs(12)))
	var in Instr
	n := 0
	for s.Next(&in) {
		if !in.Op.IsMem() {
			t.Fatalf("non-mem op %v leaked through", in.Op)
		}
		n++
	}
	if n != 6 { // 3 loads + 3 stores
		t.Errorf("mem ops = %d, want 6", n)
	}
}

func TestAccessOf(t *testing.T) {
	ld := Instr{Op: Load, Addr: 0x40, PC: 0x100}
	st := Instr{Op: Store, Addr: 0x80, PC: 0x104}
	if a := AccessOf(ld); a.Type != mem.Load || a.Addr != 0x40 || a.PC != 0x100 {
		t.Errorf("AccessOf load = %+v", a)
	}
	if a := AccessOf(st); a.Type != mem.Store || a.Addr != 0x80 {
		t.Errorf("AccessOf store = %+v", a)
	}
}

func TestOpClassProperties(t *testing.T) {
	if !Load.IsMem() || !Store.IsMem() || IntOp.IsMem() || Branch.IsMem() {
		t.Error("IsMem wrong")
	}
	if !FPOp.IsFP() || !FPDiv.IsFP() || IntMul.IsFP() || Load.IsFP() {
		t.Error("IsFP wrong")
	}
	// Latency sanity: divides are the longest, simple ops single-cycle.
	if FPDiv.ExecLatency() <= FPOp.ExecLatency() || IntOp.ExecLatency() != 1 {
		t.Error("latency ordering wrong")
	}
	for op := OpClass(0); int(op) < NumOpClasses; op++ {
		if op.String() == "" || op.ExecLatency() < 1 {
			t.Errorf("op %d: name %q latency %d", op, op.String(), op.ExecLatency())
		}
	}
}

// TestSkipBypassesTee pins the warmup-skip contract: instructions
// discarded by Skip are warmup, so a Tee's observer must NOT see them —
// only instructions actually consumed afterward count. (Before the
// Skipper fast path, Skip drove the Tee via Next and the observer fired
// for every skipped instruction, polluting measured counters when a Tee
// was attached before the warmup skip.)
func TestSkipBypassesTee(t *testing.T) {
	var seen int
	s := NewTee(NewSliceStream(instrs(10)), func(Instr) { seen++ })
	if got := Skip(s, 6); got != 6 {
		t.Fatalf("Skip = %d, want 6", got)
	}
	if seen != 0 {
		t.Fatalf("observer fired %d times during warmup skip, want 0", seen)
	}
	var in Instr
	for s.Next(&in) {
	}
	if seen != 4 {
		t.Errorf("observer saw %d measured instructions, want 4", seen)
	}
}

// TestSkipOverLimit verifies the Skipper path charges skipped instructions
// against the limit exactly like consuming them would.
func TestSkipOverLimit(t *testing.T) {
	l := NewLimit(NewSliceStream(instrs(100)), 10)
	if got := Skip(l, 4); got != 4 {
		t.Fatalf("Skip = %d", got)
	}
	var in Instr
	n := 0
	for l.Next(&in) {
		n++
	}
	if n != 6 {
		t.Errorf("after skipping 4 of limit 10, %d remained, want 6", n)
	}
	// Skipping past the limit stops at the limit.
	l2 := NewLimit(NewSliceStream(instrs(100)), 10)
	if got := Skip(l2, 50); got != 10 {
		t.Errorf("Skip past limit = %d, want 10", got)
	}
	// Skipping past the inner stream's end exhausts the limit.
	l3 := NewLimit(NewSliceStream(instrs(3)), 10)
	if got := Skip(l3, 8); got != 3 {
		t.Errorf("Skip past inner end = %d, want 3", got)
	}
	if l3.Next(&in) {
		t.Error("limit over exhausted inner stream must stay exhausted")
	}
}

// TestSkipComposition pins the documented composition caveat: a Tee nested
// inside a non-Skipper wrapper (MemOnly) is driven through Next, so its
// observer DOES see skipped instructions. Observers that must stay
// measurement-clean attach outermost.
func TestSkipComposition(t *testing.T) {
	var inner int
	s := NewMemOnly(NewTee(NewSliceStream(instrs(12)), func(Instr) { inner++ }))
	Skip(s, 2) // 2 mem ops discarded, but the tee sees every instr walked
	if inner == 0 {
		t.Error("inner tee under MemOnly should observe Next-driven skipping (documented caveat)")
	}
	var outer int
	s2 := NewTee(NewMemOnly(NewSliceStream(instrs(12))), func(Instr) { outer++ })
	Skip(s2, 2)
	if outer != 0 {
		t.Errorf("outermost tee observed %d skipped instructions, want 0", outer)
	}
}
