//go:build !linux

package trace

import "os"

// MapFile reads the trace file at path into memory and returns a Mapped
// reader over it. On platforms without the mmap fast path this is a plain
// read — same semantics, one copy.
func MapFile(path string, lim Limits) (*Mapped, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return OpenMapped(data, lim)
}
