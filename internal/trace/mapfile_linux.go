//go:build linux

package trace

import (
	"fmt"
	"os"
	"syscall"
)

// MapFile memory-maps the trace file at path read-only and returns a
// zero-copy Mapped reader over it. Close releases the mapping. An empty
// file (or one holding only a header) maps fine and replays zero records.
func MapFile(path string, lim Limits) (*Mapped, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, fmt.Errorf("trace: %s is empty", path)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, fmt.Errorf("trace: mmap %s: %w", path, err)
	}
	m, err := OpenMapped(data, lim)
	if err != nil {
		syscall.Munmap(data)
		return nil, err
	}
	m.release = func() error { return syscall.Munmap(data) }
	return m, nil
}
