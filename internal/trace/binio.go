package trace

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/mem"
)

// Binary trace format ("MCTR"), two wire versions:
//
//	header:   magic "MCTR" | version u8 | endian u8 | stride u8 | reserved u8 | count u64
//	v1 record (21 bytes): pc u64 | addr u64 | op u8 | dest u8 | src1 u8 | src2 u8 | flags u8
//	v2 record (24 bytes): v1 record | pad [3]u8
//
// All integers little-endian. flags bit 0 = branch taken. count may be zero
// when the writer streamed an unknown number of records; readers then read
// to EOF. The format is deliberately trivial: the point is replayable,
// versioned traces, not compression.
//
// Version 1 is the legacy packed layout; its writers left the endian and
// stride header bytes zero, so v1 readers ignore them. Version 2 is the
// batch format: records are padded to a fixed 24-byte stride, so every
// field of record i lives at 8-aligned offset headerSize + i*24 and a
// mapped file can be indexed without any per-record decoder state. V2
// headers carry an explicit endianness marker (1 = little-endian) and the
// record stride, and readers reject anything else with a typed error
// rather than silently mis-decoding.

const (
	traceMagic = "MCTR"
	// versionLegacy is the packed 21-byte-record format.
	versionLegacy = 1
	// versionBatch is the fixed-stride 24-byte-record format.
	versionBatch = 2
	headerSize   = 16
	recordSizeV1 = 8 + 8 + 5
	recordSizeV2 = 24
	// endianLittle is the v2 header marker for little-endian records, the
	// only byte order the format defines.
	endianLittle = 1

	// traceVersion and recordSize alias the legacy layout, which existing
	// tooling and tests treat as the default.
	traceVersion = versionLegacy
	recordSize   = recordSizeV1
)

// Typed header errors. Servers and tools match these with errors.Is to
// distinguish "not a trace at all" from "a trace we cannot read".
var (
	// ErrBadMagic reports that the stream does not start with "MCTR".
	ErrBadMagic = errors.New("trace: bad magic")
	// ErrUnsupportedVersion reports a version byte this reader cannot decode.
	ErrUnsupportedVersion = errors.New("trace: unsupported version")
	// ErrBadEndianness reports a v2 header whose endianness marker is not
	// little-endian.
	ErrBadEndianness = errors.New("trace: unsupported endianness")
	// ErrBadStride reports a v2 header whose declared record stride does not
	// match the version's fixed layout.
	ErrBadStride = errors.New("trace: header stride does not match version")
)

// strideOf returns the record size for a wire version, or 0 if unknown.
func strideOf(version byte) uint64 {
	switch version {
	case versionLegacy:
		return recordSizeV1
	case versionBatch:
		return recordSizeV2
	}
	return 0
}

// Writer streams instructions to an io.Writer in the binary trace format.
type Writer struct {
	w      *bufio.Writer
	count  uint64
	stride int
}

// NewWriter writes a legacy (version 1) header with count records promised
// (0 = unknown) and returns a Writer. Call Flush when done. New tooling
// should prefer NewWriterV2; this constructor remains for producing traces
// older readers understand.
func NewWriter(w io.Writer, count uint64) (*Writer, error) {
	return newWriter(w, count, versionLegacy)
}

// NewWriterV2 writes a fixed-stride (version 2) header with count records
// promised (0 = unknown) and returns a Writer. Call Flush when done.
func NewWriterV2(w io.Writer, count uint64) (*Writer, error) {
	return newWriter(w, count, versionBatch)
}

func newWriter(w io.Writer, count uint64, version byte) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	var hdr [headerSize]byte
	copy(hdr[:4], traceMagic)
	hdr[4] = version
	if version == versionBatch {
		hdr[5] = endianLittle
		hdr[6] = recordSizeV2
	}
	binary.LittleEndian.PutUint64(hdr[8:], count)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{w: bw, stride: int(strideOf(version))}, nil
}

// Write appends one instruction record.
func (w *Writer) Write(in Instr) error {
	var rec [recordSizeV2]byte
	binary.LittleEndian.PutUint64(rec[0:], uint64(in.PC))
	binary.LittleEndian.PutUint64(rec[8:], uint64(in.Addr))
	rec[16] = byte(in.Op)
	rec[17] = in.Dest
	rec[18] = in.Src1
	rec[19] = in.Src2
	if in.Taken {
		rec[20] = 1
	}
	if _, err := w.w.Write(rec[:w.stride]); err != nil {
		return fmt.Errorf("trace: writing record %d: %w", w.count, err)
	}
	w.count++
	return nil
}

// Count returns the number of records written so far.
func (w *Writer) Count() uint64 { return w.count }

// Flush drains buffered records to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// WriteAll streams every instruction from s through a new Writer on w,
// returning the number written.
func WriteAll(w io.Writer, s Stream) (uint64, error) {
	tw, err := NewWriter(w, 0)
	if err != nil {
		return 0, err
	}
	var in Instr
	for s.Next(&in) {
		if err := tw.Write(in); err != nil {
			return tw.Count(), err
		}
	}
	return tw.Count(), tw.Flush()
}

// ErrTraceTooLarge reports that a trace exceeded a Reader's configured
// Limits. Servers reading untrusted uploads match it with errors.Is to
// map the failure to "request entity too large" instead of treating it
// as a corrupt trace.
var ErrTraceTooLarge = errors.New("trace: stream exceeds configured limit")

// Limits bounds what a Reader will consume. A zero field is unlimited.
// Both bounds are enforced against the header's declared count up front
// (a trace that promises too many records fails at NewReaderContext,
// before any record is read) and against the actual stream as it is
// decoded (a count-unknown trace fails at the first record past the
// limit), so a malicious or runaway upload can never make a service
// worker buffer or simulate without bound.
type Limits struct {
	// MaxRecords caps the number of records decoded.
	MaxRecords uint64
	// MaxBytes caps the total trace size in bytes (header included).
	MaxBytes uint64
}

// allowsDeclared checks a header's promised record count against the
// limits, using the stride of the trace's wire version for the byte math.
func (l Limits) allowsDeclared(declared, stride uint64) error {
	if declared == 0 {
		return nil
	}
	if l.MaxRecords != 0 && declared > l.MaxRecords {
		return fmt.Errorf("trace: header declares %d records, limit is %d: %w", declared, l.MaxRecords, ErrTraceTooLarge)
	}
	if l.MaxBytes != 0 && headerSize+declared*stride > l.MaxBytes {
		return fmt.Errorf("trace: header declares %d records (%d bytes), byte limit is %d: %w",
			declared, headerSize+declared*stride, l.MaxBytes, ErrTraceTooLarge)
	}
	return nil
}

// cancelCheckInterval is how many records a Reader decodes between
// context-cancellation checks: frequent enough that an abandoned request
// stops within microseconds of work, rare enough to stay off the
// per-record fast path.
const cancelCheckInterval = 512

// Reader replays a binary trace as a Stream. It decodes both wire
// versions, auto-detected from the header; ReadBatch additionally exposes
// the fixed-stride bulk path for either version.
type Reader struct {
	r        *bufio.Reader
	ctx      context.Context
	lim      Limits
	declared uint64
	read     uint64
	err      error
	version  byte
	stride   uint64
	raw      []byte // ReadBatch bulk-read scratch, reused across calls
}

// NewReader validates the header and returns a Reader positioned at the
// first record. The reader is unbounded and non-cancellable — the right
// shape for trusted local files; services reading untrusted request
// bodies use NewReaderContext.
func NewReader(r io.Reader) (*Reader, error) {
	return NewReaderContext(context.Background(), r, Limits{})
}

// NewReaderContext is NewReader with cancellation and resource limits:
// Next stops with ctx's error once the context is cancelled (checked
// every few hundred records, so an abandoned request stops promptly
// without per-record overhead), and stops with an error matching
// ErrTraceTooLarge as soon as the stream exceeds lim. A header that
// already promises more than lim allows fails here, before any record
// is decoded.
func NewReaderContext(ctx context.Context, r io.Reader, lim Limits) (*Reader, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [headerSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	version, stride, declared, err := parseHeader(hdr)
	if err != nil {
		return nil, err
	}
	if err := lim.allowsDeclared(declared, stride); err != nil {
		return nil, err
	}
	return &Reader{r: br, ctx: ctx, lim: lim, declared: declared, version: version, stride: stride}, nil
}

// parseHeader validates a 16-byte trace header, returning the wire
// version, record stride, and declared count. Failures carry the typed
// sentinels ErrBadMagic / ErrUnsupportedVersion / ErrBadEndianness /
// ErrBadStride.
func parseHeader(hdr [headerSize]byte) (version byte, stride, declared uint64, err error) {
	if string(hdr[:4]) != traceMagic {
		return 0, 0, 0, fmt.Errorf("trace: bad magic %q (want %q): %w", hdr[:4], traceMagic, ErrBadMagic)
	}
	version = hdr[4]
	stride = strideOf(version)
	if stride == 0 {
		return 0, 0, 0, fmt.Errorf("trace: unsupported version %d: %w", version, ErrUnsupportedVersion)
	}
	if version >= versionBatch {
		// v1 headers predate the endian/stride bytes (writers left them
		// zero), so only v2+ headers are held to them.
		if hdr[5] != endianLittle {
			return 0, 0, 0, fmt.Errorf("trace: endianness marker %d (want %d): %w", hdr[5], endianLittle, ErrBadEndianness)
		}
		if uint64(hdr[6]) != stride {
			return 0, 0, 0, fmt.Errorf("trace: declared stride %d, version %d defines %d: %w", hdr[6], version, stride, ErrBadStride)
		}
	}
	declared = binary.LittleEndian.Uint64(hdr[8:])
	return version, stride, declared, nil
}

// Declared returns the record count promised by the header (0 = unknown).
func (r *Reader) Declared() uint64 { return r.declared }

// Err returns the first non-EOF error encountered while reading.
func (r *Reader) Err() error { return r.err }

// Next implements Stream. Truncated trailing records, limit violations
// (matching ErrTraceTooLarge), and context cancellation all surface
// through Err.
func (r *Reader) Next(out *Instr) bool {
	if r.err != nil {
		return false
	}
	if r.declared != 0 && r.read >= r.declared {
		return false
	}
	if r.read%cancelCheckInterval == 0 {
		if cerr := r.ctx.Err(); cerr != nil {
			r.err = fmt.Errorf("trace: cancelled at record %d: %w", r.read, cerr)
			return false
		}
	}
	// A count-unknown trace (declared == 0) is bounded only by the stream
	// itself: refuse to decode past the limits. Checked before the read so
	// an at-limit trace that cleanly ends is accepted, but one more record
	// is never buffered.
	if r.lim.MaxRecords != 0 && r.read >= r.lim.MaxRecords {
		if _, err := r.r.Peek(1); err == nil {
			r.err = fmt.Errorf("trace: more than %d records: %w", r.lim.MaxRecords, ErrTraceTooLarge)
		}
		return false
	}
	if r.lim.MaxBytes != 0 && headerSize+(r.read+1)*r.stride > r.lim.MaxBytes {
		if _, err := r.r.Peek(1); err == nil {
			r.err = fmt.Errorf("trace: more than %d bytes: %w", r.lim.MaxBytes, ErrTraceTooLarge)
		}
		return false
	}
	var rec [recordSizeV2]byte
	_, err := io.ReadFull(r.r, rec[:r.stride])
	if err != nil {
		switch {
		case !errors.Is(err, io.EOF):
			// Includes io.ErrUnexpectedEOF: a partial trailing record.
			r.err = fmt.Errorf("trace: reading record %d: %w", r.read, err)
		case r.declared != 0:
			// Clean EOF, but the header promised more records: the trace
			// was truncated on a record boundary. Silently returning the
			// prefix would corrupt replay-based measurements.
			r.err = fmt.Errorf("trace: truncated: header declared %d records, got %d", r.declared, r.read)
		}
		return false
	}
	out.PC = mem.Addr(binary.LittleEndian.Uint64(rec[0:]))
	out.Addr = mem.Addr(binary.LittleEndian.Uint64(rec[8:]))
	out.Op = OpClass(rec[16])
	out.Dest = rec[17]
	out.Src1 = rec[18]
	out.Src2 = rec[19]
	out.Taken = rec[20]&1 != 0
	r.read++
	return true
}
