package trace

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/mem"
)

// Binary trace format ("MCTR"):
//
//	header:  magic "MCTR" | version u8 | reserved [3]u8 | count u64
//	record:  pc u64 | addr u64 | op u8 | dest u8 | src1 u8 | src2 u8 | flags u8
//
// All integers little-endian. flags bit 0 = branch taken. count may be zero
// when the writer streamed an unknown number of records; readers then read
// to EOF. The format is deliberately trivial: the point is replayable,
// versioned traces, not compression.

const (
	traceMagic   = "MCTR"
	traceVersion = 1
	headerSize   = 16
	recordSize   = 8 + 8 + 5
)

// Writer streams instructions to an io.Writer in the binary trace format.
type Writer struct {
	w     *bufio.Writer
	count uint64
}

// NewWriter writes a header with count records promised (0 = unknown) and
// returns a Writer. Call Flush when done.
func NewWriter(w io.Writer, count uint64) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	var hdr [16]byte
	copy(hdr[:4], traceMagic)
	hdr[4] = traceVersion
	binary.LittleEndian.PutUint64(hdr[8:], count)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{w: bw}, nil
}

// Write appends one instruction record.
func (w *Writer) Write(in Instr) error {
	var rec [recordSize]byte
	binary.LittleEndian.PutUint64(rec[0:], uint64(in.PC))
	binary.LittleEndian.PutUint64(rec[8:], uint64(in.Addr))
	rec[16] = byte(in.Op)
	rec[17] = in.Dest
	rec[18] = in.Src1
	rec[19] = in.Src2
	if in.Taken {
		rec[20] = 1
	}
	if _, err := w.w.Write(rec[:]); err != nil {
		return fmt.Errorf("trace: writing record %d: %w", w.count, err)
	}
	w.count++
	return nil
}

// Count returns the number of records written so far.
func (w *Writer) Count() uint64 { return w.count }

// Flush drains buffered records to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// WriteAll streams every instruction from s through a new Writer on w,
// returning the number written.
func WriteAll(w io.Writer, s Stream) (uint64, error) {
	tw, err := NewWriter(w, 0)
	if err != nil {
		return 0, err
	}
	var in Instr
	for s.Next(&in) {
		if err := tw.Write(in); err != nil {
			return tw.Count(), err
		}
	}
	return tw.Count(), tw.Flush()
}

// ErrTraceTooLarge reports that a trace exceeded a Reader's configured
// Limits. Servers reading untrusted uploads match it with errors.Is to
// map the failure to "request entity too large" instead of treating it
// as a corrupt trace.
var ErrTraceTooLarge = errors.New("trace: stream exceeds configured limit")

// Limits bounds what a Reader will consume. A zero field is unlimited.
// Both bounds are enforced against the header's declared count up front
// (a trace that promises too many records fails at NewReaderContext,
// before any record is read) and against the actual stream as it is
// decoded (a count-unknown trace fails at the first record past the
// limit), so a malicious or runaway upload can never make a service
// worker buffer or simulate without bound.
type Limits struct {
	// MaxRecords caps the number of records decoded.
	MaxRecords uint64
	// MaxBytes caps the total trace size in bytes (header included).
	MaxBytes uint64
}

// allowsDeclared checks a header's promised record count against the
// limits.
func (l Limits) allowsDeclared(declared uint64) error {
	if declared == 0 {
		return nil
	}
	if l.MaxRecords != 0 && declared > l.MaxRecords {
		return fmt.Errorf("trace: header declares %d records, limit is %d: %w", declared, l.MaxRecords, ErrTraceTooLarge)
	}
	if l.MaxBytes != 0 && headerSize+declared*recordSize > l.MaxBytes {
		return fmt.Errorf("trace: header declares %d records (%d bytes), byte limit is %d: %w",
			declared, headerSize+declared*recordSize, l.MaxBytes, ErrTraceTooLarge)
	}
	return nil
}

// cancelCheckInterval is how many records a Reader decodes between
// context-cancellation checks: frequent enough that an abandoned request
// stops within microseconds of work, rare enough to stay off the
// per-record fast path.
const cancelCheckInterval = 512

// Reader replays a binary trace as a Stream.
type Reader struct {
	r        *bufio.Reader
	ctx      context.Context
	lim      Limits
	declared uint64
	read     uint64
	err      error
}

// NewReader validates the header and returns a Reader positioned at the
// first record. The reader is unbounded and non-cancellable — the right
// shape for trusted local files; services reading untrusted request
// bodies use NewReaderContext.
func NewReader(r io.Reader) (*Reader, error) {
	return NewReaderContext(context.Background(), r, Limits{})
}

// NewReaderContext is NewReader with cancellation and resource limits:
// Next stops with ctx's error once the context is cancelled (checked
// every few hundred records, so an abandoned request stops promptly
// without per-record overhead), and stops with an error matching
// ErrTraceTooLarge as soon as the stream exceeds lim. A header that
// already promises more than lim allows fails here, before any record
// is decoded.
func NewReaderContext(ctx context.Context, r io.Reader, lim Limits) (*Reader, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(hdr[:4]) != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q (want %q)", hdr[:4], traceMagic)
	}
	if hdr[4] != traceVersion {
		return nil, fmt.Errorf("trace: unsupported version %d (want %d)", hdr[4], traceVersion)
	}
	declared := binary.LittleEndian.Uint64(hdr[8:])
	if err := lim.allowsDeclared(declared); err != nil {
		return nil, err
	}
	return &Reader{r: br, ctx: ctx, lim: lim, declared: declared}, nil
}

// Declared returns the record count promised by the header (0 = unknown).
func (r *Reader) Declared() uint64 { return r.declared }

// Err returns the first non-EOF error encountered while reading.
func (r *Reader) Err() error { return r.err }

// Next implements Stream. Truncated trailing records, limit violations
// (matching ErrTraceTooLarge), and context cancellation all surface
// through Err.
func (r *Reader) Next(out *Instr) bool {
	if r.err != nil {
		return false
	}
	if r.declared != 0 && r.read >= r.declared {
		return false
	}
	if r.read%cancelCheckInterval == 0 {
		if cerr := r.ctx.Err(); cerr != nil {
			r.err = fmt.Errorf("trace: cancelled at record %d: %w", r.read, cerr)
			return false
		}
	}
	// A count-unknown trace (declared == 0) is bounded only by the stream
	// itself: refuse to decode past the limits. Checked before the read so
	// an at-limit trace that cleanly ends is accepted, but one more record
	// is never buffered.
	if r.lim.MaxRecords != 0 && r.read >= r.lim.MaxRecords {
		if _, err := r.r.Peek(1); err == nil {
			r.err = fmt.Errorf("trace: more than %d records: %w", r.lim.MaxRecords, ErrTraceTooLarge)
		}
		return false
	}
	if r.lim.MaxBytes != 0 && headerSize+(r.read+1)*recordSize > r.lim.MaxBytes {
		if _, err := r.r.Peek(1); err == nil {
			r.err = fmt.Errorf("trace: more than %d bytes: %w", r.lim.MaxBytes, ErrTraceTooLarge)
		}
		return false
	}
	var rec [recordSize]byte
	_, err := io.ReadFull(r.r, rec[:])
	if err != nil {
		switch {
		case !errors.Is(err, io.EOF):
			// Includes io.ErrUnexpectedEOF: a partial trailing record.
			r.err = fmt.Errorf("trace: reading record %d: %w", r.read, err)
		case r.declared != 0:
			// Clean EOF, but the header promised more records: the trace
			// was truncated on a record boundary. Silently returning the
			// prefix would corrupt replay-based measurements.
			r.err = fmt.Errorf("trace: truncated: header declared %d records, got %d", r.declared, r.read)
		}
		return false
	}
	out.PC = mem.Addr(binary.LittleEndian.Uint64(rec[0:]))
	out.Addr = mem.Addr(binary.LittleEndian.Uint64(rec[8:]))
	out.Op = OpClass(rec[16])
	out.Dest = rec[17]
	out.Src1 = rec[18]
	out.Src2 = rec[19]
	out.Taken = rec[20]&1 != 0
	r.read++
	return true
}
