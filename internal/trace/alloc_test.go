package trace

import (
	"bytes"
	"testing"

	"repro/internal/mem"
)

// batchTrace encodes n records in the fixed-stride v2 format with the
// count declared, returning the raw image.
func batchTrace(t testing.TB, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriterV2(&buf, uint64(n))
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatch(DefaultBatchSize)
	for i := 0; i < n; i++ {
		if b.Len() == DefaultBatchSize {
			if err := w.WriteBatch(b); err != nil {
				t.Fatal(err)
			}
			b.truncate(0)
		}
		b.Append(Instr{
			PC:   mem.Addr(0x1000 + 4*i),
			Addr: mem.Addr(uint64(i%512) << 6),
			Op:   OpClass(i % 4),
			Dest: byte(i), Src1: byte(i + 1), Src2: byte(i + 2),
			Taken: i%3 == 0,
		})
	}
	if err := w.WriteBatch(b); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReadBatchSteadyStateAllocs pins the streaming batch decoder at zero
// allocations per batch: after the first call has sized the read slab and
// the batch arrays, every further ReadBatch must decode in place. This is
// the decode path of every trace upload.
func TestReadBatchSteadyStateAllocs(t *testing.T) {
	const runs = 1000
	raw := batchTrace(t, (runs+2)*DefaultBatchSize)
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatch(DefaultBatchSize)
	if r.ReadBatch(b, DefaultBatchSize) != DefaultBatchSize { // warm: size slab + arrays
		t.Fatalf("warm-up batch failed: %v", r.Err())
	}
	if avg := testing.AllocsPerRun(runs, func() {
		if r.ReadBatch(b, DefaultBatchSize) != DefaultBatchSize {
			t.Fatalf("batch decode stalled: %v", r.Err())
		}
	}); avg != 0 {
		t.Fatalf("Reader.ReadBatch steady state allocates %v allocs/batch, want 0", avg)
	}
}

// TestMappedReadBatchAllocs pins the zero-copy mapped decoder at zero
// allocations per batch, warm from the very first replay: OpenMapped does
// all validation up front and ReadBatch decodes straight out of the image.
func TestMappedReadBatchAllocs(t *testing.T) {
	raw := batchTrace(t, 4*DefaultBatchSize)
	m, err := OpenMapped(raw, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatch(DefaultBatchSize)
	if avg := testing.AllocsPerRun(1000, func() {
		if m.ReadBatch(b, DefaultBatchSize) == 0 {
			m.Rewind()
		}
	}); avg != 0 {
		t.Fatalf("Mapped.ReadBatch allocates %v allocs/batch, want 0", avg)
	}
}
