package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/mem"
)

// Batch is a struct-of-arrays block of decoded instruction records: the
// i-th instruction is the i-th element of every slice. Hot loops iterate
// one field array at a time instead of pulling whole Instr structs through
// an interface, which is what lets the classification kernel amortize
// dispatch and bounds checks across ~256 records.
//
// All slices always share one length (Len). A Batch is reused across
// ReadBatch calls without reallocating once it has grown to the working
// batch size.
type Batch struct {
	PC    []mem.Addr
	Addr  []mem.Addr
	Op    []OpClass
	Dest  []uint8
	Src1  []uint8
	Src2  []uint8
	Taken []bool
}

// DefaultBatchSize is the record count batch consumers default to: large
// enough to amortize per-batch overhead, small enough that the SoA arrays
// for one batch stay resident in L1.
const DefaultBatchSize = 256

// NewBatch returns an empty batch with capacity for n records.
func NewBatch(n int) *Batch {
	b := &Batch{}
	b.grow(n)
	b.truncate(0)
	return b
}

// Len returns the number of records in the batch.
func (b *Batch) Len() int { return len(b.Addr) }

// truncate sets the batch length to n without touching capacity.
func (b *Batch) truncate(n int) {
	b.PC = b.PC[:n]
	b.Addr = b.Addr[:n]
	b.Op = b.Op[:n]
	b.Dest = b.Dest[:n]
	b.Src1 = b.Src1[:n]
	b.Src2 = b.Src2[:n]
	b.Taken = b.Taken[:n]
}

// grow extends the batch to length n, reallocating only when n exceeds the
// current capacity. Contents beyond the previous length are stale and must
// be overwritten by the caller.
func (b *Batch) grow(n int) {
	if n <= cap(b.Addr) {
		b.truncate(n)
		return
	}
	b.PC = make([]mem.Addr, n)
	b.Addr = make([]mem.Addr, n)
	b.Op = make([]OpClass, n)
	b.Dest = make([]uint8, n)
	b.Src1 = make([]uint8, n)
	b.Src2 = make([]uint8, n)
	b.Taken = make([]bool, n)
}

// Append adds one instruction to the batch.
func (b *Batch) Append(in Instr) {
	b.PC = append(b.PC, in.PC)
	b.Addr = append(b.Addr, in.Addr)
	b.Op = append(b.Op, in.Op)
	b.Dest = append(b.Dest, in.Dest)
	b.Src1 = append(b.Src1, in.Src1)
	b.Src2 = append(b.Src2, in.Src2)
	b.Taken = append(b.Taken, in.Taken)
}

// At reassembles record i as an Instr.
func (b *Batch) At(i int) Instr {
	return Instr{
		PC:   b.PC[i],
		Addr: b.Addr[i],
		Op:   b.Op[i],
		Dest: b.Dest[i], Src1: b.Src1[i], Src2: b.Src2[i],
		Taken: b.Taken[i],
	}
}

// decodeInto decodes one wire record (either version: the leading 21 bytes
// are layout-identical) into batch slot i. raw must hold at least
// recordSizeV1 bytes.
func (b *Batch) decodeInto(i int, raw []byte) {
	b.PC[i] = mem.Addr(binary.LittleEndian.Uint64(raw[0:]))
	b.Addr[i] = mem.Addr(binary.LittleEndian.Uint64(raw[8:]))
	b.Op[i] = OpClass(raw[16])
	b.Dest[i] = raw[17]
	b.Src1[i] = raw[18]
	b.Src2[i] = raw[19]
	b.Taken[i] = raw[20]&1 != 0
}

// BatchSource produces instruction records in SoA batches. ReadBatch fills
// b with up to max records and returns how many it produced; zero means
// the source is exhausted (check Err for why). Implementations reuse b's
// backing arrays, so a steady-state consumer allocates nothing per batch.
type BatchSource interface {
	ReadBatch(b *Batch, max int) int
	// Err returns the first error encountered, if any, once ReadBatch has
	// returned zero.
	Err() error
}

// ReadBatch bulk-decodes up to max records into b, returning how many were
// produced. It enforces the same declared-count, limit, truncation, and
// cancellation rules as Next, one check per batch instead of per record,
// and reads the underlying stream in stride-sized slabs. Zero return means
// exhaustion; r.Err() distinguishes clean EOF from truncation or limits.
func (r *Reader) ReadBatch(b *Batch, max int) int {
	if r.err != nil || max <= 0 {
		b.truncate(0)
		return 0
	}
	n := uint64(max)
	if r.declared != 0 {
		if left := r.declared - r.read; left < n {
			n = left
		}
		if n == 0 {
			b.truncate(0)
			return 0
		}
	}
	if cerr := r.ctx.Err(); cerr != nil {
		r.err = fmt.Errorf("trace: cancelled at record %d: %w", r.read, cerr)
		b.truncate(0)
		return 0
	}
	// Count-unknown traces are bounded by the stream: clamp the batch to
	// the limits, and once a limit is reached refuse to decode further if
	// more bytes are pending — mirroring Next's at-limit semantics.
	if r.lim.MaxRecords != 0 {
		if left := r.lim.MaxRecords - r.read; left < n {
			n = left
		}
	}
	if r.lim.MaxBytes != 0 {
		used := uint64(headerSize) + r.read*r.stride
		var left uint64
		if r.lim.MaxBytes > used {
			left = (r.lim.MaxBytes - used) / r.stride
		}
		if left < n {
			n = left
		}
	}
	if n == 0 {
		if _, err := r.r.Peek(1); err == nil {
			r.err = fmt.Errorf("trace: stream continues past configured limit: %w", ErrTraceTooLarge)
		}
		b.truncate(0)
		return 0
	}
	want := int(n * r.stride)
	if cap(r.raw) < want {
		r.raw = make([]byte, want)
	}
	got, err := io.ReadFull(r.r, r.raw[:want])
	complete := got / int(r.stride)
	b.grow(complete)
	for i := 0; i < complete; i++ {
		b.decodeInto(i, r.raw[i*int(r.stride):])
	}
	r.read += uint64(complete)
	// A short read that ends exactly on a record boundary is just the
	// stream ending mid-batch — only a partial trailing record, a non-EOF
	// failure, or a broken count promise is an error.
	eof := errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)
	switch {
	case err == nil:
	case !eof:
		r.err = fmt.Errorf("trace: reading record %d: %w", r.read, err)
	case got%int(r.stride) != 0:
		r.err = fmt.Errorf("trace: reading record %d: %w", r.read, io.ErrUnexpectedEOF)
	case r.declared != 0 && r.read < r.declared:
		r.err = fmt.Errorf("trace: truncated: header declared %d records, got %d", r.declared, r.read)
	}
	return complete
}

// WriteBatch appends every record in b, encoding in one pass over the
// batch's arrays.
func (w *Writer) WriteBatch(b *Batch) error {
	var rec [recordSizeV2]byte
	for i, n := 0, b.Len(); i < n; i++ {
		binary.LittleEndian.PutUint64(rec[0:], uint64(b.PC[i]))
		binary.LittleEndian.PutUint64(rec[8:], uint64(b.Addr[i]))
		rec[16] = byte(b.Op[i])
		rec[17] = b.Dest[i]
		rec[18] = b.Src1[i]
		rec[19] = b.Src2[i]
		if b.Taken[i] {
			rec[20] = 1
		} else {
			rec[20] = 0
		}
		if _, err := w.w.Write(rec[:w.stride]); err != nil {
			return fmt.Errorf("trace: writing record %d: %w", w.count, err)
		}
		w.count++
	}
	return nil
}

// StreamBatcher adapts any Stream to a BatchSource, letting batch
// consumers run directly off synthetic workload generators. The batches it
// produces go through the Instr interface once per record, so it amortizes
// nothing by itself — it exists so one kernel serves both binary traces
// and generated streams.
type StreamBatcher struct {
	s  Stream
	in Instr
}

// NewStreamBatcher wraps s.
func NewStreamBatcher(s Stream) *StreamBatcher { return &StreamBatcher{s: s} }

// ReadBatch implements BatchSource.
func (sb *StreamBatcher) ReadBatch(b *Batch, max int) int {
	if max <= 0 {
		b.truncate(0)
		return 0
	}
	b.grow(max)
	n := 0
	for n < max && sb.s.Next(&sb.in) {
		in := &sb.in
		b.PC[n] = in.PC
		b.Addr[n] = in.Addr
		b.Op[n] = in.Op
		b.Dest[n] = in.Dest
		b.Src1[n] = in.Src1
		b.Src2[n] = in.Src2
		b.Taken[n] = in.Taken
		n++
	}
	b.truncate(n)
	return n
}

// Err implements BatchSource; plain streams cannot fail.
func (sb *StreamBatcher) Err() error { return nil }

// Transcode reads a trace in any supported version from src and rewrites
// it in the fixed-stride v2 format to dst, preserving the declared count.
// It returns the number of records converted. Decode errors (truncation,
// limits, bad headers) abort with the reader's typed error after writing
// the records decoded so far.
func Transcode(dst io.Writer, src io.Reader, lim Limits) (uint64, error) {
	r, err := NewReaderContext(nil, src, lim)
	if err != nil {
		return 0, err
	}
	w, err := NewWriterV2(dst, r.Declared())
	if err != nil {
		return 0, err
	}
	b := NewBatch(DefaultBatchSize)
	for {
		n := r.ReadBatch(b, DefaultBatchSize)
		if n == 0 {
			break
		}
		if err := w.WriteBatch(b); err != nil {
			return w.Count(), err
		}
	}
	if err := r.Err(); err != nil {
		return w.Count(), err
	}
	return w.Count(), w.Flush()
}
