package trace

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/mem"
)

// validTrace encodes n synthetic instructions with the given declared
// header count, returning the raw bytes.
func validTrace(t testing.TB, declared uint64, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, declared)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		in := Instr{
			PC:   mem.Addr(0x1000 + 4*i),
			Addr: mem.Addr(0x8000 + 64*i),
			Op:   OpClass(i % 4),
			Dest: byte(i), Src1: byte(i + 1), Src2: byte(i + 2),
			Taken: i%3 == 0,
		}
		if err := w.Write(in); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadTrace hammers the binary trace decoder with arbitrary bytes:
// malformed headers must be rejected by NewReader, truncated or trailing
// partial records must surface through Err, and no input may ever panic
// or let the reader mislabel a short trace as complete. When the input is
// well-formed, the decode must agree exactly with the format spec.
func FuzzReadTrace(f *testing.F) {
	// Seed corpus: valid traces (counted and uncounted), an empty trace,
	// truncations on and off record boundaries, bad magic/version, a
	// header promising more than the body delivers, and a huge count.
	f.Add([]byte{})
	f.Add(validTrace(f, 0, 0))
	f.Add(validTrace(f, 0, 3))
	f.Add(validTrace(f, 3, 3))
	f.Add(validTrace(f, 5, 2))                       // declared > actual: truncated
	full := validTrace(f, 0, 4)
	f.Add(full[:len(full)-7])                        // partial trailing record
	f.Add(full[:headerSize+recordSize])              // exactly one record
	f.Add(full[:headerSize-2])                       // truncated header
	bad := append([]byte(nil), full...)
	copy(bad[:4], "XXXX")
	f.Add(bad)                                       // bad magic
	badv := append([]byte(nil), full...)
	badv[4] = 99
	f.Add(badv)                                      // bad version
	huge := append([]byte(nil), full...)
	binary.LittleEndian.PutUint64(huge[8:], 1<<60)
	f.Add(huge)                                      // absurd declared count

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			// Header rejected: fine, as long as it did not panic.
			return
		}
		body := len(data) - headerSize
		wantFull := body / recordSize // records actually present
		declared := r.Declared()

		var in Instr
		got := 0
		for r.Next(&in) {
			got++
			if got > wantFull {
				t.Fatalf("decoded %d records from a body holding %d", got, wantFull)
			}
		}
		if r.Next(&in) {
			t.Fatal("Next must keep returning false after exhaustion")
		}

		switch {
		case declared == 0:
			if got != wantFull {
				t.Fatalf("uncounted trace: decoded %d of %d records", got, wantFull)
			}
			if body%recordSize != 0 && r.Err() == nil {
				t.Fatal("partial trailing record must surface through Err")
			}
			if body%recordSize == 0 && r.Err() != nil {
				t.Fatalf("clean uncounted trace errored: %v", r.Err())
			}
		case uint64(wantFull) >= declared:
			// Body holds at least the promised records: exactly declared
			// decode, cleanly.
			if uint64(got) != declared {
				t.Fatalf("counted trace: decoded %d, declared %d", got, declared)
			}
			if r.Err() != nil {
				t.Fatalf("complete counted trace errored: %v", r.Err())
			}
		default:
			// Truncated below the declared count: never silent.
			if r.Err() == nil {
				t.Fatalf("truncated counted trace (%d of %d) must error", got, declared)
			}
		}
	})
}

// FuzzRoundTrip encodes fuzz-chosen instruction fields and requires the
// decode to reproduce them bit-for-bit — the write side and read side of
// binio.go must agree on the record layout forever.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint64(0x1000), uint64(0x8000), byte(1), byte(2), byte(3), byte(4), true, uint8(5))
	f.Add(^uint64(0), ^uint64(0), byte(255), byte(0), byte(7), byte(9), false, uint8(1))
	f.Fuzz(func(t *testing.T, pc, addr uint64, op, dest, src1, src2 byte, taken bool, reps uint8) {
		n := int(reps%8) + 1
		want := make([]Instr, n)
		for i := range want {
			want[i] = Instr{
				PC:   mem.Addr(pc + uint64(i)),
				Addr: mem.Addr(addr ^ uint64(i)<<6),
				Op:   OpClass(op),
				Dest: dest, Src1: src1, Src2: src2,
				Taken: taken != (i%2 == 1),
			}
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, uint64(n))
		if err != nil {
			t.Fatal(err)
		}
		for _, in := range want {
			if err := w.Write(in); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		var in Instr
		for i := range want {
			if !r.Next(&in) {
				t.Fatalf("record %d missing: %v", i, r.Err())
			}
			if in != want[i] {
				t.Fatalf("record %d = %+v, want %+v", i, in, want[i])
			}
		}
		if r.Next(&in) {
			t.Fatal("extra record decoded")
		}
		if r.Err() != nil {
			t.Fatal(r.Err())
		}
	})
}
