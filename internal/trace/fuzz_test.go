package trace

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/mem"
)

// validTrace encodes n synthetic instructions with the given declared
// header count, returning the raw bytes.
func validTrace(t testing.TB, declared uint64, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, declared)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		in := Instr{
			PC:   mem.Addr(0x1000 + 4*i),
			Addr: mem.Addr(0x8000 + 64*i),
			Op:   OpClass(i % 4),
			Dest: byte(i), Src1: byte(i + 1), Src2: byte(i + 2),
			Taken: i%3 == 0,
		}
		if err := w.Write(in); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// validTraceV2 encodes n synthetic instructions in the fixed-stride v2
// format with the given declared header count, returning the raw bytes.
func validTraceV2(t testing.TB, declared uint64, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriterV2(&buf, declared)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		in := Instr{
			PC:   mem.Addr(0x1000 + 4*i),
			Addr: mem.Addr(0x8000 + 64*i),
			Op:   OpClass(i % 4),
			Dest: byte(i), Src1: byte(i + 1), Src2: byte(i + 2),
			Taken: i%3 == 0,
		}
		if err := w.Write(in); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadTrace hammers the binary trace decoder with arbitrary bytes:
// malformed headers must be rejected by NewReader, truncated or trailing
// partial records must surface through Err, and no input may ever panic
// or let the reader mislabel a short trace as complete. When the input is
// well-formed, the decode must agree exactly with the format spec.
//
// Every accepted input is additionally decoded through the batch path and
// the mapped path: ReadBatch must reproduce the scalar decode record for
// record (including whether the trace ends in an error), and an image
// OpenMapped accepts must be one the streaming reader also decoded
// cleanly, with identical records.
func FuzzReadTrace(f *testing.F) {
	// Seed corpus: valid traces of both wire versions (counted and
	// uncounted), an empty trace, truncations on and off record
	// boundaries, bad magic/version/endianness/stride, a header promising
	// more than the body delivers, and a huge count.
	f.Add([]byte{})
	f.Add(validTrace(f, 0, 0))
	f.Add(validTrace(f, 0, 3))
	f.Add(validTrace(f, 3, 3))
	f.Add(validTrace(f, 5, 2))                       // declared > actual: truncated
	f.Add(validTraceV2(f, 0, 3))
	f.Add(validTraceV2(f, 3, 3))
	f.Add(validTraceV2(f, 5, 2))                     // v2 truncated below count
	full := validTrace(f, 0, 4)
	f.Add(full[:len(full)-7])                        // partial trailing record
	f.Add(full[:headerSize+recordSize])              // exactly one record
	f.Add(full[:headerSize-2])                       // truncated header
	fullV2 := validTraceV2(f, 0, 4)
	f.Add(fullV2[:len(fullV2)-5])                    // v2 partial trailing record
	f.Add(fullV2[:headerSize+recordSizeV2])          // exactly one v2 record
	bad := append([]byte(nil), full...)
	copy(bad[:4], "XXXX")
	f.Add(bad)                                       // bad magic
	badv := append([]byte(nil), full...)
	badv[4] = 99
	f.Add(badv)                                      // bad version
	bade := append([]byte(nil), fullV2...)
	bade[5] = 2
	f.Add(bade)                                      // bad endianness marker
	bads := append([]byte(nil), fullV2...)
	bads[6] = 21
	f.Add(bads)                                      // bad stride
	huge := append([]byte(nil), full...)
	binary.LittleEndian.PutUint64(huge[8:], 1<<60)
	f.Add(huge)                                      // absurd declared count
	hugeV2 := append([]byte(nil), fullV2...)
	binary.LittleEndian.PutUint64(hugeV2[8:], 1<<60)
	f.Add(hugeV2)                                    // absurd v2 declared count

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			// Header rejected: fine, as long as it did not panic. The
			// mapped opener must reject it too.
			if _, merr := OpenMapped(data, Limits{}); merr == nil {
				t.Fatal("OpenMapped accepted a header NewReader rejected")
			}
			return
		}
		stride := int(r.stride) // per-version record size the header chose
		body := len(data) - headerSize
		wantFull := body / stride // records actually present
		declared := r.Declared()

		var in Instr
		var recs []Instr
		for r.Next(&in) {
			recs = append(recs, in)
			if len(recs) > wantFull {
				t.Fatalf("decoded %d records from a body holding %d", len(recs), wantFull)
			}
		}
		if r.Next(&in) {
			t.Fatal("Next must keep returning false after exhaustion")
		}
		got := len(recs)

		switch {
		case declared == 0:
			if got != wantFull {
				t.Fatalf("uncounted trace: decoded %d of %d records", got, wantFull)
			}
			if body%stride != 0 && r.Err() == nil {
				t.Fatal("partial trailing record must surface through Err")
			}
			if body%stride == 0 && r.Err() != nil {
				t.Fatalf("clean uncounted trace errored: %v", r.Err())
			}
		case uint64(wantFull) >= declared:
			// Body holds at least the promised records: exactly declared
			// decode, cleanly.
			if uint64(got) != declared {
				t.Fatalf("counted trace: decoded %d, declared %d", got, declared)
			}
			if r.Err() != nil {
				t.Fatalf("complete counted trace errored: %v", r.Err())
			}
		default:
			// Truncated below the declared count: never silent.
			if r.Err() == nil {
				t.Fatalf("truncated counted trace (%d of %d) must error", got, declared)
			}
		}

		// Differential: the batch decoder over the same bytes must agree
		// with the scalar decode, record for record, including whether the
		// stream ended in an error. An awkward batch size exercises
		// mid-batch boundaries.
		rb, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("NewReader accepted then rejected the same header: %v", err)
		}
		b := NewBatch(7)
		bGot := 0
		for {
			n := rb.ReadBatch(b, 7)
			if n == 0 {
				break
			}
			for i := 0; i < n; i++ {
				if bGot+i >= got || b.At(i) != recs[bGot+i] {
					t.Fatalf("ReadBatch record %d diverges from Next", bGot+i)
				}
			}
			bGot += n
		}
		if bGot != got {
			t.Fatalf("ReadBatch decoded %d records, Next decoded %d", bGot, got)
		}
		if (rb.Err() == nil) != (r.Err() == nil) {
			t.Fatalf("error disagreement: Next=%v, ReadBatch=%v", r.Err(), rb.Err())
		}

		// The mapped opener validates the whole image up front; it is
		// strictly stricter than the streaming reader (e.g. it rejects
		// trailing garbage after a satisfied count), so only acceptance
		// must imply scalar agreement.
		if m, merr := OpenMapped(data, Limits{}); merr == nil {
			if r.Err() != nil || m.Len() != got {
				t.Fatalf("OpenMapped accepted %d records where streaming decoded %d (err %v)",
					m.Len(), got, r.Err())
			}
			for i := 0; i < got; i++ {
				if m.At(i) != recs[i] {
					t.Fatalf("Mapped record %d diverges from Next", i)
				}
			}
		}
	})
}

// FuzzBatchRoundTrip is the v2-format counterpart of FuzzRoundTrip: a
// batch of fuzz-chosen records written through WriteBatch must transcode
// from v1 byte-identically and decode back bit-for-bit through ReadBatch
// (at an arbitrary batch size) and through the mapped random-access path.
func FuzzBatchRoundTrip(f *testing.F) {
	f.Add(uint64(0x1000), uint64(0x8000), byte(1), byte(2), byte(3), byte(4), true, uint8(5), uint8(3))
	f.Add(^uint64(0), ^uint64(0), byte(255), byte(0), byte(7), byte(9), false, uint8(255), uint8(0))
	f.Fuzz(func(t *testing.T, pc, addr uint64, op, dest, src1, src2 byte, taken bool, reps, chunk uint8) {
		n := int(reps)*2 + 1 // up to 511: crosses the default batch size
		want := NewBatch(n)
		for i := 0; i < n; i++ {
			want.Append(Instr{
				PC:   mem.Addr(pc + uint64(i)),
				Addr: mem.Addr(addr ^ uint64(i)<<6),
				Op:   OpClass(op),
				Dest: dest, Src1: src1, Src2: src2,
				Taken: taken != (i%2 == 1),
			})
		}

		var v1, v2 bytes.Buffer
		w1, err := NewWriter(&v1, uint64(n))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if err := w1.Write(want.At(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := w1.Flush(); err != nil {
			t.Fatal(err)
		}
		w2, err := NewWriterV2(&v2, uint64(n))
		if err != nil {
			t.Fatal(err)
		}
		if err := w2.WriteBatch(want); err != nil {
			t.Fatal(err)
		}
		if err := w2.Flush(); err != nil {
			t.Fatal(err)
		}

		// The legacy converter must land on exactly the bytes the v2
		// writer produces: one canonical fixed-stride encoding.
		var conv bytes.Buffer
		if _, err := Transcode(&conv, bytes.NewReader(v1.Bytes()), Limits{}); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(conv.Bytes(), v2.Bytes()) {
			t.Fatal("transcoded v1 differs from directly written v2")
		}

		r, err := NewReader(bytes.NewReader(v2.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		size := int(chunk)%300 + 1
		b := NewBatch(size)
		got := 0
		for {
			k := r.ReadBatch(b, size)
			if k == 0 {
				break
			}
			for i := 0; i < k; i++ {
				if b.At(i) != want.At(got+i) {
					t.Fatalf("record %d = %+v, want %+v", got+i, b.At(i), want.At(got+i))
				}
			}
			got += k
		}
		if got != n || r.Err() != nil {
			t.Fatalf("decoded %d of %d records (err %v)", got, n, r.Err())
		}

		m, err := OpenMapped(v2.Bytes(), Limits{})
		if err != nil {
			t.Fatal(err)
		}
		if m.Len() != n {
			t.Fatalf("mapped image holds %d records, want %d", m.Len(), n)
		}
		for i := 0; i < n; i++ {
			if m.At(i) != want.At(i) {
				t.Fatalf("mapped record %d = %+v, want %+v", i, m.At(i), want.At(i))
			}
		}
	})
}

// FuzzRoundTrip encodes fuzz-chosen instruction fields and requires the
// decode to reproduce them bit-for-bit — the write side and read side of
// binio.go must agree on the record layout forever.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint64(0x1000), uint64(0x8000), byte(1), byte(2), byte(3), byte(4), true, uint8(5))
	f.Add(^uint64(0), ^uint64(0), byte(255), byte(0), byte(7), byte(9), false, uint8(1))
	f.Fuzz(func(t *testing.T, pc, addr uint64, op, dest, src1, src2 byte, taken bool, reps uint8) {
		n := int(reps%8) + 1
		want := make([]Instr, n)
		for i := range want {
			want[i] = Instr{
				PC:   mem.Addr(pc + uint64(i)),
				Addr: mem.Addr(addr ^ uint64(i)<<6),
				Op:   OpClass(op),
				Dest: dest, Src1: src1, Src2: src2,
				Taken: taken != (i%2 == 1),
			}
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, uint64(n))
		if err != nil {
			t.Fatal(err)
		}
		for _, in := range want {
			if err := w.Write(in); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		var in Instr
		for i := range want {
			if !r.Next(&in) {
				t.Fatalf("record %d missing: %v", i, r.Err())
			}
			if in != want[i] {
				t.Fatalf("record %d = %+v, want %+v", i, in, want[i])
			}
		}
		if r.Next(&in) {
			t.Fatal("extra record decoded")
		}
		if r.Err() != nil {
			t.Fatal(r.Err())
		}
	})
}
