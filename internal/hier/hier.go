// Package hier is the timing model of the paper's three-level memory
// hierarchy. It wraps any functional assist.System (plain cache, victim,
// prefetch, exclusion, pseudo-associative, or AMB) with the paper's Sec-4
// machine costs:
//
//   - an 8-way-banked L1 (a bank is busy one cycle per hit, two per swap);
//   - the assist buffer's two read/two write ports (a word to the CPU in
//     one extra cycle; a full line read or write holds a port two cycles;
//     a swap holds two ports for two cycles);
//   - an L1–L2 bus with configurable occupancy (the Figure-4 prefetch
//     study uses a slower bus);
//   - a 1MB 2-way L2 20 cycles from the processor and memory 100 cycles
//     from the CPU, both without contention;
//   - 16 MSHRs: misses beyond the limit stall demand accesses and discard
//     prefetches.
//
// Functional state advances immediately on access; in-flight latency is
// tracked per line, so a second access to an in-flight line completes when
// the line arrives (MSHR merging), and an in-flight prefetched line hit by
// a demand access yields the partial latency hiding of a late prefetch.
package hier

import (
	"fmt"

	"repro/internal/assist"
	"repro/internal/cache"
	"repro/internal/mem"
)

// Config sets the timing parameters. DefaultConfig reproduces Sec 4.
type Config struct {
	// L1Banks is the number of interleaved L1 banks (by set index).
	L1Banks int
	// L1HitLatency is the load-to-use latency of a primary hit.
	L1HitLatency int
	// BufferExtraLatency is the additional latency of an assist-buffer hit
	// ("can provide data with a single additional cycle").
	BufferExtraLatency int
	// SecondaryExtraLatency is the additional latency of a
	// pseudo-associative secondary-location hit.
	SecondaryExtraLatency int
	// L2Latency is cycles from processor to L2 data (no contention).
	L2Latency int
	// MemLatency is cycles from processor to memory data (no contention).
	MemLatency int
	// L1L2BusOccupancy is bus cycles consumed per line moved between L1
	// and L2 (fills and writebacks).
	L1L2BusOccupancy int
	// MemBusOccupancy is memory-bus cycles per line to/from memory.
	MemBusOccupancy int
	// MSHRs is the maximum number of in-flight line misses.
	MSHRs int
	// L2 is the second-level cache shape.
	L2 cache.Config
}

// DefaultConfig returns the paper's Section-4 machine.
func DefaultConfig() Config {
	return Config{
		L1Banks:               8,
		L1HitLatency:          1,
		BufferExtraLatency:    1,
		SecondaryExtraLatency: 2,
		L2Latency:             20,
		MemLatency:            100,
		L1L2BusOccupancy:      2,
		MemBusOccupancy:       4,
		MSHRs:                 16,
		L2:                    cache.Config{Name: "L2", Size: 1 << 20, LineSize: 64, Assoc: 2},
	}
}

// SlowBusConfig is DefaultConfig with the slower L1–L2 bus used for the
// prefetch speedup study ("the speedup results shown are for a system with
// a slower memory bus between the L1 and L2 caches").
func SlowBusConfig() Config {
	c := DefaultConfig()
	c.L1L2BusOccupancy = 8
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.L1Banks <= 0 || c.L1Banks&(c.L1Banks-1) != 0 {
		return fmt.Errorf("hier: L1Banks must be a positive power of two, got %d", c.L1Banks)
	}
	if c.MSHRs <= 0 {
		return fmt.Errorf("hier: MSHRs must be positive, got %d", c.MSHRs)
	}
	if c.L1HitLatency <= 0 || c.L2Latency <= c.L1HitLatency || c.MemLatency <= c.L2Latency {
		return fmt.Errorf("hier: latencies must increase L1 < L2 < memory")
	}
	return c.L2.Validate()
}

// Result is the timing outcome of one demand access.
type Result struct {
	// Done is the cycle the data is available to dependents.
	Done uint64
	// Stall reports that no MSHR was available: the access did not happen
	// and must be retried (functional state untouched).
	Stall bool
	// RetryAt is the earliest cycle an MSHR frees up (valid when Stall).
	RetryAt uint64
}

// Stats counts the hierarchy's timing-level events.
type Stats struct {
	Accesses           uint64
	L2Accesses         uint64
	L2Hits             uint64
	L2Misses           uint64
	Writebacks         uint64
	PrefetchesSent     uint64
	PrefetchesDropped  uint64
	MSHRStalls         uint64
	BankConflictCycles uint64
	BusWaitCycles      uint64
}

// Hierarchy couples a functional System with the timing state.
type Hierarchy struct {
	cfg  Config
	sys  assist.System
	l2   *cache.Cache
	geom mem.Geometry // line-level geometry for bank mapping

	bankBusy  []uint64
	readPort  [2]uint64
	writePort [2]uint64
	busBusy   uint64
	memBusy   uint64

	pending []pendingMiss // in-flight line fills, bounded by the MSHR count

	// Instruction side (optional; see icache.go).
	isys      assist.System
	ipending  map[mem.LineAddr]uint64
	ibankBusy uint64
	istats    IStats

	stats Stats
}

// New builds a hierarchy around a functional system.
func New(cfg Config, sys assist.System) (*Hierarchy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	l2, err := cache.New(cfg.L2)
	if err != nil {
		return nil, err
	}
	geom, err := mem.NewGeometry(cfg.L2.LineSize, cfg.L1Banks)
	if err != nil {
		return nil, err
	}
	return &Hierarchy{
		cfg:      cfg,
		sys:      sys,
		l2:       l2,
		geom:     geom,
		bankBusy: make([]uint64, cfg.L1Banks),
		pending:  make([]pendingMiss, 0, cfg.MSHRs+1),
	}, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config, sys assist.System) *Hierarchy {
	h, err := New(cfg, sys)
	if err != nil {
		panic(err)
	}
	return h
}

// System returns the wrapped functional system.
func (h *Hierarchy) System() assist.System { return h.sys }

// L2 returns the second-level cache.
func (h *Hierarchy) L2() *cache.Cache { return h.l2 }

// Stats returns a snapshot of the timing counters.
func (h *Hierarchy) Stats() Stats { return h.stats }

// pendingMiss is one in-flight line fill: the line and the cycle its data
// is ready. The set never outgrows the MSHR count by more than the
// completed-but-unpurged entries, so a flat slice with linear lookups
// beats the map it replaced: no hashing on the per-access membership
// probe, no iterator machinery in inflight's purge. Both counting and the
// earliest-completion minimum are order-independent, so the change cannot
// perturb timing.
type pendingMiss struct {
	line  mem.LineAddr
	ready uint64
}

// pendingReady returns the completion cycle of an in-flight line, if any.
func (h *Hierarchy) pendingReady(line mem.LineAddr) (uint64, bool) {
	for i := range h.pending {
		if h.pending[i].line == line {
			return h.pending[i].ready, true
		}
	}
	return 0, false
}

// setPending records (or refreshes) a line's completion cycle.
func (h *Hierarchy) setPending(line mem.LineAddr, ready uint64) {
	for i := range h.pending {
		if h.pending[i].line == line {
			h.pending[i].ready = ready
			return
		}
	}
	h.pending = append(h.pending, pendingMiss{line: line, ready: ready})
}

// inflight returns how many misses are outstanding at cycle now, purging
// completed entries as a side effect, and the earliest completion time.
func (h *Hierarchy) inflight(now uint64) (int, uint64) {
	earliest := ^uint64(0)
	for i := 0; i < len(h.pending); {
		ready := h.pending[i].ready
		if ready <= now {
			last := len(h.pending) - 1
			h.pending[i] = h.pending[last]
			h.pending = h.pending[:last]
			continue
		}
		if ready < earliest {
			earliest = ready
		}
		i++
	}
	return len(h.pending), earliest
}

// bank returns the L1 bank serving addr (interleaved by line).
func (h *Hierarchy) bank(addr mem.Addr) int {
	return int(h.geom.Set(addr)) // geometry with L1Banks "sets" = line % banks
}

// acquirePort reserves the earliest-free port from a two-port pool
// starting no earlier than at, for dur cycles, and returns the start time.
func acquirePort(ports *[2]uint64, at, dur uint64) uint64 {
	i := 0
	if ports[1] < ports[0] {
		i = 1
	}
	start := at
	if ports[i] > start {
		start = ports[i]
	}
	ports[i] = start + dur
	return start
}

// Access runs one demand access at cycle now and returns when its data is
// ready. The CPU must not reorder calls for the same cycle in a way that
// depends on Result; the hierarchy is deterministic given the call order.
func (h *Hierarchy) Access(now uint64, acc mem.Access) Result {
	inL1, inBuf := h.sys.Contains(acc.Addr)
	line := mem.LineAddr(uint64(acc.Addr) >> 6)
	if !inL1 && !inBuf {
		if _, already := h.pendingReady(line); !already {
			if n, earliest := h.inflight(now); n >= h.cfg.MSHRs {
				h.stats.MSHRStalls++
				return Result{Stall: true, RetryAt: earliest}
			}
		}
	}

	h.stats.Accesses++
	out := h.sys.Access(acc)

	// Bank access for anything touching the L1 arrays.
	b := h.bank(acc.Addr)
	start := now
	if h.bankBusy[b] > start {
		h.stats.BankConflictCycles += h.bankBusy[b] - start
		start = h.bankBusy[b]
	}

	var done uint64
	switch {
	case out.L1Hit:
		done = start + uint64(h.cfg.L1HitLatency)
		h.bankBusy[b] = start + 1

	case out.SecondaryHit:
		done = start + uint64(h.cfg.L1HitLatency+h.cfg.SecondaryExtraLatency)
		h.bankBusy[b] = start + 2 // probe + swap occupy the arrays

	case out.BufferHit:
		// Probe happens after the L1 miss; a word is returned in one extra
		// cycle through a read port.
		pstart := acquirePort(&h.readPort, start+uint64(h.cfg.L1HitLatency), 1)
		done = pstart + uint64(h.cfg.BufferExtraLatency)
		h.bankBusy[b] = start + 1
		if out.Swap {
			// A line swap occupies a read and a write port and the bank
			// for two cycles each.
			acquirePort(&h.readPort, done, 2)
			acquirePort(&h.writePort, done, 2)
			h.bankBusy[b] = done + 2
		}

	default: // L2-bound miss
		done = h.missPath(start, acc, out)
		h.setPending(line, done)
		h.bankBusy[b] = start + 1
		if out.BufferFill {
			// Stashing the displaced line (victim fill or bypass) reads
			// the victim's data out of the bank before the new line can
			// land: one extra array cycle on the contended bank.
			h.bankBusy[b] = start + 2
		}
	}

	// A line still in flight bounds completion from below (merged miss or
	// in-flight prefetch).
	if ready, ok := h.pendingReady(line); ok && ready > done {
		done = ready
	}

	// Buffer fills (victim stash, bypass) consume a write port; they do
	// not delay the demand access itself.
	if out.BufferFill {
		acquirePort(&h.writePort, done, 2)
	}
	// Dirty evictions travel over the L1-L2 bus. The victim's data is
	// available at eviction time (a write buffer holds it), so the
	// transfer queues behind current bus traffic rather than waiting for
	// the incoming line.
	if out.Writeback {
		h.stats.Writebacks++
		h.busBusy = maxU64(h.busBusy, now) + uint64(h.cfg.L1L2BusOccupancy)
	}

	// Issue requested prefetches while MSHRs remain; drop the rest.
	for _, pf := range out.Prefetches {
		h.issuePrefetch(now, pf)
	}
	return Result{Done: done}
}

// missPath prices an L2/memory round trip beginning after the L1+buffer
// probes and returns the data-ready cycle, updating bus state and the L2's
// functional contents.
func (h *Hierarchy) missPath(start uint64, acc mem.Access, out assist.Outcome) uint64 {
	req := start + uint64(h.cfg.L1HitLatency+h.cfg.BufferExtraLatency)
	busFree := maxU64(req, h.busBusy)
	if busFree > req {
		h.stats.BusWaitCycles += busFree - req
	}
	h.busBusy = busFree + uint64(h.cfg.L1L2BusOccupancy)

	h.stats.L2Accesses++
	if h.l2.Access(acc.Addr, acc.Type) {
		h.stats.L2Hits++
		return busFree + uint64(h.cfg.L2Latency)
	}
	h.stats.L2Misses++
	h.l2.Fill(acc.Addr, acc.Type == mem.Store, false)
	memStart := maxU64(busFree+uint64(h.cfg.L2Latency), h.memBusy)
	h.memBusy = memStart + uint64(h.cfg.MemBusOccupancy)
	return memStart + uint64(h.cfg.MemLatency-h.cfg.L2Latency)
}

// issuePrefetch sends a prefetch down the miss path if an MSHR is free;
// otherwise it is discarded (paper Sec 4: "prefetches are discarded").
func (h *Hierarchy) issuePrefetch(now uint64, line mem.LineAddr) {
	if _, already := h.pendingReady(line); already {
		return
	}
	if n, _ := h.inflight(now); n >= h.cfg.MSHRs {
		h.stats.PrefetchesDropped++
		return
	}
	addr := mem.Addr(uint64(line) << 6)
	ready := h.missPath(now, mem.Access{Addr: addr, Type: mem.PrefetchRead}, assist.Outcome{})
	h.setPending(line, ready)
	h.stats.PrefetchesSent++
	h.sys.PrefetchArrived(line)
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
