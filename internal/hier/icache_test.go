package hier

import (
	"testing"

	"repro/internal/assist"
	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/victim"
)

func iConfig() cache.Config {
	return cache.Config{Name: "L1I", Size: 8 * 1024, LineSize: 64, Assoc: 1}
}

func TestIFetchPerfectWithoutAttachment(t *testing.T) {
	h := newBase(t, DefaultConfig())
	r := h.IFetch(100, 0x400000)
	if r.Stall || r.Done != 101 {
		t.Errorf("unattached IFetch = %+v; want 1-cycle hit", r)
	}
	if h.IFetchStats().Fetches != 0 {
		t.Error("perfect I-cache should not count fetches")
	}
}

func TestIFetchMissAndHit(t *testing.T) {
	h := newBase(t, DefaultConfig())
	h.AttachI(assist.MustNewBaseline(iConfig(), 0))
	r := h.IFetch(100, 0x400000)
	if r.Stall {
		t.Fatal("unexpected stall")
	}
	if r.Done-100 < 100 {
		t.Errorf("cold I-miss latency = %d; should reach memory", r.Done-100)
	}
	r = h.IFetch(1000, 0x400000)
	if r.Done != 1001 {
		t.Errorf("warm I-fetch latency = %d, want 1", r.Done-1000)
	}
	st := h.IFetchStats()
	if st.Fetches != 2 || st.Misses != 1 {
		t.Errorf("I stats = %+v", st)
	}
}

func TestIFetchSharesL2(t *testing.T) {
	h := newBase(t, DefaultConfig())
	h.AttachI(assist.MustNewBaseline(iConfig(), 0))
	h.IFetch(10, 0x400000)
	if !h.L2().Contains(0x400000) {
		t.Error("instruction miss should fill the unified L2")
	}
	// A line brought in by the data side is an L2 hit for the I side
	// after L1I eviction pressure — here just verify the L2 timing tier.
	r := h.IFetch(5000, 0x400000+0x2000) // same L1I set (8KB period), new tag
	done1 := r.Done - 5000
	r = h.IFetch(10000, 0x400000) // evicted from L1I, resident in L2
	if got := r.Done - 10000; got >= done1 {
		t.Errorf("L2-resident I-line (%d cycles) should be faster than memory (%d)", got, done1)
	}
}

func TestIFetchMSHRLimit(t *testing.T) {
	h := newBase(t, DefaultConfig())
	h.AttachI(assist.MustNewBaseline(iConfig(), 0))
	stall := false
	for i := 0; i < iMSHRs+2; i++ {
		r := h.IFetch(10, mem.Addr(0x400000+i*0x10000))
		stall = stall || r.Stall
	}
	if !stall {
		t.Error("instruction MSHRs should exhaust")
	}
	if h.IFetchStats().MSHRStalls == 0 {
		t.Error("stall not counted")
	}
}

func TestIFetchMergesInFlight(t *testing.T) {
	h := newBase(t, DefaultConfig())
	h.AttachI(assist.MustNewBaseline(iConfig(), 0))
	r1 := h.IFetch(10, 0x400000)
	r2 := h.IFetch(12, 0x400020) // same line
	if r2.Stall || r2.Done > r1.Done {
		t.Errorf("merged I-fetch should ride the in-flight line: %d vs %d", r2.Done, r1.Done)
	}
}

func TestIVictimBufferServesConflicts(t *testing.T) {
	h := newBase(t, DefaultConfig())
	h.AttachI(victim.MustNew(iConfig(), 0, 8, victim.FilterSwapsPolicy))
	a, b := mem.Addr(0x400000), mem.Addr(0x402000) // alias in 8KB DM
	h.IFetch(10, a)
	h.IFetch(1000, b) // evicts a into the I-victim buffer
	r := h.IFetch(2000, a)
	if got := r.Done - 2000; got > 5 {
		t.Errorf("I-victim hit latency = %d; should be a couple of cycles", got)
	}
}
