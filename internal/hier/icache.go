package hier

import (
	"repro/internal/assist"
	"repro/internal/mem"
)

// Instruction-fetch support. The paper simulates first-level instruction
// and data caches over a unified L2 and notes its techniques "should, in
// general, also apply to the instruction cache"; this file provides the
// I-side plumbing so any assist.System (bare cache, victim cache, AMB)
// can serve instruction fetch. The I-side has its own small MSHR pool and
// fetch port but shares the L1-L2 bus, the unified L2, and the memory bus
// with the data side, so heavy data traffic delays instruction refills
// exactly as it would in the machine.

// iMSHRs is the instruction-side outstanding-miss limit; front ends
// tolerate far fewer parallel misses than data caches.
const iMSHRs = 4

// AttachI installs an instruction-cache system. Call before simulation.
func (h *Hierarchy) AttachI(sys assist.System) {
	h.isys = sys
	if h.ipending == nil {
		h.ipending = make(map[mem.LineAddr]uint64)
	}
}

// ISystem returns the attached instruction-side system, if any.
func (h *Hierarchy) ISystem() assist.System { return h.isys }

// IStats counts instruction-side events.
type IStats struct {
	Fetches    uint64
	Misses     uint64
	MSHRStalls uint64
}

// IFetchStats returns the instruction-side counters.
func (h *Hierarchy) IFetchStats() IStats { return h.istats }

// IFetch runs one instruction-line fetch at cycle now. With no attached
// I-system it returns a single-cycle hit (the perfect-I-cache model every
// data-side experiment uses).
func (h *Hierarchy) IFetch(now uint64, pc mem.Addr) Result {
	if h.isys == nil {
		return Result{Done: now + 1}
	}
	h.istats.Fetches++
	line := mem.LineAddr(uint64(pc) >> 6)
	inL1, inBuf := h.isys.Contains(pc)
	if !inL1 && !inBuf {
		if _, already := h.ipending[line]; !already {
			if n, earliest := h.iInflight(now); n >= iMSHRs {
				h.istats.MSHRStalls++
				return Result{Stall: true, RetryAt: earliest}
			}
		}
	}

	out := h.isys.Access(mem.Access{Addr: pc, PC: pc, Type: mem.IFetch})
	start := now
	if h.ibankBusy > start {
		start = h.ibankBusy
	}
	var done uint64
	switch {
	case out.L1Hit:
		done = start + uint64(h.cfg.L1HitLatency)
		h.ibankBusy = start + 1
	case out.SecondaryHit:
		done = start + uint64(h.cfg.L1HitLatency+h.cfg.SecondaryExtraLatency)
		h.ibankBusy = start + 2
	case out.BufferHit:
		done = start + uint64(h.cfg.L1HitLatency+h.cfg.BufferExtraLatency)
		h.ibankBusy = start + 1
	default:
		h.istats.Misses++
		done = h.missPath(start, mem.Access{Addr: pc, Type: mem.IFetch}, out)
		h.ipending[line] = done
		h.ibankBusy = start + 1
	}
	if ready, ok := h.ipending[line]; ok && ready > done {
		done = ready
	}
	for _, pf := range out.Prefetches {
		h.issueIPrefetch(now, pf)
	}
	return Result{Done: done}
}

// iInflight counts outstanding instruction misses, purging completed ones.
func (h *Hierarchy) iInflight(now uint64) (int, uint64) {
	n := 0
	earliest := ^uint64(0)
	for line, ready := range h.ipending {
		if ready <= now {
			delete(h.ipending, line)
			continue
		}
		n++
		if ready < earliest {
			earliest = ready
		}
	}
	return n, earliest
}

// issueIPrefetch sends an instruction-side prefetch down the shared miss
// path if an I-MSHR is free.
func (h *Hierarchy) issueIPrefetch(now uint64, line mem.LineAddr) {
	if _, already := h.ipending[line]; already {
		return
	}
	if n, _ := h.iInflight(now); n >= iMSHRs {
		h.stats.PrefetchesDropped++
		return
	}
	addr := mem.Addr(uint64(line) << 6)
	ready := h.missPath(now, mem.Access{Addr: addr, Type: mem.PrefetchRead}, assist.Outcome{})
	h.ipending[line] = ready
	h.stats.PrefetchesSent++
	h.isys.PrefetchArrived(line)
}
