package hier

import (
	"testing"

	"repro/internal/assist"
	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/prefetch"
)

func dmConfig() cache.Config {
	return cache.Config{Name: "t", Size: 16 * 1024, LineSize: 64, Assoc: 1}
}

func newBase(t *testing.T, cfg Config) *Hierarchy {
	t.Helper()
	return MustNew(cfg, assist.MustNewBaseline(dmConfig(), 0))
}

func load(a mem.Addr) mem.Access  { return mem.Access{Addr: a, Type: mem.Load} }
func store(a mem.Addr) mem.Access { return mem.Access{Addr: a, Type: mem.Store} }

func TestConfigValidation(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.L1Banks = 3 },
		func(c *Config) { c.L1Banks = 0 },
		func(c *Config) { c.MSHRs = 0 },
		func(c *Config) { c.L2Latency = 0 },
		func(c *Config) { c.MemLatency = 5 },
		func(c *Config) { c.L2.Size = 7 },
	}
	for i, mutate := range bad {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestSlowBusConfig(t *testing.T) {
	if SlowBusConfig().L1L2BusOccupancy <= DefaultConfig().L1L2BusOccupancy {
		t.Error("slow bus should have higher occupancy")
	}
}

func TestLatencyTiers(t *testing.T) {
	h := newBase(t, DefaultConfig())
	// Cold miss that also misses the cold L2: memory latency.
	r := h.Access(100, load(0x1000))
	if r.Stall {
		t.Fatal("unexpected stall")
	}
	memDone := r.Done - 100
	if memDone < 100 || memDone > 130 {
		t.Errorf("memory miss latency = %d, want ~100-130", memDone)
	}
	// Warm hit: one cycle.
	r = h.Access(1000, load(0x1000))
	if r.Done-1000 != 1 {
		t.Errorf("hit latency = %d, want 1", r.Done-1000)
	}
	// Line evicted from L1 but present in L2: L2 latency.
	h.Access(2000, load(0x5000)) // 0x5000 aliases 0x1000's set (0x4000 apart)
	r = h.Access(4000, load(0x1000))
	l2Done := r.Done - 4000
	if l2Done < 20 || l2Done > 40 {
		t.Errorf("L2 hit latency = %d, want ~20-40", l2Done)
	}
	st := h.Stats()
	if st.L2Accesses == 0 || st.L2Hits == 0 || st.L2Misses == 0 {
		t.Errorf("L2 stats = %+v", st)
	}
}

func TestMSHRMergingBoundsLatency(t *testing.T) {
	h := newBase(t, DefaultConfig())
	r1 := h.Access(10, load(0x2000))
	// A second access to the same line while in flight completes when the
	// line arrives, not after a fresh round trip.
	r2 := h.Access(12, load(0x2010))
	if r2.Done > r1.Done {
		t.Errorf("merged access done at %d, first at %d", r2.Done, r1.Done)
	}
	if r2.Done < 13 {
		t.Error("merged access cannot complete before issue")
	}
}

func TestMSHRExhaustionStallsDemand(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MSHRs = 2
	h := newBase(t, cfg)
	h.Access(10, load(0x10000))
	h.Access(10, load(0x20000))
	r := h.Access(10, load(0x30000))
	if !r.Stall {
		t.Fatal("third concurrent miss should stall with 2 MSHRs")
	}
	if r.RetryAt <= 10 {
		t.Errorf("RetryAt = %d", r.RetryAt)
	}
	if h.Stats().MSHRStalls != 1 {
		t.Errorf("stall count = %d", h.Stats().MSHRStalls)
	}
	// After the lines return, misses proceed again.
	r = h.Access(r.RetryAt+1, load(0x30000))
	if r.Stall {
		t.Error("retry after drain should succeed")
	}
}

func TestPrefetchDiscardOnMSHRFull(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MSHRs = 1
	sys := prefetch.MustNew(dmConfig(), 0, 8, prefetch.Policy{})
	h := MustNew(cfg, sys)
	// The demand miss takes the only MSHR; its next-line prefetch must be
	// discarded, not stalled.
	r := h.Access(10, load(0x40000))
	if r.Stall {
		t.Fatal("demand miss should proceed")
	}
	st := h.Stats()
	if st.PrefetchesDropped != 1 || st.PrefetchesSent != 0 {
		t.Errorf("prefetch drop accounting: %+v", st)
	}
}

func TestPrefetchTimelinessPartialHiding(t *testing.T) {
	sys := prefetch.MustNew(dmConfig(), 0, 8, prefetch.Policy{})
	h := MustNew(DefaultConfig(), sys)
	r1 := h.Access(10, load(0x50000)) // miss; prefetch 0x50040 issued at 10
	// Touch the prefetched line immediately: it is in flight, so the
	// demand access completes when the prefetch lands — later than a hit,
	// earlier than a fresh miss.
	r2 := h.Access(12, load(0x50040))
	if r2.Stall {
		t.Fatal("unexpected stall")
	}
	if r2.Done <= 13 {
		t.Error("in-flight prefetch cannot supply data instantly")
	}
	if r2.Done > r1.Done+40 {
		t.Errorf("prefetched line arrived at %d vs demand %d; no hiding", r2.Done, r1.Done)
	}
	// Much later, the prefetched line is simply a buffer hit (cheap).
	r3 := h.Access(5000, load(0x50080))
	_ = r3
}

func TestBankConflictSerializes(t *testing.T) {
	h := newBase(t, DefaultConfig())
	// Warm two lines in the same bank (same set).
	h.Access(10, load(0x1000))
	h.Access(500, load(0x1000))
	// Two same-cycle hits to one bank: the second is delayed.
	r1 := h.Access(1000, load(0x1000))
	r2 := h.Access(1000, load(0x1000))
	if r2.Done <= r1.Done {
		t.Errorf("bank conflict not serialized: %d vs %d", r2.Done, r1.Done)
	}
	if h.Stats().BankConflictCycles == 0 {
		t.Error("bank conflict cycles not counted")
	}
}

func TestBusContentionAccumulates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L1L2BusOccupancy = 8
	h := newBase(t, cfg)
	// Many misses in the same cycle contend for the bus.
	var last uint64
	for i := 0; i < 6; i++ {
		r := h.Access(10, load(mem.Addr(0x100000+i*128)))
		if r.Done < last {
			t.Error("bus should serialize miss completions in issue order")
		}
		last = r.Done
	}
	if h.Stats().BusWaitCycles == 0 {
		t.Error("bus wait cycles not counted")
	}
}

func TestWritebackConsumesBus(t *testing.T) {
	h := newBase(t, DefaultConfig())
	h.Access(10, store(0x0000))
	before := h.Stats().Writebacks
	h.Access(500, load(0x4000)) // evicts dirty line
	if h.Stats().Writebacks != before+1 {
		t.Errorf("writebacks = %d", h.Stats().Writebacks)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, Stats) {
		h := newBase(t, DefaultConfig())
		var sum uint64
		for i := 0; i < 500; i++ {
			r := h.Access(uint64(i*3), load(mem.Addr((i*977)%8192*64)))
			if !r.Stall {
				sum += r.Done
			}
		}
		return sum, h.Stats()
	}
	s1, st1 := run()
	s2, st2 := run()
	if s1 != s2 || st1 != st2 {
		t.Error("hierarchy is not deterministic")
	}
}

func TestL2FunctionalContents(t *testing.T) {
	h := newBase(t, DefaultConfig())
	h.Access(10, load(0x1000))
	if !h.L2().Contains(0x1000) {
		t.Error("miss should fill the L2")
	}
}
