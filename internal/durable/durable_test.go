package durable

import (
	"os"
	"path/filepath"
	"testing"
)

func TestParsePolicy(t *testing.T) {
	cases := map[string]Policy{
		"off": PolicyOff, "none": PolicyOff,
		"data": PolicyData, "batch": PolicyData, "": PolicyData,
		"always": PolicyAlways, "full": PolicyAlways,
	}
	for in, want := range cases {
		got, err := ParsePolicy(in)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Error("ParsePolicy should reject unknown spellings")
	}
	for _, p := range []Policy{PolicyOff, PolicyData, PolicyAlways} {
		if rt, err := ParsePolicy(p.String()); err != nil || rt != p {
			t.Errorf("round trip %v -> %q -> %v, %v", p, p.String(), rt, err)
		}
	}
}

func TestWriteFileAtomic(t *testing.T) {
	for _, p := range []Policy{PolicyOff, PolicyData, PolicyAlways} {
		t.Run(p.String(), func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "f.json")
			if err := WriteFileAtomic(path, []byte("v1"), 0o644, p); err != nil {
				t.Fatal(err)
			}
			if err := WriteFileAtomic(path, []byte("v2"), 0o644, p); err != nil {
				t.Fatal(err)
			}
			got, err := os.ReadFile(path)
			if err != nil || string(got) != "v2" {
				t.Fatalf("read back %q, %v", got, err)
			}
			// No temp-file litter.
			ents, _ := os.ReadDir(dir)
			if len(ents) != 1 {
				t.Fatalf("directory has %d entries after atomic writes, want 1", len(ents))
			}
		})
	}
}

func TestSyncFileNilAndOff(t *testing.T) {
	if err := SyncFile(nil, PolicyAlways); err != nil {
		t.Fatal(err)
	}
	f, err := os.CreateTemp(t.TempDir(), "x")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := SyncFile(f, PolicyOff); err != nil {
		t.Fatal(err)
	}
	if err := SyncFile(f, PolicyAlways); err != nil {
		t.Fatal(err)
	}
	if err := SyncDir(filepath.Dir(f.Name()), PolicyAlways); err != nil {
		t.Fatal(err)
	}
}
