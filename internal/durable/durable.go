// Package durable centralizes the fsync policy behind every
// crash-safety-critical write in the repo: the service's job journal,
// the runner's sweep checkpoints, and the memoization cache's entry
// writer. All three already used the temp-file + rename discipline,
// which protects against torn files from a crashed *process* — but not
// against power loss, where the rename can be durable while the file's
// data blocks are not (or vice versa). Closing that hole requires
// fsyncing the file before the rename and the parent directory after
// it, and that costs real latency, so it is a policy the operator
// chooses rather than a hardcoded behavior.
//
// The policies:
//
//   - PolicyOff: no fsync anywhere. Temp+rename still guarantees
//     atomicity against process crashes (SIGKILL included: the page
//     cache survives the process), but power loss may lose or tear the
//     most recent writes. This is the historical behavior and the
//     default for the CLI tools.
//   - PolicyData: fsync at batch boundaries — journal segment rotation,
//     compaction, and close — but not on every record append. Process
//     crashes lose nothing; power loss may lose the records appended
//     since the last boundary, never the file's integrity (CRC framing
//     detects the torn tail). Checkpoint and cache writes sync fully
//     under this policy (they are rare, whole-file writes where the
//     boundary IS the write). The mctd default.
//   - PolicyAlways: fsync file and directory on every durable write,
//     including each journal append. Survives power loss at the cost of
//     one fsync (or two) per record.
package durable

import (
	"fmt"
	"os"
	"path/filepath"
)

// Policy selects how aggressively durable writers fsync.
type Policy int

const (
	// PolicyOff never fsyncs: atomic against process crashes only.
	PolicyOff Policy = iota
	// PolicyData fsyncs at batch boundaries (rotation, compaction,
	// close; whole-file writers sync every write).
	PolicyData
	// PolicyAlways fsyncs file and parent directory on every write.
	PolicyAlways
)

// String returns the flag spelling of the policy.
func (p Policy) String() string {
	switch p {
	case PolicyOff:
		return "off"
	case PolicyData:
		return "data"
	case PolicyAlways:
		return "always"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy parses the -fsync flag spelling.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "off", "none", "no":
		return PolicyOff, nil
	case "data", "batch", "":
		return PolicyData, nil
	case "always", "full", "yes":
		return PolicyAlways, nil
	default:
		return PolicyOff, fmt.Errorf("durable: unknown fsync policy %q (want off, data, or always)", s)
	}
}

// SyncFile fsyncs an open file. A no-op error-free call under PolicyOff.
func SyncFile(f *os.File, p Policy) error {
	if p == PolicyOff || f == nil {
		return nil
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("durable: fsync %s: %w", f.Name(), err)
	}
	return nil
}

// SyncDir fsyncs a directory, making renames and creates inside it
// durable. Required after the rename half of temp+rename: without it a
// power loss can forget the rename even though the data blocks made it.
// A no-op under PolicyOff. Best effort on filesystems that reject
// directory fsync (the error is returned for callers that care).
func SyncDir(dir string, p Policy) error {
	if p == PolicyOff {
		return nil
	}
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("durable: open dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("durable: fsync dir %s: %w", dir, err)
	}
	return nil
}

// WriteFileAtomic writes data to path via temp-file + rename, fsyncing
// per policy (file before rename, directory after). The temp file is
// created in path's directory so the rename never crosses filesystems.
func WriteFileAtomic(path string, data []byte, perm os.FileMode, p Policy) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("durable: temp file for %s: %w", path, err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("durable: writing %s: %w", path, err)
	}
	if err := SyncFile(tmp, p); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("durable: closing %s: %w", path, err)
	}
	if err := os.Chmod(tmp.Name(), perm); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("durable: chmod %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("durable: committing %s: %w", path, err)
	}
	return SyncDir(dir, p)
}
