// Package amb implements the Adaptive Miss Buffer of Section 5.5: one
// small fully-associative buffer that serves simultaneously as victim
// cache, prefetch buffer, and bypass buffer, dispatching each miss to the
// optimization its classification suggests.
//
// The combination rules follow the paper: conflict misses are
// victim-cached (without swapping, the best variant from Sec 5.1);
// capacity misses are next-line prefetched and/or excluded into the
// buffer; entries carry their origin so a buffer hit is handled according
// to how the line arrived, and a prefetched line hit under an exclusion
// policy transitions to an exclusion entry rather than moving to the
// cache. All multi-policy configurations use the out-conflict filter.
package amb

import (
	"fmt"
	"strings"

	"repro/internal/assist"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/mem"
)

// Combo selects which optimizations the buffer applies.
type Combo struct {
	// Victim stashes conflict-miss evictions and serves conflict re-misses
	// from the buffer.
	Victim bool
	// Prefetch issues next-line prefetches on capacity misses.
	Prefetch bool
	// Exclude bypasses capacity misses into the buffer instead of the L1.
	Exclude bool
}

// The paper's Figure-6 configurations.
var (
	Vict      = Combo{Victim: true}
	Pref      = Combo{Prefetch: true}
	Excl      = Combo{Exclude: true}
	VictPref  = Combo{Victim: true, Prefetch: true}
	PrefExcl  = Combo{Prefetch: true, Exclude: true}
	VictExcl  = Combo{Victim: true, Exclude: true}
	VicPreExc = Combo{Victim: true, Prefetch: true, Exclude: true}
)

// Combos lists Figure 6's bars in presentation order.
var Combos = []Combo{Vict, Pref, Excl, VictPref, PrefExcl, VictExcl, VicPreExc}

// Name returns the paper's label for the combination.
func (c Combo) Name() string {
	var parts []string
	if c.Victim {
		parts = append(parts, "Vict")
	}
	if c.Prefetch {
		parts = append(parts, "Pref")
	}
	if c.Exclude {
		parts = append(parts, "Excl")
	}
	switch len(parts) {
	case 0:
		return "none"
	case 3:
		return "VicPreExc"
	default:
		return strings.Join(parts, "")
	}
}

// System is the Adaptive Miss Buffer assist system.
type System struct {
	combo  Combo
	l1     *cache.Cache
	mct    *core.MCT
	buffer *assist.Buffer
	geom   mem.Geometry

	stats assist.Stats
}

// New builds an AMB with the given combination over an entries-deep buffer
// (8 in the paper's main results, 16 in the large variant).
func New(cfg cache.Config, tagBits, entries int, combo Combo) (*System, error) {
	l1, err := cache.New(cfg)
	if err != nil {
		return nil, err
	}
	mct, err := core.New(core.Config{Sets: cfg.Sets(), TagBits: tagBits})
	if err != nil {
		return nil, err
	}
	if entries <= 0 {
		return nil, fmt.Errorf("amb: buffer needs positive entries, got %d", entries)
	}
	return &System{
		combo:  combo,
		l1:     l1,
		mct:    mct,
		buffer: assist.NewBuffer(entries),
		geom:   l1.Geometry(),
	}, nil
}

// MustNew is New that panics on error.
func MustNew(cfg cache.Config, tagBits, entries int, combo Combo) *System {
	s, err := New(cfg, tagBits, entries, combo)
	if err != nil {
		panic(err)
	}
	return s
}

// Name implements assist.System.
func (s *System) Name() string { return "amb-" + s.combo.Name() }

// Combo returns the active combination.
func (s *System) Combo() Combo { return s.combo }

// Buffer exposes the shared buffer.
func (s *System) Buffer() *assist.Buffer { return s.buffer }

// L1 exposes the underlying cache.
func (s *System) L1() *cache.Cache { return s.l1 }

// Access implements assist.System.
func (s *System) Access(acc mem.Access) assist.Outcome {
	isStore := acc.Type == mem.Store
	s.stats.Accesses++
	if s.l1.Access(acc.Addr, acc.Type) {
		s.stats.L1Hits++
		return assist.Outcome{L1Hit: true}
	}

	set := s.geom.Set(acc.Addr)
	tag := s.geom.Tag(acc.Addr)
	class := s.mct.ClassifyMiss(set, tag)
	line := s.geom.Line(acc.Addr)

	if entry, ok := s.buffer.Hit(line, isStore); ok {
		s.stats.BufferHits++
		s.stats.BufferHitsByOrigin[entry.Origin]++
		return s.onBufferHit(acc, class, line, entry, isStore)
	}

	s.stats.Misses++
	if class == core.Conflict {
		s.stats.ConflictMisses++
	} else {
		s.stats.CapacityMisses++
	}
	return s.onBufferMiss(acc, class, line, set, tag, isStore)
}

// onBufferHit dispatches on the entry's origin.
func (s *System) onBufferHit(acc mem.Access, class core.Class, line mem.LineAddr, entry assist.Entry, isStore bool) assist.Outcome {
	switch entry.Origin {
	case assist.OriginVictim:
		// Conflict-targeted victim entries are served in place (the
		// no-swap policy that won in Sec 5.1); the line stays buffered so
		// the contended set doesn't ping-pong.
		return assist.Outcome{Class: class, BufferHit: true}

	case assist.OriginPrefetch:
		if s.combo.Exclude {
			// PrefExcl/VicPreExc transition: the prefetched line stays in
			// the buffer as an exclusion line (paper Sec 5.5).
			s.buffer.Insert(line, assist.Entry{
				Origin:   assist.OriginBypass,
				Dirty:    entry.Dirty || isStore,
				Conflict: entry.Conflict,
				Used:     true,
			})
			return assist.Outcome{Class: class, BufferHit: true}
		}
		// Stream-buffer semantics: consume into the cache, keep streaming.
		s.buffer.Remove(line)
		ev := assist.FillWithMCT(s.l1, s.mct, acc.Addr, isStore || entry.Dirty, class)
		wb := ev.Occurred && ev.Dirty
		var pfs []mem.LineAddr
		if s.combo.Prefetch {
			pfs = s.maybePrefetch(acc.Addr)
		}
		return assist.Outcome{Class: class, BufferHit: true, CacheFill: true, Writeback: wb, Prefetches: pfs}

	default: // OriginBypass
		// Excluded lines remain until bumped.
		return assist.Outcome{Class: class, BufferHit: true}
	}
}

// onBufferMiss routes the miss to the most appropriate optimization.
func (s *System) onBufferMiss(acc mem.Access, class core.Class, line mem.LineAddr, set, tag uint64, isStore bool) assist.Outcome {
	conflict := class == core.Conflict

	if conflict && s.combo.Victim {
		// Conflict miss: fill the cache and victim-stash the displaced
		// line — it is the likely next conflict victim in this set.
		ev := assist.FillWithMCT(s.l1, s.mct, acc.Addr, isStore, class)
		wb := false
		filled := false
		if ev.Occurred {
			s.stats.BufferFills++
			dropped, wasFull := s.buffer.Insert(ev.Line, assist.Entry{
				Origin:   assist.OriginVictim,
				Dirty:    ev.Dirty,
				Conflict: ev.Conflict,
			})
			wb = wasFull && dropped.Entry.Dirty
			filled = true
		}
		return assist.Outcome{Class: class, CacheFill: true, BufferFill: filled, Writeback: wb}
	}

	if !conflict && s.combo.Exclude {
		// Capacity miss under exclusion: bypass into the buffer, seed the
		// MCT so the line can later classify as conflict, and optionally
		// keep the stream going with a prefetch.
		s.stats.Bypasses++
		s.stats.BufferFills++
		s.mct.Seed(set, tag)
		dropped, wasFull := s.buffer.Insert(line, assist.Entry{
			Origin: assist.OriginBypass,
			Dirty:  isStore,
		})
		var pfs []mem.LineAddr
		if s.combo.Prefetch {
			pfs = s.maybePrefetch(acc.Addr)
		}
		return assist.Outcome{
			Class:      class,
			BufferFill: true,
			Writeback:  wasFull && dropped.Entry.Dirty,
			Prefetches: pfs,
		}
	}

	// Normal fill path; capacity misses may still trigger a prefetch.
	ev := assist.FillWithMCT(s.l1, s.mct, acc.Addr, isStore, class)
	wb := ev.Occurred && ev.Dirty
	var pfs []mem.LineAddr
	if !conflict && s.combo.Prefetch {
		pfs = s.maybePrefetch(acc.Addr)
	}
	return assist.Outcome{Class: class, CacheFill: true, Writeback: wb, Prefetches: pfs}
}

// maybePrefetch requests the next line unless it is already present.
func (s *System) maybePrefetch(addr mem.Addr) []mem.LineAddr {
	next := s.geom.NextLine(addr)
	nline := s.geom.Line(next)
	if s.l1.Contains(next) || s.buffer.Contains(nline) {
		return nil
	}
	s.stats.PrefetchesIssued++
	return []mem.LineAddr{nline}
}

// Contains implements assist.System.
func (s *System) Contains(addr mem.Addr) (inL1, inBuffer bool) {
	return s.l1.Contains(addr), s.buffer.Contains(s.geom.Line(addr))
}

// PrefetchArrived implements assist.System.
func (s *System) PrefetchArrived(line mem.LineAddr) bool {
	addr := mem.Addr(uint64(line) << s.geom.LineShift())
	if s.l1.Contains(addr) || s.buffer.Contains(line) {
		return false
	}
	s.buffer.Insert(line, assist.Entry{Origin: assist.OriginPrefetch})
	return true
}

// Stats implements assist.System.
func (s *System) Stats() assist.Stats {
	out := s.stats
	bs := s.buffer.Stats()
	out.PrefetchesUseful = bs.PrefetchesUseful
	out.PrefetchesWasted = bs.PrefetchesWasted
	return out
}
