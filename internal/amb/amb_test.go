package amb

import (
	"testing"

	"repro/internal/assist"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/mem"
)

func dmConfig() cache.Config {
	return cache.Config{Name: "t", Size: 16 * 1024, LineSize: 64, Assoc: 1}
}

func load(a mem.Addr) mem.Access { return mem.Access{Addr: a, Type: mem.Load} }

// drive completes prefetches immediately.
func drive(s *System, acc mem.Access) assist.Outcome {
	out := s.Access(acc)
	for _, pf := range out.Prefetches {
		s.PrefetchArrived(pf)
	}
	return out
}

func TestComboNames(t *testing.T) {
	want := map[string]Combo{
		"Vict": Vict, "Pref": Pref, "Excl": Excl,
		"VictPref": VictPref, "PrefExcl": PrefExcl, "VictExcl": VictExcl,
		"VicPreExc": VicPreExc,
	}
	for name, c := range want {
		if c.Name() != name {
			t.Errorf("combo name = %q, want %q", c.Name(), name)
		}
	}
	if (Combo{}).Name() != "none" {
		t.Error("empty combo name wrong")
	}
	if MustNew(dmConfig(), 0, 8, Vict).Name() != "amb-Vict" {
		t.Error("system name wrong")
	}
	if len(Combos) != 7 {
		t.Errorf("Combos has %d entries", len(Combos))
	}
}

func TestVictimSideStashesConflictEvictions(t *testing.T) {
	s := MustNew(dmConfig(), 0, 8, Vict)
	a, b := mem.Addr(0x0000), mem.Addr(0x4000)
	s.Access(load(a)) // capacity: normal fill, nothing stashed
	out := s.Access(load(b))
	if out.BufferFill {
		t.Fatal("capacity miss must not stash under Vict")
	}
	out = s.Access(load(a)) // conflict: fill + stash displaced b
	if out.Class != core.Conflict || !out.BufferFill {
		t.Fatalf("conflict miss outcome = %+v", out)
	}
	if inL1, inBuf := s.Contains(b); inL1 || !inBuf {
		t.Error("displaced line should be in the buffer")
	}
	// b's re-miss hits the buffer and is served in place (no swap).
	out = s.Access(load(b))
	if !out.BufferHit || out.Swap || out.CacheFill {
		t.Fatalf("victim buffer hit = %+v, want swapless in-place service", out)
	}
	if s.Stats().BufferHitsByOrigin[assist.OriginVictim] != 1 {
		t.Error("victim-origin hit not counted")
	}
}

func TestPrefetchSideOnlyCapacityMisses(t *testing.T) {
	s := MustNew(dmConfig(), 0, 8, Pref)
	a, b := mem.Addr(0x0000), mem.Addr(0x4000)
	out := s.Access(load(a))
	if len(out.Prefetches) != 1 {
		t.Fatalf("capacity miss should prefetch: %v", out.Prefetches)
	}
	s.Access(load(b))
	out = s.Access(load(a)) // conflict: no prefetch
	if out.Class != core.Conflict || len(out.Prefetches) != 0 {
		t.Fatalf("conflict miss should not prefetch: %+v", out)
	}
}

func TestPrefetchHitMovesToCacheWithoutExclusion(t *testing.T) {
	s := MustNew(dmConfig(), 0, 8, Pref)
	drive(s, load(0x10000))
	out := s.Access(load(0x10040)) // the prefetched line
	if !out.BufferHit || !out.CacheFill {
		t.Fatalf("prefetch hit = %+v", out)
	}
	if inL1, inBuf := s.Contains(0x10040); !inL1 || inBuf {
		t.Error("prefetched line should be consumed into the cache")
	}
}

func TestPrefetchHitTransitionsToBypassUnderExclusion(t *testing.T) {
	// The paper's Sec 5.5 transition: under PrefExcl a hit on a prefetched
	// line leaves it in the buffer, re-marked as an exclusion line.
	s := MustNew(dmConfig(), 0, 8, PrefExcl)
	drive(s, load(0x10000))
	line := mem.LineAddr(0x10040 >> 6)
	if e, ok := s.Buffer().Probe(line); !ok || e.Origin != assist.OriginPrefetch {
		t.Fatalf("prefetched line missing from buffer: %+v ok=%v", e, ok)
	}
	out := s.Access(load(0x10040))
	if !out.BufferHit || out.CacheFill {
		t.Fatalf("prefetch hit under exclusion = %+v", out)
	}
	e, ok := s.Buffer().Probe(line)
	if !ok || e.Origin != assist.OriginBypass {
		t.Errorf("entry after transition: %+v ok=%v, want bypass origin", e, ok)
	}
}

func TestExclusionSideBypassesCapacityAndSeeds(t *testing.T) {
	s := MustNew(dmConfig(), 0, 1, Excl) // 1-entry buffer to force bump
	a := mem.Addr(0x0000)
	out := s.Access(load(a))
	if !out.BufferFill || out.CacheFill {
		t.Fatalf("capacity miss under Excl = %+v", out)
	}
	s.Access(load(0x20040)) // different set; bumps a out of the 1-entry buffer
	out = s.Access(load(a))
	if out.Class != core.Conflict {
		t.Errorf("seeded re-miss class = %v, want conflict", out.Class)
	}
	// Under Excl alone, a conflict miss goes into the cache normally.
	if !out.CacheFill {
		t.Error("conflict miss under Excl should fill the cache")
	}
}

func TestVicPreExcRoutesByClass(t *testing.T) {
	s := MustNew(dmConfig(), 0, 8, VicPreExc)
	a, b := mem.Addr(0x0000), mem.Addr(0x4000)
	// Capacity miss: bypass + prefetch.
	out := s.Access(load(a))
	if !out.BufferFill || out.CacheFill || len(out.Prefetches) != 1 {
		t.Fatalf("capacity miss under VicPreExc = %+v", out)
	}
	// A conflict miss (seeded by the bypass path? a is in buffer now).
	// Use the pair: b bypassed too; a's seed makes b's set... construct a
	// clean conflict: fill c directly then evict it.
	s2 := MustNew(dmConfig(), 0, 8, VicPreExc)
	s2.mct.Seed(0, s2.geom.Tag(a)) // force a to classify conflict
	out = s2.Access(load(a))
	if out.Class != core.Conflict {
		t.Fatalf("forced class = %v", out.Class)
	}
	if !out.CacheFill || len(out.Prefetches) != 0 {
		t.Errorf("conflict miss under VicPreExc = %+v; want victim-path fill, no prefetch", out)
	}
	_ = b
}

func TestBufferHitsSplitByOrigin(t *testing.T) {
	s := MustNew(dmConfig(), 0, 8, VicPreExc)
	// Generate one bypass hit.
	s.Access(load(0x1000))
	s.Access(load(0x1000))
	st := s.Stats()
	if st.BufferHitsByOrigin[assist.OriginBypass] != 1 {
		t.Errorf("bypass-origin hits = %d", st.BufferHitsByOrigin[assist.OriginBypass])
	}
}

func TestComboGainsOverSinglesOnMixedStream(t *testing.T) {
	// A stream with both a hot conflict pair and a sequential scan: the
	// combined VictPref policy should cover more misses than either
	// single policy — the core AMB claim.
	mixed := func(s *System) float64 {
		a, b := mem.Addr(0x0000), mem.Addr(0x4000)
		for i := 0; i < 300; i++ {
			drive(s, load(a))
			drive(s, load(b))
			drive(s, load(mem.Addr(0x100000+i*64)))
		}
		return s.Stats().TotalHitRate()
	}
	vict := mixed(MustNew(dmConfig(), 0, 8, Vict))
	pref := mixed(MustNew(dmConfig(), 0, 8, Pref))
	both := mixed(MustNew(dmConfig(), 0, 8, VictPref))
	if both < vict || both < pref {
		t.Errorf("VictPref hit rate %.3f should cover both Vict %.3f and Pref %.3f", both, vict, pref)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(dmConfig(), 0, 0, Vict); err == nil {
		t.Error("zero entries accepted")
	}
	if _, err := New(cache.Config{Size: 7}, 0, 8, Vict); err == nil {
		t.Error("bad cache accepted")
	}
	if _, err := New(dmConfig(), 70, 8, Vict); err == nil {
		t.Error("bad tag bits accepted")
	}
}

var _ assist.System = (*System)(nil)
