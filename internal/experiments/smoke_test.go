package experiments

import (
	"testing"
)

// These smoke tests run each experiment at reduced scale and check the
// paper's qualitative claims (who wins, directionally). The full-scale
// reproduction lives in cmd/paperbench and EXPERIMENTS.md.

func small() Params { return Params{Instructions: 60_000, MemAccesses: 60_000} }

// must unwraps an experiment's (result, error) pair; at test scale with no
// fault injection the error path is unreachable, so a failure is a bug
// worth the panic (which the test harness reports as a failure).
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

// TestTimingSmoke runs the victim-cache sweep end to end through the CPU
// and hierarchy and sanity-checks the shape.
func TestTimingSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timing sweep is slow")
	}
	r := must(Figure3(small()))
	for bi, b := range r.Benches {
		for si, name := range r.SystemNames {
			ipc := r.Results[bi][si].IPC()
			if ipc <= 0 || ipc > 8 {
				t.Errorf("%s/%s: implausible IPC %.3f", b, name, ipc)
			}
		}
	}
	t.Logf("\n%s", r.Table())
	t.Logf("\n%s", r.Table1Text())
	if s := r.MeanSpeedup(1, 0); s < 1.0 {
		t.Errorf("traditional victim cache slows the machine: %.3f", s)
	}
	rows := r.Table1()
	if rows[3].FillPct >= rows[1].FillPct*0.75 {
		t.Errorf("fill filtering should cut fills substantially: %.1f -> %.1f", rows[1].FillPct, rows[3].FillPct)
	}
	if rows[2].SwapPct >= rows[1].SwapPct*0.25 {
		t.Errorf("swap filtering should nearly eliminate swaps: %.1f -> %.1f", rows[1].SwapPct, rows[2].SwapPct)
	}
}

// TestFigure4Smoke checks prefetch filtering raises accuracy.
func TestFigure4Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timing sweep is slow")
	}
	r := must(Figure4(small()))
	t.Logf("\n%s", r.Table())
	if r.Accuracy(1) <= 0 {
		t.Fatalf("unfiltered prefetcher reports zero accuracy")
	}
	if gain := r.AccuracyGain(); gain < 0.05 {
		t.Errorf("or-conflict filtering should raise prefetch accuracy substantially, got %+.1f%%", 100*gain)
	}
}

// TestFigure5Smoke checks the capacity filter against the MAT.
func TestFigure5Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timing sweep is slow")
	}
	r := must(Figure5(small()))
	t.Logf("\n%s", r.Table())
	hr, sp := r.CapacityBeatsMAT()
	if !hr {
		t.Errorf("capacity filter should match or beat MAT hit rate")
	}
	if !sp {
		t.Errorf("capacity filter should match or beat MAT speedup")
	}
}

// TestPseudoSmoke checks the MCT replacement policy improves the base
// pseudo-associative cache and approaches 2-way.
func TestPseudoSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timing sweep is slow")
	}
	r := must(PseudoAssoc(small()))
	t.Logf("\n%s", r.Table())
	if s := r.MCTOverBase(); s < 0.995 {
		t.Errorf("MCT replacement should not hurt the pseudo-associative cache: %.3f", s)
	}
	base, mct := r.MissRates()
	if mct > base*1.02 {
		t.Errorf("MCT policy should reduce the miss rate: %.2f%% -> %.2f%%", 100*base, 100*mct)
	}
}

// TestFigure6Smoke checks the AMB composes policies profitably.
func TestFigure6Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timing sweep is slow")
	}
	r := must(Figure6(small()))
	t.Logf("\n%s", r.Table())
	t.Logf("\n%s", r.Figure7Table())
	sName, s := r.BestSingleGain()
	cName, c := r.BestComboGain()
	t.Logf("best single %s %.3f; best combo %s %.3f; missrate reduction %.1f%%",
		sName, s, cName, c, 100*r.MissRateReduction())
	if c < s {
		t.Errorf("best combination (%s %.3f) should beat best single policy (%s %.3f)", cName, c, sName, s)
	}
}
