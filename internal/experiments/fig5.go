package experiments

import (
	"fmt"

	"repro/internal/assist"
	"repro/internal/exclude"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Fig5Systems lists the Figure-5 bars: no exclusion buffer, Johnson and
// Hwu's memory access table, then the MCT-based conflict, conflict-
// history, capacity, and capacity-history filters. The bypass buffer is 16
// entries (the MAT "does poorly with an 8-entry buffer").
var Fig5Systems = []string{"no-exclusion", "excl-mat", "excl-conflict", "excl-conflict-hist", "excl-capacity", "excl-capacity-hist"}

// Fig5Result carries the cache-exclusion study.
type Fig5Result struct {
	TimingSeries
}

// Figure5 runs the exclusion-policy comparison on the carried suite.
func Figure5(p Params) (Fig5Result, error) {
	p = p.withDefaults()
	cfg := sim.L1Config()
	mk := func(m exclude.Mode) sim.SystemFactory {
		return func() assist.System {
			return exclude.MustNew(cfg, TagBitsFull, exclude.DefaultEntries, m)
		}
	}
	factories := []sim.SystemFactory{
		func() assist.System { return assist.MustNewBaseline(cfg, TagBitsFull) },
		mk(exclude.ModeMAT),
		mk(exclude.ModeConflict),
		mk(exclude.ModeConflictHistory),
		mk(exclude.ModeCapacity),
		mk(exclude.ModeCapacityHistory),
	}
	opt := sim.Options{Instructions: p.Instructions, Seed: p.Seed}
	ts, err := runTiming(Fig5Systems, factories, opt)
	if err != nil {
		return Fig5Result{}, err
	}
	return Fig5Result{ts}, nil
}

// Table renders Figure 5: mean total hit rate and mean speedup per policy.
func (r Fig5Result) Table() *stats.Table {
	t := stats.NewTable("Figure 5: cache-exclusion policies",
		"system", "total HR %", "mean speedup")
	for si, name := range r.SystemNames {
		t.AddRow(name,
			fmt.Sprintf("%.2f", 100*r.MeanTotalHitRate(si)),
			fmt.Sprintf("%.3f", r.MeanSpeedup(si, 0)))
	}
	return t
}

// CapacityBeatsMAT reports the paper's Figure-5 conclusion: the simple
// capacity filter outperforms the MAT in both hit rate and speedup.
func (r Fig5Result) CapacityBeatsMAT() (hitRate, speedup bool) {
	return r.MeanTotalHitRate(4) >= r.MeanTotalHitRate(1),
		r.MeanSpeedup(4, 0) >= r.MeanSpeedup(1, 0)
}
