package experiments

import (
	"context"
	"fmt"

	"repro/internal/cache"
	"repro/internal/classify"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// SweepCell is the suite-aggregate classification behavior of one cache
// configuration.
type SweepCell struct {
	SizeKB        int
	Assoc         int
	MissRate      float64
	ConflictShare float64
	ConflictAcc   float64
	CapacityAcc   float64
	OverallAcc    float64
}

// SweepResult is the configuration-grid generalization of Figure 1: the
// MCT's accuracy and the suite's miss composition across cache sizes and
// associativities beyond the four the paper plots.
type SweepResult struct {
	Cells []SweepCell
}

// ConfigSweep measures the suite over {8,16,32,64}KB x {1,2,4}-way caches.
// The paper's implicit claims under test: classification stays accurate
// everywhere (it is not tuned to 16KB DM), and the conflict share shrinks
// with associativity — the reason the authors expected large multithreaded
// and OLTP workloads, not bigger caches, to be the technique's future.
func ConfigSweep(p Params) (SweepResult, error) {
	p = p.withDefaults()
	var grid []SweepCell
	for _, sizeKB := range []int{8, 16, 32, 64} {
		for _, assoc := range []int{1, 2, 4} {
			grid = append(grid, SweepCell{SizeKB: sizeKB, Assoc: assoc})
		}
	}
	cells, err := runner.MapN(context.Background(), len(grid),
		func(i int) string { return fmt.Sprintf("sweep/%dKB-%dway", grid[i].SizeKB, grid[i].Assoc) },
		func(_ context.Context, ci int) (SweepCell, error) {
			c := grid[ci]
			cfg := cache.Config{Name: "L1D", Size: c.SizeKB << 10, LineSize: 64, Assoc: c.Assoc}
			var agg classify.Accuracy
			var accesses, misses uint64
			for _, b := range workload.Suite() {
				r, err := classify.NewRun(cfg, TagBitsFull)
				if err != nil {
					return c, fmt.Errorf("experiments: sweep %dKB/%d-way: %w", c.SizeKB, c.Assoc, err)
				}
				s := trace.NewMemOnly(b.Stream(p.Seed))
				var in trace.Instr
				for n := uint64(0); n < p.MemAccesses && s.Next(&in); n++ {
					r.Access(in.Addr, in.Op == trace.Store)
				}
				agg.Merge(r.Acc)
				st := r.CC.Cache().Stats()
				accesses += st.Accesses
				misses += st.Misses
			}
			c.MissRate = stats.Ratio(misses, accesses)
			c.ConflictShare = agg.ConflictShare()
			c.ConflictAcc = agg.ConflictAccuracy()
			c.CapacityAcc = agg.CapacityAccuracy()
			c.OverallAcc = agg.OverallAccuracy()
			return c, nil
		})
	if err != nil {
		return SweepResult{}, err
	}
	return SweepResult{Cells: cells}, nil
}

// Table renders the grid.
func (r SweepResult) Table() *stats.Table {
	t := stats.NewTable("Extension: classification across cache configurations (suite aggregate)",
		"config", "miss %", "conflict share %", "conf acc %", "cap acc %", "overall %")
	for _, c := range r.Cells {
		t.AddRow(fmt.Sprintf("%dKB %d-way", c.SizeKB, c.Assoc),
			fmt.Sprintf("%.2f", 100*c.MissRate),
			fmt.Sprintf("%.1f", 100*c.ConflictShare),
			fmt.Sprintf("%.1f", 100*c.ConflictAcc),
			fmt.Sprintf("%.1f", 100*c.CapacityAcc),
			fmt.Sprintf("%.1f", 100*c.OverallAcc))
	}
	return t
}

// CellAt returns the cell for a configuration.
func (r SweepResult) CellAt(sizeKB, assoc int) (SweepCell, bool) {
	for _, c := range r.Cells {
		if c.SizeKB == sizeKB && c.Assoc == assoc {
			return c, true
		}
	}
	return SweepCell{}, false
}

// MinOverallAcc returns the worst overall accuracy across the grid — the
// generalized version of the paper's "87% in the worst case".
func (r SweepResult) MinOverallAcc() float64 {
	min := 1.0
	for _, c := range r.Cells {
		if c.OverallAcc < min {
			min = c.OverallAcc
		}
	}
	return min
}
