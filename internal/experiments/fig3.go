package experiments

import (
	"fmt"

	"repro/internal/assist"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/victim"
)

// Fig3Systems lists the Figure-3 configurations in the paper's bar order.
// Index 0 (no victim cache) is the speedup baseline; bar 1 (traditional)
// is the secondary baseline the ~3% combined-policy gain is quoted
// against.
var Fig3Systems = []string{"no-vcache", "vc-traditional", "vc-filter-swaps", "vc-filter-fills", "vc-filter-both"}

// Fig3Result carries the victim-cache study (Figure 3 and Table 1 come
// from the same runs).
type Fig3Result struct {
	TimingSeries
}

// Figure3 runs the victim-cache policy comparison on the carried suite.
// All filtered policies use the or-conflict filter, the paper's most
// liberal identification of conflict misses.
func Figure3(p Params) (Fig3Result, error) {
	p = p.withDefaults()
	cfg := sim.L1Config()
	factories := []sim.SystemFactory{
		func() assist.System { return assist.MustNewBaseline(cfg, TagBitsFull) },
		func() assist.System {
			return victim.MustNew(cfg, TagBitsFull, assist.DefaultEntries, victim.Traditional)
		},
		func() assist.System {
			return victim.MustNew(cfg, TagBitsFull, assist.DefaultEntries, victim.FilterSwapsPolicy)
		},
		func() assist.System {
			return victim.MustNew(cfg, TagBitsFull, assist.DefaultEntries, victim.FilterFillsPolicy)
		},
		func() assist.System {
			return victim.MustNew(cfg, TagBitsFull, assist.DefaultEntries, victim.FilterBothPolicy)
		},
	}
	opt := sim.Options{Instructions: p.Instructions, Seed: p.Seed}
	ts, err := runTiming(Fig3Systems, factories, opt)
	if err != nil {
		return Fig3Result{}, err
	}
	return Fig3Result{ts}, nil
}

// Table renders Figure 3 as per-benchmark speedups over the no-victim
// baseline.
func (r Fig3Result) Table() *stats.Table {
	return r.SpeedupTable("Figure 3: victim cache policies (speedup over no victim cache)", 0)
}

// CombinedOverTraditional returns the headline number: geometric-mean
// speedup of filter-both over the traditional victim cache (paper: ~3%).
func (r Fig3Result) CombinedOverTraditional() float64 {
	return r.MeanSpeedup(4, 1)
}

// Table1Row is one row of Table 1: hit rates and swap/fill traffic as
// percentages of all data accesses.
type Table1Row struct {
	Policy   string
	DCacheHR float64
	VCacheHR float64
	TotalHR  float64
	SwapPct  float64
	FillPct  float64
}

// Table1 derives the paper's Table 1 from the Figure-3 runs: suite-average
// D-cache hit rate, victim hit rate, total, and the rates of swaps and
// fills.
func (r Fig3Result) Table1() []Table1Row {
	rows := make([]Table1Row, len(r.SystemNames))
	for si, name := range r.SystemNames {
		var d, v, tot, sw, fl []float64
		for bi := range r.Benches {
			s := r.Results[bi][si].Sys
			d = append(d, 100*s.L1HitRate())
			v = append(v, 100*s.BufferHitRate())
			tot = append(tot, 100*s.TotalHitRate())
			sw = append(sw, 100*s.SwapRate())
			fl = append(fl, 100*s.FillRate())
		}
		rows[si] = Table1Row{
			Policy:   name,
			DCacheHR: stats.Mean(d),
			VCacheHR: stats.Mean(v),
			TotalHR:  stats.Mean(tot),
			SwapPct:  stats.Mean(sw),
			FillPct:  stats.Mean(fl),
		}
	}
	return rows
}

// Table1Text renders Table 1.
func (r Fig3Result) Table1Text() *stats.Table {
	t := stats.NewTable("Table 1: victim cache hit rates and traffic (% of accesses)",
		"policy", "D$ HR", "V$ HR", "Total", "swaps", "fills")
	for _, row := range r.Table1() {
		t.AddRow(row.Policy,
			fmt.Sprintf("%.1f", row.DCacheHR),
			fmt.Sprintf("%.1f", row.VCacheHR),
			fmt.Sprintf("%.1f", row.TotalHR),
			fmt.Sprintf("%.1f", row.SwapPct),
			fmt.Sprintf("%.1f", row.FillPct))
	}
	return t
}
