package experiments

import (
	"context"
	"fmt"

	"repro/internal/cache"
	"repro/internal/classify"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// geometryConfigs are the index schemes the study sweeps. The shape is
// held fixed at 16KB 2-way 64B — skewing needs at least two ways to give
// each way its own hash, and 2-way is where the paper's conflict problem
// is still alive — so the only variable is how addresses map to rows.
// The MCT itself always indexes by the modulo geometry: the question is
// precisely whether the paper's table still identifies conflicts once the
// cache underneath stops agreeing with it about what a "set" is.
var geometryConfigs = []struct {
	Name string
	Cfg  cache.Config
}{
	{"modulo", cache.Config{Name: "L1D", Size: 16 << 10, LineSize: 64, Assoc: 2, Indexing: cache.IndexModulo}},
	{"skewed", cache.Config{Name: "L1D", Size: 16 << 10, LineSize: 64, Assoc: 2, Indexing: cache.IndexSkewed}},
	{"random", cache.Config{Name: "L1D", Size: 16 << 10, LineSize: 64, Assoc: 2, Indexing: cache.IndexRandom}},
}

// GeometryCell is one benchmark×scheme accuracy measurement against the
// fully-associative oracle (which is index-independent, so it is the same
// ground truth for all three schemes).
type GeometryCell struct {
	Scheme        string
	ConflictAcc   float64
	CapacityAcc   float64
	OverallAcc    float64
	ConflictShare float64
	MissRate      float64
}

// GeometryRow is one benchmark across the index schemes.
type GeometryRow struct {
	Bench string
	Cells []GeometryCell
}

// GeometryResult is the accuracy-vs-indexing study: does the MCT's
// conflict identification survive indexing schemes designed to destroy
// conflicts? Beyond reproducing the paper, this is the repo's first
// result past it.
type GeometryResult struct {
	Rows []GeometryRow
	// Suite means per scheme, conflict-accuracy averaged only over
	// benchmarks with a non-negligible conflict share (0/0 cells are
	// skipped, as in Figure 1).
	MeanConflictAcc   map[string]float64
	MeanCapacityAcc   map[string]float64
	MeanOverallAcc    map[string]float64
	MeanMissRate      map[string]float64
	MeanConflictShare map[string]float64
}

// GeometryStudy measures MCT classification accuracy for every benchmark
// under modulo, skewed, and randomized indexing.
func GeometryStudy(p Params) (GeometryResult, error) {
	p = p.withDefaults()
	suite := workload.Suite()

	tasks := make([]runner.Task[GeometryCell], 0, len(suite)*len(geometryConfigs))
	for _, b := range suite {
		b := b
		for ci := range geometryConfigs {
			gc := geometryConfigs[ci]
			tasks = append(tasks, runner.NewTask("geometry/"+b.Name+"/"+gc.Name,
				func(context.Context) (GeometryCell, error) {
					return geometryCell(b, gc.Name, gc.Cfg, p)
				}))
		}
	}
	cells, err := runner.Map(context.Background(), tasks)
	if err != nil {
		return GeometryResult{}, err
	}

	res := GeometryResult{
		Rows:              make([]GeometryRow, len(suite)),
		MeanConflictAcc:   map[string]float64{},
		MeanCapacityAcc:   map[string]float64{},
		MeanOverallAcc:    map[string]float64{},
		MeanMissRate:      map[string]float64{},
		MeanConflictShare: map[string]float64{},
	}
	for bi, b := range suite {
		row := GeometryRow{Bench: b.Name, Cells: make([]GeometryCell, len(geometryConfigs))}
		copy(row.Cells, cells[bi*len(geometryConfigs):(bi+1)*len(geometryConfigs)])
		res.Rows[bi] = row
	}
	for ci, gc := range geometryConfigs {
		var conf, capa, all, miss, share []float64
		for _, r := range res.Rows {
			c := r.Cells[ci]
			if c.ConflictShare > 0.001 {
				conf = append(conf, c.ConflictAcc)
			}
			capa = append(capa, c.CapacityAcc)
			all = append(all, c.OverallAcc)
			miss = append(miss, c.MissRate)
			share = append(share, c.ConflictShare)
		}
		res.MeanConflictAcc[gc.Name] = stats.Mean(conf)
		res.MeanCapacityAcc[gc.Name] = stats.Mean(capa)
		res.MeanOverallAcc[gc.Name] = stats.Mean(all)
		res.MeanMissRate[gc.Name] = stats.Mean(miss)
		res.MeanConflictShare[gc.Name] = stats.Mean(share)
	}
	return res, nil
}

func geometryCell(b *workload.Benchmark, name string, cfg cache.Config, p Params) (GeometryCell, error) {
	r, err := classify.NewRun(cfg, TagBitsFull)
	if err != nil {
		return GeometryCell{}, fmt.Errorf("experiments: geometry %s/%s: %w", b.Name, name, err)
	}
	s := trace.NewMemOnly(b.Stream(p.Seed))
	var in trace.Instr
	for n := uint64(0); n < p.MemAccesses && s.Next(&in); n++ {
		r.Access(in.Addr, in.Op == trace.Store)
	}
	acc := r.Acc
	return GeometryCell{
		Scheme:        name,
		ConflictAcc:   acc.ConflictAccuracy(),
		CapacityAcc:   acc.CapacityAccuracy(),
		OverallAcc:    acc.OverallAccuracy(),
		ConflictShare: acc.ConflictShare(),
		MissRate:      r.CC.Cache().Stats().MissRate(),
	}, nil
}

// Table renders the accuracy-vs-indexing study.
func (r GeometryResult) Table() *stats.Table {
	cols := []string{"benchmark"}
	for _, gc := range geometryConfigs {
		cols = append(cols, gc.Name+" conf%", gc.Name+" cap%", gc.Name+" miss%")
	}
	t := stats.NewTable("Extension: MCT accuracy vs index scheme (16KB 2-way, full tags)", cols...)
	for _, row := range r.Rows {
		cells := []string{row.Bench}
		for _, c := range row.Cells {
			cells = append(cells,
				fmt.Sprintf("%.1f", 100*c.ConflictAcc),
				fmt.Sprintf("%.1f", 100*c.CapacityAcc),
				fmt.Sprintf("%.2f", 100*c.MissRate))
		}
		t.AddRow(cells...)
	}
	mean := []string{"MEAN"}
	for _, gc := range geometryConfigs {
		mean = append(mean,
			fmt.Sprintf("%.1f", 100*r.MeanConflictAcc[gc.Name]),
			fmt.Sprintf("%.1f", 100*r.MeanCapacityAcc[gc.Name]),
			fmt.Sprintf("%.2f", 100*r.MeanMissRate[gc.Name]))
	}
	t.AddRow(mean...)
	return t
}
