package experiments

import "testing"

// TestSMTStudySmoke checks the Section-5.6 multithreading claim: the AMB
// gains at least as much on the shared cache as on the solo runs, and
// sharing raises the conflict share of misses.
func TestSMTStudySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("SMT sweep is slow")
	}
	r := must(SMTStudy(small()))
	t.Logf("\n%s", r.Table())
	if r.PairGain() <= 1.0 {
		t.Errorf("AMB should help shared caches: pair gain %.3f", r.PairGain())
	}
	if r.SingleGain <= 1.0 {
		t.Errorf("AMB should help solo runs: %.3f", r.SingleGain)
	}
	if r.MeanPairConflictShare() < r.SingleConflictShare*0.8 {
		t.Errorf("sharing should not slash the conflict share: 2T %.3f vs 1T %.3f",
			r.MeanPairConflictShare(), r.SingleConflictShare)
	}
}
