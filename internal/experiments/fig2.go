package experiments

import (
	"context"
	"fmt"

	"repro/internal/cache"
	"repro/internal/classify"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Fig2TagBits is the sweep of stored-tag widths (0 = full tag), matching
// the paper's x-axis for a 16KB direct-mapped cache.
var Fig2TagBits = []int{1, 2, 3, 4, 5, 6, 8, 10, 12, 14, 16, TagBitsFull}

// Fig2Point is the suite-average accuracy at one stored-tag width.
type Fig2Point struct {
	TagBits       int // 0 = full
	ConflictAcc   float64
	CapacityAcc   float64
	OverallAcc    float64
	ConflictShare float64
}

// Fig2Result is the Figure-2 reproduction: accuracy versus number of
// evicted-tag bits stored per MCT entry, 16KB DM cache, suite average.
type Fig2Result struct {
	Points []Fig2Point
}

// Figure2 sweeps MCT tag widths. With few bits, false tag matches inflate
// the conflict classification, so conflict accuracy starts artificially
// high and capacity accuracy low; by 8–12 bits both converge to the
// full-tag values (the paper's storage-efficiency claim).
func Figure2(p Params) (Fig2Result, error) {
	p = p.withDefaults()
	cfg := cache.Config{Name: "L1D", Size: 16 << 10, LineSize: 64, Assoc: 1}
	suite := workload.Suite()

	points, err := runner.MapN(context.Background(), len(Fig2TagBits),
		func(i int) string { return fmt.Sprintf("fig2/bits=%d", Fig2TagBits[i]) },
		func(_ context.Context, pi int) (Fig2Point, error) {
			bits := Fig2TagBits[pi]
			var acc classify.Accuracy
			for _, b := range suite {
				r, err := classify.NewRun(cfg, bits)
				if err != nil {
					return Fig2Point{}, fmt.Errorf("experiments: figure 2 bits=%d: %w", bits, err)
				}
				s := trace.NewMemOnly(b.Stream(p.Seed))
				var in trace.Instr
				for n := uint64(0); n < p.MemAccesses && s.Next(&in); n++ {
					r.Access(in.Addr, in.Op == trace.Store)
				}
				acc.Merge(r.Acc)
			}
			return Fig2Point{
				TagBits:       bits,
				ConflictAcc:   acc.ConflictAccuracy(),
				CapacityAcc:   acc.CapacityAccuracy(),
				OverallAcc:    acc.OverallAccuracy(),
				ConflictShare: acc.ConflictShare(),
			}, nil
		})
	if err != nil {
		return Fig2Result{}, err
	}
	return Fig2Result{Points: points}, nil
}

// Table renders the Figure-2 series as text.
func (r Fig2Result) Table() *stats.Table {
	t := stats.NewTable("Figure 2: accuracy vs stored tag bits (16KB DM, suite aggregate)",
		"tag bits", "conflict acc %", "capacity acc %", "overall %")
	for _, pt := range r.Points {
		label := fmt.Sprintf("%d", pt.TagBits)
		if pt.TagBits == TagBitsFull {
			label = "full"
		}
		t.AddRow(label,
			fmt.Sprintf("%.1f", 100*pt.ConflictAcc),
			fmt.Sprintf("%.1f", 100*pt.CapacityAcc),
			fmt.Sprintf("%.1f", 100*pt.OverallAcc))
	}
	return t
}

// PointAt returns the sweep point for a tag width, if measured.
func (r Fig2Result) PointAt(bits int) (Fig2Point, bool) {
	for _, pt := range r.Points {
		if pt.TagBits == bits {
			return pt, true
		}
	}
	return Fig2Point{}, false
}
