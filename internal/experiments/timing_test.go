package experiments

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// fakeSeries builds a TimingSeries by hand so the aggregation helpers can
// be tested without simulation.
func fakeSeries() TimingSeries {
	mk := func(instr, cycles uint64, miss, acc uint64) sim.Result {
		r := sim.Result{}
		r.CPU.Instructions = instr
		r.CPU.Cycles = cycles
		r.Sys.Accesses = acc
		r.Sys.Misses = miss
		r.Sys.L1Hits = acc - miss
		return r
	}
	return TimingSeries{
		SystemNames: []string{"base", "fast", "slow"},
		Benches:     []string{"b1", "b2"},
		Results: [][]sim.Result{
			{mk(100, 100, 10, 50), mk(100, 50, 5, 50), mk(100, 200, 20, 50)},
			{mk(100, 100, 20, 50), mk(100, 80, 10, 50), mk(100, 100, 20, 50)},
		},
	}
}

func TestSpeedupHelpers(t *testing.T) {
	s := fakeSeries()
	if got := s.Speedup(0, 1, 0); got != 2.0 {
		t.Errorf("b1 fast speedup = %g", got)
	}
	if got := s.Speedup(0, 2, 0); got != 0.5 {
		t.Errorf("b1 slow speedup = %g", got)
	}
	// Geomean of (2.0, 1.25) = sqrt(2.5).
	if got := s.MeanSpeedup(1, 0); got < 1.58 || got > 1.59 {
		t.Errorf("fast geomean = %g", got)
	}
	if got := s.MeanIPC(0); got != 1.0 {
		t.Errorf("base mean IPC = %g", got)
	}
}

func TestRateHelpers(t *testing.T) {
	s := fakeSeries()
	if got := s.MeanMissRate(0); got < 0.299 || got > 0.301 { // (0.2 + 0.4)/2
		t.Errorf("base mean miss rate = %g", got)
	}
	if got := s.MeanTotalHitRate(0); got < 0.699 || got > 0.701 {
		t.Errorf("base mean hit rate = %g", got)
	}
}

func TestSpeedupTableShape(t *testing.T) {
	s := fakeSeries()
	tb := s.SpeedupTable("demo", 0)
	out := tb.String()
	if !strings.Contains(out, "GEOMEAN") || !strings.Contains(out, "base IPC") {
		t.Errorf("table missing aggregate rows:\n%s", out)
	}
	if tb.Rows() != 3 { // 2 benches + geomean
		t.Errorf("rows = %d", tb.Rows())
	}
}

func TestChartSkipsBaseline(t *testing.T) {
	s := fakeSeries()
	out := s.Chart("demo", 0).String()
	if strings.Contains(out, "base") {
		t.Errorf("chart should skip the baseline system:\n%s", out)
	}
	if !strings.Contains(out, "fast") || !strings.Contains(out, "slow") {
		t.Errorf("chart missing systems:\n%s", out)
	}
}

func TestParamsDefaults(t *testing.T) {
	p := Params{}.withDefaults()
	d := Default()
	if p != d {
		t.Errorf("zero params should fill to defaults: %+v vs %+v", p, d)
	}
	p = Params{Seed: 42}.withDefaults()
	if p.Seed != 42 || p.Instructions != d.Instructions {
		t.Errorf("partial params mishandled: %+v", p)
	}
	q := Quick()
	if q.MemAccesses >= d.MemAccesses {
		t.Error("Quick should be smaller than Default")
	}
}
