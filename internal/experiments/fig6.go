package experiments

import (
	"fmt"

	"repro/internal/amb"
	"repro/internal/assist"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Fig6Systems lists Figure 6's configurations: the single policies and
// their combinations over an 8-entry Adaptive Miss Buffer, plus the two
// most interesting 16-entry variants the paper calls out.
var Fig6Systems = []string{
	"no-buffer",
	"Vict", "Pref", "Excl",
	"VictPref", "PrefExcl", "VictExcl", "VicPreExc",
	"VictPref-16", "VicPreExc-16",
}

// fig6Combos pairs each non-baseline system with its combination and
// buffer size.
var fig6Combos = []struct {
	combo   amb.Combo
	entries int
}{
	{amb.Vict, 8}, {amb.Pref, 8}, {amb.Excl, 8},
	{amb.VictPref, 8}, {amb.PrefExcl, 8}, {amb.VictExcl, 8}, {amb.VicPreExc, 8},
	{amb.VictPref, 16}, {amb.VicPreExc, 16},
}

// Fig6Result carries the AMB study; Figure 7 derives from the same runs.
type Fig6Result struct {
	TimingSeries
}

// Figure6 runs the Adaptive Miss Buffer comparison. The paper's headline:
// the best combination (VictPref at 8 entries) more than doubles the gain
// of any single policy, about 16% better performance than any single
// technique, with the do-everything VicPreExc overtaking it at 16 entries.
func Figure6(p Params) (Fig6Result, error) {
	p = p.withDefaults()
	cfg := sim.L1Config()
	factories := []sim.SystemFactory{
		func() assist.System { return assist.MustNewBaseline(cfg, TagBitsFull) },
	}
	for _, c := range fig6Combos {
		c := c
		factories = append(factories, func() assist.System {
			return amb.MustNew(cfg, TagBitsFull, c.entries, c.combo)
		})
	}
	opt := sim.Options{Instructions: p.Instructions, Seed: p.Seed}
	ts, err := runTiming(Fig6Systems, factories, opt)
	if err != nil {
		return Fig6Result{}, err
	}
	return Fig6Result{ts}, nil
}

// Table renders Figure 6 as speedups over the no-buffer baseline.
func (r Fig6Result) Table() *stats.Table {
	return r.SpeedupTable("Figure 6: adaptive miss buffer policies (speedup over no buffer)", 0)
}

// BestSingleGain and BestComboGain return the geometric-mean speedup-over-
// baseline of the best single policy and the best 8-entry combination; the
// paper's claim is combo ≈ 2x the single-policy gain.
func (r Fig6Result) BestSingleGain() (string, float64) {
	return r.bestOver(1, 3)
}

// BestComboGain returns the best 8-entry multi-policy configuration.
func (r Fig6Result) BestComboGain() (string, float64) {
	return r.bestOver(4, 7)
}

func (r Fig6Result) bestOver(lo, hi int) (string, float64) {
	best, name := 0.0, ""
	for si := lo; si <= hi; si++ {
		if s := r.MeanSpeedup(si, 0); s > best {
			best, name = s, r.SystemNames[si]
		}
	}
	return name, best
}

// MissRateReduction returns 1 - missrate(best combo)/missrate(best
// single): the paper's "30% reduction in total miss rate over the best
// individual policy".
func (r Fig6Result) MissRateReduction() float64 {
	bestSingle, bestCombo := -1, -1
	var sGain, cGain float64
	for si := 1; si <= 3; si++ {
		if g := r.MeanSpeedup(si, 0); g > sGain {
			sGain, bestSingle = g, si
		}
	}
	for si := 4; si <= 7; si++ {
		if g := r.MeanSpeedup(si, 0); g > cGain {
			cGain, bestCombo = g, si
		}
	}
	if bestSingle < 0 || bestCombo < 0 {
		return 0
	}
	ms, mc := r.MeanMissRate(bestSingle), r.MeanMissRate(bestCombo)
	if ms == 0 {
		return 0
	}
	return 1 - mc/ms
}

// Fig7Row is one Figure-7 bar: the average hit-rate composition of a
// configuration, split by where the hit was served.
type Fig7Row struct {
	System     string
	DCacheHR   float64
	VictimHR   float64
	PrefetchHR float64
	BypassHR   float64
	MissRate   float64
}

// Figure7 derives the hit-rate component breakdown from the Figure-6 runs.
func (r Fig6Result) Figure7() []Fig7Row {
	rows := make([]Fig7Row, len(r.SystemNames))
	for si, name := range r.SystemNames {
		var d, v, pf, by, ms []float64
		for bi := range r.Benches {
			s := r.Results[bi][si].Sys
			if s.Accesses == 0 {
				continue
			}
			a := float64(s.Accesses)
			d = append(d, 100*float64(s.L1Hits+s.SecondaryHits)/a)
			v = append(v, 100*float64(s.BufferHitsByOrigin[assist.OriginVictim])/a)
			pf = append(pf, 100*float64(s.BufferHitsByOrigin[assist.OriginPrefetch])/a)
			by = append(by, 100*float64(s.BufferHitsByOrigin[assist.OriginBypass])/a)
			ms = append(ms, 100*s.MissRate())
		}
		rows[si] = Fig7Row{
			System:     name,
			DCacheHR:   stats.Mean(d),
			VictimHR:   stats.Mean(v),
			PrefetchHR: stats.Mean(pf),
			BypassHR:   stats.Mean(by),
			MissRate:   stats.Mean(ms),
		}
	}
	return rows
}

// Figure7Table renders the component breakdown.
func (r Fig6Result) Figure7Table() *stats.Table {
	t := stats.NewTable("Figure 7: hit-rate components per AMB policy (% of accesses)",
		"system", "D$ ", "victim", "prefetch", "bypass", "miss")
	for _, row := range r.Figure7() {
		t.AddRow(row.System,
			fmt.Sprintf("%.1f", row.DCacheHR),
			fmt.Sprintf("%.1f", row.VictimHR),
			fmt.Sprintf("%.1f", row.PrefetchHR),
			fmt.Sprintf("%.1f", row.BypassHR),
			fmt.Sprintf("%.1f", row.MissRate))
	}
	return t
}
