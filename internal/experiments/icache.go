package experiments

import (
	"context"
	"fmt"

	"repro/internal/assist"
	"repro/internal/cache"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/victim"
	"repro/internal/workload"
)

// ICacheRow is one benchmark's instruction-cache measurements.
type ICacheRow struct {
	Bench string
	// IMissRate is the bare I-cache's miss rate over fetched lines;
	// IConflictShare is the fraction of those misses the MCT classifies
	// conflict (code aliasing between kernels/bodies).
	IMissRate      float64
	IConflictShare float64
	// PerfectIPC, BareIPC, and VictimIPC are the run's IPC with a perfect
	// I-cache, a bare 8KB DM I-cache, and the same I-cache plus a filtered
	// victim buffer.
	PerfectIPC float64
	BareIPC    float64
	VictimIPC  float64
}

// ICacheResult carries the instruction-cache study — the paper's remark
// that its techniques "should, in general, also apply to the instruction
// cache", measured.
type ICacheResult struct {
	Rows []ICacheRow
}

// iCacheConfig is the study's first-level instruction cache. It is
// deliberately small (8KB DM) relative to the synthetic code footprints so
// the I-stream has misses worth optimizing, the same "interesting mix"
// reasoning the paper used for its 16KB data cache.
func iCacheConfig() cache.Config {
	return cache.Config{Name: "L1I", Size: 8 << 10, LineSize: 64, Assoc: 1}
}

// ICacheStudy measures instruction-side behavior across the carried suite:
// bare I-cache cost versus a perfect front end, and the recovery from
// attaching the Sec-5.1 filtered victim buffer to the I-cache — the same
// policy object used on the data side, unchanged except for size: code
// conflict misses arrive in bursts of whole loop bodies (several lines at
// once), so the paper's 8-entry buffer overflows before the re-miss and a
// 32-entry buffer is needed for the hits to land. That sizing difference
// is itself a finding of the study.
func ICacheStudy(p Params) (ICacheResult, error) {
	p = p.withDefaults()
	benches := workload.Carried()
	dcache := sim.L1Config()

	rows, err := runner.MapN(context.Background(), len(benches),
		func(i int) string { return "icache/" + benches[i].Name },
		func(_ context.Context, bi int) (ICacheRow, error) {
			b := benches[bi]
			base := sim.Options{Instructions: p.Instructions, Seed: p.Seed}

			perfect := sim.Run(b, assist.MustNewBaseline(dcache, TagBitsFull), base)

			withI := base
			withI.ICache = func() assist.System { return assist.MustNewBaseline(iCacheConfig(), TagBitsFull) }
			bare := sim.Run(b, assist.MustNewBaseline(dcache, TagBitsFull), withI)

			withIV := base
			withIV.ICache = func() assist.System {
				return victim.MustNew(iCacheConfig(), TagBitsFull, 32, victim.FilterSwapsPolicy)
			}
			boosted := sim.Run(b, assist.MustNewBaseline(dcache, TagBitsFull), withIV)

			row := ICacheRow{
				Bench:      b.Name,
				PerfectIPC: perfect.IPC(),
				BareIPC:    bare.IPC(),
				VictimIPC:  boosted.IPC(),
			}
			if bare.ISys.Accesses > 0 {
				row.IMissRate = bare.ISys.MissRate()
				if bare.ISys.Misses > 0 {
					row.IConflictShare = float64(bare.ISys.ConflictMisses) / float64(bare.ISys.Misses)
				}
			}
			return row, nil
		})
	if err != nil {
		return ICacheResult{}, err
	}
	return ICacheResult{Rows: rows}, nil
}

// VictimGain returns the geometric-mean speedup of the I-side victim
// buffer over the bare I-cache.
func (r ICacheResult) VictimGain() float64 {
	xs := make([]float64, 0, len(r.Rows))
	for _, row := range r.Rows {
		if row.BareIPC > 0 {
			xs = append(xs, row.VictimIPC/row.BareIPC)
		}
	}
	return stats.GeoMean(xs)
}

// ICacheCost returns the geometric-mean slowdown of the bare I-cache
// versus a perfect front end.
func (r ICacheResult) ICacheCost() float64 {
	xs := make([]float64, 0, len(r.Rows))
	for _, row := range r.Rows {
		if row.PerfectIPC > 0 {
			xs = append(xs, row.BareIPC/row.PerfectIPC)
		}
	}
	return stats.GeoMean(xs)
}

// Table renders the I-cache study.
func (r ICacheResult) Table() *stats.Table {
	t := stats.NewTable("Extension: the paper's techniques on the instruction cache (8KB DM L1I)",
		"benchmark", "I-miss %", "I-conflict %", "bare/perfect", "victim/bare")
	for _, row := range r.Rows {
		bp, vb := 0.0, 0.0
		if row.PerfectIPC > 0 {
			bp = row.BareIPC / row.PerfectIPC
		}
		if row.BareIPC > 0 {
			vb = row.VictimIPC / row.BareIPC
		}
		t.AddRow(row.Bench,
			fmt.Sprintf("%.2f", 100*row.IMissRate),
			fmt.Sprintf("%.1f", 100*row.IConflictShare),
			fmt.Sprintf("%.3f", bp),
			fmt.Sprintf("%.3f", vb))
	}
	t.AddRow("GEOMEAN", "", "",
		fmt.Sprintf("%.3f", r.ICacheCost()),
		fmt.Sprintf("%.3f", r.VictimGain()))
	return t
}
