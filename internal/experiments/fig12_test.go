package experiments

import (
	"testing"
)

// TestFigure1Smoke checks the accuracy experiment reproduces the paper's
// Section-3 headline: high classification accuracy on all four cache
// configurations, with the suite mean in the high-80s-or-better band.
func TestFigure1Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("functional sweep is slow")
	}
	r := must(Figure1(Params{MemAccesses: 100_000}))
	t.Logf("\n%s", r.Table())
	if len(r.Rows) != 16 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, cfg := range []string{"16KB-DM", "16KB-2way", "64KB-DM", "64KB-2way"} {
		mean := r.MeanOverallAcc[cfg]
		if mean < 0.80 {
			t.Errorf("%s: mean overall accuracy %.1f%% below the paper's band", cfg, 100*mean)
		}
		if r.MeanConflictAcc[cfg] <= 0 || r.MeanCapacityAcc[cfg] <= 0 {
			t.Errorf("%s: degenerate means", cfg)
		}
	}
	// Every benchmark/config cell must have actually measured misses.
	for _, row := range r.Rows {
		for _, cell := range row.Cells {
			if cell.MissRate <= 0 {
				t.Errorf("%s/%s: zero miss rate", row.Bench, cell.Config)
			}
		}
	}
}

// TestFigure2Smoke checks the tag-width sweep reproduces Figure 2's shape:
// conflict accuracy starts artificially high at 1 bit, capacity accuracy
// starts low, and both converge to full-tag values by 8-12 bits.
func TestFigure2Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("functional sweep is slow")
	}
	r := must(Figure2(Params{MemAccesses: 100_000}))
	t.Logf("\n%s", r.Table())
	one, ok1 := r.PointAt(1)
	eight, ok8 := r.PointAt(8)
	full, okF := r.PointAt(TagBitsFull)
	if !ok1 || !ok8 || !okF {
		t.Fatal("sweep missing required points")
	}
	if one.CapacityAcc >= full.CapacityAcc {
		t.Errorf("1-bit capacity accuracy %.2f should be below full-tag %.2f",
			one.CapacityAcc, full.CapacityAcc)
	}
	if one.ConflictAcc < full.ConflictAcc {
		t.Errorf("1-bit conflict accuracy %.2f should be >= full-tag %.2f (artificially high)",
			one.ConflictAcc, full.ConflictAcc)
	}
	// Convergence: by 8 bits, within a couple points of full tags.
	if d := full.CapacityAcc - eight.CapacityAcc; d > 0.03 {
		t.Errorf("8-bit capacity accuracy %.3f not converged (full %.3f)",
			eight.CapacityAcc, full.CapacityAcc)
	}
	if d := eight.ConflictAcc - full.ConflictAcc; d > 0.03 || d < -0.03 {
		t.Errorf("8-bit conflict accuracy %.3f not converged (full %.3f)",
			eight.ConflictAcc, full.ConflictAcc)
	}
	// The paper: even 1 bit excludes nearly half of capacity misses while
	// misidentifying few conflict misses.
	if one.CapacityAcc < 0.30 {
		t.Errorf("1-bit capacity accuracy %.2f implausibly low", one.CapacityAcc)
	}
}
