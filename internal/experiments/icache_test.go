package experiments

import "testing"

// TestICacheStudySmoke checks the instruction-cache extension: the bare
// I-cache costs real performance, the I-stream has classifiable conflict
// misses, and the victim buffer recovers part of the cost — the paper's
// "should also apply to the instruction cache", measured.
func TestICacheStudySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timing sweep is slow")
	}
	r := must(ICacheStudy(small()))
	t.Logf("\n%s", r.Table())
	if c := r.ICacheCost(); c >= 1.0 {
		t.Errorf("a finite I-cache cannot be free: bare/perfect = %.3f", c)
	}
	if g := r.VictimGain(); g < 1.0 {
		t.Errorf("I-side victim buffer should not hurt: %.3f", g)
	}
	sawMisses := false
	for _, row := range r.Rows {
		if row.IMissRate > 0.001 {
			sawMisses = true
		}
	}
	if !sawMisses {
		t.Error("no benchmark exercises the I-cache; code footprints too small")
	}
}
