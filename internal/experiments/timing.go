package experiments

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// TimingSeries is the shared result shape of the performance experiments:
// one sim result per (benchmark, system) pair, with system 0 conventionally
// the baseline speedups are computed against.
type TimingSeries struct {
	SystemNames []string
	Benches     []string
	Results     [][]sim.Result // [bench][system]
}

// runTiming sweeps the carried suite over the given system factories.
// Sweep failures (including partial-mode MultiErrors naming every failed
// benchmark×system cell) propagate to the experiment's caller.
func runTiming(names []string, factories []sim.SystemFactory, opt sim.Options) (TimingSeries, error) {
	benches := workload.Carried()
	res, err := sim.Sweep(benches, factories, opt)
	if err != nil {
		return TimingSeries{}, err
	}
	bn := make([]string, len(benches))
	for i, b := range benches {
		bn[i] = b.Name
	}
	return TimingSeries{SystemNames: names, Benches: bn, Results: res}, nil
}

// Speedup returns IPC(system)/IPC(base) for one benchmark row.
func (t TimingSeries) Speedup(bench, system, base int) float64 {
	b := t.Results[bench][base].IPC()
	if b == 0 {
		return 0
	}
	return t.Results[bench][system].IPC() / b
}

// MeanSpeedup returns the geometric-mean speedup of a system over the
// baseline across benchmarks — the paper's aggregate speedup number.
func (t TimingSeries) MeanSpeedup(system, base int) float64 {
	xs := make([]float64, 0, len(t.Benches))
	for bi := range t.Benches {
		xs = append(xs, t.Speedup(bi, system, base))
	}
	return stats.GeoMean(xs)
}

// MeanIPC returns the arithmetic mean IPC of a system across benchmarks.
func (t TimingSeries) MeanIPC(system int) float64 {
	xs := make([]float64, 0, len(t.Benches))
	for bi := range t.Benches {
		xs = append(xs, t.Results[bi][system].IPC())
	}
	return stats.Mean(xs)
}

// MeanMissRate returns the arithmetic mean L1 miss rate (accesses that
// left the L1+buffer) of a system across benchmarks.
func (t TimingSeries) MeanMissRate(system int) float64 {
	xs := make([]float64, 0, len(t.Benches))
	for bi := range t.Benches {
		xs = append(xs, t.Results[bi][system].Sys.MissRate())
	}
	return stats.Mean(xs)
}

// MeanTotalHitRate returns the mean L1+buffer hit rate of a system.
func (t TimingSeries) MeanTotalHitRate(system int) float64 {
	xs := make([]float64, 0, len(t.Benches))
	for bi := range t.Benches {
		xs = append(xs, t.Results[bi][system].Sys.TotalHitRate())
	}
	return stats.Mean(xs)
}

// SpeedupTable renders per-benchmark speedups of every system against the
// base column, with a geometric-mean row.
func (t TimingSeries) SpeedupTable(title string, base int) *stats.Table {
	cols := []string{"benchmark"}
	for si, n := range t.SystemNames {
		if si == base {
			cols = append(cols, n+" IPC")
		} else {
			cols = append(cols, n)
		}
	}
	tb := stats.NewTable(title, cols...)
	for bi, b := range t.Benches {
		cells := []string{b}
		for si := range t.SystemNames {
			if si == base {
				cells = append(cells, fmt.Sprintf("%.3f", t.Results[bi][si].IPC()))
			} else {
				cells = append(cells, fmt.Sprintf("%.3f", t.Speedup(bi, si, base)))
			}
		}
		tb.AddRow(cells...)
	}
	mean := []string{"GEOMEAN"}
	for si := range t.SystemNames {
		if si == base {
			mean = append(mean, fmt.Sprintf("%.3f", t.MeanIPC(si)))
		} else {
			mean = append(mean, fmt.Sprintf("%.3f", t.MeanSpeedup(si, base)))
		}
	}
	tb.AddRow(mean...)
	return tb
}

// Chart renders the figure's aggregate as an ASCII bar chart, speedups
// against the no-assist baseline with the 1.0 line marked.
func (t TimingSeries) Chart(title string, base int) *stats.BarChart {
	c := stats.NewBarChart(title, 46).SetBaseline(1.0)
	for si, name := range t.SystemNames {
		if si == base {
			continue
		}
		c.Add(name, t.MeanSpeedup(si, base))
	}
	return c
}
