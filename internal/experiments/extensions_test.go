package experiments

import "testing"

// TestReplacementSmoke checks the Sec-5.6 associative-replacement study:
// the bias must not hurt on average (the paper expects little effect on
// this suite because 4-way conflicts are rare).
func TestReplacementSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timing sweep is slow")
	}
	r := must(Replacement(small()))
	t.Logf("\n%s", r.Table())
	if s := r.MeanSpeedup(1, 0); s < 0.99 {
		t.Errorf("4-way MCT bias hurts: %.3f", s)
	}
	if s := r.MeanSpeedup(3, 2); s < 0.99 {
		t.Errorf("8-way MCT bias hurts: %.3f", s)
	}
}

// TestRemapSmoke checks the recoloring study: conflict-only counting must
// use strictly fewer remaps than all-miss counting without losing miss
// rate (beyond noise).
func TestRemapSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("functional sweep is slow")
	}
	r := must(Remap(small()))
	t.Logf("\n%s", r.Table())
	ra, rc, ma, mc := r.RemapEfficiency()
	if rc >= ra {
		t.Errorf("conflict-only counting should remap less: %d vs %d", rc, ra)
	}
	if mc > ma+0.02 {
		t.Errorf("conflict-only miss rate %.3f much worse than all-miss %.3f", mc, ma)
	}
	if rc == 0 {
		t.Error("conflict-heavy suite should trigger at least some remaps")
	}
}

// TestCoScheduleSmoke checks the co-schedule matrix is complete and the
// friendly pair ranks above the conflict-heavy pair.
func TestCoScheduleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("shared-cache sweep is slow")
	}
	r := must(CoSchedule(small()))
	t.Logf("\n%s", r.Table())
	if len(r.Pairs) != 15 { // C(6,2)
		t.Fatalf("pairs = %d", len(r.Pairs))
	}
	rank := map[string]int{}
	for i, p := range r.Pairs {
		rank[p.A+"+"+p.B] = i
		rank[p.B+"+"+p.A] = i
	}
	// Two small-footprint jobs barely collide: go+li must rank near the
	// top. (Note the non-obvious finding the metric surfaces: pairing a
	// small-footprint job with a streaming job like swim is BAD for the
	// small job — the stream clobbers its hot lines every pass — even
	// though the pair's combined miss rate looks moderate.)
	if rank["go+li"] > 2 {
		t.Errorf("small-footprint pair go+li ranks %d; should be near the top", rank["go+li"])
	}
}
