package experiments

import (
	"strings"
	"testing"
)

func TestValidateSelection(t *testing.T) {
	if err := ValidateSelection([]string{"all"}); err != nil {
		t.Errorf("all: %v", err)
	}
	if err := ValidateSelection([]string{"fig2", "table1", "cosched"}); err != nil {
		t.Errorf("valid names rejected: %v", err)
	}
	err := ValidateSelection([]string{"fig2", "fig99"})
	if err == nil {
		t.Fatal("fig99 accepted")
	}
	if !strings.Contains(err.Error(), `"fig99"`) || !strings.Contains(err.Error(), "fig1") {
		t.Errorf("error must name the typo and the valid list, got: %v", err)
	}
}

func TestSelectResolvesAliasesWithoutDuplicates(t *testing.T) {
	got, err := Select([]string{"fig3", "table1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Slug != "fig3" {
		t.Fatalf("Select(fig3, table1) = %+v, want the single fig3 artifact", got)
	}

	all, err := Select([]string{SelectAll})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(Artifacts()) {
		t.Fatalf("Select(all) resolved %d artifacts, want %d", len(all), len(Artifacts()))
	}
}

func TestRunArtifactExecutes(t *testing.T) {
	v, err := RunArtifact("fig2", Params{MemAccesses: 2000, Instructions: 2000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := v.(Fig2Result); !ok {
		t.Fatalf("RunArtifact(fig2) returned %T, want Fig2Result", v)
	}
	if _, err := RunArtifact("bogus", Params{}); err == nil {
		t.Fatal("bogus slug accepted")
	}
}
