package experiments

import (
	"fmt"

	"repro/internal/assist"
	"repro/internal/cache"
	"repro/internal/pseudo"
	"repro/internal/sim"
	"repro/internal/stats"
)

// PseudoSystems lists the Section-5.4 comparison: the direct-mapped
// baseline, the base pseudo-associative cache, the MCT-enhanced
// pseudo-associative cache, and a true 2-way set-associative cache.
var PseudoSystems = []string{"direct-mapped", "pseudo-base", "pseudo-mct", "2-way"}

// PseudoResult carries the pseudo-associative study.
type PseudoResult struct {
	TimingSeries
}

// PseudoAssoc runs the Section-5.4 comparison. The paper reports the MCT
// policy improving the base pseudo-associative cache by 1.5% on average
// (up to 7%), landing within 0.9% of a true 2-way cache, and cutting the
// average miss rate from 10.22% to 9.83%.
func PseudoAssoc(p Params) (PseudoResult, error) {
	p = p.withDefaults()
	dm := sim.L1Config()
	twoWay := cache.Config{Name: "L1D", Size: dm.Size, LineSize: dm.LineSize, Assoc: 2}
	factories := []sim.SystemFactory{
		func() assist.System { return assist.MustNewBaseline(dm, TagBitsFull) },
		func() assist.System { return pseudo.MustNew(dm, TagBitsFull, false) },
		func() assist.System { return pseudo.MustNew(dm, TagBitsFull, true) },
		func() assist.System { return assist.MustNewBaseline(twoWay, TagBitsFull) },
	}
	opt := sim.Options{Instructions: p.Instructions, Seed: p.Seed}
	ts, err := runTiming(PseudoSystems, factories, opt)
	if err != nil {
		return PseudoResult{}, err
	}
	return PseudoResult{ts}, nil
}

// MCTOverBase returns the geometric-mean speedup of the MCT policy over
// the base pseudo-associative cache (paper: ~1.015).
func (r PseudoResult) MCTOverBase() float64 { return r.MeanSpeedup(2, 1) }

// MCTVsTwoWay returns the MCT policy's speed relative to a true 2-way
// cache (paper: ~0.991, i.e. 0.9% slower).
func (r PseudoResult) MCTVsTwoWay() float64 { return r.MeanSpeedup(2, 3) }

// MissRates returns the mean miss rates of the base and MCT
// pseudo-associative caches (paper: 10.22% and 9.83%).
func (r PseudoResult) MissRates() (base, mct float64) {
	return r.MeanMissRate(1), r.MeanMissRate(2)
}

// Table renders the Section-5.4 numbers.
func (r PseudoResult) Table() *stats.Table {
	t := r.SpeedupTable("Section 5.4: pseudo-associative cache (speedup over direct-mapped)", 0)
	base, mct := r.MissRates()
	t.AddRow("MISSRATE%",
		fmt.Sprintf("%.2f", 100*r.MeanMissRate(0)),
		fmt.Sprintf("%.2f", 100*base),
		fmt.Sprintf("%.2f", 100*mct),
		fmt.Sprintf("%.2f", 100*r.MeanMissRate(3)))
	return t
}
