package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Artifact is one entry in the experiment registry: a canonical slug, the
// selection names that reach it (some artifacts render several of the
// paper's figures — fig3 also produces table1 — so they answer to several
// names), and a type-erased runner. The registry is the shared source of
// truth for "what experiments exist": cmd/paperbench validates its
// -experiment flag against it and the mctd sweep endpoint both validates
// and executes through it, so the two front ends can never drift apart.
type Artifact struct {
	// Slug is the canonical name, also the memoization-cache slug.
	Slug string
	// Names are the selection names that run this artifact (Slug included).
	Names []string
	// Run executes the artifact at the given scale. The result is the
	// artifact's ordinary typed result value (Fig1Result etc.), returned as
	// any so callers that only encode it — the service, the cache — need no
	// per-artifact types.
	Run func(Params) (any, error)
}

// SelectAll is the selection name that runs every artifact.
const SelectAll = "all"

// artifacts lists every runnable artifact in paperbench's reporting order.
var artifacts = []Artifact{
	{Slug: "fig1", Names: []string{"fig1"}, Run: func(p Params) (any, error) { return Figure1(p) }},
	{Slug: "fig2", Names: []string{"fig2"}, Run: func(p Params) (any, error) { return Figure2(p) }},
	{Slug: "fig3", Names: []string{"fig3", "table1"}, Run: func(p Params) (any, error) { return Figure3(p) }},
	{Slug: "fig4", Names: []string{"fig4"}, Run: func(p Params) (any, error) { return Figure4(p) }},
	{Slug: "fig5", Names: []string{"fig5"}, Run: func(p Params) (any, error) { return Figure5(p) }},
	{Slug: "pseudo", Names: []string{"pseudo"}, Run: func(p Params) (any, error) { return PseudoAssoc(p) }},
	{Slug: "fig6", Names: []string{"fig6", "fig7"}, Run: func(p Params) (any, error) { return Figure6(p) }},
	{Slug: "replacement", Names: []string{"replacement"}, Run: func(p Params) (any, error) { return Replacement(p) }},
	{Slug: "remap", Names: []string{"remap"}, Run: func(p Params) (any, error) { return Remap(p) }},
	{Slug: "depth", Names: []string{"depth"}, Run: func(p Params) (any, error) { return MCTDepth(p) }},
	{Slug: "geometry", Names: []string{"geometry"}, Run: func(p Params) (any, error) { return GeometryStudy(p) }},
	{Slug: "smt", Names: []string{"smt"}, Run: func(p Params) (any, error) { return SMTStudy(p) }},
	{Slug: "icache", Names: []string{"icache"}, Run: func(p Params) (any, error) { return ICacheStudy(p) }},
	{Slug: "sweep", Names: []string{"sweep"}, Run: func(p Params) (any, error) { return ConfigSweep(p) }},
	{Slug: "cosched", Names: []string{"cosched"}, Run: func(p Params) (any, error) { return CoSchedule(p) }},
	{Slug: "mrc", Names: []string{"mrc"}, Run: func(p Params) (any, error) { return MRCStudy(p) }},
}

// Artifacts returns the registry in reporting order. The slice is shared;
// callers must not mutate it.
func Artifacts() []Artifact { return artifacts }

// SelectionNames returns every valid selection name (SelectAll plus all
// artifact names), sorted.
func SelectionNames() []string {
	out := []string{SelectAll}
	for _, a := range artifacts {
		out = append(out, a.Names...)
	}
	sort.Strings(out)
	return out
}

// ValidateSelection checks every requested name against the registry and
// reports the first unknown one along with the full valid list — the
// shared guard that keeps both paperbench and the service's sweep
// endpoint from silently running nothing on a typo.
func ValidateSelection(names []string) error {
	valid := map[string]bool{SelectAll: true}
	for _, a := range artifacts {
		for _, n := range a.Names {
			valid[n] = true
		}
	}
	for _, n := range names {
		if !valid[n] {
			return fmt.Errorf("unknown experiment %q (valid: %s)", n, strings.Join(SelectionNames(), ", "))
		}
	}
	return nil
}

// Select resolves a set of selection names to the artifacts they run, in
// registry order and without duplicates (fig3 and table1 select the same
// artifact once). It validates first, so an unknown name errors rather
// than selecting nothing.
func Select(names []string) ([]Artifact, error) {
	if err := ValidateSelection(names); err != nil {
		return nil, err
	}
	wanted := map[string]bool{}
	for _, n := range names {
		wanted[n] = true
	}
	var out []Artifact
	for _, a := range artifacts {
		hit := wanted[SelectAll]
		for _, n := range a.Names {
			hit = hit || wanted[n]
		}
		if hit {
			out = append(out, a)
		}
	}
	return out, nil
}

// RunArtifact runs the artifact with the given canonical slug.
func RunArtifact(slug string, p Params) (any, error) {
	for _, a := range artifacts {
		if a.Slug == slug {
			return a.Run(p)
		}
	}
	return nil, fmt.Errorf("unknown experiment %q (valid: %s)", slug, strings.Join(SelectionNames(), ", "))
}
