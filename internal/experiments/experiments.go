// Package experiments reproduces, one function per artifact, every table
// and figure in the paper's evaluation: Figures 1–7, Table 1, and the
// Section 5.4 pseudo-associative results. Each function returns both the
// raw series and a formatted text table; cmd/paperbench prints them and
// bench_test.go reports their headline metrics.
package experiments

import (
	"repro/internal/cache"
	"repro/internal/workload"
)

// Params scales an experiment. The paper measures 300M instructions per
// benchmark on SPEC95 reference inputs; the synthetic workloads are
// stationary, so far shorter runs give stable statistics (see DESIGN.md).
type Params struct {
	// MemAccesses drives the functional experiments (Figures 1 and 2).
	MemAccesses uint64
	// Instructions drives the timing experiments (everything else).
	Instructions uint64
	// Seed feeds the workload generators.
	Seed uint64
}

// Quick returns parameters sized for unit tests and testing.B benches.
func Quick() Params {
	return Params{MemAccesses: 150_000, Instructions: 150_000, Seed: workload.DefaultSeed}
}

// Default returns the standard reproduction scale used by cmd/paperbench
// and EXPERIMENTS.md.
func Default() Params {
	return Params{MemAccesses: 600_000, Instructions: 1_000_000, Seed: workload.DefaultSeed}
}

// withDefaults fills zero fields from Default.
func (p Params) withDefaults() Params {
	d := Default()
	if p.MemAccesses == 0 {
		p.MemAccesses = d.MemAccesses
	}
	if p.Instructions == 0 {
		p.Instructions = d.Instructions
	}
	if p.Seed == 0 {
		p.Seed = d.Seed
	}
	return p
}

// The four cache configurations of Figure 1.
var figure1Configs = []struct {
	Name string
	Cfg  cache.Config
}{
	{"16KB-DM", cache.Config{Name: "L1D", Size: 16 << 10, LineSize: 64, Assoc: 1}},
	{"16KB-2way", cache.Config{Name: "L1D", Size: 16 << 10, LineSize: 64, Assoc: 2}},
	{"64KB-DM", cache.Config{Name: "L1D", Size: 64 << 10, LineSize: 64, Assoc: 1}},
	{"64KB-2way", cache.Config{Name: "L1D", Size: 64 << 10, LineSize: 64, Assoc: 2}},
}

// TagBitsFull marks the full-tag MCT configuration in sweeps.
const TagBitsFull = 0
