package experiments

import "testing"

// TestConfigSweepSmoke checks the generalization grid: accuracy holds up
// across every configuration, miss rates fall with size, and conflict
// share falls with associativity.
func TestConfigSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("functional sweep is slow")
	}
	r := must(ConfigSweep(small()))
	t.Logf("\n%s", r.Table())
	if len(r.Cells) != 12 {
		t.Fatalf("cells = %d", len(r.Cells))
	}
	if min := r.MinOverallAcc(); min < 0.70 {
		t.Errorf("worst-case overall accuracy %.1f%% too low", 100*min)
	}
	small8, _ := r.CellAt(8, 1)
	big64, _ := r.CellAt(64, 1)
	if big64.MissRate >= small8.MissRate {
		t.Errorf("miss rate should fall with size: 8KB %.3f vs 64KB %.3f", small8.MissRate, big64.MissRate)
	}
	dm16, _ := r.CellAt(16, 1)
	w4x16, _ := r.CellAt(16, 4)
	if w4x16.ConflictShare >= dm16.ConflictShare {
		t.Errorf("conflict share should fall with associativity: DM %.3f vs 4-way %.3f",
			dm16.ConflictShare, w4x16.ConflictShare)
	}
}
