package experiments

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/amb"
	"repro/internal/assist"
	"repro/internal/cpu"
	"repro/internal/hier"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// SMTPair is one two-thread co-run measured with and without the Adaptive
// Miss Buffer.
type SMTPair struct {
	A, B string
	// BaseIPC and AMBIPC are the pair's combined instructions/cycle with a
	// bare L1 and with an 8-entry VictPref AMB.
	BaseIPC float64
	AMBIPC  float64
	// ConflictShareBase is the fraction of the bare shared cache's misses
	// classified conflict (the paper predicts sharing raises it).
	ConflictShareBase float64
}

// Speedup returns the AMB's gain on the pair.
func (p SMTPair) Speedup() float64 {
	if p.BaseIPC == 0 {
		return 0
	}
	return p.AMBIPC / p.BaseIPC
}

// SMTResult carries the Section-5.6 multithreaded timing study.
type SMTResult struct {
	Pairs []SMTPair
	// SingleGain is the geometric-mean AMB gain of the same benchmarks run
	// one at a time on the same core — the baseline for "applies to an
	// even greater extent with multithreaded caches".
	SingleGain float64
	// SingleConflictShare is the mean conflict share of the solo runs.
	SingleConflictShare float64
}

// PairGain returns the geometric-mean AMB gain across the co-runs.
func (r SMTResult) PairGain() float64 {
	xs := make([]float64, 0, len(r.Pairs))
	for _, p := range r.Pairs {
		xs = append(xs, p.Speedup())
	}
	return stats.GeoMean(xs)
}

// MeanPairConflictShare returns the mean conflict share across co-runs.
func (r SMTResult) MeanPairConflictShare() float64 {
	xs := make([]float64, 0, len(r.Pairs))
	for _, p := range r.Pairs {
		xs = append(xs, p.ConflictShareBase)
	}
	return stats.Mean(xs)
}

// smtPairs is the co-run population: conflict-light and conflict-heavy
// partners mixed, as an SMT scheduler would see.
var smtPairs = [][2]string{
	{"gcc", "swim"},
	{"li", "tomcatv"},
	{"compress", "turb3d"},
	{"vortex", "wave5"},
	{"gcc", "li"},
	{"swim", "mgrid"},
}

// SMTStudy measures the paper's Section-5.6 multithreading claim with
// timing: threads dynamically sharing the L1 raise the conflict share of
// misses, and the MCT-driven Adaptive Miss Buffer gains more on the
// shared cache than it does on the same programs run alone.
func SMTStudy(p Params) (SMTResult, error) {
	p = p.withDefaults()
	cfg := sim.L1Config()
	perThread := p.Instructions / 2

	// Solo runs (both policies) for every benchmark that appears in a
	// pair. The name set is sorted so both the execution schedule and the
	// mean/geomean aggregation below are deterministic — float reduction
	// is order-sensitive, and map iteration order is not.
	seen := map[string]bool{}
	var names []string
	for _, pr := range smtPairs {
		for _, n := range pr {
			if !seen[n] {
				seen[n] = true
				names = append(names, n)
			}
		}
	}
	sort.Strings(names)

	type solo struct{ Gain, Conf float64 }
	solos, err := runner.MapN(context.Background(), len(names),
		func(i int) string { return "smt/solo/" + names[i] },
		func(_ context.Context, i int) (solo, error) {
			b, ok := workload.ByName(names[i])
			if !ok {
				return solo{}, fmt.Errorf("experiments: smt: unknown benchmark %q", names[i])
			}
			opt := sim.Options{Instructions: perThread, Seed: p.Seed}
			base := sim.Run(b, assist.MustNewBaseline(cfg, TagBitsFull), opt)
			boost := sim.Run(b, amb.MustNew(cfg, TagBitsFull, assist.DefaultEntries, amb.VictPref), opt)
			s := solo{Gain: boost.IPC() / base.IPC()}
			if m := base.Sys.Misses; m > 0 {
				s.Conf = float64(base.Sys.ConflictMisses) / float64(m)
			}
			return s, nil
		})
	if err != nil {
		return SMTResult{}, err
	}

	pairs, err := runner.MapN(context.Background(), len(smtPairs),
		func(i int) string { return "smt/pair/" + smtPairs[i][0] + "+" + smtPairs[i][1] },
		func(_ context.Context, pi int) (SMTPair, error) {
			a, b := smtPairs[pi][0], smtPairs[pi][1]
			baseIPC, confShare := smtRun(a, b, perThread, p.Seed,
				func() assist.System { return assist.MustNewBaseline(cfg, TagBitsFull) })
			ambIPC, _ := smtRun(a, b, perThread, p.Seed,
				func() assist.System { return amb.MustNew(cfg, TagBitsFull, assist.DefaultEntries, amb.VictPref) })
			return SMTPair{A: a, B: b, BaseIPC: baseIPC, AMBIPC: ambIPC, ConflictShareBase: confShare}, nil
		})
	if err != nil {
		return SMTResult{}, err
	}

	gains := make([]float64, len(solos))
	confs := make([]float64, len(solos))
	for i, s := range solos {
		gains[i] = s.Gain
		confs[i] = s.Conf
	}
	return SMTResult{
		Pairs:               pairs,
		SingleGain:          stats.GeoMean(gains),
		SingleConflictShare: stats.Mean(confs),
	}, nil
}

// smtRun executes one two-thread co-run and returns combined IPC and the
// conflict share of the shared system's misses.
func smtRun(a, b string, perThread, seed uint64, factory sim.SystemFactory) (float64, float64) {
	ba, _ := workload.ByName(a)
	bb, _ := workload.ByName(b)
	sys := factory()
	h := hier.MustNew(hier.DefaultConfig(), sys)
	core := cpu.MustNewSMT(cpu.DefaultConfig(), h, 2)
	ms := core.Run([]trace.Stream{
		ba.Stream(seed),
		bb.Stream(seed + 1),
	}, perThread)
	ipc := (float64(ms[0].Instructions) + float64(ms[1].Instructions)) / float64(ms[0].Cycles)
	st := sys.Stats()
	conf := 0.0
	if st.Misses > 0 {
		conf = float64(st.ConflictMisses) / float64(st.Misses)
	}
	return ipc, conf
}

// Table renders the SMT study.
func (r SMTResult) Table() *stats.Table {
	t := stats.NewTable("Sec 5.6: AMB on a shared (2-thread SMT) data cache",
		"pair", "base IPC", "amb IPC", "speedup", "conflict share %")
	for _, p := range r.Pairs {
		t.AddRow(p.A+"+"+p.B,
			fmt.Sprintf("%.3f", p.BaseIPC),
			fmt.Sprintf("%.3f", p.AMBIPC),
			fmt.Sprintf("%.3f", p.Speedup()),
			fmt.Sprintf("%.1f", 100*p.ConflictShareBase))
	}
	t.AddRow("GEOMEAN-2T", "", "", fmt.Sprintf("%.3f", r.PairGain()),
		fmt.Sprintf("%.1f", 100*r.MeanPairConflictShare()))
	t.AddRow("GEOMEAN-1T", "", "", fmt.Sprintf("%.3f", r.SingleGain),
		fmt.Sprintf("%.1f", 100*r.SingleConflictShare))
	return t
}
