package experiments

import (
	"fmt"

	"repro/internal/assist"
	"repro/internal/core"
	"repro/internal/hier"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Fig4Systems lists the Figure-4 bars: no prefetching, the conventional
// next-line prefetcher, then prefetching filtered by ignoring in-, out-,
// and-, and or-conflict misses (or-conflict is the most discriminating —
// it skips the prefetch on any hint of conflict).
var Fig4Systems = []string{"no-prefetch", "pf-all", "pf-skip-in", "pf-skip-out", "pf-skip-and", "pf-skip-or"}

// Fig4Result carries the prefetch-filtering study.
type Fig4Result struct {
	TimingSeries
}

// Figure4 runs the next-line prefetch comparison. Following the paper, the
// speedups use a slower L1–L2 bus than the rest of the evaluation, the
// regime where prefetch accuracy (not just coverage) matters.
func Figure4(p Params) (Fig4Result, error) {
	p = p.withDefaults()
	cfg := sim.L1Config()
	mk := func(f core.Filter) sim.SystemFactory {
		return func() assist.System {
			return prefetch.MustNew(cfg, TagBitsFull, assist.DefaultEntries,
				prefetch.Policy{Filter: f, PrefetchOnBufferHit: true})
		}
	}
	factories := []sim.SystemFactory{
		func() assist.System { return assist.MustNewBaseline(cfg, TagBitsFull) },
		mk(core.NoFilter),
		mk(core.InConflict),
		mk(core.OutConflict),
		mk(core.AndConflict),
		mk(core.OrConflict),
	}
	opt := sim.Options{Instructions: p.Instructions, Seed: p.Seed, Hier: hier.SlowBusConfig()}
	ts, err := runTiming(Fig4Systems, factories, opt)
	if err != nil {
		return Fig4Result{}, err
	}
	return Fig4Result{ts}, nil
}

// Accuracy returns suite-average prefetch accuracy for a system index
// (useful / completed prefetches); index 0 has no prefetcher.
func (r Fig4Result) Accuracy(system int) float64 {
	var xs []float64
	for bi := range r.Benches {
		s := r.Results[bi][system].Sys
		if s.PrefetchesUseful+s.PrefetchesWasted > 0 {
			xs = append(xs, s.PrefetchAccuracy())
		}
	}
	return stats.Mean(xs)
}

// Coverage returns the suite-average fraction of would-be misses covered
// by the prefetch buffer: buffer hits / (buffer hits + remaining misses).
func (r Fig4Result) Coverage(system int) float64 {
	var xs []float64
	for bi := range r.Benches {
		s := r.Results[bi][system].Sys
		den := s.BufferHits + s.Misses
		if den > 0 {
			xs = append(xs, float64(s.BufferHits)/float64(den))
		}
	}
	return stats.Mean(xs)
}

// AccuracyGain returns the headline metric: filtered accuracy relative to
// the unfiltered prefetcher (paper: about +25%), using the or-conflict
// filter (the most discriminating).
func (r Fig4Result) AccuracyGain() float64 {
	base := r.Accuracy(1)
	if base == 0 {
		return 0
	}
	return r.Accuracy(5)/base - 1
}

// Table renders Figure 4: per-system accuracy, coverage, and mean speedup
// over no prefetching.
func (r Fig4Result) Table() *stats.Table {
	t := stats.NewTable("Figure 4: next-line prefetch strategies (slow L1-L2 bus)",
		"system", "accuracy %", "coverage %", "mean speedup")
	for si, name := range r.SystemNames {
		acc, cov := "-", "-"
		if si > 0 {
			acc = fmt.Sprintf("%.1f", 100*r.Accuracy(si))
			cov = fmt.Sprintf("%.1f", 100*r.Coverage(si))
		}
		t.AddRow(name, acc, cov, fmt.Sprintf("%.3f", r.MeanSpeedup(si, 0)))
	}
	return t
}
