package experiments

import (
	"context"
	"fmt"

	"repro/internal/assist"
	"repro/internal/assoc"
	"repro/internal/cache"
	"repro/internal/mt"
	"repro/internal/remap"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// The three Section-5.6 "other applications" the paper sketches, built and
// measured: replacement bias in associative caches, page recoloring driven
// by conflict counting, and thread co-scheduling from cross-thread
// conflict rates.

// ReplacementSystems lists the associative-replacement study's systems.
var ReplacementSystems = []string{"4way-lru", "4way-mct", "8way-lru", "8way-mct"}

// ReplacementResult carries the Sec-5.6 highly-associative-cache study.
type ReplacementResult struct {
	TimingSeries
}

// Replacement compares plain LRU with MCT-biased replacement in 4- and
// 8-way caches of the paper's L1 size. The paper predicts modest effects
// on this suite ("unfortunately, [conflict misses with 4-way or higher
// associativity are] not in general true of the workloads used in this
// paper"), which is itself the reproduction target: the bias must not
// hurt, and the gain concentrates in the conflict-heavy benchmarks.
func Replacement(p Params) (ReplacementResult, error) {
	p = p.withDefaults()
	mk := func(ways int, useMCT bool) sim.SystemFactory {
		cfg := cache.Config{Name: "L1D", Size: 16 << 10, LineSize: 64, Assoc: ways}
		return func() assist.System { return assoc.MustNew(cfg, TagBitsFull, useMCT) }
	}
	factories := []sim.SystemFactory{
		mk(4, false), mk(4, true), mk(8, false), mk(8, true),
	}
	opt := sim.Options{Instructions: p.Instructions, Seed: p.Seed}
	ts, err := runTiming(ReplacementSystems, factories, opt)
	if err != nil {
		return ReplacementResult{}, err
	}
	return ReplacementResult{ts}, nil
}

// Table renders the replacement study: IPC ratios of MCT-biased over LRU
// per associativity.
func (r ReplacementResult) Table() *stats.Table {
	t := stats.NewTable("Sec 5.6: MCT-biased replacement in associative caches",
		"benchmark", "4way mct/lru", "8way mct/lru")
	for bi, b := range r.Benches {
		t.AddRow(b,
			fmt.Sprintf("%.3f", r.Speedup(bi, 1, 0)),
			fmt.Sprintf("%.3f", r.Speedup(bi, 3, 2)))
	}
	t.AddRow("GEOMEAN",
		fmt.Sprintf("%.3f", r.MeanSpeedup(1, 0)),
		fmt.Sprintf("%.3f", r.MeanSpeedup(3, 2)))
	return t
}

// RemapRow is one benchmark's page-recoloring comparison.
type RemapRow struct {
	Bench string
	// MissRate per policy, and remap counts for the two active policies.
	MissRate      [3]float64 // no-remap, count-all, count-conflict
	RemapsAll     uint64
	RemapsConfl   uint64
	ConflictShare float64
}

// RemapResult carries the Sec-5.6 runtime-conflict-avoidance study.
type RemapResult struct {
	Rows []RemapRow
}

// Remap measures page recoloring on the carried suite: the MCT-counted
// variant should match or beat all-miss counting on miss rate while
// performing far fewer remaps (each remap is an OS page copy, so fewer is
// better at equal miss rate).
func Remap(p Params) (RemapResult, error) {
	p = p.withDefaults()
	benches := workload.Carried()
	rows, err := runner.MapN(context.Background(), len(benches),
		func(i int) string { return "remap/" + benches[i].Name },
		func(_ context.Context, bi int) (RemapRow, error) {
			b := benches[bi]
			row := RemapRow{Bench: b.Name}
			for pi, pol := range []remap.Policy{remap.NoRemap, remap.CountAll, remap.CountConflict} {
				s := remap.MustNew(sim.L1Config(), remap.DefaultConfig(), pol)
				st := trace.NewMemOnly(b.Stream(p.Seed))
				var in trace.Instr
				for n := uint64(0); n < p.MemAccesses && st.Next(&in); n++ {
					s.Access(in.Addr, in.Op == trace.Store)
				}
				stats := s.Stats()
				row.MissRate[pi] = float64(stats.Misses) / float64(stats.Accesses)
				switch pol {
				case remap.CountAll:
					row.RemapsAll = stats.Remaps
				case remap.CountConflict:
					row.RemapsConfl = stats.Remaps
					if stats.Misses > 0 {
						row.ConflictShare = float64(stats.Conflicts) / float64(stats.Misses)
					}
				}
			}
			return row, nil
		})
	if err != nil {
		return RemapResult{}, err
	}
	return RemapResult{Rows: rows}, nil
}

// Table renders the recoloring study.
func (r RemapResult) Table() *stats.Table {
	t := stats.NewTable("Sec 5.6: conflict-counted page recoloring",
		"benchmark", "miss% none", "miss% all", "miss% confl", "remaps all", "remaps confl")
	for _, row := range r.Rows {
		t.AddRow(row.Bench,
			fmt.Sprintf("%.2f", 100*row.MissRate[0]),
			fmt.Sprintf("%.2f", 100*row.MissRate[1]),
			fmt.Sprintf("%.2f", 100*row.MissRate[2]),
			fmt.Sprint(row.RemapsAll),
			fmt.Sprint(row.RemapsConfl))
	}
	return t
}

// RemapEfficiency returns the headline comparison: total remaps performed
// by the two counting policies, and their mean miss rates. The MCT
// variant's value is doing (almost) as well with (far) fewer page copies.
func (r RemapResult) RemapEfficiency() (remapsAll, remapsConfl uint64, missAll, missConfl float64) {
	var a1, a2 []float64
	for _, row := range r.Rows {
		remapsAll += row.RemapsAll
		remapsConfl += row.RemapsConfl
		a1 = append(a1, row.MissRate[1])
		a2 = append(a2, row.MissRate[2])
	}
	return remapsAll, remapsConfl, stats.Mean(a1), stats.Mean(a2)
}

// CoScheduleResult carries the Sec-5.6 multithreading study.
type CoScheduleResult struct {
	Pairs []mt.PairScore
}

// CoSchedule builds the pairwise cross-thread-conflict matrix over a
// representative subset of the suite (full 16-benchmark pairing is 120
// shared runs; the subset keeps the default scale interactive).
func CoSchedule(p Params) (CoScheduleResult, error) {
	p = p.withDefaults()
	names := []string{"tomcatv", "swim", "gcc", "go", "li", "wave5"}
	benches := make([]*workload.Benchmark, 0, len(names))
	for _, n := range names {
		if b, ok := workload.ByName(n); ok {
			benches = append(benches, b)
		}
	}
	cfg := mt.DefaultConfig()
	cfg.AccessesPerThread = p.MemAccesses / 2
	cfg.Seed = p.Seed
	pairs, err := mt.CoScheduleMatrix(benches, cfg)
	if err != nil {
		return CoScheduleResult{}, fmt.Errorf("experiments: co-schedule: %w", err)
	}
	return CoScheduleResult{Pairs: pairs}, nil
}

// Table renders the co-schedule ranking, best pairs first.
func (r CoScheduleResult) Table() *stats.Table {
	t := stats.NewTable("Sec 5.6: co-schedule ranking by cross-thread conflict rate",
		"pair", "cross-conflicts/1k acc", "combined miss %")
	for _, s := range r.Pairs {
		t.AddRow(s.A+"+"+s.B,
			fmt.Sprintf("%.2f", 1000*s.CrossConflictRate),
			fmt.Sprintf("%.2f", 100*s.CombinedMissRate))
	}
	return t
}
