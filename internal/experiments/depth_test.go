package experiments

import "testing"

func TestMCTDepthSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("functional sweep is slow")
	}
	r := must(MCTDepth(small()))
	t.Logf("\n%s", r.Table())
	d1, _ := r.PointAt(1)
	d2, _ := r.PointAt(2)
	if d2.ConflictAcc < d1.ConflictAcc {
		t.Errorf("depth 2 should not lose conflict accuracy: %.3f vs %.3f", d2.ConflictAcc, d1.ConflictAcc)
	}
	if d2.Turb3dConflictAcc <= d1.Turb3dConflictAcc+0.02 {
		t.Errorf("depth 2 should recover turb3d's order-2 conflicts: %.3f vs %.3f",
			d2.Turb3dConflictAcc, d1.Turb3dConflictAcc)
	}
}
