package experiments

import (
	"runtime"
	"testing"
)

// detParams is deliberately tiny: determinism is scale-independent, and
// the point of these tests is the runner's ordered merge, not statistics.
func detParams() Params {
	return Params{MemAccesses: 20_000, Instructions: 20_000, Seed: 12345}
}

// withGOMAXPROCS runs f under the given GOMAXPROCS, restoring the old
// value afterward. The runner sizes its worker pool from GOMAXPROCS at
// Map time, so this exercises genuinely different pool widths — including
// many workers on a single-core machine.
func withGOMAXPROCS(n int, f func()) {
	old := runtime.GOMAXPROCS(n)
	defer runtime.GOMAXPROCS(old)
	f()
}

// TestFigure1DeterministicAcrossWorkerCounts proves the runner's ordered
// merge: the same sweep on a 1-wide and an 8-wide pool must render
// byte-identical tables, no matter how completion order scrambled.
func TestFigure1DeterministicAcrossWorkerCounts(t *testing.T) {
	p := detParams()
	var serial, parallel string
	withGOMAXPROCS(1, func() { serial = must(Figure1(p)).Table().String() })
	withGOMAXPROCS(8, func() { parallel = must(Figure1(p)).Table().String() })
	if serial != parallel {
		t.Errorf("Figure1 table differs between 1 and 8 workers:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}

// TestSweepDeterministicAcrossWorkerCounts does the same for the
// configuration-grid sweep, which fans out over 12 cache configurations.
func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	p := detParams()
	var serial, parallel string
	withGOMAXPROCS(1, func() { serial = must(ConfigSweep(p)).Table().String() })
	withGOMAXPROCS(8, func() { parallel = must(ConfigSweep(p)).Table().String() })
	if serial != parallel {
		t.Errorf("ConfigSweep table differs between 1 and 8 workers:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}

// TestFigure1RepeatableAtFixedWidth guards the weaker property the wide
// pool also needs: two identical parallel invocations agree with each
// other (no shared mutable state leaks between runs).
func TestFigure1RepeatableAtFixedWidth(t *testing.T) {
	p := detParams()
	var a, b string
	withGOMAXPROCS(8, func() {
		a = must(Figure1(p)).Table().String()
		b = must(Figure1(p)).Table().String()
	})
	if a != b {
		t.Error("two identical Figure1 runs disagree")
	}
}
