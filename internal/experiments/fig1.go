package experiments

import (
	"context"
	"fmt"

	"repro/internal/cache"
	"repro/internal/classify"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Fig1Cell is one benchmark×configuration accuracy measurement.
type Fig1Cell struct {
	Config        string
	ConflictAcc   float64
	CapacityAcc   float64
	OverallAcc    float64
	ConflictShare float64
	MissRate      float64
}

// Fig1Row is one benchmark's bars across the four cache configurations.
type Fig1Row struct {
	Bench string
	Cells []Fig1Cell
}

// Fig1Result is the full Figure-1 reproduction.
type Fig1Result struct {
	Rows []Fig1Row
	// MeanConflictAcc and MeanCapacityAcc are suite averages per
	// configuration, the numbers quoted in the paper's Section 3 text
	// (88%/86% for 16KB DM, 91%/92% for 64KB DM).
	MeanConflictAcc map[string]float64
	MeanCapacityAcc map[string]float64
	MeanOverallAcc  map[string]float64
}

// Figure1 measures MCT classification accuracy (full tags) against the
// classic oracle for every benchmark on the four cache configurations.
func Figure1(p Params) (Fig1Result, error) {
	p = p.withDefaults()
	suite := workload.Suite()
	rows := make([]Fig1Row, len(suite))

	tasks := make([]runner.Task[Fig1Cell], 0, len(suite)*len(figure1Configs))
	for _, b := range suite {
		b := b
		for ci := range figure1Configs {
			cfg := figure1Configs[ci]
			tasks = append(tasks, runner.NewTask("fig1/"+b.Name+"/"+cfg.Name,
				func(context.Context) (Fig1Cell, error) {
					return figure1Cell(b, cfg.Name, cfg.Cfg, p)
				}))
		}
	}
	cells, err := runner.Map(context.Background(), tasks)
	if err != nil {
		return Fig1Result{}, err
	}
	for bi, b := range suite {
		row := Fig1Row{Bench: b.Name, Cells: make([]Fig1Cell, len(figure1Configs))}
		copy(row.Cells, cells[bi*len(figure1Configs):(bi+1)*len(figure1Configs)])
		rows[bi] = row
	}

	res := Fig1Result{
		Rows:            rows,
		MeanConflictAcc: map[string]float64{},
		MeanCapacityAcc: map[string]float64{},
		MeanOverallAcc:  map[string]float64{},
	}
	for ci, cfg := range figure1Configs {
		var conf, cap, all []float64
		for _, r := range rows {
			// Benchmarks with essentially no conflict misses under a
			// configuration contribute no conflict-accuracy sample (their
			// ratio is 0/0), matching the paper's per-benchmark bars.
			c := r.Cells[ci]
			if c.ConflictShare > 0.001 {
				conf = append(conf, c.ConflictAcc)
			}
			cap = append(cap, c.CapacityAcc)
			all = append(all, c.OverallAcc)
		}
		res.MeanConflictAcc[cfg.Name] = stats.Mean(conf)
		res.MeanCapacityAcc[cfg.Name] = stats.Mean(cap)
		res.MeanOverallAcc[cfg.Name] = stats.Mean(all)
		_ = ci
	}
	return res, nil
}

func figure1Cell(b *workload.Benchmark, name string, cfg cache.Config, p Params) (Fig1Cell, error) {
	r, err := classify.NewRun(cfg, TagBitsFull)
	if err != nil {
		return Fig1Cell{}, fmt.Errorf("experiments: figure 1 %s/%s: %w", b.Name, name, err)
	}
	s := trace.NewMemOnly(b.Stream(p.Seed))
	var in trace.Instr
	for n := uint64(0); n < p.MemAccesses && s.Next(&in); n++ {
		r.Access(in.Addr, in.Op == trace.Store)
	}
	acc := r.Acc
	return Fig1Cell{
		Config:        name,
		ConflictAcc:   acc.ConflictAccuracy(),
		CapacityAcc:   acc.CapacityAccuracy(),
		OverallAcc:    acc.OverallAccuracy(),
		ConflictShare: acc.ConflictShare(),
		MissRate:      r.CC.Cache().Stats().MissRate(),
	}, nil
}

// Table renders the Figure-1 data as text.
func (r Fig1Result) Table() *stats.Table {
	cols := []string{"benchmark"}
	for _, c := range figure1Configs {
		cols = append(cols, c.Name+" conf%", c.Name+" cap%")
	}
	t := stats.NewTable("Figure 1: MCT classification accuracy (full tags)", cols...)
	for _, row := range r.Rows {
		cells := []string{row.Bench}
		for _, c := range row.Cells {
			cells = append(cells, fmt.Sprintf("%.1f", 100*c.ConflictAcc), fmt.Sprintf("%.1f", 100*c.CapacityAcc))
		}
		t.AddRow(cells...)
	}
	mean := []string{"MEAN"}
	for _, c := range figure1Configs {
		mean = append(mean,
			fmt.Sprintf("%.1f", 100*r.MeanConflictAcc[c.Name]),
			fmt.Sprintf("%.1f", 100*r.MeanCapacityAcc[c.Name]))
	}
	t.AddRow(mean...)
	return t
}
