package experiments

import (
	"context"
	"fmt"

	"repro/internal/mrc"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// mrcRates are the sampling rates the study validates against the exact
// (rate-1, unbounded) Mattson profile. 0.1 is the conservative setting;
// 0.01 is SHARDS' fixed-rate operating point and the service default.
var mrcRates = []float64{0.1, 0.01}

// mrcLadder is the capacity ladder (in cache lines) the curves are
// compared over: 4KB through 512KB at 64B lines, one point per octave.
var mrcLadder = []uint64{64, 128, 256, 512, 1024, 2048, 4096, 8192}

// MRCCell is one benchmark×rate error measurement: the sampled curve's
// mean and worst absolute miss-ratio error against the exact curve over
// the ladder, plus how many references the sampler actually processed.
type MRCCell struct {
	Rate    float64
	MAE     float64
	MaxErr  float64
	Sampled uint64
}

// MRCRow is one benchmark: its exact curve endpoints and the per-rate
// error cells.
type MRCRow struct {
	Bench string
	// ExactSmall and ExactLarge anchor the row: the true miss ratio at
	// the ladder's first (4KB) and last (512KB) capacities.
	ExactSmall float64
	ExactLarge float64
	Cells      []MRCCell
}

// MRCResult is the sampled-MRC validation study: how far SHARDS-style
// spatial sampling strays from exact stack distances on this suite, at
// the rates the /v1/mrc endpoint actually serves.
type MRCResult struct {
	Rows []MRCRow
	// MeanMAE and WorstErr aggregate per rate across the suite (keyed by
	// the rate formatted as its config literal, e.g. "0.01").
	MeanMAE  map[string]float64
	WorstErr map[string]float64
}

// rateKey formats a sampling rate as its aggregate-map key.
func rateKey(r float64) string { return fmt.Sprintf("%g", r) }

// MRCStudy runs every benchmark once through an exact profiler and once
// per sampled rate (all in a single pass over the trace), then scores
// each sampled curve against the exact one.
func MRCStudy(p Params) (MRCResult, error) {
	p = p.withDefaults()
	suite := workload.Suite()

	tasks := make([]runner.Task[MRCRow], 0, len(suite))
	for _, b := range suite {
		b := b
		tasks = append(tasks, runner.NewTask("mrc/"+b.Name,
			func(context.Context) (MRCRow, error) {
				return mrcRow(b, p)
			}))
	}
	rows, err := runner.Map(context.Background(), tasks)
	if err != nil {
		return MRCResult{}, err
	}

	res := MRCResult{
		Rows:     rows,
		MeanMAE:  map[string]float64{},
		WorstErr: map[string]float64{},
	}
	for ri, r := range mrcRates {
		var maes []float64
		worst := 0.0
		for _, row := range rows {
			c := row.Cells[ri]
			maes = append(maes, c.MAE)
			if c.MaxErr > worst {
				worst = c.MaxErr
			}
		}
		res.MeanMAE[rateKey(r)] = stats.Mean(maes)
		res.WorstErr[rateKey(r)] = worst
	}
	return res, nil
}

func mrcRow(b *workload.Benchmark, p Params) (MRCRow, error) {
	exact := mrc.New(mrc.Config{Rate: 1, MaxSampled: -1})
	sampled := make([]*mrc.Profiler, len(mrcRates))
	for i, r := range mrcRates {
		sampled[i] = mrc.New(mrc.Config{Rate: r})
	}

	s := trace.NewMemOnly(b.Stream(p.Seed))
	var in trace.Instr
	for n := uint64(0); n < p.MemAccesses && s.Next(&in); n++ {
		exact.Observe(in.Addr)
		for _, sp := range sampled {
			sp.Observe(in.Addr)
		}
	}

	truth := exact.Curve(mrcLadder)
	row := MRCRow{
		Bench:      b.Name,
		ExactSmall: truth[0].MissRatio,
		ExactLarge: truth[len(truth)-1].MissRatio,
		Cells:      make([]MRCCell, len(mrcRates)),
	}
	for i, sp := range sampled {
		est := sp.Curve(mrcLadder)
		var sum, max float64
		for j := range truth {
			err := est[j].MissRatio - truth[j].MissRatio
			if err < 0 {
				err = -err
			}
			sum += err
			if err > max {
				max = err
			}
		}
		row.Cells[i] = MRCCell{
			Rate:    mrcRates[i],
			MAE:     sum / float64(len(truth)),
			MaxErr:  max,
			Sampled: sp.SampledRefs(),
		}
	}
	return row, nil
}

// Table renders the sampled-MRC validation study.
func (r MRCResult) Table() *stats.Table {
	cols := []string{"benchmark", "exact 4KB", "exact 512KB"}
	for _, rate := range mrcRates {
		k := rateKey(rate)
		cols = append(cols, "mae@"+k, "max@"+k)
	}
	t := stats.NewTable("Extension: sampled MRC vs exact stack distances (64B lines, 4KB..512KB)", cols...)
	for _, row := range r.Rows {
		cells := []string{row.Bench,
			fmt.Sprintf("%.3f", row.ExactSmall),
			fmt.Sprintf("%.3f", row.ExactLarge)}
		for _, c := range row.Cells {
			cells = append(cells,
				fmt.Sprintf("%.4f", c.MAE),
				fmt.Sprintf("%.4f", c.MaxErr))
		}
		t.AddRow(cells...)
	}
	mean := []string{"MEAN", "", ""}
	for _, rate := range mrcRates {
		k := rateKey(rate)
		mean = append(mean,
			fmt.Sprintf("%.4f", r.MeanMAE[k]),
			fmt.Sprintf("%.4f", r.WorstErr[k]))
	}
	t.AddRow(mean...)
	return t
}
