package experiments

import (
	"context"
	"fmt"

	"repro/internal/cache"
	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// DepthPoint is the suite-aggregate accuracy of a DeepMCT at one history
// depth.
type DepthPoint struct {
	Depth       int
	ConflictAcc float64
	CapacityAcc float64
	OverallAcc  float64
	// Turb3dConflictAcc tracks the benchmark with the known order-2
	// conflicts (three planes round-robin) that the depth-1 table is
	// blind to.
	Turb3dConflictAcc float64
	// StorageBits is the table cost at 10-bit tags.
	StorageBits int
}

// DepthResult is the eviction-history-depth study: the extension the
// paper names but does not evaluate.
type DepthResult struct {
	Points []DepthPoint
}

// MCTDepth sweeps the DeepMCT's history depth on the paper's 16KB DM
// cache. The expected shape: depth 2 recovers most of the conflict
// accuracy the one-deep table loses to higher-order rotations (turb3d),
// with diminishing returns past depth 3 and linear storage growth.
func MCTDepth(p Params) (DepthResult, error) {
	p = p.withDefaults()
	cfg := cache.Config{Name: "L1D", Size: 16 << 10, LineSize: 64, Assoc: 1}
	depths := []int{1, 2, 3, 4}
	points, err := runner.MapN(context.Background(), len(depths),
		func(i int) string { return fmt.Sprintf("depth/%d", depths[i]) },
		func(_ context.Context, di int) (DepthPoint, error) {
			depth := depths[di]
			var agg classify.Accuracy
			var turb classify.Accuracy
			for _, b := range workload.Suite() {
				acc := depthRun(b, cfg, depth, p)
				agg.Merge(acc)
				if b.Name == "turb3d" {
					turb = acc
				}
			}
			return DepthPoint{
				Depth:             depth,
				ConflictAcc:       agg.ConflictAccuracy(),
				CapacityAcc:       agg.CapacityAccuracy(),
				OverallAcc:        agg.OverallAccuracy(),
				Turb3dConflictAcc: turb.ConflictAccuracy(),
				StorageBits:       core.MustNewDeep(core.Config{Sets: cfg.Sets(), TagBits: 10}, depth).StorageBits(0),
			}, nil
		})
	if err != nil {
		return DepthResult{}, err
	}
	return DepthResult{Points: points}, nil
}

// depthRun plays one benchmark through cache + DeepMCT + oracle in
// lockstep. The oracle's conflict definition is widened to match the
// depth: a miss is an order-≤k conflict iff it hits a fully-associative
// LRU cache of the same capacity, which is the classic definition the
// paper's depth-1 table approximates; we keep that single oracle so the
// depths are compared against one fixed ground truth.
func depthRun(b *workload.Benchmark, cfg cache.Config, depth int, p Params) classify.Accuracy {
	l1 := cache.MustNew(cfg)
	mct := core.MustNewDeep(core.Config{Sets: cfg.Sets()}, depth)
	oracle := classify.MustNewOracle(cfg)
	geom := l1.Geometry()
	var acc classify.Accuracy

	s := trace.NewMemOnly(b.Stream(p.Seed))
	var in trace.Instr
	for n := uint64(0); n < p.MemAccesses && s.Next(&in); n++ {
		isStore := in.Op == trace.Store
		typ := mem.Load
		if isStore {
			typ = mem.Store
		}
		hit := l1.Access(in.Addr, typ)
		kind := oracle.Observe(in.Addr, hit)
		if hit {
			continue
		}
		set, tag := geom.Set(in.Addr), geom.Tag(in.Addr)
		_, class := mct.ClassifyMiss(set, tag)
		acc.Record(kind, class)
		ev := l1.Fill(in.Addr, isStore, class == core.Conflict)
		if ev.Occurred {
			mct.RecordEviction(geom.SetOfLine(ev.Line), geom.TagOfLine(ev.Line))
		}
	}
	return acc
}

// Table renders the depth sweep.
func (r DepthResult) Table() *stats.Table {
	t := stats.NewTable("Extension: eviction-history depth (16KB DM, 10-bit tags for storage)",
		"depth", "conflict acc %", "capacity acc %", "overall %", "turb3d conf %", "storage (KB)")
	for _, pt := range r.Points {
		t.AddRow(fmt.Sprint(pt.Depth),
			fmt.Sprintf("%.1f", 100*pt.ConflictAcc),
			fmt.Sprintf("%.1f", 100*pt.CapacityAcc),
			fmt.Sprintf("%.1f", 100*pt.OverallAcc),
			fmt.Sprintf("%.1f", 100*pt.Turb3dConflictAcc),
			fmt.Sprintf("%.2f", float64(pt.StorageBits)/8192))
	}
	return t
}

// PointAt returns the point for a depth.
func (r DepthResult) PointAt(depth int) (DepthPoint, bool) {
	for _, pt := range r.Points {
		if pt.Depth == depth {
			return pt, true
		}
	}
	return DepthPoint{}, false
}
