package runner

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"strings"
	"testing"
)

type fakeParams struct {
	MemAccesses  uint64
	Instructions uint64
	Seed         uint64
}

type fakeResult struct {
	Name   string
	Values []float64
}

func TestKeyStableAndSensitive(t *testing.T) {
	p := fakeParams{MemAccesses: 1000, Instructions: 2000, Seed: 42}
	k1, err := Key("fig1", p)
	if err != nil {
		t.Fatal(err)
	}
	k2, _ := Key("fig1", p)
	if k1 != k2 {
		t.Fatal("key must be deterministic for equal inputs")
	}
	if len(k1) != 64 {
		t.Fatalf("key should be sha256 hex, got %d chars", len(k1))
	}
	// Any component change must change the key.
	if k, _ := Key("fig2", p); k == k1 {
		t.Fatal("slug must be part of the key")
	}
	p2 := p
	p2.Seed = 43
	if k, _ := Key("fig1", p2); k == k1 {
		t.Fatal("seed must be part of the key")
	}
	p3 := p
	p3.MemAccesses = 1001
	if k, _ := Key("fig1", p3); k == k1 {
		t.Fatal("scale must be part of the key")
	}
}

func TestMemoHitMissRoundTrip(t *testing.T) {
	c := Open(t.TempDir())
	p := fakeParams{MemAccesses: 10, Seed: 1}
	calls := 0
	compute := func() (fakeResult, error) {
		calls++
		return fakeResult{Name: "gcc", Values: []float64{1.5, 2.25}}, nil
	}

	v1, hit, err := Memo(c, "fig1", p, compute)
	if err != nil || hit {
		t.Fatalf("first call: hit=%v err=%v", hit, err)
	}
	v2, hit, err := Memo(c, "fig1", p, compute)
	if err != nil || !hit {
		t.Fatalf("second call: hit=%v err=%v", hit, err)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	a, _ := json.Marshal(v1)
	b, _ := json.Marshal(v2)
	if string(a) != string(b) {
		t.Fatalf("cached result differs: %s vs %s", a, b)
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("stats = %d hits / %d misses", hits, misses)
	}
}

func TestMemoDistinctParamsDistinctCells(t *testing.T) {
	c := Open(t.TempDir())
	for _, seed := range []uint64{1, 2, 3} {
		seed := seed
		v, hit, err := Memo(c, "cell", fakeParams{Seed: seed}, func() (uint64, error) { return seed * 100, nil })
		if err != nil || hit {
			t.Fatalf("seed %d: hit=%v err=%v", seed, hit, err)
		}
		if v != seed*100 {
			t.Fatalf("seed %d: v=%d", seed, v)
		}
	}
	// Re-read all three: every one must hit with its own value.
	for _, seed := range []uint64{1, 2, 3} {
		v, hit, err := Memo(c, "cell", fakeParams{Seed: seed}, func() (uint64, error) { return 0, nil })
		if err != nil || !hit || v != seed*100 {
			t.Fatalf("seed %d reread: v=%d hit=%v err=%v", seed, v, hit, err)
		}
	}
}

func TestMemoNilCacheAlwaysComputes(t *testing.T) {
	var c *Cache
	calls := 0
	for i := 0; i < 2; i++ {
		v, hit, err := Memo(c, "x", 1, func() (int, error) { calls++; return 7, nil })
		if err != nil || hit || v != 7 {
			t.Fatalf("nil cache: v=%d hit=%v err=%v", v, hit, err)
		}
	}
	if calls != 2 {
		t.Fatalf("nil cache must always compute, ran %d", calls)
	}
}

func TestMemoCorruptEntryRecomputes(t *testing.T) {
	dir := t.TempDir()
	c := Open(dir)
	p := fakeParams{Seed: 9}
	if _, _, err := Memo(c, "x", p, func() (int, error) { return 5, nil }); err != nil {
		t.Fatal(err)
	}
	// Corrupt every entry on disk.
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if err := os.WriteFile(filepath.Join(dir, e.Name()), []byte("{garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	v, hit, err := Memo(Open(dir), "x", p, func() (int, error) { return 5, nil })
	if err != nil || hit || v != 5 {
		t.Fatalf("corrupt entry: v=%d hit=%v err=%v", v, hit, err)
	}
}

func TestMemoSlugMismatchMisses(t *testing.T) {
	// Paranoia check: even if two slugs somehow produced one key, the
	// envelope's slug field guards the entry. Simulate by writing an entry
	// under slug A's key with slug B inside.
	dir := t.TempDir()
	c := Open(dir)
	key, err := Key("a", 1)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := json.Marshal(entry{Schema: cacheSchema, Slug: "b", Result: json.RawMessage("3")})
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, key+".json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.load("a", key); ok {
		t.Fatal("entry with mismatched slug must miss")
	}
}

func TestMemoRoundTripsEvenOnMiss(t *testing.T) {
	// The returned value is the JSON round-trip of the computed one, so
	// miss-path and hit-path output are bit-identical. A type with an
	// unexported field demonstrates: the field vanishes on BOTH paths.
	type leaky struct {
		Public int
		secret int
	}
	c := Open(t.TempDir())
	v, _, err := Memo(c, "leak", 1, func() (leaky, error) { return leaky{Public: 3, secret: 8}, nil })
	if err != nil {
		t.Fatal(err)
	}
	if v.secret != 0 || v.Public != 3 {
		t.Fatalf("miss path must return the round-tripped value, got %+v", v)
	}
}

func TestCodeVersionNonEmpty(t *testing.T) {
	if CodeVersion() == "" {
		t.Fatal("code version must never be empty")
	}
}

func TestCodeVersionFromVCSStamp(t *testing.T) {
	bi := &debug.BuildInfo{Settings: []debug.BuildSetting{
		{Key: "vcs.revision", Value: "abc123"},
	}}
	noDigest := func() (string, bool) { t.Fatal("digest must not run when VCS is stamped"); return "", false }
	if got := codeVersionFrom(bi, noDigest); got != "abc123" {
		t.Errorf("stamped clean = %q", got)
	}
	bi.Settings = append(bi.Settings, debug.BuildSetting{Key: "vcs.modified", Value: "true"})
	if got := codeVersionFrom(bi, noDigest); got != "abc123+dirty" {
		t.Errorf("stamped dirty = %q", got)
	}
}

// TestCodeVersionUnversionedCollision is the regression test for the
// stale-replay bug: without a VCS stamp, every build used to share the
// literal key "unversioned", so two different code states could collide in
// the cache and replay each other's results. The executable digest must
// now separate them.
func TestCodeVersionUnversionedCollision(t *testing.T) {
	dir := t.TempDir()
	binA := filepath.Join(dir, "a")
	binB := filepath.Join(dir, "b")
	if err := os.WriteFile(binA, []byte("code state A"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(binB, []byte("code state B"), 0o755); err != nil {
		t.Fatal(err)
	}
	digestOf := func(path string) func() (string, bool) {
		return func() (string, bool) { return fileDigest(path) }
	}
	vA := codeVersionFrom(nil, digestOf(binA))
	vB := codeVersionFrom(nil, digestOf(binB))
	if vA == "unversioned" || vB == "unversioned" {
		t.Fatalf("digest fallback not used: %q / %q", vA, vB)
	}
	if vA == vB {
		t.Fatalf("two different binaries share code version %q: cache entries would collide", vA)
	}
	// Same binary -> same version (the cache still works across runs of
	// one build).
	if again := codeVersionFrom(nil, digestOf(binA)); again != vA {
		t.Errorf("same binary gave different versions: %q vs %q", vA, again)
	}
	// Settings present but no vcs.revision behaves like nil build info.
	bi := &debug.BuildInfo{Settings: []debug.BuildSetting{{Key: "GOOS", Value: "linux"}}}
	if got := codeVersionFrom(bi, digestOf(binA)); got != vA {
		t.Errorf("unstamped build info gave %q, want %q", got, vA)
	}
}

func TestCodeVersionLastResort(t *testing.T) {
	failing := func() (string, bool) { return "", false }
	if got := codeVersionFrom(nil, failing); got != "unversioned" {
		t.Errorf("last resort = %q, want bare literal", got)
	}
}

// TestCodeVersionRunningBinary: the live path must produce a non-colliding
// version for this (unstamped) test binary.
func TestCodeVersionRunningBinary(t *testing.T) {
	v := CodeVersion()
	if v == "" {
		t.Fatal("empty code version")
	}
	if v == "unversioned" {
		// The test binary definitely exists on disk, so the digest
		// fallback must have produced a suffix unless the build is
		// VCS-stamped (in which case v is the revision, not the literal).
		t.Error("running binary resolved to the bare 'unversioned' literal; digest fallback failed")
	}
}

// --- Quarantine (corrupt-entry handling) ----------------------------------

func TestQuarantineCorruptEnvelope(t *testing.T) {
	dir := t.TempDir()
	c := Open(dir)
	p := fakeParams{Seed: 11}
	if _, _, err := Memo(c, "q", p, func() (int, error) { return 3, nil }); err != nil {
		t.Fatal(err)
	}
	key, _ := Key("q", p)
	if err := os.WriteFile(filepath.Join(dir, key+".json"), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	c2 := Open(dir)
	var logged []string
	c2.SetLogf(func(format string, args ...any) {
		logged = append(logged, fmt.Sprintf(format, args...))
	})
	v, hit, err := Memo(c2, "q", p, func() (int, error) { return 3, nil })
	if err != nil || hit || v != 3 {
		t.Fatalf("corrupt entry: v=%d hit=%v err=%v", v, hit, err)
	}

	// The corrupt entry moved to quarantine with its reason sidecar; the
	// recompute stored a fresh entry under the original path.
	qpath := filepath.Join(dir, QuarantineDirName, key+".json")
	raw, err := os.ReadFile(qpath)
	if err != nil {
		t.Fatalf("quarantined entry missing: %v", err)
	}
	if string(raw) != "{torn" {
		t.Errorf("quarantine must preserve the evidence, got %q", raw)
	}
	reason, err := os.ReadFile(qpath + ".reason")
	if err != nil {
		t.Fatalf("reason sidecar missing: %v", err)
	}
	if !strings.Contains(string(reason), "undecodable") {
		t.Errorf("reason = %q", reason)
	}
	if c2.Quarantined() != 1 {
		t.Errorf("Quarantined() = %d, want 1", c2.Quarantined())
	}
	if len(logged) == 0 || !strings.Contains(logged[len(logged)-1], "quarantined") {
		t.Errorf("quarantine not logged: %v", logged)
	}
	if _, hit, _ := Memo(Open(dir), "q", p, func() (int, error) { return 3, nil }); !hit {
		t.Error("recomputed entry should hit on the next lookup")
	}
}

func TestQuarantineSlugMismatch(t *testing.T) {
	dir := t.TempDir()
	key, _ := Key("a", 1)
	data, _ := json.Marshal(entry{Schema: cacheSchema, Slug: "b", Result: json.RawMessage("3")})
	if err := os.WriteFile(filepath.Join(dir, key+".json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	c := Open(dir)
	if _, ok := c.load("a", key); ok {
		t.Fatal("mismatched slug must miss")
	}
	if c.Quarantined() != 1 {
		t.Errorf("Quarantined() = %d, want 1", c.Quarantined())
	}
	if _, err := os.Stat(filepath.Join(dir, QuarantineDirName, key+".json")); err != nil {
		t.Errorf("mismatched entry not quarantined: %v", err)
	}
}

func TestSchemaMismatchIsCleanMissNotQuarantine(t *testing.T) {
	// A schema bump is the documented migration path: old entries must
	// miss silently, not be treated as corruption.
	dir := t.TempDir()
	key, _ := Key("a", 1)
	data, _ := json.Marshal(entry{Schema: cacheSchema + 1, Slug: "a", Result: json.RawMessage("3")})
	if err := os.WriteFile(filepath.Join(dir, key+".json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	c := Open(dir)
	if _, ok := c.load("a", key); ok {
		t.Fatal("newer-schema entry must miss")
	}
	if c.Quarantined() != 0 {
		t.Errorf("schema mismatch quarantined %d entries; must be a clean miss", c.Quarantined())
	}
	if _, err := os.Stat(filepath.Join(dir, key+".json")); err != nil {
		t.Errorf("schema-mismatched entry must stay in place: %v", err)
	}
}

func TestQuarantineUndecodableResultType(t *testing.T) {
	// The envelope is fine but the result no longer decodes into the
	// caller's type (a type change without a code-version bump): Memo must
	// quarantine and recompute rather than fail.
	dir := t.TempDir()
	c := Open(dir)
	if _, _, err := Memo(c, "typed", 7, func() (string, error) { return "text", nil }); err != nil {
		t.Fatal(err)
	}
	c2 := Open(dir)
	v, hit, err := Memo(c2, "typed", 7, func() (int, error) { return 42, nil })
	if err != nil || hit || v != 42 {
		t.Fatalf("type-changed entry: v=%d hit=%v err=%v", v, hit, err)
	}
	if c2.Quarantined() != 1 {
		t.Errorf("Quarantined() = %d, want 1", c2.Quarantined())
	}
}

func TestNilCacheQuarantineAccessors(t *testing.T) {
	var c *Cache
	c.SetLogf(func(string, ...any) {})
	if c.Quarantined() != 0 {
		t.Error("nil cache Quarantined() != 0")
	}
}

// TestRawAccessorsCounterSemantics: the cluster layer's accounting
// invariant — summing misses across a fleet equals cells computed —
// depends on LoadRaw counting hits but never misses (a peek is not a
// commitment to compute) and StoreRaw counting nothing (a cross-node
// fill did its work elsewhere).
func TestRawAccessorsCounterSemantics(t *testing.T) {
	c := Open(t.TempDir())
	key, err := Key("raw-slug", map[string]int{"n": 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.LoadRaw("raw-slug", key); ok {
		t.Fatal("LoadRaw hit on empty cache")
	}
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Fatalf("after missed LoadRaw: hits=%d misses=%d, want 0/0 (a peek is not a miss)", h, m)
	}
	if err := c.StoreRaw("raw-slug", key, json.RawMessage(`{"v":7}`)); err != nil {
		t.Fatal(err)
	}
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Fatalf("after StoreRaw: hits=%d misses=%d, want 0/0 (remote fill is not local work)", h, m)
	}
	raw, ok := c.LoadRaw("raw-slug", key)
	if !ok || string(raw) != `{"v":7}` {
		t.Fatalf("LoadRaw after fill = (%q, %v)", raw, ok)
	}
	if h, m := c.Stats(); h != 1 || m != 0 {
		t.Fatalf("after hit LoadRaw: hits=%d misses=%d, want 1/0", h, m)
	}
	// The filled entry replays through Memo identically — the fleet-wide
	// cache-coherence property in miniature.
	v, hit, err := Memo(c, "raw-slug", map[string]int{"n": 7}, func() (map[string]int, error) {
		t.Fatal("Memo recomputed a remotely filled cell")
		return nil, nil
	})
	if err != nil || !hit || v["v"] != 7 {
		t.Fatalf("Memo over filled entry = (%v, %v, %v)", v, hit, err)
	}
	// Nil cache: raw accessors are as safe as the rest of the API.
	var nc *Cache
	if _, ok := nc.LoadRaw("s", key); ok {
		t.Error("nil cache LoadRaw hit")
	}
	if err := nc.StoreRaw("s", key, json.RawMessage(`{}`)); err != nil {
		t.Errorf("nil cache StoreRaw: %v", err)
	}
}
