package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/durable"
)

// cacheSchema versions the on-disk entry format itself. Bump it when the
// envelope or key derivation changes; every old entry then misses cleanly.
const cacheSchema = 1

// DefaultCacheDir is where cmd/paperbench memoizes experiment results,
// relative to the working directory.
const DefaultCacheDir = "results/cache"

// QuarantineDirName is the subdirectory of the cache dir that corrupt
// entries are moved into for post-mortem inspection.
const QuarantineDirName = "quarantine"

// Cache is an on-disk memoization store for experiment results. Entries
// are JSON files named by the hex key, written atomically (temp file +
// rename) so a crashed or concurrent run never leaves a torn entry. A nil
// *Cache is valid and always misses — the -nocache escape hatch.
//
// Corrupt or unreadable entries (a torn write from a crashed kernel, a
// truncated disk, manual editing) are not silently overwritten: load
// quarantines them into QuarantineDirName with a sidecar .reason file and
// logs why, so torn writes stay diagnosable while the run recomputes the
// cell cleanly.
type Cache struct {
	dir     string
	mkdir   sync.Once
	mkdirOK bool
	logf    func(format string, args ...any)

	hits        atomic.Uint64
	misses      atomic.Uint64
	quarantined atomic.Uint64
}

// Open returns a Cache rooted at dir. The directory is created lazily on
// the first store, so read-only usage never touches the filesystem.
func Open(dir string) *Cache { return &Cache{dir: dir} }

// SetLogf installs the cache's diagnostic logger (quarantine reasons and
// similar non-fatal conditions). Install before the cache is used; nil
// (the default) discards diagnostics.
func (c *Cache) SetLogf(logf func(format string, args ...any)) {
	if c != nil {
		c.logf = logf
	}
}

func (c *Cache) log(format string, args ...any) {
	if c != nil && c.logf != nil {
		c.logf(format, args...)
	}
}

// Stats returns the cache's hit/miss counts for this process. A miss
// is a successfully computed (and therefore stored or storable) cell —
// failed or canceled computations count neither, so misses across a
// fleet sum to exactly the number of cells computed.
func (c *Cache) Stats() (hits, misses uint64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}

// Quarantined returns how many corrupt entries this process moved to the
// quarantine directory.
func (c *Cache) Quarantined() uint64 {
	if c == nil {
		return 0
	}
	return c.quarantined.Load()
}

// Key derives the stable cache key for an experiment cell: a SHA-256 over
// the cache schema, the code version, the experiment slug, and the
// canonical JSON encoding of payload (the experiment's Params — scale,
// seed, everything that changes the result). encoding/json writes struct
// fields in declaration order and map keys sorted, so the encoding — and
// therefore the key — is deterministic across runs. DESIGN.md documents
// the scheme.
func Key(slug string, payload any) (string, error) {
	enc, err := json.Marshal(payload)
	if err != nil {
		return "", fmt.Errorf("runner: encoding cache key payload for %q: %w", slug, err)
	}
	h := sha256.New()
	fmt.Fprintf(h, "schema=%d\x00code=%s\x00slug=%s\x00", cacheSchema, CodeVersion(), slug)
	h.Write(enc)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// codeVersion is resolved once from build info: the VCS revision (plus a
// dirty marker) when Go stamped one, else "unversioned-" plus a digest of
// the running executable itself. Results computed by different code
// versions therefore never collide — including unversioned builds (go run,
// test binaries, builds outside a VCS checkout), which previously all
// shared the literal key "unversioned" and could replay stale results
// across code changes. Only if the binary cannot even be re-read does the
// version degrade to the bare literal, where -nocache remains the escape
// hatch.
var codeVersionOnce = sync.OnceValue(func() string {
	bi, _ := debug.ReadBuildInfo()
	return codeVersionFrom(bi, executableDigest)
})

// codeVersionFrom derives the code-version string from build info, falling
// back to digest (the running binary's content hash) when no VCS revision
// was stamped. Split from codeVersionOnce so tests can exercise every
// fallback branch.
func codeVersionFrom(bi *debug.BuildInfo, digest func() (string, bool)) string {
	if bi != nil {
		rev, modified := "", ""
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				if s.Value == "true" {
					modified = "+dirty"
				}
			}
		}
		if rev != "" {
			return rev + modified
		}
	}
	if d, ok := digest(); ok {
		return "unversioned-" + d
	}
	return "unversioned"
}

// executableDigest hashes the running binary, so two different unversioned
// builds (different code states) get different cache keys.
func executableDigest() (string, bool) {
	exe, err := os.Executable()
	if err != nil {
		return "", false
	}
	return fileDigest(exe)
}

// fileDigest returns a short hex SHA-256 of the file's contents.
func fileDigest(path string) (string, bool) {
	f, err := os.Open(path)
	if err != nil {
		return "", false
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", false
	}
	return hex.EncodeToString(h.Sum(nil))[:16], true
}

// CodeVersion returns the code-version component of cache keys.
func CodeVersion() string { return codeVersionOnce() }

// entry is the on-disk envelope around a cached result.
type entry struct {
	Schema int             `json:"schema"`
	Slug   string          `json:"slug"`
	Result json.RawMessage `json:"result"`
}

// path maps a key to its file.
func (c *Cache) path(key string) string { return filepath.Join(c.dir, key+".json") }

// quarantine moves a corrupt entry into the quarantine subdirectory with
// a sidecar .reason file instead of leaving it in place to be silently
// overwritten. Never fatal: on any filesystem error the entry is left
// where it is and only the log records the problem.
func (c *Cache) quarantine(key, reason string) {
	c.quarantined.Add(1)
	qdir := filepath.Join(c.dir, QuarantineDirName)
	dst := filepath.Join(qdir, key+".json")
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		c.log("runner: cache entry %s is corrupt (%s) but quarantine dir failed: %v", key, reason, err)
		return
	}
	if err := os.Rename(c.path(key), dst); err != nil {
		c.log("runner: cache entry %s is corrupt (%s) but quarantine move failed: %v", key, reason, err)
		return
	}
	// Best-effort sidecar: the move above already preserved the evidence.
	_ = os.WriteFile(dst+".reason", []byte(reason+"\n"), 0o644)
	c.log("runner: quarantined corrupt cache entry %s: %s", key, reason)
}

// load reads a raw cached result; ok is false on miss or any corruption.
// Corruption (unreadable file, bad JSON, impossible slug mismatch) is
// quarantined for diagnosis and then treated as a miss, never fatal. A
// schema mismatch is a clean miss: it is the documented format-migration
// path, not a torn write.
func (c *Cache) load(slug, key string) (json.RawMessage, bool) {
	if c == nil {
		return nil, false
	}
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		if !os.IsNotExist(err) {
			c.quarantine(key, fmt.Sprintf("unreadable: %v", err))
		}
		return nil, false
	}
	var e entry
	if uerr := json.Unmarshal(data, &e); uerr != nil {
		c.quarantine(key, fmt.Sprintf("undecodable entry envelope: %v", uerr))
		return nil, false
	}
	if e.Schema != cacheSchema {
		return nil, false
	}
	if e.Slug != slug {
		c.quarantine(key, fmt.Sprintf("slug mismatch: entry says %q, lookup wants %q", e.Slug, slug))
		return nil, false
	}
	return e.Result, true
}

// store writes a result atomically. Store failures are returned so the
// caller can warn, but callers treat them as non-fatal: the computation
// already succeeded.
func (c *Cache) store(slug, key string, result json.RawMessage) error {
	if c == nil {
		return nil
	}
	c.mkdir.Do(func() { c.mkdirOK = os.MkdirAll(c.dir, 0o755) == nil })
	if !c.mkdirOK {
		return fmt.Errorf("runner: cannot create cache dir %s", c.dir)
	}
	data, err := json.Marshal(entry{Schema: cacheSchema, Slug: slug, Result: result})
	if err != nil {
		return fmt.Errorf("runner: encoding cache entry %s: %w", slug, err)
	}
	// Same temp+rename discipline as before, now fsyncing file and
	// directory when the process-wide sync policy demands power-loss
	// durability (a torn cache entry is only quarantine noise, but a
	// memoized result the checkpoint already references must not
	// evaporate after the checkpoint said it exists).
	if err := durable.WriteFileAtomic(c.path(key), data, 0o644, writeSyncPolicy()); err != nil {
		return fmt.Errorf("runner: committing cache entry %s: %w", slug, err)
	}
	return nil
}

// LoadRaw reads the raw cached result for a key already derived with
// Key. A hit counts toward Stats; a miss counts nothing — the caller
// decides whether a computation follows (the cluster layer peeks
// without committing to compute, and a forwarded cell must not inflate
// this node's miss count). Corruption handling matches load.
func (c *Cache) LoadRaw(slug, key string) (json.RawMessage, bool) {
	raw, ok := c.load(slug, key)
	if ok && c != nil {
		c.hits.Add(1)
	}
	return raw, ok
}

// StoreRaw writes a raw result under a pre-derived key — the cross-node
// cache-fill path: a cell computed by a remote owner is written through
// to the local cache so later lookups replay as local hits. Counts
// neither hit nor miss (the work happened elsewhere).
func (c *Cache) StoreRaw(slug, key string, raw json.RawMessage) error {
	return c.store(slug, key, raw)
}

// Memo returns the cached result for (slug, payload) if present, else runs
// compute, stores its result, and returns it. hit reports whether the
// value came from disk.
//
// The returned value is ALWAYS the JSON round-trip of the computed one —
// even on a cache miss — so a run that populates the cache and a run that
// hits it produce bit-identical output. A result type that loses
// information through JSON (an unexported field, say) therefore shows up
// immediately in golden tests instead of only on the second invocation.
func Memo[T any](c *Cache, slug string, payload any, compute func() (T, error)) (v T, hit bool, err error) {
	key, err := Key(slug, payload)
	if err != nil {
		return v, false, err
	}
	if raw, ok := c.load(slug, key); ok {
		if json.Unmarshal(raw, &v) == nil {
			if c != nil {
				c.hits.Add(1)
			}
			return v, true, nil
		}
		// Undecodable result (type changed without a code-version bump):
		// quarantine the evidence, then fall through and recompute.
		c.quarantine(key, fmt.Sprintf("result does not decode into the current %s result type", slug))
	}
	computed, err := compute()
	if err != nil {
		return v, false, err
	}
	// The miss counts only once compute succeeds, making misses mean
	// "cells this process actually computed": a canceled or failed
	// attempt whose retry recomputes must not count the cell twice —
	// the fleet-wide zero-duplicate accounting (sum of misses across
	// nodes == cells computed) depends on this.
	if c != nil {
		c.misses.Add(1)
	}
	raw, err := json.Marshal(computed)
	if err != nil {
		return v, false, fmt.Errorf("runner: encoding result %s: %w", slug, err)
	}
	if err := json.Unmarshal(raw, &v); err != nil {
		return v, false, fmt.Errorf("runner: round-tripping result %s: %w", slug, err)
	}
	if err := c.store(slug, key, raw); err != nil {
		// Non-fatal: the result is correct, only the memoization is lost.
		return v, false, nil
	}
	return v, false, nil
}
