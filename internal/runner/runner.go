// Package runner is the experiment execution engine: a bounded worker
// pool with deterministic result ordering, panic isolation, context
// cancellation, a supervision layer (per-task deadlines, bounded retry
// with deterministic backoff, partial-results collection — supervise.go,
// retry.go), and an on-disk memoization cache (cache.go) keyed by
// experiment parameters. Every parameter sweep in internal/experiments
// and internal/sim fans out through Map, which replaces the hand-rolled
// sync.WaitGroup + semaphore pattern the experiments grew up with.
//
// Determinism is the design center: results are merged by task index, not
// completion order, so a sweep produces byte-identical tables whether it
// runs on one worker or sixteen (see experiments/determinism_test.go) —
// and, with the supervision layer, whether or not transient faults were
// retried along the way (see faultinject's chaos tests).
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Task is one unit of experiment work: a labelled closure computing a
// result. The label is only used for progress reporting and error
// messages; Run does the work and may be executed on any worker.
type Task[T any] struct {
	Label string
	Run   func(ctx context.Context) (T, error)
}

// NewTask builds a Task from a label and a function.
func NewTask[T any](label string, run func(ctx context.Context) (T, error)) Task[T] {
	return Task[T]{Label: label, Run: run}
}

// PanicError is a recovered panic from a task, carrying the panic value
// and the goroutine stack at the point of the panic. The pool converts
// panics to errors so one exploding benchmark cannot take down a whole
// sweep uncontrolled.
type PanicError struct {
	Label string
	Value any
	Stack []byte
}

// Error implements error.
func (p *PanicError) Error() string {
	return fmt.Sprintf("runner: task %q panicked: %v", p.Label, p.Value)
}

// TaskError wraps a task failure with its label, index, and how many
// attempts the supervision layer gave it before giving up.
type TaskError struct {
	Label    string
	Index    int
	Attempts int
	Err      error
}

// Error implements error.
func (e *TaskError) Error() string {
	if e.Attempts > 1 {
		return fmt.Sprintf("runner: task %d (%s) after %d attempts: %v", e.Index, e.Label, e.Attempts, e.Err)
	}
	return fmt.Sprintf("runner: task %d (%s): %v", e.Index, e.Label, e.Err)
}

// Unwrap exposes the underlying error.
func (e *TaskError) Unwrap() error { return e.Err }

// MultiError is the structured failure report of a partial-results Map:
// one *TaskError per failed task, ordered by task index, plus the sweep
// size for context. Successful tasks' results were still returned.
type MultiError struct {
	Failures []*TaskError
	Total    int
}

// Error implements error.
func (e *MultiError) Error() string {
	if len(e.Failures) == 1 {
		return fmt.Sprintf("runner: 1 of %d task(s) failed: %v", e.Total, e.Failures[0])
	}
	var b strings.Builder
	fmt.Fprintf(&b, "runner: %d of %d task(s) failed:", len(e.Failures), e.Total)
	for _, f := range e.Failures {
		b.WriteString("\n\t")
		b.WriteString(f.Error())
	}
	return b.String()
}

// Unwrap exposes the individual task errors to errors.Is/As.
func (e *MultiError) Unwrap() []error {
	errs := make([]error, len(e.Failures))
	for i, f := range e.Failures {
		errs[i] = f
	}
	return errs
}

// Option configures one Map call.
type Option func(*config)

type config struct {
	workers  int
	deadline time.Duration
	retries  int
	backoff  time.Duration
	partial  bool
}

// Workers caps the pool at n concurrent tasks instead of GOMAXPROCS.
func Workers(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.workers = n
		}
	}
}

// Deadline bounds every task attempt to d of wall-clock time. A
// cooperative task sees its context cancelled at the deadline; a wedged
// one is abandoned so the sweep still completes (see runAttempt). Each
// retry attempt gets a fresh deadline. d <= 0 disables the bound.
func Deadline(d time.Duration) Option {
	return func(c *config) {
		if d > 0 {
			c.deadline = d
		}
	}
}

// Retry grants every task up to n extra attempts after a failure marked
// Retryable, sleeping an exponentially growing backoff (starting at
// base, deterministic jitter seeded by task index — reruns are
// byte-identical) between attempts. base <= 0 uses DefaultBackoff.
// Errors not marked retryable, panics, and deadline expirations are
// never retried.
func Retry(n int, base time.Duration) Option {
	return func(c *config) {
		if n >= 0 {
			c.retries = n
		}
		if base > 0 {
			c.backoff = base
		}
	}
}

// PartialResults switches Map to graceful degradation: a task failure no
// longer cancels the rest of the sweep. Every task runs, successful
// results are returned in place, and the error (if any task failed) is a
// *MultiError listing each failure with its label, index, and attempt
// count. Entries whose task failed hold the zero value.
func PartialResults() Option {
	return func(c *config) { c.partial = true }
}

// defaultOptions is the process-wide option prefix applied to every Map
// call before its own options. cmd/paperbench uses it to push the
// -task-timeout/-retries/partial-results policy from its flags into
// every experiment fan-out without threading options through each
// experiment signature.
var defaultOptions atomic.Pointer[[]Option]

// SetDefaultOptions installs opts as the process-wide defaults applied
// (first, so per-call options win) to every subsequent Map call. Call
// with no arguments to clear.
func SetDefaultOptions(opts ...Option) {
	if len(opts) == 0 {
		defaultOptions.Store(nil)
		return
	}
	defaultOptions.Store(&opts)
}

// ctxOptionsKey carries context-scoped options (WithOptions).
type ctxOptionsKey struct{}

// WithOptions returns a context carrying opts. Every Map call handed the
// context applies them after the process-wide SetDefaultOptions prefix
// and before the call's own options, so a caller several layers above a
// fan-out — a service executing one client's job, say — can scope a
// supervision policy (deadline, retries, partial results) to that job
// without mutating process-wide state or threading options through every
// signature in between. Nested WithOptions calls compose: the outer
// context's options apply first, then the inner's.
func WithOptions(ctx context.Context, opts ...Option) context.Context {
	if len(opts) == 0 {
		return ctx
	}
	if prev, ok := ctx.Value(ctxOptionsKey{}).([]Option); ok {
		merged := make([]Option, 0, len(prev)+len(opts))
		merged = append(merged, prev...)
		merged = append(merged, opts...)
		opts = merged
	}
	return context.WithValue(ctx, ctxOptionsKey{}, opts)
}

// contextOptions returns the options attached by WithOptions, if any.
func contextOptions(ctx context.Context) []Option {
	opts, _ := ctx.Value(ctxOptionsKey{}).([]Option)
	return opts
}

// Map executes every task on a bounded worker pool and returns the
// results in task order, regardless of completion order. The pool size
// defaults to GOMAXPROCS (the hardware parallelism Go was granted), so
// sweeps saturate the machine without oversubscribing it.
//
// Error handling is deterministic: if any tasks fail, Map cancels the
// remaining unstarted tasks and returns the error of the failed task
// with the lowest index — the same error no matter how the scheduler
// interleaved the workers. Panics inside tasks are recovered into
// *PanicError; other failures are wrapped in *TaskError. The returned
// slice always has len(tasks) entries; entries whose task failed or was
// cancelled hold the zero value.
//
// The supervision options change that policy: Deadline bounds each
// attempt, Retry re-runs attempts that failed with a Retryable error,
// and PartialResults completes the whole sweep and aggregates failures
// into a *MultiError instead of aborting on the first one.
func Map[T any](ctx context.Context, tasks []Task[T], opts ...Option) ([]T, error) {
	cfg := config{workers: runtime.GOMAXPROCS(0), backoff: DefaultBackoff}
	if d := defaultOptions.Load(); d != nil {
		for _, o := range *d {
			o(&cfg)
		}
	}
	for _, o := range contextOptions(ctx) {
		o(&cfg)
	}
	for _, o := range opts {
		o(&cfg)
	}
	n := len(tasks)
	out := make([]T, n)
	if n == 0 {
		return out, ctx.Err()
	}
	workers := cfg.workers
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	errs := make([]error, n)
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = supervise(ctx, tasks[i], i, cfg, &out[i])
				if errs[i] != nil && !cfg.partial {
					cancel()
				}
			}
		}()
	}
	// Feed indices in order; stop feeding once cancelled so a failure
	// (or caller cancellation) skips the tail instead of running it.
	// Because the channel is unbuffered, an index is fed only when a
	// worker receives it — so when task k fails, every index below k has
	// already been received and WILL run to completion (workers never
	// abandon a received task except at its own deadline). That makes the
	// lowest-index error below deterministic even when several tasks fail.
feed:
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			for j := i; j < n; j++ {
				errs[j] = err
			}
			break
		}
		select {
		case next <- i:
		case <-ctx.Done():
			for j := i; j < n; j++ {
				errs[j] = ctx.Err()
			}
			break feed
		}
	}
	close(next)
	wg.Wait()

	// Deterministic error selection. Fail-fast mode: the lowest-index real
	// failure wins; bare cancellations only surface if nothing concrete
	// failed first. Partial mode: every real failure is collected, in
	// index order, into one MultiError.
	var firstCancel error
	var failures []*TaskError
	for _, err := range errs {
		if err == nil {
			continue
		}
		if err == context.Canceled || err == context.DeadlineExceeded {
			if firstCancel == nil {
				firstCancel = err
			}
			continue
		}
		var te *TaskError
		if !errors.As(err, &te) {
			// supervise only ever returns *TaskError or a bare context
			// error, but keep a defensive wrap for future error sources.
			te = &TaskError{Label: "", Index: -1, Attempts: 1, Err: err}
		}
		if !cfg.partial {
			return out, te
		}
		failures = append(failures, te)
	}
	if len(failures) > 0 {
		return out, &MultiError{Failures: failures, Total: n}
	}
	return out, firstCancel
}

// MapN runs f for every index in [0, n) — the common "sweep a slice"
// shape. label derives the progress label from the index.
func MapN[T any](ctx context.Context, n int, label func(i int) string, f func(ctx context.Context, i int) (T, error), opts ...Option) ([]T, error) {
	tasks := make([]Task[T], n)
	for i := 0; i < n; i++ {
		i := i
		name := ""
		if label != nil {
			name = label(i)
		}
		tasks[i] = Task[T]{Label: name, Run: func(ctx context.Context) (T, error) { return f(ctx, i) }}
	}
	return Map(ctx, tasks, opts...)
}
