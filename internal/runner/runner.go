// Package runner is the experiment execution engine: a bounded worker
// pool with deterministic result ordering, panic isolation, context
// cancellation, and an on-disk memoization cache (cache.go) keyed by
// experiment parameters. Every parameter sweep in internal/experiments
// and internal/sim fans out through Map, which replaces the hand-rolled
// sync.WaitGroup + semaphore pattern the experiments grew up with.
//
// Determinism is the design center: results are merged by task index, not
// completion order, so a sweep produces byte-identical tables whether it
// runs on one worker or sixteen (see experiments/determinism_test.go).
package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// Task is one unit of experiment work: a labelled closure computing a
// result. The label is only used for progress reporting and error
// messages; Run does the work and may be executed on any worker.
type Task[T any] struct {
	Label string
	Run   func(ctx context.Context) (T, error)
}

// NewTask builds a Task from a label and a function.
func NewTask[T any](label string, run func(ctx context.Context) (T, error)) Task[T] {
	return Task[T]{Label: label, Run: run}
}

// PanicError is a recovered panic from a task, carrying the panic value
// and the goroutine stack at the point of the panic. The pool converts
// panics to errors so one exploding benchmark cannot take down a whole
// sweep uncontrolled.
type PanicError struct {
	Label string
	Value any
	Stack []byte
}

// Error implements error.
func (p *PanicError) Error() string {
	return fmt.Sprintf("runner: task %q panicked: %v", p.Label, p.Value)
}

// TaskError wraps a non-panic task failure with its label and index.
type TaskError struct {
	Label string
	Index int
	Err   error
}

// Error implements error.
func (e *TaskError) Error() string {
	return fmt.Sprintf("runner: task %d (%s): %v", e.Index, e.Label, e.Err)
}

// Unwrap exposes the underlying error.
func (e *TaskError) Unwrap() error { return e.Err }

// Option configures one Map call.
type Option func(*config)

type config struct {
	workers int
}

// Workers caps the pool at n concurrent tasks instead of GOMAXPROCS.
func Workers(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.workers = n
		}
	}
}

// Map executes every task on a bounded worker pool and returns the
// results in task order, regardless of completion order. The pool size
// defaults to GOMAXPROCS (the hardware parallelism Go was granted), so
// sweeps saturate the machine without oversubscribing it.
//
// Error handling is deterministic: if any tasks fail, Map cancels the
// remaining unstarted tasks and returns the error of the failed task
// with the lowest index — the same error no matter how the scheduler
// interleaved the workers. Panics inside tasks are recovered into
// *PanicError; other failures are wrapped in *TaskError. The returned
// slice always has len(tasks) entries; entries whose task failed or was
// cancelled hold the zero value.
func Map[T any](ctx context.Context, tasks []Task[T], opts ...Option) ([]T, error) {
	cfg := config{workers: runtime.GOMAXPROCS(0)}
	for _, o := range opts {
		o(&cfg)
	}
	n := len(tasks)
	out := make([]T, n)
	if n == 0 {
		return out, ctx.Err()
	}
	workers := cfg.workers
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	errs := make([]error, n)
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = runOne(ctx, tasks[i], &out[i])
				if errs[i] != nil {
					cancel()
				}
			}
		}()
	}
	// Feed indices in order; stop feeding once cancelled so a failure
	// (or caller cancellation) skips the tail instead of running it.
	// Because the channel is unbuffered, an index is fed only when a
	// worker receives it — so when task k fails, every index below k has
	// already been received and WILL run to completion (workers never
	// abandon a received task). That makes the lowest-index error below
	// deterministic even when several tasks fail.
feed:
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			for j := i; j < n; j++ {
				errs[j] = err
			}
			break
		}
		select {
		case next <- i:
		case <-ctx.Done():
			for j := i; j < n; j++ {
				errs[j] = ctx.Err()
			}
			break feed
		}
	}
	close(next)
	wg.Wait()

	// Deterministic error selection: the lowest-index real failure wins;
	// bare cancellations only surface if nothing concrete failed first.
	var firstCancel error
	for i, err := range errs {
		if err == nil {
			continue
		}
		if err == context.Canceled || err == context.DeadlineExceeded {
			if firstCancel == nil {
				firstCancel = err
			}
			continue
		}
		return out, &TaskError{Label: tasks[i].Label, Index: i, Err: err}
	}
	return out, firstCancel
}

// runOne executes a single task with panic recovery and progress
// accounting.
func runOne[T any](ctx context.Context, t Task[T], out *T) (err error) {
	stop := taskStarted(t.Label)
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Label: t.Label, Value: r, Stack: debug.Stack()}
		}
		stop(err)
	}()
	v, err := t.Run(ctx)
	if err != nil {
		return err
	}
	*out = v
	return nil
}

// MustMap is Map for call sites with no error path of their own (the
// experiment functions, whose signatures predate the runner): it panics
// on error with the failed task's label attached.
func MustMap[T any](ctx context.Context, tasks []Task[T], opts ...Option) []T {
	out, err := Map(ctx, tasks, opts...)
	if err != nil {
		panic(err)
	}
	return out
}

// MapN runs f for every index in [0, n) — the common "sweep a slice"
// shape. label derives the progress label from the index.
func MapN[T any](ctx context.Context, n int, label func(i int) string, f func(ctx context.Context, i int) (T, error), opts ...Option) ([]T, error) {
	tasks := make([]Task[T], n)
	for i := 0; i < n; i++ {
		i := i
		name := ""
		if label != nil {
			name = label(i)
		}
		tasks[i] = Task[T]{Label: name, Run: func(ctx context.Context) (T, error) { return f(ctx, i) }}
	}
	return Map(ctx, tasks, opts...)
}
