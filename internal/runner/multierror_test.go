package runner

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestMultiErrorUnwrapsToEveryFailure pins the errors.Is/errors.As
// contract service handlers rely on to map task failures to HTTP status
// codes: MultiError's multi-Unwrap must expose every underlying failure,
// not just the first, and TaskError must stay transparent in the chain.
func TestMultiErrorUnwrapsToEveryFailure(t *testing.T) {
	sentinelA := errors.New("sentinel A")
	sentinelB := errors.New("sentinel B")

	tasks := []Task[int]{
		NewTask("ok", func(context.Context) (int, error) { return 1, nil }),
		NewTask("a", func(context.Context) (int, error) { return 0, fmt.Errorf("wrapping: %w", sentinelA) }),
		NewTask("b", func(context.Context) (int, error) { return 0, sentinelB }),
	}
	_, err := Map(context.Background(), tasks, PartialResults())

	var me *MultiError
	if !errors.As(err, &me) {
		t.Fatalf("err = %T %v, want *MultiError", err, err)
	}
	if len(me.Failures) != 2 || me.Total != 3 {
		t.Fatalf("MultiError = %d failures of %d, want 2 of 3", len(me.Failures), me.Total)
	}
	// errors.Is must reach sentinels buried in EVERY branch, not just the
	// lowest-index failure.
	if !errors.Is(err, sentinelA) {
		t.Error("errors.Is(err, sentinelA) = false, want true")
	}
	if !errors.Is(err, sentinelB) {
		t.Error("errors.Is(err, sentinelB) = false (second failure unreachable through Unwrap() []error)")
	}
	if errors.Is(err, context.Canceled) {
		t.Error("errors.Is(err, context.Canceled) = true for unrelated failures")
	}
	// errors.As lands on the first failure in index order — deterministic,
	// so handlers can report a stable primary cause.
	var te *TaskError
	if !errors.As(err, &te) || te.Index != 1 {
		t.Fatalf("errors.As(*TaskError) = %+v, want the index-1 failure first", te)
	}
}

// TestMultiErrorExposesDeadline checks that a per-task deadline expiring
// inside a partial-results sweep is matchable as a timeout through the
// whole MultiError -> TaskError -> DeadlineError chain, which is how a
// service maps a wedged job to 504 instead of a generic 500.
func TestMultiErrorExposesDeadline(t *testing.T) {
	tasks := []Task[int]{
		NewTask("fast", func(context.Context) (int, error) { return 1, nil }),
		NewTask("wedged", func(ctx context.Context) (int, error) {
			<-ctx.Done()                      // cooperative: notices the attempt deadline
			time.Sleep(5 * time.Millisecond) // but takes a moment to unwind
			return 0, ctx.Err()
		}),
	}
	_, err := Map(context.Background(), tasks, PartialResults(), Deadline(20*time.Millisecond))

	var me *MultiError
	if !errors.As(err, &me) || len(me.Failures) != 1 {
		t.Fatalf("err = %T %v, want *MultiError with exactly the wedged task", err, err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Error("errors.Is(err, context.DeadlineExceeded) = false, want true")
	}
	var de *DeadlineError
	if !errors.As(err, &de) {
		t.Errorf("errors.As(*DeadlineError) failed on %v", err)
	}
}
