package runner

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// spanSink collects exported spans for the wiring tests.
type spanSink struct {
	mu   sync.Mutex
	recs []obs.SpanRecord
}

func (s *spanSink) ExportSpan(r obs.SpanRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.recs = append(s.recs, r)
}

func (s *spanSink) byName(name string) []obs.SpanRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []obs.SpanRecord
	for _, r := range s.recs {
		if r.Name == name {
			out = append(out, r)
		}
	}
	return out
}

func TestMapEmitsSpanPerAttempt(t *testing.T) {
	var sink spanSink
	ctx := obs.Inject(context.Background(), &sink, "run-x")

	var failedOnce atomic.Bool
	_, err := Map(ctx, []Task[int]{
		{Label: "ok", Run: func(context.Context) (int, error) { return 1, nil }},
		{Label: "flaky", Run: func(context.Context) (int, error) {
			if failedOnce.CompareAndSwap(false, true) {
				return 0, Retryable(errors.New("transient"))
			}
			return 2, nil
		}},
	}, Workers(1), Retry(2, 0))
	if err != nil {
		t.Fatal(err)
	}

	spans := sink.byName("runner.task")
	if len(spans) != 3 {
		t.Fatalf("got %d runner.task spans, want 3 (1 ok + 2 flaky attempts): %+v", len(spans), spans)
	}
	byLabel := map[string][]obs.SpanRecord{}
	for _, r := range spans {
		if r.Trace != "run-x" {
			t.Errorf("span trace = %q, want run-x", r.Trace)
		}
		label, _ := r.Attrs["label"].(string)
		byLabel[label] = append(byLabel[label], r)
	}
	if len(byLabel["ok"]) != 1 || len(byLabel["flaky"]) != 2 {
		t.Fatalf("spans per label = ok:%d flaky:%d", len(byLabel["ok"]), len(byLabel["flaky"]))
	}
	// The failed first attempt must carry the error and attempt 0; the
	// retry carries attempt 1 and no error.
	first, second := byLabel["flaky"][0], byLabel["flaky"][1]
	if first.Attrs["attempt"] != int64(0) || second.Attrs["attempt"] != int64(1) {
		t.Errorf("attempts = %v, %v", first.Attrs["attempt"], second.Attrs["attempt"])
	}
	if _, ok := first.Attrs["error"]; !ok {
		t.Errorf("failed attempt span missing error attr: %+v", first)
	}
	if _, ok := second.Attrs["error"]; ok {
		t.Errorf("successful retry span has error attr: %+v", second)
	}
}

func TestMapSpanContextFlowsIntoTask(t *testing.T) {
	var sink spanSink
	ctx := obs.Inject(context.Background(), &sink, "run-y")
	_, err := Map(ctx, []Task[int]{{Label: "nested", Run: func(tctx context.Context) (int, error) {
		_, sp := obs.Start(tctx, "inner")
		sp.End()
		return 0, nil
	}}})
	if err != nil {
		t.Fatal(err)
	}
	inner := sink.byName("inner")
	outer := sink.byName("runner.task")
	if len(inner) != 1 || len(outer) != 1 {
		t.Fatalf("spans: inner=%d outer=%d, want 1 each", len(inner), len(outer))
	}
	if inner[0].Parent != outer[0].Span {
		t.Errorf("inner parent = %d, want task span %d", inner[0].Parent, outer[0].Span)
	}
}

func TestMapSpanUnderDeadlinePath(t *testing.T) {
	// The deadline path runs the body on a separate goroutine; the span
	// must still cover the attempt and propagate into the body context.
	var sink spanSink
	ctx := obs.Inject(context.Background(), &sink, "run-z")
	_, err := Map(ctx, []Task[int]{{Label: "timed", Run: func(tctx context.Context) (int, error) {
		if !obs.Enabled(tctx) {
			return 0, errors.New("span context did not reach the task body")
		}
		return 7, nil
	}}}, Deadline(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if spans := sink.byName("runner.task"); len(spans) != 1 {
		t.Fatalf("got %d spans under deadline path, want 1", len(spans))
	}
}

func TestMapFeedsSlowTaskLog(t *testing.T) {
	var mu sync.Mutex
	var events []obs.SlowEvent
	obs.SetSlowLog(3, 4, func(e obs.SlowEvent) {
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
	})
	defer obs.SetSlowLog(0, 0, nil)

	delay := time.Duration(0)
	tasks := make([]Task[int], 9)
	for i := range tasks {
		i := i
		tasks[i] = Task[int]{Label: "steady", Run: func(context.Context) (int, error) {
			if i == 8 {
				time.Sleep(delay + 60*time.Millisecond)
			} else {
				time.Sleep(2 * time.Millisecond)
			}
			return i, nil
		}}
	}
	if _, err := Map(context.Background(), tasks, Workers(1)); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(events) != 1 {
		t.Fatalf("slow log fired %d times, want 1: %+v", len(events), events)
	}
	if events[0].Label != "steady" || events[0].Dur < 50*time.Millisecond {
		t.Errorf("event = %+v", events[0])
	}
}
