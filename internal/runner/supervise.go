// Supervision layer: per-attempt deadlines, bounded retry with
// deterministic backoff, and the fault-injection seam. supervise wraps
// every task the pool runs; runner.go's Map decides what to do with the
// error it returns (fail fast or collect into a MultiError).
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// DeadlineError reports that one task attempt exceeded the per-task
// deadline configured with the Deadline option. It wraps
// context.DeadlineExceeded (errors.Is matches) but is a distinct type so
// Map never confuses a per-task timeout with cancellation of the whole
// sweep. Deadline expirations are not retryable by default: a task that
// spent its full budget once will almost certainly do so again.
type DeadlineError struct {
	Label    string
	Deadline time.Duration
}

// Error implements error.
func (e *DeadlineError) Error() string {
	return fmt.Sprintf("runner: task %q exceeded its %v deadline", e.Label, e.Deadline)
}

// Unwrap lets errors.Is(err, context.DeadlineExceeded) identify timeouts.
func (e *DeadlineError) Unwrap() error { return context.DeadlineExceeded }

// TaskHook is the fault-injection seam: when installed, it runs at the
// start of every task attempt, before the task body, on the attempt's
// own goroutine and context (so an injected hang honors the Deadline
// option and an injected panic is recovered like any task panic). A
// non-nil return value fails the attempt with that error; return an
// error marked Retryable to model a transient fault the Retry option
// can heal. The hook must be safe for concurrent use.
//
// This is a deliberate build-tag-free test seam — internal/faultinject
// provides implementations, production binaries simply leave it nil —
// so chaos tests exercise the exact binary users run.
type TaskHook func(ctx context.Context, label string, attempt int) error

var taskHook atomic.Pointer[TaskHook]

// SetTaskHook installs h as the process-wide attempt hook (nil removes
// it).
func SetTaskHook(h TaskHook) {
	if h == nil {
		taskHook.Store(nil)
		return
	}
	taskHook.Store(&h)
}

func loadTaskHook() TaskHook {
	if p := taskHook.Load(); p != nil {
		return *p
	}
	return nil
}

// supervise runs one task under the configured deadline/retry policy and
// returns nil, a bare context error (the sweep as a whole was cancelled),
// or a *TaskError carrying the label, index, and attempt count.
func supervise[T any](ctx context.Context, t Task[T], index int, cfg config, out *T) error {
	attempts := 0
	for {
		attempts++
		err := runAttempt(ctx, t, attempts-1, cfg.deadline, out)
		if err == nil {
			return nil
		}
		// Cancellation of the sweep's own context is not a task failure;
		// propagate it bare so Map can tell the two apart. (Per-task
		// deadline expirations arrive as *DeadlineError, never bare.)
		if err == context.Canceled || err == context.DeadlineExceeded {
			return err
		}
		if attempts > cfg.retries || !IsRetryable(err) || ctx.Err() != nil {
			return &TaskError{Label: t.Label, Index: index, Attempts: attempts, Err: err}
		}
		counters.Load().retried.Add(1)
		if !sleepCtx(ctx, backoffDelay(attempts-1, cfg.backoff, index)) {
			// Cancelled mid-backoff: surface the real failure, not the
			// cancellation, so the caller sees why the task was retrying.
			return &TaskError{Label: t.Label, Index: index, Attempts: attempts, Err: err}
		}
	}
}

// runAttempt executes one attempt of a task with panic recovery,
// progress accounting, the fault-injection hook, and (when configured) a
// deadline.
//
// With no deadline the attempt runs inline on the worker goroutine,
// exactly like the pre-supervision pool. With a deadline the body runs
// on its own goroutine and the worker waits for completion or the
// timer: a cooperative task sees its attempt context cancelled and
// returns; a wedged task is abandoned — the worker moves on and the
// stray goroutine is left to die with its cancelled context. Abandoned
// attempts never touch out (results travel by channel), never account
// (the worker owns the task's accounting), and their eventual return
// value is discarded.
func runAttempt[T any](ctx context.Context, t Task[T], attempt int, deadline time.Duration, out *T) (err error) {
	stop := taskStarted(t.Label)
	defer func() { stop(err) }()

	// Every attempt runs under a span (free when tracing is off) and
	// reports its duration to the slow-task log (one atomic load when
	// off). The span context flows into the task body so nested
	// instrumentation — cache lookups, service calls — parents correctly.
	began := time.Now()
	sctx, sp := obs.Start(ctx, "runner.task")
	sp.Str("label", t.Label)
	sp.Int("attempt", int64(attempt))
	ctx = sctx
	defer func() {
		sp.Err(err)
		sp.End()
		obs.NoteTask(t.Label, attempt, sp.ID(), time.Since(began))
	}()

	if deadline <= 0 {
		defer func() {
			if r := recover(); r != nil {
				err = &PanicError{Label: t.Label, Value: r, Stack: debug.Stack()}
			}
		}()
		if h := loadTaskHook(); h != nil {
			if herr := h(ctx, t.Label, attempt); herr != nil {
				return herr
			}
		}
		v, err := t.Run(ctx)
		if err != nil {
			return err
		}
		*out = v
		return nil
	}

	attemptCtx, cancel := context.WithTimeout(ctx, deadline)
	defer cancel()
	type result struct {
		v   T
		err error
	}
	ch := make(chan result, 1) // buffered: an abandoned attempt must not block forever
	go func() {
		var r result
		defer func() {
			if p := recover(); p != nil {
				r.err = &PanicError{Label: t.Label, Value: p, Stack: debug.Stack()}
			}
			ch <- r
		}()
		if h := loadTaskHook(); h != nil {
			if r.err = h(attemptCtx, t.Label, attempt); r.err != nil {
				return
			}
		}
		r.v, r.err = t.Run(attemptCtx)
	}()
	timer := time.NewTimer(deadline)
	defer timer.Stop()
	select {
	case r := <-ch:
		if r.err != nil {
			// A cooperative task that noticed the attempt deadline reports
			// context.DeadlineExceeded; rewrite it to the typed error so it
			// is not mistaken for cancellation of the parent sweep.
			if attemptCtx.Err() == context.DeadlineExceeded && ctx.Err() == nil && errors.Is(r.err, context.DeadlineExceeded) {
				return &DeadlineError{Label: t.Label, Deadline: deadline}
			}
			return r.err
		}
		*out = r.v
		return nil
	case <-timer.C:
		// The timer — not parent cancellation — gates abandonment, so a
		// cancelled sweep still lets received tasks run to completion and
		// Map's lowest-index error selection stays deterministic.
		return &DeadlineError{Label: t.Label, Deadline: deadline}
	}
}
