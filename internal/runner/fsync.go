package runner

import (
	"sync/atomic"

	"repro/internal/durable"
)

// syncPolicy is the process-wide durability policy for the runner's
// whole-file writers (checkpoint snapshots, cache entries). It is
// process-wide for the same reason SetDefaultOptions is: checkpoints
// and cache entries are opened deep inside experiment fan-outs, far
// from any flag parsing, and durability is an operator decision about
// the host (its storage, its power story), not about one sweep.
//
// The default is durable.PolicyOff — the seed behavior: temp+rename
// atomicity against process crashes, no fsync. cmd/mctd and
// cmd/paperbench raise it from their -fsync flags.
var syncPolicy atomic.Int32

// SetSyncPolicy installs the process-wide fsync policy for checkpoint
// and cache writes. Safe to call concurrently with writers; each write
// snapshots the policy once.
func SetSyncPolicy(p durable.Policy) { syncPolicy.Store(int32(p)) }

// SyncPolicy returns the current process-wide fsync policy.
func SyncPolicy() durable.Policy { return durable.Policy(syncPolicy.Load()) }

// writeSyncPolicy resolves the policy for one whole-file write: these
// are rare, batch-boundary-shaped writes, so PolicyData and
// PolicyAlways both mean "fsync this write"; only PolicyOff skips.
func writeSyncPolicy() durable.Policy {
	if p := SyncPolicy(); p != durable.PolicyOff {
		return durable.PolicyAlways
	}
	return durable.PolicyOff
}
