package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// failNTask returns a task that fails its first n attempts with a
// retryable error, then succeeds, and the counter of attempts made.
func failNTask(label string, n int, v int) (Task[int], *atomic.Int32) {
	var attempts atomic.Int32
	return Task[int]{Label: label, Run: func(ctx context.Context) (int, error) {
		a := attempts.Add(1)
		if int(a) <= n {
			return 0, Retryable(fmt.Errorf("transient %d", a))
		}
		return v, nil
	}}, &attempts
}

func TestRetryHealsTransientFailure(t *testing.T) {
	task, attempts := failNTask("flaky", 2, 42)
	out, err := Map(context.Background(), []Task[int]{task}, Retry(2, time.Millisecond))
	if err != nil {
		t.Fatalf("retry should heal a 2-failure task with 2 retries: %v", err)
	}
	if out[0] != 42 {
		t.Errorf("out = %d", out[0])
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("attempts = %d, want 3", got)
	}
}

func TestRetryExhaustionReportsAttempts(t *testing.T) {
	task, attempts := failNTask("doomed", 99, 0)
	_, err := Map(context.Background(), []Task[int]{task}, Retry(2, time.Millisecond))
	var te *TaskError
	if !errors.As(err, &te) {
		t.Fatalf("want *TaskError, got %v", err)
	}
	if te.Attempts != 3 {
		t.Errorf("TaskError.Attempts = %d, want 3 (1 try + 2 retries)", te.Attempts)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("task ran %d times, want 3", got)
	}
	if !strings.Contains(te.Error(), "after 3 attempts") {
		t.Errorf("error text should carry the attempt count: %v", te)
	}
}

func TestNonRetryableErrorIsNotRetried(t *testing.T) {
	var attempts atomic.Int32
	task := Task[int]{Label: "permanent", Run: func(ctx context.Context) (int, error) {
		attempts.Add(1)
		return 0, errors.New("deterministic failure")
	}}
	_, err := Map(context.Background(), []Task[int]{task}, Retry(5, time.Millisecond))
	if err == nil {
		t.Fatal("want error")
	}
	if got := attempts.Load(); got != 1 {
		t.Errorf("unmarked error retried: ran %d times, want 1", got)
	}
}

func TestPanicIsNeverRetried(t *testing.T) {
	var attempts atomic.Int32
	task := Task[int]{Label: "crash", Run: func(ctx context.Context) (int, error) {
		attempts.Add(1)
		panic("boom")
	}}
	_, err := Map(context.Background(), []Task[int]{task}, Retry(5, time.Millisecond))
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got %v", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Errorf("panic retried: ran %d times, want 1", got)
	}
}

func TestDeadlineCutsCooperativeTask(t *testing.T) {
	task := Task[int]{Label: "slow", Run: func(ctx context.Context) (int, error) {
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-time.After(10 * time.Second):
			return 1, nil
		}
	}}
	start := time.Now()
	_, err := Map(context.Background(), []Task[int]{task}, Deadline(20*time.Millisecond))
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline did not cut the task short (took %v)", elapsed)
	}
	var de *DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("want *DeadlineError, got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Error("DeadlineError must match errors.Is(_, context.DeadlineExceeded)")
	}
	if errors.Is(err, context.Canceled) {
		t.Error("per-task deadline must not read as sweep cancellation")
	}
}

func TestDeadlineAbandonsWedgedTask(t *testing.T) {
	// The task ignores its context entirely — the wedged-task model. The
	// sweep must still complete, and the other task's result must survive.
	release := make(chan struct{})
	defer close(release)
	tasks := []Task[int]{
		{Label: "wedged", Run: func(ctx context.Context) (int, error) {
			<-release // ignores ctx
			return 0, nil
		}},
		{Label: "fine", Run: func(ctx context.Context) (int, error) { return 7, nil }},
	}
	out, err := Map(context.Background(), tasks, Deadline(20*time.Millisecond), PartialResults())
	var me *MultiError
	if !errors.As(err, &me) {
		t.Fatalf("want *MultiError, got %v", err)
	}
	if len(me.Failures) != 1 || me.Failures[0].Index != 0 {
		t.Fatalf("failures = %+v", me.Failures)
	}
	if !errors.Is(me.Failures[0].Err, context.DeadlineExceeded) {
		t.Errorf("wedged task error = %v", me.Failures[0].Err)
	}
	if out[1] != 7 {
		t.Errorf("healthy task result lost: out = %v", out)
	}
}

func TestDeadlineExpirationIsNotRetried(t *testing.T) {
	var attempts atomic.Int32
	task := Task[int]{Label: "hang", Run: func(ctx context.Context) (int, error) {
		attempts.Add(1)
		<-ctx.Done()
		return 0, ctx.Err()
	}}
	_, err := Map(context.Background(), []Task[int]{task},
		Deadline(10*time.Millisecond), Retry(3, time.Millisecond))
	var de *DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("want *DeadlineError, got %v", err)
	}
	// Give a potential stray retry a moment to show itself.
	time.Sleep(30 * time.Millisecond)
	if got := attempts.Load(); got != 1 {
		t.Errorf("deadline expiration retried: ran %d times, want 1", got)
	}
}

func TestPartialResultsCollectsAllFailuresInIndexOrder(t *testing.T) {
	n := 12
	tasks := make([]Task[int], n)
	for i := 0; i < n; i++ {
		i := i
		tasks[i] = Task[int]{Label: fmt.Sprintf("t%d", i), Run: func(ctx context.Context) (int, error) {
			if i%3 == 0 {
				return 0, fmt.Errorf("fail %d", i)
			}
			return i * 10, nil
		}}
	}
	out, err := Map(context.Background(), tasks, PartialResults(), Workers(4))
	var me *MultiError
	if !errors.As(err, &me) {
		t.Fatalf("want *MultiError, got %v", err)
	}
	if me.Total != n {
		t.Errorf("Total = %d, want %d", me.Total, n)
	}
	wantFailed := []int{0, 3, 6, 9}
	if len(me.Failures) != len(wantFailed) {
		t.Fatalf("got %d failures, want %d: %v", len(me.Failures), len(wantFailed), me)
	}
	for fi, f := range me.Failures {
		if f.Index != wantFailed[fi] {
			t.Errorf("failure %d has index %d, want %d (index order)", fi, f.Index, wantFailed[fi])
		}
	}
	for i := 0; i < n; i++ {
		want := i * 10
		if i%3 == 0 {
			want = 0 // failed cells hold the zero value
		}
		if out[i] != want {
			t.Errorf("out[%d] = %d, want %d", i, out[i], want)
		}
	}
}

func TestPartialResultsRunsEveryTaskDespiteEarlyFailure(t *testing.T) {
	var ran atomic.Int32
	n := 20
	tasks := make([]Task[int], n)
	for i := 0; i < n; i++ {
		i := i
		tasks[i] = Task[int]{Run: func(ctx context.Context) (int, error) {
			ran.Add(1)
			if i == 0 {
				return 0, errors.New("first task fails immediately")
			}
			return i, nil
		}}
	}
	_, err := Map(context.Background(), tasks, PartialResults(), Workers(2))
	if err == nil {
		t.Fatal("want error")
	}
	if got := ran.Load(); int(got) != n {
		t.Errorf("partial mode ran %d of %d tasks; the sweep must complete", got, n)
	}
}

func TestBackoffDelayDeterministicAndBounded(t *testing.T) {
	for attempt := 0; attempt < 6; attempt++ {
		for index := 0; index < 8; index++ {
			d1 := backoffDelay(attempt, 10*time.Millisecond, index)
			d2 := backoffDelay(attempt, 10*time.Millisecond, index)
			if d1 != d2 {
				t.Fatalf("backoff not deterministic at attempt=%d index=%d: %v vs %v", attempt, index, d1, d2)
			}
			lo := 10 * time.Millisecond << attempt / 2
			hi := 10 * time.Millisecond << attempt
			if d1 < lo || d1 > hi {
				t.Errorf("attempt=%d index=%d: delay %v outside [%v, %v]", attempt, index, d1, lo, hi)
			}
		}
	}
	// Jitter must actually vary across task indices (no thundering herd).
	seen := map[time.Duration]bool{}
	for index := 0; index < 32; index++ {
		seen[backoffDelay(1, 10*time.Millisecond, index)] = true
	}
	if len(seen) < 8 {
		t.Errorf("jitter across 32 indices produced only %d distinct delays", len(seen))
	}
	if d := backoffDelay(60, time.Second, 0); d > maxBackoff {
		t.Errorf("backoff exceeded cap: %v", d)
	}
}

func TestRetryableMarking(t *testing.T) {
	if Retryable(nil) != nil {
		t.Error("Retryable(nil) must be nil")
	}
	base := errors.New("transient")
	r := Retryable(base)
	if !IsRetryable(r) {
		t.Error("marked error not detected")
	}
	if !IsRetryable(fmt.Errorf("wrapped: %w", r)) {
		t.Error("marking must survive wrapping")
	}
	if IsRetryable(base) {
		t.Error("unmarked error detected as retryable")
	}
	if !errors.Is(r, base) {
		t.Error("Retryable must preserve the error chain")
	}
}

func TestSetDefaultOptionsAppliesToMap(t *testing.T) {
	SetDefaultOptions(PartialResults(), Retry(2, time.Millisecond))
	defer SetDefaultOptions()

	// Retry default heals a transient failure without per-call options...
	task, _ := failNTask("flaky", 2, 5)
	out, err := Map(context.Background(), []Task[int]{task})
	if err != nil || out[0] != 5 {
		t.Fatalf("default Retry not applied: out=%v err=%v", out, err)
	}
	// ...and partial-results default turns failures into a MultiError.
	tasks := []Task[int]{
		{Run: func(ctx context.Context) (int, error) { return 0, errors.New("dead") }},
		{Run: func(ctx context.Context) (int, error) { return 9, nil }},
	}
	out, err = Map(context.Background(), tasks)
	var me *MultiError
	if !errors.As(err, &me) {
		t.Fatalf("default PartialResults not applied: %v", err)
	}
	if out[1] != 9 {
		t.Errorf("healthy result lost: %v", out)
	}
}

func TestTaskHookInjectsIntoAttempts(t *testing.T) {
	var calls atomic.Int32
	SetTaskHook(func(ctx context.Context, label string, attempt int) error {
		calls.Add(1)
		if attempt == 0 {
			return Retryable(errors.New("injected"))
		}
		return nil
	})
	defer SetTaskHook(nil)

	out, err := MapN(context.Background(), 3, nil,
		func(ctx context.Context, i int) (int, error) { return i + 1, nil },
		Retry(1, time.Millisecond))
	if err != nil {
		t.Fatalf("hook-injected transient should heal under Retry(1): %v", err)
	}
	if out[0] != 1 || out[1] != 2 || out[2] != 3 {
		t.Errorf("out = %v", out)
	}
	if got := calls.Load(); got != 6 {
		t.Errorf("hook ran %d times, want 6 (2 attempts x 3 tasks)", got)
	}
}

func TestRetriedCounter(t *testing.T) {
	ResetCounters()
	task, _ := failNTask("flaky", 2, 1)
	if _, err := Map(context.Background(), []Task[int]{task}, Retry(2, time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	s := Snapshot()
	if s.Retried != 2 {
		t.Errorf("Retried = %d, want 2", s.Retried)
	}
	if s.Started != 3 || s.Done != 3 {
		t.Errorf("attempt accounting: started=%d done=%d, want 3/3", s.Started, s.Done)
	}
	if s.Failed != 2 {
		t.Errorf("Failed = %d, want 2 (the healed attempts still failed)", s.Failed)
	}
}

func TestResetCountersDuringConcurrentMaps(t *testing.T) {
	// Regression test for the reset race: zeroing fields one at a time
	// could interleave with concurrent updates and yield Done > Started.
	// The generation-swap scheme must keep every snapshot internally
	// consistent under concurrent sweeps and resets.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, _ = MapN(context.Background(), 8, nil,
					func(ctx context.Context, i int) (int, error) { return i, nil })
			}
		}()
	}
	deadline := time.After(200 * time.Millisecond)
	for done := false; !done; {
		select {
		case <-deadline:
			done = true
		default:
			ResetCounters()
			s := Snapshot()
			if s.Done > s.Started {
				t.Fatalf("inconsistent snapshot: done=%d > started=%d", s.Done, s.Started)
			}
		}
	}
	close(stop)
	wg.Wait()
	ResetCounters()
}

func TestWriterReporterSequenceStrictlyIncreasing(t *testing.T) {
	var sb strings.Builder
	r := NewWriterReporter(&syncWriter{w: &sb})
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.TaskDone("x", time.Millisecond, nil)
		}()
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 50 {
		t.Fatalf("got %d lines, want 50", len(lines))
	}
	seen := map[string]bool{}
	for _, ln := range lines {
		seq, _, ok := strings.Cut(ln, " ")
		if !ok || seen[seq] {
			t.Fatalf("duplicate or malformed sequence number in %q", ln)
		}
		seen[seq] = true
	}
}

// syncWriter serializes writes so the test can split lines safely; the
// reporter's own mutex is what guarantees no interleaving, this only
// makes the strings.Builder race-free.
type syncWriter struct {
	mu sync.Mutex
	w  *strings.Builder
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

func TestFailFastStillReportsLowestIndexWithSupervision(t *testing.T) {
	// The documented determinism contract must hold with retries in play:
	// whichever worker finishes first, the error reported is the failed
	// task with the lowest index.
	for trial := 0; trial < 10; trial++ {
		tasks := make([]Task[int], 6)
		for i := range tasks {
			i := i
			tasks[i] = Task[int]{Label: fmt.Sprintf("t%d", i), Run: func(ctx context.Context) (int, error) {
				if i == 2 || i == 4 {
					return 0, fmt.Errorf("fail %d", i)
				}
				return i, nil
			}}
		}
		_, err := Map(context.Background(), tasks, Workers(4), Retry(1, time.Microsecond))
		var te *TaskError
		if !errors.As(err, &te) {
			t.Fatalf("want *TaskError, got %v", err)
		}
		if te.Index != 2 {
			t.Fatalf("trial %d: reported index %d, want 2 (lowest failed)", trial, te.Index)
		}
	}
}
