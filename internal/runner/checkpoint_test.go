package runner

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cp := OpenCheckpoint(dir, "run1")
	if cp.Len() != 0 {
		t.Fatalf("fresh checkpoint has %d entries", cp.Len())
	}
	if err := cp.MarkDone("fig1", "key-a"); err != nil {
		t.Fatal(err)
	}
	if err := cp.MarkDone("fig2", "key-b"); err != nil {
		t.Fatal(err)
	}

	// A new open of the same run ID sees the persisted progress.
	cp2 := OpenCheckpoint(dir, "run1")
	if cp2.Len() != 2 {
		t.Fatalf("reopened checkpoint has %d entries, want 2", cp2.Len())
	}
	if key, ok := cp2.DoneKey("fig1"); !ok || key != "key-a" {
		t.Errorf("fig1 key = %q, %v", key, ok)
	}
	if got := cp2.DoneSlugs(); len(got) != 2 || got[0] != "fig1" || got[1] != "fig2" {
		t.Errorf("DoneSlugs = %v, want sorted [fig1 fig2]", got)
	}
}

func TestCheckpointIsolatedByRunID(t *testing.T) {
	dir := t.TempDir()
	if err := OpenCheckpoint(dir, "runA").MarkDone("fig1", "k"); err != nil {
		t.Fatal(err)
	}
	// A different run ID must not see runA's progress.
	if n := OpenCheckpoint(dir, "runB").Len(); n != 0 {
		t.Errorf("runB adopted runA's checkpoint (%d entries)", n)
	}
}

func TestCheckpointRejectsCorruptFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run1.json")
	if err := os.WriteFile(path, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if n := OpenCheckpoint(dir, "run1").Len(); n != 0 {
		t.Errorf("corrupt checkpoint adopted (%d entries)", n)
	}
	// Wrong schema is equally rejected.
	raw, _ := json.Marshal(checkpointFile{Schema: 999, RunID: "run1", Done: map[string]string{"x": "y"}})
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if n := OpenCheckpoint(dir, "run1").Len(); n != 0 {
		t.Errorf("wrong-schema checkpoint adopted (%d entries)", n)
	}
}

func TestCheckpointResetAndRemove(t *testing.T) {
	dir := t.TempDir()
	cp := OpenCheckpoint(dir, "run1")
	if err := cp.MarkDone("fig1", "k"); err != nil {
		t.Fatal(err)
	}
	cp.Reset()
	if cp.Len() != 0 {
		t.Error("Reset left entries behind")
	}
	if _, err := os.Stat(filepath.Join(dir, "run1.json")); !os.IsNotExist(err) {
		t.Error("Reset left the file on disk")
	}

	if err := cp.MarkDone("fig2", "k2"); err != nil {
		t.Fatal(err)
	}
	if err := cp.Remove(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "run1.json")); !os.IsNotExist(err) {
		t.Error("Remove left the file on disk")
	}
	// Removing an already-removed checkpoint is not an error.
	if err := cp.Remove(); err != nil {
		t.Errorf("double Remove: %v", err)
	}
}

func TestCheckpointNilReceiver(t *testing.T) {
	var cp *Checkpoint
	if err := cp.MarkDone("x", "y"); err != nil {
		t.Error(err)
	}
	if _, ok := cp.DoneKey("x"); ok {
		t.Error("nil checkpoint reported a done cell")
	}
	if cp.Len() != 0 || cp.DoneSlugs() != nil {
		t.Error("nil checkpoint not empty")
	}
	cp.Reset()
	if err := cp.Remove(); err != nil {
		t.Error(err)
	}
}

func TestCheckpointAtomicOnDisk(t *testing.T) {
	// Every persisted state must be a complete, decodable snapshot — the
	// write-temp-then-rename discipline means a reader never sees a torn
	// file, and no temp files are left behind.
	dir := t.TempDir()
	cp := OpenCheckpoint(dir, "run1")
	for i, slug := range []string{"a", "b", "c", "d"} {
		if err := cp.MarkDone(slug, "k"); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(filepath.Join(dir, "run1.json"))
		if err != nil {
			t.Fatal(err)
		}
		var f checkpointFile
		if err := json.Unmarshal(raw, &f); err != nil {
			t.Fatalf("snapshot %d not decodable: %v", i, err)
		}
		if len(f.Done) != i+1 {
			t.Fatalf("snapshot %d has %d entries", i, len(f.Done))
		}
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Errorf("checkpoint dir has %d files, want 1 (no temp leftovers)", len(ents))
	}
}
