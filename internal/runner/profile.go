package runner

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profiling helpers for the experiment driver. They live in runner rather
// than cmd/paperbench so that profiles are started before any worker-pool
// fan-out and cover every experiment goroutine, not just main — pprof
// profiles are process-wide, but the wiring here guarantees the start/stop
// bracket encloses the pool's whole lifetime and gives every command one
// correct way to do it.

// StartCPUProfile begins a CPU profile written to path and returns a stop
// function that ends the profile and closes the file. Call stop exactly
// once, after all experiment work (including pooled workers) has finished.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("runner: creating cpu profile %s: %w", path, err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("runner: starting cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		if err := f.Close(); err != nil {
			return fmt.Errorf("runner: closing cpu profile %s: %w", path, err)
		}
		return nil
	}, nil
}

// WriteHeapProfile forces a GC (so the profile reflects live objects, not
// garbage awaiting collection) and writes the heap profile to path. Call
// it at the end of the run, after the worker pool has drained.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("runner: creating heap profile %s: %w", path, err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("runner: writing heap profile %s: %w", path, err)
	}
	return nil
}
