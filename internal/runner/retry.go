package runner

import (
	"context"
	"errors"
	"time"
)

// DefaultBackoff is the base delay of the retry schedule when Retry is
// given a non-positive base.
const DefaultBackoff = 100 * time.Millisecond

// maxBackoff caps the exponential schedule so a long retry chain never
// sleeps unboundedly between attempts.
const maxBackoff = 30 * time.Second

// retryableError marks an error as transient: the supervision layer may
// re-run the failed attempt (up to the Retry budget) instead of failing
// the task. Only errors explicitly marked this way are retried — a
// deterministic simulation failing twice on the same input would fail a
// third time too, so blanket retries would only burn time.
type retryableError struct{ err error }

func (e *retryableError) Error() string   { return e.err.Error() }
func (e *retryableError) Unwrap() error   { return e.err }
func (e *retryableError) Retryable() bool { return true }

// Retryable marks err as transient so Map's Retry option will re-run the
// attempt. Wrapping nil returns nil.
func Retryable(err error) error {
	if err == nil {
		return nil
	}
	return &retryableError{err: err}
}

// IsRetryable reports whether err (or anything it wraps) was marked with
// Retryable, or implements `Retryable() bool` returning true. Panics and
// deadline expirations are never retryable: a panic is a bug, and a task
// that exhausted its deadline once would almost certainly exhaust it
// again.
func IsRetryable(err error) bool {
	var r interface{ Retryable() bool }
	return errors.As(err, &r) && r.Retryable()
}

// splitmix64 is the SplitMix64 mixing function — a tiny, well-distributed
// hash used to derive deterministic backoff jitter from (task index,
// attempt). No global RNG state means reruns are byte-identical.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// backoffDelay returns the sleep before retry number attempt (0-based) of
// the task at index: exponential in the attempt with deterministic jitter
// in [base·2ᵃ/2, base·2ᵃ], seeded by (index, attempt). Decorrelated
// enough that a whole sweep retrying at once does not thundering-herd,
// deterministic enough that two identical reruns sleep identically.
func backoffDelay(attempt int, base time.Duration, index int) time.Duration {
	if base <= 0 {
		base = DefaultBackoff
	}
	d := base
	for i := 0; i < attempt; i++ {
		d *= 2
		if d >= maxBackoff || d <= 0 {
			d = maxBackoff
			break
		}
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	j := splitmix64(uint64(index)<<20 ^ uint64(attempt)+1)
	return half + time.Duration(j%uint64(half+1))
}

// sleepCtx sleeps for d or until ctx is cancelled, reporting whether the
// full sleep completed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
