package runner

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/durable"
)

// checkpointSchema versions the on-disk checkpoint format.
const checkpointSchema = 1

// DefaultCheckpointDir is where cmd/paperbench snapshots sweep progress,
// relative to the working directory.
const DefaultCheckpointDir = "results/checkpoint"

// Checkpoint records which cells of a sweep have completed, keyed by the
// cell's slug, with the memo-cache key each completion was stored under.
// It is persisted after every update with the same write-temp-then-rename
// discipline as the cache, so a run killed at any instant leaves either
// the previous snapshot or the new one — never a torn file. A resumed run
// (paperbench -resume) replays checkpointed cells from the memo cache and
// recomputes only the remainder.
//
// A nil *Checkpoint is valid and records nothing, mirroring the nil
// *Cache convention.
type Checkpoint struct {
	mu   sync.Mutex
	path string
	data checkpointFile
}

type checkpointFile struct {
	Schema int               `json:"schema"`
	RunID  string            `json:"run_id"`
	Done   map[string]string `json:"done"` // slug -> cache key
}

// OpenCheckpoint loads (or initializes) the checkpoint for runID under
// dir. An existing file is adopted only if it matches the run ID and
// schema; anything else — a different configuration's leftovers, a
// corrupt file — starts an empty checkpoint (the stale file is simply
// overwritten at the first MarkDone; checkpoints are pure progress
// records, losing one only costs recomputation).
func OpenCheckpoint(dir, runID string) *Checkpoint {
	c := &Checkpoint{
		path: filepath.Join(dir, runID+".json"),
		data: checkpointFile{Schema: checkpointSchema, RunID: runID, Done: map[string]string{}},
	}
	raw, err := os.ReadFile(c.path)
	if err != nil {
		return c
	}
	var f checkpointFile
	if json.Unmarshal(raw, &f) != nil || f.Schema != checkpointSchema || f.RunID != runID || f.Done == nil {
		return c
	}
	c.data = f
	return c
}

// MarkDone records that the cell slug completed under the given cache
// key and persists the snapshot atomically.
func (c *Checkpoint) MarkDone(slug, key string) error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.data.Done[slug] = key
	return c.save()
}

// DoneKey returns the cache key slug completed under, if checkpointed.
func (c *Checkpoint) DoneKey(slug string) (string, bool) {
	if c == nil {
		return "", false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	key, ok := c.data.Done[slug]
	return key, ok
}

// Len returns how many cells are checkpointed.
func (c *Checkpoint) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.data.Done)
}

// DoneSlugs returns the checkpointed cell slugs, sorted.
func (c *Checkpoint) DoneSlugs() []string {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	slugs := make([]string, 0, len(c.data.Done))
	for s := range c.data.Done {
		slugs = append(slugs, s)
	}
	sort.Strings(slugs)
	return slugs
}

// Reset drops all recorded progress (a fresh, non-resumed run adopting
// the same run ID starts over). The on-disk file is rewritten on the
// next MarkDone; Reset itself removes it so a run that completes nothing
// leaves nothing behind.
func (c *Checkpoint) Reset() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.data.Done = map[string]string{}
	_ = os.Remove(c.path)
}

// Remove deletes the on-disk snapshot — the run completed, there is
// nothing left to resume.
func (c *Checkpoint) Remove() error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	err := os.Remove(c.path)
	if err != nil && os.IsNotExist(err) {
		return nil
	}
	return err
}

// save writes the snapshot via temp-file + rename, fsyncing the file
// and its directory when the process-wide sync policy asks for power-
// loss durability (SetSyncPolicy). Caller holds c.mu.
func (c *Checkpoint) save() error {
	dir := filepath.Dir(c.path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("runner: checkpoint dir: %w", err)
	}
	raw, err := json.MarshalIndent(c.data, "", "  ")
	if err != nil {
		return fmt.Errorf("runner: encoding checkpoint: %w", err)
	}
	if err := durable.WriteFileAtomic(c.path, raw, 0o644, writeSyncPolicy()); err != nil {
		return fmt.Errorf("runner: committing checkpoint: %w", err)
	}
	return nil
}
