package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func intTasks(n int, f func(i int) (int, error)) []Task[int] {
	tasks := make([]Task[int], n)
	for i := 0; i < n; i++ {
		i := i
		tasks[i] = Task[int]{Label: fmt.Sprintf("t%d", i), Run: func(context.Context) (int, error) { return f(i) }}
	}
	return tasks
}

func TestMapOrderedResults(t *testing.T) {
	// Reverse-staggered sleeps force completion order to oppose task
	// order; results must still come back in task order.
	tasks := make([]Task[int], 16)
	for i := range tasks {
		i := i
		tasks[i] = Task[int]{Run: func(context.Context) (int, error) {
			time.Sleep(time.Duration(len(tasks)-i) * time.Millisecond)
			return i * i, nil
		}}
	}
	out, err := Map(context.Background(), tasks, Workers(8))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapSameResultsAnyWorkerCount(t *testing.T) {
	compute := func(workers int) []int {
		out, err := Map(context.Background(), intTasks(40, func(i int) (int, error) { return 3 * i, nil }), Workers(workers))
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	one := compute(1)
	for _, w := range []int{2, 4, 16} {
		got := compute(w)
		for i := range one {
			if got[i] != one[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", w, i, got[i], one[i])
			}
		}
	}
}

func TestMapPanicIsolation(t *testing.T) {
	tasks := intTasks(10, func(i int) (int, error) {
		if i == 4 {
			panic("benchmark exploded")
		}
		return i, nil
	})
	_, err := Map(context.Background(), tasks, Workers(2))
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got %v", err)
	}
	if pe.Value != "benchmark exploded" || pe.Label != "t4" {
		t.Fatalf("unexpected panic payload: %+v", pe)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("panic error should carry a stack")
	}
}

func TestMapDeterministicFirstError(t *testing.T) {
	// Two failing tasks: the lowest-index failure must win no matter how
	// workers interleave.
	for trial := 0; trial < 20; trial++ {
		tasks := intTasks(12, func(i int) (int, error) {
			if i == 3 || i == 9 {
				return 0, fmt.Errorf("boom %d", i)
			}
			return i, nil
		})
		_, err := Map(context.Background(), tasks, Workers(4))
		var te *TaskError
		if !errors.As(err, &te) {
			t.Fatalf("want *TaskError, got %v", err)
		}
		if te.Index != 3 {
			t.Fatalf("trial %d: first error index = %d, want 3", trial, te.Index)
		}
	}
}

func TestMapErrorCancelsTail(t *testing.T) {
	var ran atomic.Int64
	tasks := intTasks(64, func(i int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, errors.New("early failure")
		}
		time.Sleep(time.Millisecond)
		return i, nil
	})
	_, err := Map(context.Background(), tasks, Workers(1))
	if err == nil {
		t.Fatal("want error")
	}
	if n := ran.Load(); n == 64 {
		t.Fatal("failure should have cancelled unstarted tasks")
	}
}

func TestMapContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := Map(ctx, intTasks(8, func(i int) (int, error) { return i, nil }), Workers(2))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if len(out) != 8 {
		t.Fatalf("result slice must keep its shape, got len %d", len(out))
	}
}

func TestMapEmptyAndDefaults(t *testing.T) {
	out, err := Map(context.Background(), []Task[int]{}, Workers(0))
	if err != nil || len(out) != 0 {
		t.Fatalf("empty map: %v %v", out, err)
	}
	// Default worker count follows GOMAXPROCS.
	old := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(old)
	if _, err := Map(context.Background(), intTasks(5, func(i int) (int, error) { return i, nil })); err != nil {
		t.Fatal(err)
	}
}

func TestMapNLabels(t *testing.T) {
	out, err := MapN(context.Background(), 6, func(i int) string { return fmt.Sprintf("cell-%d", i) },
		func(_ context.Context, i int) (string, error) { return strings.Repeat("x", i), nil })
	if err != nil {
		t.Fatal(err)
	}
	if out[3] != "xxx" {
		t.Fatalf("out[3] = %q", out[3])
	}
}

// MustMap is gone: every call site now handles Map's error (partial
// results and failure summaries replaced panic-on-first-error); see
// supervise_test.go for the supervision-layer coverage.

type recordingReporter struct {
	mu    chan struct{}
	lines []string
}

func (r *recordingReporter) TaskDone(label string, d time.Duration, err error) {
	r.mu <- struct{}{}
	r.lines = append(r.lines, label)
	<-r.mu
}

func TestCountersAndReporter(t *testing.T) {
	ResetCounters()
	rep := &recordingReporter{mu: make(chan struct{}, 1)}
	SetReporter(rep)
	defer SetReporter(nil)

	tasks := intTasks(5, func(i int) (int, error) {
		if i == 2 {
			panic("pop")
		}
		return i, nil
	})
	_, err := Map(context.Background(), tasks, Workers(1))
	if err == nil {
		t.Fatal("want error")
	}
	s := Snapshot()
	if s.Started == 0 || s.Done != s.Started {
		t.Fatalf("counters inconsistent: %+v", s)
	}
	if s.Failed == 0 || s.Panicked != 1 {
		t.Fatalf("failure accounting wrong: %+v", s)
	}
	if len(rep.lines) == 0 {
		t.Fatal("reporter saw no tasks")
	}
}

func TestWriterReporterFormat(t *testing.T) {
	var sb strings.Builder
	r := NewWriterReporter(&sb)
	r.TaskDone("fig1/gcc", 1500*time.Millisecond, nil)
	r.TaskDone("", 10*time.Millisecond, errors.New("kaput"))
	out := sb.String()
	if !strings.Contains(out, "fig1/gcc 1.50s") {
		t.Fatalf("missing success line: %q", out)
	}
	if !strings.Contains(out, "(task) FAILED") || !strings.Contains(out, "kaput") {
		t.Fatalf("missing failure line: %q", out)
	}
}
