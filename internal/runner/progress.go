package runner

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Reporter receives per-task lifecycle events from the pool. Implementations
// must be safe for concurrent use; the pool calls them from worker
// goroutines.
type Reporter interface {
	// TaskDone fires when a task attempt finishes (successfully or not)
	// with its label, wall-clock duration, and error (nil on success).
	// With the Retry option every attempt reports, so a retried task is
	// visible as FAILED lines followed by a success line.
	TaskDone(label string, d time.Duration, err error)
}

// reporter holds the process-wide Reporter. Atomic so -progress can be
// toggled without racing the pool.
var reporter atomic.Pointer[Reporter]

// SetReporter installs r as the process-wide progress sink (nil disables
// reporting). cmd/paperbench installs a WriterReporter for -progress.
func SetReporter(r Reporter) {
	if r == nil {
		reporter.Store(nil)
		return
	}
	reporter.Store(&r)
}

// Counters is a snapshot of the pool's lifetime accounting.
type Counters struct {
	// Started and Done count task attempts handed to workers and attempts
	// finished (abandoned attempts count as done at their deadline).
	Started uint64
	Done    uint64
	// Failed counts attempts that returned an error; Panicked counts the
	// subset recovered from a panic; Retried counts the attempt re-runs
	// the supervision layer scheduled for retryable failures.
	Failed   uint64
	Panicked uint64
	Retried  uint64
	// Busy is the summed wall-clock time spent inside task bodies.
	Busy time.Duration
}

// counterBlock is one generation of pool counters. All counters for one
// attempt land in the block that was current when the attempt STARTED:
// taskStarted captures the block and its completion hook writes back to
// that same block, so Done can never exceed Started within a block and
// Snapshot stays internally consistent even while sweeps are running.
type counterBlock struct {
	started, done, failed, panicked, retried atomic.Uint64
	busyNS                                   atomic.Int64
}

// counters points at the current generation. ResetCounters swaps in a
// fresh block instead of zeroing fields one by one — the old scheme let a
// reset interleave with concurrent updates and produce impossible
// snapshots (Done > Started).
var counters atomic.Pointer[counterBlock]

func init() { counters.Store(&counterBlock{}) }

// Snapshot returns the pool's counters since process start (or the last
// ResetCounters). Safe to call while sweeps are in flight: the returned
// numbers are per-field atomic reads of the current generation, and
// Done never exceeds Started.
//
// The reads happen in REVERSE increment order (an attempt bumps
// started, then done, then failed, then panicked): attempts finishing
// between two loads can then only inflate the later-read, earlier-
// incremented counter, so every pairwise invariant (Panicked <= Failed
// <= Done <= Started) holds in the returned snapshot. Reading started
// first let a burst of short tasks complete between the started and
// done loads and produce Done > Started.
func Snapshot() Counters {
	b := counters.Load()
	c := Counters{
		Retried:  b.retried.Load(),
		Busy:     time.Duration(b.busyNS.Load()),
		Panicked: b.panicked.Load(),
	}
	c.Failed = b.failed.Load()
	c.Done = b.done.Load()
	c.Started = b.started.Load()
	return c
}

// ResetCounters starts a fresh counter generation (tests and
// per-invocation accounting). Safe under concurrent Map calls: attempts
// already in flight finish accounting into the pre-reset generation and
// are simply absent from post-reset snapshots, so two overlapping sweeps
// never observe each other's partial accounting as an inconsistency.
// Counters are process-wide, so overlapping sweeps that share a
// generation see summed totals — per-sweep accounting needs a reset (or
// delta snapshots) around each sweep.
func ResetCounters() {
	counters.Store(&counterBlock{})
}

// taskStarted records an attempt start and returns the completion hook
// the worker calls with the attempt's final error. The hook writes to
// the same counter generation the start was recorded in.
func taskStarted(label string) func(err error) {
	b := counters.Load()
	b.started.Add(1)
	start := time.Now()
	return func(err error) {
		d := time.Since(start)
		b.done.Add(1)
		b.busyNS.Add(int64(d))
		if err != nil {
			b.failed.Add(1)
			if _, ok := err.(*PanicError); ok {
				b.panicked.Add(1)
			}
		}
		if p := reporter.Load(); p != nil {
			(*p).TaskDone(label, d, err)
		}
	}
}

// WriterReporter streams one line per finished task attempt to w. All
// state lives behind one mutex: writes are serialized (no interleaved
// partial lines) and the [n] sequence number is incremented under the
// same lock that prints it, so it is strictly increasing — the old
// version read the global done-counter outside any critical section and
// could stamp two concurrent lines with the same count.
type WriterReporter struct {
	mu   sync.Mutex
	w    io.Writer
	done uint64
}

// NewWriterReporter builds a WriterReporter over w.
func NewWriterReporter(w io.Writer) *WriterReporter { return &WriterReporter{w: w} }

// TaskDone implements Reporter.
func (r *WriterReporter) TaskDone(label string, d time.Duration, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.done++
	if label == "" {
		label = "(task)"
	}
	if err != nil {
		fmt.Fprintf(r.w, "[%d] %s FAILED after %.2fs: %v\n", r.done, label, d.Seconds(), err)
		return
	}
	fmt.Fprintf(r.w, "[%d] %s %.2fs\n", r.done, label, d.Seconds())
}
