package runner

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Reporter receives per-task lifecycle events from the pool. Implementations
// must be safe for concurrent use; the pool calls them from worker
// goroutines.
type Reporter interface {
	// TaskDone fires when a task finishes (successfully or not) with its
	// label, wall-clock duration, and error (nil on success).
	TaskDone(label string, d time.Duration, err error)
}

// reporter holds the process-wide Reporter. Atomic so -progress can be
// toggled without racing the pool.
var reporter atomic.Pointer[Reporter]

// SetReporter installs r as the process-wide progress sink (nil disables
// reporting). cmd/paperbench installs a WriterReporter for -progress.
func SetReporter(r Reporter) {
	if r == nil {
		reporter.Store(nil)
		return
	}
	reporter.Store(&r)
}

// Counters is a snapshot of the pool's lifetime accounting.
type Counters struct {
	// Started and Done count tasks handed to workers and tasks finished.
	Started uint64
	Done    uint64
	// Failed counts tasks that returned an error; Panicked counts the
	// subset recovered from a panic.
	Failed   uint64
	Panicked uint64
	// Busy is the summed wall-clock time spent inside task bodies.
	Busy time.Duration
}

var (
	ctrStarted  atomic.Uint64
	ctrDone     atomic.Uint64
	ctrFailed   atomic.Uint64
	ctrPanicked atomic.Uint64
	ctrBusyNS   atomic.Int64
)

// Snapshot returns the pool's counters since process start (or the last
// ResetCounters).
func Snapshot() Counters {
	return Counters{
		Started:  ctrStarted.Load(),
		Done:     ctrDone.Load(),
		Failed:   ctrFailed.Load(),
		Panicked: ctrPanicked.Load(),
		Busy:     time.Duration(ctrBusyNS.Load()),
	}
}

// ResetCounters zeroes the pool counters (tests and per-invocation
// accounting).
func ResetCounters() {
	ctrStarted.Store(0)
	ctrDone.Store(0)
	ctrFailed.Store(0)
	ctrPanicked.Store(0)
	ctrBusyNS.Store(0)
}

// taskStarted records a task start and returns the completion hook the
// worker calls with the task's final error.
func taskStarted(label string) func(err error) {
	ctrStarted.Add(1)
	start := time.Now()
	return func(err error) {
		d := time.Since(start)
		ctrDone.Add(1)
		ctrBusyNS.Add(int64(d))
		if err != nil {
			ctrFailed.Add(1)
			if _, ok := err.(*PanicError); ok {
				ctrPanicked.Add(1)
			}
		}
		if p := reporter.Load(); p != nil {
			(*p).TaskDone(label, d, err)
		}
	}
}

// WriterReporter streams one line per finished task to w, serialized by a
// mutex so concurrent workers do not interleave partial lines.
type WriterReporter struct {
	mu sync.Mutex
	w  io.Writer
}

// NewWriterReporter builds a WriterReporter over w.
func NewWriterReporter(w io.Writer) *WriterReporter { return &WriterReporter{w: w} }

// TaskDone implements Reporter.
func (r *WriterReporter) TaskDone(label string, d time.Duration, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	done := ctrDone.Load()
	started := ctrStarted.Load()
	if label == "" {
		label = "(task)"
	}
	if err != nil {
		fmt.Fprintf(r.w, "[%d/%d] %s FAILED after %.2fs: %v\n", done, started, label, d.Seconds(), err)
		return
	}
	fmt.Fprintf(r.w, "[%d/%d] %s %.2fs\n", done, started, label, d.Seconds())
}
