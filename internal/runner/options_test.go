package runner

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestContextOptionsScopeToTheirMap checks that WithOptions affects only
// Map calls given that context: two concurrent sweeps with different
// job-scoped policies must not see each other's options.
func TestContextOptionsScopeToTheirMap(t *testing.T) {
	boom := errors.New("boom")
	tasks := func(failAt int) []Task[int] {
		out := make([]Task[int], 4)
		for i := range out {
			i := i
			out[i] = NewTask(fmt.Sprintf("t%d", i), func(context.Context) (int, error) {
				if i == failAt {
					return 0, boom
				}
				return i, nil
			})
		}
		return out
	}

	var wg sync.WaitGroup
	wg.Add(2)
	var partialErr, fastErr error
	go func() {
		defer wg.Done()
		ctx := WithOptions(context.Background(), PartialResults())
		_, partialErr = Map(ctx, tasks(1))
	}()
	go func() {
		defer wg.Done()
		_, fastErr = Map(context.Background(), tasks(1))
	}()
	wg.Wait()

	var me *MultiError
	if !errors.As(partialErr, &me) {
		t.Fatalf("job with context-scoped PartialResults: err = %T %v, want *MultiError", partialErr, partialErr)
	}
	var te *TaskError
	if !errors.As(fastErr, &te) || errors.As(fastErr, &me) {
		t.Fatalf("job without context options: err = %T %v, want bare *TaskError", fastErr, fastErr)
	}
}

// TestContextOptionsPrecedence pins the layering: process defaults, then
// context options, then per-call options — later wins.
func TestContextOptionsPrecedence(t *testing.T) {
	SetDefaultOptions(Retry(0, time.Millisecond))
	defer SetDefaultOptions()

	attempts := 0
	task := []Task[int]{NewTask("flaky", func(context.Context) (int, error) {
		attempts++
		if attempts < 3 {
			return 0, Retryable(errors.New("transient"))
		}
		return 42, nil
	})}

	// Context grants 1 retry, per-call raises it to 2: the task needs two
	// retries, so success proves the per-call option won.
	ctx := WithOptions(context.Background(), Workers(1), Retry(1, time.Millisecond))
	out, err := Map(ctx, task, Retry(2, time.Millisecond))
	if err != nil || out[0] != 42 {
		t.Fatalf("Map = %v, %v; want [42], nil (per-call Retry(2) must override context Retry(1))", out, err)
	}

	// Same context without the per-call override: only 1 retry, so the
	// task fails — proving the context option overrode... the default's 0
	// retries but was not silently widened.
	attempts = 0
	if _, err := Map(ctx, task); err == nil {
		t.Fatal("Map with context Retry(1) succeeded; want failure after 2 attempts")
	}
}

// TestWithOptionsCompose checks nested WithOptions accumulate instead of
// replacing.
func TestWithOptionsCompose(t *testing.T) {
	boom := errors.New("boom")
	ctx := WithOptions(context.Background(), PartialResults())
	ctx = WithOptions(ctx, Retry(1, time.Millisecond))

	attempts := 0
	_, err := Map(ctx, []Task[int]{NewTask("flaky", func(context.Context) (int, error) {
		attempts++
		if attempts == 1 {
			return 0, Retryable(boom)
		}
		return 1, nil
	}), NewTask("dead", func(context.Context) (int, error) {
		return 0, boom
	})})

	if attempts != 2 {
		t.Fatalf("flaky task ran %d attempt(s), want 2 (inner Retry option lost?)", attempts)
	}
	var me *MultiError
	if !errors.As(err, &me) || len(me.Failures) != 1 {
		t.Fatalf("err = %T %v, want *MultiError with 1 failure (outer PartialResults option lost?)", err, err)
	}
}
