package cpu

import (
	"fmt"

	"repro/internal/hier"
	"repro/internal/mem"
	"repro/internal/trace"
)

// SMT is the simultaneous-multithreading variant of the timing model,
// bringing the reproduction closer to the paper's actual infrastructure
// (SMTSIM) and giving Section 5.6's multithreading discussion measured
// numbers. The model follows the SMTSIM organization at the same level of
// abstraction as the single-threaded CPU:
//
//   - each hardware thread has its own ROB partition, register alias
//     table, and branch-predictor view (the counter table is shared, PCs
//     differ per thread's code layout);
//   - fetch is round-robin: each cycle, one thread fetches up to the full
//     fetch width (SMTSIM's RR.8 baseline policy);
//   - issue is simultaneous and shared: up to IssueWidth instructions per
//     cycle drawn from all threads' ready instructions, oldest-first
//     within a thread, threads interleaved round-robin for fairness,
//     sharing the ALU/LSU pools;
//   - all threads share one memory hierarchy, so they fight over cache
//     sets, MSHRs, buffer ports, and buses — the conflict-generation
//     mechanism the paper's multithreading section is about.
type SMT struct {
	cfg  Config
	h    *hier.Hierarchy
	pred []uint8

	threads []smtThread
	seq     uint64

	fetchRR int // next thread to fetch
	metrics []Metrics
}

// smtThread is one hardware context.
type smtThread struct {
	rob        []robEntry
	head, tail int
	count      int
	intQ, fpQ  int

	rat    [trace.NumRegs]int
	ratSeq [trace.NumRegs]uint64

	fetchResume uint64
	blockedOn   int
	stream      trace.Stream
	streamEnded bool
	retired     uint64
	target      uint64
}

// NewSMT builds an SMT core over a shared hierarchy. Each thread gets a
// ROB partition of cfg.ROBSize/nthreads and the instruction queues are
// split the same way, mirroring a static partition of the paper's two
// 32-entry queues.
func NewSMT(cfg Config, h *hier.Hierarchy, nthreads int) (*SMT, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if nthreads < 1 || nthreads > 8 {
		return nil, fmt.Errorf("cpu: SMT supports 1-8 threads, got %d", nthreads)
	}
	if cfg.ROBSize/nthreads < 4 {
		return nil, fmt.Errorf("cpu: ROB of %d too small for %d threads", cfg.ROBSize, nthreads)
	}
	s := &SMT{
		cfg:     cfg,
		h:       h,
		pred:    make([]uint8, cfg.PredictorSz),
		threads: make([]smtThread, nthreads),
		metrics: make([]Metrics, nthreads),
	}
	for i := range s.threads {
		t := &s.threads[i]
		t.rob = make([]robEntry, cfg.ROBSize/nthreads)
		t.blockedOn = -1
		for r := range t.rat {
			t.rat[r] = -1
		}
	}
	return s, nil
}

// MustNewSMT is NewSMT that panics on error.
func MustNewSMT(cfg Config, h *hier.Hierarchy, nthreads int) *SMT {
	s, err := NewSMT(cfg, h, nthreads)
	if err != nil {
		panic(err)
	}
	return s
}

// Run executes the threads' streams until every thread has retired
// maxInstrsPerThread instructions (or ended), returning per-thread
// metrics with the shared cycle count filled in.
func (s *SMT) Run(streams []trace.Stream, maxInstrsPerThread uint64) []Metrics {
	if len(streams) != len(s.threads) {
		panic(fmt.Sprintf("cpu: %d streams for %d threads", len(streams), len(s.threads)))
	}
	for i := range s.threads {
		s.threads[i].stream = streams[i]
		s.threads[i].target = maxInstrsPerThread
	}
	cycle := uint64(0)
	for {
		cycle++
		if s.cfg.MaxCycles != 0 && cycle > s.cfg.MaxCycles {
			break
		}
		s.retire(cycle)
		if s.allDone() {
			break
		}
		s.issue(cycle)
		s.fetch(cycle)
		if s.allIdle() {
			break
		}
	}
	for i := range s.metrics {
		s.metrics[i].Cycles = cycle
		s.metrics[i].Instructions = s.threads[i].retired
	}
	return append([]Metrics(nil), s.metrics...)
}

func (s *SMT) allDone() bool {
	for i := range s.threads {
		t := &s.threads[i]
		if t.target == 0 || t.retired < t.target {
			return false
		}
	}
	return true
}

func (s *SMT) allIdle() bool {
	for i := range s.threads {
		t := &s.threads[i]
		if t.count > 0 || !t.streamEnded {
			return false
		}
	}
	return true
}

// retire commits in order per thread, sharing the commit width equally.
func (s *SMT) retire(cycle uint64) {
	per := s.cfg.IssueWidth / len(s.threads)
	if per == 0 {
		per = 1
	}
	for ti := range s.threads {
		t := &s.threads[ti]
		for n := 0; n < per && t.count > 0; n++ {
			e := &t.rob[t.head]
			if !e.issued || e.done > cycle {
				break
			}
			t.retired++
			switch e.in.Op {
			case trace.Load:
				s.metrics[ti].Loads++
			case trace.Store:
				s.metrics[ti].Stores++
			case trace.Branch:
				s.metrics[ti].Branches++
			}
			t.head = (t.head + 1) % len(t.rob)
			t.count--
		}
	}
}

// issue wakes ready instructions across all threads, round-robin between
// threads per slot so no thread starves, sharing functional units.
func (s *SMT) issue(cycle uint64) {
	issued, lsu, ialu, falu := 0, 0, 0, 0
	// Per-thread scan positions (relative offset from head).
	pos := make([]int, len(s.threads))
	for issued < s.cfg.IssueWidth {
		progress := false
		for ti := range s.threads {
			if issued >= s.cfg.IssueWidth {
				break
			}
			t := &s.threads[ti]
			// Advance this thread's scan to its next issuable instruction.
			for ; pos[ti] < t.count; pos[ti]++ {
				idx := (t.head + pos[ti]) % len(t.rob)
				e := &t.rob[idx]
				if e.issued {
					continue
				}
				if !operandReadySMT(t, e.p1, e.p1seq, cycle) || !operandReadySMT(t, e.p2, e.p2seq, cycle) {
					continue
				}
				fp := e.in.Op.IsFP()
				switch {
				case e.in.Op.IsMem():
					if lsu >= s.cfg.LSUs {
						continue
					}
				case fp:
					if falu >= s.cfg.FPALUs {
						continue
					}
				default:
					if ialu >= s.cfg.IntALUs {
						continue
					}
				}
				var done uint64
				switch e.in.Op {
				case trace.Load:
					res := s.h.Access(cycle, mem.Access{Addr: e.in.Addr, PC: e.in.PC, Type: mem.Load})
					if res.Stall {
						s.metrics[ti].LoadStallRetries++
						lsu++
						continue
					}
					done = res.Done
				case trace.Store:
					res := s.h.Access(cycle, mem.Access{Addr: e.in.Addr, PC: e.in.PC, Type: mem.Store})
					if res.Stall {
						s.metrics[ti].LoadStallRetries++
						lsu++
						continue
					}
					done = cycle + 1
				default:
					done = cycle + uint64(e.in.Op.ExecLatency())
				}
				e.issued = true
				e.done = done
				if e.in.Op.IsMem() {
					lsu++
				} else if fp {
					falu++
				} else {
					ialu++
				}
				if fp {
					t.fpQ--
				} else {
					t.intQ--
				}
				if t.blockedOn == idx {
					t.blockedOn = -1
					t.fetchResume = done + uint64(s.cfg.MispredictPenalty)
				}
				issued++
				progress = true
				pos[ti]++
				break // one instruction per thread per round
			}
		}
		if !progress {
			break
		}
	}
}

// operandReadySMT mirrors CPU.operandReady over a thread's ROB partition.
func operandReadySMT(t *smtThread, slot int, seq, cycle uint64) bool {
	if slot < 0 {
		return true
	}
	p := &t.rob[slot]
	if p.seq != seq {
		return true
	}
	return p.issued && p.done <= cycle
}

// fetch gives the full fetch width to one thread per cycle, round-robin,
// skipping threads that are squashed, out of ROB space, or finished.
func (s *SMT) fetch(cycle uint64) {
	n := len(s.threads)
	perQ := s.cfg.IntQSize / n
	if perQ < 1 {
		perQ = 1
	}
	for attempt := 0; attempt < n; attempt++ {
		ti := s.fetchRR
		s.fetchRR = (s.fetchRR + 1) % n
		t := &s.threads[ti]
		if t.streamEnded || cycle < t.fetchResume || t.blockedOn >= 0 {
			continue
		}
		if t.target != 0 && t.retired >= t.target {
			continue
		}
		fetched := false
		for k := 0; k < s.cfg.FetchWidth; k++ {
			if t.count >= len(t.rob) || t.intQ >= perQ || t.fpQ >= perQ {
				break
			}
			var in trace.Instr
			if !t.stream.Next(&in) {
				t.streamEnded = true
				break
			}
			idx := t.tail
			s.seq++
			e := robEntry{in: in, seq: s.seq, p1: -1, p2: -1}
			if in.Src1 != trace.RegZero && t.rat[in.Src1] >= 0 {
				e.p1, e.p1seq = t.rat[in.Src1], t.ratSeq[in.Src1]
			}
			if in.Src2 != trace.RegZero && t.rat[in.Src2] >= 0 {
				e.p2, e.p2seq = t.rat[in.Src2], t.ratSeq[in.Src2]
			}
			t.rob[idx] = e
			if in.Dest != trace.RegZero {
				t.rat[in.Dest] = idx
				t.ratSeq[in.Dest] = s.seq
			}
			t.tail = (t.tail + 1) % len(t.rob)
			t.count++
			fetched = true
			if in.Op.IsFP() {
				t.fpQ++
			} else {
				t.intQ++
			}
			if in.Op == trace.Branch {
				i := (uint64(in.PC) >> 2) & uint64(s.cfg.PredictorSz-1)
				predictTaken := s.pred[i] >= 2
				if predictTaken != in.Taken {
					s.metrics[ti].Mispredicts++
					t.blockedOn = idx
				}
				if in.Taken {
					if s.pred[i] < 3 {
						s.pred[i]++
					}
				} else if s.pred[i] > 0 {
					s.pred[i]--
				}
				if t.blockedOn == idx {
					break
				}
			}
		}
		if fetched {
			return // one thread fetches per cycle
		}
	}
}
