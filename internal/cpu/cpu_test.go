package cpu

import (
	"testing"

	"repro/internal/assist"
	"repro/internal/cache"
	"repro/internal/hier"
	"repro/internal/mem"
	"repro/internal/trace"
)

func dmConfig() cache.Config {
	return cache.Config{Name: "t", Size: 16 * 1024, LineSize: 64, Assoc: 1}
}

func newCPU(t *testing.T, cfg Config) *CPU {
	t.Helper()
	h := hier.MustNew(hier.DefaultConfig(), assist.MustNewBaseline(dmConfig(), 0))
	return MustNew(cfg, h)
}

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.FetchWidth = 0 },
		func(c *Config) { c.IssueWidth = 0 },
		func(c *Config) { c.ROBSize = 0 },
		func(c *Config) { c.IntQSize = 0 },
		func(c *Config) { c.LSUs = 0 },
		func(c *Config) { c.PredictorSz = 100 },
	}
	for i, m := range bad {
		c := DefaultConfig()
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestRunsToStreamEnd(t *testing.T) {
	c := newCPU(t, DefaultConfig())
	ins := make([]trace.Instr, 100)
	for i := range ins {
		ins[i] = trace.Instr{PC: mem.Addr(i * 4), Op: trace.IntOp, Dest: uint8(1 + i%60)}
	}
	m := c.Run(trace.NewSliceStream(ins), 0)
	if m.Instructions != 100 {
		t.Errorf("retired %d, want 100", m.Instructions)
	}
	if m.Cycles == 0 || m.IPC() <= 0 {
		t.Error("no cycles accounted")
	}
}

func TestRetireTargetHonored(t *testing.T) {
	c := newCPU(t, DefaultConfig())
	ins := make([]trace.Instr, 1000)
	for i := range ins {
		ins[i] = trace.Instr{PC: mem.Addr(i * 4), Op: trace.IntOp, Dest: uint8(1 + i%60)}
	}
	m := c.Run(trace.NewSliceStream(ins), 50)
	if m.Instructions < 50 || m.Instructions > 58 {
		t.Errorf("retired %d, want ~50", m.Instructions)
	}
}

func TestIndependentIntOpsSustainWideIssue(t *testing.T) {
	cfg := DefaultConfig()
	c := newCPU(t, cfg)
	ins := make([]trace.Instr, 4000)
	for i := range ins {
		ins[i] = trace.Instr{PC: mem.Addr(i % 16 * 4), Op: trace.IntOp, Dest: uint8(1 + i%60)}
	}
	m := c.Run(trace.NewSliceStream(ins), 0)
	// Independent single-cycle ops should sustain several per cycle
	// (bounded by fetch/issue width 8 and ALU count).
	if ipc := m.IPC(); ipc < 3 {
		t.Errorf("independent int IPC = %.2f, want > 3", ipc)
	}
}

func TestSerialChainBoundsIPC(t *testing.T) {
	c := newCPU(t, DefaultConfig())
	// Every instruction depends on the previous one: IPC can't beat 1.
	ins := make([]trace.Instr, 2000)
	for i := range ins {
		ins[i] = trace.Instr{PC: 0x40, Op: trace.IntOp, Dest: 5, Src1: 5}
	}
	m := c.Run(trace.NewSliceStream(ins), 0)
	if ipc := m.IPC(); ipc > 1.05 {
		t.Errorf("serial chain IPC = %.2f, must be <= ~1", ipc)
	}
}

func TestFPDivChainIsSlow(t *testing.T) {
	c := newCPU(t, DefaultConfig())
	ins := make([]trace.Instr, 500)
	for i := range ins {
		ins[i] = trace.Instr{PC: 0x40, Op: trace.FPDiv, Dest: 5, Src1: 5}
	}
	m := c.Run(trace.NewSliceStream(ins), 0)
	// Each divide takes 16 cycles and they are serialized.
	if ipc := m.IPC(); ipc > 1.0/12 {
		t.Errorf("serial fdiv IPC = %.3f, want <= %.3f", ipc, 1.0/12)
	}
}

func TestLoadMissLatencyVisible(t *testing.T) {
	// A serial chain of loads, each to a fresh line: every load costs a
	// full memory round trip.
	c := newCPU(t, DefaultConfig())
	ins := make([]trace.Instr, 200)
	for i := range ins {
		ins[i] = trace.Instr{PC: 0x80, Op: trace.Load, Dest: 7, Src1: 7, Addr: mem.Addr(0x100000 + i*577*64)}
	}
	m := c.Run(trace.NewSliceStream(ins), 0)
	if cpl := float64(m.Cycles) / float64(m.Instructions); cpl < 50 {
		t.Errorf("serial missing loads: %.1f cycles each, want >= 50", cpl)
	}
	// The same chain hitting one resident line is fast.
	c2 := newCPU(t, DefaultConfig())
	ins2 := make([]trace.Instr, 200)
	for i := range ins2 {
		ins2[i] = trace.Instr{PC: 0x80, Op: trace.Load, Dest: 7, Src1: 7, Addr: 0x3000}
	}
	m2 := c2.Run(trace.NewSliceStream(ins2), 0)
	if m2.Cycles >= m.Cycles/5 {
		t.Errorf("hit chain (%d cyc) should be far faster than miss chain (%d cyc)", m2.Cycles, m.Cycles)
	}
}

func TestIndependentLoadsOverlap(t *testing.T) {
	// Independent missing loads should overlap in the MSHRs: much faster
	// than the serial chain.
	serial := newCPU(t, DefaultConfig())
	indep := newCPU(t, DefaultConfig())
	n := 200
	mkSerial := make([]trace.Instr, n)
	mkIndep := make([]trace.Instr, n)
	for i := 0; i < n; i++ {
		addr := mem.Addr(0x100000 + i*577*64)
		mkSerial[i] = trace.Instr{PC: 0x80, Op: trace.Load, Dest: 7, Src1: 7, Addr: addr}
		mkIndep[i] = trace.Instr{PC: 0x80, Op: trace.Load, Dest: uint8(1 + i%60), Addr: addr}
	}
	ms := serial.Run(trace.NewSliceStream(mkSerial), 0)
	mi := indep.Run(trace.NewSliceStream(mkIndep), 0)
	if mi.Cycles*3 > ms.Cycles {
		t.Errorf("independent loads (%d cyc) should be >3x faster than serial (%d cyc)", mi.Cycles, ms.Cycles)
	}
}

func TestBranchPredictionLearnsLoops(t *testing.T) {
	c := newCPU(t, DefaultConfig())
	// A loop branch taken 15 of 16 times: the 2-bit predictor should do
	// well after warmup.
	ins := make([]trace.Instr, 3200)
	for i := range ins {
		if i%4 == 3 {
			ins[i] = trace.Instr{PC: 0x100, Op: trace.Branch, Taken: (i/4)%16 != 15}
		} else {
			ins[i] = trace.Instr{PC: mem.Addr(i % 4 * 4), Op: trace.IntOp, Dest: uint8(1 + i%60)}
		}
	}
	m := c.Run(trace.NewSliceStream(ins), 0)
	if m.Branches == 0 {
		t.Fatal("no branches retired")
	}
	if rate := m.MispredictRate(); rate > 0.15 {
		t.Errorf("loop mispredict rate = %.2f", rate)
	}
}

func TestMispredictsCostCycles(t *testing.T) {
	run := func(taken func(i int) bool) Metrics {
		c := newCPU(t, DefaultConfig())
		ins := make([]trace.Instr, 4000)
		for i := range ins {
			if i%2 == 1 {
				ins[i] = trace.Instr{PC: 0x200, Op: trace.Branch, Taken: taken(i)}
			} else {
				ins[i] = trace.Instr{PC: 0x40, Op: trace.IntOp, Dest: uint8(1 + i%60)}
			}
		}
		return c.Run(trace.NewSliceStream(ins), 0)
	}
	predictable := run(func(i int) bool { return true })
	// Alternating taken/not-taken defeats a 2-bit counter half the time.
	hostile := run(func(i int) bool { return (i/2)%2 == 0 })
	if hostile.Mispredicts <= predictable.Mispredicts {
		t.Fatalf("hostile branches mispredict more: %d vs %d", hostile.Mispredicts, predictable.Mispredicts)
	}
	if hostile.Cycles <= predictable.Cycles {
		t.Errorf("mispredicts should cost cycles: %d vs %d", hostile.Cycles, predictable.Cycles)
	}
}

func TestStoresDoNotBlockRetirement(t *testing.T) {
	c := newCPU(t, DefaultConfig())
	ins := make([]trace.Instr, 400)
	for i := range ins {
		ins[i] = trace.Instr{PC: 0x40, Op: trace.Store, Addr: mem.Addr(0x100000 + i*577*64), Src1: 0}
	}
	m := c.Run(trace.NewSliceStream(ins), 0)
	// Missing stores drain through the store buffer: far cheaper than
	// missing loads.
	if cpl := float64(m.Cycles) / float64(m.Instructions); cpl > 20 {
		t.Errorf("stores cost %.1f cycles each; store buffer broken", cpl)
	}
}

func TestMaxCyclesBound(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxCycles = 100
	c := newCPU(t, cfg)
	ins := make([]trace.Instr, 100000)
	for i := range ins {
		ins[i] = trace.Instr{PC: 0x80, Op: trace.Load, Dest: 7, Src1: 7, Addr: mem.Addr(0x100000 + i*577*64)}
	}
	m := c.Run(trace.NewSliceStream(ins), 0)
	if m.Cycles > 101 {
		t.Errorf("MaxCycles not honored: %d", m.Cycles)
	}
}

func TestMetricsCounts(t *testing.T) {
	c := newCPU(t, DefaultConfig())
	ins := []trace.Instr{
		{Op: trace.Load, Dest: 1, Addr: 0x1000},
		{Op: trace.Store, Addr: 0x1000, Src1: 1},
		{Op: trace.Branch, Taken: true},
		{Op: trace.IntOp, Dest: 2},
	}
	m := c.Run(trace.NewSliceStream(ins), 0)
	if m.Loads != 1 || m.Stores != 1 || m.Branches != 1 || m.Instructions != 4 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestDeterministicRuns(t *testing.T) {
	mk := func() Metrics {
		c := newCPU(t, DefaultConfig())
		ins := make([]trace.Instr, 3000)
		for i := range ins {
			switch i % 5 {
			case 0:
				ins[i] = trace.Instr{PC: mem.Addr(i * 4), Op: trace.Load, Dest: uint8(1 + i%60), Addr: mem.Addr(i * 937 % 100000 * 64)}
			case 1:
				ins[i] = trace.Instr{PC: mem.Addr(i * 4), Op: trace.Branch, Taken: i%3 == 0}
			default:
				ins[i] = trace.Instr{PC: mem.Addr(i * 4), Op: trace.IntOp, Dest: uint8(1 + i%60), Src1: uint8(1 + (i+30)%60)}
			}
		}
		return c.Run(trace.NewSliceStream(ins), 0)
	}
	if mk() != mk() {
		t.Error("CPU runs are not deterministic")
	}
}
