package cpu

import (
	"testing"

	"repro/internal/assist"
	"repro/internal/hier"
	"repro/internal/mem"
	"repro/internal/trace"
)

func newSMT(t *testing.T, nthreads int) *SMT {
	t.Helper()
	h := hier.MustNew(hier.DefaultConfig(), assist.MustNewBaseline(dmConfig(), 0))
	return MustNewSMT(DefaultConfig(), h, nthreads)
}

func intStream(n int, pcBase mem.Addr) trace.Stream {
	ins := make([]trace.Instr, n)
	for i := range ins {
		ins[i] = trace.Instr{PC: pcBase + mem.Addr(i%16*4), Op: trace.IntOp, Dest: uint8(1 + i%60)}
	}
	return trace.NewSliceStream(ins)
}

func loadStream(n int, base mem.Addr, serial bool) trace.Stream {
	ins := make([]trace.Instr, n)
	for i := range ins {
		dest := uint8(1 + i%60)
		src := uint8(0)
		if serial {
			dest, src = 7, 7
		}
		ins[i] = trace.Instr{PC: 0x80, Op: trace.Load, Dest: dest, Src1: src,
			Addr: base + mem.Addr(i*577*64)}
	}
	return trace.NewSliceStream(ins)
}

func TestSMTValidation(t *testing.T) {
	h := hier.MustNew(hier.DefaultConfig(), assist.MustNewBaseline(dmConfig(), 0))
	if _, err := NewSMT(DefaultConfig(), h, 0); err == nil {
		t.Error("0 threads accepted")
	}
	if _, err := NewSMT(DefaultConfig(), h, 9); err == nil {
		t.Error("9 threads accepted")
	}
	cfg := DefaultConfig()
	cfg.ROBSize = 8
	if _, err := NewSMT(cfg, h, 4); err == nil {
		t.Error("ROB too small for thread count accepted")
	}
}

func TestSMTSingleThreadRuns(t *testing.T) {
	s := newSMT(t, 1)
	ms := s.Run([]trace.Stream{intStream(5000, 0x1000)}, 0)
	if len(ms) != 1 {
		t.Fatalf("metrics count = %d", len(ms))
	}
	if ms[0].Instructions != 5000 {
		t.Errorf("retired %d", ms[0].Instructions)
	}
	if ms[0].IPC() <= 0 {
		t.Error("no progress")
	}
}

func TestSMTBothThreadsProgress(t *testing.T) {
	s := newSMT(t, 2)
	ms := s.Run([]trace.Stream{
		intStream(4000, 0x1000),
		intStream(4000, 0x2000),
	}, 0)
	for i, m := range ms {
		if m.Instructions != 4000 {
			t.Errorf("thread %d retired %d", i, m.Instructions)
		}
	}
	// Shared cycle count.
	if ms[0].Cycles != ms[1].Cycles {
		t.Error("threads must share the cycle count")
	}
}

func TestSMTThroughputExceedsSingleThread(t *testing.T) {
	// Two memory-stalled threads overlap each other's stalls: combined
	// throughput must beat one thread alone on the same core.
	single := newSMT(t, 1)
	m1 := single.Run([]trace.Stream{loadStream(2000, 0x100000, true)}, 0)

	dual := newSMT(t, 2)
	m2 := dual.Run([]trace.Stream{
		loadStream(2000, 0x100000, true),
		loadStream(2000, 0x40000000, true),
	}, 0)
	soloIPC := m1[0].IPC()
	combIPC := (float64(m2[0].Instructions) + float64(m2[1].Instructions)) / float64(m2[0].Cycles)
	if combIPC <= soloIPC*1.3 {
		t.Errorf("SMT should hide serial-load stalls: solo %.3f vs combined %.3f", soloIPC, combIPC)
	}
}

func TestSMTCacheInterferenceVisible(t *testing.T) {
	// Two threads hammering aliasing addresses in the shared L1 must
	// slow each other down versus running with disjoint sets.
	mk := func(base2 mem.Addr) float64 {
		s := newSMT(t, 2)
		// Each thread hammers one hot line. Alone (or with a disjoint
		// partner) it hits every time; a partner aliasing the same set of
		// the shared direct-mapped L1 turns both threads into a
		// cross-thread ping-pong.
		mkStream := func(a mem.Addr) trace.Stream {
			ins := make([]trace.Instr, 3000)
			for i := range ins {
				ins[i] = trace.Instr{PC: 0x80, Op: trace.Load, Dest: 7, Src1: 7, Addr: a}
			}
			return trace.NewSliceStream(ins)
		}
		ms := s.Run([]trace.Stream{
			mkStream(0x0000),
			mkStream(base2),
		}, 0)
		return (float64(ms[0].Instructions) + float64(ms[1].Instructions)) / float64(ms[0].Cycles)
	}
	disjoint := mk(0x1000) // different set: both threads always hit
	conflict := mk(0x8000) // same set, different tag: mutual eviction
	if conflict >= disjoint {
		t.Errorf("set sharing should hurt: disjoint %.3f vs conflicting %.3f", disjoint, conflict)
	}
}

func TestSMTRetireTarget(t *testing.T) {
	s := newSMT(t, 2)
	ms := s.Run([]trace.Stream{
		intStream(100000, 0x1000),
		intStream(100000, 0x2000),
	}, 2000)
	for i, m := range ms {
		if m.Instructions < 2000 || m.Instructions > 2100 {
			t.Errorf("thread %d retired %d, want ~2000", i, m.Instructions)
		}
	}
}

func TestSMTDeterministic(t *testing.T) {
	run := func() []Metrics {
		s := newSMT(t, 2)
		return s.Run([]trace.Stream{
			loadStream(1500, 0x100000, false),
			intStream(1500, 0x2000),
		}, 0)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("SMT runs are not deterministic")
		}
	}
}
