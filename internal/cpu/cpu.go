// Package cpu is the trace-driven out-of-order processor timing model that
// stands in for SMTSIM. It models the paper's Section-4 machine: a 7-stage
// pipeline, 8-instruction fetch and issue, two 32-entry instruction queues
// (integer and floating point), four load/store units, and a non-blocking
// memory interface supplied by internal/hier.
//
// The model is a scoreboarded ROB machine: instructions dispatch in order
// into a reorder buffer and their queue, issue out of order when their
// source registers are ready and a functional unit is free, and retire in
// order. Branches are predicted with a 2-bit-counter table at fetch;
// a misprediction stops fetch until the branch issues plus a pipeline
// refill penalty, approximating SMTSIM's wrong-path fetch cost without
// executing wrong-path instructions (documented substitution; the trace
// contains no wrong-path memory references, which slightly understates
// cache pressure but applies equally to every configuration compared).
package cpu

import (
	"fmt"
	"math/bits"

	"repro/internal/hier"
	"repro/internal/mem"
	"repro/internal/trace"
)

// Config sets the pipeline parameters. DefaultConfig reproduces Sec 4.
type Config struct {
	FetchWidth  int
	IssueWidth  int
	IntQSize    int
	FPQSize     int
	ROBSize     int
	LSUs        int
	IntALUs     int
	FPALUs      int
	PredictorSz int // 2-bit counter entries (power of two)
	// MispredictPenalty is the fetch-refill cost after a mispredicted
	// branch resolves (7-stage pipeline front end).
	MispredictPenalty int
	// MaxCycles bounds a run defensively; 0 means no bound.
	MaxCycles uint64
}

// DefaultConfig returns the paper's processor.
func DefaultConfig() Config {
	return Config{
		FetchWidth:        8,
		IssueWidth:        8,
		IntQSize:          32,
		FPQSize:           32,
		ROBSize:           64,
		LSUs:              4,
		IntALUs:           8,
		FPALUs:            4,
		PredictorSz:       4096,
		MispredictPenalty: 6,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.FetchWidth <= 0 || c.IssueWidth <= 0 || c.ROBSize <= 0 {
		return fmt.Errorf("cpu: widths and ROB size must be positive")
	}
	if c.IntQSize <= 0 || c.FPQSize <= 0 || c.LSUs <= 0 || c.IntALUs <= 0 || c.FPALUs <= 0 {
		return fmt.Errorf("cpu: queue sizes and unit counts must be positive")
	}
	if c.PredictorSz <= 0 || c.PredictorSz&(c.PredictorSz-1) != 0 {
		return fmt.Errorf("cpu: predictor size must be a positive power of two, got %d", c.PredictorSz)
	}
	return nil
}

// Metrics summarizes a run.
type Metrics struct {
	Instructions uint64
	Cycles       uint64
	Loads        uint64
	Stores       uint64
	Branches     uint64
	Mispredicts  uint64
	// LoadStallRetries counts load issue attempts rejected because the
	// MSHRs were full (the paper's "further misses stall the pipeline").
	LoadStallRetries uint64
}

// IPC returns instructions per cycle.
func (m Metrics) IPC() float64 {
	if m.Cycles == 0 {
		return 0
	}
	return float64(m.Instructions) / float64(m.Cycles)
}

// MispredictRate returns mispredicted branches over branches.
func (m Metrics) MispredictRate() float64 {
	if m.Branches == 0 {
		return 0
	}
	return float64(m.Mispredicts) / float64(m.Branches)
}

// robEntry is one in-flight instruction. Source operands are renamed at
// dispatch to (ROB index, sequence) pairs identifying their producers; a
// sequence mismatch means the producer has retired and the value is ready.
type robEntry struct {
	in     trace.Instr
	seq    uint64
	issued bool
	done   uint64

	p1, p2       int // producer ROB slots, -1 when the value is ready
	p1seq, p2seq uint64
}

// CPU is the processor state for one run.
type CPU struct {
	cfg  Config
	h    *hier.Hierarchy
	pred []uint8

	rob        []robEntry
	head, tail int // ring; count tracks occupancy
	count      int
	intQ, fpQ  int // unissued occupancy per queue

	// unissued is a bitmask over ROB slots with a dispatched-but-unissued
	// entry. The issue stage iterates only these bits instead of scanning
	// every occupied slot: in steady state most in-flight instructions have
	// already issued (they sit in the ROB awaiting in-order retirement
	// behind a long-latency load), so a full scan wastes almost all of its
	// work. The bit is set at dispatch and cleared at issue; retirement
	// never needs to touch it because only issued entries retire.
	unissued []uint64

	// rat is the register alias table: the ROB slot and sequence number of
	// each architectural register's latest in-flight producer.
	rat    [trace.NumRegs]int
	ratSeq [trace.NumRegs]uint64
	seq    uint64

	fetchResume  uint64
	blockedOn    int // ROB slot of unresolved mispredicted branch, -1 none
	metrics      Metrics
	streamEnded  bool
	retireTarget uint64

	// Instruction-fetch line tracking: fetchLine is 1 + the line of the
	// last I-fetch (0 = none yet); pending holds an instruction stalled on
	// an instruction-cache miss.
	fetchLine mem.LineAddr
	pending   bool
	pendingIn trace.Instr

	// scratchIn is the fetch stage's decode buffer. Streams are consumed
	// through the trace.Stream interface, so a loop-local Instr passed to
	// Next escapes and costs one heap allocation per instruction; reusing
	// a field keeps fetch allocation-free.
	scratchIn trace.Instr
}

// New builds a CPU over a memory hierarchy.
func New(cfg Config, h *hier.Hierarchy) (*CPU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &CPU{
		cfg:       cfg,
		h:         h,
		pred:      make([]uint8, cfg.PredictorSz),
		rob:       make([]robEntry, cfg.ROBSize),
		unissued:  make([]uint64, (cfg.ROBSize+63)/64),
		blockedOn: -1,
	}
	for i := range c.rat {
		c.rat[i] = -1
	}
	return c, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config, h *hier.Hierarchy) *CPU {
	c, err := New(cfg, h)
	if err != nil {
		panic(err)
	}
	return c
}

// Run executes up to maxInstrs instructions from the stream (or until it
// ends) and returns the metrics. A zero maxInstrs means run to stream end.
//
// The loop is event-driven where it can be: when a cycle retires nothing,
// issues nothing, hits no structural limit, and fetches nothing, every
// following cycle is identical until the next completion event (an issued
// instruction's done time or the fetch-resume cycle), so the clock jumps
// straight there. Skipped cycles touch no simulator state — no hierarchy
// access, no counter, no LRU update — so the metrics are bit-identical to
// stepping cycle by cycle; only the wall time changes. Low-IPC (memory-
// bound) regions, where most cycles are pure stall, are exactly where the
// simulator used to burn most of its time.
func (c *CPU) Run(s trace.Stream, maxInstrs uint64) Metrics {
	c.retireTarget = maxInstrs
	cycle := uint64(0)
	for {
		cycle++
		if c.cfg.MaxCycles != 0 && cycle > c.cfg.MaxCycles {
			break
		}
		retired := c.retire(cycle)
		if c.retireTarget != 0 && c.metrics.Instructions >= c.retireTarget {
			break
		}
		issued, limited := c.issue(cycle)
		fetched := c.fetch(cycle, s)
		if c.count == 0 && c.streamEnded {
			break
		}
		if retired == 0 && issued == 0 && fetched == 0 && !limited {
			if next, ok := c.nextEvent(cycle); ok && next > cycle+1 {
				if c.cfg.MaxCycles != 0 && next > c.cfg.MaxCycles+1 {
					next = c.cfg.MaxCycles + 1
				}
				cycle = next - 1
			}
		}
	}
	c.metrics.Cycles = cycle
	return c.metrics
}

// nextEvent returns the earliest future cycle at which the machine's state
// can change while the pipeline is quiescent: the soonest completion time
// of an issued, unretired instruction, or the fetch-resume cycle. ok is
// false when no such event exists.
//
// This is sound because a quiescent cycle (nothing retired, issued, or
// fetched; no structural-hazard retry pending) can only be ended by one of
// those times arriving: every unissued instruction waits, directly or
// through a chain of unissued producers, on an issued instruction's done
// time (a chain cannot be circular — the oldest unissued link's producers
// have all retired or issued), and the front end waits on retirement, on
// fetchResume, or on the blocking branch issuing.
func (c *CPU) nextEvent(cycle uint64) (uint64, bool) {
	earliest := ^uint64(0)
	for i, idx := 0, c.head; i < c.count; i++ {
		e := &c.rob[idx]
		if e.issued && e.done > cycle && e.done < earliest {
			earliest = e.done
		}
		idx++
		if idx == c.cfg.ROBSize {
			idx = 0
		}
	}
	if !c.streamEnded && c.fetchResume > cycle && c.fetchResume < earliest {
		earliest = c.fetchResume
	}
	return earliest, earliest != ^uint64(0)
}

// retire commits completed instructions in order, up to issue width,
// returning how many retired.
func (c *CPU) retire(cycle uint64) int {
	n := 0
	for ; n < c.cfg.IssueWidth && c.count > 0; n++ {
		e := &c.rob[c.head]
		if !e.issued || e.done > cycle {
			return n
		}
		c.metrics.Instructions++
		switch e.in.Op {
		case trace.Load:
			c.metrics.Loads++
		case trace.Store:
			c.metrics.Stores++
		case trace.Branch:
			c.metrics.Branches++
		}
		c.head++
		if c.head == c.cfg.ROBSize {
			c.head = 0
		}
		c.count--
	}
	return n
}

// issue wakes up ready instructions out of order, respecting functional
// unit counts and issue width. Candidates come from the unissued bitmask,
// walked in ring order from the ROB head: slot order over [head, size)
// then [0, head) is exactly age order for the occupied window, and slots
// outside it carry no bits, so the walk visits the same entries in the
// same order as a full ROB scan at a fraction of the cost.
func (c *CPU) issue(cycle uint64) (nIssued int, limited bool) {
	issued, lsu, ialu, falu := 0, 0, 0, 0
	size := c.cfg.ROBSize
	lo, hi := c.head, size
	for seg := 0; seg < 2; seg++ {
		for base := lo &^ 63; base < hi; base += 64 {
			w := c.unissued[base>>6]
			if lo > base {
				w &= ^uint64(0) << uint(lo-base)
			}
			if hi-base < 64 {
				w &= uint64(1)<<uint(hi-base) - 1
			}
			for w != 0 {
				idx := base + bits.TrailingZeros64(w)
				w &= w - 1
				switch c.tryIssue(idx, cycle, &lsu, &ialu, &falu) {
				case issueNotReady:
					continue
				case issueLimited:
					limited = true
					continue
				}
				if issued++; issued >= c.cfg.IssueWidth {
					return issued, limited
				}
			}
		}
		lo, hi = 0, c.head
	}
	return issued, limited
}

// issueStatus is tryIssue's outcome: issued, operands not ready (the entry
// waits on a completion event), or structurally limited (a functional unit
// or MSHR was exhausted — the entry could retry as soon as next cycle, so
// the event-skipping fast path must not engage).
type issueStatus uint8

const (
	issueOK issueStatus = iota
	issueNotReady
	issueLimited
)

// tryIssue attempts to issue the unissued entry in ROB slot idx at cycle,
// charging the functional-unit counters.
func (c *CPU) tryIssue(idx int, cycle uint64, lsu, ialu, falu *int) issueStatus {
	e := &c.rob[idx]
	if !c.operandReady(e.p1, e.p1seq, cycle) || !c.operandReady(e.p2, e.p2seq, cycle) {
		return issueNotReady
	}
	fp := e.in.Op.IsFP()
	switch {
	case e.in.Op.IsMem():
		if *lsu >= c.cfg.LSUs {
			return issueLimited
		}
	case fp:
		if *falu >= c.cfg.FPALUs {
			return issueLimited
		}
	default:
		if *ialu >= c.cfg.IntALUs {
			return issueLimited
		}
	}

	var done uint64
	switch e.in.Op {
	case trace.Load:
		res := c.h.Access(cycle, mem.Access{Addr: e.in.Addr, PC: e.in.PC, Type: mem.Load})
		if res.Stall {
			// MSHRs exhausted: the load waits; it will retry. Count it
			// and consume the LSU slot so younger loads don't bypass
			// the stall this cycle.
			c.metrics.LoadStallRetries++
			*lsu++
			return issueLimited
		}
		done = res.Done
	case trace.Store:
		// Stores drain through a store buffer: the hierarchy sees the
		// access (bandwidth, MSHR, classification) but dependents and
		// retirement do not wait for the line.
		res := c.h.Access(cycle, mem.Access{Addr: e.in.Addr, PC: e.in.PC, Type: mem.Store})
		if res.Stall {
			c.metrics.LoadStallRetries++
			*lsu++
			return issueLimited
		}
		done = cycle + 1
	default:
		done = cycle + uint64(e.in.Op.ExecLatency())
	}

	e.issued = true
	e.done = done
	c.unissued[idx>>6] &^= uint64(1) << uint(idx&63)
	if e.in.Op.IsMem() {
		*lsu++
	} else if fp {
		*falu++
	} else {
		*ialu++
	}
	if fp {
		c.fpQ--
	} else {
		c.intQ--
	}
	// A resolving mispredicted branch restarts fetch after the refill
	// penalty.
	if c.blockedOn == idx {
		c.blockedOn = -1
		c.fetchResume = done + uint64(c.cfg.MispredictPenalty)
	}
	return issueOK
}

// fetch brings new instructions into the ROB and queues, in order, unless
// the front end is squashed by an unresolved misprediction. When an
// instruction cache is attached to the hierarchy, crossing into a new
// instruction line costs an I-fetch; a miss stalls the front end until
// the line arrives.
func (c *CPU) fetch(cycle uint64, s trace.Stream) (dispatched int) {
	if c.streamEnded || cycle < c.fetchResume || c.blockedOn >= 0 {
		return 0
	}
	if c.retireTarget != 0 && c.metrics.Instructions >= c.retireTarget {
		return 0
	}
	for n := 0; n < c.cfg.FetchWidth; n++ {
		if c.count >= c.cfg.ROBSize {
			return dispatched
		}
		// Peek queue-space before consuming. Since streams are infinite or
		// long, consuming then failing to place would lose instructions;
		// stop before reading when either queue is full.
		if c.intQ >= c.cfg.IntQSize || c.fpQ >= c.cfg.FPQSize {
			return dispatched
		}
		in := &c.scratchIn
		if c.pending {
			// An instruction held back by an instruction-cache stall.
			*in = c.pendingIn
			c.pending = false
		} else if !s.Next(in) {
			c.streamEnded = true
			return dispatched
		}
		// Crossing into a new instruction line costs an I-fetch; a miss
		// holds the instruction and stalls the front end until the line
		// arrives (a no-op single-cycle hit when no I-cache is attached).
		if line := mem.LineAddr(uint64(in.PC)>>6) + 1; line != c.fetchLine {
			res := c.h.IFetch(cycle, in.PC)
			if res.Stall {
				c.fetchResume = res.RetryAt
				c.pendingIn, c.pending = *in, true
				return dispatched
			}
			c.fetchLine = line
			if res.Done > cycle+1 {
				c.fetchResume = res.Done
				c.pendingIn, c.pending = *in, true
				return dispatched
			}
		}
		idx := c.tail
		c.seq++
		e := &c.rob[idx]
		// Field-wise reset: a composite literal here costs a duffcopy of
		// the whole entry per fetched instruction.
		e.in = *in
		e.seq = c.seq
		e.issued = false
		e.done = 0
		e.p1, e.p2 = -1, -1
		e.p1seq, e.p2seq = 0, 0
		if in.Src1 != trace.RegZero && c.rat[in.Src1] >= 0 {
			e.p1, e.p1seq = c.rat[in.Src1], c.ratSeq[in.Src1]
		}
		if in.Src2 != trace.RegZero && c.rat[in.Src2] >= 0 {
			e.p2, e.p2seq = c.rat[in.Src2], c.ratSeq[in.Src2]
		}
		c.unissued[idx>>6] |= uint64(1) << uint(idx&63)
		if in.Dest != trace.RegZero {
			c.rat[in.Dest] = idx
			c.ratSeq[in.Dest] = c.seq
		}
		c.tail++
		if c.tail == c.cfg.ROBSize {
			c.tail = 0
		}
		c.count++
		dispatched++
		if in.Op.IsFP() {
			c.fpQ++
		} else {
			c.intQ++
		}
		if in.Op == trace.Branch {
			if c.predict(in.PC) != in.Taken {
				c.metrics.Mispredicts++
				c.blockedOn = idx
				c.train(in.PC, in.Taken)
				return dispatched // fetch squashed until the branch resolves
			}
			c.train(in.PC, in.Taken)
		}
	}
	return dispatched
}

// operandReady reports whether a renamed operand's value is available at
// the given cycle: either the producer slot was recycled (it retired) or
// it has issued and completed.
func (c *CPU) operandReady(slot int, seq, cycle uint64) bool {
	if slot < 0 {
		return true
	}
	p := &c.rob[slot]
	if p.seq != seq {
		return true // producer retired; value is architectural state
	}
	return p.issued && p.done <= cycle
}

// predict reads the 2-bit counter for pc.
func (c *CPU) predict(pc mem.Addr) bool {
	return c.pred[(uint64(pc)>>2)&uint64(c.cfg.PredictorSz-1)] >= 2
}

// train updates the counter toward the outcome.
func (c *CPU) train(pc mem.Addr, taken bool) {
	i := (uint64(pc) >> 2) & uint64(c.cfg.PredictorSz-1)
	if taken {
		if c.pred[i] < 3 {
			c.pred[i]++
		}
	} else if c.pred[i] > 0 {
		c.pred[i]--
	}
}
