package obs

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram("mct_test_seconds", "t", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 100} {
		h.Observe(v)
	}
	// Bounds are inclusive upper limits: 0.5,1 -> le=1; 1.5,2 -> le=2;
	// 3,4 -> le=4; 100 -> +Inf.
	want := []uint64{2, 2, 2, 1}
	got := h.Snapshot()
	if len(got) != len(want) {
		t.Fatalf("snapshot len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, got[i], want[i])
		}
	}
	if h.Count() != 7 {
		t.Errorf("Count = %d, want 7", h.Count())
	}
	if sum := h.Sum(); math.Abs(sum-112) > 1e-9 {
		t.Errorf("Sum = %g, want 112", sum)
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	for name, bounds := range map[string][]float64{
		"empty":    {},
		"unsorted": {1, 3, 2},
		"dup":      {1, 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s bounds did not panic", name)
				}
			}()
			NewHistogram("mct_bad_seconds", "t", bounds)
		}()
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram("mct_q_seconds", "t", []float64{1, 2, 4})
	if h.Quantile(0.5) != 0 {
		t.Errorf("empty histogram quantile = %g, want 0", h.Quantile(0.5))
	}
	// 100 observations uniform in (0,1]: p50 should interpolate to ~0.5
	// inside the first bucket.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 100)
	}
	if p50 := h.Quantile(0.5); math.Abs(p50-0.5) > 0.01 {
		t.Errorf("p50 = %g, want ~0.5", p50)
	}
	if p100 := h.Quantile(1); p100 != 1 {
		t.Errorf("p100 = %g, want 1 (upper bound of crossing bucket)", p100)
	}
	// Everything in +Inf: quantile returns the last finite bound.
	h2 := NewHistogram("mct_q2_seconds", "t", []float64{1})
	h2.Observe(50)
	if got := h2.Quantile(0.5); got != 1 {
		t.Errorf("+Inf-bucket quantile = %g, want 1 (lower bound)", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram("mct_conc_seconds", "t", LatencyBuckets)
	var wg sync.WaitGroup
	const workers, each = 8, 1000
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < each; j++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if h.Count() != workers*each {
		t.Errorf("Count = %d, want %d", h.Count(), workers*each)
	}
	if sum := h.Sum(); math.Abs(sum-workers*each*0.001) > 1e-6 {
		t.Errorf("Sum = %g, want %g", sum, workers*each*0.001)
	}
}

func TestHistogramStringIsExpvarJSON(t *testing.T) {
	h := NewHistogram("mct_s_seconds", "t", []float64{1, 2})
	h.ObserveDuration(1500 * time.Millisecond)
	var v struct {
		Count uint64  `json:"count"`
		Sum   float64 `json:"sum"`
		P50   float64 `json:"p50"`
		P99   float64 `json:"p99"`
	}
	if err := json.Unmarshal([]byte(h.String()), &v); err != nil {
		t.Fatalf("String() is not JSON: %v\n%s", err, h.String())
	}
	if v.Count != 1 || v.Sum != 1.5 {
		t.Errorf("parsed %+v", v)
	}
}

func TestDefaultBucketLayouts(t *testing.T) {
	for name, bounds := range map[string][]float64{"latency": LatencyBuckets, "size": SizeBuckets} {
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				t.Errorf("%s buckets not ascending at %d", name, i)
			}
		}
	}
}
