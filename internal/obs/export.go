package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// NDJSONExporter writes one JSON object per finished span to an
// io.Writer, serialized behind a mutex so concurrent span ends never
// interleave bytes. Writes are buffered; Close (or Flush) drains the
// buffer and reports the first write error encountered anywhere along
// the way — span export itself never fails the exporting goroutine.
type NDJSONExporter struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	c   io.Closer // nil when the writer is not a closer
	n   uint64
	err error
}

// NewNDJSONExporter wraps w. If w is an io.Closer (a file), Close
// closes it.
func NewNDJSONExporter(w io.Writer) *NDJSONExporter {
	e := &NDJSONExporter{bw: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		e.c = c
	}
	return e
}

// ExportSpan implements Exporter.
func (e *NDJSONExporter) ExportSpan(r SpanRecord) {
	enc, err := json.Marshal(r)
	if err != nil {
		// A span that cannot marshal is a programming error in attr
		// construction; record it, drop the span.
		e.mu.Lock()
		if e.err == nil {
			e.err = fmt.Errorf("obs: marshaling span %q: %w", r.Name, err)
		}
		e.mu.Unlock()
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err != nil {
		return
	}
	if _, err := e.bw.Write(append(enc, '\n')); err != nil {
		e.err = err
		return
	}
	e.n++
}

// Count returns how many spans were written so far.
func (e *NDJSONExporter) Count() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.n
}

// Flush drains the buffer.
func (e *NDJSONExporter) Flush() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err != nil {
		return e.err
	}
	return e.bw.Flush()
}

// Close flushes and closes the underlying writer (when closable).
func (e *NDJSONExporter) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	ferr := e.bw.Flush()
	if e.err == nil {
		e.err = ferr
	}
	if e.c != nil {
		if cerr := e.c.Close(); e.err == nil {
			e.err = cerr
		}
	}
	return e.err
}

// Ring is a bounded in-memory span buffer: the newest cap records win,
// the oldest are overwritten. The service keeps one per instance to
// serve GET /v1/trace/{job} — observability that can never become a
// memory leak.
type Ring struct {
	mu   sync.Mutex
	recs []SpanRecord
	next int
	full bool
}

// NewRing builds a ring holding up to capacity spans (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{recs: make([]SpanRecord, capacity)}
}

// ExportSpan implements Exporter.
func (r *Ring) ExportSpan(rec SpanRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.recs[r.next] = rec
	r.next++
	if r.next == len(r.recs) {
		r.next = 0
		r.full = true
	}
}

// snapshotLocked returns the live records oldest-first. Caller holds mu.
func (r *Ring) snapshotLocked() []SpanRecord {
	if !r.full {
		return r.recs[:r.next]
	}
	out := make([]SpanRecord, 0, len(r.recs))
	out = append(out, r.recs[r.next:]...)
	out = append(out, r.recs[:r.next]...)
	return out
}

// Len returns how many spans the ring currently holds.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.recs)
	}
	return r.next
}

// ByTrace returns the buffered spans whose trace ID is trace, oldest
// first. The result is a copy; the caller owns it.
func (r *Ring) ByTrace(trace string) []SpanRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []SpanRecord
	for _, rec := range r.snapshotLocked() {
		if rec.Trace == trace {
			out = append(out, rec)
		}
	}
	return out
}
