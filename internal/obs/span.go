package obs

import (
	"time"
)

// attrKind discriminates the typed attribute slots. Typed setters (Str,
// Int, Float, Bool) instead of a SetAttr(string, any) keep the disabled
// path allocation-free: boxing an int into an interface can allocate
// even when the receiver is nil.
type attrKind uint8

const (
	attrStr attrKind = iota
	attrInt
	attrFloat
	attrBool
)

// Attr is one typed span attribute.
type Attr struct {
	Key  string
	kind attrKind
	s    string
	i    int64
	f    float64
	b    bool
}

// Value returns the attribute's value as an any (export time only).
func (a Attr) Value() any {
	switch a.kind {
	case attrInt:
		return a.i
	case attrFloat:
		return a.f
	case attrBool:
		return a.b
	default:
		return a.s
	}
}

// Span is one in-flight trace span. A nil *Span is the disabled span:
// every method no-ops, so call sites never branch on enablement.
type Span struct {
	name   string
	trace  string
	id     uint64
	parent uint64
	start  time.Time
	attrs  []Attr

	ctxExp    Exporter // from Inject, may be nil
	globalExp Exporter // from SetExporter, may be nil
}

// ID returns the span's process-unique ID (0 for the nil span).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Trace returns the span's trace ID ("" for the nil span).
func (s *Span) Trace() string {
	if s == nil {
		return ""
	}
	return s.trace
}

// Str attaches a string attribute.
func (s *Span) Str(key, v string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, kind: attrStr, s: v})
}

// Int attaches an integer attribute.
func (s *Span) Int(key string, v int64) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, kind: attrInt, i: v})
}

// Float attaches a float attribute.
func (s *Span) Float(key string, v float64) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, kind: attrFloat, f: v})
}

// Bool attaches a boolean attribute.
func (s *Span) Bool(key string, v bool) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, kind: attrBool, b: v})
}

// Err attaches the error's message under "error" (nil-safe on both).
func (s *Span) Err(err error) {
	if s == nil || err == nil {
		return
	}
	s.Str("error", err.Error())
}

// End finishes the span and exports its record to the context-injected
// and the process-wide exporters (both, when both are present — even if
// they are the same value, in which case only once).
func (s *Span) End() {
	if s == nil {
		return
	}
	r := SpanRecord{
		Trace:  s.trace,
		Span:   s.id,
		Parent: s.parent,
		Name:   s.name,
		Start:  s.start,
		DurNS:  time.Since(s.start).Nanoseconds(),
	}
	if len(s.attrs) > 0 {
		r.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			r.Attrs[a.Key] = a.Value()
		}
	}
	if s.ctxExp != nil {
		s.ctxExp.ExportSpan(r)
	}
	if s.globalExp != nil && s.globalExp != s.ctxExp {
		s.globalExp.ExportSpan(r)
	}
}

// SpanRecord is the exported (finished) form of a span — one NDJSON
// line in -trace-out files and one element of the service's trace ring.
// DESIGN.md §9 documents the schema.
type SpanRecord struct {
	// Trace groups the spans of one run or request: the mctd job ID, or
	// paperbench's run ID.
	Trace string `json:"trace,omitempty"`
	// Span is the process-unique span ID; Parent is the enclosing span's
	// (0 = root).
	Span   uint64 `json:"span"`
	Parent uint64 `json:"parent,omitempty"`
	// Name identifies the operation ("runner.task", "service.admit", ...).
	Name string `json:"name"`
	// Start is the wall-clock start; DurNS the duration in nanoseconds.
	Start time.Time `json:"start"`
	DurNS int64     `json:"dur_ns"`
	// Attrs carries the typed attributes (label, attempt, hit, ...).
	Attrs map[string]any `json:"attrs,omitempty"`
}
