package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestSlowLogDetects(t *testing.T) {
	var mu sync.Mutex
	var events []SlowEvent
	SetSlowLog(3, 4, func(e SlowEvent) {
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
	})
	defer SetSlowLog(0, 0, nil)

	// Build a baseline of fast attempts, then one outlier.
	for i := 0; i < 8; i++ {
		NoteTask("sweep/fig2", i, 0, 10*time.Millisecond)
	}
	NoteTask("sweep/fig2", 8, 77, 100*time.Millisecond)

	mu.Lock()
	defer mu.Unlock()
	if len(events) != 1 {
		t.Fatalf("got %d events, want 1: %+v", len(events), events)
	}
	e := events[0]
	if e.Label != "sweep/fig2" || e.Attempt != 8 || e.Span != 77 {
		t.Errorf("event = %+v", e)
	}
	if e.Dur != 100*time.Millisecond || e.Median != 10*time.Millisecond {
		t.Errorf("event durations = %v median %v", e.Dur, e.Median)
	}
}

func TestSlowLogNeedsMinSamples(t *testing.T) {
	var n int
	SetSlowLog(2, 5, func(SlowEvent) { n++ })
	defer SetSlowLog(0, 0, nil)

	// Outliers before minSamples observations must not fire.
	for i := 0; i < 4; i++ {
		NoteTask("x", i, 0, time.Duration(1+i*1000)*time.Millisecond)
	}
	if n != 0 {
		t.Errorf("fired %d times below minSamples", n)
	}
}

func TestSlowLogJudgesAgainstPriorMedian(t *testing.T) {
	// A run of identical slow values must not self-suppress: each is
	// judged against the median of earlier attempts only — so a sudden
	// regime shift fires on the first slow attempt, not never.
	var n int
	SetSlowLog(2, 2, func(SlowEvent) { n++ })
	defer SetSlowLog(0, 0, nil)

	for i := 0; i < 5; i++ {
		NoteTask("y", i, 0, 10*time.Millisecond)
	}
	NoteTask("y", 5, 0, 100*time.Millisecond)
	if n != 1 {
		t.Errorf("regime shift fired %d times, want 1", n)
	}
}

func TestSlowLogDisabled(t *testing.T) {
	SetSlowLog(0, 0, nil)
	// Must be a no-op, not a panic.
	NoteTask("z", 0, 0, time.Hour)
}

func TestSlowLogLabelCap(t *testing.T) {
	var mu sync.Mutex
	var labels []string
	SetSlowLog(2, 2, func(e SlowEvent) {
		mu.Lock()
		labels = append(labels, e.Label)
		mu.Unlock()
	})
	defer SetSlowLog(0, 0, nil)

	// Exhaust the label budget.
	for i := 0; i < maxSlowLabels; i++ {
		NoteTask(fmt.Sprintf("l%d", i), 0, 0, time.Millisecond)
	}
	// Overflow labels fold into the shared aggregate window.
	for i := 0; i < 4; i++ {
		NoteTask(fmt.Sprintf("overflow%d", i), 0, 0, 10*time.Millisecond)
	}
	NoteTask("overflow-outlier", 0, 99, 100*time.Millisecond)

	mu.Lock()
	defer mu.Unlock()
	if len(labels) != 1 || labels[0] != "~other" {
		t.Errorf("overflow events = %v, want one ~other", labels)
	}
}

func TestSlowLogClampsConfig(t *testing.T) {
	// factor < 1 and minSamples < 2 are clamped, not rejected.
	var n int
	SetSlowLog(0.1, 0, func(SlowEvent) { n++ })
	defer SetSlowLog(0, 0, nil)
	NoteTask("c", 0, 0, 10*time.Millisecond)
	NoteTask("c", 1, 0, 10*time.Millisecond)
	// Equal to median: with factor clamped to 1, 10ms > 1×10ms is false.
	NoteTask("c", 2, 0, 10*time.Millisecond)
	if n != 0 {
		t.Errorf("equal-to-median fired %d times", n)
	}
	NoteTask("c", 3, 0, 11*time.Millisecond)
	if n != 1 {
		t.Errorf("above-median with factor 1 fired %d times, want 1", n)
	}
}
