package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// SlowEvent is one slow-task detection: a task attempt whose duration
// exceeded Factor× the running median for its label.
type SlowEvent struct {
	// Label is the runner task label ("sweep/fig2", "classify/gcc", ...).
	Label string `json:"label"`
	// Attempt is the attempt number (0-based, matching the runner's
	// fault-injection hook).
	Attempt int `json:"attempt"`
	// Span is the attempt's span ID (0 when tracing is off).
	Span uint64 `json:"span,omitempty"`
	// Dur is the attempt's duration; Median the label's running median
	// at detection time.
	Dur    time.Duration `json:"dur_ns"`
	Median time.Duration `json:"median_ns"`
}

// slowWindow keeps the most recent task durations for one label — a
// small fixed ring, so the median tracks the workload's current shape
// rather than its whole history.
type slowWindow struct {
	durs [32]time.Duration
	n    int // total observed (min(n, len) are valid)
}

func (w *slowWindow) add(d time.Duration) {
	w.durs[w.n%len(w.durs)] = d
	w.n++
}

func (w *slowWindow) median() time.Duration {
	n := w.n
	if n > len(w.durs) {
		n = len(w.durs)
	}
	if n == 0 {
		return 0
	}
	tmp := make([]time.Duration, n)
	copy(tmp, w.durs[:n])
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	return tmp[n/2]
}

// slowLog is the process-wide slow-task detector.
type slowLog struct {
	factor float64
	min    int // observations per label before judging
	emit   func(SlowEvent)

	mu      sync.Mutex
	byLabel map[string]*slowWindow
}

// maxSlowLabels bounds the per-label map: labels beyond the cap share
// one aggregate window, so unbounded label cardinality cannot leak.
const maxSlowLabels = 1024

var slowState atomic.Pointer[slowLog]

// SetSlowLog installs the process-wide slow-task detector: a task
// attempt slower than factor× the running median of its label (after
// minSamples observations of that label) produces one SlowEvent via
// emit. emit must be safe for concurrent use. Passing a nil emit
// removes the detector; NoteTask is then a single atomic load.
func SetSlowLog(factor float64, minSamples int, emit func(SlowEvent)) {
	if emit == nil {
		slowState.Store(nil)
		return
	}
	if factor < 1 {
		factor = 1
	}
	if minSamples < 2 {
		minSamples = 2
	}
	slowState.Store(&slowLog{
		factor:  factor,
		min:     minSamples,
		emit:    emit,
		byLabel: map[string]*slowWindow{},
	})
}

// NoteTask feeds one finished task attempt to the slow-task detector.
// The runner calls this for every attempt; with no detector installed
// it is one atomic load and a branch.
func NoteTask(label string, attempt int, span uint64, d time.Duration) {
	sl := slowState.Load()
	if sl == nil {
		return
	}
	sl.note(label, attempt, span, d)
}

func (sl *slowLog) note(label string, attempt int, span uint64, d time.Duration) {
	sl.mu.Lock()
	w := sl.byLabel[label]
	if w == nil {
		if len(sl.byLabel) >= maxSlowLabels {
			label = "~other"
			w = sl.byLabel[label]
		}
		if w == nil {
			w = &slowWindow{}
			sl.byLabel[label] = w
		}
	}
	// Judge against the median of PRIOR attempts, then record: a slow
	// task must not dilute the baseline it is judged against.
	med := w.median()
	n := w.n
	w.add(d)
	sl.mu.Unlock()

	if n < sl.min || med <= 0 {
		return
	}
	if float64(d) > sl.factor*float64(med) {
		sl.emit(SlowEvent{Label: label, Attempt: attempt, Span: span, Dur: d, Median: med})
	}
}
