package obs

import (
	"context"
	"testing"
	"time"
)

// The observability spine must be free when off: instrumented hot paths
// (every runner task attempt, every cache access) run Start/attr/End and
// NoteTask unconditionally, so the disabled path is pinned to zero
// allocations here. A regression turns every instrumented call site into
// a garbage generator.

func TestDisabledSpanZeroAllocs(t *testing.T) {
	SetExporter(nil)
	SetDefaultTrace("")
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		c2, sp := Start(ctx, "hot")
		sp.Str("label", "x")
		sp.Int("attempt", 1)
		sp.Float("f", 1.5)
		sp.Bool("ok", true)
		sp.End()
		_ = c2
	})
	if allocs != 0 {
		t.Fatalf("disabled span path allocates %v per run, want 0", allocs)
	}
}

func TestDisabledNoteTaskZeroAllocs(t *testing.T) {
	SetSlowLog(0, 0, nil)
	allocs := testing.AllocsPerRun(1000, func() {
		NoteTask("label", 1, 0, time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("disabled NoteTask allocates %v per run, want 0", allocs)
	}
}

func TestHistogramObserveZeroAllocs(t *testing.T) {
	h := NewHistogram("mct_alloc_seconds", "t", LatencyBuckets)
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(0.003)
	})
	if allocs != 0 {
		t.Fatalf("Observe allocates %v per run, want 0", allocs)
	}
}

func BenchmarkDisabledSpan(b *testing.B) {
	SetExporter(nil)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := Start(ctx, "hot")
		sp.Int("attempt", 1)
		sp.End()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram("mct_bench_seconds", "t", LatencyBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.003)
	}
}
