package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Metric naming convention (enforced at registration, documented in
// DESIGN.md §9):
//
//   - every metric is snake_case under the "mct_" namespace:
//     ^mct_[a-z0-9]+(_[a-z0-9]+)*$ — no capitals, no double or
//     trailing underscores;
//   - counters (monotonic) end in "_total";
//   - gauges (point-in-time) do NOT end in "_total";
//   - histograms end in a unit suffix: "_seconds", "_bytes", or
//     "_size" (the exposition appends _bucket/_sum/_count itself).
//
// Registration panics on violations: a misnamed metric is a programming
// error that must fail the first test that constructs the service, not
// ship and then get renamed (a breaking change for scrapers).

var nameRE = regexp.MustCompile(`^mct_[a-z0-9]+(_[a-z0-9]+)*$`)

// MetricKind classifies a registered metric for the naming check and
// the exposition's TYPE line.
type MetricKind string

const (
	KindCounter   MetricKind = "counter"
	KindGauge     MetricKind = "gauge"
	KindHistogram MetricKind = "histogram"
)

// CheckMetricName validates name against the repo's naming convention
// for the given kind. The zero return is the passing case.
func CheckMetricName(kind MetricKind, name string) error {
	if !nameRE.MatchString(name) {
		return fmt.Errorf("obs: metric %q does not match %s (snake_case under the mct_ namespace)", name, nameRE)
	}
	switch kind {
	case KindCounter:
		if !strings.HasSuffix(name, "_total") {
			return fmt.Errorf("obs: counter %q must end in _total", name)
		}
	case KindGauge:
		if strings.HasSuffix(name, "_total") {
			return fmt.Errorf("obs: gauge %q must not end in _total (reserved for counters)", name)
		}
	case KindHistogram:
		if !strings.HasSuffix(name, "_seconds") && !strings.HasSuffix(name, "_bytes") && !strings.HasSuffix(name, "_size") {
			return fmt.Errorf("obs: histogram %q must end in a unit suffix (_seconds, _bytes, or _size)", name)
		}
	default:
		return fmt.Errorf("obs: unknown metric kind %q", kind)
	}
	return nil
}

// promMetric is one registered exposition entry.
type promMetric struct {
	kind MetricKind
	name string
	help string
	read func() float64 // counters and gauges
	hist *Histogram     // histograms
}

// Registry holds a service instance's Prometheus-exposed metrics.
// Instances are independent — tests boot many services per process
// without colliding — and iteration order is registration order, so
// the exposition is deterministic.
type Registry struct {
	mu sync.Mutex
	ms []promMetric
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) add(m promMetric) {
	if err := CheckMetricName(m.kind, m.name); err != nil {
		panic(err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, ex := range r.ms {
		if ex.name == m.name {
			panic(fmt.Sprintf("obs: metric %q registered twice", m.name))
		}
	}
	r.ms = append(r.ms, m)
}

// Counter registers a monotonically non-decreasing metric read from
// read at exposition time (no double accounting — the source of truth
// stays wherever the counter already lives).
func (r *Registry) Counter(name, help string, read func() float64) {
	r.add(promMetric{kind: KindCounter, name: name, help: help, read: read})
}

// Gauge registers a point-in-time metric.
func (r *Registry) Gauge(name, help string, read func() float64) {
	r.add(promMetric{kind: KindGauge, name: name, help: help, read: read})
}

// Histogram creates, registers, and returns a fixed-bucket histogram.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h := NewHistogram(name, help, bounds)
	r.add(promMetric{kind: KindHistogram, name: name, help: help, hist: h})
	return h
}

// Names returns the registered metric names with their kinds, in
// registration order — the naming-convention test walks this.
func (r *Registry) Names() map[string]MetricKind {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]MetricKind, len(r.ms))
	for _, m := range r.ms {
		out[m.name] = m.kind
	}
	return out
}

// fmtValue renders a sample value the way Prometheus expects.
func fmtValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteText writes the registry in the Prometheus text exposition
// format (version 0.0.4): # HELP and # TYPE comments, then samples;
// histograms expand to cumulative _bucket series (with le labels, +Inf
// last), _sum, and _count.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	ms := make([]promMetric, len(r.ms))
	copy(ms, r.ms)
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, m := range ms {
		fmt.Fprintf(bw, "# HELP %s %s\n", m.name, m.help)
		fmt.Fprintf(bw, "# TYPE %s %s\n", m.name, m.kind)
		if m.hist == nil {
			fmt.Fprintf(bw, "%s %s\n", m.name, fmtValue(m.read()))
			continue
		}
		snap := m.hist.Snapshot()
		var cum uint64
		for i, c := range snap {
			cum += c
			le := "+Inf"
			if i < len(m.hist.bounds) {
				le = fmtValue(m.hist.bounds[i])
			}
			fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", m.name, le, cum)
		}
		fmt.Fprintf(bw, "%s_sum %s\n", m.name, fmtValue(m.hist.Sum()))
		fmt.Fprintf(bw, "%s_count %d\n", m.name, cum)
	}
	return bw.Flush()
}

// Sample is one parsed exposition line: a metric name, its label set
// (only le is emitted by this package, but the parser is general), and
// the value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// sampleRE matches one exposition sample line: name, optional {labels},
// value. Labels are k="v" pairs; the parser below re-splits them.
var sampleRE = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+([^\s]+)$`)

// labelRE matches one k="v" pair inside a label set.
var labelRE = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)

// ParseProm parses a Prometheus text exposition strictly: every
// non-blank line must be a well-formed comment (# HELP / # TYPE) or a
// sample, else the parse fails naming the offending line. The obs-smoke
// gate uses this to assert the endpoint emits zero unparseable lines;
// cmd/mctload uses it to fold server-side histograms into its report.
func ParseProm(r io.Reader) ([]Sample, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []Sample
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return nil, fmt.Errorf("obs: line %d: malformed comment %q", lineno, line)
			}
			continue
		}
		m := sampleRE.FindStringSubmatch(line)
		if m == nil {
			return nil, fmt.Errorf("obs: line %d: unparseable sample %q", lineno, line)
		}
		s := Sample{Name: m[1]}
		if m[2] != "" {
			inner := strings.TrimSuffix(strings.TrimPrefix(m[2], "{"), "}")
			if inner != "" {
				s.Labels = map[string]string{}
				for _, pair := range splitLabels(inner) {
					lm := labelRE.FindStringSubmatch(strings.TrimSpace(pair))
					if lm == nil {
						return nil, fmt.Errorf("obs: line %d: malformed label %q", lineno, pair)
					}
					s.Labels[lm[1]] = unescapeLabel(lm[2])
				}
			}
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: value %q: %v", lineno, m[3], err)
		}
		s.Value = v
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// splitLabels splits `a="x",b="y"` on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if depth {
				i++ // skip escaped char
			}
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}

// unescapeLabel undoes the exposition's label escaping.
func unescapeLabel(s string) string {
	if !strings.Contains(s, `\`) {
		return s
	}
	r := strings.NewReplacer(`\\`, `\`, `\"`, `"`, `\n`, "\n")
	return r.Replace(s)
}

// HistogramsFromSamples reassembles histograms from parsed samples:
// every family with _bucket/_sum/_count series becomes one
// ParsedHistogram. Bucket order follows le ascending (+Inf last).
func HistogramsFromSamples(samples []Sample) []ParsedHistogram {
	type agg struct {
		buckets map[string]uint64
		sum     float64
		count   uint64
		seen    bool
	}
	fams := map[string]*agg{}
	get := func(base string) *agg {
		a := fams[base]
		if a == nil {
			a = &agg{buckets: map[string]uint64{}}
			fams[base] = a
		}
		return a
	}
	for _, s := range samples {
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			base := strings.TrimSuffix(s.Name, "_bucket")
			a := get(base)
			a.buckets[s.Labels["le"]] = uint64(s.Value)
			a.seen = true
		case strings.HasSuffix(s.Name, "_sum"):
			a := get(strings.TrimSuffix(s.Name, "_sum"))
			a.sum = s.Value
		case strings.HasSuffix(s.Name, "_count"):
			a := get(strings.TrimSuffix(s.Name, "_count"))
			a.count = uint64(s.Value)
			a.seen = a.seen || len(a.buckets) > 0
		}
	}
	names := make([]string, 0, len(fams))
	for n, a := range fams {
		if a.seen {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	out := make([]ParsedHistogram, 0, len(names))
	for _, n := range names {
		a := fams[n]
		h := ParsedHistogram{Name: n, Sum: a.sum, Count: a.count}
		les := make([]string, 0, len(a.buckets))
		for le := range a.buckets {
			les = append(les, le)
		}
		sort.Slice(les, func(i, j int) bool { return leValue(les[i]) < leValue(les[j]) })
		for _, le := range les {
			h.Buckets = append(h.Buckets, ParsedBucket{LE: le, CumulativeCount: a.buckets[le]})
		}
		out = append(out, h)
	}
	return out
}

func leValue(le string) float64 {
	if le == "+Inf" {
		return math.Inf(1)
	}
	v, err := strconv.ParseFloat(le, 64)
	if err != nil {
		return math.MaxFloat64
	}
	return v
}

// ParsedHistogram is a histogram reassembled from an exposition scrape
// (cmd/mctload folds these into its BENCH report).
type ParsedHistogram struct {
	Name    string         `json:"name"`
	Count   uint64         `json:"count"`
	Sum     float64        `json:"sum"`
	Buckets []ParsedBucket `json:"buckets"`
}

// ParsedBucket is one cumulative bucket of a ParsedHistogram.
type ParsedBucket struct {
	LE              string `json:"le"`
	CumulativeCount uint64 `json:"n"`
}
