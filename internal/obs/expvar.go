package obs

import (
	"encoding/json"
	"expvar"
)

// ExpvarValues flattens an expvar.Map into a JSON-marshalable map of
// current values: expvar.Func vars resolve by calling the func,
// everything else round-trips through its JSON String form. cmd/mctd
// publishes its process-global "mct" entry as an expvar.Func over the
// live service's map via this helper, so the global registry always
// describes the CURRENT instance — republishing on re-boot without
// tripping expvar.Publish's duplicate panic.
func ExpvarValues(m *expvar.Map) map[string]any {
	out := map[string]any{}
	m.Do(func(kv expvar.KeyValue) {
		switch v := kv.Value.(type) {
		case expvar.Func:
			out[kv.Key] = v()
		case *expvar.Int:
			out[kv.Key] = v.Value()
		case *expvar.Float:
			out[kv.Key] = v.Value()
		default:
			out[kv.Key] = json.RawMessage(kv.Value.String())
		}
	})
	return out
}
