// Package obs is the repo's zero-dependency observability spine, shared
// by the experiment runner, the mctd service, and the CLIs. It provides
//
//   - context-propagated trace spans with run/request IDs (span.go),
//     exported as NDJSON to a file, a bounded in-memory ring (the
//     service's GET /v1/trace/{job} tail), or both;
//   - fixed-bucket counters-only histograms (hist.go) that feed the
//     service's expvar map and its Prometheus text exposition (prom.go);
//   - a slow-task log (slowlog.go): task attempts exceeding N× the
//     running median duration for their label produce a structured
//     event carrying label, attempt, and span ID;
//   - a serialized writer (syncwriter.go) so concurrent diagnostic
//     streams (cache log, server log, slow-task events) cannot shear
//     lines.
//
// The design center is "free when off": with no exporter installed and
// no slow-log configured, Start/End/NoteTask are a couple of branches
// and zero allocations (pinned by alloc_test.go), so instrumented code
// paths — every runner.Map task attempt runs under a span — cost
// nothing in ordinary CLI runs. Only stdlib imports, so any package may
// depend on obs without cycles.
package obs

import (
	"context"
	"sync/atomic"
	"time"
)

// Exporter receives finished spans. Implementations must be safe for
// concurrent use; End calls them from whatever goroutine ends the span.
type Exporter interface {
	ExportSpan(r SpanRecord)
}

// globalExporter is the process-wide exporter (CLI -trace-out). The
// context-scoped exporter installed by Inject composes with it: a span
// under both exports to both.
var globalExporter atomic.Pointer[Exporter]

// SetExporter installs e as the process-wide span exporter (nil removes
// it). With no process-wide exporter and no context-injected one,
// tracing is off and Start returns a nil span at zero cost.
func SetExporter(e Exporter) {
	if e == nil {
		globalExporter.Store(nil)
		return
	}
	globalExporter.Store(&e)
}

// defaultTrace is the trace ID used for spans whose context carries
// none — cmd/paperbench stamps its run ID here so every task-attempt
// span of a sweep shares one trace.
var defaultTrace atomic.Pointer[string]

// SetDefaultTrace sets the fallback trace ID ("" clears it).
func SetDefaultTrace(id string) {
	if id == "" {
		defaultTrace.Store(nil)
		return
	}
	defaultTrace.Store(&id)
}

func fallbackTrace() string {
	if p := defaultTrace.Load(); p != nil {
		return *p
	}
	return ""
}

// spanSeq hands out process-unique span IDs. 0 is reserved for "no
// span" (the nil span's ID).
var spanSeq atomic.Uint64

// ctxData is what a traced context carries: the injected exporter (may
// be nil when only the global exporter is in play), the trace ID, and
// the enclosing span's ID.
type ctxData struct {
	exp    Exporter
	trace  string
	parent uint64
}

type ctxKey struct{}

// Inject returns a context that exports spans started under it to e
// (in addition to the process-wide exporter) under trace ID traceID.
// The service injects its span ring with the job ID per request; nested
// Inject calls override both fields.
func Inject(ctx context.Context, e Exporter, traceID string) context.Context {
	return context.WithValue(ctx, ctxKey{}, &ctxData{exp: e, trace: traceID})
}

// WithTrace returns a context whose spans carry trace ID traceID,
// keeping any injected exporter from the parent context.
func WithTrace(ctx context.Context, traceID string) context.Context {
	d, _ := ctx.Value(ctxKey{}).(*ctxData)
	nd := &ctxData{trace: traceID}
	if d != nil {
		nd.exp = d.exp
		nd.parent = d.parent
	}
	return context.WithValue(ctx, ctxKey{}, nd)
}

// Enabled reports whether ctx would produce real spans: an exporter is
// installed globally or injected into ctx.
func Enabled(ctx context.Context) bool {
	if globalExporter.Load() != nil {
		return true
	}
	d, _ := ctx.Value(ctxKey{}).(*ctxData)
	return d != nil && d.exp != nil
}

// Start begins a span named name under ctx. When tracing is off (no
// exporter reachable from ctx) it returns ctx unchanged and a nil span
// whose methods are all no-ops — the disabled path performs no
// allocation. When tracing is on, the returned context parents
// subsequent spans under the new one.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	g := globalExporter.Load()
	d, _ := ctx.Value(ctxKey{}).(*ctxData)
	var ce Exporter
	if d != nil {
		ce = d.exp
	}
	if g == nil && ce == nil {
		return ctx, nil
	}
	sp := &Span{name: name, id: spanSeq.Add(1), start: time.Now(), ctxExp: ce}
	if g != nil {
		sp.globalExp = *g
	}
	if d != nil {
		sp.trace = d.trace
		sp.parent = d.parent
	}
	if sp.trace == "" {
		sp.trace = fallbackTrace()
	}
	nd := &ctxData{exp: ce, trace: sp.trace, parent: sp.id}
	return context.WithValue(ctx, ctxKey{}, nd), sp
}
