package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestCheckMetricName(t *testing.T) {
	cases := []struct {
		kind MetricKind
		name string
		ok   bool
	}{
		{KindCounter, "mct_jobs_accepted_total", true},
		{KindCounter, "mct_jobs_accepted", false}, // counter without _total
		{KindGauge, "mct_queue_inflight", true},
		{KindGauge, "mct_queue_total", false}, // gauge ending _total
		{KindHistogram, "mct_classify_duration_seconds", true},
		{KindHistogram, "mct_classify_batch_size", true},
		{KindHistogram, "mct_classify_duration", false}, // no unit suffix
		{KindCounter, "jobs_total", false},              // missing namespace
		{KindCounter, "mct_Jobs_total", false},          // capitals
		{KindCounter, "mct__jobs_total", false},         // double underscore
		{KindCounter, "mct_jobs_total_", false},         // trailing underscore
		{MetricKind("summary"), "mct_x_total", false},   // unknown kind
	}
	for _, c := range cases {
		err := CheckMetricName(c.kind, c.name)
		if (err == nil) != c.ok {
			t.Errorf("CheckMetricName(%s, %q) = %v, want ok=%v", c.kind, c.name, err, c.ok)
		}
	}
}

func TestRegistryPanicsOnBadOrDuplicateName(t *testing.T) {
	r := NewRegistry()
	r.Counter("mct_good_total", "h", func() float64 { return 0 })
	for name, reg := range map[string]func(){
		"bad name":  func() { r.Gauge("not_namespaced", "h", func() float64 { return 0 }) },
		"duplicate": func() { r.Counter("mct_good_total", "h", func() float64 { return 0 }) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s registration did not panic", name)
				}
			}()
			reg()
		}()
	}
}

func TestWriteTextAndParseRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("mct_jobs_accepted_total", "Jobs accepted.", func() float64 { return 42 })
	r.Gauge("mct_queue_inflight", "In-flight jobs.", func() float64 { return 3 })
	h := r.Histogram("mct_classify_duration_seconds", "Classify latency.", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(0.005)
	h.Observe(5) // +Inf bucket

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()

	// Spot-check the exposition shape.
	for _, want := range []string{
		"# HELP mct_jobs_accepted_total Jobs accepted.",
		"# TYPE mct_jobs_accepted_total counter",
		"mct_jobs_accepted_total 42",
		"# TYPE mct_queue_inflight gauge",
		"mct_queue_inflight 3",
		"# TYPE mct_classify_duration_seconds histogram",
		`mct_classify_duration_seconds_bucket{le="0.001"} 1`,
		`mct_classify_duration_seconds_bucket{le="0.01"} 3`,
		`mct_classify_duration_seconds_bucket{le="0.1"} 3`,
		`mct_classify_duration_seconds_bucket{le="+Inf"} 4`,
		"mct_classify_duration_seconds_count 4",
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("exposition missing line %q:\n%s", want, text)
		}
	}

	// The strict parser must accept every line the writer produces.
	samples, err := ParseProm(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseProm rejected our own exposition: %v", err)
	}
	byName := map[string]float64{}
	for _, s := range samples {
		if s.Labels == nil {
			byName[s.Name] = s.Value
		}
	}
	if byName["mct_jobs_accepted_total"] != 42 || byName["mct_queue_inflight"] != 3 {
		t.Errorf("parsed plain samples = %v", byName)
	}

	hists := HistogramsFromSamples(samples)
	if len(hists) != 1 {
		t.Fatalf("reassembled %d histograms, want 1", len(hists))
	}
	ph := hists[0]
	if ph.Name != "mct_classify_duration_seconds" || ph.Count != 4 {
		t.Errorf("histogram = %+v", ph)
	}
	if math.Abs(ph.Sum-5.0105) > 1e-9 {
		t.Errorf("Sum = %g, want 5.0105", ph.Sum)
	}
	if n := len(ph.Buckets); n != 4 {
		t.Fatalf("%d buckets, want 4", n)
	}
	if last := ph.Buckets[len(ph.Buckets)-1]; last.LE != "+Inf" || last.CumulativeCount != 4 {
		t.Errorf("last bucket = %+v, want +Inf cumulative 4", last)
	}
	for i := 1; i < len(ph.Buckets); i++ {
		if ph.Buckets[i].CumulativeCount < ph.Buckets[i-1].CumulativeCount {
			t.Errorf("buckets not cumulative: %+v", ph.Buckets)
		}
	}
}

func TestParsePromRejectsGarbage(t *testing.T) {
	for name, text := range map[string]string{
		"bare word":       "hello world garbage\nmct_x_total 1\n",
		"bad comment":     "# NOPE something\n",
		"bad value":       "mct_x_total notanumber\n",
		"unclosed label":  `mct_x_bucket{le="1 2` + "\n",
		"label no quotes": `mct_x_bucket{le=1} 2` + "\n",
	} {
		if _, err := ParseProm(strings.NewReader(text)); err == nil {
			t.Errorf("%s: ParseProm accepted %q", name, text)
		}
	}
	// Blank lines and escaped labels are fine.
	ok := "\n# HELP mct_x_total h\n# TYPE mct_x_total counter\n" +
		`mct_x_total{path="a\"b\\c"} 1` + "\n"
	samples, err := ParseProm(strings.NewReader(ok))
	if err != nil {
		t.Fatalf("ParseProm rejected valid text: %v", err)
	}
	if len(samples) != 1 || samples[0].Labels["path"] != `a"b\c` {
		t.Errorf("samples = %+v", samples)
	}
}

func TestRegistryNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("mct_a_total", "h", func() float64 { return 0 })
	r.Histogram("mct_b_seconds", "h", []float64{1})
	names := r.Names()
	if names["mct_a_total"] != KindCounter || names["mct_b_seconds"] != KindHistogram {
		t.Errorf("Names = %v", names)
	}
}
