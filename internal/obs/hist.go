package obs

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket, lock-free histogram in the Prometheus
// shape: bounds are inclusive upper limits, an implicit +Inf bucket
// catches the tail, and the exposition renders cumulative _bucket
// counts plus _sum and _count. Observe is a binary search plus two
// atomic adds — cheap enough for per-request latencies, and safe from
// any goroutine.
type Histogram struct {
	name    string
	help    string
	bounds  []float64       // ascending upper bounds; implicit +Inf after
	counts  []atomic.Uint64 // len(bounds)+1
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
}

// NewHistogram builds a histogram over the given ascending bucket
// upper bounds. It is not registered anywhere; Registry.Histogram is
// the usual constructor. Panics on empty or unsorted bounds — bucket
// layout is compile-time configuration, not data.
func NewHistogram(name, help string, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending at %d", name, i))
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{
		name:   name,
		help:   help,
		bounds: b,
		counts: make([]atomic.Uint64, len(b)+1),
	}
}

// Name returns the metric name the histogram was created with.
func (h *Histogram) Name() string { return h.name }

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds (the Prometheus base
// unit for time).
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Snapshot returns the per-bucket (non-cumulative) counts, one per
// bound plus the +Inf tail. Reads are per-bucket atomic: a snapshot
// taken mid-observation may be off by the in-flight observation, never
// torn.
func (h *Histogram) Snapshot() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (0..1) from the bucket counts by
// linear interpolation inside the bucket that crosses the target rank.
// It is an estimate bounded by bucket resolution — the expvar map
// exposes it for quick eyeballing; precise latencies come from the
// client side (perf.SummarizeLatency) or the full bucket exposition.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum uint64
	snap := h.Snapshot()
	for i, c := range snap {
		prev := cum
		cum += c
		if float64(cum) >= rank {
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			if i == len(h.bounds) {
				// +Inf bucket: no upper bound to interpolate toward.
				return lower
			}
			upper := h.bounds[i]
			if c == 0 {
				return upper
			}
			frac := (rank - float64(prev)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lower + frac*(upper-lower)
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// String implements expvar.Var: a compact JSON summary (count, sum,
// interpolated p50/p99). The full bucket detail lives in the
// Prometheus exposition; the expvar map stays flat and numeric.
func (h *Histogram) String() string {
	var b strings.Builder
	b.WriteString(`{"count":`)
	b.WriteString(strconv.FormatUint(h.Count(), 10))
	b.WriteString(`,"sum":`)
	b.WriteString(strconv.FormatFloat(h.Sum(), 'g', -1, 64))
	b.WriteString(`,"p50":`)
	b.WriteString(strconv.FormatFloat(h.Quantile(0.5), 'g', -1, 64))
	b.WriteString(`,"p99":`)
	b.WriteString(strconv.FormatFloat(h.Quantile(0.99), 'g', -1, 64))
	b.WriteString("}")
	return b.String()
}

// LatencyBuckets is the default latency bucket layout in seconds:
// 100µs to 10s, roughly logarithmic — sized for the service's request
// latencies (sub-millisecond cache hits to multi-second cold sweeps).
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// SizeBuckets is the default size/count bucket layout: powers of two
// from 1 to 1024 — batch sizes, record counts.
var SizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
