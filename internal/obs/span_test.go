package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
)

// collector is a test exporter capturing records in order.
type collector struct {
	mu   sync.Mutex
	recs []SpanRecord
}

func (c *collector) ExportSpan(r SpanRecord) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.recs = append(c.recs, r)
}

func (c *collector) all() []SpanRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]SpanRecord, len(c.recs))
	copy(out, c.recs)
	return out
}

func TestSpanDisabledIsNil(t *testing.T) {
	ctx, sp := Start(context.Background(), "noop")
	if sp != nil {
		t.Fatal("Start with no exporter must return a nil span")
	}
	if ctx != context.Background() {
		t.Fatal("disabled Start must return the context unchanged")
	}
	// Every nil-span method must be a safe no-op.
	sp.Str("k", "v")
	sp.Int("k", 1)
	sp.Float("k", 1.5)
	sp.Bool("k", true)
	sp.Err(errors.New("x"))
	sp.End()
	if sp.ID() != 0 || sp.Trace() != "" {
		t.Error("nil span must report zero ID and empty trace")
	}
}

func TestSpanHierarchyAndTrace(t *testing.T) {
	var c collector
	ctx := Inject(context.Background(), &c, "job-1")

	ctx1, root := Start(ctx, "request")
	root.Str("client", "tester")
	_, child := Start(ctx1, "admit")
	child.Bool("ok", true)
	child.End()
	root.End()

	recs := c.all()
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	ad, rq := recs[0], recs[1] // child ends first
	if ad.Name != "admit" || rq.Name != "request" {
		t.Fatalf("names = %q, %q", ad.Name, rq.Name)
	}
	if ad.Trace != "job-1" || rq.Trace != "job-1" {
		t.Errorf("traces = %q, %q, want job-1", ad.Trace, rq.Trace)
	}
	if ad.Parent != rq.Span {
		t.Errorf("child parent = %d, want root span %d", ad.Parent, rq.Span)
	}
	if rq.Parent != 0 {
		t.Errorf("root parent = %d, want 0", rq.Parent)
	}
	if rq.Attrs["client"] != "tester" {
		t.Errorf("root attrs = %v", rq.Attrs)
	}
	if ad.Attrs["ok"] != true {
		t.Errorf("child attrs = %v", ad.Attrs)
	}
	if ad.DurNS < 0 || rq.DurNS < ad.DurNS {
		t.Errorf("durations implausible: child %d, root %d", ad.DurNS, rq.DurNS)
	}
}

func TestGlobalAndContextExportersBothReceive(t *testing.T) {
	var g, c collector
	SetExporter(&g)
	defer SetExporter(nil)

	ctx := Inject(context.Background(), &c, "j")
	_, sp := Start(ctx, "both")
	sp.End()

	if len(g.all()) != 1 || len(c.all()) != 1 {
		t.Fatalf("global saw %d, ctx saw %d, want 1 each", len(g.all()), len(c.all()))
	}
	// Same exporter in both roles must receive the span once.
	SetExporter(&c)
	ctx2 := Inject(context.Background(), &c, "j2")
	_, sp2 := Start(ctx2, "once")
	sp2.End()
	n := 0
	for _, r := range c.all() {
		if r.Name == "once" {
			n++
		}
	}
	if n != 1 {
		t.Errorf("same exporter saw the span %d times, want 1", n)
	}
}

func TestDefaultTrace(t *testing.T) {
	var g collector
	SetExporter(&g)
	defer SetExporter(nil)
	SetDefaultTrace("run-42")
	defer SetDefaultTrace("")

	_, sp := Start(context.Background(), "task")
	sp.End()
	if recs := g.all(); len(recs) != 1 || recs[0].Trace != "run-42" {
		t.Fatalf("records = %+v, want one with trace run-42", recs)
	}
}

func TestWithTraceOverrides(t *testing.T) {
	var c collector
	ctx := Inject(context.Background(), &c, "outer")
	ctx = WithTrace(ctx, "inner")
	_, sp := Start(ctx, "x")
	sp.End()
	if recs := c.all(); len(recs) != 1 || recs[0].Trace != "inner" {
		t.Fatalf("records = %+v, want trace inner", c.all())
	}
}

func TestEnabled(t *testing.T) {
	if Enabled(context.Background()) {
		t.Error("Enabled must be false with no exporters")
	}
	var c collector
	if !Enabled(Inject(context.Background(), &c, "")) {
		t.Error("Enabled must see the injected exporter")
	}
	SetExporter(&c)
	defer SetExporter(nil)
	if !Enabled(context.Background()) {
		t.Error("Enabled must see the global exporter")
	}
}

func TestNDJSONExporter(t *testing.T) {
	var buf bytes.Buffer
	e := NewNDJSONExporter(&buf)
	ctx := Inject(context.Background(), e, "t1")
	for i := 0; i < 3; i++ {
		_, sp := Start(ctx, "op")
		sp.Int("i", int64(i))
		sp.End()
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if e.Count() != 3 {
		t.Errorf("Count = %d, want 3", e.Count())
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		var r SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", lines, err, sc.Text())
		}
		if r.Trace != "t1" || r.Name != "op" {
			t.Errorf("record = %+v", r)
		}
		lines++
	}
	if lines != 3 {
		t.Errorf("%d NDJSON lines, want 3", lines)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRingEvictsOldest(t *testing.T) {
	r := NewRing(4)
	ctx := Inject(context.Background(), r, "keep")
	for i := 0; i < 6; i++ {
		tr := "drop"
		if i >= 2 {
			tr = "keep"
		}
		_, sp := Start(WithTrace(ctx, tr), "op")
		sp.Int("i", int64(i))
		sp.End()
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4 (capacity)", r.Len())
	}
	if got := r.ByTrace("drop"); len(got) != 0 {
		t.Errorf("evicted trace still visible: %+v", got)
	}
	kept := r.ByTrace("keep")
	if len(kept) != 4 {
		t.Fatalf("kept %d spans, want 4", len(kept))
	}
	for i, rec := range kept {
		if want := int64(i + 2); rec.Attrs["i"] != want {
			// JSON round-trip is not in play here; attrs hold int64.
			t.Errorf("kept[%d] attr i = %v, want %d (oldest-first order)", i, rec.Attrs["i"], want)
		}
	}
}

func TestSyncWriterNoShearing(t *testing.T) {
	var buf bytes.Buffer
	w := NewSyncWriter(&buf)
	if NewSyncWriter(w) != w {
		t.Error("double wrap must return the same SyncWriter")
	}
	var wg sync.WaitGroup
	const writers, lines = 8, 50
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			line := strings.Repeat(string(rune('a'+id)), 40) + "\n"
			for j := 0; j < lines; j++ {
				if _, err := w.Write([]byte(line)); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, line := range strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n") {
		if len(line) != 40 || strings.Count(line, line[:1]) != 40 {
			t.Fatalf("sheared line: %q", line)
		}
	}
}
