package obs

import (
	"io"
	"sync"
)

// SyncWriter serializes whole Write calls onto an underlying writer.
// cmd/mctd routes every diagnostic stream — its own log lines, the
// result cache's log callback, slow-task events — through one
// SyncWriter so concurrent sweeps cannot shear interleaved lines on
// stderr. (Each log statement must arrive as a single Write, which
// fmt.Fprintf guarantees.)
type SyncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

// NewSyncWriter wraps w. If w is already a *SyncWriter it is returned
// as-is — double wrapping would just stack mutexes.
func NewSyncWriter(w io.Writer) *SyncWriter {
	if sw, ok := w.(*SyncWriter); ok {
		return sw
	}
	return &SyncWriter{w: w}
}

// Write implements io.Writer.
func (s *SyncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}
