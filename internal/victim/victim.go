// Package victim implements the victim-cache architectures of Section 5.1:
// a traditional Jouppi victim buffer, plus the paper's three
// classification-filtered variants — no-swap-on-conflict-hit,
// no-fill-on-capacity-eviction, and both combined.
//
// The filtered policies exploit the Miss Classification Table two ways:
// swap filtering recognizes that conflict misses are the source of heavy
// line ping-ponging between cache and buffer (so conflict hits are served
// from the buffer in place), and fill filtering keeps capacity-evicted
// lines — which will not be re-referenced soon — from churning buffer
// entries. Both use the paper's most liberal identification, or-conflict.
package victim

import (
	"fmt"

	"repro/internal/assist"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/mem"
)

// Policy selects which of the paper's Figure-3 victim configurations to
// model.
type Policy struct {
	// FilterSwaps serves conflict-classified buffer hits in place instead
	// of swapping the line back into the cache (Figure 3, second bar).
	FilterSwaps bool
	// FilterFills bypasses the buffer when the evicted line fails the
	// conflict filter, i.e. capacity evictions are dropped (third bar).
	FilterFills bool
	// Filter is the conflict filter; the paper uses or-conflict for all
	// victim policies.
	Filter core.Filter
}

// Traditional is the unfiltered Jouppi victim cache.
var Traditional = Policy{Filter: core.OrConflict}

// FilterSwapsPolicy, FilterFillsPolicy, and FilterBothPolicy are the
// paper's three filtered variants.
var (
	FilterSwapsPolicy = Policy{FilterSwaps: true, Filter: core.OrConflict}
	FilterFillsPolicy = Policy{FilterFills: true, Filter: core.OrConflict}
	FilterBothPolicy  = Policy{FilterSwaps: true, FilterFills: true, Filter: core.OrConflict}
)

// Name returns the experiment label for the policy.
func (p Policy) Name() string {
	switch {
	case p.FilterSwaps && p.FilterFills:
		return "vc-filter-both"
	case p.FilterSwaps:
		return "vc-filter-swaps"
	case p.FilterFills:
		return "vc-filter-fills"
	default:
		return "vc-traditional"
	}
}

// System is the victim-cache assist system.
type System struct {
	pol    Policy
	l1     *cache.Cache
	mct    *core.MCT
	buffer *assist.Buffer
	geom   mem.Geometry

	stats assist.Stats
}

// New builds a victim-cache system over the L1 configuration with an
// entries-deep buffer (the paper uses eight).
func New(cfg cache.Config, tagBits, entries int, pol Policy) (*System, error) {
	l1, err := cache.New(cfg)
	if err != nil {
		return nil, err
	}
	mct, err := core.New(core.Config{Sets: cfg.Sets(), TagBits: tagBits})
	if err != nil {
		return nil, err
	}
	if entries <= 0 {
		return nil, fmt.Errorf("victim: buffer needs positive entries, got %d", entries)
	}
	return &System{
		pol:    pol,
		l1:     l1,
		mct:    mct,
		buffer: assist.NewBuffer(entries),
		geom:   l1.Geometry(),
	}, nil
}

// MustNew is New that panics on error.
func MustNew(cfg cache.Config, tagBits, entries int, pol Policy) *System {
	s, err := New(cfg, tagBits, entries, pol)
	if err != nil {
		panic(err)
	}
	return s
}

// Name implements assist.System.
func (s *System) Name() string { return s.pol.Name() }

// Buffer exposes the underlying buffer for diagnostics and tests.
func (s *System) Buffer() *assist.Buffer { return s.buffer }

// L1 exposes the underlying cache.
func (s *System) L1() *cache.Cache { return s.l1 }

// Access implements assist.System.
func (s *System) Access(acc mem.Access) assist.Outcome {
	isStore := acc.Type == mem.Store
	s.stats.Accesses++
	if s.l1.Access(acc.Addr, acc.Type) {
		s.stats.L1Hits++
		return assist.Outcome{L1Hit: true}
	}

	set := s.geom.Set(acc.Addr)
	tag := s.geom.Tag(acc.Addr)
	class := s.mct.ClassifyMiss(set, tag)
	line := s.geom.Line(acc.Addr)

	if entry, ok := s.buffer.Hit(line, isStore); ok {
		s.stats.BufferHits++
		s.stats.BufferHitsByOrigin[entry.Origin]++
		// Swap filtering: a conflict-classified hit is served in place to
		// avoid ping-ponging the pair of lines through the swap path.
		if s.pol.FilterSwaps && s.pol.Filter.Eval(class == core.Conflict, entry.Conflict) {
			return assist.Outcome{Class: class, BufferHit: true}
		}
		// Swap: buffer line moves into the cache, the displaced cache line
		// moves into the buffer (becoming MRU, per Jouppi).
		s.buffer.Remove(line)
		s.stats.Swaps++
		ev := assist.FillWithMCT(s.l1, s.mct, acc.Addr, isStore || entry.Dirty, class)
		if ev.Occurred {
			s.stashVictim(ev, class, true)
		}
		return assist.Outcome{Class: class, BufferHit: true, Swap: true}
	}

	// Full miss: line comes from the L2; the L1 eviction is offered to the
	// buffer subject to fill filtering.
	s.stats.Misses++
	if class == core.Conflict {
		s.stats.ConflictMisses++
	} else {
		s.stats.CapacityMisses++
	}
	ev := assist.FillWithMCT(s.l1, s.mct, acc.Addr, isStore, class)
	writeback := false
	filled := false
	if ev.Occurred {
		accept := true
		if s.pol.FilterFills {
			accept = s.pol.Filter.Eval(class == core.Conflict, ev.Conflict)
		}
		if accept {
			writeback = s.stashVictim(ev, class, false)
			filled = true
		} else if ev.Dirty {
			writeback = true
		}
	}
	return assist.Outcome{
		Class:      class,
		CacheFill:  true,
		BufferFill: filled,
		Writeback:  writeback,
	}
}

// stashVictim inserts an evicted cache line into the buffer, returning
// whether the insertion displaced a dirty buffer entry (needing a
// writeback). fromSwap distinguishes swap traffic from miss fills in the
// statistics (Table 1 counts them separately).
func (s *System) stashVictim(ev cache.Eviction, class core.Class, fromSwap bool) bool {
	if !fromSwap {
		s.stats.BufferFills++
	}
	dropped, wasFull := s.buffer.Insert(ev.Line, assist.Entry{
		Origin:   assist.OriginVictim,
		Dirty:    ev.Dirty,
		Conflict: ev.Conflict,
	})
	return wasFull && dropped.Entry.Dirty
}

// Contains implements assist.System.
func (s *System) Contains(addr mem.Addr) (inL1, inBuffer bool) {
	return s.l1.Contains(addr), s.buffer.Contains(s.geom.Line(addr))
}

// PrefetchArrived implements assist.System; victim caches never prefetch.
func (s *System) PrefetchArrived(mem.LineAddr) bool { return false }

// Stats implements assist.System.
func (s *System) Stats() assist.Stats { return s.stats }
