package victim

import (
	"testing"

	"repro/internal/assist"
	"repro/internal/cache"
	"repro/internal/mem"
)

func dmConfig() cache.Config {
	return cache.Config{Name: "t", Size: 16 * 1024, LineSize: 64, Assoc: 1}
}

func load(a mem.Addr) mem.Access  { return mem.Access{Addr: a, Type: mem.Load} }
func store(a mem.Addr) mem.Access { return mem.Access{Addr: a, Type: mem.Store} }

// pingPong drives n rounds of the canonical A/B conflict pair.
func pingPong(s *System, n int) {
	a, b := mem.Addr(0x0000), mem.Addr(0x4000)
	for i := 0; i < n; i++ {
		s.Access(load(a))
		s.Access(load(b))
	}
}

func TestPolicyNames(t *testing.T) {
	want := map[string]Policy{
		"vc-traditional":  Traditional,
		"vc-filter-swaps": FilterSwapsPolicy,
		"vc-filter-fills": FilterFillsPolicy,
		"vc-filter-both":  FilterBothPolicy,
	}
	for name, p := range want {
		if p.Name() != name {
			t.Errorf("policy name = %q, want %q", p.Name(), name)
		}
	}
}

func TestTraditionalVictimConvertsConflictMisses(t *testing.T) {
	s := MustNew(dmConfig(), 0, 8, Traditional)
	pingPong(s, 20)
	st := s.Stats()
	// First round: two cold misses. Afterward every access should be
	// served by the buffer (swap) or the cache.
	if st.Misses > 4 {
		t.Errorf("misses = %d; victim cache should absorb the ping-pong", st.Misses)
	}
	if st.BufferHits == 0 || st.Swaps == 0 {
		t.Errorf("expected buffer hits with swaps: %+v", st)
	}
}

func TestTraditionalSwapMovesLineToCache(t *testing.T) {
	s := MustNew(dmConfig(), 0, 8, Traditional)
	a, b := mem.Addr(0x0000), mem.Addr(0x4000)
	s.Access(load(a))
	s.Access(load(b)) // evicts a into buffer
	if inL1, inBuf := s.Contains(a); inL1 || !inBuf {
		t.Fatalf("a should be in buffer only: l1=%v buf=%v", inL1, inBuf)
	}
	out := s.Access(load(a)) // buffer hit, swap
	if !out.BufferHit || !out.Swap {
		t.Fatalf("outcome = %+v", out)
	}
	if inL1, inBuf := s.Contains(a); !inL1 || inBuf {
		t.Error("after swap, a should be in the cache")
	}
	if inL1, inBuf := s.Contains(b); inL1 || !inBuf {
		t.Error("after swap, b should be in the buffer")
	}
}

func TestFilterSwapsServesInPlace(t *testing.T) {
	s := MustNew(dmConfig(), 0, 8, FilterSwapsPolicy)
	a, b := mem.Addr(0x0000), mem.Addr(0x4000)
	s.Access(load(a))
	s.Access(load(b))
	// a's re-miss is conflict-classified (MCT recorded a's eviction), so
	// the hit is served from the buffer without a swap.
	out := s.Access(load(a))
	if !out.BufferHit || out.Swap {
		t.Fatalf("outcome = %+v; want swapless buffer hit", out)
	}
	if inL1, inBuf := s.Contains(a); inL1 || !inBuf {
		t.Error("a should remain in the buffer")
	}
	if s.Stats().Swaps != 0 {
		t.Errorf("swaps = %d", s.Stats().Swaps)
	}
}

func TestFilterFillsDropsCapacityEvictions(t *testing.T) {
	s := MustNew(dmConfig(), 0, 8, FilterFillsPolicy)
	// A long cold sweep: every eviction is capacity-flavored (no MCT
	// match, no conflict bits), so nothing should enter the buffer.
	for i := 0; i < 3*256; i++ {
		s.Access(load(mem.Addr(0x100000 + i*64*257))) // distinct sets/tags
	}
	// Sweep over 3x the cache in the same sets.
	for pass := 0; pass < 1; pass++ {
		for i := 0; i < 3*256; i++ {
			s.Access(load(mem.Addr(i * 64)))
		}
	}
	if fills := s.Stats().BufferFills; fills > 10 {
		t.Errorf("capacity sweep filled the buffer %d times", fills)
	}
	// Ping-pong traffic, in contrast, is stashed once steady.
	pingPong(s, 10)
	if s.Stats().BufferFills == 0 {
		t.Error("conflict evictions should be stashed")
	}
}

func TestDirtyLineSurvivesSwapPath(t *testing.T) {
	s := MustNew(dmConfig(), 0, 8, Traditional)
	a, b := mem.Addr(0x0000), mem.Addr(0x4000)
	s.Access(store(a)) // dirty a
	s.Access(load(b))  // a (dirty) into buffer
	s.Access(load(a))  // swap back: dirtiness must be preserved
	s.Access(load(b))  // swap: a evicted to buffer again
	// Force a out of the buffer entirely and check a writeback happens.
	wb := false
	for i := 1; i <= 9; i++ {
		out := s.Access(load(mem.Addr(uint64(i)*0x4000 + 0x1000))) // other sets, fill buffer
		wb = wb || out.Writeback
	}
	_ = wb // dirty drop accounting is visible through the buffer stats:
	if s.Buffer().Stats().WritebacksOnDrop == 0 && !wb {
		t.Error("dirty victim line vanished without a writeback")
	}
}

func TestVictimStoreHitDirtiesBufferEntry(t *testing.T) {
	s := MustNew(dmConfig(), 0, 8, FilterSwapsPolicy)
	a, b := mem.Addr(0x0000), mem.Addr(0x4000)
	s.Access(load(a))
	s.Access(load(b))
	s.Access(store(a)) // swapless buffer hit as a store
	e, ok := s.Buffer().Probe(s.L1().Geometry().Line(a))
	if !ok || !e.Dirty {
		t.Errorf("buffer entry after store hit: %+v ok=%v", e, ok)
	}
}

func TestBufferHitsByOriginAreVictim(t *testing.T) {
	s := MustNew(dmConfig(), 0, 8, Traditional)
	pingPong(s, 5)
	st := s.Stats()
	if st.BufferHitsByOrigin[assist.OriginVictim] != st.BufferHits {
		t.Errorf("all victim-cache hits should have victim origin: %+v", st)
	}
}

func TestPrefetchArrivedRejected(t *testing.T) {
	s := MustNew(dmConfig(), 0, 8, Traditional)
	if s.PrefetchArrived(7) {
		t.Error("victim caches never prefetch")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(dmConfig(), 0, 0, Traditional); err == nil {
		t.Error("zero entries accepted")
	}
	if _, err := New(cache.Config{Size: 1}, 0, 8, Traditional); err == nil {
		t.Error("bad cache config accepted")
	}
	if _, err := New(dmConfig(), 99, 8, Traditional); err == nil {
		t.Error("bad tag bits accepted")
	}
}

// TestFilteredNeverWorseHitRateThanNothing: any victim policy's total hit
// rate is at least the bare cache's on the same stream (the buffer only
// adds capacity).
func TestVictimNeverHurtsTotalHitRate(t *testing.T) {
	for _, pol := range []Policy{Traditional, FilterSwapsPolicy, FilterFillsPolicy, FilterBothPolicy} {
		s := MustNew(dmConfig(), 0, 8, pol)
		bare := assist.MustNewBaseline(dmConfig(), 0)
		// Mixed stream: ping-pong + sweep.
		a, b := mem.Addr(0x0000), mem.Addr(0x4000)
		for i := 0; i < 200; i++ {
			for _, acc := range []mem.Access{load(a), load(b), load(mem.Addr(0x100000 + i*64))} {
				s.Access(acc)
				bare.Access(acc)
			}
		}
		if s.Stats().TotalHitRate() < bare.Stats().TotalHitRate()-1e-9 {
			t.Errorf("%s: total hit rate %.3f below bare cache %.3f",
				pol.Name(), s.Stats().TotalHitRate(), bare.Stats().TotalHitRate())
		}
	}
}
