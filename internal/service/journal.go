package service

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/runner"
)

// jobRecord is one journal entry. Three ops describe a job's life:
//
//	create  — the job exists: id, kind, client, idempotency key
//	start   — the job began executing, carrying the spec verbatim so a
//	          rebooted mctd can re-drive it without the original request
//	finish  — the terminal state (done/failed/canceled) and error text
//
// Replay folds records by ID, so applying a record twice (compaction's
// crash window) is harmless — the journal package's idempotency
// contract.
type jobRecord struct {
	Op     string          `json:"op"` // "create" | "start" | "finish"
	ID     string          `json:"id"`
	Kind   string          `json:"kind,omitempty"`
	Client string          `json:"client,omitempty"`
	Idem   string          `json:"idem,omitempty"`
	Spec   json.RawMessage `json:"spec,omitempty"`
	State  JobState        `json:"state,omitempty"`
	Error  string          `json:"error,omitempty"`
	T      time.Time       `json:"t"`
}

// jobLog write-throughs the job registry's lifecycle events into the
// WAL. A nil jobLog (journaling disabled) turns every method into a
// no-op, so callers never branch. Journal write failures are counted
// and logged but never fail the request — durability degradation is an
// operational alert, not an availability loss.
type jobLog struct {
	j      *journal.Journal
	logf   func(format string, args ...any)
	errs   *counter
	writes *counter
}

func (l *jobLog) append(rec jobRecord, sync bool) {
	if l == nil || l.j == nil {
		return
	}
	rec.T = time.Now().UTC()
	enc, err := json.Marshal(rec)
	if err == nil {
		err = l.j.Append(enc)
		if err == nil && sync {
			err = l.j.Sync()
		}
	}
	if err != nil {
		l.errs.Add(1)
		if l.logf != nil {
			l.logf("service: journal write failed (op=%s job=%s): %v", rec.Op, rec.ID, err)
		}
		return
	}
	l.writes.Add(1)
}

func (l *jobLog) create(id, kind, client, idem string) {
	l.append(jobRecord{Op: "create", ID: id, Kind: kind, Client: client, Idem: idem}, false)
}

// start records execution with the spec attached. A nil spec (the
// upload path, whose body is not retained) journals without one; such
// jobs cannot be re-driven after a crash and recovery marks them failed.
func (l *jobLog) start(id string, spec any) {
	rec := jobRecord{Op: "start", ID: id}
	if spec != nil {
		if enc, err := json.Marshal(spec); err == nil {
			rec.Spec = enc
		}
	}
	l.append(rec, false)
}

// finish is a batch boundary: under PolicyData the record is fsynced, so
// a completed job's outcome survives power loss.
func (l *jobLog) finish(id string, state JobState, errText string) {
	l.append(jobRecord{Op: "finish", ID: id, State: state, Error: errText}, true)
}

// recoveredJob is the folded view of one job's records at boot.
type recoveredJob struct {
	rec      jobRecord // create fields
	spec     json.RawMessage
	started  bool
	finished bool
	state    JobState
	errText  string
	finT     time.Time
	order    int // first-seen order, to replay registry FIFO faithfully
}

// RecoveryStats summarizes a boot-time Recover.
type RecoveryStats struct {
	Replay journal.ReplayStats
	// Jobs seen in the journal; Finished were already terminal;
	// Redriven were unfinished with a spec and are re-executing;
	// Orphaned were unfinished without a re-drivable spec (upload
	// classifies) and are now marked failed.
	Jobs, Finished, Redriven, Orphaned int
}

// Recover replays the job journal into the registry and re-drives every
// unfinished job: sweeps re-enter runSweep (their finished cells replay
// from the memo cache via the checkpoint, so only interrupted cells
// recompute), spec classifies re-enter the batcher, and upload
// classifies — whose request bodies were never retained — are marked
// failed. Re-driven work runs in background goroutines that Drain waits
// for. After replay the journal is compacted to the still-live records.
//
// Call once, after New and before serving traffic.
func (s *Service) Recover(ctx context.Context) (RecoveryStats, error) {
	var st RecoveryStats
	if s.jlogOpenErr != nil {
		// New deferred the open failure to here: a boot that asked for
		// durability but cannot have it should fail loudly, not run with a
		// silently disabled journal.
		return st, fmt.Errorf("service: opening job journal: %w", s.jlogOpenErr)
	}
	if s.jlog == nil || s.jlog.j == nil {
		return st, nil
	}
	byID := map[string]*recoveredJob{}
	var order []string
	replay, err := s.jlog.j.Replay(func(p []byte) error {
		var rec jobRecord
		if uerr := json.Unmarshal(p, &rec); uerr != nil || rec.ID == "" {
			return nil // unparseable record: skip, CRC said bytes are intact but schema moved on
		}
		rj, ok := byID[rec.ID]
		if !ok {
			rj = &recoveredJob{order: len(order)}
			byID[rec.ID] = rj
			order = append(order, rec.ID)
		}
		switch rec.Op {
		case "create":
			rj.rec = rec
		case "start":
			rj.started = true
			if len(rec.Spec) > 0 {
				rj.spec = rec.Spec
			}
		case "finish":
			rj.finished = true
			rj.state = rec.State
			rj.errText = rec.Error
			rj.finT = rec.T
		}
		return nil
	})
	st.Replay = replay
	if err != nil {
		return st, fmt.Errorf("service: journal replay: %w", err)
	}

	var live [][]byte
	type redriveItem struct {
		id, kind string
		spec     json.RawMessage
	}
	var redrives []redriveItem
	for _, id := range order {
		rj := byID[id]
		st.Jobs++
		job := Job{
			ID:        id,
			Kind:      rj.rec.Kind,
			Client:    rj.rec.Client,
			IdemKey:   rj.rec.Idem,
			State:     JobQueued,
			Created:   rj.rec.T,
			Recovered: true,
		}
		switch {
		case rj.finished:
			st.Finished++
			job.State = rj.state
			job.Error = rj.errText
			t := rj.finT
			job.Finished = &t
			s.jobs.Restore(job)
		case rj.spec != nil:
			st.Redriven++
			s.jobs.Restore(job)
			redrives = append(redrives, redriveItem{id: id, kind: rj.rec.Kind, spec: rj.spec})
			live = append(live, mustRecord(jobRecord{Op: "create", ID: id, Kind: rj.rec.Kind,
				Client: rj.rec.Client, Idem: rj.rec.Idem, T: rj.rec.T}))
			live = append(live, mustRecord(jobRecord{Op: "start", ID: id, Spec: rj.spec, T: rj.rec.T}))
		default:
			// Created (or started on the upload path) but no spec to re-run:
			// the honest outcome is failure — the client's retry, carrying
			// the same trace bytes, computes fresh.
			st.Orphaned++
			job.State = JobFailed
			job.Error = "interrupted by service restart; request body not retained"
			now := time.Now()
			job.Finished = &now
			s.jobs.Restore(job)
			s.recovered.Add(1)
			s.jlog.finish(id, JobFailed, job.Error)
		}
	}
	// Compact history down to the jobs still in flight; finished jobs'
	// outcomes live in the registry (and their results in the memo
	// cache), so their records have served their purpose. Redrives
	// launch only after compaction: a redrive that finished first would
	// append its finish record to a pre-compaction segment that Compact
	// then deletes, leaving the job looking unfinished at the next boot
	// and re-driving it a second time.
	if err := s.jlog.j.Compact(live); err != nil {
		return st, fmt.Errorf("service: compacting journal after recovery: %w", err)
	}
	for _, rd := range redrives {
		s.redrive(ctx, rd.id, rd.kind, rd.spec)
	}
	return st, nil
}

func mustRecord(rec jobRecord) []byte {
	enc, err := json.Marshal(rec)
	if err != nil {
		panic(fmt.Sprintf("service: encoding journal record: %v", err))
	}
	return enc
}

// redrive re-executes one journaled job in the background. The result
// stream has no client attached — the value of the re-run is that it
// lands in the memo cache and checkpoint, so the client's retried
// request (same idempotency key or same spec) replays byte-identical
// instead of recomputing.
func (s *Service) redrive(ctx context.Context, id, kind string, rawSpec json.RawMessage) {
	s.recoverWG.Add(1)
	go func() {
		defer s.recoverWG.Done()
		ctx, sp := obs.Start(obs.Inject(ctx, s.ring, id), "service.recover")
		sp.Str("kind", kind)
		defer sp.End()
		s.jobs.Start(id)
		err := s.redriveOne(ctx, kind, rawSpec)
		sp.Err(err)
		state, errText := JobDone, ""
		if err != nil {
			state, errText = JobFailed, err.Error()
		}
		s.jobs.Finish(id, err, 0, 0, 0, 0)
		s.jlog.finish(id, state, errText)
		s.recovered.Add(1)
	}()
}

func (s *Service) redriveOne(ctx context.Context, kind string, rawSpec json.RawMessage) error {
	switch kind {
	case "sweep":
		var spec SweepSpec
		if err := json.Unmarshal(rawSpec, &spec); err != nil {
			return fmt.Errorf("service: journaled sweep spec: %w", err)
		}
		p, arts, err := spec.normalize()
		if err != nil {
			return err
		}
		_, _, _, err = s.runSweep(ctx, p, arts, spec.Seeds)
		return err
	case "classify":
		var spec ClassifySpec
		if err := json.Unmarshal(rawSpec, &spec); err != nil {
			return fmt.Errorf("service: journaled classify spec: %w", err)
		}
		if err := spec.normalize(false, s.cfg.MaxSpecAccesses); err != nil {
			return err
		}
		jobCtx := runner.WithOptions(ctx, s.supervision()...)
		_, _, err := s.classifyMemo(jobCtx, spec)
		return err
	case "mrc":
		var spec MRCSpec
		if err := json.Unmarshal(rawSpec, &spec); err != nil {
			return fmt.Errorf("service: journaled mrc spec: %w", err)
		}
		if err := spec.normalize(false, s.cfg.MaxSpecAccesses, s.cfg.Tenant.MaxSampledSet); err != nil {
			return err
		}
		// mrcMemo applies the supervision options itself.
		_, _, err := s.mrcMemo(ctx, spec)
		return err
	default:
		return fmt.Errorf("service: journaled job has unknown kind %q", kind)
	}
}

// AwaitRecovery blocks until background re-driven jobs finish or ctx
// expires — tests and Drain use it; serving traffic does not wait.
func (s *Service) AwaitRecovery(ctx context.Context) error {
	done := make(chan struct{})
	go func() { s.recoverWG.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
