package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

// Handler returns the service's HTTP API:
//
//	POST /v1/classify   classify a workload spec (JSON) or an uploaded
//	                    binary trace (any other content type) — NDJSON
//	POST /v1/sweep      run an experiment sweep — NDJSON
//	POST /v1/mrc        SHARDS-sampled miss-ratio curve with the MCT
//	                    conflict/capacity split per size, from a spec
//	                    (JSON) or an uploaded trace — NDJSON
//	GET  /v1/jobs/{id}  job status, attempts, partial failures
//	GET  /v1/trace/{job} the job's buffered trace spans — NDJSON
//	GET  /healthz       200 ok / 503 draining
//	GET  /metrics       expvar counters as JSON;
//	                    ?format=prometheus for the text exposition
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/classify", s.idempotent(s.handleClassify))
	mux.HandleFunc("POST /v1/sweep", s.idempotent(s.handleSweep))
	mux.HandleFunc("POST /v1/mrc", s.idempotent(s.handleMRC))
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/trace/{job}", s.handleTrace)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	// Internal peer-to-peer endpoints (cluster.go). Registered even when
	// single-node: a cell request is just "compute locally and memoize",
	// and a node with -peers empty may still be listed as a peer by others.
	mux.HandleFunc("POST /v1/cluster/cell", s.idempotent(s.handleClusterCell))
	mux.HandleFunc("GET /v1/cache/{key}", s.handleCacheGet)
	return mux
}

// statusFor maps the service's error taxonomy to HTTP statuses. It walks
// wrap chains with errors.Is, so a trace limit violation buried inside a
// TaskError inside a MultiError still reads as 413 — the reason
// MultiError's multi-branch Unwrap matters to the API layer.
func statusFor(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, trace.ErrTraceTooLarge):
		return http.StatusRequestEntityTooLarge // 413
	case errors.Is(err, ErrBusy), errors.Is(err, ErrClientBusy), errors.Is(err, ErrQuota):
		return http.StatusTooManyRequests // 429
	case errors.Is(err, ErrDraining), errors.Is(err, ErrOverloaded):
		return http.StatusServiceUnavailable // 503
	case errors.Is(err, ErrBadRequest):
		return http.StatusBadRequest // 400
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout // 504
	case errors.Is(err, context.Canceled):
		return 499 // client closed request (nginx convention)
	default:
		return http.StatusInternalServerError // 500
	}
}

// errorBody is the JSON error envelope for non-streaming failures.
// JobID is present whenever the request got far enough to allocate a
// job, so a client holding a failed response can still GET
// /v1/jobs/{id} for the attempt/failure detail.
type errorBody struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
	JobID  string `json:"job_id,omitempty"`
}

// retryAfterValue renders a duration as a Retry-After header value
// (whole seconds, minimum 1 — the header has no finer granularity).
func retryAfterValue(d time.Duration) string {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

func writeErr(w http.ResponseWriter, err error) { writeErrJob(w, err, "") }

// writeErrJob writes the error envelope. Backpressure statuses carry a
// Retry-After hint (preserving any value a more specific layer — the
// brownout controller — already set): 429 means "this instance, soon",
// 503 means "this instance is draining or shedding, give it longer".
//
// Error responses never keep the connection alive. Most of them go out
// before the request body has been read to EOF, and with full duplex
// enabled (handleClassify) the server's post-handler body drain fires
// the deferred background-read hook right before the keep-alive peek —
// a connection-killing panic inside net/http (Go 1.24). Closing instead
// mirrors what the server does for undrained bodies without full
// duplex, and every caller here is an error or shed path where the
// client re-dialing is acceptable.
func writeErrJob(w http.ResponseWriter, err error, jobID string) {
	status := statusFor(err)
	w.Header().Set("Connection", "close")
	if w.Header().Get("Retry-After") == "" {
		switch status {
		case http.StatusTooManyRequests:
			w.Header().Set("Retry-After", retryAfterValue(time.Second))
		case http.StatusServiceUnavailable:
			w.Header().Set("Retry-After", retryAfterValue(2*time.Second))
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorBody{Error: err.Error(), Status: status, JobID: jobID})
}

// clientID identifies the requester for per-client fairness: an explicit
// X-Mct-Client header, else the peer address without the port.
func clientID(r *http.Request) string {
	if c := r.Header.Get("X-Mct-Client"); c != "" {
		return c
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// ndjsonWriter emits one JSON value per line and flushes each, so
// clients see results as they exist rather than when the response
// buffer fills.
type ndjsonWriter struct {
	w       http.ResponseWriter
	f       http.Flusher
	emitted uint64
}

func newNDJSONWriter(w http.ResponseWriter) *ndjsonWriter {
	f, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	return &ndjsonWriter{w: w, f: f}
}

func (nw *ndjsonWriter) emit(v any) error {
	enc, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("service: encoding result line: %w", err)
	}
	if _, err := nw.w.Write(append(enc, '\n')); err != nil {
		return err
	}
	nw.emitted++
	if nw.f != nil {
		nw.f.Flush()
	}
	return nil
}

// createJob registers a job in the registry and the journal.
func (s *Service) createJob(id, kind, client, idem string) {
	s.jobs.CreateWithID(id, kind, client)
	if idem != "" {
		s.jobs.update(id, func(j *Job) { j.IdemKey = idem })
	}
	s.jlog.create(id, kind, client, idem)
}

// startJob marks a job running, journaling the spec so a crashed
// process can re-drive it (nil spec: the upload path, not re-drivable).
func (s *Service) startJob(id string, spec any) {
	s.jobs.Start(id)
	s.jlog.start(id, spec)
}

// stateOf maps a job's final error to its journal/registry state, the
// same taxonomy jobs.Finish applies.
func stateOf(err error) (JobState, string) {
	switch {
	case err == nil:
		return JobDone, ""
	case errors.Is(err, context.Canceled):
		return JobCanceled, err.Error()
	default:
		return JobFailed, err.Error()
	}
}

// finishJob records a job's outcome in the registry and the journal and
// feeds the retry metric.
func (s *Service) finishJob(id string, err error, records, emitted, hits, misses uint64) {
	s.jobs.Finish(id, err, records, emitted, hits, misses)
	state, errText := stateOf(err)
	s.jlog.finish(id, state, errText)
	if err != nil {
		fails, _ := failuresOf(err)
		s.noteRetries(fails)
	}
}

// handleClassify serves POST /v1/classify. A JSON body is a workload
// spec, batched with its contemporaries and memoized; any other body is
// a binary trace, streamed through the classifier under the service's
// size limits and cancellation. Either way the response is NDJSON and
// the job ID rides the X-Mct-Job header (never the body, which must be
// byte-identical between cold and cache-warm runs).
func (s *Service) handleClassify(w http.ResponseWriter, r *http.Request) {
	// Full duplex from the start: without it, HTTP/1's response path
	// synchronously drains any unread request body before the first
	// response byte goes out — an admission rejection of a slow or
	// withheld upload would block on the client instead of returning 429
	// immediately. (HTTP/2 is duplex natively; ErrNotSupported is fine.)
	_ = http.NewResponseController(w).EnableFullDuplex()

	// Brownout gate before any real work: the upload path counts as
	// streaming (shed first), the JSON-spec path sheds only at the
	// low-priority level.
	streaming := !strings.HasPrefix(r.Header.Get("Content-Type"), "application/json")
	if s.shed(w, r, streaming) {
		return
	}

	client := clientID(r)
	id := s.jobs.NewID()
	ctx, root := obs.Start(obs.Inject(r.Context(), s.ring, id), "http.classify")
	root.Str("client", client)
	defer root.End()
	// Carry the caller's identity into the fan-out: forwarded cells
	// propagate the job/trace ID, idempotency key, and priority (cluster.go).
	ctx = withReqMeta(ctx, reqMeta{jobID: id, idemKey: r.Header.Get(IdemHeader), priority: r.Header.Get(PriorityHeader)})
	r = r.WithContext(ctx)
	defer func(t0 time.Time) { s.hClassif.ObserveDuration(time.Since(t0)) }(time.Now())

	release, err := s.admit(r.Context(), client)
	if err != nil {
		root.Err(err)
		writeErr(w, err)
		return
	}
	defer release()

	s.createJob(id, "classify", client, r.Header.Get(IdemHeader))
	w.Header().Set("X-Mct-Job", id)

	if !streaming {
		s.classifySpecRequest(w, r, id)
		return
	}
	s.classifyUploadRequest(w, r, id)
}

// admit runs the admission gate under a span and the admission-wait
// histogram — time spent here is backpressure, visible whether the
// request was accepted or rejected.
func (s *Service) admit(ctx context.Context, client string) (func(), error) {
	t0 := time.Now()
	_, sp := obs.Start(ctx, "service.admit")
	release, err := s.adm.Admit(ctx, client)
	sp.Err(err)
	sp.End()
	s.hAdmit.ObserveDuration(time.Since(t0))
	return release, err
}

// classifySpecRequest handles the JSON-spec flavor of /v1/classify.
func (s *Service) classifySpecRequest(w http.ResponseWriter, r *http.Request, id string) {
	var spec ClassifySpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		err = fmt.Errorf("%w: decoding spec: %v", ErrBadRequest, err)
		s.finishJob(id, err, 0, 0, 0, 0)
		writeErrJob(w, err, id)
		return
	}
	if err := spec.normalize(false, s.cfg.MaxSpecAccesses); err != nil {
		s.finishJob(id, err, 0, 0, 0, 0)
		writeErrJob(w, err, id)
		return
	}

	s.startJob(id, spec)
	done, err := s.bat.submit(r.Context(), spec)
	if err == nil {
		select {
		case res := <-done:
			if res.err != nil {
				err = res.err
				break
			}
			var hits, misses uint64
			if res.hit {
				hits = 1
			} else {
				misses = 1
			}
			w.Header().Set("Content-Type", "application/x-ndjson")
			_, werr := w.Write(res.art.Body)
			s.finishJob(id, werr, res.art.Stats.Records, res.art.Stats.Emitted, hits, misses)
			return
		case <-r.Context().Done():
			err = r.Context().Err()
		}
	}
	s.finishJob(id, err, 0, 0, 0, 0)
	writeErrJob(w, err, id)
}

// classifyUploadRequest handles the binary-trace flavor of /v1/classify:
// the body is an MCTR trace, classified as it is read — no buffering of
// the upload, no memoization (the trace's content is unknown until it
// has already been simulated). Cache geometry comes from query
// parameters. Limit violations and malformed headers fail before any
// response byte; mid-stream failures append a trailing error record.
func (s *Service) classifyUploadRequest(w http.ResponseWriter, r *http.Request, id string) {
	spec, err := specFromQuery(r)
	if err == nil {
		err = spec.normalize(true, 0)
	}
	if err != nil {
		s.finishJob(id, err, 0, 0, 0, 0)
		writeErrJob(w, err, id)
		return
	}

	// No spec in the journal: the trace bytes live only in this request
	// body, so this job is not re-drivable after a crash.
	s.startJob(id, nil)
	rd, err := trace.NewReaderContext(r.Context(), r.Body, s.cfg.Limits)
	if err != nil {
		if !errors.Is(err, trace.ErrTraceTooLarge) && !errors.Is(err, context.Canceled) {
			err = fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		s.finishJob(id, err, 0, 0, 0, 0)
		writeErrJob(w, err, id)
		return
	}

	nw := newNDJSONWriter(w)
	_, sp := obs.Start(r.Context(), "classify.upload")
	st, err := runClassify(r.Context(), spec, rd, nw.emit)
	sp.Int("records", int64(st.Records))
	sp.Err(err)
	sp.End()
	if err != nil {
		// The status line is long gone; the error becomes the last record
		// and the job's failure state.
		_ = nw.emit(errorBody{Error: err.Error(), Status: statusFor(err)})
		s.finishJob(id, err, st.Records, nw.emitted, 0, 0)
		return
	}
	s.records.Add(st.Records)
	s.finishJob(id, nil, st.Records, nw.emitted, 0, 0)
}

// specFromQuery maps the upload path's query parameters onto a spec.
func specFromQuery(r *http.Request) (ClassifySpec, error) {
	var spec ClassifySpec
	q := r.URL.Query()
	for _, f := range []struct {
		name string
		dst  *int
	}{
		{"size_kb", &spec.SizeKB},
		{"assoc", &spec.Assoc},
		{"line", &spec.LineSize},
		{"tag_bits", &spec.TagBits},
	} {
		if v := q.Get(f.name); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return spec, fmt.Errorf("%w: query %s=%q is not an integer", ErrBadRequest, f.name, v)
			}
			*f.dst = n
		}
	}
	spec.Emit = q.Get("emit")
	spec.Index = q.Get("index")
	if v := q.Get("index_seed"); v != "" {
		n, err := strconv.ParseUint(v, 0, 64)
		if err != nil {
			return spec, fmt.Errorf("%w: query index_seed=%q is not an unsigned integer", ErrBadRequest, v)
		}
		spec.IndexSeed = n
	}
	return spec, nil
}

// handleSweep serves POST /v1/sweep: validate the selection (shared with
// cmd/paperbench), fan the artifacts through the supervised pool, and
// stream one NDJSON record per artifact plus a summary. Failed cells
// stream error records and surface in the job's failure list; they are
// neither cached nor checkpointed, so resubmitting recomputes exactly
// those.
func (s *Service) handleSweep(w http.ResponseWriter, r *http.Request) {
	if s.shed(w, r, false) {
		return
	}
	client := clientID(r)
	id := s.jobs.NewID()
	ctx, root := obs.Start(obs.Inject(r.Context(), s.ring, id), "http.sweep")
	root.Str("client", client)
	defer root.End()
	ctx = withReqMeta(ctx, reqMeta{jobID: id, idemKey: r.Header.Get(IdemHeader), priority: r.Header.Get(PriorityHeader)})
	r = r.WithContext(ctx)
	defer func(t0 time.Time) { s.hSweep.ObserveDuration(time.Since(t0)) }(time.Now())

	release, err := s.admit(r.Context(), client)
	if err != nil {
		root.Err(err)
		writeErr(w, err)
		return
	}
	defer release()

	s.createJob(id, "sweep", client, r.Header.Get(IdemHeader))
	w.Header().Set("X-Mct-Job", id)

	var spec SweepSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		err = fmt.Errorf("%w: decoding spec: %v", ErrBadRequest, err)
		s.finishJob(id, err, 0, 0, 0, 0)
		writeErrJob(w, err, id)
		return
	}
	p, arts, err := spec.normalize()
	if err != nil {
		s.finishJob(id, err, 0, 0, 0, 0)
		writeErrJob(w, err, id)
		return
	}

	s.startJob(id, spec)
	lines, hits, misses, runErr := s.runSweep(r.Context(), p, arts, spec.Seeds)

	nw := newNDJSONWriter(w)
	ok := 0
	for _, line := range lines {
		if line.Error == "" {
			ok++
		}
		if err := nw.emit(line); err != nil {
			s.finishJob(id, err, uint64(len(lines)), nw.emitted, hits, misses)
			return
		}
	}
	_ = nw.emit(struct {
		Summary sweepSummary `json:"summary"`
	}{sweepSummary{Experiments: len(lines), OK: ok, Failed: len(lines) - ok}})
	s.finishJob(id, runErr, uint64(len(lines)), nw.emitted, hits, misses)
}

// handleJob serves GET /v1/jobs/{id}.
func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.jobs.Get(id)
	if !ok {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		_ = json.NewEncoder(w).Encode(errorBody{Error: fmt.Sprintf("unknown job %q (evicted or never created)", id), Status: http.StatusNotFound})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(job)
}

// handleHealthz serves GET /healthz: 503 once draining so load
// balancers route away while in-flight work finishes.
func (s *Service) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.adm.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte(`{"status":"draining"}` + "\n"))
		return
	}
	_, _ = w.Write([]byte(`{"status":"ok"}` + "\n"))
}

// handleMetrics serves GET /metrics: the service's expvar map as JSON
// by default, or the Prometheus text exposition (version 0.0.4) with
// ?format=prometheus. Metrics never sit behind the admission gate — a
// draining or saturated instance must still be observable.
func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prometheus" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.reg.WriteText(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = fmt.Fprintln(w, s.vars.String())
}

// handleTrace serves GET /v1/trace/{job}: the job's spans still held by
// the bounded ring, oldest first, as NDJSON. A known job whose spans
// have been evicted returns an empty body — the ring is a tail, not an
// archive.
func (s *Service) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.shed(w, r, true) {
		return
	}
	id := r.PathValue("job")
	recs := s.ring.ByTrace(id)
	if _, ok := s.jobs.Get(id); !ok && len(recs) == 0 {
		// Unknown here AND no spans: truly unknown. A forwarded cell's
		// spans land on its owner under the origin's job ID without a
		// local job record, so spans alone are enough to serve the trace.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		_ = json.NewEncoder(w).Encode(errorBody{Error: fmt.Sprintf("unknown job %q (evicted or never created)", id), Status: http.StatusNotFound})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for _, rec := range recs {
		_ = enc.Encode(rec)
	}
}
