package service

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/classify"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// ErrBadRequest marks a request the client got wrong (unknown workload,
// invalid cache geometry, malformed body). statusFor maps it to 400.
var ErrBadRequest = errors.New("service: invalid request")

// Emit modes for classify responses.
const (
	// EmitSummary streams only the trailing summary line.
	EmitSummary = "summary"
	// EmitMisses streams one line per miss plus the summary (the default:
	// hits dominate any healthy trace and carry no classification).
	EmitMisses = "misses"
	// EmitAll streams every access.
	EmitAll = "all"
)

// ClassifySpec describes one classification request: which access stream
// to classify (a named synthetic workload, or — on the upload path — the
// request body's binary trace) against which cache geometry. The
// normalized spec doubles as the memoization-cache payload, so every
// field must deterministically change the result.
type ClassifySpec struct {
	// Workload names a synthetic benchmark (workload.Names). Empty on the
	// upload path, where the trace itself is the workload.
	Workload string `json:"workload,omitempty"`
	// Accesses is how many memory accesses of the workload to classify.
	Accesses uint64 `json:"accesses,omitempty"`
	// Seed feeds the workload generator.
	Seed uint64 `json:"seed,omitempty"`

	// SizeKB, Assoc, LineSize describe the simulated cache; TagBits is the
	// MCT's partial-tag width (0 = full tags).
	SizeKB   int `json:"size_kb,omitempty"`
	Assoc    int `json:"assoc,omitempty"`
	LineSize int `json:"line,omitempty"`
	TagBits  int `json:"tag_bits,omitempty"`

	// Index selects the cache's row-index scheme: "modulo" (default),
	// "skewed", or "random". IndexSeed keys the random scheme's per-way
	// hashes (0 = fixed default key).
	Index     string `json:"index,omitempty"`
	IndexSeed uint64 `json:"index_seed,omitempty"`

	// Emit selects the response granularity: summary, misses, or all.
	Emit string `json:"emit,omitempty"`
}

// normalize fills defaults and validates. upload marks the trace-upload
// path, where no workload name is expected and Accesses is ignored (the
// reader's Limits bound the stream instead).
func (sp *ClassifySpec) normalize(upload bool, maxAccesses uint64) error {
	if sp.SizeKB == 0 {
		sp.SizeKB = 32
	}
	if sp.Assoc == 0 {
		sp.Assoc = 2
	}
	if sp.LineSize == 0 {
		sp.LineSize = 64
	}
	if sp.Emit == "" {
		sp.Emit = EmitMisses
	}
	switch sp.Emit {
	case EmitSummary, EmitMisses, EmitAll:
	default:
		return fmt.Errorf("%w: emit %q (valid: %s, %s, %s)", ErrBadRequest, sp.Emit, EmitSummary, EmitMisses, EmitAll)
	}
	scheme, err := cache.ParseIndexScheme(sp.Index)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	// Canonicalize so equivalent spellings ("", "modulo"; "skew",
	// "skewed") share one memoization-cache key.
	sp.Index = scheme.String()
	if err := sp.cacheConfig().Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if sp.TagBits < 0 {
		return fmt.Errorf("%w: tag_bits must be >= 0", ErrBadRequest)
	}
	if upload {
		if sp.Workload != "" {
			return fmt.Errorf("%w: workload is meaningless with an uploaded trace", ErrBadRequest)
		}
		return nil
	}
	if sp.Seed == 0 {
		sp.Seed = workload.DefaultSeed
	}
	if sp.Accesses == 0 {
		sp.Accesses = 100_000
	}
	if maxAccesses != 0 && sp.Accesses > maxAccesses {
		return fmt.Errorf("%w: accesses %d exceeds the service limit %d", ErrBadRequest, sp.Accesses, maxAccesses)
	}
	if _, ok := workload.ByName(sp.Workload); !ok {
		return fmt.Errorf("%w: unknown workload %q (valid: %s)",
			ErrBadRequest, sp.Workload, strings.Join(workload.Names(), ", "))
	}
	return nil
}

// cacheConfig maps the spec onto the simulator's cache geometry.
func (sp ClassifySpec) cacheConfig() cache.Config {
	// normalize validated Index; a bad spelling that skipped normalize
	// falls back to modulo via the parse default.
	scheme, _ := cache.ParseIndexScheme(sp.Index)
	return cache.Config{
		Name:      "L1D",
		Size:      sp.SizeKB * 1024,
		LineSize:  sp.LineSize,
		Assoc:     sp.Assoc,
		Indexing:  scheme,
		IndexSeed: sp.IndexSeed,
	}
}

// accessLine is one NDJSON record of a classify response: the access, the
// oracle's classic verdict, and the MCT's on-the-fly verdict (misses
// only; a hit has no miss class).
type accessLine struct {
	I      uint64 `json:"i"`
	Addr   string `json:"addr"`
	Store  bool   `json:"store,omitempty"`
	Hit    bool   `json:"hit"`
	Oracle string `json:"oracle"`
	MCT    string `json:"mct,omitempty"`
}

// ClassifySummary is the trailing NDJSON record: totals plus the MCT's
// agreement with the oracle, the paper's accuracy metric.
type ClassifySummary struct {
	Workload    string  `json:"workload,omitempty"`
	Accesses    uint64  `json:"accesses"`
	Misses      uint64  `json:"misses"`
	Conflict    uint64  `json:"conflict"`
	Capacity    uint64  `json:"capacity"`
	Compulsory  uint64  `json:"compulsory"`
	ConflictAcc float64 `json:"mct_conflict_accuracy"`
	CapacityAcc float64 `json:"mct_capacity_accuracy"`
	OverallAcc  float64 `json:"mct_overall_accuracy"`
}

// classifyStats counts a classification's work for job accounting.
type classifyStats struct {
	Records uint64 `json:"records"`
	Emitted uint64 `json:"emitted"`
}

// runClassify plays every memory access of src through the classifying
// cache and the oracle, one struct-of-arrays batch at a time, emitting
// NDJSON records per the spec's emit mode through emit (one call per
// line, already marshaled). Batches bound the resident state: an upload
// is decoded ~256 records at a time straight off the request body, never
// buffered whole, and the steady state allocates nothing per record. The
// context is checked once per batch so an abandoned request stops doing
// work promptly. src.Err() is consulted after the source ends (a
// trace.Reader's decode error, truncation, or limit violation): a failed
// source aborts the run before the summary line, so a truncated or
// over-limit upload never masquerades as a complete classification.
func runClassify(ctx context.Context, spec ClassifySpec, src trace.BatchSource, emit func(v any) error) (classifyStats, error) {
	var st classifyStats
	run, err := classify.NewRun(spec.cacheConfig(), spec.TagBits)
	if err != nil {
		return st, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	bc := sim.NewBatchClassifier(run, 0)
	for {
		if cerr := ctx.Err(); cerr != nil {
			return st, cerr
		}
		n, m := bc.Classify(src)
		if n == 0 {
			break
		}
		if spec.Emit != EmitSummary {
			for i := 0; i < m; i++ {
				hit := run.Hits[i]
				if spec.Emit == EmitMisses && hit {
					continue
				}
				line := accessLine{
					I:      st.Records + uint64(i),
					Addr:   fmt.Sprintf("0x%x", uint64(bc.Addrs[i])),
					Store:  bc.Stores[i],
					Hit:    hit,
					Oracle: run.Kinds[i].String(),
				}
				if !hit {
					line.MCT = run.Classes[i].String()
				}
				if err := emit(line); err != nil {
					return st, err
				}
				st.Emitted++
			}
		}
		st.Records += uint64(m)
	}
	if err := src.Err(); err != nil {
		return st, err
	}
	sum := ClassifySummary{
		Workload:    spec.Workload,
		Accesses:    st.Records,
		Misses:      run.Acc.Misses(),
		Conflict:    run.Acc.ConflictTotal,
		Capacity:    run.Acc.CapacityTotal,
		Compulsory:  run.Acc.CompulsoryTotal,
		ConflictAcc: run.Acc.ConflictAccuracy(),
		CapacityAcc: run.Acc.CapacityAccuracy(),
		OverallAcc:  run.Acc.OverallAccuracy(),
	}
	if err := emit(struct {
		Summary ClassifySummary `json:"summary"`
	}{sum}); err != nil {
		return st, err
	}
	st.Emitted++
	return st, nil
}

// specStream builds the access stream a normalized spec describes: the
// named workload's trace, truncated to the requested access count,
// memory operations only.
func specStream(spec ClassifySpec) trace.Stream {
	b, ok := workload.ByName(spec.Workload)
	if !ok {
		// normalize validated the name; reaching here is a bug.
		panic(fmt.Sprintf("service: workload %q vanished after validation", spec.Workload))
	}
	return trace.NewLimit(trace.NewMemOnly(b.Stream(spec.Seed)), spec.Accesses)
}
