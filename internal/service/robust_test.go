package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
)

// The service mirrors the client's idempotency header rather than
// importing it; this pin keeps the two constants from drifting apart.
func TestIdemHeaderMatchesClientPackage(t *testing.T) {
	if IdemHeader != client.IdempotencyHeader {
		t.Fatalf("service.IdemHeader %q != client.IdempotencyHeader %q", IdemHeader, client.IdempotencyHeader)
	}
}

// --- journal write-through + recovery ---

// sharedDirs pins cache/checkpoint/journal dirs so a "restarted"
// service instance sees its predecessor's state.
type sharedDirs struct{ cache, ckpt, jnl string }

func newSharedDirs(t *testing.T) sharedDirs {
	base := t.TempDir()
	return sharedDirs{cache: base + "/cache", ckpt: base + "/ckpt", jnl: base + "/jobs"}
}

func (d sharedDirs) config() Config {
	return Config{CacheDir: d.cache, CheckpointDir: d.ckpt, JournalDir: d.jnl}
}

// TestJournalWriteThroughAndRestoreFinished: a completed job's records
// land in the journal, and a fresh instance restores the job (terminal
// state intact) without re-running anything.
func TestJournalWriteThroughAndRestoreFinished(t *testing.T) {
	dirs := newSharedDirs(t)
	s1, srv := newTestService(t, dirs.config())
	w := anyWorkload(t)

	resp := postJSON(t, srv.URL+"/v1/classify",
		fmt.Sprintf(`{"workload":%q,"accesses":2000,"emit":"summary"}`, w))
	jobID := resp.Header.Get("X-Mct-Job")
	readAll(t, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || jobID == "" {
		t.Fatalf("classify: status %d, job %q", resp.StatusCode, jobID)
	}
	if n := s1.jnlWrites.Load(); n < 3 { // create + start + finish
		t.Fatalf("journal writes = %d, want >= 3", n)
	}
	// Release the journal so the "restarted" instance owns the dir.
	drainT(t, s1)

	s2 := New(dirs.config())
	st, err := s2.Recover(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer drainT(t, s2)
	if st.Jobs != 1 || st.Finished != 1 || st.Redriven != 0 || st.Orphaned != 0 {
		t.Fatalf("recovery stats = %+v, want 1 finished job", st)
	}
	job, ok := s2.jobs.Get(jobID)
	if !ok || job.State != JobDone || !job.Recovered {
		t.Fatalf("restored job = %+v, %v; want done + recovered", job, ok)
	}
}

func drainT(t *testing.T, s *Service) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestRecoverRedrivesUnfinishedSweep is the crash-recovery core: a
// sweep whose start record has no finish is re-driven on boot, its
// results land in the shared memo cache, and the client's retried
// request replays byte-identically as pure cache hits.
func TestRecoverRedrivesUnfinishedSweep(t *testing.T) {
	dirs := newSharedDirs(t)

	// Simulate the pre-crash instance by journaling create+start with no
	// finish — exactly what a SIGKILL mid-sweep leaves behind.
	s0 := New(dirs.config())
	spec := SweepSpec{Experiments: []string{"fig1"}, Quick: true}
	id := s0.jobs.NewID()
	s0.createJob(id, "sweep", "t", "idem-123")
	s0.startJob(id, spec)
	drainT(t, s0)

	s1, srv := newTestService(t, dirs.config())
	st, err := s1.Recover(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Redriven != 1 {
		t.Fatalf("recovery stats = %+v, want 1 redriven", st)
	}
	if err := s1.AwaitRecovery(context.Background()); err != nil {
		t.Fatal(err)
	}
	job, ok := s1.jobs.Get(id)
	if !ok || job.State != JobDone || !job.Recovered || job.IdemKey != "idem-123" {
		t.Fatalf("re-driven job = %+v, %v", job, ok)
	}

	// The client's retry of the same sweep must be all cache hits.
	h0, m0 := s1.cache.Stats()
	body, _ := json.Marshal(spec)
	resp := postJSON(t, srv.URL+"/v1/sweep", string(body))
	out := readAll(t, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retried sweep: status %d: %s", resp.StatusCode, out)
	}
	h1, m1 := s1.cache.Stats()
	if m1 != m0 {
		t.Fatalf("retried sweep recomputed: misses %d -> %d", m0, m1)
	}
	if h1 <= h0 {
		t.Fatalf("retried sweep did not hit the cache: hits %d -> %d", h0, h1)
	}
}

// TestRecoverOrphansUploadJobs: an interrupted upload classify (no spec
// retained) is marked failed, not silently dropped.
func TestRecoverOrphansUploadJobs(t *testing.T) {
	dirs := newSharedDirs(t)
	s0 := New(dirs.config())
	id := s0.jobs.NewID()
	s0.createJob(id, "classify", "t", "")
	s0.startJob(id, nil)
	drainT(t, s0)

	s1 := New(dirs.config())
	st, err := s1.Recover(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer drainT(t, s1)
	if st.Orphaned != 1 {
		t.Fatalf("recovery stats = %+v, want 1 orphaned", st)
	}
	job, ok := s1.jobs.Get(id)
	if !ok || job.State != JobFailed || !strings.Contains(job.Error, "restart") {
		t.Fatalf("orphaned job = %+v, %v", job, ok)
	}
}

// TestRecoverCompactsJournal: after recovery the journal holds only
// live records — a long-lived service's journal does not grow without
// bound across restarts.
func TestRecoverCompactsJournal(t *testing.T) {
	dirs := newSharedDirs(t)
	s1, srv := newTestService(t, dirs.config())
	w := anyWorkload(t)
	for i := 0; i < 5; i++ {
		resp := postJSON(t, srv.URL+"/v1/classify",
			fmt.Sprintf(`{"workload":%q,"accesses":%d,"emit":"summary"}`, w, 2000+i))
		readAll(t, resp.Body)
		resp.Body.Close()
	}

	drainT(t, s1) // release the journal
	s2 := New(dirs.config())
	if _, err := s2.Recover(context.Background()); err != nil {
		t.Fatal(err)
	}
	drainT(t, s2)

	// All jobs finished: a third boot's replay sees zero records.
	s3 := New(dirs.config())
	st, err := s3.Recover(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	drainT(t, s3)
	if st.Jobs != 0 {
		t.Fatalf("journal not compacted: third boot still sees %d jobs", st.Jobs)
	}
}

// --- idempotency ---

// TestIdempotentReplay: the same key never computes twice — the second
// request replays the stored response byte-identically, without
// touching admission.
func TestIdempotentReplay(t *testing.T) {
	s, srv := newTestService(t, Config{})
	w := anyWorkload(t)
	body := fmt.Sprintf(`{"workload":%q,"accesses":3000,"emit":"summary"}`, w)

	do := func() (*http.Response, []byte) {
		req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/classify", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(IdemHeader, "key-replay-1")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		out := readAll(t, resp.Body)
		resp.Body.Close()
		return resp, out
	}
	r1, b1 := do()
	r2, b2 := do()
	if r1.StatusCode != 200 || r2.StatusCode != 200 {
		t.Fatalf("statuses %d, %d", r1.StatusCode, r2.StatusCode)
	}
	if string(b1) != string(b2) {
		t.Fatalf("replayed body differs:\n%q\n%q", b1, b2)
	}
	if r2.Header.Get(IdemReplayedHeader) != "1" || r1.Header.Get(IdemReplayedHeader) != "" {
		t.Fatalf("replay marking wrong: first %q, second %q",
			r1.Header.Get(IdemReplayedHeader), r2.Header.Get(IdemReplayedHeader))
	}
	if r2.Header.Get("X-Mct-Job") != r1.Header.Get("X-Mct-Job") {
		t.Fatal("replay must carry the original job ID")
	}
	if s.idem.replayed.Load() != 1 || s.adm.accepted.Load() != 1 {
		t.Fatalf("replayed=%d accepted=%d; replay must not re-enter admission",
			s.idem.replayed.Load(), s.adm.accepted.Load())
	}
}

// TestIdempotentSingleflight: concurrent duplicates coalesce onto one
// execution.
func TestIdempotentSingleflight(t *testing.T) {
	s, srv := newTestService(t, Config{})
	w := anyWorkload(t)
	body := fmt.Sprintf(`{"workload":%q,"accesses":4000,"emit":"summary"}`, w)

	const dup = 8
	bodies := make([]string, dup)
	var wg sync.WaitGroup
	for i := 0; i < dup; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/classify", strings.NewReader(body))
			req.Header.Set("Content-Type", "application/json")
			req.Header.Set(IdemHeader, "key-flight-1")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			bodies[i] = string(readAll(t, resp.Body))
		}(i)
	}
	wg.Wait()
	for i := 1; i < dup; i++ {
		if bodies[i] != bodies[0] {
			t.Fatalf("duplicate %d got a different body", i)
		}
	}
	// Exactly one execution passed admission; every duplicate either
	// waited in flight or replayed after commit.
	if s.adm.accepted.Load() != 1 {
		t.Fatalf("accepted = %d, want 1 (singleflight)", s.adm.accepted.Load())
	}
	_, misses := s.cache.Stats()
	if misses > 1 {
		t.Fatalf("cache misses = %d; duplicates computed", misses)
	}
}

// TestIdempotentRetryableOutcomeNotStored: a 400 is stored (retrying a
// bad spec is pointless) but a shed 503 is not — the retry must execute
// for real.
func TestIdempotentRetryableOutcomeNotStored(t *testing.T) {
	s, srv := newTestService(t, Config{Brownout: BrownoutConfig{Enabled: true}})
	w := anyWorkload(t)

	// Force the breaker open so the first attempt sheds with 503.
	s.brown.level.Store(brownBreakerOpen)
	body := fmt.Sprintf(`{"workload":%q,"accesses":2000,"emit":"summary"}`, w)
	do := func(key string) int {
		req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/classify", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(IdemHeader, key)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		readAll(t, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := do("key-shed"); got != http.StatusServiceUnavailable {
		t.Fatalf("shed status = %d", got)
	}
	// Recover the service; the SAME key must now execute for real.
	s.brown.level.Store(brownNormal)
	if got := do("key-shed"); got != http.StatusOK {
		t.Fatalf("retry after shed = %d, want 200 (503 must not be replayed)", got)
	}
}

// brokenPipeWriter accepts failAfter bytes and then fails every write,
// like a peer that disconnected mid-stream.
type brokenPipeWriter struct {
	hdr       http.Header
	wrote     int
	failAfter int
}

func (w *brokenPipeWriter) Header() http.Header { return w.hdr }
func (w *brokenPipeWriter) WriteHeader(int)     {}
func (w *brokenPipeWriter) Write(p []byte) (int, error) {
	if w.wrote+len(p) > w.failAfter {
		return 0, errors.New("write: broken pipe")
	}
	w.wrote += len(p)
	return len(p), nil
}

// TestIdempotentTornStreamNotCommitted: a leader whose underlying write
// fails mid-stream stops early (like handleSweep on emit failure) with
// the status already recorded as 200, but the recorded body is a torn
// prefix. Committing it would replay the truncation to the retry as a
// complete response; instead the key must abort and the retry execute
// for real.
func TestIdempotentTornStreamNotCommitted(t *testing.T) {
	s := New(Config{})
	line1, line2 := `{"line":1}`+"\n", `{"summary":true}`+"\n"
	calls := 0
	h := s.idempotent(func(w http.ResponseWriter, r *http.Request) {
		calls++
		w.WriteHeader(http.StatusOK)
		if _, err := w.Write([]byte(line1)); err != nil {
			return
		}
		if _, err := w.Write([]byte(line2)); err != nil {
			return
		}
	})
	req := func() *http.Request {
		r := httptest.NewRequest(http.MethodPost, "/v1/classify", nil)
		r.Header.Set(IdemHeader, "key-torn")
		return r
	}

	// First line reaches the client, the second write hits a dead peer.
	h(&brokenPipeWriter{hdr: http.Header{}, failAfter: len(line1)}, req())

	rec := httptest.NewRecorder()
	h(rec, req())
	if calls != 2 {
		t.Fatalf("retry executed %d times, want 2 (torn outcome must not be stored)", calls)
	}
	if rec.Header().Get(IdemReplayedHeader) == "1" {
		t.Fatal("torn outcome was replayed")
	}
	if rec.Body.String() != line1+line2 {
		t.Fatalf("retry body = %q, want the complete stream", rec.Body.String())
	}
}

// TestIdempotentCanceledRequestNotCommitted: even when every write
// "succeeds" (buffered), a request whose context died mid-handler may
// have reached the client truncated — the outcome is not storable.
func TestIdempotentCanceledRequestNotCommitted(t *testing.T) {
	s := New(Config{})
	calls := 0
	h := s.idempotent(func(w http.ResponseWriter, r *http.Request) {
		calls++
		_, _ = w.Write([]byte("body"))
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the client is already gone when the leader finishes
	r1 := httptest.NewRequest(http.MethodPost, "/v1/classify", nil).WithContext(ctx)
	r1.Header.Set(IdemHeader, "key-gone")
	h(httptest.NewRecorder(), r1)

	r2 := httptest.NewRequest(http.MethodPost, "/v1/classify", nil)
	r2.Header.Set(IdemHeader, "key-gone")
	rec := httptest.NewRecorder()
	h(rec, r2)
	if calls != 2 || rec.Header().Get(IdemReplayedHeader) == "1" {
		t.Fatalf("calls=%d replayed=%q; disconnected-client outcome must not be stored",
			calls, rec.Header().Get(IdemReplayedHeader))
	}
}

// TestIdempotentPanicReleasesKey: net/http recovers handler panics
// per-connection, so a panicking leader must still abort its entry —
// otherwise the done channel never closes and every later request with
// the key blocks until its own deadline, poisoning the key until
// restart.
func TestIdempotentPanicReleasesKey(t *testing.T) {
	s := New(Config{})
	calls := 0
	h := s.idempotent(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls == 1 {
			panic("boom")
		}
		_, _ = w.Write([]byte("ok"))
	})
	req := func(ctx context.Context) *http.Request {
		r := httptest.NewRequest(http.MethodPost, "/v1/classify", nil).WithContext(ctx)
		r.Header.Set(IdemHeader, "key-panic")
		return r
	}
	func() {
		defer func() { _ = recover() }() // stand in for net/http's per-connection recovery
		h(httptest.NewRecorder(), req(context.Background()))
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	rec := httptest.NewRecorder()
	h(rec, req(ctx))
	if calls != 2 || rec.Code != http.StatusOK || rec.Body.String() != "ok" {
		t.Fatalf("retry after panic: calls=%d code=%d body=%q; key is poisoned",
			calls, rec.Code, rec.Body.String())
	}
}

// --- brownout ---

// TestBrownoutLadder: hysteresis walks levels up under sustained
// overload and back down on recovery; shedding follows the ladder.
func TestBrownoutLadder(t *testing.T) {
	cfg := Config{Brownout: BrownoutConfig{Enabled: true, TripTicks: 2, ClearTicks: 3,
		Interval: time.Hour}} // ticker effectively off; we drive observe()
	s, srv := newTestService(t, cfg)
	w := anyWorkload(t)

	post := func(path, body, priority string, hdr map[string]string) *http.Response {
		req, _ := http.NewRequest(http.MethodPost, srv.URL+path, strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		if priority != "" {
			req.Header.Set(PriorityHeader, priority)
		}
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		readAll(t, resp.Body)
		resp.Body.Close()
		return resp
	}
	classifyBody := fmt.Sprintf(`{"workload":%q,"accesses":1000,"emit":"summary"}`, w)

	// One overloaded tick: below TripTicks, still normal.
	s.brown.observe(true)
	if got := s.brown.Level(); got != brownNormal {
		t.Fatalf("level after 1 tick = %d", got)
	}
	// Second consecutive: level 1, streaming shed, JSON classify fine.
	s.brown.observe(true)
	if got := s.brown.Level(); got != brownShedStream {
		t.Fatalf("level = %d, want shed-streaming", got)
	}
	if resp := post("/v1/classify", classifyBody, "", nil); resp.StatusCode != 200 {
		t.Fatalf("JSON classify at L1 = %d", resp.StatusCode)
	}
	upload := post("/v1/classify", "RAWBYTES", "", map[string]string{"Content-Type": "application/octet-stream"})
	if upload.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("upload at L1 = %d, want 503", upload.StatusCode)
	}
	if upload.Header.Get("Retry-After") == "" {
		t.Fatal("shed response must carry Retry-After")
	}

	// Two more overloaded ticks: level 2, low-priority shed, high kept.
	s.brown.observe(true)
	s.brown.observe(true)
	if got := s.brown.Level(); got != brownShedLowPri {
		t.Fatalf("level = %d, want shed-low-priority", got)
	}
	if resp := post("/v1/classify", classifyBody, "", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("low-pri classify at L2 = %d, want 503", resp.StatusCode)
	}
	if resp := post("/v1/classify", classifyBody, "high", nil); resp.StatusCode != 200 {
		t.Fatalf("high-pri classify at L2 = %d, want 200", resp.StatusCode)
	}

	// Two more: breaker open. Everything shed except healthz/metrics.
	s.brown.observe(true)
	s.brown.observe(true)
	if got := s.brown.Level(); got != brownBreakerOpen {
		t.Fatalf("level = %d, want breaker-open", got)
	}
	if resp := post("/v1/classify", classifyBody, "high", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("high-pri at L3 = %d, want 503", resp.StatusCode)
	}
	for _, path := range []string{"/healthz", "/metrics"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s at breaker-open = %d, want 200 (never shed)", path, resp.StatusCode)
		}
	}

	// Recovery: ClearTicks healthy ticks per level, all the way down.
	for lvl := brownBreakerOpen; lvl > brownNormal; lvl-- {
		for i := 0; i < 3; i++ {
			s.brown.observe(false)
		}
	}
	if got := s.brown.Level(); got != brownNormal {
		t.Fatalf("level after recovery = %d, want normal", got)
	}
	if resp := post("/v1/classify", classifyBody, "", nil); resp.StatusCode != 200 {
		t.Fatalf("classify after recovery = %d", resp.StatusCode)
	}
	if s.brown.transitions.Load() < 6 || s.brown.sheds.Load() < 3 {
		t.Fatalf("metrics: transitions=%d sheds=%d", s.brown.transitions.Load(), s.brown.sheds.Load())
	}
}

// TestBrownoutOverloadSignal: the windowed p99 signal trips on a burst
// of slow admissions and clears once the window moves past it — the
// cumulative histogram alone could never clear.
func TestBrownoutOverloadSignal(t *testing.T) {
	s, _ := newTestService(t, Config{Brownout: BrownoutConfig{Enabled: true,
		AdmitWaitP99: 50 * time.Millisecond, Interval: time.Hour}})
	// Window 1: a burst of 200ms admission waits.
	for i := 0; i < 100; i++ {
		s.hAdmit.Observe(0.2)
	}
	if !s.brown.overloaded() {
		t.Fatal("slow-admission burst did not read as overload")
	}
	// Window 2: all fast. Cumulative p99 is still ~200ms, but the
	// windowed signal must clear.
	for i := 0; i < 100; i++ {
		s.hAdmit.Observe(0.001)
	}
	if s.brown.overloaded() {
		t.Fatal("windowed signal failed to clear after recovery")
	}
	// Empty window: no traffic is not overload.
	if s.brown.overloaded() {
		t.Fatal("empty window read as overload")
	}
}

// TestRetryAfterHeaders: 429 and 503 rejections both carry Retry-After
// and a JSON error body.
func TestRetryAfterHeaders(t *testing.T) {
	s, srv := newTestService(t, Config{})
	w := anyWorkload(t)
	s.StartDrain() // everything now 503s
	resp := postJSON(t, srv.URL+"/v1/classify",
		fmt.Sprintf(`{"workload":%q,"accesses":1000}`, w))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Status != 503 || eb.Error == "" {
		t.Fatalf("error body = %+v, %v", eb, err)
	}
}

// TestErrorBodyCarriesJobID: a request that fails after job allocation
// points the client at GET /v1/jobs/{id}.
func TestErrorBodyCarriesJobID(t *testing.T) {
	_, srv := newTestService(t, Config{})
	resp := postJSON(t, srv.URL+"/v1/classify", `{"workload":"no-such-workload"}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if eb.JobID == "" || eb.JobID != resp.Header.Get("X-Mct-Job") {
		t.Fatalf("error body job_id = %q, header %q", eb.JobID, resp.Header.Get("X-Mct-Job"))
	}
	// And the job is queryable with the failure recorded.
	jr, err := http.Get(srv.URL + "/v1/jobs/" + eb.JobID)
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Body.Close()
	var job Job
	if err := json.NewDecoder(jr.Body).Decode(&job); err != nil || job.State != JobFailed {
		t.Fatalf("job = %+v, %v", job, err)
	}
}
